#include "geom/rect.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace ipqs {

Rect Rect::FromCorners(const Point& a, const Point& b) {
  return Rect(std::min(a.x, b.x), std::min(a.y, b.y), std::max(a.x, b.x),
              std::max(a.y, b.y));
}

Rect Rect::FromCenter(const Point& c, double width, double height) {
  return Rect(c.x - width / 2, c.y - height / 2, c.x + width / 2,
              c.y + height / 2);
}

Rect Rect::Intersection(const Rect& o) const {
  if (!Intersects(o)) {
    return Rect();
  }
  return Rect(std::max(min_x, o.min_x), std::max(min_y, o.min_y),
              std::min(max_x, o.max_x), std::min(max_y, o.max_y));
}

double Rect::DistanceTo(const Point& p) const {
  const double dx = std::max({min_x - p.x, 0.0, p.x - max_x});
  const double dy = std::max({min_y - p.y, 0.0, p.y - max_y});
  return std::sqrt(dx * dx + dy * dy);
}

bool Rect::IntersectsSegment(const Segment& s) const {
  double t0;
  double t1;
  return ClipSegment(s, &t0, &t1);
}

bool Rect::ClipSegment(const Segment& s, double* t0, double* t1) const {
  // Liang-Barsky clipping: each boundary contributes a constraint
  // p * t <= q on the segment parameter t.
  double lo = 0.0;
  double hi = 1.0;
  const double dx = s.b.x - s.a.x;
  const double dy = s.b.y - s.a.y;

  auto clip = [&lo, &hi](double p, double q) {
    if (p == 0.0) {
      return q >= 0.0;  // Parallel: inside iff the constraint holds.
    }
    const double t = q / p;
    if (p < 0.0) {
      lo = std::max(lo, t);  // Entering constraint.
    } else {
      hi = std::min(hi, t);  // Leaving constraint.
    }
    return true;
  };

  if (clip(-dx, s.a.x - min_x) && clip(dx, max_x - s.a.x) &&
      clip(-dy, s.a.y - min_y) && clip(dy, max_y - s.a.y) && lo <= hi) {
    *t0 = lo;
    *t1 = hi;
    return true;
  }
  return false;
}

std::string Rect::ToString() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "[%.3f,%.3f x %.3f,%.3f]", min_x, min_y,
                max_x, max_y);
  return buf;
}

bool operator==(const Rect& a, const Rect& b) {
  return a.min_x == b.min_x && a.min_y == b.min_y && a.max_x == b.max_x &&
         a.max_y == b.max_y;
}

std::ostream& operator<<(std::ostream& os, const Rect& r) {
  return os << r.ToString();
}

}  // namespace ipqs
