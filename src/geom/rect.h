#ifndef IPQS_GEOM_RECT_H_
#define IPQS_GEOM_RECT_H_

#include <ostream>

#include "geom/point.h"
#include "geom/segment.h"

namespace ipqs {

// Axis-aligned rectangle. Invariant (enforced by FromCorners / checked
// lazily): min_x <= max_x, min_y <= max_y.
struct Rect {
  double min_x = 0.0;
  double min_y = 0.0;
  double max_x = 0.0;
  double max_y = 0.0;

  Rect() = default;
  Rect(double min_x_in, double min_y_in, double max_x_in, double max_y_in)
      : min_x(min_x_in), min_y(min_y_in), max_x(max_x_in), max_y(max_y_in) {}

  // Builds a rect from any two opposite corners.
  static Rect FromCorners(const Point& a, const Point& b);
  // Builds a rect centered at `c` with the given width and height.
  static Rect FromCenter(const Point& c, double width, double height);

  double Width() const { return max_x - min_x; }
  double Height() const { return max_y - min_y; }
  double Area() const { return Width() * Height(); }
  Point Center() const { return {(min_x + max_x) / 2, (min_y + max_y) / 2}; }

  bool Contains(const Point& p) const {
    return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
  }

  bool Intersects(const Rect& o) const {
    return min_x <= o.max_x && o.min_x <= max_x && min_y <= o.max_y &&
           o.min_y <= max_y;
  }

  // Intersection rectangle; empty (zero-area at origin) when disjoint.
  Rect Intersection(const Rect& o) const;

  // Minimum Euclidean distance from `p` to this rect (0 when inside).
  double DistanceTo(const Point& p) const;

  // True when any point of `s` lies inside the rect.
  bool IntersectsSegment(const Segment& s) const;

  // The sub-interval [t0, t1] of segment parameters inside the rect; returns
  // false when the segment misses the rect. Used to clip walking-graph edges
  // against query windows.
  bool ClipSegment(const Segment& s, double* t0, double* t1) const;

  std::string ToString() const;
};

bool operator==(const Rect& a, const Rect& b);

std::ostream& operator<<(std::ostream& os, const Rect& r);

}  // namespace ipqs

#endif  // IPQS_GEOM_RECT_H_
