#ifndef IPQS_GEOM_SEGMENT_H_
#define IPQS_GEOM_SEGMENT_H_

#include <ostream>

#include "geom/point.h"

namespace ipqs {

// A directed line segment from `a` to `b`.
struct Segment {
  Point a;
  Point b;

  Segment() = default;
  Segment(Point a_in, Point b_in) : a(a_in), b(b_in) {}

  double Length() const { return Distance(a, b); }

  // Point at parameter t in [0, 1] along the segment.
  Point At(double t) const { return Lerp(a, b, t); }

  // Point at arc-length `offset` (clamped to [0, Length()]) from `a`.
  Point AtOffset(double offset) const;

  // Parameter t in [0, 1] of the point on the segment closest to `p`.
  double ClosestParameter(const Point& p) const;

  // The point on the segment closest to `p`.
  Point ClosestPoint(const Point& p) const;

  // Minimum Euclidean distance from `p` to the segment.
  double DistanceTo(const Point& p) const;
};

// True when segments `s1` and `s2` intersect (including touching).
bool SegmentsIntersect(const Segment& s1, const Segment& s2);

std::ostream& operator<<(std::ostream& os, const Segment& s);

}  // namespace ipqs

#endif  // IPQS_GEOM_SEGMENT_H_
