#include "geom/point.h"

#include <cstdio>

namespace ipqs {

std::string Point::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "(%.3f, %.3f)", x, y);
  return buf;
}

double Distance(const Point& a, const Point& b) { return (a - b).Norm(); }

double SquaredDistance(const Point& a, const Point& b) {
  return (a - b).SquaredNorm();
}

bool AlmostEqual(const Point& a, const Point& b, double eps) {
  return std::fabs(a.x - b.x) <= eps && std::fabs(a.y - b.y) <= eps;
}

Point Lerp(const Point& a, const Point& b, double t) {
  return a + (b - a) * t;
}

std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << p.ToString();
}

}  // namespace ipqs
