#include "geom/segment.h"

#include <algorithm>
#include <cmath>

namespace ipqs {
namespace {

// Orientation of ordered triplet (p, q, r): >0 counter-clockwise,
// <0 clockwise, 0 collinear (with a small tolerance).
int Orientation(const Point& p, const Point& q, const Point& r) {
  const double cross = (q - p).Cross(r - p);
  constexpr double kEps = 1e-12;
  if (cross > kEps) return 1;
  if (cross < -kEps) return -1;
  return 0;
}

// For collinear p, q, r: true when q lies on segment pr.
bool OnSegment(const Point& p, const Point& q, const Point& r) {
  return q.x <= std::max(p.x, r.x) && q.x >= std::min(p.x, r.x) &&
         q.y <= std::max(p.y, r.y) && q.y >= std::min(p.y, r.y);
}

}  // namespace

Point Segment::AtOffset(double offset) const {
  const double len = Length();
  if (len <= 0.0) {
    return a;
  }
  const double t = std::clamp(offset / len, 0.0, 1.0);
  return At(t);
}

double Segment::ClosestParameter(const Point& p) const {
  const Point d = b - a;
  const double len2 = d.SquaredNorm();
  if (len2 <= 0.0) {
    return 0.0;
  }
  return std::clamp((p - a).Dot(d) / len2, 0.0, 1.0);
}

Point Segment::ClosestPoint(const Point& p) const {
  return At(ClosestParameter(p));
}

double Segment::DistanceTo(const Point& p) const {
  return Distance(p, ClosestPoint(p));
}

bool SegmentsIntersect(const Segment& s1, const Segment& s2) {
  const Point& p1 = s1.a;
  const Point& q1 = s1.b;
  const Point& p2 = s2.a;
  const Point& q2 = s2.b;

  const int o1 = Orientation(p1, q1, p2);
  const int o2 = Orientation(p1, q1, q2);
  const int o3 = Orientation(p2, q2, p1);
  const int o4 = Orientation(p2, q2, q1);

  if (o1 != o2 && o3 != o4) {
    return true;
  }
  if (o1 == 0 && OnSegment(p1, p2, q1)) return true;
  if (o2 == 0 && OnSegment(p1, q2, q1)) return true;
  if (o3 == 0 && OnSegment(p2, p1, q2)) return true;
  if (o4 == 0 && OnSegment(p2, q1, q2)) return true;
  return false;
}

std::ostream& operator<<(std::ostream& os, const Segment& s) {
  return os << s.a << "->" << s.b;
}

}  // namespace ipqs
