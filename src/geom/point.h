#ifndef IPQS_GEOM_POINT_H_
#define IPQS_GEOM_POINT_H_

#include <cmath>
#include <ostream>
#include <string>

namespace ipqs {

// A 2-D point (or vector) in floor-plan coordinates, in meters.
struct Point {
  double x = 0.0;
  double y = 0.0;

  constexpr Point() = default;
  constexpr Point(double x_in, double y_in) : x(x_in), y(y_in) {}

  constexpr Point operator+(const Point& o) const { return {x + o.x, y + o.y}; }
  constexpr Point operator-(const Point& o) const { return {x - o.x, y - o.y}; }
  constexpr Point operator*(double s) const { return {x * s, y * s}; }
  constexpr Point operator/(double s) const { return {x / s, y / s}; }

  constexpr double Dot(const Point& o) const { return x * o.x + y * o.y; }
  // 2-D cross product magnitude (z component).
  constexpr double Cross(const Point& o) const { return x * o.y - y * o.x; }

  double Norm() const { return std::sqrt(x * x + y * y); }
  constexpr double SquaredNorm() const { return x * x + y * y; }

  std::string ToString() const;
};

constexpr bool operator==(const Point& a, const Point& b) {
  return a.x == b.x && a.y == b.y;
}
constexpr bool operator!=(const Point& a, const Point& b) { return !(a == b); }

// Euclidean distance between two points.
double Distance(const Point& a, const Point& b);
double SquaredDistance(const Point& a, const Point& b);

// True when |a-b| <= eps in both coordinates.
bool AlmostEqual(const Point& a, const Point& b, double eps = 1e-9);

// Linear interpolation: a when t=0, b when t=1.
Point Lerp(const Point& a, const Point& b, double t);

std::ostream& operator<<(std::ostream& os, const Point& p);

}  // namespace ipqs

#endif  // IPQS_GEOM_POINT_H_
