#include "floorplan/floor_plan.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace ipqs {

namespace {
constexpr double kGeomEps = 1e-6;
}  // namespace

Rect Hallway::Bounds() const {
  Rect line = Rect::FromCorners(centerline.a, centerline.b);
  if (IsHorizontal()) {
    return Rect(line.min_x, line.min_y - width / 2, line.max_x,
                line.max_y + width / 2);
  }
  return Rect(line.min_x - width / 2, line.min_y, line.max_x + width / 2,
              line.max_y);
}

bool Hallway::IsHorizontal() const {
  return std::fabs(centerline.a.y - centerline.b.y) <= kGeomEps;
}

StatusOr<HallwayId> FloorPlan::AddHallway(Segment centerline, double width,
                                          std::string name) {
  if (width <= 0.0) {
    return Status::InvalidArgument("hallway width must be positive");
  }
  if (centerline.Length() <= 0.0) {
    return Status::InvalidArgument("hallway centerline must have length");
  }
  const bool axis_aligned =
      std::fabs(centerline.a.x - centerline.b.x) <= kGeomEps ||
      std::fabs(centerline.a.y - centerline.b.y) <= kGeomEps;
  if (!axis_aligned) {
    return Status::InvalidArgument("hallway centerline must be axis-aligned");
  }
  Hallway h;
  h.id = static_cast<HallwayId>(hallways_.size());
  h.centerline = centerline;
  h.width = width;
  h.name = name.empty() ? "H" + std::to_string(h.id) : std::move(name);
  hallways_.push_back(std::move(h));
  return hallways_.back().id;
}

StatusOr<RoomId> FloorPlan::AddRoom(Rect bounds, std::string name) {
  if (bounds.Width() <= 0.0 || bounds.Height() <= 0.0) {
    return Status::InvalidArgument("room must have positive area");
  }
  Room r;
  r.id = static_cast<RoomId>(rooms_.size());
  r.bounds = bounds;
  r.name = name.empty() ? "R" + std::to_string(r.id) : std::move(name);
  rooms_.push_back(std::move(r));
  return rooms_.back().id;
}

StatusOr<DoorId> FloorPlan::AddDoor(RoomId room, HallwayId hallway,
                                    Point position) {
  if (room < 0 || room >= static_cast<RoomId>(rooms_.size())) {
    return Status::NotFound("door references unknown room");
  }
  if (hallway < 0 || hallway >= static_cast<HallwayId>(hallways_.size())) {
    return Status::NotFound("door references unknown hallway");
  }
  const Hallway& h = hallways_[hallway];
  if (h.centerline.DistanceTo(position) > kGeomEps) {
    return Status::InvalidArgument(
        "door position must lie on the hallway centerline");
  }
  Door d;
  d.id = static_cast<DoorId>(doors_.size());
  d.room = room;
  d.hallway = hallway;
  d.position = position;
  doors_.push_back(d);
  rooms_[room].doors.push_back(d.id);
  return d.id;
}

Status FloorPlan::Validate() const {
  if (hallways_.empty()) {
    return Status::FailedPrecondition("floor plan has no hallways");
  }
  for (const Room& r : rooms_) {
    if (r.doors.empty()) {
      return Status::FailedPrecondition("room " + r.name + " has no door");
    }
  }
  for (size_t i = 0; i < rooms_.size(); ++i) {
    for (size_t j = i + 1; j < rooms_.size(); ++j) {
      const Rect overlap = rooms_[i].bounds.Intersection(rooms_[j].bounds);
      if (overlap.Area() > kGeomEps) {
        return Status::FailedPrecondition("rooms " + rooms_[i].name + " and " +
                                          rooms_[j].name + " overlap");
      }
    }
    for (const Hallway& h : hallways_) {
      const Rect overlap = rooms_[i].bounds.Intersection(h.Bounds());
      if (overlap.Area() > kGeomEps) {
        return Status::FailedPrecondition("room " + rooms_[i].name +
                                          " overlaps hallway " + h.name);
      }
    }
  }
  for (const Door& d : doors_) {
    const Room& r = rooms_[d.room];
    // The door must sit next to its room: the distance from the door
    // position to the room boundary should be at most half a hallway width.
    const double dist = r.bounds.DistanceTo(d.position);
    if (dist > hallways_[d.hallway].width / 2 + kGeomEps) {
      return Status::FailedPrecondition("door of room " + r.name +
                                        " is not adjacent to the room");
    }
  }
  return Status::Ok();
}

const Room& FloorPlan::room(RoomId id) const {
  IPQS_CHECK(id >= 0 && id < static_cast<RoomId>(rooms_.size()));
  return rooms_[id];
}

const Hallway& FloorPlan::hallway(HallwayId id) const {
  IPQS_CHECK(id >= 0 && id < static_cast<HallwayId>(hallways_.size()));
  return hallways_[id];
}

const Door& FloorPlan::door(DoorId id) const {
  IPQS_CHECK(id >= 0 && id < static_cast<DoorId>(doors_.size()));
  return doors_[id];
}

Rect FloorPlan::BoundingBox() const {
  bool first = true;
  Rect box;
  auto extend = [&box, &first](const Rect& r) {
    if (first) {
      box = r;
      first = false;
      return;
    }
    box.min_x = std::min(box.min_x, r.min_x);
    box.min_y = std::min(box.min_y, r.min_y);
    box.max_x = std::max(box.max_x, r.max_x);
    box.max_y = std::max(box.max_y, r.max_y);
  };
  for (const Room& r : rooms_) extend(r.bounds);
  for (const Hallway& h : hallways_) extend(h.Bounds());
  return box;
}

double FloorPlan::TotalArea() const {
  double area = 0.0;
  for (const Room& r : rooms_) area += r.Area();
  for (const Hallway& h : hallways_) area += h.Bounds().Area();
  // Subtract pairwise hallway crossing overlaps so junctions count once.
  for (size_t i = 0; i < hallways_.size(); ++i) {
    for (size_t j = i + 1; j < hallways_.size(); ++j) {
      area -= hallways_[i].Bounds().Intersection(hallways_[j].Bounds()).Area();
    }
  }
  return area;
}

std::optional<RoomId> FloorPlan::LocateRoom(const Point& p) const {
  for (const Room& r : rooms_) {
    if (r.bounds.Contains(p)) {
      return r.id;
    }
  }
  return std::nullopt;
}

std::optional<HallwayId> FloorPlan::LocateHallway(const Point& p) const {
  if (LocateRoom(p).has_value()) {
    return std::nullopt;
  }
  for (const Hallway& h : hallways_) {
    if (h.Bounds().Contains(p)) {
      return h.id;
    }
  }
  return std::nullopt;
}

}  // namespace ipqs
