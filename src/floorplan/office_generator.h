#ifndef IPQS_FLOORPLAN_OFFICE_GENERATOR_H_
#define IPQS_FLOORPLAN_OFFICE_GENERATOR_H_

#include "common/statusor.h"
#include "floorplan/floor_plan.h"

namespace ipqs {

// Parameters of the synthetic single-floor office building used throughout
// the paper's evaluation (Section 5): 30 rooms and 4 hallways, all rooms
// connected to a hallway by a door.
//
// Layout: `num_wings` horizontal hallways ("wings") stacked vertically,
// joined at their left end by one vertical spine hallway. Each wing has
// `rooms_per_side` rooms above and below it. Defaults produce exactly the
// paper's setting: 3 wings x 2 sides x 5 rooms = 30 rooms, 3 + 1 = 4
// hallways.
struct OfficeConfig {
  int num_wings = 3;
  int rooms_per_side = 5;
  double room_width = 10.0;   // Extent along the hallway, meters.
  double room_depth = 8.0;    // Extent away from the hallway, meters.
  double hallway_width = 2.0;

  int TotalRooms() const { return num_wings * rooms_per_side * 2; }
  int TotalHallways() const { return num_wings + 1; }
};

// Builds the office floor plan described by `config`. The result passes
// FloorPlan::Validate().
StatusOr<FloorPlan> GenerateOffice(const OfficeConfig& config);

}  // namespace ipqs

#endif  // IPQS_FLOORPLAN_OFFICE_GENERATOR_H_
