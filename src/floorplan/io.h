#ifndef IPQS_FLOORPLAN_IO_H_
#define IPQS_FLOORPLAN_IO_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/statusor.h"
#include "floorplan/floor_plan.h"

namespace ipqs {

// Plain-text building description, so floor plans and reader deployments
// can live in version-controlled files instead of C++:
//
//   # comment (blank lines ignored)
//   hallway <name> <ax> <ay> <bx> <by> <width>
//   room    <name> <min_x> <min_y> <max_x> <max_y>
//   door    <room_name> <hallway_name> <x> <y>
//   reader  <x> <y> <range>
//
// Directives may appear in any order except that doors must follow the
// rooms and hallways they reference. Names must be unique per kind.
struct ReaderSpec {
  Point pos;
  double range = 2.0;
};

struct BuildingSpec {
  FloorPlan plan;
  std::vector<ReaderSpec> readers;
};

// Parses a building description. The returned plan passes
// FloorPlan::Validate(); errors carry the offending line number.
StatusOr<BuildingSpec> ParseBuilding(std::string_view text);

// Renders a plan (and optionally a deployment) back into the text format;
// ParseBuilding(SerializeBuilding(p)) reproduces the same geometry.
std::string SerializeBuilding(const FloorPlan& plan,
                              const std::vector<ReaderSpec>& readers = {});

// Reads and parses a building file from disk.
StatusOr<BuildingSpec> LoadBuildingFile(const std::string& path);

}  // namespace ipqs

#endif  // IPQS_FLOORPLAN_IO_H_
