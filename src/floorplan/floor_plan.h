#ifndef IPQS_FLOORPLAN_FLOOR_PLAN_H_
#define IPQS_FLOORPLAN_FLOOR_PLAN_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "geom/rect.h"
#include "geom/segment.h"

namespace ipqs {

using RoomId = int32_t;
using HallwayId = int32_t;
using DoorId = int32_t;

inline constexpr int32_t kInvalidId = -1;

// A door connects one room to one hallway. `position` lies on the hallway
// centerline; the walking graph places the door node there, with a stub edge
// leading into the room.
struct Door {
  DoorId id = kInvalidId;
  RoomId room = kInvalidId;
  HallwayId hallway = kInvalidId;
  Point position;
};

// An axis-aligned room. Rooms are reachable only through their doors.
struct Room {
  RoomId id = kInvalidId;
  std::string name;
  Rect bounds;
  std::vector<DoorId> doors;

  double Area() const { return bounds.Area(); }
};

// A straight hallway, modelled as a centerline segment plus a width. The
// paper assumes reader activation ranges cover the full hallway width, so
// object locations across the width are never observable; the walking graph
// therefore collapses hallways onto their centerlines.
struct Hallway {
  HallwayId id = kInvalidId;
  std::string name;
  Segment centerline;
  double width = 2.0;

  // Full 2-D footprint (centerline extruded by width/2 on both sides).
  // Only axis-aligned centerlines are supported.
  Rect Bounds() const;

  double Length() const { return centerline.Length(); }
  bool IsHorizontal() const;
};

// An indoor floor plan: a set of hallways and rooms stitched together by
// doors. This is the static world model every other module consumes.
class FloorPlan {
 public:
  FloorPlan() = default;

  // Mutators used by generators / custom construction. Centerlines must be
  // axis-aligned (the indoor walking graph model in the paper assumes
  // rectilinear office layouts).
  StatusOr<HallwayId> AddHallway(Segment centerline, double width,
                                 std::string name = "");
  StatusOr<RoomId> AddRoom(Rect bounds, std::string name = "");

  // Registers a door between `room` and `hallway` at `position`, which must
  // lie on the hallway centerline (within 1e-6) and on/next to the room
  // boundary.
  StatusOr<DoorId> AddDoor(RoomId room, HallwayId hallway, Point position);

  // Structural validation: ids consistent, every room has at least one door,
  // rooms do not overlap hallway footprints or one another.
  Status Validate() const;

  const std::vector<Room>& rooms() const { return rooms_; }
  const std::vector<Hallway>& hallways() const { return hallways_; }
  const std::vector<Door>& doors() const { return doors_; }

  const Room& room(RoomId id) const;
  const Hallway& hallway(HallwayId id) const;
  const Door& door(DoorId id) const;

  // Smallest rect covering all rooms and hallways.
  Rect BoundingBox() const;

  // Total walkable area: sum of room areas plus hallway footprints
  // (hallway overlap at crossings is not double counted exactly; crossings
  // are rare and small, so footprints are summed minus pairwise overlaps).
  double TotalArea() const;

  // Which room/hallway contains `p`, if any. When `p` lies in both (e.g.
  // exactly on a shared wall), the room wins.
  std::optional<RoomId> LocateRoom(const Point& p) const;
  std::optional<HallwayId> LocateHallway(const Point& p) const;

 private:
  std::vector<Room> rooms_;
  std::vector<Hallway> hallways_;
  std::vector<Door> doors_;
};

}  // namespace ipqs

#endif  // IPQS_FLOORPLAN_FLOOR_PLAN_H_
