#include "floorplan/office_generator.h"

#include <string>

namespace ipqs {

StatusOr<FloorPlan> GenerateOffice(const OfficeConfig& config) {
  if (config.num_wings < 1 || config.rooms_per_side < 1) {
    return Status::InvalidArgument("office needs at least one wing and room");
  }
  if (config.room_width <= 0 || config.room_depth <= 0 ||
      config.hallway_width <= 0) {
    return Status::InvalidArgument("office dimensions must be positive");
  }

  FloorPlan plan;

  const double w = config.hallway_width;
  const double wing_length = config.rooms_per_side * config.room_width;
  // Wings are spaced so that the rooms of adjacent wings touch back to back.
  const double wing_spacing = 2 * config.room_depth + w;
  const double spine_x = -w / 2;

  // Vertical spine connecting all wings at their left end.
  const double spine_top = (config.num_wings - 1) * wing_spacing;
  if (config.num_wings > 1) {
    IPQS_RETURN_IF_ERROR(
        plan.AddHallway(Segment({spine_x, 0.0}, {spine_x, spine_top}), w,
                        "spine")
            .status());
  }

  for (int i = 0; i < config.num_wings; ++i) {
    const double y = i * wing_spacing;
    IPQS_RETURN_IF_ERROR(
        plan.AddHallway(Segment({spine_x, y}, {wing_length, y}), w,
                        "wing" + std::to_string(i))
            .status());
  }
  // Hallway ids: spine (if present) comes first, then wings in order.
  const HallwayId first_wing = config.num_wings > 1 ? 1 : 0;

  for (int i = 0; i < config.num_wings; ++i) {
    const double y = i * wing_spacing;
    const HallwayId wing = first_wing + i;
    for (int side = 0; side < 2; ++side) {
      // side 0: rooms above the wing; side 1: rooms below.
      const double y_near = side == 0 ? y + w / 2 : y - w / 2;
      const double y_far = side == 0 ? y_near + config.room_depth
                                     : y_near - config.room_depth;
      for (int k = 0; k < config.rooms_per_side; ++k) {
        const double x0 = k * config.room_width;
        const double x1 = x0 + config.room_width;
        const Rect bounds = Rect::FromCorners({x0, y_near}, {x1, y_far});
        const std::string name = "R" + std::to_string(i) + "_" +
                                 (side == 0 ? std::string("n") : "s") +
                                 std::to_string(k);
        RoomId room;
        IPQS_ASSIGN_OR_RETURN(room, plan.AddRoom(bounds, name));
        // Doors are staggered (north rooms at 30% of the wall, south rooms
        // at 70%) so that facing rooms do not share a door point on the
        // centerline.
        const double door_x = side == 0 ? x0 + 0.3 * config.room_width
                                        : x0 + 0.7 * config.room_width;
        IPQS_RETURN_IF_ERROR(
            plan.AddDoor(room, wing, Point{door_x, y}).status());
      }
    }
  }

  IPQS_RETURN_IF_ERROR(plan.Validate());
  return plan;
}

}  // namespace ipqs
