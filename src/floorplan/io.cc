#include "floorplan/io.h"

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

namespace ipqs {
namespace {

Status LineError(int line, const std::string& message) {
  return Status::InvalidArgument("line " + std::to_string(line) + ": " +
                                 message);
}

// Parses `count` doubles from the stream; false on failure.
bool ReadDoubles(std::istringstream& in, int count, double* out) {
  for (int i = 0; i < count; ++i) {
    if (!(in >> out[i])) {
      return false;
    }
  }
  return true;
}

}  // namespace

StatusOr<BuildingSpec> ParseBuilding(std::string_view text) {
  BuildingSpec spec;
  std::map<std::string, HallwayId> hallway_by_name;
  std::map<std::string, RoomId> room_by_name;

  std::istringstream lines{std::string(text)};
  std::string line;
  int line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    // Strip comments.
    const size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream in(line);
    std::string directive;
    if (!(in >> directive)) {
      continue;  // Blank line.
    }

    if (directive == "hallway") {
      std::string name;
      double v[5];
      if (!(in >> name) || !ReadDoubles(in, 5, v)) {
        return LineError(line_no,
                         "expected: hallway <name> <ax> <ay> <bx> <by> <w>");
      }
      if (hallway_by_name.count(name)) {
        return LineError(line_no, "duplicate hallway name '" + name + "'");
      }
      auto id = spec.plan.AddHallway(Segment({v[0], v[1]}, {v[2], v[3]}),
                                     v[4], name);
      if (!id.ok()) {
        return LineError(line_no, id.status().message());
      }
      hallway_by_name[name] = *id;
    } else if (directive == "room") {
      std::string name;
      double v[4];
      if (!(in >> name) || !ReadDoubles(in, 4, v)) {
        return LineError(
            line_no, "expected: room <name> <min_x> <min_y> <max_x> <max_y>");
      }
      if (room_by_name.count(name)) {
        return LineError(line_no, "duplicate room name '" + name + "'");
      }
      auto id =
          spec.plan.AddRoom(Rect::FromCorners({v[0], v[1]}, {v[2], v[3]}),
                            name);
      if (!id.ok()) {
        return LineError(line_no, id.status().message());
      }
      room_by_name[name] = *id;
    } else if (directive == "door") {
      std::string room;
      std::string hallway;
      double v[2];
      if (!(in >> room >> hallway) || !ReadDoubles(in, 2, v)) {
        return LineError(line_no,
                         "expected: door <room> <hallway> <x> <y>");
      }
      const auto rit = room_by_name.find(room);
      if (rit == room_by_name.end()) {
        return LineError(line_no, "unknown room '" + room + "'");
      }
      const auto hit = hallway_by_name.find(hallway);
      if (hit == hallway_by_name.end()) {
        return LineError(line_no, "unknown hallway '" + hallway + "'");
      }
      auto id = spec.plan.AddDoor(rit->second, hit->second, {v[0], v[1]});
      if (!id.ok()) {
        return LineError(line_no, id.status().message());
      }
    } else if (directive == "reader") {
      double v[3];
      if (!ReadDoubles(in, 3, v)) {
        return LineError(line_no, "expected: reader <x> <y> <range>");
      }
      if (v[2] <= 0.0) {
        return LineError(line_no, "reader range must be positive");
      }
      spec.readers.push_back(ReaderSpec{{v[0], v[1]}, v[2]});
    } else {
      return LineError(line_no, "unknown directive '" + directive + "'");
    }
  }

  IPQS_RETURN_IF_ERROR(spec.plan.Validate());
  return spec;
}

std::string SerializeBuilding(const FloorPlan& plan,
                              const std::vector<ReaderSpec>& readers) {
  std::string out;
  char buf[160];
  out += "# ipqs building description\n";
  for (const Hallway& h : plan.hallways()) {
    std::snprintf(buf, sizeof(buf), "hallway %s %g %g %g %g %g\n",
                  h.name.c_str(), h.centerline.a.x, h.centerline.a.y,
                  h.centerline.b.x, h.centerline.b.y, h.width);
    out += buf;
  }
  for (const Room& r : plan.rooms()) {
    std::snprintf(buf, sizeof(buf), "room %s %g %g %g %g\n", r.name.c_str(),
                  r.bounds.min_x, r.bounds.min_y, r.bounds.max_x,
                  r.bounds.max_y);
    out += buf;
  }
  for (const Door& d : plan.doors()) {
    std::snprintf(buf, sizeof(buf), "door %s %s %g %g\n",
                  plan.room(d.room).name.c_str(),
                  plan.hallway(d.hallway).name.c_str(), d.position.x,
                  d.position.y);
    out += buf;
  }
  for (const ReaderSpec& r : readers) {
    std::snprintf(buf, sizeof(buf), "reader %g %g %g\n", r.pos.x, r.pos.y,
                  r.range);
    out += buf;
  }
  return out;
}

StatusOr<BuildingSpec> LoadBuildingFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return Status::NotFound("cannot open building file: " + path);
  }
  std::ostringstream content;
  content << file.rdbuf();
  return ParseBuilding(content.str());
}

}  // namespace ipqs
