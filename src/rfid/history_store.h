#ifndef IPQS_RFID_HISTORY_STORE_H_
#define IPQS_RFID_HISTORY_STORE_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "rfid/data_collector.h"

namespace ipqs {

// Long-horizon reading store. The event-driven data collector deliberately
// retains only the two most recent detecting devices per object — enough
// for snapshot queries "launched at the present time". Section 4.1 notes
// that historical queries require keeping a longer history; this store is
// that modification: it keeps every aggregated entry and can reconstruct,
// for any past instant, exactly the two-device window the particle filter
// would have seen then.
class HistoryStore {
 public:
  HistoryStore() = default;

  // Ingests one raw reading (same aggregation semantics as DataCollector:
  // at most one entry per (object, second, reader)). Readings older than
  // the object's newest entry are dropped silently, keeping each log
  // time-ordered even when the delivery layer reorders (src/faults/).
  void Observe(const RawReading& reading);

  // The collector-equivalent history as of `time` (inclusive): entries of
  // the object's two most recent device episodes whose readings are
  // <= time. nullopt when the object had not been seen by `time`.
  std::optional<DataCollector::ObjectHistory> SnapshotAt(ObjectId object,
                                                         int64_t time) const;

  // Every retained entry of the object (ascending time); nullptr if the
  // object was never seen.
  const std::vector<AggregatedEntry>* FullHistory(ObjectId object) const;

  std::vector<ObjectId> KnownObjects() const;
  size_t TotalEntries() const;

  // Complete store state in deterministic order (ascending object), for
  // the persistence layer (src/persist/).
  struct PersistedState {
    std::vector<std::pair<ObjectId, std::vector<AggregatedEntry>>> logs;

    friend bool operator==(const PersistedState&,
                           const PersistedState&) = default;
  };
  PersistedState ExportState() const;
  void RestoreState(PersistedState state);

 private:
  std::unordered_map<ObjectId, std::vector<AggregatedEntry>> entries_;
};

}  // namespace ipqs

#endif  // IPQS_RFID_HISTORY_STORE_H_
