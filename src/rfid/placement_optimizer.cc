#include "rfid/placement_optimizer.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"

namespace ipqs {
namespace {

// A candidate or probe point on a hallway centerline.
struct LinePoint {
  Point pos;
  HallwayId hallway = kInvalidId;
};

// Samples points every `spacing` meters along all centerlines.
std::vector<LinePoint> SampleCenterlines(const FloorPlan& plan,
                                         double spacing) {
  std::vector<LinePoint> out;
  for (const Hallway& h : plan.hallways()) {
    const int n = std::max(1, static_cast<int>(h.Length() / spacing));
    for (int i = 0; i <= n; ++i) {
      out.push_back(
          {h.centerline.AtOffset(i * h.Length() / n), h.id});
    }
  }
  return out;
}

}  // namespace

StatusOr<Deployment> OptimizePlacement(const FloorPlan& plan,
                                       const WalkingGraph& graph,
                                       const PlacementConfig& config) {
  if (config.num_readers <= 0) {
    return Status::InvalidArgument("need at least one reader");
  }
  if (config.activation_range <= 0 || config.candidate_spacing <= 0) {
    return Status::InvalidArgument("range and spacing must be positive");
  }
  const double min_sep = config.min_separation < 0
                             ? 2.0 * config.activation_range
                             : config.min_separation;

  const std::vector<LinePoint> candidates =
      SampleCenterlines(plan, config.candidate_spacing);
  // Dense probes measure coverage; each probe stands for `probe_spacing`
  // meters of centerline.
  const double probe_spacing = config.candidate_spacing / 2;
  const std::vector<LinePoint> probes =
      SampleCenterlines(plan, probe_spacing);

  std::vector<bool> covered(probes.size(), false);
  std::vector<bool> taken(candidates.size(), false);
  std::vector<Point> chosen;

  Deployment deployment;
  for (int r = 0; r < config.num_readers; ++r) {
    int best = -1;
    int best_gain = -1;
    for (size_t c = 0; c < candidates.size(); ++c) {
      if (taken[c]) {
        continue;
      }
      bool too_close = false;
      for (const Point& p : chosen) {
        if (Distance(p, candidates[c].pos) < min_sep) {
          too_close = true;
          break;
        }
      }
      if (too_close) {
        continue;
      }
      int gain = 0;
      for (size_t i = 0; i < probes.size(); ++i) {
        if (!covered[i] && Distance(probes[i].pos, candidates[c].pos) <=
                               config.activation_range) {
          ++gain;
        }
      }
      if (gain > best_gain) {
        best_gain = gain;
        best = static_cast<int>(c);
      }
    }
    if (best < 0) {
      return Status::FailedPrecondition(
          "cannot place " + std::to_string(config.num_readers) +
          " readers with the given separation constraint");
    }
    taken[best] = true;
    chosen.push_back(candidates[best].pos);
    for (size_t i = 0; i < probes.size(); ++i) {
      if (Distance(probes[i].pos, candidates[best].pos) <=
          config.activation_range) {
        covered[i] = true;
      }
    }
    deployment.AddReader(graph, candidates[best].pos,
                         config.activation_range);
  }
  return deployment;
}

CoverageReport EvaluateCoverage(const FloorPlan& plan,
                                const Deployment& deployment) {
  CoverageReport report;
  double total = 0.0;
  double covered = 0.0;
  double longest_gap = 0.0;
  const double step = 0.25;
  for (const Hallway& h : plan.hallways()) {
    double gap = 0.0;
    const int n = std::max(1, static_cast<int>(h.Length() / step));
    for (int i = 0; i <= n; ++i) {
      const Point p = h.centerline.AtOffset(i * h.Length() / n);
      const double weight = h.Length() / n;
      total += weight;
      if (deployment.FirstCovering(p).has_value()) {
        covered += weight;
        longest_gap = std::max(longest_gap, gap);
        gap = 0.0;
      } else {
        gap += weight;
      }
    }
    longest_gap = std::max(longest_gap, gap);
  }
  report.covered_fraction = total == 0.0 ? 0.0 : covered / total;
  report.longest_gap = longest_gap;
  return report;
}

}  // namespace ipqs
