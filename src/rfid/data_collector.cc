#include "rfid/data_collector.h"

#include <algorithm>

#include "common/check.h"

namespace ipqs {

void DataCollector::Observe(const RawReading& reading) {
  IPQS_CHECK_NE(reading.object, kInvalidId);
  IPQS_CHECK_NE(reading.reader, kInvalidId);
  if (metrics_.readings != nullptr) {
    metrics_.readings->Increment();
  }
  const bool new_object = histories_.count(reading.object) == 0;
  ObjectHistory& h = histories_[reading.object];
  if (new_object && metrics_.objects != nullptr) {
    metrics_.objects->Set(static_cast<int64_t>(histories_.size()));
  }

  if (!h.entries.empty()) {
    IPQS_CHECK_GE(reading.time, h.entries.back().time)
        << "raw readings must arrive in time order per object";
  }

  if (reading.reader != h.current_device) {
    // Device hand-off: LEAVE the old device, ENTER the new one, and drop
    // entries from the device that just aged out of the 2-device window.
    if (metrics_.handoffs != nullptr && h.current_device != kInvalidId) {
      metrics_.handoffs->Increment();
    }
    if (record_events_ && h.current_device != kInvalidId) {
      events_.push_back({reading.object, h.current_device,
                         h.entries.back().time, /*enter=*/false});
      if (metrics_.events != nullptr) {
        metrics_.events->Increment();
      }
    }
    if (record_events_) {
      events_.push_back(
          {reading.object, reading.reader, reading.time, /*enter=*/true});
      if (metrics_.events != nullptr) {
        metrics_.events->Increment();
      }
    }
    if (h.previous_device != kInvalidId) {
      const ReaderId drop = h.previous_device;
      std::erase_if(h.entries, [drop](const AggregatedEntry& e) {
        return e.reader == drop;
      });
    }
    h.previous_device = h.current_device;
    h.current_device = reading.reader;
  }

  // Aggregation: at most one entry per (second, reader).
  if (!h.entries.empty() && h.entries.back().time == reading.time &&
      h.entries.back().reader == reading.reader) {
    return;
  }
  h.entries.push_back({reading.time, reading.reader});
  if (metrics_.entries != nullptr) {
    metrics_.entries->Increment();
  }
}

const DataCollector::ObjectHistory* DataCollector::History(
    ObjectId object) const {
  const auto it = histories_.find(object);
  return it == histories_.end() ? nullptr : &it->second;
}

std::optional<AggregatedEntry> DataCollector::LastReading(
    ObjectId object) const {
  const ObjectHistory* h = History(object);
  if (h == nullptr || h->entries.empty()) {
    return std::nullopt;
  }
  return h->entries.back();
}

std::vector<ObjectId> DataCollector::KnownObjects() const {
  std::vector<ObjectId> out;
  out.reserve(histories_.size());
  for (const auto& [id, _] : histories_) {
    out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

size_t DataCollector::TotalEntriesRetained() const {
  size_t total = 0;
  for (const auto& [_, h] : histories_) {
    total += h.entries.size();
  }
  return total;
}

}  // namespace ipqs
