#include "rfid/data_collector.h"

#include <algorithm>

#include "common/check.h"

namespace ipqs {

void DataCollector::Observe(const RawReading& reading) {
  IPQS_CHECK_NE(reading.object, kInvalidId);
  IPQS_CHECK_NE(reading.reader, kInvalidId);
  if (metrics_.readings != nullptr) {
    metrics_.readings->Increment();
  }
  NoteReaderObserved(reading.reader, reading.time);

  if (config_.reorder_window_seconds <= 0) {
    Ingest(reading);
    return;
  }

  // Reorder buffer: stage until the watermark passes the reading. Anything
  // at or behind the watermark missed its window — dropping it (counted)
  // is the only way to keep already-released history monotone.
  if (reading.time <= watermark_) {
    ++ingest_stats_.late_dropped;
    if (metrics_.late_dropped != nullptr) {
      metrics_.late_dropped->Increment();
    }
    return;
  }
  if (max_seen_time_ != std::numeric_limits<int64_t>::min() &&
      reading.time < max_seen_time_) {
    // Arrived behind a newer reading: the buffer will repair the order.
    ++ingest_stats_.reordered;
    if (metrics_.reordered != nullptr) {
      metrics_.reordered->Increment();
    }
  }
  max_seen_time_ = std::max(max_seen_time_, reading.time);
  staged_.push_back(reading);
}

void DataCollector::NoteReaderObserved(ReaderId reader, int64_t time) {
  if (reader >= static_cast<ReaderId>(reader_observed_.size())) {
    reader_observed_.resize(static_cast<size_t>(reader) + 1, 0);
  }
  ++reader_observed_[reader];
  MarkReaderLive(reader, time);
}

void DataCollector::NoteReaderHeartbeat(ReaderId reader, int64_t time) {
  IPQS_CHECK_GE(reader, 0);
  if (reader >= static_cast<ReaderId>(reader_heartbeats_.size())) {
    reader_heartbeats_.resize(static_cast<size_t>(reader) + 1, 0);
  }
  ++reader_heartbeats_[reader];
  MarkReaderLive(reader, time);
}

void DataCollector::MarkReaderLive(ReaderId reader, int64_t time) {
  std::vector<uint8_t>& live = live_by_second_[time];
  if (static_cast<size_t>(reader) >= live.size()) {
    live.resize(static_cast<size_t>(reader) + 1, 0);
  }
  live[reader] = 1;
  live_max_ = std::max(live_max_, time);
  while (!live_by_second_.empty() &&
         live_by_second_.begin()->first < live_max_ - kLivenessWindowSeconds) {
    live_by_second_.erase(live_by_second_.begin());
  }
}

bool DataCollector::ReaderLiveAt(ReaderId reader, int64_t second) const {
  if (live_max_ != std::numeric_limits<int64_t>::min() &&
      second < live_max_ - kLivenessWindowSeconds) {
    return true;  // Outside the retention window: unknown, assume live.
  }
  const auto it = live_by_second_.find(second);
  return it != live_by_second_.end() && reader >= 0 &&
         static_cast<size_t>(reader) < it->second.size() &&
         it->second[reader] != 0;
}

void DataCollector::Flush(int64_t now) {
  if (config_.reorder_window_seconds <= 0) {
    return;
  }
  FlushStagedUpTo(now - config_.reorder_window_seconds);
}

void DataCollector::FlushAll() {
  FlushStagedUpTo(std::numeric_limits<int64_t>::max());
}

void DataCollector::FlushStagedUpTo(int64_t up_to) {
  if (up_to <= watermark_) {
    return;  // Watermark never regresses.
  }
  // Split off everything due, sort it into canonical (time, reader,
  // object) order, suppress exact duplicates, and apply.
  auto due_end = std::stable_partition(
      staged_.begin(), staged_.end(),
      [up_to](const RawReading& r) { return r.time <= up_to; });
  std::vector<RawReading> due(staged_.begin(), due_end);
  staged_.erase(staged_.begin(), due_end);
  std::sort(due.begin(), due.end(),
            [](const RawReading& a, const RawReading& b) {
              if (a.time != b.time) return a.time < b.time;
              if (a.reader != b.reader) return a.reader < b.reader;
              return a.object < b.object;
            });
  for (size_t i = 0; i < due.size(); ++i) {
    if (i > 0 && due[i].time == due[i - 1].time &&
        due[i].reader == due[i - 1].reader &&
        due[i].object == due[i - 1].object) {
      // Idempotent duplicate suppression: a re-delivered reading is
      // byte-identical to one already applied this flush.
      ++ingest_stats_.duplicates_dropped;
      if (metrics_.duplicates_dropped != nullptr) {
        metrics_.duplicates_dropped->Increment();
      }
      continue;
    }
    Ingest(due[i]);
  }
  watermark_ = up_to;
}

void DataCollector::Ingest(const RawReading& reading) {
  // Monotonicity guard: a reading that would rewind this object's
  // aggregated history (late delivery beyond the reorder window, or a
  // skewed clock) is dropped and counted — applying it would corrupt the
  // time-ordered entry list every downstream consumer relies on.
  const auto existing = histories_.find(reading.object);
  if (existing != histories_.end() && !existing->second.entries.empty() &&
      reading.time < existing->second.entries.back().time) {
    ++ingest_stats_.late_dropped;
    if (metrics_.late_dropped != nullptr) {
      metrics_.late_dropped->Increment();
    }
    return;
  }

  const bool new_object = existing == histories_.end();
  ObjectHistory& h = histories_[reading.object];
  if (new_object && metrics_.objects != nullptr) {
    metrics_.objects->Set(static_cast<int64_t>(histories_.size()));
  }

  // Aggregation: at most one entry per (second, reader). Checked before
  // the hand-off branch so a re-delivered duplicate of the newest entry is
  // recognized as such instead of toggling devices.
  if (!h.entries.empty() && h.entries.back().time == reading.time &&
      h.entries.back().reader == reading.reader) {
    ++ingest_stats_.duplicates_dropped;
    if (metrics_.duplicates_dropped != nullptr) {
      metrics_.duplicates_dropped->Increment();
    }
    return;
  }

  const bool handoff = reading.reader != h.current_device;
  if (handoff) {
    // Device hand-off: LEAVE the old device, ENTER the new one, and drop
    // entries from the device that just aged out of the 2-device window.
    if (metrics_.handoffs != nullptr && h.current_device != kInvalidId) {
      metrics_.handoffs->Increment();
    }
    if (record_events_ && h.current_device != kInvalidId) {
      events_.push_back({reading.object, h.current_device,
                         h.entries.back().time, /*enter=*/false});
      if (metrics_.events != nullptr) {
        metrics_.events->Increment();
      }
    }
    if (record_events_) {
      events_.push_back(
          {reading.object, reading.reader, reading.time, /*enter=*/true});
      if (metrics_.events != nullptr) {
        metrics_.events->Increment();
      }
    }
    if (h.previous_device != kInvalidId) {
      const ReaderId drop = h.previous_device;
      std::erase_if(h.entries, [drop](const AggregatedEntry& e) {
        return e.reader == drop;
      });
    }
    h.previous_device = h.current_device;
    h.current_device = reading.reader;
  }

  h.entries.push_back({reading.time, reading.reader});
  if (metrics_.entries != nullptr) {
    metrics_.entries->Increment();
  }
  if (config_.change_log_capacity > 0) {
    change_log_.push_back(
        {reading.object, reading.reader, reading.time, handoff});
    ++change_end_;
    while (change_log_.size() > config_.change_log_capacity) {
      change_log_.pop_front();
      ++change_begin_;
    }
  }
}

uint64_t DataCollector::ReadChanges(uint64_t cursor,
                                    std::vector<AppliedChange>* out,
                                    bool* lost_sync) const {
  *lost_sync = cursor < change_begin_;
  for (uint64_t seq = std::max(cursor, change_begin_); seq < change_end_;
       ++seq) {
    out->push_back(change_log_[seq - change_begin_]);
  }
  return change_end_;
}

const DataCollector::ObjectHistory* DataCollector::History(
    ObjectId object) const {
  const auto it = histories_.find(object);
  return it == histories_.end() ? nullptr : &it->second;
}

std::optional<AggregatedEntry> DataCollector::LastReading(
    ObjectId object) const {
  const ObjectHistory* h = History(object);
  if (h == nullptr || h->entries.empty()) {
    return std::nullopt;
  }
  return h->entries.back();
}

std::vector<ObjectId> DataCollector::KnownObjects() const {
  std::vector<ObjectId> out;
  out.reserve(histories_.size());
  for (const auto& [id, _] : histories_) {
    out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

DataCollector::PersistedState DataCollector::ExportState() const {
  PersistedState state;
  state.histories.reserve(histories_.size());
  for (const auto& [id, history] : histories_) {
    state.histories.emplace_back(id, history);
  }
  std::sort(state.histories.begin(), state.histories.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  state.staged = staged_;
  state.max_seen_time = max_seen_time_;
  state.watermark = watermark_;
  state.ingest = ingest_stats_;
  return state;
}

void DataCollector::RestoreState(PersistedState state) {
  histories_.clear();
  for (auto& [id, history] : state.histories) {
    histories_.emplace(id, std::move(history));
  }
  staged_ = std::move(state.staged);
  max_seen_time_ = state.max_seen_time;
  watermark_ = state.watermark;
  ingest_stats_ = state.ingest;
  // The restored histories can differ arbitrarily from what consumers have
  // seen: drop the log and advance change_begin_ past every outstanding
  // cursor so each consumer observes a lost_sync on its next read.
  change_log_.clear();
  change_begin_ = ++change_end_;
  // Per-reader health inputs are process-local (the serde format is
  // frozen): reset them so a recovered collector re-warms from scratch.
  reader_observed_.clear();
  live_by_second_.clear();
  live_max_ = std::numeric_limits<int64_t>::min();
  if (metrics_.objects != nullptr) {
    metrics_.objects->Set(static_cast<int64_t>(histories_.size()));
  }
}

size_t DataCollector::TotalEntriesRetained() const {
  size_t total = 0;
  for (const auto& [_, h] : histories_) {
    total += h.entries.size();
  }
  return total;
}

}  // namespace ipqs
