#ifndef IPQS_RFID_SENSING_MODEL_H_
#define IPQS_RFID_SENSING_MODEL_H_

#include "common/rng.h"

namespace ipqs {

// Stochastic model of RFID detection noise. Raw RFID streams suffer false
// negatives (RF interference, tag orientation, ...); a reader samples its
// field `samples_per_second` times per second and each sample independently
// detects a tag inside the activation range with `sample_detection_prob`.
// The data collector aggregates to one entry per second, so what matters
// downstream is the per-second detection probability
//   1 - (1 - p)^samples_per_second,
// which is high but below 1 — exactly the paper's argument for aggregation
// ("it is very unlikely that all the readings of an object during one
// second are totally missed").
struct SensingConfig {
  double sample_detection_prob = 0.7;
  int samples_per_second = 5;
};

class SensingModel {
 public:
  SensingModel() : SensingModel(SensingConfig{}) {}
  explicit SensingModel(const SensingConfig& config);

  const SensingConfig& config() const { return config_; }

  // Probability that a tag inside the range is detected at least once
  // within one second.
  double PerSecondDetectionProbability() const { return per_second_prob_; }

  // Draws whether a tag inside the range produces an aggregated entry for
  // the current second.
  bool DetectsThisSecond(Rng& rng) const;

 private:
  SensingConfig config_;
  double per_second_prob_;
};

}  // namespace ipqs

#endif  // IPQS_RFID_SENSING_MODEL_H_
