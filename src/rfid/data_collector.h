#ifndef IPQS_RFID_DATA_COLLECTOR_H_
#define IPQS_RFID_DATA_COLLECTOR_H_

#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "obs/metrics.h"
#include "rfid/reader.h"

namespace ipqs {

// Optional observability hooks for a DataCollector; any member may be
// null. Observe() runs on the (single-threaded) ingest path, so these are
// plain counter bumps.
struct CollectorMetrics {
  obs::Counter* readings = nullptr;   // Raw readings ingested.
  obs::Counter* entries = nullptr;    // Aggregated entries appended.
  obs::Counter* handoffs = nullptr;   // Device transitions per object.
  obs::Counter* events = nullptr;     // ENTER/LEAVE events emitted.
  obs::Gauge* objects = nullptr;      // Objects with at least one reading.
  // Ingestion-hardening counters (fault tolerance).
  obs::Counter* reordered = nullptr;           // Out-of-order arrivals fixed
                                               // by the reorder buffer.
  obs::Counter* duplicates_dropped = nullptr;  // Idempotent suppression.
  obs::Counter* late_dropped = nullptr;        // Arrived behind the
                                               // watermark / object clock.
};

// Ingestion-hardening knobs. The zero-value config reproduces the original
// trusting collector byte for byte (readings apply immediately, in arrival
// order).
struct CollectorConfig {
  // With a positive window, arriving readings are staged and applied only
  // once the watermark — the maximum reading timestamp seen so far minus
  // this window — passes them, in (time, reader, object) order. Any
  // delivery reordered by at most this many seconds is repaired exactly;
  // readings arriving behind the watermark are dropped (and counted) so
  // per-object histories stay monotone. The price is that queries do not
  // see the last `reorder_window_seconds` of readings until they flush.
  int reorder_window_seconds = 0;

  // With a positive capacity, every reading that actually mutates an
  // aggregated history is also appended to a bounded change log that
  // downstream consumers (the subscription manager) drain by cursor. 0
  // keeps the log off — ingest behavior is identical either way; the log
  // only records what was applied.
  size_t change_log_capacity = 0;
};

// One applied mutation of an aggregated history: `reader` saw `object` at
// second `time`, and the entry was appended (readings swallowed by the
// duplicate/monotonicity guards never appear here). `handoff` marks a
// device transition, which additionally dropped the aged-out device's
// entries.
struct AppliedChange {
  ObjectId object = kInvalidId;
  ReaderId reader = kInvalidId;
  int64_t time = 0;
  bool handoff = false;
};

// One aggregated detection: `reader` saw the object at least once during
// second `time`.
struct AggregatedEntry {
  int64_t time = 0;
  ReaderId reader = kInvalidId;

  friend bool operator==(const AggregatedEntry&,
                         const AggregatedEntry&) = default;
};

// An ENTER or LEAVE event: the object entered/left the activation range of
// `reader` (LEAVE is emitted lazily, when the next device sees the object).
struct ReaderEvent {
  ObjectId object = kInvalidId;
  ReaderId reader = kInvalidId;
  int64_t time = 0;
  bool enter = true;
};

// Event-driven raw data collector (Section 4.1 of the paper). Aggregates
// raw readings to one entry per second and, per object, retains only the
// readings of the two most recent detecting devices — exactly the window
// the particle filter consumes (snapshot queries need no longer history).
//
// Hardened against a faulty delivery layer (src/faults/): an optional
// reorder buffer repairs bounded out-of-order delivery, exact duplicates
// are suppressed idempotently, and a monotonicity guard drops (and counts)
// any reading that would rewind an object's aggregated history instead of
// corrupting it or aborting.
class DataCollector {
 public:
  struct ObjectHistory {
    // Aggregated entries, ascending by time, covering at most the two most
    // recent detecting devices.
    std::vector<AggregatedEntry> entries;
    ReaderId current_device = kInvalidId;
    ReaderId previous_device = kInvalidId;

    // Both require a non-empty history: an object with no detections has
    // no first/last reading (callers must check before asking).
    int64_t FirstTime() const {
      IPQS_CHECK(!entries.empty());
      return entries.front().time;
    }
    int64_t LastTime() const {
      IPQS_CHECK(!entries.empty());
      return entries.back().time;
    }

    friend bool operator==(const ObjectHistory&, const ObjectHistory&) = default;
  };

  // Plain tallies of the hardening guards, available without a metrics
  // registry (mirrored into CollectorMetrics when one is wired).
  struct IngestStats {
    int64_t reordered = 0;
    int64_t duplicates_dropped = 0;
    int64_t late_dropped = 0;

    friend bool operator==(const IngestStats&, const IngestStats&) = default;
  };

  DataCollector() = default;
  explicit DataCollector(const CollectorConfig& config) : config_(config) {}

  // Installs observability hooks; call before the ingest loop starts.
  void SetMetrics(const CollectorMetrics& metrics) { metrics_ = metrics; }

  // Reconfigures the hardening knobs; call before the ingest loop starts.
  void SetConfig(const CollectorConfig& config) { config_ = config; }
  const CollectorConfig& config() const { return config_; }

  // Ingests one raw reading. With no reorder buffer configured it applies
  // immediately; otherwise it is staged until the watermark passes it (see
  // CollectorConfig). Readings that would rewind an object's history are
  // dropped and counted, never applied.
  void Observe(const RawReading& reading);

  // Releases every staged reading with time <= now - reorder_window (in
  // canonical order) into the aggregated histories. Call once per
  // simulation second, after the second's arrivals. No-op without a
  // reorder buffer.
  void Flush(int64_t now);

  // Drains the reorder buffer completely (end of stream / shutdown).
  void FlushAll();

  // Readings currently staged in the reorder buffer.
  size_t staged_size() const { return staged_.size(); }

  // The reorder buffer's current watermark: every released reading has
  // passed it, arrivals at or behind it are late. INT64_MIN until the
  // first reading arrives (and always, with no reorder buffer configured).
  int64_t watermark() const { return watermark_; }

  const IngestStats& ingest_stats() const { return ingest_stats_; }

  // --- Per-reader ingest statistics (reader health) ---
  // Cumulative raw readings observed per reader (Observe-time: before the
  // reorder buffer, duplicate suppression, or monotonicity guards — the
  // health monitor wants the stream as the reader emitted it, ghosts and
  // duplicates included). Indexed by ReaderId; grows on demand, so a
  // reader that never reported has either no slot or a zero.
  const std::vector<int64_t>& reader_observed() const {
    return reader_observed_;
  }
  int64_t ReaderObserved(ReaderId reader) const {
    return reader >= 0 &&
                   static_cast<size_t>(reader) < reader_observed_.size()
               ? reader_observed_[reader]
               : 0;
  }

  // Reader status heartbeat (LLRP-style keepalive): a reader that is up
  // reports once per second whether or not any tag was in range. A down
  // reader reports nothing — so a missed heartbeat, unlike tag-read
  // silence, is unambiguous evidence of failure. Heartbeats also mark the
  // per-second liveness ring: an alive-but-tagless reader's silence is
  // informative for negative-information weighting. Like reader_observed,
  // this channel is process-local (not part of PersistedState).
  void NoteReaderHeartbeat(ReaderId reader, int64_t time);
  int64_t ReaderHeartbeats(ReaderId reader) const {
    return reader >= 0 &&
                   static_cast<size_t>(reader) < reader_heartbeats_.size()
               ? reader_heartbeats_[reader]
               : 0;
  }

  // True when `reader` produced at least one raw reading timestamped
  // `second`. Retention is bounded (kLivenessWindowSeconds behind the
  // newest observed timestamp); seconds older than the window report true
  // — unknown history is assumed live, which reproduces the legacy
  // negative-information weighting for deep replays. This state is
  // process-local: it is NOT part of PersistedState (the serde format is
  // frozen), so a recovered collector reports true until re-warmed.
  bool ReaderLiveAt(ReaderId reader, int64_t second) const;

  // Liveness retention window (seconds behind the newest observed
  // timestamp). Generously covers max_coast_seconds-deep replays.
  static constexpr int64_t kLivenessWindowSeconds = 4096;

  // History for `object`; nullptr when the object has never been detected.
  const ObjectHistory* History(ObjectId object) const;

  // Most recent detection of `object`, if any.
  std::optional<AggregatedEntry> LastReading(ObjectId object) const;

  // All objects with at least one detection.
  std::vector<ObjectId> KnownObjects() const;

  // ENTER/LEAVE event log (recorded only when enabled; off by default to
  // keep long simulations lean).
  void set_record_events(bool record) { record_events_ = record; }
  const std::vector<ReaderEvent>& events() const { return events_; }

  // Total aggregated entries currently retained (storage metric).
  size_t TotalEntriesRetained() const;

  // --- Change log (multi-consumer, cursor-based) ---
  bool change_log_enabled() const { return config_.change_log_capacity > 0; }
  // Sequence number one past the newest logged change. A fresh consumer
  // starts its cursor here to see only future changes.
  uint64_t change_log_end() const { return change_end_; }
  // Appends every change with sequence >= cursor to `out` and returns the
  // new cursor (== change_log_end()). If the ring overwrote changes the
  // cursor had not seen (consumer fell behind capacity) or state was
  // restored wholesale, `*lost_sync` is set and the consumer must treat
  // everything as potentially changed.
  uint64_t ReadChanges(uint64_t cursor, std::vector<AppliedChange>* out,
                       bool* lost_sync) const;

  // The complete mutable state of the collector, in a deterministic order
  // (histories ascending by object), for the persistence layer
  // (src/persist/). Config and metrics hooks are NOT part of the state:
  // they belong to the process, not to the data.
  struct PersistedState {
    std::vector<std::pair<ObjectId, ObjectHistory>> histories;
    std::vector<RawReading> staged;
    int64_t max_seen_time = std::numeric_limits<int64_t>::min();
    int64_t watermark = std::numeric_limits<int64_t>::min();
    IngestStats ingest;

    friend bool operator==(const PersistedState&,
                           const PersistedState&) = default;
  };
  PersistedState ExportState() const;
  // Replaces the collector's state wholesale (recovery). The configured
  // reorder window and metrics hooks are kept as-is.
  void RestoreState(PersistedState state);

 private:
  // Applies one reading to the aggregated histories (the original
  // event-driven path, plus the monotonicity and duplicate guards).
  void Ingest(const RawReading& reading);

  // Releases staged readings with time <= `up_to` in canonical order.
  void FlushStagedUpTo(int64_t up_to);

  CollectorConfig config_;
  std::unordered_map<ObjectId, ObjectHistory> histories_;
  std::vector<ReaderEvent> events_;
  bool record_events_ = false;
  CollectorMetrics metrics_;
  IngestStats ingest_stats_;

  // Change log ring: change_begin_/change_end_ are the sequence numbers of
  // the oldest retained / one-past-newest change. RestoreState bumps
  // change_begin_ past change_end_'s old value so every consumer observes
  // a lost_sync (the restored histories may differ arbitrarily).
  std::deque<AppliedChange> change_log_;
  uint64_t change_begin_ = 0;
  uint64_t change_end_ = 0;

  // Reorder buffer state: staged readings, the newest timestamp seen, and
  // the watermark every released reading has passed (arrivals at or behind
  // it are late and dropped).
  std::vector<RawReading> staged_;
  int64_t max_seen_time_ = std::numeric_limits<int64_t>::min();
  int64_t watermark_ = std::numeric_limits<int64_t>::min();

  // Per-reader health inputs (see reader_observed / ReaderLiveAt). The
  // liveness ring maps second -> per-reader seen flags, pruned to
  // kLivenessWindowSeconds behind live_max_.
  void NoteReaderObserved(ReaderId reader, int64_t time);
  void MarkReaderLive(ReaderId reader, int64_t time);
  std::vector<int64_t> reader_observed_;
  std::vector<int64_t> reader_heartbeats_;
  std::map<int64_t, std::vector<uint8_t>> live_by_second_;
  int64_t live_max_ = std::numeric_limits<int64_t>::min();
};

}  // namespace ipqs

#endif  // IPQS_RFID_DATA_COLLECTOR_H_
