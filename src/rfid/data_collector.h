#ifndef IPQS_RFID_DATA_COLLECTOR_H_
#define IPQS_RFID_DATA_COLLECTOR_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "obs/metrics.h"
#include "rfid/reader.h"

namespace ipqs {

// Optional observability hooks for a DataCollector; any member may be
// null. Observe() runs on the (single-threaded) ingest path, so these are
// plain counter bumps.
struct CollectorMetrics {
  obs::Counter* readings = nullptr;   // Raw readings ingested.
  obs::Counter* entries = nullptr;    // Aggregated entries appended.
  obs::Counter* handoffs = nullptr;   // Device transitions per object.
  obs::Counter* events = nullptr;     // ENTER/LEAVE events emitted.
  obs::Gauge* objects = nullptr;      // Objects with at least one reading.
};

// One aggregated detection: `reader` saw the object at least once during
// second `time`.
struct AggregatedEntry {
  int64_t time = 0;
  ReaderId reader = kInvalidId;
};

// An ENTER or LEAVE event: the object entered/left the activation range of
// `reader` (LEAVE is emitted lazily, when the next device sees the object).
struct ReaderEvent {
  ObjectId object = kInvalidId;
  ReaderId reader = kInvalidId;
  int64_t time = 0;
  bool enter = true;
};

// Event-driven raw data collector (Section 4.1 of the paper). Aggregates
// raw readings to one entry per second and, per object, retains only the
// readings of the two most recent detecting devices — exactly the window
// the particle filter consumes (snapshot queries need no longer history).
class DataCollector {
 public:
  struct ObjectHistory {
    // Aggregated entries, ascending by time, covering at most the two most
    // recent detecting devices.
    std::vector<AggregatedEntry> entries;
    ReaderId current_device = kInvalidId;
    ReaderId previous_device = kInvalidId;

    // Both require a non-empty history: an object with no detections has
    // no first/last reading (callers must check before asking).
    int64_t FirstTime() const {
      IPQS_CHECK(!entries.empty());
      return entries.front().time;
    }
    int64_t LastTime() const {
      IPQS_CHECK(!entries.empty());
      return entries.back().time;
    }
  };

  DataCollector() = default;

  // Installs observability hooks; call before the ingest loop starts.
  void SetMetrics(const CollectorMetrics& metrics) { metrics_ = metrics; }

  // Ingests one raw reading. Readings must arrive in non-decreasing time
  // order per object (the stream is naturally ordered).
  void Observe(const RawReading& reading);

  // History for `object`; nullptr when the object has never been detected.
  const ObjectHistory* History(ObjectId object) const;

  // Most recent detection of `object`, if any.
  std::optional<AggregatedEntry> LastReading(ObjectId object) const;

  // All objects with at least one detection.
  std::vector<ObjectId> KnownObjects() const;

  // ENTER/LEAVE event log (recorded only when enabled; off by default to
  // keep long simulations lean).
  void set_record_events(bool record) { record_events_ = record; }
  const std::vector<ReaderEvent>& events() const { return events_; }

  // Total aggregated entries currently retained (storage metric).
  size_t TotalEntriesRetained() const;

 private:
  std::unordered_map<ObjectId, ObjectHistory> histories_;
  std::vector<ReaderEvent> events_;
  bool record_events_ = false;
  CollectorMetrics metrics_;
};

}  // namespace ipqs

#endif  // IPQS_RFID_DATA_COLLECTOR_H_
