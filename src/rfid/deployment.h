#ifndef IPQS_RFID_DEPLOYMENT_H_
#define IPQS_RFID_DEPLOYMENT_H_

#include <optional>
#include <vector>

#include "common/statusor.h"
#include "floorplan/floor_plan.h"
#include "graph/walking_graph.h"
#include "rfid/reader.h"

namespace ipqs {

// The set of RFID readers installed in a building. The paper's evaluation
// deploys 19 readers "on hallways with uniform distance to each other";
// UniformOnHallways reproduces that: readers are placed along the
// concatenated hallway centerlines at equal arc-length intervals.
class Deployment {
 public:
  Deployment() = default;

  static StatusOr<Deployment> UniformOnHallways(const FloorPlan& plan,
                                                const WalkingGraph& graph,
                                                int num_readers, double range);

  // Manual placement (examples / what-if studies). `pos` is snapped to the
  // nearest hallway edge of the graph.
  ReaderId AddReader(const WalkingGraph& graph, Point pos, double range);

  const std::vector<Reader>& readers() const { return readers_; }
  const Reader& reader(ReaderId id) const;
  int num_readers() const { return static_cast<int>(readers_.size()); }

  // All readers whose activation range covers `p`.
  std::vector<ReaderId> Covering(const Point& p) const;

  // The reader covering `p`, if any; with the paper's disjoint-range
  // assumption there is at most one (ties broken by lowest id).
  std::optional<ReaderId> FirstCovering(const Point& p) const;

  // True when no two activation ranges overlap (the paper's setting).
  bool RangesDisjoint() const;

 private:
  std::vector<Reader> readers_;
};

// A stretch of one walking-graph edge, as [lo, hi] offsets from Edge::a.
struct EdgeInterval {
  EdgeId edge = kInvalidId;
  double lo = 0.0;
  double hi = 0.0;

  double Length() const { return hi - lo; }
};

// The parts of the walking graph inside `reader`'s activation range
// (Euclidean disc). Used to initialize particles "within
// di.activationRange" and to carve deployment-graph cells for the symbolic
// baseline.
std::vector<EdgeInterval> EdgeIntervalsInRange(const WalkingGraph& graph,
                                               const Reader& reader);

}  // namespace ipqs

#endif  // IPQS_RFID_DEPLOYMENT_H_
