#ifndef IPQS_RFID_PLACEMENT_OPTIMIZER_H_
#define IPQS_RFID_PLACEMENT_OPTIMIZER_H_

#include <vector>

#include "common/statusor.h"
#include "floorplan/floor_plan.h"
#include "graph/walking_graph.h"
#include "rfid/deployment.h"

namespace ipqs {

// Greedy reader-placement optimizer: a deployment-planning aid beyond the
// paper's uniform spacing. Candidate positions are sampled densely along
// hallway centerlines; readers are chosen one at a time to maximize the
// newly covered centerline length, with a tie-break toward splitting the
// longest uncovered gap. The result tends to cover junctions and long
// corridors before doubling up.
struct PlacementConfig {
  int num_readers = 19;
  double activation_range = 2.0;
  // Candidate grid spacing along centerlines, meters.
  double candidate_spacing = 1.0;
  // Keep at least this much distance between chosen readers (0 disables;
  // by default twice the range, so activation ranges stay disjoint as the
  // paper's setting requires).
  double min_separation = -1.0;  // -1 = 2 * activation_range.
};

// Computes an optimized deployment for the plan/graph. Fails when the
// constraints cannot be met (e.g. more readers than separated positions).
StatusOr<Deployment> OptimizePlacement(const FloorPlan& plan,
                                       const WalkingGraph& graph,
                                       const PlacementConfig& config);

// Coverage diagnostics for any deployment: the fraction of hallway
// centerline length inside some activation range, and the longest
// uncovered stretch.
struct CoverageReport {
  double covered_fraction = 0.0;
  double longest_gap = 0.0;
};

CoverageReport EvaluateCoverage(const FloorPlan& plan,
                                const Deployment& deployment);

}  // namespace ipqs

#endif  // IPQS_RFID_PLACEMENT_OPTIMIZER_H_
