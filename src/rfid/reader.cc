#include "rfid/reader.h"

#include <cstdio>

namespace ipqs {

std::string Reader::ToString() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "reader%d@(%.2f,%.2f) r=%.2f", id, pos.x,
                pos.y, range);
  return buf;
}

}  // namespace ipqs
