#include "rfid/history_store.h"

#include <algorithm>

#include "common/check.h"

namespace ipqs {

void HistoryStore::Observe(const RawReading& reading) {
  IPQS_CHECK_NE(reading.object, kInvalidId);
  IPQS_CHECK_NE(reading.reader, kInvalidId);
  std::vector<AggregatedEntry>& log = entries_[reading.object];
  if (!log.empty()) {
    if (reading.time < log.back().time) {
      // Late delivery (fault-injected reorder beyond any buffering, or a
      // skewed reader clock): dropping keeps the per-object log monotone,
      // which SnapshotAt's binary search depends on.
      return;
    }
    if (log.back().time == reading.time &&
        log.back().reader == reading.reader) {
      return;  // Aggregated duplicate within the same second.
    }
  }
  log.push_back({reading.time, reading.reader});
}

std::optional<DataCollector::ObjectHistory> HistoryStore::SnapshotAt(
    ObjectId object, int64_t time) const {
  const auto it = entries_.find(object);
  if (it == entries_.end()) {
    return std::nullopt;
  }
  const std::vector<AggregatedEntry>& log = it->second;
  // Last entry with entry.time <= time.
  const auto upper = std::upper_bound(
      log.begin(), log.end(), time,
      [](int64_t t, const AggregatedEntry& e) { return t < e.time; });
  if (upper == log.begin()) {
    return std::nullopt;  // Nothing seen yet at `time`.
  }

  // Walk backwards over device episodes (maximal runs of one reader),
  // keeping the two most recent ones — exactly the collector's window.
  const auto last = upper - 1;
  DataCollector::ObjectHistory history;
  history.current_device = last->reader;
  auto episode_start = last;
  while (episode_start != log.begin() &&
         (episode_start - 1)->reader == history.current_device) {
    --episode_start;
  }
  auto window_start = episode_start;
  if (episode_start != log.begin()) {
    history.previous_device = (episode_start - 1)->reader;
    auto prev_start = episode_start - 1;
    while (prev_start != log.begin() &&
           (prev_start - 1)->reader == history.previous_device) {
      --prev_start;
    }
    window_start = prev_start;
  }
  history.entries.assign(window_start, upper);
  return history;
}

const std::vector<AggregatedEntry>* HistoryStore::FullHistory(
    ObjectId object) const {
  const auto it = entries_.find(object);
  return it == entries_.end() ? nullptr : &it->second;
}

std::vector<ObjectId> HistoryStore::KnownObjects() const {
  std::vector<ObjectId> out;
  out.reserve(entries_.size());
  for (const auto& [id, _] : entries_) {
    out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

HistoryStore::PersistedState HistoryStore::ExportState() const {
  PersistedState state;
  state.logs.reserve(entries_.size());
  for (const auto& [id, log] : entries_) {
    state.logs.emplace_back(id, log);
  }
  std::sort(state.logs.begin(), state.logs.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return state;
}

void HistoryStore::RestoreState(PersistedState state) {
  entries_.clear();
  for (auto& [id, log] : state.logs) {
    entries_.emplace(id, std::move(log));
  }
}

size_t HistoryStore::TotalEntries() const {
  size_t total = 0;
  for (const auto& [_, log] : entries_) {
    total += log.size();
  }
  return total;
}

}  // namespace ipqs
