#include "rfid/deployment.h"

#include <cmath>

#include "common/check.h"

namespace ipqs {

StatusOr<Deployment> Deployment::UniformOnHallways(const FloorPlan& plan,
                                                   const WalkingGraph& graph,
                                                   int num_readers,
                                                   double range) {
  if (num_readers <= 0) {
    return Status::InvalidArgument("deployment needs at least one reader");
  }
  if (range <= 0.0) {
    return Status::InvalidArgument("activation range must be positive");
  }
  double total = 0.0;
  for (const Hallway& h : plan.hallways()) {
    total += h.Length();
  }
  if (total <= 0.0) {
    return Status::FailedPrecondition("floor plan has no hallway length");
  }

  Deployment dep;
  const double step = total / num_readers;
  // Walk the concatenated centerlines, dropping a reader every `step`
  // meters, centered within its slot.
  double next_at = step / 2;
  double consumed = 0.0;
  for (const Hallway& h : plan.hallways()) {
    const double len = h.Length();
    while (next_at < consumed + len - 1e-9 &&
           dep.num_readers() < num_readers) {
      const Point pos = h.centerline.AtOffset(next_at - consumed);
      dep.AddReader(graph, pos, range);
      next_at += step;
    }
    consumed += len;
  }
  IPQS_CHECK_EQ(dep.num_readers(), num_readers);
  return dep;
}

ReaderId Deployment::AddReader(const WalkingGraph& graph, Point pos,
                               double range) {
  Reader r;
  r.id = static_cast<ReaderId>(readers_.size());
  r.pos = pos;
  r.loc = graph.NearestLocation(pos, /*prefer_hallways=*/true);
  r.range = range;
  readers_.push_back(r);
  return r.id;
}

const Reader& Deployment::reader(ReaderId id) const {
  IPQS_CHECK(id >= 0 && id < num_readers());
  return readers_[id];
}

std::vector<ReaderId> Deployment::Covering(const Point& p) const {
  std::vector<ReaderId> out;
  for (const Reader& r : readers_) {
    if (r.InRange(p)) {
      out.push_back(r.id);
    }
  }
  return out;
}

std::optional<ReaderId> Deployment::FirstCovering(const Point& p) const {
  for (const Reader& r : readers_) {
    if (r.InRange(p)) {
      return r.id;
    }
  }
  return std::nullopt;
}

std::vector<EdgeInterval> EdgeIntervalsInRange(const WalkingGraph& graph,
                                               const Reader& reader) {
  std::vector<EdgeInterval> out;
  for (const Edge& e : graph.edges()) {
    // Solve |a + t*(b-a) - c|^2 <= r^2 for t in [0, 1].
    const Point d = e.geometry.b - e.geometry.a;
    const Point f = e.geometry.a - reader.pos;
    const double qa = d.SquaredNorm();
    const double qb = 2.0 * f.Dot(d);
    const double qc = f.SquaredNorm() - reader.range * reader.range;
    if (qa <= 0.0) {
      continue;
    }
    const double disc = qb * qb - 4.0 * qa * qc;
    if (disc < 0.0) {
      continue;
    }
    const double sq = std::sqrt(disc);
    const double t0 = std::max((-qb - sq) / (2.0 * qa), 0.0);
    const double t1 = std::min((-qb + sq) / (2.0 * qa), 1.0);
    if (t1 - t0 <= 1e-12) {
      continue;
    }
    out.push_back({e.id, t0 * e.length, t1 * e.length});
  }
  return out;
}

bool Deployment::RangesDisjoint() const {
  for (size_t i = 0; i < readers_.size(); ++i) {
    for (size_t j = i + 1; j < readers_.size(); ++j) {
      if (Distance(readers_[i].pos, readers_[j].pos) <
          readers_[i].range + readers_[j].range) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace ipqs
