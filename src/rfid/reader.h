#ifndef IPQS_RFID_READER_H_
#define IPQS_RFID_READER_H_

#include <cstdint>
#include <string>

#include "geom/point.h"
#include "graph/walking_graph.h"

namespace ipqs {

using ReaderId = int32_t;
using ObjectId = int32_t;

// A raw RFID observation: `reader` saw `object`'s tag at `time` (seconds).
struct RawReading {
  ObjectId object = kInvalidId;
  ReaderId reader = kInvalidId;
  int64_t time = 0;

  friend bool operator==(const RawReading&, const RawReading&) = default;
};

// A stationary RFID reader deployed on a hallway. Its activation range is a
// disc of radius `range` around `pos`; because ranges cover the full hallway
// width, a reader acts as an (undirected) partitioning device on the
// walking graph.
struct Reader {
  ReaderId id = kInvalidId;
  Point pos;
  GraphLocation loc;  // Snap of `pos` onto the walking graph.
  double range = 2.0;

  bool InRange(const Point& p) const { return Distance(pos, p) <= range; }

  std::string ToString() const;
};

}  // namespace ipqs

#endif  // IPQS_RFID_READER_H_
