#include "rfid/sensing_model.h"

#include <cmath>

#include "common/check.h"

namespace ipqs {

SensingModel::SensingModel(const SensingConfig& config) : config_(config) {
  IPQS_CHECK(config.sample_detection_prob >= 0.0 &&
             config.sample_detection_prob <= 1.0);
  IPQS_CHECK_GE(config.samples_per_second, 1);
  per_second_prob_ =
      1.0 - std::pow(1.0 - config.sample_detection_prob,
                     config.samples_per_second);
}

bool SensingModel::DetectsThisSecond(Rng& rng) const {
  return rng.Bernoulli(per_second_prob_);
}

}  // namespace ipqs
