#include "filter/measurement_model.h"

#include <cmath>

#include "common/check.h"

namespace ipqs {

MeasurementModel::MeasurementModel(const MeasurementConfig& config)
    : config_(config) {
  IPQS_CHECK_GT(config.hit_weight, 0.0);
  IPQS_CHECK_GT(config.miss_weight, 0.0);
  IPQS_CHECK_GT(config.silent_zone_weight, 0.0);
}

double MeasurementModel::WeightOnDetection(const Deployment& deployment,
                                           const Point& pos,
                                           ReaderId detected_by) const {
  return deployment.reader(detected_by).InRange(pos) ? config_.hit_weight
                                                     : config_.miss_weight;
}

size_t MeasurementModel::WeightOnDetection(const Deployment& deployment,
                                           ReaderId detected_by, size_t n,
                                           const double* x, const double* y,
                                           double* weight) const {
  const Reader& r = deployment.reader(detected_by);
  const double rx = r.pos.x;
  const double ry = r.pos.y;
  const double range = r.range;
  const double hit = config_.hit_weight;
  const double miss = config_.miss_weight;
  size_t in_range = 0;
  for (size_t i = 0; i < n; ++i) {
    // Bit-identical to Reader::InRange: sqrt(dx^2 + dy^2) <= range.
    // (Negation before squaring is exact, so the subtraction order does
    // not matter.)
    const double dx = rx - x[i];
    const double dy = ry - y[i];
    const bool inside = std::sqrt(dx * dx + dy * dy) <= range;
    weight[i] *= inside ? hit : miss;
    in_range += inside ? 1 : 0;
  }
  return in_range;
}

double MeasurementModel::WeightOnSilence(const Deployment& deployment,
                                         const Point& pos) const {
  if (!config_.use_negative_information) {
    return 1.0;
  }
  return deployment.FirstCovering(pos).has_value()
             ? config_.silent_zone_weight
             : 1.0;
}

double MeasurementModel::WeightOnSilence(const Deployment& deployment,
                                         const Point& pos,
                                         const uint8_t* reader_trusted) const {
  if (reader_trusted == nullptr) {
    return WeightOnSilence(deployment, pos);
  }
  if (!config_.use_negative_information) {
    return 1.0;
  }
  for (const Reader& r : deployment.readers()) {
    if (reader_trusted[r.id] != 0 && r.InRange(pos)) {
      return config_.silent_zone_weight;
    }
  }
  return 1.0;
}

size_t MeasurementModel::WeightOnSilence(const Deployment& deployment,
                                         size_t n, const double* x,
                                         const double* y,
                                         double* weight) const {
  if (!config_.use_negative_information) {
    return 0;
  }
  const double zone = config_.silent_zone_weight;
  const std::vector<Reader>& readers = deployment.readers();
  size_t scaled = 0;
  for (size_t i = 0; i < n; ++i) {
    bool covered = false;
    for (const Reader& r : readers) {
      const double dx = r.pos.x - x[i];
      const double dy = r.pos.y - y[i];
      if (std::sqrt(dx * dx + dy * dy) <= r.range) {
        covered = true;
        break;
      }
    }
    const double mult = covered ? zone : 1.0;
    weight[i] *= mult;  // Multiplying by 1.0 is an exact FP identity.
    scaled += mult != 1.0 ? 1 : 0;
  }
  return scaled;
}

size_t MeasurementModel::WeightOnSilence(const Deployment& deployment,
                                         size_t n, const double* x,
                                         const double* y, double* weight,
                                         const uint8_t* reader_trusted) const {
  if (reader_trusted == nullptr) {
    // All-trusted: the unmasked kernel is the exact same arithmetic with
    // the better-vectorizing inner loop.
    return WeightOnSilence(deployment, n, x, y, weight);
  }
  if (!config_.use_negative_information) {
    return 0;
  }
  const double zone = config_.silent_zone_weight;
  const std::vector<Reader>& readers = deployment.readers();
  size_t scaled = 0;
  for (size_t i = 0; i < n; ++i) {
    bool covered = false;
    for (const Reader& r : readers) {
      if (reader_trusted[r.id] == 0) {
        continue;  // Silence from this reader carries no information.
      }
      const double dx = r.pos.x - x[i];
      const double dy = r.pos.y - y[i];
      if (std::sqrt(dx * dx + dy * dy) <= r.range) {
        covered = true;
        break;
      }
    }
    const double mult = covered ? zone : 1.0;
    weight[i] *= mult;
    scaled += mult != 1.0 ? 1 : 0;
  }
  return scaled;
}

}  // namespace ipqs
