#include "filter/measurement_model.h"

#include "common/check.h"

namespace ipqs {

MeasurementModel::MeasurementModel(const MeasurementConfig& config)
    : config_(config) {
  IPQS_CHECK_GT(config.hit_weight, 0.0);
  IPQS_CHECK_GT(config.miss_weight, 0.0);
  IPQS_CHECK_GT(config.silent_zone_weight, 0.0);
}

double MeasurementModel::WeightOnDetection(const Deployment& deployment,
                                           const Point& pos,
                                           ReaderId detected_by) const {
  return deployment.reader(detected_by).InRange(pos) ? config_.hit_weight
                                                     : config_.miss_weight;
}

double MeasurementModel::WeightOnSilence(const Deployment& deployment,
                                         const Point& pos) const {
  if (!config_.use_negative_information) {
    return 1.0;
  }
  return deployment.FirstCovering(pos).has_value()
             ? config_.silent_zone_weight
             : 1.0;
}

}  // namespace ipqs
