#include "filter/particle_soa.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace ipqs {

void ParticleSoA::Resize(size_t n) {
  edge.resize(n);
  offset.resize(n);
  heading.resize(n);
  speed.resize(n);
  weight.resize(n);
  in_room.resize(n);
}

void ParticleSoA::Clear() { Resize(0); }

void ParticleSoA::AssignFrom(const std::vector<Particle>& particles) {
  const size_t n = particles.size();
  Resize(n);
  for (size_t i = 0; i < n; ++i) {
    const Particle& p = particles[i];
    edge[i] = p.loc.edge;
    offset[i] = p.loc.offset;
    heading[i] = p.heading;
    speed[i] = p.speed;
    weight[i] = p.weight;
    in_room[i] = p.in_room ? 1 : 0;
  }
}

void ParticleSoA::CopyTo(std::vector<Particle>* particles) const {
  const size_t n = size();
  particles->resize(n);
  for (size_t i = 0; i < n; ++i) {
    Particle& p = (*particles)[i];
    p.loc.edge = edge[i];
    p.loc.offset = offset[i];
    p.heading = heading[i];
    p.speed = speed[i];
    p.weight = weight[i];
    p.in_room = in_room[i] != 0;
  }
}

std::vector<Particle> ParticleSoA::ToParticles() const {
  std::vector<Particle> out;
  CopyTo(&out);
  return out;
}

Particle ParticleSoA::Get(size_t i) const {
  IPQS_DCHECK(i < size());
  Particle p;
  p.loc.edge = edge[i];
  p.loc.offset = offset[i];
  p.heading = heading[i];
  p.speed = speed[i];
  p.weight = weight[i];
  p.in_room = in_room[i] != 0;
  return p;
}

void ParticleSoA::Set(size_t i, const Particle& p) {
  IPQS_DCHECK(i < size());
  edge[i] = p.loc.edge;
  offset[i] = p.loc.offset;
  heading[i] = p.heading;
  speed[i] = p.speed;
  weight[i] = p.weight;
  in_room[i] = p.in_room ? 1 : 0;
}

double TotalWeight(const ParticleSoA& soa) {
  double total = 0.0;
  for (size_t i = 0; i < soa.weight.size(); ++i) {
    total += soa.weight[i];
  }
  return total;
}

void NormalizeWeights(ParticleSoA* soa) {
  const double total = TotalWeight(*soa);
  IPQS_CHECK_GT(total, 0.0) << "cannot normalize all-zero weights";
  for (size_t i = 0; i < soa->weight.size(); ++i) {
    soa->weight[i] /= total;
  }
}

double EffectiveSampleSize(const ParticleSoA& soa) {
  double sum_sq = 0.0;
  for (size_t i = 0; i < soa.weight.size(); ++i) {
    sum_sq += soa.weight[i] * soa.weight[i];
  }
  if (sum_sq <= 0.0) {
    return 0.0;
  }
  return 1.0 / sum_sq;
}

EdgeSoA EdgeSoA::FromGraph(const WalkingGraph& graph) {
  const std::vector<Edge>& edges = graph.edges();
  EdgeSoA out;
  const size_t n = edges.size();
  out.a.resize(n);
  out.b.resize(n);
  out.length.resize(n);
  out.ax.resize(n);
  out.ay.resize(n);
  out.dx.resize(n);
  out.dy.resize(n);
  out.geo_len.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const Edge& e = edges[i];
    out.a[i] = e.a;
    out.b[i] = e.b;
    out.length[i] = e.length;
    out.ax[i] = e.geometry.a.x;
    out.ay[i] = e.geometry.a.y;
    out.dx[i] = e.geometry.b.x - e.geometry.a.x;
    out.dy[i] = e.geometry.b.y - e.geometry.a.y;
    out.geo_len[i] = e.geometry.Length();
  }
  const std::vector<Node>& nodes = graph.nodes();
  out.node_is_room.resize(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    out.node_is_room[i] = nodes[i].kind == NodeKind::kRoomCenter ? 1 : 0;
  }
  return out;
}

void ComputePositions(const EdgeSoA& edges, const ParticleSoA& soa,
                      double* x, double* y) {
  const size_t n = soa.size();
  for (size_t i = 0; i < n; ++i) {
    const EdgeId e = soa.edge[i];
    IPQS_DCHECK(e >= 0 && static_cast<size_t>(e) < edges.size());
    const double len = edges.geo_len[e];
    if (len <= 0.0) {
      // Degenerate geometry: PositionOf returns endpoint a.
      x[i] = edges.ax[e];
      y[i] = edges.ay[e];
      continue;
    }
    // Mirrors Segment::AtOffset + Lerp exactly: t = clamp(offset/len),
    // p = a + (b - a) * t.
    const double t = std::clamp(soa.offset[i] / len, 0.0, 1.0);
    x[i] = edges.ax[e] + edges.dx[e] * t;
    y[i] = edges.ay[e] + edges.dy[e] * t;
  }
}

}  // namespace ipqs
