#ifndef IPQS_FILTER_PARTICLE_SOA_H_
#define IPQS_FILTER_PARTICLE_SOA_H_

#include <cstdint>
#include <vector>

#include "filter/particle.h"
#include "graph/walking_graph.h"

namespace ipqs {

// Structure-of-arrays particle state: the same hypothesis set as a
// std::vector<Particle>, with each field in its own contiguous buffer so
// the filter's per-second stages (predict, weight, resample) stream over
// flat arrays instead of striding through 48-byte structs. The AoS
// Particle remains the interchange format — the cache, the persistence
// layer, and anchor projection all keep consuming std::vector<Particle> —
// and the conversions below are the only bridge between the two layouts.
//
// Determinism contract: conversions are field copies (no arithmetic), so
// AoS -> SoA -> AoS round-trips bit-exactly, and every reduction over a
// ParticleSoA (TotalWeight, NormalizeWeights, EffectiveSampleSize) sums in
// ascending index order — the same fixed order as the AoS versions in
// particle.h, so both layouts produce byte-identical results.
struct ParticleSoA {
  std::vector<EdgeId> edge;
  std::vector<double> offset;
  std::vector<NodeId> heading;
  std::vector<double> speed;
  std::vector<double> weight;
  // Bool stored one-per-byte: std::vector<bool> packs bits, which defeats
  // both simple vector loads and the Set/Get field copies.
  std::vector<uint8_t> in_room;

  size_t size() const { return edge.size(); }
  bool empty() const { return edge.empty(); }
  void Resize(size_t n);
  void Clear();

  void AssignFrom(const std::vector<Particle>& particles);
  void CopyTo(std::vector<Particle>* particles) const;
  std::vector<Particle> ToParticles() const;

  Particle Get(size_t i) const;
  void Set(size_t i, const Particle& p);
};

// Sum of weights in ascending index order; 0 for an empty set.
double TotalWeight(const ParticleSoA& soa);

// Scales weights so they sum to 1. Precondition: total weight > 0.
void NormalizeWeights(ParticleSoA* soa);

// Effective sample size 1 / sum(w_i^2) of a normalized set (fixed
// summation order), matching EffectiveSampleSize(std::vector<Particle>).
double EffectiveSampleSize(const ParticleSoA& soa);

// Flat per-edge mirror of the WalkingGraph fields the particle kernels
// touch every second, indexed by EdgeId. Avoids the bounds-checked
// Edge&/Node& accessors and the Segment sqrt in the hot loop: geo_len
// caches Segment::Length() (recomputed per call by PositionOf), so batch
// position evaluation is bit-identical to WalkingGraph::PositionOf.
// Built once per filter; the graph is immutable while a filter exists.
struct EdgeSoA {
  std::vector<NodeId> a;          // Edge::a (offset 0 endpoint).
  std::vector<NodeId> b;          // Edge::b (offset `length` endpoint).
  std::vector<double> length;     // Edge::length (the offset domain).
  std::vector<double> ax, ay;     // geometry.a
  std::vector<double> dx, dy;     // geometry.b - geometry.a
  std::vector<double> geo_len;    // geometry.Length()
  // Node-indexed (not edge-indexed): whether NodeId n is a kRoomCenter.
  // The motion model's node-crossing step consults the heading node's
  // kind every time a particle reaches it; one flat byte per node keeps
  // that lookup out of the Node structs.
  std::vector<uint8_t> node_is_room;

  static EdgeSoA FromGraph(const WalkingGraph& graph);

  size_t size() const { return a.size(); }
};

// Writes the graph position of every particle into x/y (each sized
// soa.size() by the caller). Per particle this computes exactly
// graph.PositionOf(loc) — same operations, same order, bit-identical
// results — but with the per-edge geometry preloaded into flat arrays.
void ComputePositions(const EdgeSoA& edges, const ParticleSoA& soa,
                      double* x, double* y);

// Reusable scratch buffers for the per-second filter stages, so the hot
// loop allocates nothing after warm-up: resampling double-buffers through
// `swap`/`sel`, batch weighting through `x`/`y`, batch draws through
// `draws`. One arena per thread (the filter keeps a thread_local one);
// contents carry no state between calls — only capacity.
struct FilterArena {
  std::vector<double> quantiles;
  std::vector<double> residuals;
  std::vector<double> x;
  std::vector<double> y;
  std::vector<double> draws;
  std::vector<uint32_t> sel;
  std::vector<uint32_t> slow;
  ParticleSoA swap;
};

}  // namespace ipqs

#endif  // IPQS_FILTER_PARTICLE_SOA_H_
