#ifndef IPQS_FILTER_PARTICLE_H_
#define IPQS_FILTER_PARTICLE_H_

#include <string>
#include <vector>

#include "graph/walking_graph.h"

namespace ipqs {

// One hypothesis of an object's state: a position on the walking graph, a
// heading (the edge endpoint the particle is walking toward), a walking
// speed, and an importance weight.
struct Particle {
  GraphLocation loc;
  NodeId heading = kInvalidId;  // One of loc.edge's endpoints.
  double speed = 1.0;           // Meters per second.
  double weight = 1.0;
  // True while dwelling inside a room (parked at the room-center end of a
  // stub edge, waiting for the exit coin flip).
  bool in_room = false;

  std::string ToString() const;

  friend bool operator==(const Particle&, const Particle&) = default;
};

// Sum of weights; 0 for an empty set.
double TotalWeight(const std::vector<Particle>& particles);

// Scales weights so they sum to 1. Precondition: total weight > 0.
void NormalizeWeights(std::vector<Particle>* particles);

// Effective sample size 1 / sum(w_i^2) of a normalized particle set; a
// standard degeneracy diagnostic (Ns when uniform, 1 when degenerate).
double EffectiveSampleSize(const std::vector<Particle>& particles);

}  // namespace ipqs

#endif  // IPQS_FILTER_PARTICLE_H_
