#ifndef IPQS_FILTER_MOTION_MODEL_H_
#define IPQS_FILTER_MOTION_MODEL_H_

#include "common/rng.h"
#include "filter/particle.h"
#include "filter/particle_soa.h"
#include "graph/walking_graph.h"

namespace ipqs {

// Parameters of the object motion model (Section 3.1 / Algorithm 2 of the
// paper): objects move forward with constant speed drawn from
// N(speed_mean, speed_stddev), pick random directions at intersections, may
// enter rooms when passing doors, and leave a room with probability
// `room_exit_probability` per second once inside.
struct MotionConfig {
  double speed_mean = 1.0;
  double speed_stddev = 0.1;
  double min_speed = 0.3;  // Guards against non-positive Gaussian draws.
  double room_exit_probability = 0.1;
  // Probability of turning into a room stub when passing its door node.
  // The paper's particles "randomly choose a direction" at intersections
  // (a door node offers forward + door, i.e. ~0.5); 0.3 keeps coasting
  // particles settling into rooms near the last reading — where silent
  // objects actually are — without emptying the hallways too fast.
  double room_enter_probability = 0.3;

  // Roughening applied after every resampling step (Gordon et al.'s
  // remedy for sample impoverishment): resampling replicates high-weight
  // particles verbatim, and because motion between intersections is
  // deterministic, clones would otherwise never diverge again.
  double position_jitter = 0.3;  // Meters along the current edge.
  double speed_jitter = 0.05;    // Meters/second.
};

// Advances particles along the walking graph. The model never teleports:
// a particle covers exactly `speed * dt` meters of graph distance per step,
// spilling across nodes and re-deciding direction at each one.
class MotionModel {
 public:
  MotionModel() : MotionModel(MotionConfig{}) {}
  explicit MotionModel(const MotionConfig& config);

  const MotionConfig& config() const { return config_; }

  // Draws a walking speed (truncated Gaussian).
  double SampleSpeed(Rng& rng) const;

  // Advances `p` by `dt` seconds on `graph`. Room dwell semantics: a
  // particle parked in a room consumes the whole step either staying put
  // (probability 1 - room_exit_probability) or walking back out.
  void Step(const WalkingGraph& graph, Particle* p, double dt, Rng& rng) const;

  // Batch predict over a structure-of-arrays particle set; byte-identical
  // to calling Step on each particle in ascending index order. Split into
  // two passes: a branch-light vectorizable sweep advances every particle
  // that stays mid-edge this step (the common case — consumes no
  // randomness), then the stragglers (parked in a room, or reaching a
  // node) run the full scalar Step in ascending index order, drawing from
  // `rng` in exactly the order the per-particle loop did. `edges` must
  // mirror `graph` (EdgeSoA::FromGraph); `arena` supplies scratch.
  void StepAll(const WalkingGraph& graph, const EdgeSoA& edges,
               ParticleSoA* soa, FilterArena* arena, double dt,
               Rng& rng) const;

  // Post-resampling roughening: perturbs the particle's position along its
  // current edge (clamped to the edge) and its speed, so replicated
  // particles explore slightly different futures.
  void Roughen(const WalkingGraph& graph, Particle* p, Rng& rng) const;

  // Batch roughening; byte-identical to per-particle Roughen in ascending
  // index order. The two jitter draws interleave per particle, so this
  // stays a scalar loop — the win over the AoS path is the preloaded edge
  // lengths (no bounds-checked graph accessor per particle).
  void RoughenAll(const EdgeSoA& edges, ParticleSoA* soa, Rng& rng) const;

  // Gap widening (fault tolerance): extra Gaussian positional diffusion of
  // `sigma` meters along the particle's current edge, applied while the
  // filter coasts across a reading gap so the cloud's spread reflects the
  // growing uncertainty instead of staying overconfident. Parked (in-room)
  // particles are left alone — dwelling is already the likeliest
  // explanation for silence.
  void WidenPosition(const WalkingGraph& graph, Particle* p, double sigma,
                     Rng& rng) const;

  // Batch gap widening; byte-identical to per-particle WidenPosition in
  // ascending index order. Only hallway particles draw, so the Gaussians
  // are batched over the non-parked subset and applied in index order.
  void WidenPositionAll(const EdgeSoA& edges, ParticleSoA* soa,
                        FilterArena* arena, double sigma, Rng& rng) const;

  // Picks the edge a particle leaves `node` on, having arrived via
  // `incoming` (kInvalidId when the particle has no history, e.g. right
  // after initialization at a node). U-turns happen only at dead ends.
  EdgeId ChooseNextEdge(const WalkingGraph& graph, NodeId node,
                        EdgeId incoming, Rng& rng) const;

 private:
  MotionConfig config_;
};

}  // namespace ipqs

#endif  // IPQS_FILTER_MOTION_MODEL_H_
