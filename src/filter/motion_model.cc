#include "filter/motion_model.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"

namespace ipqs {

MotionModel::MotionModel(const MotionConfig& config) : config_(config) {
  IPQS_CHECK_GT(config.speed_mean, 0.0);
  IPQS_CHECK_GE(config.speed_stddev, 0.0);
  IPQS_CHECK_GT(config.min_speed, 0.0);
  IPQS_CHECK(config.room_exit_probability >= 0.0 &&
             config.room_exit_probability <= 1.0);
  IPQS_CHECK(config.room_enter_probability >= 0.0 &&
             config.room_enter_probability <= 1.0);
}

double MotionModel::SampleSpeed(Rng& rng) const {
  const double s = rng.Gaussian(config_.speed_mean, config_.speed_stddev);
  return std::max(s, config_.min_speed);
}

void MotionModel::Roughen(const WalkingGraph& graph, Particle* p,
                          Rng& rng) const {
  if (config_.position_jitter > 0.0 && !p->in_room) {
    const Edge& e = graph.edge(p->loc.edge);
    p->loc.offset =
        std::clamp(p->loc.offset + rng.Gaussian(0.0, config_.position_jitter),
                   0.0, e.length);
  }
  if (config_.speed_jitter > 0.0) {
    p->speed = std::max(p->speed + rng.Gaussian(0.0, config_.speed_jitter),
                        config_.min_speed);
  }
}

void MotionModel::WidenPosition(const WalkingGraph& graph, Particle* p,
                                double sigma, Rng& rng) const {
  if (sigma <= 0.0 || p->in_room) {
    return;
  }
  const Edge& e = graph.edge(p->loc.edge);
  p->loc.offset =
      std::clamp(p->loc.offset + rng.Gaussian(0.0, sigma), 0.0, e.length);
}

EdgeId MotionModel::ChooseNextEdge(const WalkingGraph& graph, NodeId node,
                                   EdgeId incoming, Rng& rng) const {
  std::vector<EdgeId> stubs;
  std::vector<EdgeId> hallways;
  for (EdgeId eid : graph.node(node).edges) {
    if (eid == incoming) {
      continue;
    }
    if (graph.edge(eid).kind == EdgeKind::kRoomStub) {
      stubs.push_back(eid);
    } else {
      hallways.push_back(eid);
    }
  }
  if (stubs.empty() && hallways.empty()) {
    IPQS_CHECK_NE(incoming, kInvalidId) << "isolated node";
    return incoming;  // Dead end: U-turn.
  }
  if (hallways.empty()) {
    return stubs[rng.UniformIndex(stubs.size())];
  }
  if (!stubs.empty() && rng.Bernoulli(config_.room_enter_probability)) {
    return stubs[rng.UniformIndex(stubs.size())];
  }
  return hallways[rng.UniformIndex(hallways.size())];
}

void MotionModel::Step(const WalkingGraph& graph, Particle* p, double dt,
                       Rng& rng) const {
  IPQS_DCHECK(p->loc.edge != kInvalidId);

  if (p->in_room) {
    if (!rng.Bernoulli(config_.room_exit_probability)) {
      return;  // Keeps dwelling this second.
    }
    // Walk back out: the particle sits at the room-center end of a stub.
    p->in_room = false;
    const Edge& e = graph.edge(p->loc.edge);
    const NodeId room_node =
        graph.node(e.a).kind == NodeKind::kRoomCenter ? e.a : e.b;
    IPQS_DCHECK(graph.node(room_node).kind == NodeKind::kRoomCenter);
    p->heading = graph.OtherEnd(e.id, room_node);
  }

  double remaining = p->speed * dt;
  // Termination guard: each loop iteration either consumes distance or
  // parks the particle; graphs with very short edges still converge fast.
  for (int guard = 0; remaining > 1e-12 && guard < 10000; ++guard) {
    const Edge& e = graph.edge(p->loc.edge);
    IPQS_DCHECK(p->heading == e.a || p->heading == e.b);
    const double target = graph.OffsetOfNode(e.id, p->heading);
    const double dist_to_node = std::fabs(target - p->loc.offset);

    if (remaining < dist_to_node) {
      p->loc.offset += target > p->loc.offset ? remaining : -remaining;
      return;
    }

    remaining -= dist_to_node;
    const NodeId node = p->heading;
    if (graph.node(node).kind == NodeKind::kRoomCenter) {
      // Entered the room: park and start the dwell process. The leftover
      // movement budget is absorbed by the room (its interior is not
      // spatially resolved beyond the stub).
      p->loc.offset = target;
      p->in_room = true;
      return;
    }
    const EdgeId next = ChooseNextEdge(graph, node, e.id, rng);
    p->loc.edge = next;
    p->loc.offset = graph.OffsetOfNode(next, node);
    p->heading = graph.OtherEnd(next, node);
  }
}

}  // namespace ipqs
