#include "filter/motion_model.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"

namespace ipqs {

MotionModel::MotionModel(const MotionConfig& config) : config_(config) {
  IPQS_CHECK_GT(config.speed_mean, 0.0);
  IPQS_CHECK_GE(config.speed_stddev, 0.0);
  IPQS_CHECK_GT(config.min_speed, 0.0);
  IPQS_CHECK(config.room_exit_probability >= 0.0 &&
             config.room_exit_probability <= 1.0);
  IPQS_CHECK(config.room_enter_probability >= 0.0 &&
             config.room_enter_probability <= 1.0);
}

double MotionModel::SampleSpeed(Rng& rng) const {
  const double s = rng.Gaussian(config_.speed_mean, config_.speed_stddev);
  return std::max(s, config_.min_speed);
}

void MotionModel::StepAll(const WalkingGraph& graph, const EdgeSoA& edges,
                          ParticleSoA* soa, FilterArena* arena, double dt,
                          Rng& rng) const {
  const size_t n = soa->size();
  std::vector<uint32_t>& slow = arena->slow;
  slow.resize(n);
  // Pass 1 — branchless sweep over the flat arrays. A hallway particle
  // that will not reach its heading node this step advances in place; the
  // arithmetic is exactly Step's first loop iteration (same expressions,
  // same order), and no randomness is consumed. Everything else (parked in
  // a room, or crossing a node) is deferred. The data-dependent decisions
  // compile to conditional moves — the crossing pattern is effectively
  // random, so branches here would mispredict: the offset write-back
  // stores the (bit-identical) old value for deferred particles, and the
  // slow list grows by unconditional store + conditional bump.
  size_t num_slow = 0;
  for (size_t i = 0; i < n; ++i) {
    const bool room = soa->in_room[i] != 0;
    const double remaining = soa->speed[i] * dt;
    // Step's loop guard: remaining <= 1e-12 is a no-op step, no draws.
    const bool moving = remaining > 1e-12;
    const EdgeId e = soa->edge[i];
    const double target =
        edges.a[e] == soa->heading[i] ? 0.0 : edges.length[e];
    const double off = soa->offset[i];
    const double dist_to_node = std::fabs(target - off);
    const bool fast = !room & moving & (remaining < dist_to_node);
    const bool deferred = room | (moving & (remaining >= dist_to_node));
    soa->offset[i] = fast ? off + (target > off ? remaining : -remaining) : off;
    slow[num_slow] = static_cast<uint32_t>(i);
    num_slow += deferred ? 1 : 0;
  }
  slow.resize(num_slow);
  // Pass 2 — scalar fallback over the deferred particles, in ascending
  // index order. This is Step's logic verbatim on the flat arrays (same
  // expressions, same order, same draws under the same conditions), so the
  // rng sequence and every stored value stay byte-identical to running
  // per-particle Step; only the Particle round-trip through Get/Set is
  // gone. These are the only particles that draw from `rng`.
  for (const uint32_t i : slow) {
    EdgeId e = soa->edge[i];
    NodeId heading = soa->heading[i];
    double offset = soa->offset[i];
    if (soa->in_room[i]) {
      if (!rng.Bernoulli(config_.room_exit_probability)) {
        continue;  // Keeps dwelling this second.
      }
      // Walk back out: the particle sits at the room-center end of a stub.
      soa->in_room[i] = 0;
      const NodeId room_node =
          edges.node_is_room[edges.a[e]] ? edges.a[e] : edges.b[e];
      heading = edges.a[e] == room_node ? edges.b[e] : edges.a[e];
    }
    double remaining = soa->speed[i] * dt;
    for (int guard = 0; remaining > 1e-12 && guard < 10000; ++guard) {
      IPQS_DCHECK(heading == edges.a[e] || heading == edges.b[e]);
      const double target = edges.a[e] == heading ? 0.0 : edges.length[e];
      const double dist_to_node = std::fabs(target - offset);

      if (remaining < dist_to_node) {
        offset += target > offset ? remaining : -remaining;
        break;
      }

      remaining -= dist_to_node;
      const NodeId node = heading;
      if (edges.node_is_room[node]) {
        // Entered the room: park and start the dwell process.
        offset = target;
        soa->in_room[i] = 1;
        break;
      }
      const EdgeId next = ChooseNextEdge(graph, node, e, rng);
      e = next;
      offset = edges.a[next] == node ? 0.0 : edges.length[next];
      heading = edges.a[next] == node ? edges.b[next] : edges.a[next];
    }
    soa->edge[i] = e;
    soa->offset[i] = offset;
    soa->heading[i] = heading;
  }
}

void MotionModel::Roughen(const WalkingGraph& graph, Particle* p,
                          Rng& rng) const {
  if (config_.position_jitter > 0.0 && !p->in_room) {
    const Edge& e = graph.edge(p->loc.edge);
    p->loc.offset =
        std::clamp(p->loc.offset + rng.Gaussian(0.0, config_.position_jitter),
                   0.0, e.length);
  }
  if (config_.speed_jitter > 0.0) {
    p->speed = std::max(p->speed + rng.Gaussian(0.0, config_.speed_jitter),
                        config_.min_speed);
  }
}

void MotionModel::RoughenAll(const EdgeSoA& edges, ParticleSoA* soa,
                             Rng& rng) const {
  const size_t n = soa->size();
  const bool jitter_pos = config_.position_jitter > 0.0;
  const bool jitter_speed = config_.speed_jitter > 0.0;
  if (!jitter_pos && !jitter_speed) {
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    if (jitter_pos && !soa->in_room[i]) {
      soa->offset[i] = std::clamp(
          soa->offset[i] + rng.Gaussian(0.0, config_.position_jitter), 0.0,
          edges.length[soa->edge[i]]);
    }
    if (jitter_speed) {
      soa->speed[i] =
          std::max(soa->speed[i] + rng.Gaussian(0.0, config_.speed_jitter),
                   config_.min_speed);
    }
  }
}

void MotionModel::WidenPosition(const WalkingGraph& graph, Particle* p,
                                double sigma, Rng& rng) const {
  if (sigma <= 0.0 || p->in_room) {
    return;
  }
  const Edge& e = graph.edge(p->loc.edge);
  p->loc.offset =
      std::clamp(p->loc.offset + rng.Gaussian(0.0, sigma), 0.0, e.length);
}

void MotionModel::WidenPositionAll(const EdgeSoA& edges, ParticleSoA* soa,
                                   FilterArena* arena, double sigma,
                                   Rng& rng) const {
  if (sigma <= 0.0) {
    return;
  }
  const size_t n = soa->size();
  std::vector<uint32_t>& idx = arena->slow;
  idx.clear();
  for (size_t i = 0; i < n; ++i) {
    if (!soa->in_room[i]) {
      idx.push_back(static_cast<uint32_t>(i));
    }
  }
  arena->draws.resize(idx.size());
  rng.GaussianBatch(0.0, sigma, idx.size(), arena->draws.data());
  for (size_t k = 0; k < idx.size(); ++k) {
    const uint32_t i = idx[k];
    soa->offset[i] = std::clamp(soa->offset[i] + arena->draws[k], 0.0,
                                edges.length[soa->edge[i]]);
  }
}

namespace {

// k-th outgoing edge of `node` (excluding `incoming`) whose stub-ness
// matches `want_stub`, in adjacency order. Counterpart of the counting
// pass in ChooseNextEdge.
EdgeId NthCandidate(const WalkingGraph& graph, NodeId node, EdgeId incoming,
                    bool want_stub, size_t k) {
  for (EdgeId eid : graph.node(node).edges) {
    if (eid == incoming) {
      continue;
    }
    if ((graph.edge(eid).kind == EdgeKind::kRoomStub) != want_stub) {
      continue;
    }
    if (k == 0) {
      return eid;
    }
    --k;
  }
  IPQS_CHECK(false) << "candidate index out of range";
  return kInvalidId;
}

}  // namespace

EdgeId MotionModel::ChooseNextEdge(const WalkingGraph& graph, NodeId node,
                                   EdgeId incoming, Rng& rng) const {
  // Count-then-select keeps this allocation-free: it runs once per
  // node crossing inside the per-second motion loop, where materializing
  // candidate vectors dominated the whole predict stage. The candidate
  // counts come from the node's cached per-kind totals minus the incoming
  // edge, so no adjacency walk happens unless an edge is actually drawn.
  // The draw sequence is identical to the historical build-two-vectors
  // version: NthCandidate follows adjacency order, and the same rng calls
  // fire under the same conditions.
  const Node& nd = graph.node(node);
  size_t num_stubs = static_cast<size_t>(nd.num_stub_edges);
  size_t num_hallways = static_cast<size_t>(nd.num_hallway_edges);
  if (incoming != kInvalidId) {
    if (graph.edge(incoming).kind == EdgeKind::kRoomStub) {
      --num_stubs;
    } else {
      --num_hallways;
    }
  }
  if (num_stubs == 0 && num_hallways == 0) {
    IPQS_CHECK_NE(incoming, kInvalidId) << "isolated node";
    return incoming;  // Dead end: U-turn.
  }
  if (num_hallways == 0) {
    return NthCandidate(graph, node, incoming, /*want_stub=*/true,
                        rng.UniformIndex(num_stubs));
  }
  if (num_stubs > 0 && rng.Bernoulli(config_.room_enter_probability)) {
    return NthCandidate(graph, node, incoming, /*want_stub=*/true,
                        rng.UniformIndex(num_stubs));
  }
  return NthCandidate(graph, node, incoming, /*want_stub=*/false,
                      rng.UniformIndex(num_hallways));
}

void MotionModel::Step(const WalkingGraph& graph, Particle* p, double dt,
                       Rng& rng) const {
  IPQS_DCHECK(p->loc.edge != kInvalidId);

  if (p->in_room) {
    if (!rng.Bernoulli(config_.room_exit_probability)) {
      return;  // Keeps dwelling this second.
    }
    // Walk back out: the particle sits at the room-center end of a stub.
    p->in_room = false;
    const Edge& e = graph.edge(p->loc.edge);
    const NodeId room_node =
        graph.node(e.a).kind == NodeKind::kRoomCenter ? e.a : e.b;
    IPQS_DCHECK(graph.node(room_node).kind == NodeKind::kRoomCenter);
    p->heading = graph.OtherEnd(e.id, room_node);
  }

  double remaining = p->speed * dt;
  // Termination guard: each loop iteration either consumes distance or
  // parks the particle; graphs with very short edges still converge fast.
  for (int guard = 0; remaining > 1e-12 && guard < 10000; ++guard) {
    const Edge& e = graph.edge(p->loc.edge);
    IPQS_DCHECK(p->heading == e.a || p->heading == e.b);
    const double target = graph.OffsetOfNode(e.id, p->heading);
    const double dist_to_node = std::fabs(target - p->loc.offset);

    if (remaining < dist_to_node) {
      p->loc.offset += target > p->loc.offset ? remaining : -remaining;
      return;
    }

    remaining -= dist_to_node;
    const NodeId node = p->heading;
    if (graph.node(node).kind == NodeKind::kRoomCenter) {
      // Entered the room: park and start the dwell process. The leftover
      // movement budget is absorbed by the room (its interior is not
      // spatially resolved beyond the stub).
      p->loc.offset = target;
      p->in_room = true;
      return;
    }
    const EdgeId next = ChooseNextEdge(graph, node, e.id, rng);
    p->loc.edge = next;
    p->loc.offset = graph.OffsetOfNode(next, node);
    p->heading = graph.OtherEnd(next, node);
  }
}

}  // namespace ipqs
