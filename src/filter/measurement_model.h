#ifndef IPQS_FILTER_MEASUREMENT_MODEL_H_
#define IPQS_FILTER_MEASUREMENT_MODEL_H_

#include "filter/particle.h"
#include "geom/point.h"
#include "rfid/deployment.h"

namespace ipqs {

// Device sensing model used to reweight particles at each observation
// (Algorithm 2, lines 21-27): particles consistent with the detecting
// reader get `hit_weight`, others `miss_weight`.
//
// `use_negative_information` is an extension the paper lists as future
// refinement territory: when the object was NOT detected during a second,
// particles sitting inside some reader's activation range are discounted by
// `silent_zone_weight` (they should have been seen). Disabled by default to
// match the paper (its Algorithm 2 skips seconds without readings).
struct MeasurementConfig {
  double hit_weight = 1.0;
  double miss_weight = 1e-6;
  bool use_negative_information = false;
  double silent_zone_weight = 0.2;
};

class MeasurementModel {
 public:
  MeasurementModel() : MeasurementModel(MeasurementConfig{}) {}
  explicit MeasurementModel(const MeasurementConfig& config);

  const MeasurementConfig& config() const { return config_; }

  // Likelihood multiplier for a particle at `pos` given that `detected_by`
  // produced a reading this second.
  double WeightOnDetection(const Deployment& deployment, const Point& pos,
                           ReaderId detected_by) const;

  // Likelihood multiplier for a particle at `pos` given that NO reader
  // produced a reading this second. Returns 1.0 unless negative
  // information is enabled.
  double WeightOnSilence(const Deployment& deployment, const Point& pos) const;

 private:
  MeasurementConfig config_;
};

}  // namespace ipqs

#endif  // IPQS_FILTER_MEASUREMENT_MODEL_H_
