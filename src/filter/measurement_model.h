#ifndef IPQS_FILTER_MEASUREMENT_MODEL_H_
#define IPQS_FILTER_MEASUREMENT_MODEL_H_

#include <cstddef>
#include <cstdint>

#include "filter/particle.h"
#include "geom/point.h"
#include "rfid/deployment.h"

// Keeps the batch kernels standalone under LTO: a cross-TU-inlined body
// is re-optimized with the caller's recorded options, which in practice
// drops the vector codegen the kernel TU's flags bought (observed: the
// range test falls back to scalar sqrt-with-errno when inlined into the
// per-second loop). One call per observation batch is noise next to the
// n-particle loop, so pinning the standalone body is free.
#if defined(__GNUC__) || defined(__clang__)
#define IPQS_KERNEL_NOINLINE __attribute__((noinline))
#else
#define IPQS_KERNEL_NOINLINE
#endif

namespace ipqs {

// Device sensing model used to reweight particles at each observation
// (Algorithm 2, lines 21-27): particles consistent with the detecting
// reader get `hit_weight`, others `miss_weight`.
//
// `use_negative_information` is an extension the paper lists as future
// refinement territory: when the object was NOT detected during a second,
// particles sitting inside some reader's activation range are discounted by
// `silent_zone_weight` (they should have been seen). Disabled by default to
// match the paper (its Algorithm 2 skips seconds without readings).
struct MeasurementConfig {
  double hit_weight = 1.0;
  double miss_weight = 1e-6;
  bool use_negative_information = false;
  double silent_zone_weight = 0.2;
};

class MeasurementModel {
 public:
  MeasurementModel() : MeasurementModel(MeasurementConfig{}) {}
  explicit MeasurementModel(const MeasurementConfig& config);

  const MeasurementConfig& config() const { return config_; }

  // Likelihood multiplier for a particle at `pos` given that `detected_by`
  // produced a reading this second.
  double WeightOnDetection(const Deployment& deployment, const Point& pos,
                           ReaderId detected_by) const;

  // Batch form over precomputed particle positions (x[i], y[i]): multiplies
  // weight[i] by the same per-particle likelihood (bit-identical range
  // test) and returns how many particles are inside the detecting reader's
  // range — 0 means the whole cloud contradicts the observation (the
  // filter's re-seed trigger). One pass, branch-light: the reader's center
  // and radius are hoisted out of the loop.
  IPQS_KERNEL_NOINLINE size_t WeightOnDetection(const Deployment& deployment,
                                                ReaderId detected_by, size_t n,
                                                const double* x,
                                                const double* y,
                                                double* weight) const;

  // Likelihood multiplier for a particle at `pos` given that NO reader
  // produced a reading this second. Returns 1.0 unless negative
  // information is enabled.
  double WeightOnSilence(const Deployment& deployment, const Point& pos) const;

  // Trust-masked form: `reader_trusted[id]` == 0 means reader `id`'s
  // silence is uninformative (the reader is suspect/dead or produced no
  // readings at all this second), so its zone contributes no discount.
  // Passing nullptr trusts every reader and is bit-identical to the
  // unmasked form.
  double WeightOnSilence(const Deployment& deployment, const Point& pos,
                         const uint8_t* reader_trusted) const;

  // Batch form over precomputed positions: multiplies weight[i] by the
  // silence likelihood (multiplying by the 1.0 case is an exact FP
  // identity, so the loop is unconditional) and returns how many weights
  // were scaled by a multiplier != 1.0 — 0 both when negative information
  // is disabled and when no particle sits in a silent zone, i.e. exactly
  // when the per-particle path would have left every weight untouched.
  IPQS_KERNEL_NOINLINE size_t WeightOnSilence(const Deployment& deployment,
                                              size_t n, const double* x,
                                              const double* y,
                                              double* weight) const;

  // Trust-masked batch form; nullptr `reader_trusted` delegates to the
  // unmasked kernel (same codegen, bit-identical results). With a mask,
  // untrusted readers are skipped in the coverage test so particles inside
  // only their zones keep weight 1.0.
  IPQS_KERNEL_NOINLINE size_t WeightOnSilence(const Deployment& deployment,
                                              size_t n, const double* x,
                                              const double* y, double* weight,
                                              const uint8_t* reader_trusted)
      const;

 private:
  MeasurementConfig config_;
};

}  // namespace ipqs

#endif  // IPQS_FILTER_MEASUREMENT_MODEL_H_
