#ifndef IPQS_FILTER_ANCHOR_DISTRIBUTION_H_
#define IPQS_FILTER_ANCHOR_DISTRIBUTION_H_

#include <unordered_map>
#include <utility>
#include <vector>

#include "filter/particle.h"
#include "graph/anchor_points.h"
#include "rfid/reader.h"

namespace ipqs {

// A discrete probability distribution over anchor points for one object —
// the output of location inference (both particle-filter-based and
// symbolic-model-based, so query evaluation is method-agnostic).
class AnchorDistribution {
 public:
  AnchorDistribution() = default;

  // Snaps every particle to its nearest anchor point on the same edge and
  // accumulates weight mass per anchor (Algorithm 2, lines 32-36).
  static AnchorDistribution FromParticles(const AnchorPointIndex& index,
                                          const std::vector<Particle>& particles);

  // Uniform distribution over the given anchor points (the symbolic model's
  // "uniform over all reachable locations").
  static AnchorDistribution Uniform(std::vector<AnchorId> anchors);

  // Arbitrary weighted construction; weights are normalized to sum to 1.
  static AnchorDistribution FromWeights(
      std::vector<std::pair<AnchorId, double>> weighted);

  // (anchor, probability) pairs, ascending by anchor id; probabilities sum
  // to 1 (up to rounding) for a non-empty distribution.
  const std::vector<std::pair<AnchorId, double>>& entries() const {
    return entries_;
  }
  bool empty() const { return entries_.empty(); }
  size_t support_size() const { return entries_.size(); }

  double ProbabilityAt(AnchorId anchor) const;
  double TotalProbability() const;

  // The k most probable anchor points, descending by probability (ties by
  // ascending anchor id, for determinism). Used by the top-k success
  // metric.
  std::vector<AnchorId> TopK(int k) const;

 private:
  std::vector<std::pair<AnchorId, double>> entries_;
};

// The APtoObjHT hash table of the paper: anchor point -> list of
// (object, probability). Rebuilt (or patched per object) after every
// filtering pass; range and kNN evaluation read only this structure.
class AnchorObjectTable {
 public:
  AnchorObjectTable() = default;

  // Replaces `object`'s location distribution.
  void Set(ObjectId object, AnchorDistribution distribution);

  // Removes `object` entirely.
  void Erase(ObjectId object);

  void Clear();

  // Objects with probability mass at `anchor`, ascending by object id
  // (empty list when none). The ordering is part of the contract: it makes
  // the table canonical by content, so evaluation results cannot depend on
  // insertion order.
  const std::vector<std::pair<ObjectId, double>>& AtAnchor(
      AnchorId anchor) const;

  // Per-object distribution; nullptr when unknown.
  const AnchorDistribution* Distribution(ObjectId object) const;

  std::vector<ObjectId> Objects() const;
  size_t num_objects() const { return by_object_.size(); }

 private:
  std::unordered_map<ObjectId, AnchorDistribution> by_object_;
  std::unordered_map<AnchorId, std::vector<std::pair<ObjectId, double>>>
      by_anchor_;
};

}  // namespace ipqs

#endif  // IPQS_FILTER_ANCHOR_DISTRIBUTION_H_
