#ifndef IPQS_FILTER_PARTICLE_CACHE_H_
#define IPQS_FILTER_PARTICLE_CACHE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "filter/particle_filter.h"
#include "obs/metrics.h"
#include "rfid/data_collector.h"
#include "rfid/reader.h"

namespace ipqs {

// Optional observability hooks for a ParticleCache; any member may be
// null. These mirror the per-shard Stats into a MetricsRegistry so cache
// behavior shows up in exported metrics without polling.
struct CacheMetrics {
  obs::Counter* hits = nullptr;
  obs::Counter* misses = nullptr;
  obs::Counter* invalidations = nullptr;        // Device hand-offs.
  obs::Counter* stale_invalidations = nullptr;  // Stale-coast evictions.
  obs::Counter* evictions = nullptr;            // Aged out by EvictOlderThan.
  obs::Counter* served_stale = nullptr;         // LookupStale servings.
};

// Cache management module (Section 4.5): stores the particle state an
// object's filter run ended in, so a follow-up query resumes filtering from
// that timestamp instead of replaying the whole history.
//
// Invalidation rules:
//  * Paper's rule: the moment an object is detected by a NEW device,
//    cached particles become useless (filtering is always based on the
//    readings of the two most recent devices), so a lookup whose current
//    device differs from the cached one misses and evicts.
//  * Stale-coast rule: a cached state may have coasted past readings it
//    never saw — the run ended at `last_reading + max_coast_seconds`, and a
//    newer same-device reading landed at or before that time. Resuming
//    would silently drop that reading (Advance starts strictly after
//    state.time), so such a lookup misses and evicts too.
//
// The cache is internally sharded by object with one mutex per shard, so
// concurrent per-object inference (QueryEngine::InferBatch) can look up and
// insert without a global lock.
class ParticleCache {
 public:
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t invalidations = 0;        // Device hand-offs (paper's rule).
    int64_t stale_invalidations = 0;  // Coasted-past-a-reading evictions.
    int64_t served_stale = 0;         // Entries served as-is by LookupStale.

    double HitRate() const {
      const int64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / total;
    }
  };

  ParticleCache() = default;

  // Installs observability hooks. Not thread-safe: call before the cache
  // is shared across threads (the hooks are read without synchronization).
  void SetMetrics(const CacheMetrics& metrics) { metrics_ = metrics; }

  // Cached state for `object` if present, still keyed to the history's
  // current device, and not stale-coasted; otherwise evicts any invalid
  // entry and returns nullopt.
  std::optional<FilterResult> Lookup(ObjectId object,
                                     const DataCollector::ObjectHistory& history);

  // Non-mutating admission probe for the degradation policy: reports the
  // cached entry's state time and age (now - state.time) without touching
  // stats or evicting anything. nullopt when no entry exists or the entry
  // is keyed to a different device than the history's current one (such an
  // entry is useless at any staleness). `resumable` is whether a real
  // Lookup would hit (i.e. the stale-coast rule also passes).
  struct ProbeResult {
    int64_t state_time = 0;
    int64_t age_seconds = 0;
    bool resumable = false;
  };
  std::optional<ProbeResult> Probe(ObjectId object,
                                   const DataCollector::ObjectHistory& history,
                                   int64_t now) const;

  // Degraded-read path: returns a copy of the cached state as-is (no
  // filter advance) when it is keyed to the current device and its age is
  // within `max_age_seconds`. Serving is counted under `served_stale` and
  // the entry's age is reported through `age_seconds` (when non-null), so
  // callers can enforce and observe the staleness bound. Never evicts —
  // the entry remains for a future full-quality resume.
  std::optional<FilterResult> LookupStale(
      ObjectId object, const DataCollector::ObjectHistory& history,
      int64_t now, int64_t max_age_seconds, int64_t* age_seconds = nullptr);

  // Stores `state` for `object`, keyed to the device and last-reading time
  // of the history it was computed from.
  void Insert(ObjectId object, const DataCollector::ObjectHistory& history,
              FilterResult state);

  // Drops entries older than `min_time` (aging, driven by the data
  // collector clock).
  void EvictOlderThan(int64_t min_time);

  void Clear();

  size_t size() const;
  // Aggregated snapshot over all shards.
  Stats stats() const;

  // Every cached entry with its key metadata, ascending by object, for the
  // persistence layer (src/persist/). Stats are process-local and are not
  // exported.
  struct PersistedEntry {
    ObjectId object = kInvalidId;
    ReaderId device = kInvalidId;
    int64_t last_reading = 0;
    FilterResult state;

    friend bool operator==(const PersistedEntry&,
                           const PersistedEntry&) = default;
  };
  std::vector<PersistedEntry> ExportEntries() const;
  // Replaces the cache contents wholesale (recovery).
  void RestoreEntries(std::vector<PersistedEntry> entries);

 private:
  struct Entry {
    ReaderId device = kInvalidId;
    int64_t last_reading = 0;  // History's LastTime() when cached.
    FilterResult state;
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<ObjectId, Entry> entries;
    Stats stats;
  };

  static constexpr size_t kNumShards = 16;

  Shard& ShardFor(ObjectId object) {
    return shards_[static_cast<uint32_t>(object) % kNumShards];
  }
  const Shard& ShardFor(ObjectId object) const {
    return shards_[static_cast<uint32_t>(object) % kNumShards];
  }

  Shard shards_[kNumShards];
  CacheMetrics metrics_;
};

}  // namespace ipqs

#endif  // IPQS_FILTER_PARTICLE_CACHE_H_
