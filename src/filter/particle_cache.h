#ifndef IPQS_FILTER_PARTICLE_CACHE_H_
#define IPQS_FILTER_PARTICLE_CACHE_H_

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "filter/particle_filter.h"
#include "rfid/reader.h"

namespace ipqs {

// Cache management module (Section 4.5): stores the particle state an
// object's filter run ended in, so a follow-up query resumes filtering from
// that timestamp instead of replaying the whole history.
//
// Invalidation rule from the paper: the moment an object is detected by a
// NEW device, cached particles become useless (filtering is always based on
// the readings of the two most recent devices), so a lookup whose
// `current_device` differs from the cached one misses and evicts.
class ParticleCache {
 public:
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t invalidations = 0;

    double HitRate() const {
      const int64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / total;
    }
  };

  ParticleCache() = default;

  // Cached state for `object` if present and still keyed to
  // `current_device`; otherwise evicts any stale entry and returns nullopt.
  std::optional<FilterResult> Lookup(ObjectId object,
                                     ReaderId current_device);

  // Stores `state` for `object`, keyed to the device of its latest reading.
  void Insert(ObjectId object, ReaderId current_device, FilterResult state);

  // Drops entries older than `min_time` (aging, driven by the data
  // collector clock).
  void EvictOlderThan(int64_t min_time);

  void Clear();

  size_t size() const { return entries_.size(); }
  const Stats& stats() const { return stats_; }

 private:
  struct Entry {
    ReaderId device = kInvalidId;
    FilterResult state;
  };

  std::unordered_map<ObjectId, Entry> entries_;
  Stats stats_;
};

}  // namespace ipqs

#endif  // IPQS_FILTER_PARTICLE_CACHE_H_
