#ifndef IPQS_FILTER_PARTICLE_CACHE_H_
#define IPQS_FILTER_PARTICLE_CACHE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "filter/particle_filter.h"
#include "obs/metrics.h"
#include "rfid/data_collector.h"
#include "rfid/reader.h"

namespace ipqs {

// Optional observability hooks for a ParticleCache; any member may be
// null. These mirror the per-shard Stats into a MetricsRegistry so cache
// behavior shows up in exported metrics without polling.
struct CacheMetrics {
  obs::Counter* hits = nullptr;
  obs::Counter* misses = nullptr;
  obs::Counter* invalidations = nullptr;        // Device hand-offs.
  obs::Counter* stale_invalidations = nullptr;  // Stale-coast evictions.
  obs::Counter* evictions = nullptr;            // Aged out by EvictOlderThan.
};

// Cache management module (Section 4.5): stores the particle state an
// object's filter run ended in, so a follow-up query resumes filtering from
// that timestamp instead of replaying the whole history.
//
// Invalidation rules:
//  * Paper's rule: the moment an object is detected by a NEW device,
//    cached particles become useless (filtering is always based on the
//    readings of the two most recent devices), so a lookup whose current
//    device differs from the cached one misses and evicts.
//  * Stale-coast rule: a cached state may have coasted past readings it
//    never saw — the run ended at `last_reading + max_coast_seconds`, and a
//    newer same-device reading landed at or before that time. Resuming
//    would silently drop that reading (Advance starts strictly after
//    state.time), so such a lookup misses and evicts too.
//
// The cache is internally sharded by object with one mutex per shard, so
// concurrent per-object inference (QueryEngine::InferBatch) can look up and
// insert without a global lock.
class ParticleCache {
 public:
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t invalidations = 0;        // Device hand-offs (paper's rule).
    int64_t stale_invalidations = 0;  // Coasted-past-a-reading evictions.

    double HitRate() const {
      const int64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / total;
    }
  };

  ParticleCache() = default;

  // Installs observability hooks. Not thread-safe: call before the cache
  // is shared across threads (the hooks are read without synchronization).
  void SetMetrics(const CacheMetrics& metrics) { metrics_ = metrics; }

  // Cached state for `object` if present, still keyed to the history's
  // current device, and not stale-coasted; otherwise evicts any invalid
  // entry and returns nullopt.
  std::optional<FilterResult> Lookup(ObjectId object,
                                     const DataCollector::ObjectHistory& history);

  // Stores `state` for `object`, keyed to the device and last-reading time
  // of the history it was computed from.
  void Insert(ObjectId object, const DataCollector::ObjectHistory& history,
              FilterResult state);

  // Drops entries older than `min_time` (aging, driven by the data
  // collector clock).
  void EvictOlderThan(int64_t min_time);

  void Clear();

  size_t size() const;
  // Aggregated snapshot over all shards.
  Stats stats() const;

 private:
  struct Entry {
    ReaderId device = kInvalidId;
    int64_t last_reading = 0;  // History's LastTime() when cached.
    FilterResult state;
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<ObjectId, Entry> entries;
    Stats stats;
  };

  static constexpr size_t kNumShards = 16;

  Shard& ShardFor(ObjectId object) {
    return shards_[static_cast<uint32_t>(object) % kNumShards];
  }

  Shard shards_[kNumShards];
  CacheMetrics metrics_;
};

}  // namespace ipqs

#endif  // IPQS_FILTER_PARTICLE_CACHE_H_
