#include "filter/particle_cache.h"

#include <algorithm>

#include "common/check.h"

namespace ipqs {
namespace {

inline void Bump(obs::Counter* counter) {
  if (counter != nullptr) {
    counter->Increment();
  }
}

}  // namespace

std::optional<FilterResult> ParticleCache::Lookup(
    ObjectId object, const DataCollector::ObjectHistory& history) {
  IPQS_CHECK(!history.entries.empty());
  Shard& shard = ShardFor(object);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.entries.find(object);
  if (it == shard.entries.end()) {
    ++shard.stats.misses;
    Bump(metrics_.misses);
    return std::nullopt;
  }
  const Entry& entry = it->second;
  if (entry.device != history.current_device) {
    // New device since the cached run: stale by the paper's rule.
    shard.entries.erase(it);
    ++shard.stats.misses;
    ++shard.stats.invalidations;
    Bump(metrics_.misses);
    Bump(metrics_.invalidations);
    return std::nullopt;
  }
  // Stale-coast check: a reading the cached run never processed, at or
  // before the time the state coasted to, would be silently dropped by
  // Resume (it only advances strictly past state.time). Entries are
  // ascending by time, so the first unseen reading is enough to check.
  const auto first_unseen = std::upper_bound(
      history.entries.begin(), history.entries.end(), entry.last_reading,
      [](int64_t t, const AggregatedEntry& e) { return t < e.time; });
  if (first_unseen != history.entries.end() &&
      first_unseen->time <= entry.state.time) {
    shard.entries.erase(it);
    ++shard.stats.misses;
    ++shard.stats.stale_invalidations;
    Bump(metrics_.misses);
    Bump(metrics_.stale_invalidations);
    return std::nullopt;
  }
  ++shard.stats.hits;
  Bump(metrics_.hits);
  return entry.state;
}

std::optional<ParticleCache::ProbeResult> ParticleCache::Probe(
    ObjectId object, const DataCollector::ObjectHistory& history,
    int64_t now) const {
  IPQS_CHECK(!history.entries.empty());
  const Shard& shard = ShardFor(object);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.entries.find(object);
  if (it == shard.entries.end() ||
      it->second.device != history.current_device) {
    return std::nullopt;
  }
  const Entry& entry = it->second;
  ProbeResult probe;
  probe.state_time = entry.state.time;
  probe.age_seconds = now - entry.state.time;
  const auto first_unseen = std::upper_bound(
      history.entries.begin(), history.entries.end(), entry.last_reading,
      [](int64_t t, const AggregatedEntry& e) { return t < e.time; });
  probe.resumable = first_unseen == history.entries.end() ||
                    first_unseen->time > entry.state.time;
  return probe;
}

std::optional<FilterResult> ParticleCache::LookupStale(
    ObjectId object, const DataCollector::ObjectHistory& history, int64_t now,
    int64_t max_age_seconds, int64_t* age_seconds) {
  IPQS_CHECK(!history.entries.empty());
  Shard& shard = ShardFor(object);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.entries.find(object);
  if (it == shard.entries.end() ||
      it->second.device != history.current_device) {
    return std::nullopt;
  }
  const Entry& entry = it->second;
  const int64_t age = now - entry.state.time;
  if (age > max_age_seconds) {
    return std::nullopt;
  }
  if (age_seconds != nullptr) {
    *age_seconds = age;
  }
  ++shard.stats.served_stale;
  Bump(metrics_.served_stale);
  return entry.state;
}

void ParticleCache::Insert(ObjectId object,
                           const DataCollector::ObjectHistory& history,
                           FilterResult state) {
  IPQS_CHECK(!history.entries.empty());
  Shard& shard = ShardFor(object);
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.entries[object] =
      Entry{history.current_device, history.LastTime(), std::move(state)};
}

void ParticleCache::EvictOlderThan(int64_t min_time) {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    const size_t evicted =
        std::erase_if(shard.entries, [min_time](const auto& kv) {
          return kv.second.state.time < min_time;
        });
    if (metrics_.evictions != nullptr && evicted > 0) {
      metrics_.evictions->Increment(static_cast<int64_t>(evicted));
    }
  }
}

void ParticleCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.entries.clear();
  }
}

size_t ParticleCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.entries.size();
  }
  return total;
}

ParticleCache::Stats ParticleCache::stats() const {
  Stats total;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total.hits += shard.stats.hits;
    total.misses += shard.stats.misses;
    total.invalidations += shard.stats.invalidations;
    total.stale_invalidations += shard.stats.stale_invalidations;
    total.served_stale += shard.stats.served_stale;
  }
  return total;
}

std::vector<ParticleCache::PersistedEntry> ParticleCache::ExportEntries()
    const {
  std::vector<PersistedEntry> out;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [object, entry] : shard.entries) {
      out.push_back({object, entry.device, entry.last_reading, entry.state});
    }
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.object < b.object;
  });
  return out;
}

void ParticleCache::RestoreEntries(std::vector<PersistedEntry> entries) {
  Clear();
  for (PersistedEntry& e : entries) {
    Shard& shard = ShardFor(e.object);
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.entries[e.object] =
        Entry{e.device, e.last_reading, std::move(e.state)};
  }
}

}  // namespace ipqs
