#include "filter/particle_cache.h"

namespace ipqs {

std::optional<FilterResult> ParticleCache::Lookup(ObjectId object,
                                                  ReaderId current_device) {
  const auto it = entries_.find(object);
  if (it == entries_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  if (it->second.device != current_device) {
    // New device since the cached run: stale by the paper's rule.
    entries_.erase(it);
    ++stats_.misses;
    ++stats_.invalidations;
    return std::nullopt;
  }
  ++stats_.hits;
  return it->second.state;
}

void ParticleCache::Insert(ObjectId object, ReaderId current_device,
                           FilterResult state) {
  entries_[object] = Entry{current_device, std::move(state)};
}

void ParticleCache::EvictOlderThan(int64_t min_time) {
  std::erase_if(entries_, [min_time](const auto& kv) {
    return kv.second.state.time < min_time;
  });
}

void ParticleCache::Clear() { entries_.clear(); }

}  // namespace ipqs
