#include "filter/particle_filter.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "common/check.h"
#include "filter/resampler.h"

namespace ipqs {

ParticleFilter::ParticleFilter(const WalkingGraph* graph,
                               const Deployment* deployment,
                               const FilterConfig& config)
    : graph_(graph),
      deployment_(deployment),
      config_(config),
      motion_(config.motion),
      measurement_(config.measurement) {
  IPQS_CHECK(graph != nullptr);
  IPQS_CHECK(deployment != nullptr);
  IPQS_CHECK_GT(config.num_particles, 0);
  IPQS_CHECK_GE(config.max_coast_seconds, 0);
  edges_soa_ = EdgeSoA::FromGraph(*graph);
}

std::vector<Particle> ParticleFilter::InitializeAtReader(ReaderId reader,
                                                         Rng& rng) const {
  const Reader& r = deployment_->reader(reader);
  const std::vector<EdgeInterval> intervals =
      EdgeIntervalsInRange(*graph_, r);

  std::vector<Particle> particles;
  particles.reserve(config_.num_particles);
  const double w = 1.0 / config_.num_particles;

  if (intervals.empty()) {
    // Pathological range (smaller than the snap error): park everything at
    // the reader's own graph location.
    for (int i = 0; i < config_.num_particles; ++i) {
      Particle p;
      p.loc = r.loc;
      const Edge& e = graph_->edge(r.loc.edge);
      p.heading = rng.Bernoulli(0.5) ? e.a : e.b;
      p.speed = motion_.SampleSpeed(rng);
      p.weight = w;
      particles.push_back(p);
    }
    return particles;
  }

  std::vector<double> lengths;
  lengths.reserve(intervals.size());
  for (const EdgeInterval& iv : intervals) {
    lengths.push_back(iv.Length());
  }

  for (int i = 0; i < config_.num_particles; ++i) {
    const EdgeInterval& iv = intervals[rng.Categorical(lengths)];
    const Edge& e = graph_->edge(iv.edge);
    Particle p;
    p.loc = GraphLocation{iv.edge, rng.Uniform(iv.lo, iv.hi)};
    p.heading = rng.Bernoulli(0.5) ? e.a : e.b;
    p.speed = motion_.SampleSpeed(rng);
    p.weight = w;
    particles.push_back(p);
  }
  return particles;
}

void ParticleFilter::Advance(std::vector<Particle>* particles,
                             const DataCollector::ObjectHistory& history,
                             int64_t from_time, int64_t to_time, int* seconds,
                             Rng& rng) const {
  std::unordered_map<int64_t, ReaderId> reading_at;
  reading_at.reserve(history.entries.size());
  // The newest observation at or before from_time anchors the gap clock;
  // computed from the history (not from from_time) so a cache Resume sees
  // the same gap a full Run would.
  int64_t last_obs = std::numeric_limits<int64_t>::min();
  for (const AggregatedEntry& e : history.entries) {
    reading_at[e.time] = e.reader;
    if (e.time <= from_time) {
      last_obs = std::max(last_obs, e.time);
    }
  }
  if (last_obs == std::numeric_limits<int64_t>::min()) {
    last_obs = from_time;
  }

  // The per-second stages run on the structure-of-arrays layout; AoS is
  // only the interchange format at the boundaries (cache, persistence,
  // anchor projection, re-seeding). One conversion pair per Advance call,
  // amortized over all simulated seconds. The buffers are thread_local so
  // the hot loop allocates nothing after warm-up; safe because Advance is
  // non-reentrant and all randomness flows through the explicit `rng`.
  thread_local ParticleSoA soa;
  thread_local FilterArena arena;
  thread_local std::vector<uint8_t> trust_mask;
  soa.AssignFrom(*particles);
  const EdgeSoA& edges = edges_soa_;

  for (int64_t tj = from_time + 1; tj <= to_time; ++tj) {
    // Stage timing samples every 4th simulated second (keyed to the
    // absolute timestamp, so it is deterministic and identical across
    // runs); see FilterMetrics.
    const bool timed = metrics_.predict_ns != nullptr && (tj & 3) == 0;
    int64_t stage_start = timed ? obs::MonotonicNanos() : 0;

    // Predict: every particle walks for one second.
    motion_.StepAll(*graph_, edges, &soa, &arena, 1.0, rng);
    ++*seconds;
    if (timed) {
      const int64_t now_ns = obs::MonotonicNanos();
      metrics_.predict_ns->Observe(now_ns - stage_start);
      stage_start = now_ns;
    }

    // Gap widening (see FilterConfig): while coasting across a reading
    // gap, diffuse positions a little extra so the cloud honestly reports
    // the accumulated uncertainty. Off by default (jitter 0.0).
    if (config_.gap_position_jitter > 0.0 &&
        tj - last_obs > config_.gap_widen_after_seconds) {
      motion_.WidenPositionAll(edges, &soa, &arena,
                               config_.gap_position_jitter, rng);
    }

    // Update: reweight against the observation of second tj, if any.
    const auto it = reading_at.find(tj);
    bool reweighted = false;
    if (it != reading_at.end()) {
      last_obs = tj;
      const size_t n = soa.size();
      arena.x.resize(n);
      arena.y.resize(n);
      ComputePositions(edges, soa, arena.x.data(), arena.y.data());
      const size_t consistent = measurement_.WeightOnDetection(
          *deployment_, it->second, n, arena.x.data(), arena.y.data(),
          soa.weight.data());
      if (consistent == 0) {
        // The whole cloud contradicts a trustworthy observation (sample
        // impoverishment, or the object did something the motion model
        // finds very unlikely). Re-seed at the detecting reader — exactly
        // the Algorithm 2 initialization, applied mid-stream. (The
        // scaled weights are discarded with the rest of the old cloud.)
        soa.AssignFrom(InitializeAtReader(it->second, rng));
        if (metrics_.reseeds != nullptr) {
          metrics_.reseeds->Increment();
        }
        if (timed && metrics_.weight_ns != nullptr) {
          // The consistency scan and re-seed are this second's update
          // stage; record it rather than dropping the elapsed time on the
          // floor (the timer previously skipped re-seed seconds entirely,
          // biasing weight_ns low exactly when the filter struggles).
          metrics_.weight_ns->Observe(obs::MonotonicNanos() - stage_start);
        }
        continue;
      }
      reweighted = true;
    } else if (measurement_.config().use_negative_information) {
      const size_t n = soa.size();
      arena.x.resize(n);
      arena.y.resize(n);
      ComputePositions(edges, soa, arena.x.data(), arena.y.data());
      // Silence trust: a reader that is suspect/dead (health monitor) or
      // produced no readings at all during second tj contributes no
      // discount — its silence is noise, not information. Masked by the
      // REPLAYED second, so a cache Resume weighs each second the same way
      // a cold Run would at the same evaluation time.
      const uint8_t* mask = nullptr;
      if (trust_ != nullptr) {
        const size_t num_readers =
            static_cast<size_t>(deployment_->num_readers());
        trust_mask.resize(num_readers);
        if (trust_->FillSilenceTrust(tj, num_readers, trust_mask.data())) {
          mask = trust_mask.data();
        }
      }
      reweighted = measurement_.WeightOnSilence(*deployment_, n,
                                                arena.x.data(), arena.y.data(),
                                                soa.weight.data(), mask) > 0;
    }

    if (timed && reweighted && metrics_.weight_ns != nullptr) {
      const int64_t now_ns = obs::MonotonicNanos();
      metrics_.weight_ns->Observe(now_ns - stage_start);
      stage_start = now_ns;
    }

    if (reweighted) {
      // SIR: resample at the observation (weights come out uniform), then
      // roughen so replicated particles diverge again. With adaptive
      // resampling enabled, skip while the ESS is still healthy. Weights
      // are normalized exactly once — here — and the resampler consumes
      // them pre-normalized (it used to renormalize internally, wasted
      // work that also perturbed the CDF by an ulp).
      NormalizeWeights(&soa);
      const double ess_threshold =
          config_.resample_ess_fraction * static_cast<double>(soa.size());
      if (EffectiveSampleSize(soa) <= ess_threshold) {
        Resample(config_.resampling, &soa, &arena, rng);
        motion_.RoughenAll(edges, &soa, rng);
      }
      if (timed && metrics_.resample_ns != nullptr) {
        metrics_.resample_ns->Observe(obs::MonotonicNanos() - stage_start);
      }
    }
  }

  soa.CopyTo(particles);
}

FilterResult ParticleFilter::Run(const DataCollector::ObjectHistory& history,
                                 int64_t now, Rng& rng) const {
  IPQS_CHECK(!history.entries.empty());
  const obs::ScopedTimer timer(metrics_.run_ns);
  if (metrics_.particles != nullptr) {
    metrics_.particles->Set(config_.num_particles);
  }
  const int64_t t0 = history.FirstTime();
  const int64_t td = history.LastTime();
  const int64_t tmin = std::min(td + config_.max_coast_seconds, now);

  FilterResult result;
  result.particles = InitializeAtReader(history.entries.front().reader, rng);
  result.time = t0;
  Advance(&result.particles, history, t0, tmin, &result.seconds_processed,
          rng);
  result.time = tmin;
  return result;
}

FilterResult ParticleFilter::Resume(FilterResult state,
                                    const DataCollector::ObjectHistory& history,
                                    int64_t now, Rng& rng) const {
  IPQS_CHECK(!history.entries.empty());
  const obs::ScopedTimer timer(metrics_.resume_ns);
  const int64_t td = history.LastTime();
  const int64_t tmin = std::min(td + config_.max_coast_seconds, now);
  if (tmin <= state.time) {
    return state;  // Nothing new to process.
  }
  Advance(&state.particles, history, state.time, tmin,
          &state.seconds_processed, rng);
  state.time = tmin;
  return state;
}

AnchorDistribution ParticleFilter::Infer(
    const AnchorPointIndex& anchors,
    const DataCollector::ObjectHistory& history, int64_t now,
    Rng& rng) const {
  const FilterResult result = Run(history, now, rng);
  return AnchorDistribution::FromParticles(anchors, result.particles);
}

}  // namespace ipqs
