#include "filter/anchor_distribution.h"

#include <algorithm>
#include <map>

#include "common/check.h"

namespace ipqs {

AnchorDistribution AnchorDistribution::FromParticles(
    const AnchorPointIndex& index, const std::vector<Particle>& particles) {
  std::map<AnchorId, double> mass;
  double total = 0.0;
  for (const Particle& p : particles) {
    const AnchorId ap = index.NearestOnEdge(p.loc);
    mass[ap] += p.weight;
    total += p.weight;
  }
  AnchorDistribution dist;
  if (total <= 0.0) {
    return dist;
  }
  dist.entries_.reserve(mass.size());
  for (const auto& [anchor, m] : mass) {
    dist.entries_.emplace_back(anchor, m / total);
  }
  return dist;
}

AnchorDistribution AnchorDistribution::Uniform(std::vector<AnchorId> anchors) {
  std::sort(anchors.begin(), anchors.end());
  anchors.erase(std::unique(anchors.begin(), anchors.end()), anchors.end());
  AnchorDistribution dist;
  if (anchors.empty()) {
    return dist;
  }
  const double p = 1.0 / static_cast<double>(anchors.size());
  dist.entries_.reserve(anchors.size());
  for (AnchorId a : anchors) {
    dist.entries_.emplace_back(a, p);
  }
  return dist;
}

AnchorDistribution AnchorDistribution::FromWeights(
    std::vector<std::pair<AnchorId, double>> weighted) {
  std::map<AnchorId, double> mass;
  double total = 0.0;
  for (const auto& [anchor, w] : weighted) {
    IPQS_CHECK_GE(w, 0.0);
    if (w > 0.0) {
      mass[anchor] += w;
      total += w;
    }
  }
  AnchorDistribution dist;
  if (total <= 0.0) {
    return dist;
  }
  dist.entries_.reserve(mass.size());
  for (const auto& [anchor, m] : mass) {
    dist.entries_.emplace_back(anchor, m / total);
  }
  return dist;
}

double AnchorDistribution::ProbabilityAt(AnchorId anchor) const {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), anchor,
      [](const std::pair<AnchorId, double>& e, AnchorId a) {
        return e.first < a;
      });
  if (it != entries_.end() && it->first == anchor) {
    return it->second;
  }
  return 0.0;
}

double AnchorDistribution::TotalProbability() const {
  double total = 0.0;
  for (const auto& [_, p] : entries_) {
    total += p;
  }
  return total;
}

std::vector<AnchorId> AnchorDistribution::TopK(int k) const {
  std::vector<std::pair<AnchorId, double>> sorted = entries_;
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  std::vector<AnchorId> out;
  const int n = std::min<int>(k, static_cast<int>(sorted.size()));
  out.reserve(n);
  for (int i = 0; i < n; ++i) {
    out.push_back(sorted[i].first);
  }
  return out;
}

void AnchorObjectTable::Set(ObjectId object, AnchorDistribution distribution) {
  Erase(object);
  // Per-anchor lists stay sorted by object id, so the table's content — and
  // every accumulation order downstream of AtAnchor — is canonical: it
  // depends only on WHICH (object, distribution) pairs are present, never
  // on the order queries inserted them in.
  for (const auto& [anchor, p] : distribution.entries()) {
    auto& list = by_anchor_[anchor];
    const auto pos = std::lower_bound(
        list.begin(), list.end(), object,
        [](const std::pair<ObjectId, double>& e, ObjectId id) {
          return e.first < id;
        });
    list.emplace(pos, object, p);
  }
  by_object_[object] = std::move(distribution);
}

void AnchorObjectTable::Erase(ObjectId object) {
  const auto it = by_object_.find(object);
  if (it == by_object_.end()) {
    return;
  }
  for (const auto& [anchor, _] : it->second.entries()) {
    auto list_it = by_anchor_.find(anchor);
    if (list_it == by_anchor_.end()) {
      continue;
    }
    std::erase_if(list_it->second,
                  [object](const auto& e) { return e.first == object; });
    if (list_it->second.empty()) {
      by_anchor_.erase(list_it);
    }
  }
  by_object_.erase(it);
}

void AnchorObjectTable::Clear() {
  by_object_.clear();
  by_anchor_.clear();
}

const std::vector<std::pair<ObjectId, double>>& AnchorObjectTable::AtAnchor(
    AnchorId anchor) const {
  // Leaked singleton keeps the static trivially destructible.
  static const auto& kEmpty = *new std::vector<std::pair<ObjectId, double>>();
  const auto it = by_anchor_.find(anchor);
  return it == by_anchor_.end() ? kEmpty : it->second;
}

const AnchorDistribution* AnchorObjectTable::Distribution(
    ObjectId object) const {
  const auto it = by_object_.find(object);
  return it == by_object_.end() ? nullptr : &it->second;
}

std::vector<ObjectId> AnchorObjectTable::Objects() const {
  std::vector<ObjectId> out;
  out.reserve(by_object_.size());
  for (const auto& [id, _] : by_object_) {
    out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace ipqs
