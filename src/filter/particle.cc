#include "filter/particle.h"

#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace ipqs {

std::string Particle::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "particle{edge=%d off=%.2f ->n%d v=%.2f w=%.4g%s}", loc.edge,
                loc.offset, heading, speed, weight, in_room ? " room" : "");
  return buf;
}

double TotalWeight(const std::vector<Particle>& particles) {
  double total = 0.0;
  for (const Particle& p : particles) {
    total += p.weight;
  }
  return total;
}

void NormalizeWeights(std::vector<Particle>* particles) {
  const double total = TotalWeight(*particles);
  IPQS_CHECK_GT(total, 0.0) << "cannot normalize all-zero weights";
  for (Particle& p : *particles) {
    p.weight /= total;
  }
}

double EffectiveSampleSize(const std::vector<Particle>& particles) {
  double sum_sq = 0.0;
  for (const Particle& p : particles) {
    sum_sq += p.weight * p.weight;
  }
  if (sum_sq <= 0.0) {
    return 0.0;
  }
  return 1.0 / sum_sq;
}

}  // namespace ipqs
