#ifndef IPQS_FILTER_RESAMPLER_H_
#define IPQS_FILTER_RESAMPLER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "filter/particle.h"
#include "filter/particle_soa.h"

namespace ipqs {

// Resampling schemes for the SIR update. The paper uses the systematic
// scheme (its Algorithm 1); the classic alternatives are provided for
// ablation (`bench/ablation_resampling`) and for library users tuning the
// variance/cost trade-off.
enum class ResamplingScheme {
  kSystematic,   // Algorithm 1: one uniform draw, lowest variance, O(N).
  kStratified,   // One uniform draw per stratum, O(N).
  kMultinomial,  // N independent draws, highest variance, O(N log N).
  kResidual,     // Deterministic floor(N*w) copies + multinomial remainder.
};

std::string ToString(ResamplingScheme scheme);

// SoA kernels — the filter's hot path. Contract, shared by all schemes:
//
//  * Weights must be pre-normalized (sum to 1 in ascending index order, as
//    NormalizeWeights produces; checked with IPQS_DCHECK, never silently
//    re-normalized — the filter normalizes exactly once per reweight, and
//    double normalization was both wasted work and an ulp-level answer
//    perturbation).
//  * The set is replaced by exactly `size()` survivors with uniform
//    weights 1/Ns, selected via an inclusive prefix-sum CDF and a single
//    monotone cursor pass over sorted quantiles.
//  * `arena` supplies every buffer (CDF, quantiles, selection indices, the
//    output double-buffer); nothing is allocated after arena warm-up.
//  * Draw order is identical to the historical AoS implementation: the
//    kernels consume exactly the same Rng sequence.
void Resample(ResamplingScheme scheme, ParticleSoA* soa, FilterArena* arena,
              Rng& rng);
void SystematicResample(ParticleSoA* soa, FilterArena* arena, Rng& rng);

// Low-level selection kernel (exposed for regression tests): fills
// sel[0..quantiles.size()) with the index of the particle owning each
// quantile, where `cdf` is an inclusive prefix sum over the weights and
// `quantiles` is ascending. The cursor is clamped to the last particle:
// a quantile past cdf.back() — an adversarial or denormalized CDF —
// selects the final particle instead of walking off the end (the old
// implementation only guarded this with a DCHECK, so a Release build
// would read out of bounds).
void SelectIndicesAtQuantiles(const std::vector<double>& cdf,
                              const std::vector<double>& quantiles,
                              uint32_t* sel);

// AoS convenience wrappers (tests, benches, library users). Unlike the
// SoA kernels these DO normalize first — the historical contract: callers
// may pass arbitrary positive weights. A call on already-normalized
// weights performs the same (numerically near-identity) extra division the
// historical implementation did, so existing pinned sequences reproduce.
//
// Precondition: at least one particle with positive weight.
void SystematicResample(std::vector<Particle>* particles, Rng& rng);
void Resample(ResamplingScheme scheme, std::vector<Particle>* particles,
              Rng& rng);

}  // namespace ipqs

#endif  // IPQS_FILTER_RESAMPLER_H_
