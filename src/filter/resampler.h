#ifndef IPQS_FILTER_RESAMPLER_H_
#define IPQS_FILTER_RESAMPLER_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "filter/particle.h"

namespace ipqs {

// Resampling schemes for the SIR update. The paper uses the systematic
// scheme (its Algorithm 1); the classic alternatives are provided for
// ablation (`bench/ablation_resampling`) and for library users tuning the
// variance/cost trade-off.
enum class ResamplingScheme {
  kSystematic,   // Algorithm 1: one uniform draw, lowest variance, O(N).
  kStratified,   // One uniform draw per stratum, O(N).
  kMultinomial,  // N independent draws, highest variance, O(N log N).
  kResidual,     // Deterministic floor(N*w) copies + multinomial remainder.
};

std::string ToString(ResamplingScheme scheme);

// Systematic resampling, Algorithm 1 of the paper (the SIR resampling
// step): builds the weight CDF, draws one uniform starting point
// u1 ~ U[0, 1/Ns], and selects particles at u1 + (j-1)/Ns. Low-weight
// particles die, high-weight particles replicate, and the output has
// exactly the input size with uniform weights 1/Ns.
//
// Precondition: at least one particle with positive weight.
void SystematicResample(std::vector<Particle>* particles, Rng& rng);

// Dispatches to the chosen scheme. All schemes share the contract of
// SystematicResample (size preserved, uniform output weights).
void Resample(ResamplingScheme scheme, std::vector<Particle>* particles,
              Rng& rng);

}  // namespace ipqs

#endif  // IPQS_FILTER_RESAMPLER_H_
