#include "filter/resampler.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace ipqs {
namespace {

// Debug guard for the pre-normalized-weights contract of the SoA
// kernels; compiled out of Release builds.
void DCheckNormalized(const ParticleSoA& soa) {
#ifndef NDEBUG
  double acc = 0.0;
  for (size_t i = 0; i < soa.size(); ++i) {
    acc += soa.weight[i];
  }
  IPQS_DCHECK(std::fabs(acc - 1.0) <= 1e-6)
      << "resampler requires pre-normalized weights; sum=" << acc;
#else
  (void)soa;
#endif
}

// Fused CDF + quantile selection + survivor gather: one pass over the
// sorted quantiles q(0..ns-1) with a single monotone cursor, copying the
// selected particle's fields into arena->swap as soon as the cursor
// settles. The inclusive prefix-sum CDF is accumulated on the fly, in
// ascending index order — the filter's fixed summation order — as the
// cursor advances, so no CDF array is ever materialized: the running sum
// `c` equals cdf[i] bit-for-bit. Selection is exactly
// SelectIndicesAtQuantiles (including the last-particle clamp for an
// adversarial weight total short of the largest quantile): the historical
// cdf.back() = 1.0 rounding pin never influenced selection, because the
// `i + 1 < ns` guard stops the cursor before the last entry's value can
// decide anything. `quantile(j)` must be non-decreasing in j.
template <bool kPeel, typename QuantileFn>
void GatherAtQuantilesImpl(QuantileFn quantile, ParticleSoA* soa,
                           FilterArena* arena) {
  const size_t ns = soa->size();
  DCheckNormalized(*soa);
  ParticleSoA& out = arena->swap;
  out.Resize(ns);
  const double* w = soa->weight.data();
  size_t i = 0;
  double c = w[0];
  for (size_t j = 0; j < ns; ++j) {
    const double u = quantile(j);
    // The cursor usually advances 0-2 entries per quantile but the exact
    // count is data-dependent, so for large sets the plain while loop
    // mispredicts nearly every iteration — the dominant cost of this
    // kernel. Peel the first four advances branchlessly (guarded selects;
    // a not-taken advance adds a dummy w[i] whose sum is discarded by the
    // select, so the running sum only ever accumulates the weights the
    // while loop would have added, in the same order — bit-identical),
    // then fall back to the loop for the rare longer runs. Depth 4
    // measured faster than 2 at 1024 particles; both are selections over
    // the same exact sums, so the depth cannot affect results.
    if constexpr (kPeel) {
      for (int p = 0; p < 4; ++p) {
        const bool a = (u > c) & (i + 1 < ns);
        const double cn = c + w[a ? i + 1 : i];
        i += a ? 1 : 0;
        c = a ? cn : c;
      }
    }
    while (u > c && i + 1 < ns) {
      c += w[++i];
    }
    out.edge[j] = soa->edge[i];
    out.offset[j] = soa->offset[i];
    out.heading[j] = soa->heading[i];
    out.speed[j] = soa->speed[i];
    out.in_room[j] = soa->in_room[i];
  }
  // Uniform survivor weights, filled as one vectorizable pass instead of
  // a sixth store stream inside the gather loop.
  std::fill(out.weight.begin(), out.weight.end(),
            1.0 / static_cast<double>(ns));
  std::swap(*soa, arena->swap);
}

// Below this size the plain cursor loop predicts well (the selection
// pattern fits the branch predictor's reach) and the peel's extra selects
// are pure overhead; above it the peel wins decisively. Crossover measured
// between 64 and 1024 particles. Both paths select identically, so the
// dispatch cannot affect results.
constexpr size_t kPeelMinParticles = 256;

template <typename QuantileFn>
void GatherAtQuantiles(QuantileFn quantile, ParticleSoA* soa,
                       FilterArena* arena) {
  if (soa->size() >= kPeelMinParticles) {
    GatherAtQuantilesImpl<true>(quantile, soa, arena);
  } else {
    GatherAtQuantilesImpl<false>(quantile, soa, arena);
  }
}

// Gathers arena->sel into arena->swap with uniform survivor weights and
// swaps the buffers into place. The gather is a plain indexed field copy
// per array — no branches, no struct strides.
void GatherUniform(ParticleSoA* soa, FilterArena* arena) {
  const std::vector<uint32_t>& sel = arena->sel;
  const size_t out_n = sel.size();
  ParticleSoA& out = arena->swap;
  out.Resize(out_n);
  for (size_t j = 0; j < out_n; ++j) {
    const uint32_t i = sel[j];
    out.edge[j] = soa->edge[i];
    out.offset[j] = soa->offset[i];
    out.heading[j] = soa->heading[i];
    out.speed[j] = soa->speed[i];
    out.in_room[j] = soa->in_room[i];
  }
  std::fill(out.weight.begin(), out.weight.end(),
            1.0 / static_cast<double>(soa->size()));
  std::swap(*soa, arena->swap);
}

void StratifiedResample(ParticleSoA* soa, FilterArena* arena, Rng& rng) {
  const size_t ns = soa->size();
  arena->draws.resize(ns);
  rng.Uniform01Batch(ns, arena->draws.data());
  const double* draws = arena->draws.data();
  const double nsd = static_cast<double>(ns);
  GatherAtQuantiles(
      [draws, nsd](size_t j) {
        return (static_cast<double>(j) + draws[j]) / nsd;
      },
      soa, arena);
}

void MultinomialResample(ParticleSoA* soa, FilterArena* arena, Rng& rng) {
  const size_t ns = soa->size();
  arena->quantiles.resize(ns);
  rng.Uniform01Batch(ns, arena->quantiles.data());
  std::sort(arena->quantiles.begin(), arena->quantiles.end());
  const double* q = arena->quantiles.data();
  GatherAtQuantiles([q](size_t j) { return q[j]; }, soa, arena);
}

void ResidualResample(ParticleSoA* soa, FilterArena* arena, Rng& rng) {
  const size_t ns = soa->size();
  std::vector<uint32_t>& sel = arena->sel;
  sel.clear();
  sel.reserve(ns);
  std::vector<double>& residuals = arena->residuals;
  residuals.resize(ns);
  // Deterministic part: floor(N * w_i) guaranteed copies.
  double residual_total = 0.0;
  for (size_t i = 0; i < ns; ++i) {
    const double expected = soa->weight[i] * static_cast<double>(ns);
    const int copies = static_cast<int>(std::floor(expected));
    for (int c = 0; c < copies; ++c) {
      sel.push_back(static_cast<uint32_t>(i));
    }
    residuals[i] = expected - copies;
    residual_total += residuals[i];
  }
  // Stochastic remainder: multinomial over the residual weights.
  while (sel.size() < ns) {
    if (residual_total <= 0.0) {
      // All residual mass rounded away: pad with the heaviest particle
      // (first among ties, matching std::max_element).
      size_t heaviest = 0;
      for (size_t i = 1; i < ns; ++i) {
        if (soa->weight[i] > soa->weight[heaviest]) {
          heaviest = i;
        }
      }
      sel.push_back(static_cast<uint32_t>(heaviest));
      continue;
    }
    sel.push_back(static_cast<uint32_t>(rng.Categorical(residuals)));
  }
  GatherUniform(soa, arena);
}

}  // namespace

std::string ToString(ResamplingScheme scheme) {
  switch (scheme) {
    case ResamplingScheme::kSystematic:
      return "systematic";
    case ResamplingScheme::kStratified:
      return "stratified";
    case ResamplingScheme::kMultinomial:
      return "multinomial";
    case ResamplingScheme::kResidual:
      return "residual";
  }
  return "?";
}

void SelectIndicesAtQuantiles(const std::vector<double>& cdf,
                              const std::vector<double>& quantiles,
                              uint32_t* sel) {
  const size_t ns = cdf.size();
  IPQS_CHECK(ns > 0);
  size_t i = 0;
  for (size_t j = 0; j < quantiles.size(); ++j) {
    // Single monotone cursor: quantiles are sorted, so `i` only advances.
    // The `i + 1 < ns` clamp keeps an adversarial CDF (one whose total
    // mass falls short of the largest quantile) on the last particle
    // instead of walking past the end of the arrays; the historical
    // implementation only DCHECKed this, so a Release build would read
    // out of bounds.
    const double u = quantiles[j];
    while (i + 1 < ns && u > cdf[i]) {
      ++i;
    }
    sel[j] = static_cast<uint32_t>(i);
  }
}

void SystematicResample(ParticleSoA* soa, FilterArena* arena, Rng& rng) {
  IPQS_CHECK(!soa->empty());
  const size_t ns = soa->size();
  const double u1 = rng.Uniform(0.0, 1.0 / static_cast<double>(ns));
  const double nsd = static_cast<double>(ns);
  GatherAtQuantiles(
      [u1, nsd](size_t j) { return u1 + static_cast<double>(j) / nsd; }, soa,
      arena);
}

void Resample(ResamplingScheme scheme, ParticleSoA* soa, FilterArena* arena,
              Rng& rng) {
  IPQS_CHECK(!soa->empty());
  switch (scheme) {
    case ResamplingScheme::kSystematic:
      SystematicResample(soa, arena, rng);
      return;
    case ResamplingScheme::kStratified:
      StratifiedResample(soa, arena, rng);
      return;
    case ResamplingScheme::kMultinomial:
      MultinomialResample(soa, arena, rng);
      return;
    case ResamplingScheme::kResidual:
      ResidualResample(soa, arena, rng);
      return;
  }
  IPQS_CHECK(false) << "unknown resampling scheme";
}

namespace {

// Per-thread bridge state for the AoS wrappers, so external callers get
// the allocation-free kernels without owning an arena.
struct AosBridge {
  ParticleSoA soa;
  FilterArena arena;
};

AosBridge& Bridge() {
  thread_local AosBridge bridge;
  return bridge;
}

}  // namespace

void Resample(ResamplingScheme scheme, std::vector<Particle>* particles,
              Rng& rng) {
  IPQS_CHECK(!particles->empty());
  // Historical contract: arbitrary positive weights in, so normalize here
  // (exactly once) before entering the pre-normalized SoA kernels.
  NormalizeWeights(particles);
  AosBridge& b = Bridge();
  b.soa.AssignFrom(*particles);
  Resample(scheme, &b.soa, &b.arena, rng);
  b.soa.CopyTo(particles);
}

void SystematicResample(std::vector<Particle>* particles, Rng& rng) {
  Resample(ResamplingScheme::kSystematic, particles, rng);
}

}  // namespace ipqs
