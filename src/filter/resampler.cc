#include "filter/resampler.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace ipqs {
namespace {

// Normalizes weights and returns the inclusive CDF (back pinned to 1).
std::vector<double> WeightCdf(std::vector<Particle>* particles) {
  NormalizeWeights(particles);
  std::vector<double> cdf(particles->size());
  double acc = 0.0;
  for (size_t i = 0; i < particles->size(); ++i) {
    acc += (*particles)[i].weight;
    cdf[i] = acc;
  }
  cdf.back() = 1.0;  // Guard against rounding.
  return cdf;
}

// Selects particles at the given sorted quantiles and replaces the set.
void SelectAtQuantiles(std::vector<Particle>* particles,
                       const std::vector<double>& cdf,
                       const std::vector<double>& quantiles) {
  const size_t ns = particles->size();
  std::vector<Particle> out;
  out.reserve(ns);
  size_t i = 0;
  for (double u : quantiles) {
    while (u > cdf[i]) {
      ++i;
      IPQS_DCHECK(i < ns);
    }
    Particle p = (*particles)[i];
    p.weight = 1.0 / static_cast<double>(ns);
    out.push_back(p);
  }
  particles->swap(out);
}

}  // namespace

std::string ToString(ResamplingScheme scheme) {
  switch (scheme) {
    case ResamplingScheme::kSystematic:
      return "systematic";
    case ResamplingScheme::kStratified:
      return "stratified";
    case ResamplingScheme::kMultinomial:
      return "multinomial";
    case ResamplingScheme::kResidual:
      return "residual";
  }
  return "?";
}

void SystematicResample(std::vector<Particle>* particles, Rng& rng) {
  IPQS_CHECK(!particles->empty());
  const size_t ns = particles->size();
  const std::vector<double> cdf = WeightCdf(particles);

  const double u1 = rng.Uniform(0.0, 1.0 / static_cast<double>(ns));
  std::vector<double> quantiles(ns);
  for (size_t j = 0; j < ns; ++j) {
    quantiles[j] = u1 + static_cast<double>(j) / static_cast<double>(ns);
  }
  SelectAtQuantiles(particles, cdf, quantiles);
}

namespace {

void StratifiedResample(std::vector<Particle>* particles, Rng& rng) {
  const size_t ns = particles->size();
  const std::vector<double> cdf = WeightCdf(particles);
  std::vector<double> quantiles(ns);
  for (size_t j = 0; j < ns; ++j) {
    quantiles[j] =
        (static_cast<double>(j) + rng.Uniform01()) / static_cast<double>(ns);
  }
  SelectAtQuantiles(particles, cdf, quantiles);
}

void MultinomialResample(std::vector<Particle>* particles, Rng& rng) {
  const size_t ns = particles->size();
  const std::vector<double> cdf = WeightCdf(particles);
  std::vector<double> quantiles(ns);
  for (size_t j = 0; j < ns; ++j) {
    quantiles[j] = rng.Uniform01();
  }
  std::sort(quantiles.begin(), quantiles.end());
  SelectAtQuantiles(particles, cdf, quantiles);
}

void ResidualResample(std::vector<Particle>* particles, Rng& rng) {
  const size_t ns = particles->size();
  NormalizeWeights(particles);

  std::vector<Particle> out;
  out.reserve(ns);
  // Deterministic part: floor(N * w_i) guaranteed copies.
  std::vector<double> residuals(ns);
  double residual_total = 0.0;
  for (size_t i = 0; i < ns; ++i) {
    const double expected = (*particles)[i].weight * static_cast<double>(ns);
    const int copies = static_cast<int>(std::floor(expected));
    for (int c = 0; c < copies; ++c) {
      out.push_back((*particles)[i]);
    }
    residuals[i] = expected - copies;
    residual_total += residuals[i];
  }
  // Stochastic remainder: multinomial over the residual weights.
  while (out.size() < ns) {
    if (residual_total <= 0.0) {
      // All residual mass rounded away: pad with the heaviest particle.
      const auto heaviest = std::max_element(
          particles->begin(), particles->end(),
          [](const Particle& a, const Particle& b) {
            return a.weight < b.weight;
          });
      out.push_back(*heaviest);
      continue;
    }
    out.push_back((*particles)[rng.Categorical(residuals)]);
  }
  const double w = 1.0 / static_cast<double>(ns);
  for (Particle& p : out) {
    p.weight = w;
  }
  particles->swap(out);
}

}  // namespace

void Resample(ResamplingScheme scheme, std::vector<Particle>* particles,
              Rng& rng) {
  IPQS_CHECK(!particles->empty());
  switch (scheme) {
    case ResamplingScheme::kSystematic:
      SystematicResample(particles, rng);
      return;
    case ResamplingScheme::kStratified:
      StratifiedResample(particles, rng);
      return;
    case ResamplingScheme::kMultinomial:
      MultinomialResample(particles, rng);
      return;
    case ResamplingScheme::kResidual:
      ResidualResample(particles, rng);
      return;
  }
  IPQS_CHECK(false) << "unknown resampling scheme";
}

}  // namespace ipqs
