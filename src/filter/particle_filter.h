#ifndef IPQS_FILTER_PARTICLE_FILTER_H_
#define IPQS_FILTER_PARTICLE_FILTER_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "filter/anchor_distribution.h"
#include "filter/measurement_model.h"
#include "filter/motion_model.h"
#include "filter/particle.h"
#include "filter/particle_soa.h"
#include "filter/resampler.h"
#include "graph/anchor_points.h"
#include "obs/metrics.h"
#include "rfid/data_collector.h"
#include "rfid/deployment.h"

namespace ipqs {

// Optional observability hooks for a ParticleFilter; any member may be
// null. Whole-call timings (run/resume) cost two clock reads per filter
// run. The per-stage histograms sample every 4th simulated second of the
// Advance loop (deterministically, on the absolute timestamp), so their
// distributions describe per-second stage cost while the clock overhead
// in the hot loop stays ~1%.
struct FilterMetrics {
  obs::Histogram* run_ns = nullptr;       // Full Algorithm 2 runs.
  obs::Histogram* resume_ns = nullptr;    // Cache-hit resumptions.
  obs::Histogram* predict_ns = nullptr;   // Sampled per-second motion step.
  obs::Histogram* weight_ns = nullptr;    // Sampled per-second reweight.
  obs::Histogram* resample_ns = nullptr;  // Sampled per-second resample.
  obs::Gauge* particles = nullptr;        // Particle count of the last run.
  // Mid-stream re-seeds: seconds where the whole cloud contradicted a
  // reading and the filter re-initialized at the detecting reader. A
  // climbing rate means the motion model keeps losing the objects.
  obs::Counter* reseeds = nullptr;
};

// Per-reader silence-trust source for the negative-information branch.
// Consulted once per silent simulated second with the REPLAYED second (not
// the query time): implementations report which readers' silence is
// informative at that second. Implementations must be const + thread-safe
// — Run/Resume are called concurrently from the inference pool.
class SilenceTrustProvider {
 public:
  virtual ~SilenceTrustProvider() = default;

  // Fills mask[0..num_readers) with 1 = trust reader i's silence (apply
  // its silent-zone discount) / 0 = ignore it. Returns true iff any entry
  // is 0; returning false lets the caller keep the unmasked (faster,
  // bit-identical-to-legacy) kernel.
  virtual bool FillSilenceTrust(int64_t second, size_t num_readers,
                                uint8_t* mask) const = 0;
};

// Tuning knobs for Algorithm 2 of the paper.
struct FilterConfig {
  // Ns: particle set size per object. The paper's sweet spot is ~64.
  int num_particles = 64;
  // Line 6 of Algorithm 2: stop filtering this many seconds after the last
  // reading — beyond that, an undetected object is almost surely parked in
  // a room and further diffusion only destroys information.
  int max_coast_seconds = 60;
  MotionConfig motion;
  MeasurementConfig measurement;
  // The paper's SIR filter resamples systematically at every observation.
  // Other schemes and ESS-triggered (adaptive) resampling are provided for
  // ablation: with ess_fraction < 1, resampling runs only when the
  // effective sample size drops below ess_fraction * Ns.
  ResamplingScheme resampling = ResamplingScheme::kSystematic;
  double resample_ess_fraction = 1.0;
  // Reading-gap degradation (fault tolerance): once the filter has coasted
  // more than `gap_widen_after_seconds` past the last observation — a
  // dropout window, not the sub-second cadence of a healthy stream — every
  // further predict step adds `gap_position_jitter` meters of positional
  // diffusion, so the cloud widens to match the real uncertainty instead
  // of staying confidently wrong. 0.0 disables (the default: clean-stream
  // results stay byte-identical to the pre-fault-framework filter).
  int gap_widen_after_seconds = 10;
  double gap_position_jitter = 0.0;
};

// The state a filter run ends in; cacheable and resumable.
struct FilterResult {
  std::vector<Particle> particles;
  int64_t time = 0;          // Simulation second the particles represent.
  int seconds_processed = 0; // Motion steps executed (work metric).

  friend bool operator==(const FilterResult&, const FilterResult&) = default;
};

// SIR particle filter over the indoor walking graph (Section 4.4,
// Algorithm 2): initializes particles in the activation range of the
// older of the two retained detecting devices, replays the aggregated
// reading history second by second (predict -> reweight -> resample), and
// coasts up to `max_coast_seconds` past the last reading.
class ParticleFilter {
 public:
  ParticleFilter(const WalkingGraph* graph, const Deployment* deployment,
                 const FilterConfig& config);

  const FilterConfig& config() const { return config_; }
  const MotionModel& motion_model() const { return motion_; }
  const MeasurementModel& measurement_model() const { return measurement_; }

  // Installs observability hooks. Not thread-safe: call before concurrent
  // Run/Resume calls (the hooks are read without synchronization; the
  // histograms themselves are thread-safe).
  void SetMetrics(const FilterMetrics& metrics) { metrics_ = metrics; }

  // Installs the per-reader silence-trust source for the
  // negative-information branch (nullptr = trust every reader, the legacy
  // behavior, bit-identical). Same threading contract as SetMetrics: call
  // before concurrent Run/Resume calls.
  void SetSilenceTrust(const SilenceTrustProvider* trust) { trust_ = trust; }
  const SilenceTrustProvider* silence_trust() const { return trust_; }

  // Particles uniformly distributed over the graph stretches inside
  // `reader`'s activation range, each with its own random direction and
  // Gaussian speed.
  std::vector<Particle> InitializeAtReader(ReaderId reader, Rng& rng) const;

  // Full Algorithm 2 run for one object: from its first retained reading to
  // min(last reading + max_coast_seconds, now).
  FilterResult Run(const DataCollector::ObjectHistory& history, int64_t now,
                   Rng& rng) const;

  // Resumes a previous run (cache hit): advances `state` through any
  // readings in (state.time, ...] and coasts to the same horizon as Run.
  FilterResult Resume(FilterResult state,
                      const DataCollector::ObjectHistory& history, int64_t now,
                      Rng& rng) const;

  // Convenience: Run + snap to anchor points.
  AnchorDistribution Infer(const AnchorPointIndex& anchors,
                           const DataCollector::ObjectHistory& history,
                           int64_t now, Rng& rng) const;

 private:
  // Advances particles from `from_time` (exclusive) to `to_time`
  // (inclusive), applying reweight/resample at seconds with readings.
  void Advance(std::vector<Particle>* particles,
               const DataCollector::ObjectHistory& history, int64_t from_time,
               int64_t to_time, int* seconds, Rng& rng) const;

  const WalkingGraph* graph_;
  const Deployment* deployment_;
  FilterConfig config_;
  MotionModel motion_;
  MeasurementModel measurement_;
  FilterMetrics metrics_;
  const SilenceTrustProvider* trust_ = nullptr;
  // Flat per-edge mirror of the graph fields the per-second SoA kernels
  // touch; built once here since the graph is immutable while the filter
  // exists (and Run/Resume are const + thread-safe, so no lazy init).
  EdgeSoA edges_soa_;
};

}  // namespace ipqs

#endif  // IPQS_FILTER_PARTICLE_FILTER_H_
