#include "graph/anchor_graph.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "common/check.h"

namespace ipqs {

AnchorGraph AnchorGraph::Build(const WalkingGraph& graph,
                               const AnchorPointIndex& index) {
  AnchorGraph ag;
  ag.adjacency_.resize(index.num_anchors());

  auto link = [&ag](AnchorId a, AnchorId b, double dist) {
    ag.adjacency_[a].push_back({b, dist});
    ag.adjacency_[b].push_back({a, dist});
  };

  // Along-edge links between consecutive anchors.
  for (const Edge& e : graph.edges()) {
    const std::vector<AnchorId>& on_edge = index.OnEdge(e.id);
    for (size_t i = 0; i + 1 < on_edge.size(); ++i) {
      const double d = index.anchor(on_edge[i + 1]).offset -
                       index.anchor(on_edge[i]).offset;
      link(on_edge[i], on_edge[i + 1], d);
    }
  }

  // Cross-node links: for each node, the nearest anchor of every incident
  // edge, joined pairwise through the node.
  for (const Node& n : graph.nodes()) {
    std::vector<std::pair<AnchorId, double>> boundary;  // (anchor, to node)
    for (EdgeId eid : n.edges) {
      const std::vector<AnchorId>& on_edge = index.OnEdge(eid);
      if (on_edge.empty()) {
        continue;
      }
      const double node_offset = graph.OffsetOfNode(eid, n.id);
      const AnchorId nearest =
          node_offset == 0.0 ? on_edge.front() : on_edge.back();
      boundary.emplace_back(
          nearest, std::fabs(index.anchor(nearest).offset - node_offset));
    }
    for (size_t i = 0; i < boundary.size(); ++i) {
      for (size_t j = i + 1; j < boundary.size(); ++j) {
        link(boundary[i].first, boundary[j].first,
             boundary[i].second + boundary[j].second);
      }
    }
  }
  return ag;
}

const std::vector<AnchorGraph::Neighbor>& AnchorGraph::NeighborsOf(
    AnchorId id) const {
  IPQS_CHECK(id >= 0 && id < num_anchors());
  return adjacency_[id];
}

std::vector<std::pair<AnchorId, double>> AnchorGraph::SeedsFrom(
    const AnchorPointIndex& index, const GraphLocation& source) const {
  const std::vector<AnchorId>& on_edge = index.OnEdge(source.edge);
  IPQS_CHECK(!on_edge.empty());
  // Anchors on an edge are offset-ordered; find the straddling pair.
  const auto it = std::lower_bound(
      on_edge.begin(), on_edge.end(), source.offset,
      [&index](AnchorId a, double off) { return index.anchor(a).offset < off; });
  std::vector<std::pair<AnchorId, double>> seeds;
  if (it != on_edge.end()) {
    seeds.emplace_back(*it,
                       std::fabs(index.anchor(*it).offset - source.offset));
  }
  if (it != on_edge.begin()) {
    const AnchorId left = *(it - 1);
    seeds.emplace_back(left,
                       std::fabs(index.anchor(left).offset - source.offset));
  }
  return seeds;
}

std::vector<std::pair<AnchorId, double>> AnchorGraph::WithinDistance(
    const AnchorPointIndex& index, const GraphLocation& source, double budget,
    const std::function<bool(AnchorId)>& passable) const {
  struct Entry {
    double dist;
    AnchorId anchor;
    bool operator>(const Entry& o) const { return dist > o.dist; }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue;
  std::vector<double> dist(adjacency_.size(),
                           std::numeric_limits<double>::infinity());

  for (const auto& [anchor, d] : SeedsFrom(index, source)) {
    if (d <= budget && d < dist[anchor]) {
      dist[anchor] = d;
      queue.push({d, anchor});
    }
  }

  std::vector<std::pair<AnchorId, double>> out;
  while (!queue.empty()) {
    const Entry top = queue.top();
    queue.pop();
    if (top.dist > dist[top.anchor]) {
      continue;
    }
    out.emplace_back(top.anchor, top.dist);
    if (passable && !passable(top.anchor)) {
      continue;  // Reached but impassable: a wall (e.g. a reader zone).
    }
    for (const Neighbor& nb : adjacency_[top.anchor]) {
      const double cand = top.dist + nb.dist;
      if (cand <= budget && cand < dist[nb.anchor]) {
        dist[nb.anchor] = cand;
        queue.push({cand, nb.anchor});
      }
    }
  }
  return out;
}

}  // namespace ipqs
