#ifndef IPQS_GRAPH_ANCHOR_GRAPH_H_
#define IPQS_GRAPH_ANCHOR_GRAPH_H_

#include <functional>
#include <utility>
#include <vector>

#include "graph/anchor_points.h"
#include "graph/walking_graph.h"

namespace ipqs {

// Adjacency structure over anchor points: consecutive anchors on the same
// edge are neighbors, and the anchors closest to a shared node (one per
// incident edge) are neighbors across that node. Network distances between
// anchor points decompose along these links, so Dijkstra over this graph
// enumerates anchor points in exact ascending network distance from a
// source location.
//
// Two consumers:
//  * kNN evaluation (Algorithm 4) expands anchors outward from the query
//    point until enough probability mass has been accumulated;
//  * the symbolic baseline computes max-speed-constrained reachability,
//    treating reader-covered anchors as impassable walls.
class AnchorGraph {
 public:
  struct Neighbor {
    AnchorId anchor = kInvalidId;
    double dist = 0.0;
  };

  static AnchorGraph Build(const WalkingGraph& graph,
                           const AnchorPointIndex& index);

  const std::vector<Neighbor>& NeighborsOf(AnchorId id) const;
  int num_anchors() const { return static_cast<int>(adjacency_.size()); }

  // Dijkstra seeds for a source location: the nearest anchor on each side
  // along the source edge, with their along-edge distances.
  std::vector<std::pair<AnchorId, double>> SeedsFrom(
      const AnchorPointIndex& index, const GraphLocation& source) const;

  // All anchors reachable from `source` within `budget` network meters,
  // traversing only anchors for which `passable` returns true (the seeds
  // themselves are exempt). Returns (anchor, distance) pairs in ascending
  // distance order.
  std::vector<std::pair<AnchorId, double>> WithinDistance(
      const AnchorPointIndex& index, const GraphLocation& source,
      double budget,
      const std::function<bool(AnchorId)>& passable = nullptr) const;

 private:
  AnchorGraph() = default;

  std::vector<std::vector<Neighbor>> adjacency_;
};

}  // namespace ipqs

#endif  // IPQS_GRAPH_ANCHOR_GRAPH_H_
