#ifndef IPQS_GRAPH_DISTANCE_ORACLE_H_
#define IPQS_GRAPH_DISTANCE_ORACLE_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "graph/anchor_points.h"
#include "graph/walking_graph.h"
#include "obs/metrics.h"

namespace ipqs {

// Optional observability hooks for a DistanceOracle; any member may be null.
struct DistanceOracleMetrics {
  obs::Counter* matrix_lookups = nullptr;    // Pinned-row hits.
  obs::Counter* matrix_fallbacks = nullptr;  // Row absent -> landmark bounds.
  obs::Counter* p2p_queries = nullptr;       // ALT point-to-point calls.
  obs::Counter* bound_queries = nullptr;     // Landmark bound evaluations.
};

struct DistanceOracleConfig {
  // Landmark count for the ALT tables. Preprocessing cost and memory are
  // linear in this; bound tightness improves with diminishing returns.
  int num_landmarks = 16;
};

// Preprocessing-based network distance oracle (ALT: A*, landmarks,
// triangle inequality).
//
// Construction runs one one-to-all Dijkstra per landmark; landmarks are
// chosen by farthest-point sampling (start at node 0, then repeatedly take
// the node farthest from every landmark chosen so far, ties to the lowest
// id). Unreached nodes count as infinitely far, so on a disconnected graph
// every component receives a landmark before any component gets a second
// one — which is what lets the bounds *prove* disconnection.
//
// For nodes x, y and any landmark L, the triangle inequality on shortest
// paths gives |d(L,x) - d(L,y)| <= d(x,y) <= d(L,x) + d(L,y); the oracle
// maximizes the left side and minimizes the right side over its landmarks.
// Location-level bounds take the min over the four (source endpoint,
// target endpoint) route combinations plus the same-edge direct stretch —
// each combination bounds its route, so the min bounds the true distance.
// Final bounds are relaxed by a 1e-9 relative guard against floating-point
// summation error, keeping lower <= exact <= upper strict.
//
// Distance() is a goal-directed point-to-point query: the exact Dijkstra of
// NetworkDistance with the priority re-keyed by dist + h(n), where h(n) is
// the landmark lower bound to the target edge (consistent, shaved by the
// same 1e-9 guard so it never overestimates). Settled distances are
// therefore exact, and the returned value is bit-identical to
// NetworkDistance — the heuristic changes only how much of the graph is
// explored.
//
// BuildPinnedMatrix precomputes exact distances from every anchor point to
// a fixed set of pinned locations (the readers: pinned and static for the
// life of a deployment). Rows are computed through the same canonicalized
// OneToAllDistances evaluation the DistanceIndex uses, so serving from the
// matrix is bit-identical to serving from the index's cached tables.
//
// Thread safety: all queries are const and safe to call concurrently once
// construction (and BuildPinnedMatrix, if used) has finished; stats
// counters are relaxed atomics.
class DistanceOracle {
 public:
  struct Bound {
    double lower = 0.0;
    double upper = 0.0;
  };
  struct Stats {
    int64_t matrix_lookups = 0;
    int64_t matrix_fallbacks = 0;
    int64_t p2p_queries = 0;
    int64_t bound_queries = 0;
  };

  explicit DistanceOracle(const WalkingGraph* graph,
                          const DistanceOracleConfig& config = {});

  // Installs observability hooks. Not thread-safe: call before the oracle
  // is shared across threads.
  void SetMetrics(const DistanceOracleMetrics& metrics) { metrics_ = metrics; }

  int num_landmarks() const { return static_cast<int>(landmarks_.size()); }
  const std::vector<NodeId>& landmarks() const { return landmarks_; }

  // Landmark bounds on the node-to-node network distance. lower is +inf
  // exactly when some landmark proves x and y disconnected.
  Bound NodeBounds(NodeId x, NodeId y) const;

  // Landmark bounds on the location-to-location network distance:
  // Bounds(a, b).lower <= NetworkDistance(g, a, b) <= Bounds(a, b).upper.
  Bound Bounds(const GraphLocation& from, const GraphLocation& to) const;

  // Exact point-to-point distance via goal-directed (ALT) search;
  // bit-identical to NetworkDistance(graph, from, to).
  double Distance(const GraphLocation& from, const GraphLocation& to) const;

  // Precomputes the dense anchor-to-pinned-location distance matrix
  // (anchors.num_anchors() x pinned.size()). Not thread-safe; call once
  // after construction, before sharing.
  void BuildPinnedMatrix(const AnchorPointIndex& anchors,
                         const std::vector<GraphLocation>& pinned);

  bool has_matrix() const { return num_pinned_ > 0; }
  size_t num_pinned() const { return num_pinned_; }

  // Exact distances from anchor `a` to every pinned location, or nullptr
  // when no matrix was built or `a` is out of range.
  const double* PinnedRow(AnchorId a) const;

  Stats stats() const;

 private:
  // max over landmarks of |d(L,x) - d(L,y)| (no floating-point guard).
  double NodeLowerRaw(NodeId x, NodeId y) const;
  // min over landmarks of d(L,x) + d(L,y) (no floating-point guard).
  double NodeUpperRaw(NodeId x, NodeId y) const;

  const WalkingGraph* graph_;
  DistanceOracleConfig config_;
  std::vector<NodeId> landmarks_;
  // Node-major landmark distance tables: tables_[node * L + l] = shortest
  // distance between `node` and landmarks_[l]. Node-major keeps the two
  // rows a bound evaluation reads contiguous.
  std::vector<double> tables_;
  // Dense matrix_[a * num_pinned_ + j] = exact distance from anchor a to
  // pinned location j.
  std::vector<double> matrix_;
  size_t num_pinned_ = 0;
  int num_matrix_anchors_ = 0;

  mutable std::atomic<int64_t> matrix_lookups_{0};
  mutable std::atomic<int64_t> matrix_fallbacks_{0};
  mutable std::atomic<int64_t> p2p_queries_{0};
  mutable std::atomic<int64_t> bound_queries_{0};
  DistanceOracleMetrics metrics_;
};

}  // namespace ipqs

#endif  // IPQS_GRAPH_DISTANCE_ORACLE_H_
