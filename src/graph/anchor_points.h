#ifndef IPQS_GRAPH_ANCHOR_POINTS_H_
#define IPQS_GRAPH_ANCHOR_POINTS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "floorplan/floor_plan.h"
#include "graph/grid_index.h"
#include "graph/walking_graph.h"

namespace ipqs {

using AnchorId = int32_t;

// A predefined discretization point on a walking-graph edge (Section 4.2 of
// the paper). Anchor points are spaced uniformly (default 1 m) on every
// edge; after particle filtering, each particle snaps to its nearest anchor
// point, so inferred object locations live on this discrete set.
struct AnchorPoint {
  AnchorId id = kInvalidId;
  EdgeId edge = kInvalidId;
  double offset = 0.0;  // Meters from Edge::a.
  Point pos;
  // Container attribution: anchor points on room stubs belong to the room
  // (they stand in for the whole 2-D room area in range queries); anchor
  // points on hallway edges belong to the hallway.
  RoomId room = kInvalidId;
  HallwayId hallway = kInvalidId;

  bool InRoom() const { return room != kInvalidId; }
};

// Immutable index over all anchor points of a graph: per-edge ordered lists
// for O(log n) nearest-on-edge snapping and a uniform grid for 2-D window
// lookups.
class AnchorPointIndex {
 public:
  // `spacing` is the requested inter-anchor distance; every edge gets at
  // least one anchor point (its midpoint) so no part of the graph is
  // unrepresentable.
  static AnchorPointIndex Build(const WalkingGraph& graph,
                                const FloorPlan& plan, double spacing = 1.0);

  const std::vector<AnchorPoint>& anchors() const { return anchors_; }
  const AnchorPoint& anchor(AnchorId id) const;
  int num_anchors() const { return static_cast<int>(anchors_.size()); }
  double spacing() const { return spacing_; }

  // Anchor ids on `edge`, ascending by offset.
  const std::vector<AnchorId>& OnEdge(EdgeId edge) const;

  // Nearest anchor point on the same edge as `loc` (by offset). This is the
  // snap operation of the anchor point indexing model.
  AnchorId NearestOnEdge(const GraphLocation& loc) const;

  // All anchor points inside the rectangle.
  std::vector<AnchorId> InRect(const Rect& r) const;

  // All anchor points inside room `room`.
  const std::vector<AnchorId>& InRoom(RoomId room) const;

  // Anchor point nearest to an arbitrary 2-D point.
  AnchorId NearestToPoint(const Point& p) const;

 private:
  AnchorPointIndex() = default;

  std::vector<AnchorPoint> anchors_;
  std::vector<std::vector<AnchorId>> by_edge_;
  std::vector<std::vector<AnchorId>> by_room_;
  double spacing_ = 1.0;
  std::unique_ptr<GridIndex> grid_;
};

}  // namespace ipqs

#endif  // IPQS_GRAPH_ANCHOR_POINTS_H_
