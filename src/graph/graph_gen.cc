#include "graph/graph_gen.h"

#include <cmath>

#include "common/check.h"
#include "geom/point.h"

namespace ipqs {

WalkingGraph GenerateGraph(const GeneratedGraphConfig& config) {
  IPQS_CHECK_GE(config.nodes_per_component, 2);
  IPQS_CHECK_GE(config.num_components, 1);
  IPQS_CHECK_GT(config.span, 0.0);

  WalkingGraph graph;
  Rng rng(config.seed);
  const int n = config.nodes_per_component;
  const int cols = static_cast<int>(std::ceil(std::sqrt(n)));
  const double cell = config.span / cols;

  for (int c = 0; c < config.num_components; ++c) {
    // Disjoint squares per component: nodes of different components can
    // never coincide, and no edge ever connects them.
    const double origin_x = c * (config.span + cell);
    const NodeId base = graph.num_nodes();
    for (int i = 0; i < n; ++i) {
      const int col = i % cols;
      const int row = i / cols;
      // Jitter keeps every node strictly inside its own grid cell, so any
      // two nodes are at distinct positions and AddEdge's positive-length
      // invariant holds for every pair we might connect.
      const Point pos(origin_x + (col + rng.Uniform(0.1, 0.9)) * cell,
                      (row + rng.Uniform(0.1, 0.9)) * cell);
      graph.AddNode(pos, NodeKind::kIntersection);
    }
    // Random spanning tree: each node attaches to a uniformly random
    // earlier node, which connects the component.
    for (int i = 1; i < n; ++i) {
      const NodeId a = base + i;
      const NodeId b = base + static_cast<NodeId>(rng.UniformIndex(i));
      graph.AddEdge(a, b, EdgeKind::kHallway);
    }
    const int extra = static_cast<int>(n * config.extra_edge_fraction);
    for (int e = 0; e < extra; ++e) {
      const NodeId a = base + static_cast<NodeId>(rng.UniformIndex(n));
      NodeId b = base + static_cast<NodeId>(rng.UniformIndex(n));
      if (a == b) {
        b = base + (b - base + 1) % n;  // No self-loops.
      }
      graph.AddEdge(a, b, EdgeKind::kHallway);
    }
  }
  return graph;
}

GraphLocation RandomLocation(const WalkingGraph& graph, Rng& rng) {
  IPQS_CHECK_GT(graph.num_edges(), 0);
  const EdgeId edge = static_cast<EdgeId>(rng.UniformIndex(graph.num_edges()));
  return GraphLocation{edge, rng.Uniform(0.0, graph.edge(edge).length)};
}

}  // namespace ipqs
