#include "graph/distance_index.h"

#include <algorithm>

#include "common/check.h"

namespace ipqs {

DistanceIndex::DistanceIndex(const WalkingGraph* graph, size_t capacity)
    : graph_(graph), capacity_(std::max<size_t>(capacity, 1)) {
  IPQS_CHECK(graph != nullptr);
}

GraphLocation DistanceIndex::Canonicalize(const GraphLocation& source) const {
  return CanonicalSourceLocation(*graph_, source);
}

std::shared_ptr<const OneToAllDistances> DistanceIndex::Lookup(
    const GraphLocation& source) {
  const GraphLocation canon = Canonicalize(source);
  const Key key = MakeKey(canon);
  Shard& shard = ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
      ++shard.stats.hits;
      if (!it->second.pinned) {
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
      }
      if (metrics_.hits != nullptr) metrics_.hits->Increment();
      return it->second.table;
    }
    ++shard.stats.misses;
  }
  if (metrics_.misses != nullptr) metrics_.misses->Increment();
  // Dijkstra outside the lock: a racing miss for the same key computes an
  // identical table and Insert keeps whichever landed first.
  auto table = std::make_shared<const OneToAllDistances>(*graph_, canon);
  return Insert(key, std::move(table), /*pinned=*/false);
}

void DistanceIndex::Pin(const GraphLocation& source) {
  const GraphLocation canon = Canonicalize(source);
  const Key key = MakeKey(canon);
  Shard& shard = ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.entries.find(key);
    if (it != shard.entries.end() && it->second.pinned) {
      return;  // Already pinned.
    }
  }
  auto table = std::make_shared<const OneToAllDistances>(*graph_, canon);
  Insert(key, std::move(table), /*pinned=*/true);
}

std::shared_ptr<const OneToAllDistances> DistanceIndex::Insert(
    const Key& key, std::shared_ptr<const OneToAllDistances> table,
    bool pinned) {
  Shard& shard = ShardFor(key);
  std::shared_ptr<const OneToAllDistances> resident;
  bool over_budget = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
      if (pinned && !it->second.pinned) {
        // Promote in place: drop from the LRU list, keep the resident table.
        shard.lru.erase(it->second.lru_pos);
        it->second.pinned = true;
        unpinned_count_.fetch_sub(1, std::memory_order_relaxed);
      } else if (!pinned) {
        // Lost the miss race: a concurrent miss for this key computed and
        // inserted the identical table first, so this Dijkstra was wasted.
        ++shard.stats.race_drops;
        if (metrics_.race_drops != nullptr) metrics_.race_drops->Increment();
      }
      return it->second.table;
    }

    Entry entry;
    entry.table = std::move(table);
    entry.pinned = pinned;
    if (!pinned) {
      shard.lru.push_front(key);
      entry.lru_pos = shard.lru.begin();
      unpinned_count_.fetch_add(1, std::memory_order_relaxed);
    }
    resident = shard.entries.emplace(key, std::move(entry)).first->second.table;
    if (!pinned) {
      EvictLocked(shard);
      over_budget =
          unpinned_count_.load(std::memory_order_relaxed) > capacity_;
    }
  }
  if (over_budget) {
    // Hot-key skew can concentrate entries in shards other than the one we
    // just drained; sweep them one lock at a time (two shard locks are
    // never held together, so there is no ordering to deadlock on).
    for (Shard& other : shards_) {
      if (&other == &shard) continue;
      if (unpinned_count_.load(std::memory_order_relaxed) <= capacity_) break;
      std::lock_guard<std::mutex> lock(other.mu);
      EvictLocked(other);
    }
  }
  return resident;
}

void DistanceIndex::EvictLocked(Shard& shard) {
  while (unpinned_count_.load(std::memory_order_relaxed) > capacity_ &&
         shard.lru.size() > 1) {
    const Key victim = shard.lru.back();
    shard.lru.pop_back();
    shard.entries.erase(victim);
    unpinned_count_.fetch_sub(1, std::memory_order_relaxed);
    ++shard.stats.evictions;
    if (metrics_.evictions != nullptr) metrics_.evictions->Increment();
  }
}

size_t DistanceIndex::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.entries.size();
  }
  return total;
}

DistanceIndex::Stats DistanceIndex::stats() const {
  Stats out;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    out.hits += shard.stats.hits;
    out.misses += shard.stats.misses;
    out.evictions += shard.stats.evictions;
    out.race_drops += shard.stats.race_drops;
    out.entries += shard.entries.size();
    out.pinned += shard.entries.size() - shard.lru.size();
  }
  return out;
}

}  // namespace ipqs
