#include "graph/distance_index.h"

#include <algorithm>

#include "common/check.h"

namespace ipqs {

DistanceIndex::DistanceIndex(const WalkingGraph* graph, size_t capacity)
    : graph_(graph),
      per_shard_capacity_(std::max<size_t>(capacity / kNumShards, 1)) {
  IPQS_CHECK(graph != nullptr);
}

GraphLocation DistanceIndex::Canonicalize(const GraphLocation& source) const {
  GraphLocation loc = source;
  const Edge& e = graph_->edge(loc.edge);
  loc.offset = std::clamp(loc.offset, 0.0, e.length);
  // A location exactly on a node is reachable through every incident edge;
  // rewrite it to the lowest incident edge id so all spellings share one
  // table.
  NodeId node = kInvalidId;
  if (loc.offset == 0.0) {
    node = e.a;
  } else if (loc.offset == e.length) {
    node = e.b;
  }
  if (node != kInvalidId) {
    EdgeId lowest = loc.edge;
    for (EdgeId eid : graph_->node(node).edges) {
      lowest = std::min(lowest, eid);
    }
    loc.edge = lowest;
    loc.offset = graph_->OffsetOfNode(lowest, node);
  }
  return loc;
}

std::shared_ptr<const OneToAllDistances> DistanceIndex::Lookup(
    const GraphLocation& source) {
  const GraphLocation canon = Canonicalize(source);
  const Key key = MakeKey(canon);
  Shard& shard = ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
      ++shard.stats.hits;
      if (!it->second.pinned) {
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
      }
      if (metrics_.hits != nullptr) metrics_.hits->Increment();
      return it->second.table;
    }
    ++shard.stats.misses;
  }
  if (metrics_.misses != nullptr) metrics_.misses->Increment();
  // Dijkstra outside the lock: a racing miss for the same key computes an
  // identical table and Insert keeps whichever landed first.
  auto table = std::make_shared<const OneToAllDistances>(*graph_, canon);
  return Insert(key, std::move(table), /*pinned=*/false);
}

void DistanceIndex::Pin(const GraphLocation& source) {
  const GraphLocation canon = Canonicalize(source);
  const Key key = MakeKey(canon);
  Shard& shard = ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.entries.find(key);
    if (it != shard.entries.end() && it->second.pinned) {
      return;  // Already pinned.
    }
  }
  auto table = std::make_shared<const OneToAllDistances>(*graph_, canon);
  Insert(key, std::move(table), /*pinned=*/true);
}

std::shared_ptr<const OneToAllDistances> DistanceIndex::Insert(
    const Key& key, std::shared_ptr<const OneToAllDistances> table,
    bool pinned) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.entries.find(key);
  if (it != shard.entries.end()) {
    if (pinned && !it->second.pinned) {
      // Promote in place: drop from the LRU list, keep the resident table.
      shard.lru.erase(it->second.lru_pos);
      it->second.pinned = true;
    }
    return it->second.table;
  }

  Entry entry;
  entry.table = std::move(table);
  entry.pinned = pinned;
  if (!pinned) {
    shard.lru.push_front(key);
    entry.lru_pos = shard.lru.begin();
    while (shard.lru.size() > per_shard_capacity_) {
      const Key victim = shard.lru.back();
      shard.lru.pop_back();
      shard.entries.erase(victim);
      ++shard.stats.evictions;
      if (metrics_.evictions != nullptr) metrics_.evictions->Increment();
    }
  }
  return shard.entries.emplace(key, std::move(entry)).first->second.table;
}

size_t DistanceIndex::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.entries.size();
  }
  return total;
}

DistanceIndex::Stats DistanceIndex::stats() const {
  Stats out;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    out.hits += shard.stats.hits;
    out.misses += shard.stats.misses;
    out.evictions += shard.stats.evictions;
    out.entries += shard.entries.size();
    out.pinned += shard.entries.size() - shard.lru.size();
  }
  return out;
}

}  // namespace ipqs
