#include "graph/anchor_points.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/check.h"

namespace ipqs {

AnchorPointIndex AnchorPointIndex::Build(const WalkingGraph& graph,
                                         const FloorPlan& plan,
                                         double spacing) {
  IPQS_CHECK_GT(spacing, 0.0);
  AnchorPointIndex index;
  index.spacing_ = spacing;
  index.by_edge_.resize(graph.num_edges());
  index.by_room_.resize(plan.rooms().size());

  for (const Edge& e : graph.edges()) {
    // n anchor points at offsets (i + 0.5) * length / n keeps spacing as
    // close to the request as possible while avoiding duplicates at shared
    // nodes.
    const int n = std::max(1, static_cast<int>(std::round(e.length / spacing)));
    for (int i = 0; i < n; ++i) {
      AnchorPoint ap;
      ap.id = static_cast<AnchorId>(index.anchors_.size());
      ap.edge = e.id;
      ap.offset = (i + 0.5) * e.length / n;
      ap.pos = e.geometry.AtOffset(ap.offset);
      if (e.kind == EdgeKind::kRoomStub) {
        ap.room = e.room;
      } else {
        ap.hallway = e.hallway;
      }
      index.by_edge_[e.id].push_back(ap.id);
      if (ap.room != kInvalidId) {
        index.by_room_[ap.room].push_back(ap.id);
      }
      index.anchors_.push_back(ap);
    }
  }

  Rect bounds = plan.BoundingBox();
  index.grid_ = std::make_unique<GridIndex>(bounds, std::max(spacing * 4, 1.0));
  for (const AnchorPoint& ap : index.anchors_) {
    index.grid_->Insert(ap.id, ap.pos);
  }
  return index;
}

const AnchorPoint& AnchorPointIndex::anchor(AnchorId id) const {
  IPQS_CHECK(id >= 0 && id < num_anchors());
  return anchors_[id];
}

const std::vector<AnchorId>& AnchorPointIndex::OnEdge(EdgeId edge) const {
  IPQS_CHECK(edge >= 0 && edge < static_cast<EdgeId>(by_edge_.size()));
  return by_edge_[edge];
}

AnchorId AnchorPointIndex::NearestOnEdge(const GraphLocation& loc) const {
  const std::vector<AnchorId>& on_edge = OnEdge(loc.edge);
  IPQS_CHECK(!on_edge.empty());
  // Anchors are evenly spaced at (i + 0.5) * step: invert analytically.
  const int n = static_cast<int>(on_edge.size());
  const AnchorPoint& first = anchors_[on_edge.front()];
  const double step = 2.0 * first.offset;  // step = length / n.
  int i = step > 0.0 ? static_cast<int>(std::floor(loc.offset / step)) : 0;
  i = std::clamp(i, 0, n - 1);
  return on_edge[i];
}

std::vector<AnchorId> AnchorPointIndex::InRect(const Rect& r) const {
  return grid_->QueryRect(r);
}

const std::vector<AnchorId>& AnchorPointIndex::InRoom(RoomId room) const {
  IPQS_CHECK(room >= 0 && room < static_cast<RoomId>(by_room_.size()));
  return by_room_[room];
}

AnchorId AnchorPointIndex::NearestToPoint(const Point& p) const {
  return grid_->Nearest(p);
}

}  // namespace ipqs
