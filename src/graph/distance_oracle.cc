#include "graph/distance_oracle.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "common/check.h"
#include "graph/shortest_path.h"

namespace ipqs {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Relative slack applied to the landmark bounds: summing edge lengths in
// different orders (landmark table vs. exact search) can differ in the last
// bits, so bounds are relaxed by this factor to keep lower <= exact <= upper
// strict without affecting pruning power.
constexpr double kBoundGuard = 1e-9;

// Plain node-sourced Dijkstra over the whole graph.
std::vector<double> NodeDijkstra(const WalkingGraph& graph, NodeId src) {
  struct QueueEntry {
    double dist;
    NodeId node;
    bool operator>(const QueueEntry& o) const { return dist > o.dist; }
  };
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>>
      queue;
  std::vector<double> dist(graph.num_nodes(), kInf);
  dist[src] = 0.0;
  queue.push({0.0, src});
  while (!queue.empty()) {
    const QueueEntry top = queue.top();
    queue.pop();
    if (top.dist > dist[top.node]) {
      continue;  // Stale entry.
    }
    for (EdgeId eid : graph.node(top.node).edges) {
      const Edge& out = graph.edge(eid);
      const NodeId next = out.a == top.node ? out.b : out.a;
      const double cand = top.dist + out.length;
      if (cand < dist[next]) {
        dist[next] = cand;
        queue.push({cand, next});
      }
    }
  }
  return dist;
}

}  // namespace

DistanceOracle::DistanceOracle(const WalkingGraph* graph,
                               const DistanceOracleConfig& config)
    : graph_(graph), config_(config) {
  IPQS_CHECK(graph != nullptr);
  IPQS_CHECK_GT(graph->num_nodes(), 0);
  IPQS_CHECK_GE(config.num_landmarks, 1);
  const int n = graph->num_nodes();
  const int want = std::min(config_.num_landmarks, n);
  tables_.reserve(static_cast<size_t>(n) * want);

  // Farthest-point sampling. `mindist[v]` is v's distance to the nearest
  // landmark chosen so far; unreached nodes stay at +inf and therefore win
  // the argmax, so every component gets a landmark before any component
  // gets its second.
  std::vector<double> mindist(n, kInf);
  std::vector<std::vector<double>> per_landmark;
  NodeId next = 0;
  for (int l = 0; l < want; ++l) {
    landmarks_.push_back(next);
    per_landmark.push_back(NodeDijkstra(*graph, next));
    const std::vector<double>& d = per_landmark.back();
    double best = -1.0;
    NodeId pick = kInvalidId;
    for (NodeId v = 0; v < n; ++v) {
      mindist[v] = std::min(mindist[v], d[v]);
      if (mindist[v] > best) {
        best = mindist[v];
        pick = v;
      }
    }
    if (pick == kInvalidId || best == 0.0) {
      break;  // Every node already is a landmark.
    }
    next = pick;
  }

  // Scatter into the node-major layout.
  const size_t num_l = landmarks_.size();
  tables_.assign(static_cast<size_t>(n) * num_l, kInf);
  for (size_t l = 0; l < num_l; ++l) {
    for (NodeId v = 0; v < n; ++v) {
      tables_[static_cast<size_t>(v) * num_l + l] = per_landmark[l][v];
    }
  }
}

double DistanceOracle::NodeLowerRaw(NodeId x, NodeId y) const {
  const size_t num_l = landmarks_.size();
  const double* dx = &tables_[static_cast<size_t>(x) * num_l];
  const double* dy = &tables_[static_cast<size_t>(y) * num_l];
  double best = 0.0;
  for (size_t l = 0; l < num_l; ++l) {
    // Both +inf: the landmark is in a third component and says nothing
    // about d(x, y) (and inf - inf would be NaN). Exactly one +inf: the
    // landmark proves x and y disconnected, |inf - finite| = +inf.
    if (std::isinf(dx[l]) && std::isinf(dy[l])) {
      continue;
    }
    const double lb = std::fabs(dx[l] - dy[l]);
    if (lb > best) {
      best = lb;
    }
  }
  return best;
}

double DistanceOracle::NodeUpperRaw(NodeId x, NodeId y) const {
  const size_t num_l = landmarks_.size();
  const double* dx = &tables_[static_cast<size_t>(x) * num_l];
  const double* dy = &tables_[static_cast<size_t>(y) * num_l];
  double best = kInf;
  for (size_t l = 0; l < num_l; ++l) {
    const double ub = dx[l] + dy[l];  // inf stays inf.
    if (ub < best) {
      best = ub;
    }
  }
  return best;
}

DistanceOracle::Bound DistanceOracle::NodeBounds(NodeId x, NodeId y) const {
  Bound b;
  b.lower = std::max(0.0, NodeLowerRaw(x, y) * (1.0 - kBoundGuard));
  b.upper = NodeUpperRaw(x, y) * (1.0 + kBoundGuard);
  return b;
}

DistanceOracle::Bound DistanceOracle::Bounds(const GraphLocation& from,
                                             const GraphLocation& to) const {
  bound_queries_.fetch_add(1, std::memory_order_relaxed);
  if (metrics_.bound_queries != nullptr) metrics_.bound_queries->Increment();

  const Edge& fe = graph_->edge(from.edge);
  const Edge& te = graph_->edge(to.edge);
  const NodeId fn[2] = {fe.a, fe.b};
  const double fo[2] = {from.offset, fe.length - from.offset};
  const NodeId tn[2] = {te.a, te.b};
  const double to_off[2] = {to.offset, te.length - to.offset};

  // Every walk leaves the source edge through one endpoint and enters the
  // target edge through one endpoint (or stays on the shared edge); each
  // of the four combinations bounds its own route class, so the min over
  // them (plus the direct stretch) bounds the true distance on both sides.
  double lo = kInf;
  double hi = kInf;
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      lo = std::min(lo, fo[i] + NodeLowerRaw(fn[i], tn[j]) + to_off[j]);
      hi = std::min(hi, fo[i] + NodeUpperRaw(fn[i], tn[j]) + to_off[j]);
    }
  }
  if (from.edge == to.edge) {
    const double direct = std::fabs(from.offset - to.offset);
    lo = std::min(lo, direct);
    hi = std::min(hi, direct);
  }
  Bound b;
  b.lower = std::max(0.0, lo * (1.0 - kBoundGuard));
  b.upper = hi * (1.0 + kBoundGuard);
  return b;
}

double DistanceOracle::Distance(const GraphLocation& from,
                                const GraphLocation& to) const {
  p2p_queries_.fetch_add(1, std::memory_order_relaxed);
  if (metrics_.p2p_queries != nullptr) metrics_.p2p_queries->Increment();

  const Edge& te = graph_->edge(to.edge);
  // Mirror of NetworkDistance with the frontier ordered by dist + h. The
  // heuristic is admissible and consistent, so settled distances are the
  // exact Dijkstra values and every candidate expression below evaluates
  // on identical doubles — the landmark bounds change only how much of the
  // graph gets explored, never the returned bits.
  double best = kInf;
  if (from.edge == to.edge) {
    best = std::fabs(from.offset - to.offset);
  }

  const int n = graph_->num_nodes();
  std::vector<double> dist(n, kInf);
  std::vector<double> h_cache(n, -1.0);
  std::vector<char> settled(n, 0);
  const auto heuristic = [&](NodeId v) {
    double& h = h_cache[v];
    if (h < 0.0) {
      const double raw =
          std::min(NodeLowerRaw(v, te.a) + to.offset,
                   NodeLowerRaw(v, te.b) + (te.length - to.offset));
      // The same shave as the exported bounds: a heuristic a hair too low
      // is still admissible; a hair too high would break exactness.
      h = std::max(0.0, raw * (1.0 - kBoundGuard));
    }
    return h;
  };

  struct AStarEntry {
    double f;  // dist + heuristic-to-target: the pop order.
    double dist;
    NodeId node;
    bool operator>(const AStarEntry& o) const { return f > o.f; }
  };
  std::priority_queue<AStarEntry, std::vector<AStarEntry>, std::greater<>>
      queue;

  const Edge& fe = graph_->edge(from.edge);
  dist[fe.a] = from.offset;
  dist[fe.b] = fe.length - from.offset;
  queue.push({dist[fe.a] + heuristic(fe.a), dist[fe.a], fe.a});
  queue.push({dist[fe.b] + heuristic(fe.b), dist[fe.b], fe.b});

  while (!queue.empty()) {
    const AStarEntry top = queue.top();
    queue.pop();
    if (top.dist > dist[top.node]) {
      continue;  // Stale entry.
    }
    if (top.f >= best) {
      // h lower-bounds the remaining distance, so every remaining route
      // into the target edge is at least `best` long already.
      break;
    }
    settled[top.node] = 1;
    if (top.node == te.a) {
      best = std::min(best, dist[te.a] + to.offset);
    }
    if (top.node == te.b) {
      best = std::min(best, dist[te.b] + (te.length - to.offset));
    }
    if (settled[te.a] && settled[te.b]) {
      break;  // Both routes into the target edge are final.
    }
    for (EdgeId eid : graph_->node(top.node).edges) {
      const Edge& out = graph_->edge(eid);
      const NodeId next = out.a == top.node ? out.b : out.a;
      const double cand = top.dist + out.length;
      if (cand < dist[next]) {
        dist[next] = cand;
        queue.push({cand + heuristic(next), cand, next});
      }
    }
  }
  return best;
}

void DistanceOracle::BuildPinnedMatrix(
    const AnchorPointIndex& anchors, const std::vector<GraphLocation>& pinned) {
  num_pinned_ = pinned.size();
  num_matrix_anchors_ = anchors.num_anchors();
  matrix_.assign(static_cast<size_t>(num_matrix_anchors_) * num_pinned_, kInf);
  for (AnchorId a = 0; a < num_matrix_anchors_; ++a) {
    const AnchorPoint& ap = anchors.anchor(a);
    // Canonicalize exactly like the DistanceIndex keys its tables, and
    // evaluate through the same OneToAllDistances path: matrix values are
    // bit-identical to what a cached table lookup would return.
    const GraphLocation source = CanonicalSourceLocation(
        *graph_, GraphLocation{ap.edge, ap.offset});
    const OneToAllDistances table(*graph_, source);
    double* row = &matrix_[static_cast<size_t>(a) * num_pinned_];
    for (size_t j = 0; j < num_pinned_; ++j) {
      row[j] = table.ToLocation(pinned[j]);
    }
  }
}

const double* DistanceOracle::PinnedRow(AnchorId a) const {
  if (matrix_.empty() || a < 0 || a >= num_matrix_anchors_) {
    matrix_fallbacks_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_.matrix_fallbacks != nullptr) {
      metrics_.matrix_fallbacks->Increment();
    }
    return nullptr;
  }
  matrix_lookups_.fetch_add(1, std::memory_order_relaxed);
  if (metrics_.matrix_lookups != nullptr) metrics_.matrix_lookups->Increment();
  return &matrix_[static_cast<size_t>(a) * num_pinned_];
}

DistanceOracle::Stats DistanceOracle::stats() const {
  Stats out;
  out.matrix_lookups = matrix_lookups_.load(std::memory_order_relaxed);
  out.matrix_fallbacks = matrix_fallbacks_.load(std::memory_order_relaxed);
  out.p2p_queries = p2p_queries_.load(std::memory_order_relaxed);
  out.bound_queries = bound_queries_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace ipqs
