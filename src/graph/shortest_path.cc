#include "graph/shortest_path.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "common/check.h"

namespace ipqs {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct QueueEntry {
  double dist;
  NodeId node;
  bool operator>(const QueueEntry& o) const { return dist > o.dist; }
};

using MinQueue =
    std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>>;

// Dijkstra seeded from the two endpoints of the source edge with their
// offset distances; optionally records predecessor nodes and edges.
std::vector<double> DijkstraFromLocation(const WalkingGraph& graph,
                                         const GraphLocation& src,
                                         std::vector<NodeId>* pred_node,
                                         std::vector<EdgeId>* pred_edge) {
  std::vector<double> dist(graph.num_nodes(), kInf);
  if (pred_node) pred_node->assign(graph.num_nodes(), kInvalidId);
  if (pred_edge) pred_edge->assign(graph.num_nodes(), kInvalidId);

  const Edge& e = graph.edge(src.edge);
  MinQueue queue;
  dist[e.a] = src.offset;
  dist[e.b] = e.length - src.offset;
  queue.push({dist[e.a], e.a});
  queue.push({dist[e.b], e.b});

  while (!queue.empty()) {
    const QueueEntry top = queue.top();
    queue.pop();
    if (top.dist > dist[top.node]) {
      continue;  // Stale entry.
    }
    for (EdgeId eid : graph.node(top.node).edges) {
      const Edge& out = graph.edge(eid);
      const NodeId next = out.a == top.node ? out.b : out.a;
      const double cand = top.dist + out.length;
      if (cand < dist[next]) {
        dist[next] = cand;
        if (pred_node) (*pred_node)[next] = top.node;
        if (pred_edge) (*pred_edge)[next] = eid;
        queue.push({cand, next});
      }
    }
  }
  return dist;
}

// Distance from `src` through the node distance field to `to`, including
// the same-edge shortcut.
double LocationDistance(const WalkingGraph& graph,
                        const std::vector<double>& node_dist,
                        const GraphLocation& src, const GraphLocation& to) {
  const Edge& te = graph.edge(to.edge);
  double best = std::min(node_dist[te.a] + to.offset,
                         node_dist[te.b] + (te.length - to.offset));
  if (src.edge == to.edge) {
    best = std::min(best, std::fabs(src.offset - to.offset));
  }
  return best;
}

}  // namespace

Path::Path(std::vector<PathLeg> legs) : legs_(std::move(legs)) {
  cumulative_.reserve(legs_.size());
  for (const PathLeg& leg : legs_) {
    cumulative_.push_back(length_);
    length_ += leg.Length();
  }
}

GraphLocation Path::Locate(double s) const {
  if (legs_.empty()) {
    IPQS_CHECK(anchor_.has_value());
    return *anchor_;
  }
  s = std::clamp(s, 0.0, length_);
  // Binary search for the leg containing arc length s.
  size_t idx =
      std::upper_bound(cumulative_.begin(), cumulative_.end(), s) -
      cumulative_.begin();
  if (idx > 0) --idx;
  const PathLeg& leg = legs_[idx];
  const double into = s - cumulative_[idx];
  const double offset = leg.to_offset >= leg.from_offset
                            ? leg.from_offset + into
                            : leg.from_offset - into;
  return GraphLocation{leg.edge, offset};
}

GraphLocation Path::Start() const {
  if (legs_.empty()) {
    IPQS_CHECK(anchor_.has_value());
    return *anchor_;
  }
  return GraphLocation{legs_.front().edge, legs_.front().from_offset};
}

GraphLocation Path::End() const {
  if (legs_.empty()) {
    IPQS_CHECK(anchor_.has_value());
    return *anchor_;
  }
  return GraphLocation{legs_.back().edge, legs_.back().to_offset};
}

OneToAllDistances::OneToAllDistances(const WalkingGraph& graph,
                                     const GraphLocation& source)
    : graph_(graph),
      source_(source),
      node_dist_(DijkstraFromLocation(graph, source, nullptr, nullptr)) {}

double OneToAllDistances::ToLocation(const GraphLocation& loc) const {
  return LocationDistance(graph_, node_dist_, source_, loc);
}

double NetworkDistance(const WalkingGraph& graph, const GraphLocation& from,
                       const GraphLocation& to) {
  const Edge& te = graph.edge(to.edge);
  // Best distance provable so far: the same-edge shortcut plus any settled
  // target-endpoint route. Terms are the exact expressions LocationDistance
  // evaluates, so the early exit cannot change the result bit-wise.
  double best = kInf;
  if (from.edge == to.edge) {
    best = std::fabs(from.offset - to.offset);
  }

  std::vector<double> dist(graph.num_nodes(), kInf);
  std::vector<char> settled(graph.num_nodes(), 0);
  const Edge& fe = graph.edge(from.edge);
  MinQueue queue;
  dist[fe.a] = from.offset;
  dist[fe.b] = fe.length - from.offset;
  queue.push({dist[fe.a], fe.a});
  queue.push({dist[fe.b], fe.b});

  while (!queue.empty()) {
    const QueueEntry top = queue.top();
    queue.pop();
    if (top.dist > dist[top.node]) {
      continue;  // Stale entry.
    }
    if (top.dist >= best) {
      break;  // Every remaining route is at least `best` long already.
    }
    settled[top.node] = 1;
    if (top.node == te.a) {
      best = std::min(best, dist[te.a] + to.offset);
    }
    if (top.node == te.b) {
      best = std::min(best, dist[te.b] + (te.length - to.offset));
    }
    if (settled[te.a] && settled[te.b]) {
      break;  // Both routes into the target edge are final.
    }
    for (EdgeId eid : graph.node(top.node).edges) {
      const Edge& out = graph.edge(eid);
      const NodeId next = out.a == top.node ? out.b : out.a;
      const double cand = top.dist + out.length;
      if (cand < dist[next]) {
        dist[next] = cand;
        queue.push({cand, next});
      }
    }
  }
  return best;
}

GraphLocation CanonicalSourceLocation(const WalkingGraph& graph,
                                      const GraphLocation& source) {
  GraphLocation loc = source;
  const Edge& e = graph.edge(loc.edge);
  loc.offset = std::clamp(loc.offset, 0.0, e.length);
  // A location exactly on a node is reachable through every incident edge;
  // rewrite it to the lowest incident edge id so all spellings agree.
  NodeId node = kInvalidId;
  if (loc.offset == 0.0) {
    node = e.a;
  } else if (loc.offset == e.length) {
    node = e.b;
  }
  if (node != kInvalidId) {
    EdgeId lowest = loc.edge;
    for (EdgeId eid : graph.node(node).edges) {
      lowest = std::min(lowest, eid);
    }
    loc.edge = lowest;
    loc.offset = graph.OffsetOfNode(lowest, node);
  }
  return loc;
}

StatusOr<Path> FindShortestPath(const WalkingGraph& graph,
                                const GraphLocation& from,
                                const GraphLocation& to) {
  std::vector<NodeId> pred_node;
  std::vector<EdgeId> pred_edge;
  const std::vector<double> dist =
      DijkstraFromLocation(graph, from, &pred_node, &pred_edge);

  const Edge& te = graph.edge(to.edge);
  // Candidate terminals: arrive at `to` via node a, via node b, or directly
  // along the shared edge.
  const double via_a = dist[te.a] + to.offset;
  const double via_b = dist[te.b] + (te.length - to.offset);
  double direct = kInf;
  if (from.edge == to.edge) {
    direct = std::fabs(from.offset - to.offset);
  }

  if (direct <= via_a && direct <= via_b) {
    if (std::fabs(from.offset - to.offset) < 1e-12) {
      return Path(from);  // Degenerate: already there.
    }
    return Path({PathLeg{from.edge, from.offset, to.offset}});
  }

  const bool use_a = via_a <= via_b;
  NodeId terminal = use_a ? te.a : te.b;
  if (dist[terminal] == kInf) {
    return Status::NotFound("no path between locations");
  }

  // Walk predecessors back to one of the source edge endpoints.
  std::vector<std::pair<NodeId, EdgeId>> rev;  // (node, edge used to reach it)
  NodeId cur = terminal;
  while (pred_node[cur] != kInvalidId) {
    rev.push_back({cur, pred_edge[cur]});
    cur = pred_node[cur];
  }
  // `cur` is now an endpoint of from.edge reached directly from the source.
  const Edge& fe = graph.edge(from.edge);
  IPQS_CHECK(cur == fe.a || cur == fe.b);

  std::vector<PathLeg> legs;
  // First leg: from the source offset to the chosen endpoint of from.edge.
  const double first_to = graph.OffsetOfNode(from.edge, cur);
  if (std::fabs(first_to - from.offset) > 1e-12) {
    legs.push_back(PathLeg{from.edge, from.offset, first_to});
  }
  // Middle legs: full edges along the node path (rev is reversed).
  NodeId at = cur;
  for (auto it = rev.rbegin(); it != rev.rend(); ++it) {
    const EdgeId eid = it->second;
    const NodeId next = it->first;
    legs.push_back(PathLeg{eid, graph.OffsetOfNode(eid, at),
                           graph.OffsetOfNode(eid, next)});
    at = next;
  }
  // Last leg: from the terminal node into to.edge.
  const double last_from = graph.OffsetOfNode(to.edge, terminal);
  if (std::fabs(last_from - to.offset) > 1e-12) {
    legs.push_back(PathLeg{to.edge, last_from, to.offset});
  }
  if (legs.empty()) {
    return Path(from);
  }
  return Path(std::move(legs));
}

}  // namespace ipqs
