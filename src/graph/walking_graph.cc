#include "graph/walking_graph.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/check.h"

namespace ipqs {

NodeId WalkingGraph::AddNode(Point pos, NodeKind kind, RoomId room,
                             HallwayId hallway) {
  Node n;
  n.id = static_cast<NodeId>(nodes_.size());
  n.pos = pos;
  n.kind = kind;
  n.room = room;
  n.hallway = hallway;
  nodes_.push_back(std::move(n));
  return nodes_.back().id;
}

EdgeId WalkingGraph::AddEdge(NodeId a, NodeId b, EdgeKind kind,
                             HallwayId hallway, RoomId room) {
  IPQS_CHECK(a >= 0 && a < num_nodes());
  IPQS_CHECK(b >= 0 && b < num_nodes());
  IPQS_CHECK_NE(a, b);
  Edge e;
  e.id = static_cast<EdgeId>(edges_.size());
  e.a = a;
  e.b = b;
  e.kind = kind;
  e.hallway = hallway;
  e.room = room;
  e.geometry = Segment(nodes_[a].pos, nodes_[b].pos);
  e.length = e.geometry.Length();
  IPQS_CHECK_GT(e.length, 0.0);
  edges_.push_back(e);
  nodes_[a].edges.push_back(e.id);
  nodes_[b].edges.push_back(e.id);
  for (const NodeId n : {a, b}) {
    if (kind == EdgeKind::kRoomStub) {
      ++nodes_[n].num_stub_edges;
    } else {
      ++nodes_[n].num_hallway_edges;
    }
  }
  return e.id;
}

const Node& WalkingGraph::node(NodeId id) const {
  IPQS_CHECK(id >= 0 && id < num_nodes());
  return nodes_[id];
}

Node& WalkingGraph::mutable_node(NodeId id) {
  IPQS_CHECK(id >= 0 && id < num_nodes());
  return nodes_[id];
}

const Edge& WalkingGraph::edge(EdgeId id) const {
  IPQS_CHECK(id >= 0 && id < num_edges());
  return edges_[id];
}

Point WalkingGraph::PositionOf(const GraphLocation& loc) const {
  const Edge& e = edge(loc.edge);
  IPQS_DCHECK(loc.offset >= -1e-9 && loc.offset <= e.length + 1e-9);
  return e.geometry.AtOffset(loc.offset);
}

NodeId WalkingGraph::OtherEnd(EdgeId e, NodeId from) const {
  const Edge& ed = edge(e);
  IPQS_CHECK(ed.a == from || ed.b == from);
  return ed.a == from ? ed.b : ed.a;
}

double WalkingGraph::OffsetOfNode(EdgeId e, NodeId n) const {
  const Edge& ed = edge(e);
  IPQS_CHECK(ed.a == n || ed.b == n);
  return ed.a == n ? 0.0 : ed.length;
}

GraphLocation WalkingGraph::LocationAtNode(NodeId n) const {
  const Node& nd = node(n);
  IPQS_CHECK(!nd.edges.empty()) << "isolated node " << n;
  const EdgeId e = nd.edges.front();
  return GraphLocation{e, OffsetOfNode(e, n)};
}

GraphLocation WalkingGraph::NearestLocation(const Point& p,
                                            bool prefer_hallways) const {
  IPQS_CHECK(!edges_.empty());
  GraphLocation best;
  double best_dist = std::numeric_limits<double>::infinity();
  // Two passes when hallways are preferred: only if no hallway edge exists
  // at all do room stubs participate.
  for (int pass = 0; pass < 2; ++pass) {
    const bool hallways_only = prefer_hallways && pass == 0;
    for (const Edge& e : edges_) {
      if (hallways_only && e.kind != EdgeKind::kHallway) {
        continue;
      }
      const double t = e.geometry.ClosestParameter(p);
      const double d = Distance(p, e.geometry.At(t));
      if (d < best_dist) {
        best_dist = d;
        best = GraphLocation{e.id, t * e.length};
      }
    }
    if (best.edge != kInvalidId) {
      break;
    }
  }
  return best;
}

Status WalkingGraph::Validate() const {
  for (const Edge& e : edges_) {
    if (e.a < 0 || e.a >= num_nodes() || e.b < 0 || e.b >= num_nodes()) {
      return Status::Internal("edge endpoint out of range");
    }
    if (std::fabs(e.length - Distance(nodes_[e.a].pos, nodes_[e.b].pos)) >
        1e-6) {
      return Status::Internal("edge length does not match geometry");
    }
    if (e.kind == EdgeKind::kHallway && e.hallway == kInvalidId) {
      return Status::Internal("hallway edge without hallway id");
    }
    if (e.kind == EdgeKind::kRoomStub && e.room == kInvalidId) {
      return Status::Internal("room stub without room id");
    }
  }
  for (const Node& n : nodes_) {
    for (EdgeId eid : n.edges) {
      if (eid < 0 || eid >= num_edges()) {
        return Status::Internal("node references unknown edge");
      }
      const Edge& e = edges_[eid];
      if (e.a != n.id && e.b != n.id) {
        return Status::Internal("incidence list inconsistent");
      }
    }
    if (n.edges.empty()) {
      return Status::Internal("isolated node");
    }
    int stubs = 0;
    int hallways = 0;
    for (EdgeId eid : n.edges) {
      (edges_[eid].kind == EdgeKind::kRoomStub ? stubs : hallways) += 1;
    }
    if (stubs != n.num_stub_edges || hallways != n.num_hallway_edges) {
      return Status::Internal("node edge-kind counts out of sync");
    }
  }
  if (!IsConnected()) {
    return Status::Internal("walking graph is not connected");
  }
  return Status::Ok();
}

bool WalkingGraph::IsConnected() const {
  if (nodes_.empty()) {
    return true;
  }
  std::vector<bool> seen(nodes_.size(), false);
  std::vector<NodeId> stack = {0};
  seen[0] = true;
  size_t count = 1;
  while (!stack.empty()) {
    const NodeId cur = stack.back();
    stack.pop_back();
    for (EdgeId eid : nodes_[cur].edges) {
      const NodeId next = OtherEnd(eid, cur);
      if (!seen[next]) {
        seen[next] = true;
        ++count;
        stack.push_back(next);
      }
    }
  }
  return count == nodes_.size();
}

std::string ToString(NodeKind kind) {
  switch (kind) {
    case NodeKind::kHallwayEnd:
      return "hallway_end";
    case NodeKind::kIntersection:
      return "intersection";
    case NodeKind::kDoor:
      return "door";
    case NodeKind::kRoomCenter:
      return "room_center";
  }
  return "?";
}

std::string ToString(EdgeKind kind) {
  switch (kind) {
    case EdgeKind::kHallway:
      return "hallway";
    case EdgeKind::kRoomStub:
      return "room_stub";
  }
  return "?";
}

}  // namespace ipqs
