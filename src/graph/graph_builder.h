#ifndef IPQS_GRAPH_GRAPH_BUILDER_H_
#define IPQS_GRAPH_GRAPH_BUILDER_H_

#include "common/statusor.h"
#include "floorplan/floor_plan.h"
#include "graph/walking_graph.h"

namespace ipqs {

// Derives the indoor walking graph from a floor plan:
//
//  * every hallway centerline is cut at its endpoints, at crossings with
//    other centerlines, and at door positions; consecutive cut points become
//    hallway edges;
//  * every door contributes a stub edge from its door node (on the
//    centerline) to the center of its room, abstracting the room interior.
//
// Shared cut points (e.g. a crossing of two hallways) map to a single node.
// The result passes WalkingGraph::Validate() for any valid, connected floor
// plan.
StatusOr<WalkingGraph> BuildWalkingGraph(const FloorPlan& plan);

}  // namespace ipqs

#endif  // IPQS_GRAPH_GRAPH_BUILDER_H_
