#ifndef IPQS_GRAPH_DISTANCE_INDEX_H_
#define IPQS_GRAPH_DISTANCE_INDEX_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "graph/shortest_path.h"
#include "graph/walking_graph.h"
#include "obs/metrics.h"

namespace ipqs {

// Optional observability hooks for a DistanceIndex; any member may be null.
struct DistanceIndexMetrics {
  obs::Counter* hits = nullptr;
  obs::Counter* misses = nullptr;     // Lookups that had to run Dijkstra.
  obs::Counter* evictions = nullptr;  // LRU evictions (pinned never evict).
  // Misses that lost the insert race: another thread computed the same
  // table first, so the loser's Dijkstra was wasted but the lookup was
  // effectively served from cache.
  obs::Counter* race_drops = nullptr;
};

// Shared, shard-locked LRU store of one-to-all network distance tables,
// keyed by their (canonicalized) source location. Query serving repeatedly
// needs distances from the same handful of sources — query points of a hot
// panel, anchor points that arbitrary query locations canonicalize to,
// reader positions — and each table costs a full Dijkstra to build; this
// index computes each at most once and hands out shared ownership so
// concurrent queries read one immutable table instead of rebuilding it.
//
// Canonicalization: offsets are clamped to [0, edge length], and a location
// sitting exactly on a node is rewritten to (lowest-id incident edge,
// endpoint offset) so the same physical point reached through different
// edges shares one entry.
//
// Concurrency: entries are sharded by key hash with one mutex per shard
// (the ParticleCache recipe), so lookups from the inference thread pool
// never serialize on a global lock. A miss runs Dijkstra OUTSIDE the shard
// lock; two racing misses may both compute, and the loser's table is
// dropped (correctness is unaffected — both computed identical tables).
//
// Capacity bounds the number of UNPINNED entries across ALL shards (a
// global atomic count; eviction drains the inserting shard first and then
// sweeps the others one lock at a time, so hot-key skew cannot hold a
// multiple of the budget). Each shard always keeps its most recent
// unpinned entry, so the hard bound is max(capacity, shard count); for
// capacity >= 16 shards that is exactly `capacity`. Pin() entries (e.g.
// every reader position, pinned at engine construction) never age out and
// don't count against the budget.
class DistanceIndex {
 public:
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
    // Subset of `misses` that lost the insert race to a concurrent miss for
    // the same key; the table was already resident by the time the loser's
    // Dijkstra finished.
    int64_t race_drops = 0;
    size_t entries = 0;
    size_t pinned = 0;

    // Fraction of lookups served by a resident table. A race-dropped miss
    // was served by the winner's table, so it counts toward the numerator;
    // without that term concurrent cold starts under-report the rate.
    double HitRate() const {
      const int64_t total = hits + misses;
      return total == 0 ? 0.0
                        : static_cast<double>(hits + race_drops) / total;
    }
  };

  // `capacity` bounds the unpinned entries across all shards (at least one
  // per shard is always allowed).
  explicit DistanceIndex(const WalkingGraph* graph, size_t capacity = 256);

  // Installs observability hooks. Not thread-safe: call before the index
  // is shared across threads.
  void SetMetrics(const DistanceIndexMetrics& metrics) { metrics_ = metrics; }

  // The distance table sourced at `source`, computed and cached on first
  // use. The returned table outlives any later eviction (shared ownership).
  std::shared_ptr<const OneToAllDistances> Lookup(const GraphLocation& source);

  // Computes (if absent) and pins the table for `source`: pinned entries
  // are never evicted. Counted as neither hit nor miss.
  void Pin(const GraphLocation& source);

  // The canonical key location for `source` (see class comment); exposed
  // so callers can reason about which sources share an entry.
  GraphLocation Canonicalize(const GraphLocation& source) const;

  size_t size() const;
  Stats stats() const;

 private:
  struct Key {
    EdgeId edge = kInvalidId;
    uint64_t offset_bits = 0;  // Bit pattern: exact-match keying.

    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      uint64_t h = static_cast<uint64_t>(k.edge) * 0x9e3779b97f4a7c15ULL;
      h ^= k.offset_bits + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      return static_cast<size_t>(h);
    }
  };
  struct Entry {
    std::shared_ptr<const OneToAllDistances> table;
    bool pinned = false;
    // Position in Shard::lru (unpinned entries only).
    std::list<Key>::iterator lru_pos;
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<Key, Entry, KeyHash> entries;
    std::list<Key> lru;  // Front = most recently used.
    Stats stats;
  };

  static constexpr size_t kNumShards = 16;

  static Key MakeKey(const GraphLocation& loc) {
    Key key;
    key.edge = loc.edge;
    static_assert(sizeof(loc.offset) == sizeof(key.offset_bits));
    std::memcpy(&key.offset_bits, &loc.offset, sizeof(key.offset_bits));
    return key;
  }
  Shard& ShardFor(const Key& key) {
    return shards_[KeyHash{}(key) % kNumShards];
  }

  // Inserts `table` under `key` if absent; bumps/evicts LRU state. Returns
  // the resident table (the pre-existing one if a racing insert won).
  std::shared_ptr<const OneToAllDistances> Insert(
      const Key& key, std::shared_ptr<const OneToAllDistances> table,
      bool pinned);

  // Evicts `shard`'s LRU tail while the global unpinned count exceeds
  // capacity, always leaving the shard its most recent unpinned entry.
  // Caller holds shard.mu.
  void EvictLocked(Shard& shard);

  const WalkingGraph* graph_;
  const size_t capacity_;
  // Unpinned entries across all shards; the eviction budget is global so
  // hot-key skew in one shard can't inflate the footprint 16x.
  std::atomic<size_t> unpinned_count_{0};
  Shard shards_[kNumShards];
  DistanceIndexMetrics metrics_;
};

}  // namespace ipqs

#endif  // IPQS_GRAPH_DISTANCE_INDEX_H_
