#include "graph/graph_builder.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "common/check.h"

namespace ipqs {
namespace {

constexpr double kEps = 1e-7;

// Quantized point key for merging coincident cut points into one node.
using PointKey = std::pair<int64_t, int64_t>;

PointKey KeyOf(const Point& p) {
  return {static_cast<int64_t>(std::llround(p.x * 1e6)),
          static_cast<int64_t>(std::llround(p.y * 1e6))};
}

bool IsHorizontalSeg(const Segment& s) {
  return std::fabs(s.a.y - s.b.y) <= kEps;
}

// Crossing point of two axis-aligned centerlines, if any. Collinear
// overlaps of positive length are a floor-plan error.
StatusOr<std::optional<Point>> CenterlineCrossing(const Segment& s1,
                                                  const Segment& s2) {
  const bool h1 = IsHorizontalSeg(s1);
  const bool h2 = IsHorizontalSeg(s2);
  if (h1 == h2) {
    // Parallel. They may touch end to end, which is fine; a longer overlap
    // means the plan double-covers a corridor.
    if (!SegmentsIntersect(s1, s2)) {
      return std::optional<Point>();
    }
    const double lo1 = h1 ? std::min(s1.a.x, s1.b.x) : std::min(s1.a.y, s1.b.y);
    const double hi1 = h1 ? std::max(s1.a.x, s1.b.x) : std::max(s1.a.y, s1.b.y);
    const double lo2 = h1 ? std::min(s2.a.x, s2.b.x) : std::min(s2.a.y, s2.b.y);
    const double hi2 = h1 ? std::max(s2.a.x, s2.b.x) : std::max(s2.a.y, s2.b.y);
    const double lo = std::max(lo1, lo2);
    const double hi = std::min(hi1, hi2);
    if (hi - lo > kEps) {
      return Status::InvalidArgument("hallway centerlines overlap collinearly");
    }
    return std::optional<Point>(h1 ? Point{lo, s1.a.y} : Point{s1.a.x, lo});
  }
  const Segment& hs = h1 ? s1 : s2;
  const Segment& vs = h1 ? s2 : s1;
  const Point cross{vs.a.x, hs.a.y};
  const bool on_h = cross.x >= std::min(hs.a.x, hs.b.x) - kEps &&
                    cross.x <= std::max(hs.a.x, hs.b.x) + kEps;
  const bool on_v = cross.y >= std::min(vs.a.y, vs.b.y) - kEps &&
                    cross.y <= std::max(vs.a.y, vs.b.y) + kEps;
  if (on_h && on_v) {
    return std::optional<Point>(cross);
  }
  return std::optional<Point>();
}

// A cut point on a hallway centerline.
struct Cut {
  double offset;
  NodeKind kind;
  RoomId room;  // For door cuts.
};

}  // namespace

StatusOr<WalkingGraph> BuildWalkingGraph(const FloorPlan& plan) {
  IPQS_RETURN_IF_ERROR(plan.Validate());

  WalkingGraph graph;
  std::map<PointKey, NodeId> node_of_point;

  // Creates (or reuses) the node at `pos`. Node kinds are upgraded so that
  // crossings beat plain endpoints and doors beat everything (a door node
  // must keep its room id for the stub edge).
  auto intern_node = [&](const Point& pos, NodeKind kind, RoomId room,
                         HallwayId hallway) {
    auto [it, inserted] = node_of_point.try_emplace(KeyOf(pos), kInvalidId);
    if (inserted) {
      it->second = graph.AddNode(pos, kind, room, hallway);
      return it->second;
    }
    // Merge semantics: prefer the more specific kind.
    Node& existing = graph.mutable_node(it->second);
    auto rank = [](NodeKind k) {
      switch (k) {
        case NodeKind::kDoor:
          return 3;
        case NodeKind::kIntersection:
          return 2;
        case NodeKind::kRoomCenter:
          return 1;
        case NodeKind::kHallwayEnd:
          return 0;
      }
      return 0;
    };
    if (rank(kind) > rank(existing.kind)) {
      existing.kind = kind;
      if (room != kInvalidId) existing.room = room;
    }
    return it->second;
  };

  for (const Hallway& h : plan.hallways()) {
    std::vector<Cut> cuts;
    cuts.push_back({0.0, NodeKind::kHallwayEnd, kInvalidId});
    cuts.push_back({h.Length(), NodeKind::kHallwayEnd, kInvalidId});

    for (const Hallway& other : plan.hallways()) {
      if (other.id == h.id) continue;
      std::optional<Point> cross;
      IPQS_ASSIGN_OR_RETURN(cross,
                            CenterlineCrossing(h.centerline, other.centerline));
      if (cross.has_value()) {
        cuts.push_back({Distance(h.centerline.a, *cross),
                        NodeKind::kIntersection, kInvalidId});
      }
    }
    for (const Door& d : plan.doors()) {
      if (d.hallway != h.id) continue;
      cuts.push_back(
          {Distance(h.centerline.a, d.position), NodeKind::kDoor, d.room});
    }

    std::sort(cuts.begin(), cuts.end(),
              [](const Cut& a, const Cut& b) { return a.offset < b.offset; });

    // Materialize nodes for every distinct cut and connect consecutive ones.
    NodeId prev_node = kInvalidId;
    double prev_offset = -1.0;
    for (const Cut& c : cuts) {
      const Point pos = h.centerline.AtOffset(c.offset);
      const NodeId n = intern_node(pos, c.kind, c.room, h.id);
      if (prev_node != kInvalidId && n != prev_node &&
          c.offset - prev_offset > kEps) {
        graph.AddEdge(prev_node, n, EdgeKind::kHallway, h.id);
      }
      if (n != prev_node) {
        prev_node = n;
        prev_offset = c.offset;
      }
    }
  }

  // Room stubs: door node -> room center.
  for (const Door& d : plan.doors()) {
    const auto it = node_of_point.find(KeyOf(d.position));
    IPQS_CHECK(it != node_of_point.end());
    const NodeId door_node = it->second;
    const Point center = plan.room(d.room).bounds.Center();
    const NodeId room_node =
        intern_node(center, NodeKind::kRoomCenter, d.room, kInvalidId);
    graph.AddEdge(door_node, room_node, EdgeKind::kRoomStub, kInvalidId,
                  d.room);
  }

  IPQS_RETURN_IF_ERROR(graph.Validate());
  return graph;
}

}  // namespace ipqs
