#include "graph/grid_index.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "floorplan/floor_plan.h"  // kInvalidId

namespace ipqs {

GridIndex::GridIndex(Rect bounds, double cell_size)
    : bounds_(bounds), cell_size_(cell_size) {
  IPQS_CHECK_GT(cell_size, 0.0);
  nx_ = std::max(1, static_cast<int>(std::ceil(bounds.Width() / cell_size)));
  ny_ = std::max(1, static_cast<int>(std::ceil(bounds.Height() / cell_size)));
  cells_.resize(static_cast<size_t>(nx_) * ny_);
}

int GridIndex::CellX(double x) const {
  const int c = static_cast<int>(std::floor((x - bounds_.min_x) / cell_size_));
  return std::clamp(c, 0, nx_ - 1);
}

int GridIndex::CellY(double y) const {
  const int c = static_cast<int>(std::floor((y - bounds_.min_y) / cell_size_));
  return std::clamp(c, 0, ny_ - 1);
}

void GridIndex::Insert(int32_t id, const Point& p) {
  CellAt(CellX(p.x), CellY(p.y)).push_back({id, p});
  ++size_;
}

std::vector<int32_t> GridIndex::QueryRect(const Rect& r) const {
  std::vector<int32_t> out;
  const int x0 = CellX(r.min_x);
  const int x1 = CellX(r.max_x);
  const int y0 = CellY(r.min_y);
  const int y1 = CellY(r.max_y);
  for (int cy = y0; cy <= y1; ++cy) {
    for (int cx = x0; cx <= x1; ++cx) {
      for (const Item& item : CellAt(cx, cy)) {
        if (r.Contains(item.pos)) {
          out.push_back(item.id);
        }
      }
    }
  }
  return out;
}

int32_t GridIndex::Nearest(const Point& p) const {
  if (size_ == 0) {
    return kInvalidId;
  }
  const int px = CellX(p.x);
  const int py = CellY(p.y);
  int32_t best = kInvalidId;
  double best_dist = std::numeric_limits<double>::infinity();
  // Expand in rings until a hit exists and the ring distance exceeds the
  // best hit (points in farther rings cannot beat it).
  const int max_ring = std::max(nx_, ny_);
  for (int ring = 0; ring <= max_ring; ++ring) {
    if (best != kInvalidId &&
        (ring - 1) * cell_size_ > best_dist) {
      break;
    }
    for (int cy = py - ring; cy <= py + ring; ++cy) {
      if (cy < 0 || cy >= ny_) continue;
      for (int cx = px - ring; cx <= px + ring; ++cx) {
        if (cx < 0 || cx >= nx_) continue;
        // Only the ring border (inner cells were visited already).
        if (ring > 0 && cx != px - ring && cx != px + ring &&
            cy != py - ring && cy != py + ring) {
          continue;
        }
        for (const Item& item : CellAt(cx, cy)) {
          const double d = Distance(p, item.pos);
          if (d < best_dist) {
            best_dist = d;
            best = item.id;
          }
        }
      }
    }
  }
  return best;
}

}  // namespace ipqs
