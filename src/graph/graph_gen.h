#ifndef IPQS_GRAPH_GRAPH_GEN_H_
#define IPQS_GRAPH_GRAPH_GEN_H_

#include <cstdint>

#include "common/rng.h"
#include "graph/walking_graph.h"

namespace ipqs {

// Parameters for GenerateGraph. The defaults produce one connected
// ~100-edge component; benchmarks scale `nodes_per_component` into the
// tens of thousands and tests use `num_components > 1` to build worlds
// where some location pairs are provably unreachable.
struct GeneratedGraphConfig {
  int nodes_per_component = 64;
  int num_components = 1;
  // Extra chord edges per component beyond its spanning tree, as a
  // fraction of the node count. 0.5 gives edge count ~= 1.5 * nodes.
  double extra_edge_fraction = 0.5;
  // Side length (meters) of the square each component is laid out in.
  double span = 100.0;
  uint64_t seed = 1;
};

// Deterministic synthetic walking graph: per component, nodes are jittered
// onto a grid, connected by a random spanning tree plus chord edges.
// Components are laid out in disjoint squares so every edge has positive
// length. Unlike BuildWalkingGraph this needs no floor plan, so it scales
// to arbitrary sizes for oracle benchmarks and can be deliberately
// disconnected; the result therefore must NOT be passed to Validate()
// (which requires connectivity) when num_components > 1.
WalkingGraph GenerateGraph(const GeneratedGraphConfig& config);

// Uniformly random location on a uniformly random edge of `graph`.
GraphLocation RandomLocation(const WalkingGraph& graph, Rng& rng);

}  // namespace ipqs

#endif  // IPQS_GRAPH_GRAPH_GEN_H_
