#ifndef IPQS_GRAPH_GRID_INDEX_H_
#define IPQS_GRAPH_GRID_INDEX_H_

#include <cstdint>
#include <vector>

#include "geom/point.h"
#include "geom/rect.h"

namespace ipqs {

// A uniform-grid spatial index over point items, used to answer
// "anchor points inside this query window" and nearest-point lookups
// without scanning every anchor point.
class GridIndex {
 public:
  // `bounds` should cover all inserted points (outliers are clamped into
  // border cells); `cell_size` trades memory for query selectivity.
  GridIndex(Rect bounds, double cell_size);

  void Insert(int32_t id, const Point& p);

  // Ids of all points inside `r` (inclusive borders).
  std::vector<int32_t> QueryRect(const Rect& r) const;

  // Id of the point nearest to `p`; kInvalidId when the index is empty.
  int32_t Nearest(const Point& p) const;

  size_t size() const { return size_; }

 private:
  struct Item {
    int32_t id;
    Point pos;
  };

  int CellX(double x) const;
  int CellY(double y) const;
  const std::vector<Item>& CellAt(int cx, int cy) const {
    return cells_[static_cast<size_t>(cy) * nx_ + cx];
  }
  std::vector<Item>& CellAt(int cx, int cy) {
    return cells_[static_cast<size_t>(cy) * nx_ + cx];
  }

  Rect bounds_;
  double cell_size_;
  int nx_ = 1;
  int ny_ = 1;
  size_t size_ = 0;
  std::vector<std::vector<Item>> cells_;
};

}  // namespace ipqs

#endif  // IPQS_GRAPH_GRID_INDEX_H_
