#ifndef IPQS_GRAPH_WALKING_GRAPH_H_
#define IPQS_GRAPH_WALKING_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "floorplan/floor_plan.h"
#include "geom/point.h"
#include "geom/segment.h"

namespace ipqs {

using NodeId = int32_t;
using EdgeId = int32_t;

enum class NodeKind {
  kHallwayEnd,    // Dead end of a hallway.
  kIntersection,  // Two hallway centerlines crossing.
  kDoor,          // Door position on a hallway centerline.
  kRoomCenter,    // Interior endpoint of a room stub edge.
};

// A vertex of the indoor walking graph. Hallway nodes lie on hallway
// centerlines; room-center nodes lie inside rooms.
struct Node {
  NodeId id = kInvalidId;
  Point pos;
  NodeKind kind = NodeKind::kHallwayEnd;
  RoomId room = kInvalidId;        // Set for kDoor and kRoomCenter.
  HallwayId hallway = kInvalidId;  // Set for nodes on a hallway centerline.
  std::vector<EdgeId> edges;       // Incident edges.
  // Incident-edge kind counts, maintained by AddEdge. They make the
  // candidate counting in the motion model's edge choice O(1) per node
  // crossing instead of a kind-lookup walk over `edges`.
  int num_stub_edges = 0;
  int num_hallway_edges = 0;
};

enum class EdgeKind {
  kHallway,   // A section of hallway centerline between two cut points.
  kRoomStub,  // Door node -> room center; abstracts the room interior.
};

// An undirected edge. `geometry` runs from node `a` to node `b`; offsets on
// the edge are measured from `a`.
struct Edge {
  EdgeId id = kInvalidId;
  NodeId a = kInvalidId;
  NodeId b = kInvalidId;
  double length = 0.0;
  EdgeKind kind = EdgeKind::kHallway;
  HallwayId hallway = kInvalidId;  // Set when kind == kHallway.
  RoomId room = kInvalidId;        // Set when kind == kRoomStub.
  Segment geometry;
};

// A position on the graph: `offset` meters from Edge::a along `edge`.
// Invariant: 0 <= offset <= edge.length.
struct GraphLocation {
  EdgeId edge = kInvalidId;
  double offset = 0.0;

  friend bool operator==(const GraphLocation&, const GraphLocation&) = default;
};

// The indoor walking graph G<N, E> of the paper: hallways collapsed to
// centerline polylines, rooms attached as stub edges through their doors.
// All object and particle movement is restricted to this graph, and the
// query distance metric is the shortest network distance on it.
class WalkingGraph {
 public:
  WalkingGraph() = default;

  // Construction interface (used by GraphBuilder and tests).
  NodeId AddNode(Point pos, NodeKind kind, RoomId room = kInvalidId,
                 HallwayId hallway = kInvalidId);
  EdgeId AddEdge(NodeId a, NodeId b, EdgeKind kind,
                 HallwayId hallway = kInvalidId, RoomId room = kInvalidId);

  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<Edge>& edges() const { return edges_; }
  const Node& node(NodeId id) const;
  const Edge& edge(EdgeId id) const;
  // Mutable access for builders that need to upgrade node metadata.
  Node& mutable_node(NodeId id);
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_edges() const { return static_cast<int>(edges_.size()); }

  // The 2-D point of a graph location.
  Point PositionOf(const GraphLocation& loc) const;

  // The node at the far side of `e` as seen from `from`.
  NodeId OtherEnd(EdgeId e, NodeId from) const;

  // Offset of node `n` on edge `e` (0 when n == a, length when n == b).
  double OffsetOfNode(EdgeId e, NodeId n) const;

  // Graph location sitting exactly on node `n`, using its first incident
  // edge. Precondition: `n` has at least one incident edge.
  GraphLocation LocationAtNode(NodeId n) const;

  // The location on the graph closest (in Euclidean distance) to `p`.
  // Hallway edges are preferred over room stubs when `prefer_hallways` is
  // set (used to snap query points, which the paper approximates "to the
  // nearest edge of the indoor walking graph").
  GraphLocation NearestLocation(const Point& p,
                                bool prefer_hallways = false) const;

  // Structural sanity: endpoint ids valid, lengths match geometry, node
  // incidence lists consistent, graph connected.
  Status Validate() const;

  // True when every node can reach every other node.
  bool IsConnected() const;

 private:
  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
};

std::string ToString(NodeKind kind);
std::string ToString(EdgeKind kind);

}  // namespace ipqs

#endif  // IPQS_GRAPH_WALKING_GRAPH_H_
