#ifndef IPQS_GRAPH_SHORTEST_PATH_H_
#define IPQS_GRAPH_SHORTEST_PATH_H_

#include <vector>

#include "common/statusor.h"
#include "graph/walking_graph.h"

namespace ipqs {

// One traversed stretch of an edge: from `from_offset` to `to_offset`
// (either direction; offsets are measured from Edge::a).
struct PathLeg {
  EdgeId edge = kInvalidId;
  double from_offset = 0.0;
  double to_offset = 0.0;

  double Length() const {
    return to_offset >= from_offset ? to_offset - from_offset
                                    : from_offset - to_offset;
  }
};

// A walkable shortest path between two graph locations, as a sequence of
// edge stretches. Supports arc-length addressing so a simulated object can
// advance along it second by second.
class Path {
 public:
  Path() = default;
  explicit Path(std::vector<PathLeg> legs);

  const std::vector<PathLeg>& legs() const { return legs_; }
  double Length() const { return length_; }
  bool empty() const { return legs_.empty(); }

  // Location at arc length `s` from the start, clamped to [0, Length()].
  GraphLocation Locate(double s) const;

  GraphLocation Start() const;
  GraphLocation End() const;

 private:
  std::vector<PathLeg> legs_;
  std::vector<double> cumulative_;  // cumulative_[i] = length of legs [0, i).
  double length_ = 0.0;
};

// Shortest network distances from one fixed source location to every node,
// computed once (Dijkstra) and then queried many times. This is the
// workhorse behind kNN pruning (Eq. 6 of the paper) and ground-truth kNN.
class OneToAllDistances {
 public:
  OneToAllDistances(const WalkingGraph& graph, const GraphLocation& source);

  const GraphLocation& source() const { return source_; }

  // Shortest network distance from the source to node `n`.
  double ToNode(NodeId n) const { return node_dist_[n]; }

  // Shortest network distance from the source to an arbitrary location.
  double ToLocation(const GraphLocation& loc) const;

 private:
  const WalkingGraph& graph_;
  GraphLocation source_;
  std::vector<double> node_dist_;
};

// Convenience one-shot distance between two locations.
double NetworkDistance(const WalkingGraph& graph, const GraphLocation& from,
                       const GraphLocation& to);

// Shortest path between two locations. Returns an empty path when
// from == to. Fails only if the graph is disconnected between them.
StatusOr<Path> FindShortestPath(const WalkingGraph& graph,
                                const GraphLocation& from,
                                const GraphLocation& to);

}  // namespace ipqs

#endif  // IPQS_GRAPH_SHORTEST_PATH_H_
