#ifndef IPQS_GRAPH_SHORTEST_PATH_H_
#define IPQS_GRAPH_SHORTEST_PATH_H_

#include <optional>
#include <vector>

#include "common/statusor.h"
#include "graph/walking_graph.h"

namespace ipqs {

// One traversed stretch of an edge: from `from_offset` to `to_offset`
// (either direction; offsets are measured from Edge::a).
struct PathLeg {
  EdgeId edge = kInvalidId;
  double from_offset = 0.0;
  double to_offset = 0.0;

  double Length() const {
    return to_offset >= from_offset ? to_offset - from_offset
                                    : from_offset - to_offset;
  }
};

// A walkable shortest path between two graph locations, as a sequence of
// edge stretches. Supports arc-length addressing so a simulated object can
// advance along it second by second.
class Path {
 public:
  Path() = default;
  explicit Path(std::vector<PathLeg> legs);
  // Zero-length path anchored at `location` (the from == to case of
  // FindShortestPath): no legs, but Start/End/Locate are well defined.
  explicit Path(const GraphLocation& location) : anchor_(location) {}

  const std::vector<PathLeg>& legs() const { return legs_; }
  double Length() const { return length_; }
  bool empty() const { return legs_.empty(); }

  // Location at arc length `s` from the start, clamped to [0, Length()].
  GraphLocation Locate(double s) const;

  GraphLocation Start() const;
  GraphLocation End() const;

 private:
  std::vector<PathLeg> legs_;
  std::vector<double> cumulative_;  // cumulative_[i] = length of legs [0, i).
  double length_ = 0.0;
  // Location of a zero-length path; Start/End/Locate on a leg-less path
  // without one (a default-constructed Path) is still a programming error.
  std::optional<GraphLocation> anchor_;
};

// Shortest network distances from one fixed source location to every node,
// computed once (Dijkstra) and then queried many times. This is the
// workhorse behind kNN pruning (Eq. 6 of the paper) and ground-truth kNN.
class OneToAllDistances {
 public:
  OneToAllDistances(const WalkingGraph& graph, const GraphLocation& source);

  const GraphLocation& source() const { return source_; }

  // Shortest network distance from the source to node `n`.
  double ToNode(NodeId n) const { return node_dist_[n]; }

  // Shortest network distance from the source to an arbitrary location.
  double ToLocation(const GraphLocation& loc) const;

 private:
  const WalkingGraph& graph_;
  GraphLocation source_;
  std::vector<double> node_dist_;
};

// Convenience one-shot distance between two locations. Runs an early-exit
// Dijkstra that stops once both endpoints of the target edge are settled
// (or the frontier can no longer beat the best distance found), instead of
// materializing a full one-to-all table; the result is identical to
// OneToAllDistances(graph, from).ToLocation(to) bit for bit.
double NetworkDistance(const WalkingGraph& graph, const GraphLocation& from,
                       const GraphLocation& to);

// Canonical spelling of a source location: the offset is clamped to
// [0, edge length], and a location sitting exactly on a node is rewritten
// to (lowest-id incident edge, endpoint offset) so the same physical point
// reached through different edges compares equal. Both the DistanceIndex
// (cache keys) and the DistanceOracle (pinned-matrix sources) canonicalize
// through this one function, which is what keeps their distance values
// bit-identical for the same physical source.
GraphLocation CanonicalSourceLocation(const WalkingGraph& graph,
                                      const GraphLocation& source);

// Shortest path between two locations. Returns a leg-less path anchored at
// `from` when from == to. Fails only if the graph is disconnected between
// them.
StatusOr<Path> FindShortestPath(const WalkingGraph& graph,
                                const GraphLocation& from,
                                const GraphLocation& to);

}  // namespace ipqs

#endif  // IPQS_GRAPH_SHORTEST_PATH_H_
