#ifndef IPQS_OBS_TRACE_H_
#define IPQS_OBS_TRACE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace ipqs {
namespace obs {

// Per-query trace recorder: collects named spans (start + duration, tagged
// with a dense thread id) and serializes them as Chrome-tracing "complete"
// events — the JSON loads directly in chrome://tracing and in Perfetto.
//
// Recording a span takes one mutex; tracing is an opt-in diagnosis mode
// (--trace_out), not a hot-path facility. All methods are thread-safe.
class TraceRecorder {
 public:
  TraceRecorder() : epoch_ns_(MonotonicNanos()) {}
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  // Nanoseconds since this recorder was created; span timestamps are
  // expressed on this clock.
  int64_t NowNs() const { return MonotonicNanos() - epoch_ns_; }

  // Records a span on the calling thread. `arg_key`, when non-null, adds
  // one integer argument to the event (e.g. the object id of a per-object
  // inference span).
  void AddSpan(const char* name, int64_t start_ns, int64_t end_ns,
               const char* arg_key = nullptr, int64_t arg_value = 0);

  size_t size() const;

  // {"traceEvents":[...]} with ph:"X" complete events, ts/dur in
  // microseconds.
  void WriteJson(std::ostream& os) const;
  bool WriteJsonFile(const std::string& path) const;

 private:
  struct Event {
    std::string name;
    int64_t start_ns = 0;
    int64_t dur_ns = 0;
    int tid = 0;
    const char* arg_key = nullptr;  // Static strings only.
    int64_t arg_value = 0;
  };

  const int64_t epoch_ns_;
  mutable std::mutex mu_;
  std::vector<Event> events_;
  std::map<std::thread::id, int> thread_ids_;
};

// RAII span: records [construction, destruction) into a recorder. A null
// recorder makes it a no-op (the clock is never read).
class TraceSpan {
 public:
  TraceSpan(TraceRecorder* recorder, const char* name,
            const char* arg_key = nullptr, int64_t arg_value = 0)
      : recorder_(recorder),
        name_(name),
        arg_key_(arg_key),
        arg_value_(arg_value),
        start_ns_(recorder == nullptr ? 0 : recorder->NowNs()) {}
  ~TraceSpan() {
    if (recorder_ != nullptr) {
      recorder_->AddSpan(name_, start_ns_, recorder_->NowNs(), arg_key_,
                         arg_value_);
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceRecorder* recorder_;
  const char* name_;
  const char* arg_key_;
  int64_t arg_value_;
  int64_t start_ns_;
};

}  // namespace obs
}  // namespace ipqs

#endif  // IPQS_OBS_TRACE_H_
