#include "obs/timeseries.h"

#include <algorithm>
#include <cstdio>
#include <map>

namespace ipqs {
namespace obs {
namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  return out;
}

// Prometheus metric names allow [a-zA-Z_:][a-zA-Z0-9_:]*; map everything
// else (our dots) to '_' and prefix the exporter namespace.
std::string PromName(const std::string& name) {
  std::string out = "ipqs_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

TimeSeriesSampler::TimeSeriesSampler(MetricsRegistry* registry,
                                     TimeSeriesConfig config)
    : registry_(registry), config_(config) {
  if (config_.capacity == 0) {
    config_.capacity = 1;
  }
  if (config_.interval_seconds <= 0) {
    config_.interval_seconds = 1;
  }
  ring_ = std::vector<Slot>(config_.capacity);
}

uint32_t TimeSeriesSampler::InternName(const std::string& name) {
  for (uint32_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) {
      return i;
    }
  }
  names_.push_back(name);
  return static_cast<uint32_t>(names_.size() - 1);
}

void TimeSeriesSampler::RefreshHandles() {
  const RegistryHandles handles = registry_->SnapshotHandles();
  counter_handles_.clear();
  gauge_handles_.clear();
  histogram_handles_.clear();
  for (const auto& [name, c] : handles.counters) {
    counter_handles_.emplace_back(InternName(name), c);
  }
  for (const auto& [name, g] : handles.gauges) {
    gauge_handles_.emplace_back(InternName(name), g);
  }
  for (const auto& [name, h] : handles.histograms) {
    histogram_handles_.emplace_back(InternName(name), h);
  }
}

void TimeSeriesSampler::Sample(int64_t t) {
  if (registry_ == nullptr || t % config_.interval_seconds != 0) {
    return;
  }
  // Handle-table refresh only when the registry's name set changed; the
  // steady-state path below touches nothing but relaxed atomics.
  const uint64_t version = registry_->version();
  if (version != handles_version_) {
    RefreshHandles();
    handles_version_ = version;
  }

  const int64_t index = next_.load(std::memory_order_relaxed);
  Slot& slot = ring_[static_cast<size_t>(index) % ring_.size()];
  // Seqlock write: odd seq while the payload is inconsistent.
  slot.seq.fetch_add(1, std::memory_order_acq_rel);
  TimeSample& s = slot.sample;
  s.time = t;
  s.counters.clear();
  s.gauges.clear();
  s.histograms.clear();
  for (const auto& [id, c] : counter_handles_) {
    s.counters.emplace_back(id, c->Value());
  }
  for (const auto& [id, g] : gauge_handles_) {
    s.gauges.emplace_back(id, g->Value());
  }
  for (const auto& [id, h] : histogram_handles_) {
    const Histogram::Snapshot snap = h->snapshot();
    HistogramPoint p;
    p.count = snap.count;
    p.sum = snap.sum;
    p.p50 = snap.p50;
    p.p90 = snap.p90;
    p.p99 = snap.p99;
    s.histograms.emplace_back(id, p);
  }
  slot.seq.fetch_add(1, std::memory_order_release);
  next_.store(index + 1, std::memory_order_release);
}

size_t TimeSeriesSampler::size() const {
  const int64_t n = next_.load(std::memory_order_acquire);
  return std::min<size_t>(static_cast<size_t>(n), ring_.size());
}

int64_t TimeSeriesSampler::dropped_samples() const {
  const int64_t n = next_.load(std::memory_order_acquire);
  return std::max<int64_t>(0, n - static_cast<int64_t>(ring_.size()));
}

bool TimeSeriesSampler::ReadSlot(size_t index, TimeSample* out) const {
  const Slot& slot = ring_[index % ring_.size()];
  for (int attempt = 0; attempt < 1000; ++attempt) {
    const uint64_t before = slot.seq.load(std::memory_order_acquire);
    if (before % 2 != 0) {
      continue;  // Mid-write; retry.
    }
    *out = slot.sample;
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_acquire) == before) {
      return true;
    }
  }
  return false;  // Persistently torn (producer lapping us).
}

std::vector<TimeSample> TimeSeriesSampler::Collect() const {
  const int64_t n = next_.load(std::memory_order_acquire);
  const int64_t first =
      std::max<int64_t>(0, n - static_cast<int64_t>(ring_.size()));
  std::vector<TimeSample> out;
  out.reserve(static_cast<size_t>(n - first));
  for (int64_t i = first; i < n; ++i) {
    TimeSample s;
    if (ReadSlot(static_cast<size_t>(i), &s)) {
      out.push_back(std::move(s));
    }
  }
  // A producer racing Collect can lap slots; keep times strictly
  // increasing so consumers see a well-formed series.
  std::stable_sort(out.begin(), out.end(),
                   [](const TimeSample& a, const TimeSample& b) {
                     return a.time < b.time;
                   });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const TimeSample& a, const TimeSample& b) {
                          return a.time == b.time;
                        }),
            out.end());
  return out;
}

std::optional<int64_t> TimeSeriesSampler::CounterDelta(
    const std::string& name, int64_t window_seconds) const {
  const std::vector<TimeSample> samples = Collect();
  if (samples.empty()) {
    return std::nullopt;
  }
  uint32_t id = ~0u;
  for (uint32_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) {
      id = i;
      break;
    }
  }
  if (id == ~0u) {
    return std::nullopt;
  }
  auto value_in = [id](const TimeSample& s) -> std::optional<int64_t> {
    for (const auto& [cid, v] : s.counters) {
      if (cid == id) {
        return v;
      }
    }
    return std::nullopt;
  };
  const TimeSample& newest = samples.back();
  const std::optional<int64_t> end = value_in(newest);
  if (!end.has_value()) {
    return std::nullopt;
  }
  // Window start: the newest sample at or before (newest.time - window),
  // i.e. the counter's value as the window opened. No such sample (window
  // precedes retention) -> fall back to the oldest retained sample's value,
  // never 0, so ring wrap can't inflate deltas.
  const int64_t open = newest.time - window_seconds;
  int64_t start_value = 0;
  bool found_start = false;
  for (const TimeSample& s : samples) {
    if (s.time > open) {
      break;
    }
    start_value = value_in(s).value_or(start_value);
    found_start = true;
  }
  if (!found_start) {
    start_value = value_in(samples.front()).value_or(0);
  }
  return *end - start_value;
}

std::vector<HistogramPoint> TimeSeriesSampler::HistogramWindow(
    const std::string& name, int64_t window_seconds) const {
  std::vector<HistogramPoint> out;
  const std::vector<TimeSample> samples = Collect();
  if (samples.empty()) {
    return out;
  }
  uint32_t id = ~0u;
  for (uint32_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) {
      id = i;
      break;
    }
  }
  if (id == ~0u) {
    return out;
  }
  const int64_t open = samples.back().time - window_seconds;
  for (const TimeSample& s : samples) {
    if (s.time <= open) {
      continue;
    }
    for (const auto& [hid, p] : s.histograms) {
      if (hid == id) {
        out.push_back(p);
        break;
      }
    }
  }
  return out;
}

void TimeSeriesSampler::WriteJson(std::ostream& os) const {
  const std::vector<TimeSample> samples = Collect();
  os << "{\n  \"interval_seconds\": " << config_.interval_seconds
     << ",\n  \"samples\": " << samples.size()
     << ",\n  \"dropped\": " << dropped_samples() << ",\n  \"series\": {";

  // Pivot sample-major storage into name-major series. Accumulate into
  // id-indexed vectors (one push_back per point, no per-point string
  // churn), then key and sort by the exported series name so the output
  // is stable.
  struct CounterSeries {
    std::vector<std::pair<int64_t, int64_t>> points;  // (t, v)
  };
  struct HistSeries {
    std::vector<std::pair<int64_t, HistogramPoint>> points;
  };
  std::vector<CounterSeries> counters_by_id(names_.size());
  std::vector<CounterSeries> gauges_by_id(names_.size());
  std::vector<HistSeries> hists_by_id(names_.size());
  for (const TimeSample& s : samples) {
    for (const auto& [id, v] : s.counters) {
      counters_by_id[id].points.emplace_back(s.time, v);
    }
    for (const auto& [id, v] : s.gauges) {
      gauges_by_id[id].points.emplace_back(s.time, v);
    }
    for (const auto& [id, p] : s.histograms) {
      hists_by_id[id].points.emplace_back(s.time, p);
    }
  }
  std::map<std::string, CounterSeries*> scalars;  // counter: / gauge: keys.
  std::map<std::string, HistSeries*> hists;
  for (uint32_t id = 0; id < names_.size(); ++id) {
    if (!counters_by_id[id].points.empty()) {
      scalars["counter:" + names_[id]] = &counters_by_id[id];
    }
    if (!gauges_by_id[id].points.empty()) {
      scalars["gauge:" + names_[id]] = &gauges_by_id[id];
    }
    if (!hists_by_id[id].points.empty()) {
      hists["histogram:" + names_[id]] = &hists_by_id[id];
    }
  }

  bool first_series = true;
  auto series_head = [&](const std::string& key, const char* type) {
    os << (first_series ? "" : ",") << "\n    \"" << JsonEscape(key)
       << "\": {\"type\": \"" << type << "\", \"points\": [";
    first_series = false;
  };
  for (const auto& [key, series] : scalars) {
    const bool is_counter = key.compare(0, 8, "counter:") == 0;
    series_head(key, is_counter ? "counter" : "gauge");
    for (size_t i = 0; i < series->points.size(); ++i) {
      const auto& [t, v] = series->points[i];
      os << (i == 0 ? "" : ", ") << "{\"t\": " << t << ", \"v\": " << v;
      if (is_counter) {
        double rate = 0.0;
        if (i > 0) {
          const auto& [pt, pv] = series->points[i - 1];
          if (t > pt) {
            rate = static_cast<double>(v - pv) / static_cast<double>(t - pt);
          }
        }
        os << ", \"rate\": " << FormatDouble(rate);
      }
      os << "}";
    }
    os << "]}";
  }
  for (const auto& [key, series] : hists) {
    series_head(key, "histogram");
    for (size_t i = 0; i < series->points.size(); ++i) {
      const auto& [t, p] = series->points[i];
      os << (i == 0 ? "" : ", ") << "{\"t\": " << t
         << ", \"count\": " << p.count << ", \"sum\": " << p.sum
         << ", \"p50\": " << FormatDouble(p.p50)
         << ", \"p90\": " << FormatDouble(p.p90)
         << ", \"p99\": " << FormatDouble(p.p99) << "}";
    }
    os << "]}";
  }
  os << (first_series ? "" : "\n  ") << "}\n}\n";
}

void TimeSeriesSampler::WritePrometheus(std::ostream& os) const {
  const std::vector<TimeSample> samples = Collect();
  if (samples.empty()) {
    return;
  }
  const TimeSample& s = samples.back();
  os << "# Sampled at sim-second " << s.time << "\n";
  for (const auto& [id, v] : s.counters) {
    const std::string pn = PromName(names_[id]);
    os << "# TYPE " << pn << " counter\n" << pn << " " << v << "\n";
  }
  for (const auto& [id, v] : s.gauges) {
    const std::string pn = PromName(names_[id]);
    os << "# TYPE " << pn << " gauge\n" << pn << " " << v << "\n";
  }
  for (const auto& [id, p] : s.histograms) {
    const std::string pn = PromName(names_[id]);
    os << "# TYPE " << pn << " summary\n"
       << pn << "{quantile=\"0.5\"} " << FormatDouble(p.p50) << "\n"
       << pn << "{quantile=\"0.9\"} " << FormatDouble(p.p90) << "\n"
       << pn << "{quantile=\"0.99\"} " << FormatDouble(p.p99) << "\n"
       << pn << "_sum " << p.sum << "\n"
       << pn << "_count " << p.count << "\n";
  }
}

}  // namespace obs
}  // namespace ipqs
