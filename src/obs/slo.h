#ifndef IPQS_OBS_SLO_H_
#define IPQS_OBS_SLO_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "obs/timeseries.h"

namespace ipqs {
namespace obs {

// One evaluation window of a multi-window burn-rate alert: the SLO is
// breached in this window when the error budget burns faster than
// max_burn_rate (1.0 = exactly the rate that exhausts the budget at the
// objective's horizon; SRE-style page thresholds use ~14 for short windows
// and ~6 for long ones).
struct SloWindow {
  int64_t seconds = 60;
  double max_burn_rate = 1.0;
};

// A service-level objective over sampled time-series.
//
// kRatio: bad/total event counters. Burn rate over a window is
//   (delta(bad)/delta(total)) / (1 - objective), 0 when delta(total) == 0.
// kLatency: a latency histogram plus a threshold. Each sample carries the
//   histogram's p99; a sample is "bad" when its p99 exceeds threshold, and
//   the burn rate is the bad-sample fraction over (1 - objective). This is
//   an approximation (cumulative p99 per sample, not exact windowed
//   quantiles), deliberate: the sampler stores fixed-size points, not raw
//   observations.
struct SloSpec {
  enum class Kind { kRatio, kLatency };

  std::string name;
  Kind kind = Kind::kRatio;
  // kRatio: counter names summed into the numerator / denominator. A name
  // the sampler never saw contributes 0, so SLOs may reference optional
  // subsystems (fault injection) and stay quiet when those are off.
  std::vector<std::string> bad_counters;
  std::vector<std::string> total_counters;
  // kLatency: histogram series name and the p99 threshold (same unit as
  // the histogram's observations; ns for the engine latency series).
  std::string histogram;
  double threshold = 0.0;
  // Fraction of events promised good (e.g. 0.99 -> 1% error budget).
  double objective = 0.99;
  // The alert FIRES only when every window is breached simultaneously
  // (short window = it is happening now; long window = it is sustained).
  std::vector<SloWindow> windows;
};

// Evaluation result for one window of one SLO.
struct SloWindowState {
  int64_t seconds = 0;
  double max_burn_rate = 0.0;
  int64_t bad = 0;    // kRatio: event delta; kLatency: bad samples.
  int64_t total = 0;  // kRatio: event delta; kLatency: samples seen.
  double burn_rate = 0.0;
  bool breached = false;
};

// Evaluation result for one SLO.
struct SloState {
  std::string name;
  double objective = 0.0;
  bool firing = false;  // Every window breached.
  std::vector<SloWindowState> windows;
};

// Deterministic multi-window burn-rate evaluator over a TimeSeriesSampler.
// Stateless between calls: Evaluate() derives everything from the sampled
// series, so the same samples always produce the same alert decisions.
class SloMonitor {
 public:
  SloMonitor(const TimeSeriesSampler* sampler, std::vector<SloSpec> specs);

  const std::vector<SloSpec>& specs() const { return specs_; }

  std::vector<SloState> Evaluate() const;

  // Stable JSON: {"slos":[{"name","objective","firing","windows":[
  //   {"seconds","max_burn_rate","bad","total","burn_rate","breached"}]}],
  //   "firing": <count>}.
  void WriteJson(std::ostream& os) const;

 private:
  SloState EvaluateOne(const SloSpec& spec) const;

  const TimeSeriesSampler* sampler_;
  std::vector<SloSpec> specs_;
};

// The serving SLOs every experiment watches, over the engine registered
// under `engine_prefix` (the simulation's PF engine registers as "pf"):
//   <p>.slo.deadline_miss — queries served below kFull;
//   <p>.slo.stale_serve   — objects answered from a stale cached state;
//   ingest.drop           — readings lost to faults or late arrival;
//   <p>.slo.latency_p99   — range-query p99 latency bound (wall clock; the
//                           one intentionally non-deterministic SLO).
std::vector<SloSpec> DefaultServingSlos(const std::string& engine_prefix,
                                        int64_t latency_threshold_ns = 50'000'000);

}  // namespace obs
}  // namespace ipqs

#endif  // IPQS_OBS_SLO_H_
