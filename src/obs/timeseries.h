#ifndef IPQS_OBS_TIMESERIES_H_
#define IPQS_OBS_TIMESERIES_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace ipqs {
namespace obs {

struct TimeSeriesConfig {
  // Ring capacity in samples; older samples are overwritten (and counted in
  // dropped_samples) once the ring wraps.
  size_t capacity = 4096;
  // Sample every N sim-seconds; Sample() calls at non-multiples are no-ops
  // so the caller can invoke it unconditionally each tick.
  int64_t interval_seconds = 1;
};

// One histogram's state at a sample instant (cumulative since start).
struct HistogramPoint {
  int64_t count = 0;
  int64_t sum = 0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

// A full sample: every registered metric's value at one sim-second.
// Metric identity is an interned name id (see TimeSeriesSampler::NameOf) so
// slots stay compact and comparisons are integer.
struct TimeSample {
  int64_t time = 0;
  std::vector<std::pair<uint32_t, int64_t>> counters;
  std::vector<std::pair<uint32_t, int64_t>> gauges;
  std::vector<std::pair<uint32_t, HistogramPoint>> histograms;
};

// Periodic MetricsRegistry sampler writing into a fixed-capacity ring.
//
// Single producer (the simulation loop), lock-free in steady state: the
// registry mutex is taken only when MetricsRegistry::version() moves (a new
// metric appeared); otherwise Sample() walks cached lock-free handles.
// Each ring slot is guarded by a seqlock so concurrent readers (a dashboard
// thread) either see a consistent sample or retry; readers never block the
// producer.
class TimeSeriesSampler {
 public:
  explicit TimeSeriesSampler(MetricsRegistry* registry,
                             TimeSeriesConfig config = {});

  // Snapshot every metric at sim-time `t` (no-op unless t is a multiple of
  // interval_seconds). Single producer only.
  void Sample(int64_t t);

  // Number of samples currently retained / lifetime taken / overwritten.
  size_t size() const;
  int64_t total_samples() const {
    return next_.load(std::memory_order_acquire);
  }
  int64_t dropped_samples() const;

  // Consistent copies of the retained samples, oldest first.
  std::vector<TimeSample> Collect() const;

  const std::string& NameOf(uint32_t id) const { return names_[id]; }

  // --- Window queries (for the SLO monitor) ---------------------------
  // Delta of counter `name` between the newest sample and the oldest
  // sample with time > newest.time - window_seconds (window start value
  // taken as 0 if the metric did not exist yet). nullopt when there are no
  // samples or the counter never appeared.
  std::optional<int64_t> CounterDelta(const std::string& name,
                                      int64_t window_seconds) const;
  // Histogram points inside the same window, oldest first (cumulative
  // snapshots; subtract counts across points for windowed totals).
  std::vector<HistogramPoint> HistogramWindow(const std::string& name,
                                              int64_t window_seconds) const;

  // --- Export ----------------------------------------------------------
  // Stable JSON: {"interval_seconds":..,"samples":..,"dropped":..,
  //  "series":{"counter:<name>":{"type":"counter","points":[{"t","v","rate"}...]},
  //            "gauge:<name>":..., "histogram:<name>":{... points with
  //            count/sum/p50/p90/p99 ...}}} — series keys sorted.
  void WriteJson(std::ostream& os) const;
  // Prometheus text exposition of the NEWEST sample: counters/gauges as
  // "ipqs_<sanitized_name> value", histograms as summaries with quantile
  // labels. Empty output when no samples were taken.
  void WritePrometheus(std::ostream& os) const;

 private:
  struct Slot {
    std::atomic<uint64_t> seq{0};  // Even = stable, odd = being written.
    TimeSample sample;
  };

  void RefreshHandles();  // Re-reads the registry's handle tables.
  uint32_t InternName(const std::string& name);
  bool ReadSlot(size_t index, TimeSample* out) const;

  MetricsRegistry* registry_;
  TimeSeriesConfig config_;

  // Producer-owned cache of registry handles, refreshed on version change.
  uint64_t handles_version_ = ~0ull;
  std::vector<std::pair<uint32_t, const Counter*>> counter_handles_;
  std::vector<std::pair<uint32_t, const Gauge*>> gauge_handles_;
  std::vector<std::pair<uint32_t, const Histogram*>> histogram_handles_;

  // Interned metric names; append-only, indexed by id. The producer
  // appends; readers only index into the stable prefix they learned about
  // from published slots, so no lock is needed.
  std::vector<std::string> names_;

  std::vector<Slot> ring_;
  std::atomic<int64_t> next_{0};  // Lifetime sample count (monotone).
};

}  // namespace obs
}  // namespace ipqs

#endif  // IPQS_OBS_TIMESERIES_H_
