#include "obs/json.h"

#include <cctype>
#include <cstdlib>

namespace ipqs {
namespace obs {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> Parse() {
    std::optional<JsonValue> v = ParseValue();
    if (!v.has_value()) {
      return std::nullopt;
    }
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return std::nullopt;  // Trailing garbage.
    }
    return v;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  std::optional<JsonValue> ParseValue() {
    if (++depth_ > 64) {
      return std::nullopt;  // Bounded nesting; exports are shallow.
    }
    SkipWhitespace();
    std::optional<JsonValue> out;
    if (pos_ >= text_.size()) {
      out = std::nullopt;
    } else if (text_[pos_] == '{') {
      out = ParseObject();
    } else if (text_[pos_] == '[') {
      out = ParseArray();
    } else if (text_[pos_] == '"') {
      out = ParseString();
    } else if (ConsumeLiteral("true")) {
      JsonValue v;
      v.kind_ = JsonValue::Kind::kBool;
      v.bool_ = true;
      out = v;
    } else if (ConsumeLiteral("false")) {
      JsonValue v;
      v.kind_ = JsonValue::Kind::kBool;
      v.bool_ = false;
      out = v;
    } else if (ConsumeLiteral("null")) {
      out = JsonValue();
    } else {
      out = ParseNumber();
    }
    --depth_;
    return out;
  }

  std::optional<JsonValue> ParseObject() {
    if (!Consume('{')) {
      return std::nullopt;
    }
    JsonValue v;
    v.kind_ = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (Consume('}')) {
      return v;
    }
    while (true) {
      std::optional<JsonValue> key = ParseString();
      if (!key.has_value() || !Consume(':')) {
        return std::nullopt;
      }
      std::optional<JsonValue> value = ParseValue();
      if (!value.has_value()) {
        return std::nullopt;
      }
      v.object_[key->string_] = std::move(*value);
      if (Consume(',')) {
        SkipWhitespace();
        continue;
      }
      if (Consume('}')) {
        return v;
      }
      return std::nullopt;
    }
  }

  std::optional<JsonValue> ParseArray() {
    if (!Consume('[')) {
      return std::nullopt;
    }
    JsonValue v;
    v.kind_ = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (Consume(']')) {
      return v;
    }
    while (true) {
      std::optional<JsonValue> item = ParseValue();
      if (!item.has_value()) {
        return std::nullopt;
      }
      v.array_.push_back(std::move(*item));
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        return v;
      }
      return std::nullopt;
    }
  }

  std::optional<JsonValue> ParseString() {
    if (!Consume('"')) {
      return std::nullopt;
    }
    JsonValue v;
    v.kind_ = JsonValue::Kind::kString;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return v;
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          return std::nullopt;
        }
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': v.string_.push_back('"'); break;
          case '\\': v.string_.push_back('\\'); break;
          case '/': v.string_.push_back('/'); break;
          case 'n': v.string_.push_back('\n'); break;
          case 't': v.string_.push_back('\t'); break;
          case 'r': v.string_.push_back('\r'); break;
          case 'b': v.string_.push_back('\b'); break;
          case 'f': v.string_.push_back('\f'); break;
          default: return std::nullopt;  // \uXXXX unsupported.
        }
        continue;
      }
      v.string_.push_back(c);
    }
    return std::nullopt;  // Unterminated.
  }

  std::optional<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) {
      return std::nullopt;
    }
    const std::string num(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double parsed = std::strtod(num.c_str(), &end);
    if (end != num.c_str() + num.size()) {
      return std::nullopt;
    }
    JsonValue v;
    v.kind_ = JsonValue::Kind::kNumber;
    v.number_ = parsed;
    return v;
  }

  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (!is_object()) {
    return nullptr;
  }
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

const JsonValue* JsonValue::FindPath(const std::string& dotted) const {
  const JsonValue* cur = this;
  size_t start = 0;
  while (cur != nullptr) {
    const size_t dot = dotted.find('.', start);
    const std::string key = dotted.substr(
        start, dot == std::string::npos ? std::string::npos : dot - start);
    cur = cur->Find(key);
    if (dot == std::string::npos) {
      return cur;
    }
    start = dot + 1;
  }
  return nullptr;
}

std::optional<JsonValue> JsonValue::Parse(std::string_view text) {
  return JsonParser(text).Parse();
}

}  // namespace obs
}  // namespace ipqs
