#include "obs/trace.h"

#include <cstdio>
#include <fstream>

namespace ipqs {
namespace obs {
namespace {

std::string Micros(int64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1000.0);
  return buf;
}

}  // namespace

void TraceRecorder::AddSpan(const char* name, int64_t start_ns, int64_t end_ns,
                            const char* arg_key, int64_t arg_value) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, _] = thread_ids_.try_emplace(
      std::this_thread::get_id(), static_cast<int>(thread_ids_.size()));
  Event e;
  e.name = name;
  e.start_ns = start_ns;
  e.dur_ns = end_ns < start_ns ? 0 : end_ns - start_ns;
  e.tid = it->second;
  e.arg_key = arg_key;
  e.arg_value = arg_value;
  events_.push_back(std::move(e));
}

size_t TraceRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void TraceRecorder::WriteJson(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const Event& e : events_) {
    os << (first ? "" : ",") << "\n{\"name\":\"" << e.name
       << "\",\"ph\":\"X\",\"pid\":0,\"tid\":" << e.tid
       << ",\"ts\":" << Micros(e.start_ns) << ",\"dur\":" << Micros(e.dur_ns);
    if (e.arg_key != nullptr) {
      os << ",\"args\":{\"" << e.arg_key << "\":" << e.arg_value << "}";
    }
    os << "}";
    first = false;
  }
  os << "\n]}\n";
}

bool TraceRecorder::WriteJsonFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out.is_open()) {
    return false;
  }
  WriteJson(out);
  return out.good();
}

}  // namespace obs
}  // namespace ipqs
