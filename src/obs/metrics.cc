#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <vector>

namespace ipqs {
namespace obs {
namespace {

// Doubles print with enough digits to round-trip typical latency values
// while keeping integers free of a trailing ".0" (stable golden output).
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

// Metric names are plain identifiers, but escape the JSON specials anyway
// so no name can produce invalid output.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace

size_t Histogram::BucketIndex(int64_t value) {
  if (value < 0) {
    value = 0;
  }
  if (value < 2 * kSubBuckets) {
    return static_cast<size_t>(value);  // Exact buckets for 0..15.
  }
  const int octave =
      std::bit_width(static_cast<uint64_t>(value)) - 1;  // 2^o <= v.
  const int sub = static_cast<int>(
      (static_cast<uint64_t>(value) >> (octave - kSubBucketBits)) -
      kSubBuckets);
  return static_cast<size_t>(2 * kSubBuckets + (octave - 4) * kSubBuckets +
                             sub);
}

int64_t Histogram::BucketLowerBound(size_t bucket) {
  if (bucket < 2 * kSubBuckets) {
    return static_cast<int64_t>(bucket);
  }
  const size_t i = bucket - 2 * kSubBuckets;
  const int octave = 4 + static_cast<int>(i / kSubBuckets);
  const int sub = static_cast<int>(i % kSubBuckets);
  const uint64_t lb = static_cast<uint64_t>(kSubBuckets + sub)
                      << (octave - kSubBucketBits);
  if (lb > static_cast<uint64_t>(std::numeric_limits<int64_t>::max())) {
    return std::numeric_limits<int64_t>::max();
  }
  return static_cast<int64_t>(lb);
}

int64_t Histogram::BucketUpperBound(size_t bucket) {
  if (bucket + 1 >= kNumBuckets) {
    return std::numeric_limits<int64_t>::max();
  }
  return BucketLowerBound(bucket + 1);
}

void Histogram::Observe(int64_t value) {
  if (value < 0) {
    value = 0;
  }
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  // min/max maintained with CAS loops; the first observation initializes
  // both (count_ is bumped last so a racing snapshot may briefly miss the
  // newest value, never see a bogus one).
  if (count_.load(std::memory_order_relaxed) == 0) {
    int64_t expected = 0;
    min_.compare_exchange_strong(expected, value, std::memory_order_relaxed);
  }
  int64_t cur = min_.load(std::memory_order_relaxed);
  while (value < cur &&
         !min_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (value > cur &&
         !max_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
  count_.fetch_add(1, std::memory_order_relaxed);
}

double Histogram::Quantile(const int64_t* buckets, int64_t count, int64_t min,
                           int64_t max, double q) {
  if (count <= 0) {
    return 0.0;
  }
  // Nearest-rank with in-bucket interpolation: find the bucket holding the
  // ceil(q * count)-th observation. Truncating here instead of ceiling
  // silently shifted every quantile down one rank (p99 of 11 observations
  // ranked the 10th, not the 11th).
  int64_t target =
      static_cast<int64_t>(std::ceil(q * static_cast<double>(count)));
  target = std::clamp<int64_t>(target, 1, count);
  int64_t cum = 0;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    if (buckets[b] == 0) {
      continue;
    }
    if (cum + buckets[b] >= target) {
      const double lo = static_cast<double>(BucketLowerBound(b));
      const double hi = static_cast<double>(BucketUpperBound(b));
      if (hi - lo <= 1.0) {
        // Width-1 buckets (values < 16) hold exactly one integer value;
        // interpolating inside them would invent values that were never
        // observed.
        return std::clamp(lo, static_cast<double>(min),
                          static_cast<double>(max));
      }
      // Place the i-th of n in-bucket observations at its midpoint position
      // lo + width*(i-0.5)/n, never at the exclusive upper bound: with
      // frac = i/n the last observation of a bucket would report `hi`, a
      // value that is by construction NOT in the bucket (p50 of {100, 200}
      // came back as 104, the bound of 100's bucket).
      const double frac = (static_cast<double>(target - cum) - 0.5) /
                          static_cast<double>(buckets[b]);
      const double v = lo + (hi - lo) * frac;
      return std::clamp(v, static_cast<double>(min), static_cast<double>(max));
    }
    cum += buckets[b];
  }
  return static_cast<double>(max);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.min = min_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  if (s.count == 0) {
    return s;
  }
  // Stack copy, not a heap vector: snapshot runs once per histogram per
  // time-series sample, and ~4KB fits comfortably on the stack.
  int64_t buckets[kNumBuckets];
  int64_t total = 0;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    buckets[b] = buckets_[b].load(std::memory_order_relaxed);
    total += buckets[b];
  }
  // Quantiles rank against what the buckets actually hold right now (a
  // racing Observe may have bumped count_ but not its bucket yet, or vice
  // versa).
  s.p50 = Quantile(buckets, total, s.min, s.max, 0.50);
  s.p90 = Quantile(buckets, total, s.min, s.max, 0.90);
  s.p99 = Quantile(buckets, total, s.min, s.max, 0.99);
  return s;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
    version_.fetch_add(1, std::memory_order_release);
  }
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
    version_.fetch_add(1, std::memory_order_release);
  }
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>();
    version_.fetch_add(1, std::memory_order_release);
  }
  return slot.get();
}

RegistrySnapshot MetricsRegistry::SnapshotAll() const {
  std::lock_guard<std::mutex> lock(mu_);
  RegistrySnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->Value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->Value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.emplace_back(name, h->snapshot());
  }
  return snap;
}

RegistryHandles MetricsRegistry::SnapshotHandles() const {
  std::lock_guard<std::mutex> lock(mu_);
  RegistryHandles handles;
  handles.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    handles.counters.emplace_back(name, c.get());
  }
  handles.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    handles.gauges.emplace_back(name, g.get());
  }
  handles.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    handles.histograms.emplace_back(name, h.get());
  }
  return handles;
}

void MetricsRegistry::WriteText(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) {
    os << "counter " << name << " = " << c->Value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    os << "gauge " << name << " = " << g->Value() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const Histogram::Snapshot s = h->snapshot();
    os << "histogram " << name << ": count=" << s.count << " sum=" << s.sum
       << " min=" << s.min << " max=" << s.max
       << " p50=" << FormatDouble(s.p50) << " p90=" << FormatDouble(s.p90)
       << " p99=" << FormatDouble(s.p99) << "\n";
  }
}

void MetricsRegistry::WriteJson(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "" : ",") << "\n    \"" << JsonEscape(name)
       << "\": " << c->Value();
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "" : ",") << "\n    \"" << JsonEscape(name)
       << "\": " << g->Value();
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    const Histogram::Snapshot s = h->snapshot();
    os << (first ? "" : ",") << "\n    \"" << JsonEscape(name) << "\": {"
       << "\"count\": " << s.count << ", \"sum\": " << s.sum
       << ", \"min\": " << s.min << ", \"max\": " << s.max
       << ", \"p50\": " << FormatDouble(s.p50)
       << ", \"p90\": " << FormatDouble(s.p90)
       << ", \"p99\": " << FormatDouble(s.p99) << "}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
}

bool MetricsRegistry::WriteJsonFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out.is_open()) {
    return false;
  }
  WriteJson(out);
  return out.good();
}

}  // namespace obs
}  // namespace ipqs
