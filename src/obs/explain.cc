#include "obs/explain.h"

#include <cstdio>
#include <sstream>

namespace ipqs {
namespace obs {
namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace

void QueryExplain::WriteJson(std::ostream& os, bool include_timings) const {
  os << "{";
  os << "\"kind\": \"" << JsonEscape(kind) << "\"";
  os << ", \"now\": " << now;
  os << ", \"deadline_ms\": " << deadline_ms;
  os << ", \"k\": " << k;
  os << ", \"pruning_enabled\": " << (pruning_enabled ? "true" : "false");
  os << ", \"objects_known\": " << objects_known;
  os << ", \"candidates\": " << candidates;
  os << ", \"cache\": {\"hits\": " << cache_hits
     << ", \"stale\": " << cache_stale << ", \"misses\": " << cache_misses
     << "}";
  os << ", \"quality\": \"" << JsonEscape(quality) << "\"";
  os << ", \"coverage_degraded\": " << (coverage_degraded ? "true" : "false");
  os << ", \"budget\": {\"reason\": \"" << JsonEscape(budget_reason) << "\""
     << ", \"filter_seconds\": " << FormatDouble(budget_filter_seconds)
     << ", \"est_full_cost\": " << FormatDouble(est_full_cost)
     << ", \"est_stale_cost\": " << FormatDouble(est_stale_cost)
     << ", \"est_reduced_cost\": " << FormatDouble(est_reduced_cost) << "}";
  os << ", \"distance_index\": {\"hits\": " << dindex_hits
     << ", \"misses\": " << dindex_misses
     << ", \"slack\": " << FormatDouble(dindex_slack) << "}";
  os << ", \"work\": {\"filter_runs\": " << filter_runs
     << ", \"filter_resumes\": " << filter_resumes
     << ", \"filter_seconds\": " << filter_seconds
     << ", \"stale_served_objects\": " << stale_served_objects << "}";
  os << ", \"timing_ns\": {\"prune\": " << (include_timings ? prune_ns : 0)
     << ", \"infer\": " << (include_timings ? infer_ns : 0)
     << ", \"evaluate\": " << (include_timings ? evaluate_ns : 0)
     << ", \"total\": " << (include_timings ? total_ns : 0) << "}";
  os << ", \"ingest\": {\"watermark\": " << ingest_watermark
     << ", \"staged\": " << ingest_staged
     << ", \"late_dropped\": " << ingest_late_dropped << "}";
  os << ", \"batch\": {\"batched\": " << (batched ? "true" : "false")
     << ", \"size\": " << batch_size
     << ", \"deduped\": " << (deduped ? "true" : "false") << "}";
  os << ", \"result\": {\"objects\": " << result_objects
     << ", \"total_probability\": " << FormatDouble(result_total_probability)
     << "}";
  os << "}";
}

std::string QueryExplain::ToJson(bool include_timings) const {
  std::ostringstream oss;
  WriteJson(oss, include_timings);
  return oss.str();
}

void WriteExplainsJson(std::ostream& os,
                       const std::vector<QueryExplain>& explains,
                       bool include_timings) {
  os << "[";
  for (size_t i = 0; i < explains.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n");
    explains[i].WriteJson(os, include_timings);
  }
  os << (explains.empty() ? "]" : "\n]") << "\n";
}

}  // namespace obs
}  // namespace ipqs
