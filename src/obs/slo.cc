#include "obs/slo.h"

#include <cstdio>

namespace ipqs {
namespace obs {
namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace

SloMonitor::SloMonitor(const TimeSeriesSampler* sampler,
                       std::vector<SloSpec> specs)
    : sampler_(sampler), specs_(std::move(specs)) {}

SloState SloMonitor::EvaluateOne(const SloSpec& spec) const {
  SloState state;
  state.name = spec.name;
  state.objective = spec.objective;
  const double budget = 1.0 - spec.objective;
  state.firing = !spec.windows.empty();
  for (const SloWindow& w : spec.windows) {
    SloWindowState ws;
    ws.seconds = w.seconds;
    ws.max_burn_rate = w.max_burn_rate;
    if (spec.kind == SloSpec::Kind::kRatio) {
      for (const std::string& name : spec.bad_counters) {
        ws.bad += sampler_->CounterDelta(name, w.seconds).value_or(0);
      }
      for (const std::string& name : spec.total_counters) {
        ws.total += sampler_->CounterDelta(name, w.seconds).value_or(0);
      }
    } else {
      // Latency: one "event" per sample in the window, bad when that
      // sample's p99 exceeded the threshold (see SloSpec docs).
      for (const HistogramPoint& p :
           sampler_->HistogramWindow(spec.histogram, w.seconds)) {
        if (p.count == 0) {
          continue;  // Nothing observed yet: not evidence either way.
        }
        ++ws.total;
        if (p.p99 > spec.threshold) {
          ++ws.bad;
        }
      }
    }
    if (ws.total > 0 && budget > 0.0) {
      const double error_rate =
          static_cast<double>(ws.bad) / static_cast<double>(ws.total);
      ws.burn_rate = error_rate / budget;
    }
    ws.breached = ws.burn_rate > ws.max_burn_rate;
    state.firing = state.firing && ws.breached;
    state.windows.push_back(ws);
  }
  return state;
}

std::vector<SloState> SloMonitor::Evaluate() const {
  std::vector<SloState> out;
  out.reserve(specs_.size());
  for (const SloSpec& spec : specs_) {
    out.push_back(EvaluateOne(spec));
  }
  return out;
}

void SloMonitor::WriteJson(std::ostream& os) const {
  const std::vector<SloState> states = Evaluate();
  int64_t firing = 0;
  os << "{\n  \"slos\": [";
  for (size_t i = 0; i < states.size(); ++i) {
    const SloState& s = states[i];
    firing += s.firing ? 1 : 0;
    os << (i == 0 ? "" : ",") << "\n    {\"name\": \"" << JsonEscape(s.name)
       << "\", \"objective\": " << FormatDouble(s.objective)
       << ", \"firing\": " << (s.firing ? "true" : "false")
       << ", \"windows\": [";
    for (size_t j = 0; j < s.windows.size(); ++j) {
      const SloWindowState& w = s.windows[j];
      os << (j == 0 ? "" : ", ") << "{\"seconds\": " << w.seconds
         << ", \"max_burn_rate\": " << FormatDouble(w.max_burn_rate)
         << ", \"bad\": " << w.bad << ", \"total\": " << w.total
         << ", \"burn_rate\": " << FormatDouble(w.burn_rate)
         << ", \"breached\": " << (w.breached ? "true" : "false") << "}";
    }
    os << "]}";
  }
  os << (states.empty() ? "" : "\n  ") << "],\n  \"firing\": " << firing
     << "\n}\n";
}

std::vector<SloSpec> DefaultServingSlos(const std::string& engine_prefix,
                                        int64_t latency_threshold_ns) {
  const std::string& p = engine_prefix;
  std::vector<SloSpec> slos;

  // Deadline pressure: a query answered below kFull missed the quality the
  // caller asked for. 1% budget; fires on a fast burn over the last minute
  // sustained across five minutes.
  SloSpec deadline_miss;
  deadline_miss.name = p + ".slo.deadline_miss";
  deadline_miss.bad_counters = {p + ".degrade.cached_stale",
                               p + ".degrade.reduced_particles",
                               p + ".degrade.prune_only"};
  deadline_miss.total_counters = {p + ".engine.queries"};
  deadline_miss.objective = 0.99;
  deadline_miss.windows = {{60, 10.0}, {300, 5.0}};
  slos.push_back(deadline_miss);

  // Staleness: objects answered from a bounded-staleness cached state
  // instead of fresh inference.
  SloSpec stale_serve;
  stale_serve.name = p + ".slo.stale_serve";
  stale_serve.bad_counters = {p + ".degrade.stale_served_objects"};
  stale_serve.total_counters = {p + ".engine.candidates_inferred",
                               p + ".degrade.stale_served_objects"};
  stale_serve.objective = 0.95;
  stale_serve.windows = {{60, 5.0}, {300, 2.0}};
  slos.push_back(stale_serve);

  // Ingest health: readings the serving path never saw (dropped in
  // delivery or behind the watermark), over everything the injector
  // handled. Both fault counters exist only in fault-injected runs, so the
  // clean baseline contributes zeros and stays quiet.
  SloSpec ingest_drop;
  ingest_drop.name = "ingest.drop";
  ingest_drop.bad_counters = {"faults.dropped", "collector.late_dropped"};
  ingest_drop.total_counters = {"faults.injected"};
  ingest_drop.objective = 0.90;
  ingest_drop.windows = {{60, 3.0}, {300, 2.0}};
  slos.push_back(ingest_drop);

  // Wall-clock latency: the one intentionally machine-dependent SLO.
  SloSpec latency;
  latency.name = p + ".slo.latency_p99";
  latency.kind = SloSpec::Kind::kLatency;
  latency.histogram = p + ".query.range_latency_ns";
  latency.threshold = static_cast<double>(latency_threshold_ns);
  latency.objective = 0.99;
  latency.windows = {{60, 10.0}, {300, 5.0}};
  slos.push_back(latency);

  // Reader availability: reader-seconds spent suspect or dead over all
  // monitored reader-seconds (health.* exist only when the reader-health
  // monitor is on; the clean baseline contributes zeros and stays quiet).
  SloSpec reader_avail;
  reader_avail.name = "health.reader_availability";
  reader_avail.bad_counters = {"health.reader_down_seconds"};
  reader_avail.total_counters = {"health.reader_seconds"};
  reader_avail.objective = 0.95;
  reader_avail.windows = {{60, 3.0}, {300, 2.0}};
  slos.push_back(reader_avail);

  return slos;
}

}  // namespace obs
}  // namespace ipqs
