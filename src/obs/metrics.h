#ifndef IPQS_OBS_METRICS_H_
#define IPQS_OBS_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace ipqs {
namespace obs {

// Monotonic nanoseconds since an arbitrary process-local epoch. The one
// clock every timer in the observability layer reads.
inline int64_t MonotonicNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Monotonically increasing event count. Increment is one relaxed atomic
// add; safe from any thread.
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// A value that goes up and down (queue depth, particle count, ...).
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Log-bucketed latency histogram (HdrHistogram-style log-linear layout):
// values 0..15 each get an exact bucket; above that every power-of-two
// octave splits into 8 linear sub-buckets, so a bucket spans at most 1/8
// of its value and quantile estimates carry <= 12.5% relative error.
//
// Observe is a handful of relaxed atomic operations — safe and cheap from
// any thread. snapshot() is approximate under concurrent writers (the
// buckets are read without a barrier), which is fine for reporting.
class Histogram {
 public:
  struct Snapshot {
    int64_t count = 0;
    int64_t sum = 0;
    int64_t min = 0;
    int64_t max = 0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
  };

  // Records one value; negative values clamp to 0.
  void Observe(int64_t value);

  Snapshot snapshot() const;

  // Bucket layout, exposed for tests: the index a value lands in and the
  // smallest/one-past-largest values of a bucket.
  static size_t BucketIndex(int64_t value);
  static int64_t BucketLowerBound(size_t bucket);
  static int64_t BucketUpperBound(size_t bucket);

  static constexpr int kSubBucketBits = 3;  // 8 sub-buckets per octave.
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  // Values < 2^4 are exact; octaves 4..62 cover the rest of int64.
  static constexpr size_t kNumBuckets =
      2 * kSubBuckets + (62 - 4) * kSubBuckets + kSubBuckets;

 private:
  // Estimated value at quantile q in [0, 1] via linear interpolation
  // inside the covering bucket, clamped to the observed [min, max].
  static double Quantile(const int64_t* buckets, int64_t count, int64_t min,
                         int64_t max, double q);

  std::atomic<int64_t> buckets_[kNumBuckets] = {};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> min_{0};
  std::atomic<int64_t> max_{0};
};

// Point-in-time copy of every registered metric, sorted by name.
struct RegistrySnapshot {
  std::vector<std::pair<std::string, int64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;
};

// Name -> live-handle tables (sorted by name). Handles stay valid for the
// registry's lifetime, so a sampler can cache this and read values with no
// lock as long as version() has not moved.
struct RegistryHandles {
  std::vector<std::pair<std::string, const Counter*>> counters;
  std::vector<std::pair<std::string, const Gauge*>> gauges;
  std::vector<std::pair<std::string, const Histogram*>> histograms;
};

// Named metric registry. Get* registers on first use and returns a stable
// pointer (the same pointer for the same name, forever); lookups take a
// mutex but the returned handles are lock-free, so callers resolve names
// once at construction time and touch only atomics on the hot path.
// A metric that is never touched costs nothing but its registration.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  // Bumped whenever a NEW metric is registered; unchanged by value updates.
  // Lets periodic samplers skip the mutex when the name set is stable.
  uint64_t version() const { return version_.load(std::memory_order_acquire); }

  // Copies of all current values (takes the registry mutex).
  RegistrySnapshot SnapshotAll() const;

  // Live handles for lock-free repeated reads (takes the registry mutex
  // once; re-fetch when version() changes).
  RegistryHandles SnapshotHandles() const;

  // Human-readable dump, one metric per line, sorted by name.
  void WriteText(std::ostream& os) const;

  // Stable JSON export: {"counters":{...},"gauges":{...},
  // "histograms":{name:{count,sum,min,max,p50,p90,p99}}}, keys sorted.
  void WriteJson(std::ostream& os) const;

  // WriteJson to `path`; false when the file cannot be opened.
  bool WriteJsonFile(const std::string& path) const;

 private:
  mutable std::mutex mu_;
  std::atomic<uint64_t> version_{0};
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// RAII stage timer: records the scope's wall time (nanoseconds) into a
// histogram on destruction. A null histogram makes it a true no-op — the
// clock is never read — so instrumented code pays nothing when
// observability is not wired up.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* hist)
      : hist_(hist), start_ns_(hist == nullptr ? 0 : MonotonicNanos()) {}
  ~ScopedTimer() {
    if (hist_ != nullptr) {
      hist_->Observe(MonotonicNanos() - start_ns_);
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* hist_;
  int64_t start_ns_;
};

}  // namespace obs
}  // namespace ipqs

#endif  // IPQS_OBS_METRICS_H_
