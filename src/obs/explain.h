#ifndef IPQS_OBS_EXPLAIN_H_
#define IPQS_OBS_EXPLAIN_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace ipqs {
namespace obs {

// Per-query provenance record: WHY a query answered the way it did and how
// healthy the serving path was at that moment. The engine fills one of
// these (opt-in, caller-provided) alongside the answer; collection must
// never perturb the answer itself — explain on/off is pinned
// byte-identical by tests/determinism_test.cc.
//
// The obs layer sits below query/, so enumerations from upper layers
// (QualityLevel, query kinds) appear here as their stable string forms.
struct QueryExplain {
  // ---- Identity -------------------------------------------------------
  std::string kind;        // "range" | "knn".
  int64_t now = 0;         // Evaluation timestamp (sim seconds).
  int64_t deadline_ms = 0; // 0 = no deadline.
  int k = 0;               // kNN only; 0 for range queries.

  // ---- Candidate provenance ------------------------------------------
  bool pruning_enabled = false;
  int64_t objects_known = 0;  // Collector-known objects (pre-pruning).
  int64_t candidates = 0;     // Survivors of grid/uncertain-region pruning
                              // (canonicalized; what inference considers).

  // ---- Per-object cache outcomes (probed before inference) -----------
  // hit: a resumable cached state exists; stale: a cached state exists but
  // only the degraded stale-serve rung could use it; miss: no usable entry.
  int64_t cache_hits = 0;
  int64_t cache_stale = 0;
  int64_t cache_misses = 0;

  // ---- Degradation decision ------------------------------------------
  std::string quality;        // Rung served: full | cached_stale |
                              // reduced_particles | prune_only.
  // Reader-health annotation: a degraded reader's zone or detections touch
  // this answer (coverage over part of the queried space was impaired).
  bool coverage_degraded = false;
  std::string budget_reason;  // Why that rung: no_deadline | full_fits |
                              // stale_fits | reduced_fits |
                              // budget_exhausted.
  // The work budget the deadline bought (filter-seconds; -1 = no deadline)
  // and the policy's estimated cost of each rung (-1 = not evaluated).
  double budget_filter_seconds = -1.0;
  double est_full_cost = -1.0;
  double est_stale_cost = -1.0;
  double est_reduced_cost = -1.0;

  // ---- Distance-index provenance (kNN pruning) ------------------------
  int64_t dindex_hits = 0;    // Shared-table lookups served from the LRU.
  int64_t dindex_misses = 0;  // Lookups that ran a fresh Dijkstra.
  double dindex_slack = -1.0; // Query-to-anchor slack widening the pruning
                              // intervals; -1 = index not consulted.

  // ---- Work charged by this query -------------------------------------
  int64_t filter_runs = 0;     // Full from-scratch filter executions.
  int64_t filter_resumes = 0;  // Cache-hit resumptions.
  int64_t filter_seconds = 0;  // Filter-seconds of inference charged.
  int64_t stale_served_objects = 0;  // Objects served a cached state as-is.

  // ---- Per-stage wall time (ns; 0 when include_timings is false) ------
  int64_t prune_ns = 0;
  int64_t infer_ns = 0;
  int64_t evaluate_ns = 0;
  int64_t total_ns = 0;

  // ---- Ingest context at query time ------------------------------------
  // What the collector had (and had not yet) released when this query ran:
  // answers near the watermark may lag staged readings by design.
  int64_t ingest_watermark = 0;     // INT64_MIN = no reorder buffer armed.
  int64_t ingest_staged = 0;        // Readings held in the reorder buffer.
  int64_t ingest_late_dropped = 0;  // Lifetime late-drop count at query time.

  // ---- Batch context (QueryScheduler) ----------------------------------
  bool batched = false;
  int64_t batch_size = 0;  // Queries in the batch this answer came from.
  bool deduped = false;    // This slot reused another slot's evaluation.

  // ---- Result summary --------------------------------------------------
  int64_t result_objects = 0;
  double result_total_probability = 0.0;

  // Stable JSON: keys in fixed order, doubles via %.6g. With
  // include_timings false the *_ns fields are emitted as 0 so records can
  // be golden-pinned across machines.
  void WriteJson(std::ostream& os, bool include_timings = true) const;
  std::string ToJson(bool include_timings = true) const;
};

// JSON array of records (one line per record), for batch exports.
void WriteExplainsJson(std::ostream& os,
                       const std::vector<QueryExplain>& explains,
                       bool include_timings = true);

}  // namespace obs
}  // namespace ipqs

#endif  // IPQS_OBS_EXPLAIN_H_
