#ifndef IPQS_OBS_JSON_H_
#define IPQS_OBS_JSON_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ipqs {
namespace obs {

// Minimal JSON document model + recursive-descent parser: just enough to
// read back this layer's own exports (metrics, time-series, SLO state) in
// tools and tests. Not a general-purpose library — no \uXXXX escapes, no
// streaming — but strict about structure: Parse returns nullopt on any
// malformed input instead of guessing.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool AsBool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  double AsDouble(double fallback = 0.0) const {
    return is_number() ? number_ : fallback;
  }
  int64_t AsInt(int64_t fallback = 0) const {
    return is_number() ? static_cast<int64_t>(number_) : fallback;
  }
  const std::string& AsString() const { return string_; }

  const std::vector<JsonValue>& items() const { return array_; }
  const std::map<std::string, JsonValue>& fields() const { return object_; }

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
  // Dotted-path lookup through nested objects ("budget.reason").
  const JsonValue* FindPath(const std::string& dotted) const;

  static std::optional<JsonValue> Parse(std::string_view text);

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

}  // namespace obs
}  // namespace ipqs

#endif  // IPQS_OBS_JSON_H_
