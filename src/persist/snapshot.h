#ifndef IPQS_PERSIST_SNAPSHOT_H_
#define IPQS_PERSIST_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/statusor.h"
#include "filter/particle_cache.h"
#include "rfid/data_collector.h"
#include "rfid/history_store.h"

namespace ipqs {
namespace persist {

// On-disk snapshot format (versioned, checksummed):
//
//   bytes 0..7   magic "IPQSSNAP"
//   bytes 8..11  format version (u32 LE); current version is 1
//   bytes 12..19 payload length (u64 LE)
//   bytes 20..23 CRC-32 of the payload (u32 LE)
//   bytes 24..   payload (serde.h little-endian encoding of SnapshotData)
//
// Version history:
//   v1: clock + DataCollector state + HistoryStore state + per-object
//       cached FilterStates of the particle-filter engine.
inline constexpr std::string_view kSnapshotMagic = "IPQSSNAP";
inline constexpr uint32_t kSnapshotVersion = 1;

// Everything the serving side needs to answer queries: the aggregated
// two-device histories (collector), the long-horizon reading log (history
// store), and the cached particle states with their resume keys. Because
// inference is a pure function of (engine seed, history, now), restoring
// this state reproduces query answers byte for byte.
struct SnapshotData {
  int64_t now = 0;  // Simulation second the state is consistent as of.
  DataCollector::PersistedState collector;
  HistoryStore::PersistedState history;
  std::vector<ParticleCache::PersistedEntry> pf_cache;

  friend bool operator==(const SnapshotData&, const SnapshotData&) = default;
};

class SnapshotWriter {
 public:
  // Serializes, checksums, and atomically replaces `path` (temp file +
  // rename, fsync'd), so a crash mid-write never leaves a half-written
  // snapshot under the final name.
  static Status Write(const std::string& path, const SnapshotData& data);

  // The exact bytes Write stores (exposed for golden-format tests).
  static std::string Serialize(const SnapshotData& data);
};

class SnapshotReader {
 public:
  // Loads and validates a snapshot file. Any defect — missing file, short
  // header, wrong magic, unknown version, truncated payload, checksum
  // mismatch, malformed payload — comes back as a Status error; this
  // function never aborts, so recovery can skip to an older snapshot.
  static StatusOr<SnapshotData> Read(const std::string& path);

  static StatusOr<SnapshotData> Parse(std::string_view bytes);
};

}  // namespace persist
}  // namespace ipqs

#endif  // IPQS_PERSIST_SNAPSHOT_H_
