#ifndef IPQS_PERSIST_CHECKSUM_H_
#define IPQS_PERSIST_CHECKSUM_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace ipqs {
namespace persist {

// CRC-32 (IEEE 802.3, polynomial 0xEDB88320, reflected). Every on-disk
// artifact of the persistence layer — snapshot payloads and WAL records —
// carries one of these so torn writes and bit rot are detected instead of
// silently corrupting recovered state.
uint32_t Crc32(const void* data, size_t size);

inline uint32_t Crc32(std::string_view data) {
  return Crc32(data.data(), data.size());
}

}  // namespace persist
}  // namespace ipqs

#endif  // IPQS_PERSIST_CHECKSUM_H_
