#ifndef IPQS_PERSIST_CHECKPOINT_H_
#define IPQS_PERSIST_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "obs/metrics.h"
#include "persist/snapshot.h"
#include "persist/wal.h"

namespace ipqs {
namespace persist {

// Durability knobs. A checkpoint directory holds zero-padded
// `snap-<seq>` snapshots and `wal-<seq>` segments, where seq is the
// simulation second the file's state is consistent as of. Segment
// `wal-<S>` contains exactly the records appended after snapshot S
// (times > S), so replaying it over snap-S never double-applies a
// reading — replay stays safe even though ingest of same-second
// readings from a second device is not idempotent.
struct PersistConfig {
  std::string dir;
  // A snapshot is cut every this-many simulated seconds. Larger intervals
  // cheapen steady state and lengthen the WAL tail replayed on recovery.
  int snapshot_interval_seconds = 60;
  // fsync every WAL append (the durable default). Off trades the tail of
  // the last second for throughput.
  bool fsync_wal = true;
  // Newest snapshots retained after each checkpoint; older snapshots and
  // the WAL segments only they need are pruned.
  int keep_snapshots = 2;
};

// Observability hooks for the persistence layer; any member may be null.
struct PersistMetrics {
  obs::Histogram* snapshot_write_ns = nullptr;
  obs::Histogram* wal_fsync_ns = nullptr;
  obs::Histogram* recovery_replay_ns = nullptr;  // Observed by the replayer.
  obs::Counter* snapshots_written = nullptr;
  obs::Counter* wal_records = nullptr;
  obs::Counter* corrupt_snapshots_skipped = nullptr;
  obs::Counter* wal_tails_truncated = nullptr;

  static PersistMetrics FromRegistry(obs::MetricsRegistry* registry);
};

// What Recover() salvaged from a checkpoint directory. With no valid
// snapshot (`have_snapshot` false) the caller cold-starts and replays
// `wal_tail` from scratch; otherwise it restores `snapshot` first. Either
// way `wal_tail` holds only records with time > snapshot_time, in order.
struct Recovered {
  bool have_snapshot = false;
  SnapshotData snapshot;
  int64_t snapshot_time = -1;  // -1 when cold-starting.
  std::vector<WalRecord> wal_tail;
  int corrupt_snapshots_skipped = 0;
  int wal_tails_truncated = 0;
  // Where appends may resume: the newest segment and its valid length.
  int64_t last_segment_seq = -1;
  size_t last_segment_valid_bytes = 0;
};

// Owns the active WAL segment and the snapshot rotation for one
// checkpoint directory. Not thread-safe; the simulation loop drives it
// from one thread.
class CheckpointManager {
 public:
  CheckpointManager() = default;

  // Starts a fresh log at `initial_seq` (the simulation second before the
  // first record). Creates `config.dir` if needed; refuses a directory
  // that already holds snapshots or WAL segments — recovery must be an
  // explicit choice, never an accidental overwrite.
  Status OpenFresh(const PersistConfig& config, const PersistMetrics& metrics,
                   int64_t initial_seq);

  // Resumes appending after Recover(): truncates the torn tail of the
  // newest segment (if any) and reopens it for append.
  Status OpenAfterRecover(const PersistConfig& config,
                          const PersistMetrics& metrics,
                          const Recovered& recovered);

  // Appends one second's batch to the active segment (fsync'd when
  // configured so).
  Status AppendWal(const WalRecord& record);

  // Atomically writes snap-<data.now>, rotates to a fresh wal-<data.now>
  // segment, and prunes snapshots/segments beyond keep_snapshots.
  Status WriteSnapshot(const SnapshotData& data);

  Status Close();

  bool is_open() const { return wal_.is_open(); }

  // Scans `config.dir` for the newest valid snapshot (corrupt ones are
  // skipped and counted, never fatal) and the intact WAL records past it.
  static StatusOr<Recovered> Recover(const PersistConfig& config,
                                     const PersistMetrics& metrics = {});

  static std::string SnapshotPath(const std::string& dir, int64_t seq);
  static std::string WalPath(const std::string& dir, int64_t seq);

 private:
  Status OpenSegment(int64_t seq);
  void PruneOldFiles();

  PersistConfig config_;
  PersistMetrics metrics_;
  WalWriter wal_;
  int64_t segment_seq_ = 0;
  std::vector<int64_t> snapshot_seqs_;  // Ascending, snapshots on disk.
};

}  // namespace persist
}  // namespace ipqs

#endif  // IPQS_PERSIST_CHECKPOINT_H_
