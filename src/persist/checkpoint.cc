#include "persist/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <system_error>

#include "persist/io_util.h"

namespace ipqs {
namespace persist {
namespace {

namespace fs = std::filesystem;

// Parses "<prefix><zero-padded digits>" -> seq; nullopt for other names.
bool ParseSeq(const std::string& name, const std::string& prefix,
              int64_t* seq) {
  if (name.size() <= prefix.size() || name.compare(0, prefix.size(), prefix)) {
    return false;
  }
  const std::string digits = name.substr(prefix.size());
  if (digits.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  *seq = std::strtoll(digits.c_str(), nullptr, 10);
  return true;
}

std::string FormatSeq(const std::string& prefix, int64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%012lld", static_cast<long long>(seq));
  return prefix + buf;
}

// Lists the seqs of files named <prefix><seq> in `dir`, ascending.
std::vector<int64_t> ListSeqs(const std::string& dir,
                              const std::string& prefix) {
  std::vector<int64_t> seqs;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    int64_t seq = 0;
    if (ParseSeq(entry.path().filename().string(), prefix, &seq)) {
      seqs.push_back(seq);
    }
  }
  std::sort(seqs.begin(), seqs.end());
  return seqs;
}

}  // namespace

PersistMetrics PersistMetrics::FromRegistry(obs::MetricsRegistry* registry) {
  PersistMetrics m;
  if (registry == nullptr) {
    return m;
  }
  m.snapshot_write_ns = registry->GetHistogram("persist.snapshot_write_ns");
  m.wal_fsync_ns = registry->GetHistogram("persist.wal_fsync_ns");
  m.recovery_replay_ns = registry->GetHistogram("persist.recovery_replay_ns");
  m.snapshots_written = registry->GetCounter("persist.snapshots_written");
  m.wal_records = registry->GetCounter("persist.wal_records_appended");
  m.corrupt_snapshots_skipped =
      registry->GetCounter("persist.corrupt_snapshots_skipped");
  m.wal_tails_truncated = registry->GetCounter("persist.wal_tails_truncated");
  return m;
}

std::string CheckpointManager::SnapshotPath(const std::string& dir,
                                            int64_t seq) {
  return dir + "/" + FormatSeq("snap-", seq);
}

std::string CheckpointManager::WalPath(const std::string& dir, int64_t seq) {
  return dir + "/" + FormatSeq("wal-", seq);
}

Status CheckpointManager::OpenFresh(const PersistConfig& config,
                                    const PersistMetrics& metrics,
                                    int64_t initial_seq) {
  if (wal_.is_open()) {
    return Status::FailedPrecondition("checkpoint manager already open");
  }
  std::error_code ec;
  fs::create_directories(config.dir, ec);
  if (ec) {
    return Status::Internal("mkdir " + config.dir + ": " + ec.message());
  }
  if (!ListSeqs(config.dir, "snap-").empty() ||
      !ListSeqs(config.dir, "wal-").empty()) {
    return Status::AlreadyExists(
        "checkpoint dir " + config.dir +
        " already holds state; pass recover to resume from it");
  }
  config_ = config;
  metrics_ = metrics;
  snapshot_seqs_.clear();
  return OpenSegment(initial_seq);
}

Status CheckpointManager::OpenAfterRecover(const PersistConfig& config,
                                           const PersistMetrics& metrics,
                                           const Recovered& recovered) {
  if (wal_.is_open()) {
    return Status::FailedPrecondition("checkpoint manager already open");
  }
  config_ = config;
  metrics_ = metrics;
  snapshot_seqs_ = ListSeqs(config.dir, "snap-");
  int64_t seq = recovered.last_segment_seq;
  if (seq < 0) {
    seq = std::max<int64_t>(recovered.snapshot_time, 0);
  } else {
    // Drop the torn tail so new appends extend a fully-valid prefix.
    const std::string path = WalPath(config.dir, seq);
    std::string bytes;
    const Status read = ReadFileToString(path, &bytes);
    if (read.ok() && bytes.size() > recovered.last_segment_valid_bytes) {
      bytes.resize(recovered.last_segment_valid_bytes);
      IPQS_RETURN_IF_ERROR(AtomicWriteFile(path, bytes));
    }
  }
  return OpenSegment(seq);
}

Status CheckpointManager::OpenSegment(int64_t seq) {
  segment_seq_ = seq;
  return wal_.Open(WalPath(config_.dir, seq), config_.fsync_wal,
                   metrics_.wal_fsync_ns);
}

Status CheckpointManager::AppendWal(const WalRecord& record) {
  IPQS_RETURN_IF_ERROR(wal_.Append(record));
  if (metrics_.wal_records != nullptr) {
    metrics_.wal_records->Increment();
  }
  return Status::Ok();
}

Status CheckpointManager::WriteSnapshot(const SnapshotData& data) {
  if (!wal_.is_open()) {
    return Status::FailedPrecondition("checkpoint manager not open");
  }
  {
    obs::ScopedTimer timer(metrics_.snapshot_write_ns);
    IPQS_RETURN_IF_ERROR(
        SnapshotWriter::Write(SnapshotPath(config_.dir, data.now), data));
  }
  if (metrics_.snapshots_written != nullptr) {
    metrics_.snapshots_written->Increment();
  }
  snapshot_seqs_.push_back(data.now);
  // Rotate: records after this snapshot land in wal-<now>, so a future
  // replay over snap-<now> sees only post-snapshot records.
  IPQS_RETURN_IF_ERROR(wal_.Close());
  IPQS_RETURN_IF_ERROR(OpenSegment(data.now));
  PruneOldFiles();
  return Status::Ok();
}

void CheckpointManager::PruneOldFiles() {
  if (config_.keep_snapshots < 1 ||
      snapshot_seqs_.size() <= static_cast<size_t>(config_.keep_snapshots)) {
    return;
  }
  const size_t drop = snapshot_seqs_.size() - config_.keep_snapshots;
  const int64_t oldest_kept = snapshot_seqs_[drop];
  std::error_code ec;
  for (size_t i = 0; i < drop; ++i) {
    fs::remove(SnapshotPath(config_.dir, snapshot_seqs_[i]), ec);
  }
  snapshot_seqs_.erase(snapshot_seqs_.begin(), snapshot_seqs_.begin() + drop);
  // A segment wal-<S> with S < oldest_kept only feeds snapshots we just
  // deleted; recovery now always starts at or after oldest_kept.
  for (int64_t seq : ListSeqs(config_.dir, "wal-")) {
    if (seq < oldest_kept) {
      fs::remove(WalPath(config_.dir, seq), ec);
    }
  }
}

Status CheckpointManager::Close() { return wal_.Close(); }

StatusOr<Recovered> CheckpointManager::Recover(const PersistConfig& config,
                                               const PersistMetrics& metrics) {
  std::error_code ec;
  if (!fs::is_directory(config.dir, ec)) {
    return Status::NotFound("checkpoint dir not found: " + config.dir);
  }
  Recovered out;

  // Newest valid snapshot wins; corrupt or truncated ones are counted and
  // skipped, falling back to the next-older snapshot (or a cold start).
  std::vector<int64_t> snaps = ListSeqs(config.dir, "snap-");
  for (auto it = snaps.rbegin(); it != snaps.rend(); ++it) {
    StatusOr<SnapshotData> loaded =
        SnapshotReader::Read(SnapshotPath(config.dir, *it));
    if (loaded.ok()) {
      out.have_snapshot = true;
      out.snapshot = std::move(loaded).value();
      out.snapshot_time = *it;
      break;
    }
    ++out.corrupt_snapshots_skipped;
    if (metrics.corrupt_snapshots_skipped != nullptr) {
      metrics.corrupt_snapshots_skipped->Increment();
    }
  }

  // Replay every segment at or past the chosen snapshot, oldest first,
  // keeping only records newer than the snapshot. A torn segment ends the
  // usable log: anything later was written after the tear and cannot be
  // ordered against the lost records.
  for (int64_t seq : ListSeqs(config.dir, "wal-")) {
    if (out.have_snapshot && seq < out.snapshot_time) {
      continue;
    }
    StatusOr<WalReadResult> read = ReadWalFile(WalPath(config.dir, seq));
    if (!read.ok()) {
      return std::move(read).status();
    }
    WalReadResult& segment = read.value();
    for (WalRecord& record : segment.records) {
      if (record.time > out.snapshot_time) {
        out.wal_tail.push_back(std::move(record));
      }
    }
    out.last_segment_seq = seq;
    out.last_segment_valid_bytes = segment.valid_bytes;
    if (segment.truncated_tail) {
      ++out.wal_tails_truncated;
      if (metrics.wal_tails_truncated != nullptr) {
        metrics.wal_tails_truncated->Increment();
      }
      break;
    }
  }
  return out;
}

}  // namespace persist
}  // namespace ipqs
