#include "persist/io_util.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#ifndef _WIN32
#include <unistd.h>
#endif

namespace ipqs {
namespace persist {
namespace {

Status Errno(const std::string& op, const std::string& path) {
  return Status::Internal(op + " " + path + ": " + std::strerror(errno));
}

}  // namespace

Status ReadFileToString(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (errno == ENOENT) {
      return Status::NotFound("no such file: " + path);
    }
    return Errno("open", path);
  }
  out->clear();
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->append(buf, n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Errno("read", path);
  }
  return Status::Ok();
}

Status AtomicWriteFile(const std::string& path, std::string_view bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Errno("open", tmp);
  }
  if (!bytes.empty() &&
      std::fwrite(bytes.data(), 1, bytes.size(), f) != bytes.size()) {
    std::fclose(f);
    std::remove(tmp.c_str());
    return Errno("write", tmp);
  }
  if (std::fflush(f) != 0) {
    std::fclose(f);
    std::remove(tmp.c_str());
    return Errno("flush", tmp);
  }
#ifndef _WIN32
  if (fsync(fileno(f)) != 0) {
    std::fclose(f);
    std::remove(tmp.c_str());
    return Errno("fsync", tmp);
  }
#endif
  if (std::fclose(f) != 0) {
    std::remove(tmp.c_str());
    return Errno("close", tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Errno("rename", tmp);
  }
  return Status::Ok();
}

}  // namespace persist
}  // namespace ipqs
