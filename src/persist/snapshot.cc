#include "persist/snapshot.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "persist/checksum.h"
#include "persist/io_util.h"
#include "persist/serde.h"

namespace ipqs {
namespace persist {
namespace {

void PutEntries(BufferWriter& w, const std::vector<AggregatedEntry>& entries) {
  w.PutU32(static_cast<uint32_t>(entries.size()));
  for (const AggregatedEntry& e : entries) {
    w.PutI64(e.time);
    w.PutI32(e.reader);
  }
}

bool GetEntries(BufferReader& r, std::vector<AggregatedEntry>* entries) {
  const uint32_t n = r.GetU32();
  // Guard against a corrupt count asking for more entries than the buffer
  // could possibly hold (12 bytes each) before we try to allocate it.
  if (!r.ok() || static_cast<uint64_t>(n) * 12 > r.remaining()) {
    return false;
  }
  entries->resize(n);
  for (AggregatedEntry& e : *entries) {
    e.time = r.GetI64();
    e.reader = r.GetI32();
  }
  return r.ok();
}

void PutReading(BufferWriter& w, const RawReading& reading) {
  w.PutI32(reading.object);
  w.PutI32(reading.reader);
  w.PutI64(reading.time);
}

RawReading GetReading(BufferReader& r) {
  RawReading reading;
  reading.object = r.GetI32();
  reading.reader = r.GetI32();
  reading.time = r.GetI64();
  return reading;
}

void PutFilterResult(BufferWriter& w, const FilterResult& state) {
  w.PutI64(state.time);
  w.PutI32(state.seconds_processed);
  w.PutU32(static_cast<uint32_t>(state.particles.size()));
  for (const Particle& p : state.particles) {
    w.PutI32(p.loc.edge);
    w.PutDouble(p.loc.offset);
    w.PutI32(p.heading);
    w.PutDouble(p.speed);
    w.PutDouble(p.weight);
    w.PutBool(p.in_room);
  }
}

bool GetFilterResult(BufferReader& r, FilterResult* state) {
  state->time = r.GetI64();
  state->seconds_processed = r.GetI32();
  const uint32_t n = r.GetU32();
  if (!r.ok() || static_cast<uint64_t>(n) * 33 > r.remaining()) {
    return false;
  }
  state->particles.resize(n);
  for (Particle& p : state->particles) {
    p.loc.edge = r.GetI32();
    p.loc.offset = r.GetDouble();
    p.heading = r.GetI32();
    p.speed = r.GetDouble();
    p.weight = r.GetDouble();
    p.in_room = r.GetBool();
  }
  return r.ok();
}

std::string SerializePayload(const SnapshotData& data) {
  BufferWriter w;
  w.PutI64(data.now);

  w.PutU32(static_cast<uint32_t>(data.collector.histories.size()));
  for (const auto& [object, history] : data.collector.histories) {
    w.PutI32(object);
    w.PutI32(history.current_device);
    w.PutI32(history.previous_device);
    PutEntries(w, history.entries);
  }
  w.PutU32(static_cast<uint32_t>(data.collector.staged.size()));
  for (const RawReading& reading : data.collector.staged) {
    PutReading(w, reading);
  }
  w.PutI64(data.collector.max_seen_time);
  w.PutI64(data.collector.watermark);
  w.PutI64(data.collector.ingest.reordered);
  w.PutI64(data.collector.ingest.duplicates_dropped);
  w.PutI64(data.collector.ingest.late_dropped);

  w.PutU32(static_cast<uint32_t>(data.history.logs.size()));
  for (const auto& [object, log] : data.history.logs) {
    w.PutI32(object);
    PutEntries(w, log);
  }

  w.PutU32(static_cast<uint32_t>(data.pf_cache.size()));
  for (const ParticleCache::PersistedEntry& e : data.pf_cache) {
    w.PutI32(e.object);
    w.PutI32(e.device);
    w.PutI64(e.last_reading);
    PutFilterResult(w, e.state);
  }
  return w.Take();
}

StatusOr<SnapshotData> ParsePayload(std::string_view payload) {
  BufferReader r(payload);
  SnapshotData data;
  data.now = r.GetI64();

  const uint32_t num_histories = r.GetU32();
  for (uint32_t i = 0; r.ok() && i < num_histories; ++i) {
    std::pair<ObjectId, DataCollector::ObjectHistory> item;
    item.first = r.GetI32();
    item.second.current_device = r.GetI32();
    item.second.previous_device = r.GetI32();
    if (!GetEntries(r, &item.second.entries)) {
      return Status::InvalidArgument("snapshot: malformed collector history");
    }
    data.collector.histories.push_back(std::move(item));
  }
  const uint32_t num_staged = r.GetU32();
  if (!r.ok() || static_cast<uint64_t>(num_staged) * 16 > r.remaining()) {
    return Status::InvalidArgument("snapshot: malformed staged readings");
  }
  for (uint32_t i = 0; i < num_staged; ++i) {
    data.collector.staged.push_back(GetReading(r));
  }
  data.collector.max_seen_time = r.GetI64();
  data.collector.watermark = r.GetI64();
  data.collector.ingest.reordered = r.GetI64();
  data.collector.ingest.duplicates_dropped = r.GetI64();
  data.collector.ingest.late_dropped = r.GetI64();

  const uint32_t num_logs = r.GetU32();
  for (uint32_t i = 0; r.ok() && i < num_logs; ++i) {
    std::pair<ObjectId, std::vector<AggregatedEntry>> item;
    item.first = r.GetI32();
    if (!GetEntries(r, &item.second)) {
      return Status::InvalidArgument("snapshot: malformed history-store log");
    }
    data.history.logs.push_back(std::move(item));
  }

  const uint32_t num_cached = r.GetU32();
  for (uint32_t i = 0; r.ok() && i < num_cached; ++i) {
    ParticleCache::PersistedEntry e;
    e.object = r.GetI32();
    e.device = r.GetI32();
    e.last_reading = r.GetI64();
    if (!GetFilterResult(r, &e.state)) {
      return Status::InvalidArgument("snapshot: malformed cached state");
    }
    data.pf_cache.push_back(std::move(e));
  }

  if (!r.ok()) {
    return Status::InvalidArgument("snapshot: payload ends mid-field");
  }
  if (r.remaining() != 0) {
    return Status::InvalidArgument("snapshot: trailing bytes after payload");
  }
  return data;
}

}  // namespace

std::string SnapshotWriter::Serialize(const SnapshotData& data) {
  const std::string payload = SerializePayload(data);
  BufferWriter header;
  header.PutBytes(kSnapshotMagic.data(), kSnapshotMagic.size());
  header.PutU32(kSnapshotVersion);
  header.PutU64(payload.size());
  header.PutU32(Crc32(payload));
  std::string out = header.Take();
  out += payload;
  return out;
}

Status SnapshotWriter::Write(const std::string& path,
                             const SnapshotData& data) {
  return AtomicWriteFile(path, Serialize(data));
}

StatusOr<SnapshotData> SnapshotReader::Parse(std::string_view bytes) {
  constexpr size_t kHeaderSize = 8 + 4 + 8 + 4;
  if (bytes.size() < kHeaderSize) {
    return Status::InvalidArgument("snapshot: short header");
  }
  if (bytes.substr(0, kSnapshotMagic.size()) != kSnapshotMagic) {
    return Status::InvalidArgument("snapshot: bad magic");
  }
  BufferReader header(bytes.substr(kSnapshotMagic.size()));
  const uint32_t version = header.GetU32();
  const uint64_t payload_len = header.GetU64();
  const uint32_t expected_crc = header.GetU32();
  if (version != kSnapshotVersion) {
    return Status::InvalidArgument("snapshot: unsupported version " +
                                   std::to_string(version));
  }
  const std::string_view payload = bytes.substr(kHeaderSize);
  if (payload.size() != payload_len) {
    return Status::InvalidArgument("snapshot: truncated payload (" +
                                   std::to_string(payload.size()) + " of " +
                                   std::to_string(payload_len) + " bytes)");
  }
  if (Crc32(payload) != expected_crc) {
    return Status::InvalidArgument("snapshot: checksum mismatch");
  }
  return ParsePayload(payload);
}

StatusOr<SnapshotData> SnapshotReader::Read(const std::string& path) {
  std::string bytes;
  IPQS_RETURN_IF_ERROR(ReadFileToString(path, &bytes));
  return Parse(bytes);
}

}  // namespace persist
}  // namespace ipqs
