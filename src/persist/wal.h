#ifndef IPQS_PERSIST_WAL_H_
#define IPQS_PERSIST_WAL_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "obs/metrics.h"
#include "rfid/reader.h"

namespace ipqs {
namespace persist {

// One WAL record: the batch of raw readings delivered during one simulated
// second, exactly as the DataCollector consumed them (post fault injection).
// A record is appended for every second, including empty ones, so replay
// re-drives the per-second Flush/watermark schedule and the recovered clock
// lands on the exact second the writer last durably reached.
struct WalRecord {
  int64_t time = 0;
  std::vector<RawReading> readings;

  friend bool operator==(const WalRecord&, const WalRecord&) = default;
};

// On-disk record framing:
//
//   u32 LE  payload length
//   u32 LE  CRC-32 of the payload
//   payload: i64 time, u32 count, count x (i32 object, i32 reader, i64 time)
//
// A torn write (crash mid-append) leaves a short or checksum-failing tail;
// readers keep the valid prefix and report the tear instead of erroring.
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  // Opens `path` for appending (created if absent). `fsync_each_append`
  // makes every Append durable before returning; `fsync_ns` (may be null)
  // records the fsync latency of each append.
  Status Open(const std::string& path, bool fsync_each_append,
              obs::Histogram* fsync_ns = nullptr);

  // Serializes, frames, and appends one record.
  Status Append(const WalRecord& record);

  Status Close();

  bool is_open() const { return file_ != nullptr; }

  // The framed bytes Append writes (exposed for torn-write tests).
  static std::string Encode(const WalRecord& record);

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  bool fsync_each_append_ = false;
  obs::Histogram* fsync_ns_ = nullptr;
};

struct WalReadResult {
  std::vector<WalRecord> records;  // The valid prefix, in file order.
  bool truncated_tail = false;     // True if trailing bytes were discarded.
  size_t valid_bytes = 0;          // File offset the valid prefix ends at.
};

// Reads every intact record of a WAL file. A missing file is NotFound; a
// torn or corrupt tail is NOT an error — the valid prefix is returned with
// `truncated_tail` set so recovery can resume from the last durable second.
StatusOr<WalReadResult> ReadWalFile(const std::string& path);

}  // namespace persist
}  // namespace ipqs

#endif  // IPQS_PERSIST_WAL_H_
