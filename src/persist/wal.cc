#include "persist/wal.h"

#include <cerrno>
#include <chrono>
#include <cstring>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "persist/checksum.h"
#include "persist/io_util.h"
#include "persist/serde.h"

namespace ipqs {
namespace persist {
namespace {

constexpr size_t kFrameHeaderSize = 8;  // u32 length + u32 crc.

std::string EncodePayload(const WalRecord& record) {
  BufferWriter w;
  w.PutI64(record.time);
  w.PutU32(static_cast<uint32_t>(record.readings.size()));
  for (const RawReading& reading : record.readings) {
    w.PutI32(reading.object);
    w.PutI32(reading.reader);
    w.PutI64(reading.time);
  }
  return w.Take();
}

bool DecodePayload(std::string_view payload, WalRecord* record) {
  BufferReader r(payload);
  record->time = r.GetI64();
  const uint32_t n = r.GetU32();
  if (!r.ok() || static_cast<uint64_t>(n) * 16 != r.remaining()) {
    return false;
  }
  record->readings.resize(n);
  for (RawReading& reading : record->readings) {
    reading.object = r.GetI32();
    reading.reader = r.GetI32();
    reading.time = r.GetI64();
  }
  return r.ok();
}

}  // namespace

WalWriter::~WalWriter() {
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

Status WalWriter::Open(const std::string& path, bool fsync_each_append,
                       obs::Histogram* fsync_ns) {
  if (file_ != nullptr) {
    return Status::FailedPrecondition("WAL already open: " + path_);
  }
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::Internal("open " + path + ": " + std::strerror(errno));
  }
  path_ = path;
  fsync_each_append_ = fsync_each_append;
  fsync_ns_ = fsync_ns;
  return Status::Ok();
}

std::string WalWriter::Encode(const WalRecord& record) {
  const std::string payload = EncodePayload(record);
  BufferWriter frame;
  frame.PutU32(static_cast<uint32_t>(payload.size()));
  frame.PutU32(Crc32(payload));
  std::string out = frame.Take();
  out += payload;
  return out;
}

Status WalWriter::Append(const WalRecord& record) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("WAL not open");
  }
  const std::string frame = Encode(record);
  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size()) {
    return Status::Internal("write " + path_ + ": " + std::strerror(errno));
  }
  if (std::fflush(file_) != 0) {
    return Status::Internal("flush " + path_ + ": " + std::strerror(errno));
  }
  if (fsync_each_append_) {
#ifndef _WIN32
    const auto start = std::chrono::steady_clock::now();
    if (fsync(fileno(file_)) != 0) {
      return Status::Internal("fsync " + path_ + ": " + std::strerror(errno));
    }
    if (fsync_ns_ != nullptr) {
      fsync_ns_->Observe(std::chrono::duration_cast<std::chrono::nanoseconds>(
                             std::chrono::steady_clock::now() - start)
                             .count());
    }
#endif
  }
  return Status::Ok();
}

Status WalWriter::Close() {
  if (file_ == nullptr) {
    return Status::Ok();
  }
  std::FILE* f = file_;
  file_ = nullptr;
  if (std::fclose(f) != 0) {
    return Status::Internal("close " + path_ + ": " + std::strerror(errno));
  }
  return Status::Ok();
}

StatusOr<WalReadResult> ReadWalFile(const std::string& path) {
  std::string bytes;
  IPQS_RETURN_IF_ERROR(ReadFileToString(path, &bytes));

  WalReadResult result;
  size_t pos = 0;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < kFrameHeaderSize) {
      result.truncated_tail = true;
      break;
    }
    BufferReader header(std::string_view(bytes).substr(pos, kFrameHeaderSize));
    const uint32_t len = header.GetU32();
    const uint32_t expected_crc = header.GetU32();
    if (bytes.size() - pos - kFrameHeaderSize < len) {
      result.truncated_tail = true;
      break;
    }
    const std::string_view payload =
        std::string_view(bytes).substr(pos + kFrameHeaderSize, len);
    WalRecord record;
    if (Crc32(payload) != expected_crc || !DecodePayload(payload, &record)) {
      // A checksum-failing or malformed frame means the tail is garbage
      // (torn write, bit rot); nothing after it can be trusted either.
      result.truncated_tail = true;
      break;
    }
    result.records.push_back(std::move(record));
    pos += kFrameHeaderSize + len;
    result.valid_bytes = pos;
  }
  return result;
}

}  // namespace persist
}  // namespace ipqs
