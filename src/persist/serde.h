#ifndef IPQS_PERSIST_SERDE_H_
#define IPQS_PERSIST_SERDE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace ipqs {
namespace persist {

// Explicit little-endian byte packing for the persistence formats. All
// multi-byte fields on disk are little-endian regardless of host order, and
// doubles round-trip bit-exactly (IEEE-754 bits copied, never re-parsed) —
// a requirement for byte-identical recovered query answers.
class BufferWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }

  void PutU32(uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
    }
  }

  void PutU64(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
    }
  }

  void PutI32(int32_t v) { PutU32(static_cast<uint32_t>(v)); }
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }

  void PutDouble(double v) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    PutU64(bits);
  }

  void PutBool(bool v) { PutU8(v ? 1 : 0); }

  void PutBytes(const void* data, size_t size) {
    buf_.append(static_cast<const char*>(data), size);
  }

  const std::string& data() const { return buf_; }
  std::string&& Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
};

// Failure-latching reader over a byte span: the first short or malformed
// read flips ok() to false and every later Get* returns a zero value, so
// parsers can decode a whole struct and check ok() once at the end.
class BufferReader {
 public:
  explicit BufferReader(std::string_view data) : data_(data) {}

  uint8_t GetU8() {
    if (!Require(1)) return 0;
    return static_cast<uint8_t>(data_[pos_++]);
  }

  uint32_t GetU32() {
    if (!Require(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<unsigned char>(data_[pos_++]))
           << (8 * i);
    }
    return v;
  }

  uint64_t GetU64() {
    if (!Require(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_++]))
           << (8 * i);
    }
    return v;
  }

  int32_t GetI32() { return static_cast<int32_t>(GetU32()); }
  int64_t GetI64() { return static_cast<int64_t>(GetU64()); }

  double GetDouble() {
    const uint64_t bits = GetU64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  bool GetBool() { return GetU8() != 0; }

  bool ok() const { return ok_; }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  bool Require(size_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace persist
}  // namespace ipqs

#endif  // IPQS_PERSIST_SERDE_H_
