#ifndef IPQS_PERSIST_IO_UTIL_H_
#define IPQS_PERSIST_IO_UTIL_H_

#include <string>
#include <string_view>

#include "common/status.h"

namespace ipqs {
namespace persist {

// Reads the whole file into `out`. Missing file -> NotFound.
Status ReadFileToString(const std::string& path, std::string* out);

// Writes `bytes` to `path`.tmp, fsyncs, and renames over `path`, so readers
// never observe a half-written file under the final name (the tear either
// loses the whole write or none of it).
Status AtomicWriteFile(const std::string& path, std::string_view bytes);

}  // namespace persist
}  // namespace ipqs

#endif  // IPQS_PERSIST_IO_UTIL_H_
