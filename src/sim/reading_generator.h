#ifndef IPQS_SIM_READING_GENERATOR_H_
#define IPQS_SIM_READING_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "rfid/deployment.h"
#include "rfid/sensing_model.h"
#include "sim/trace_generator.h"

namespace ipqs {

// Raw reading generator (Section 5.1): checks every object against every
// reader's activation range each second and draws detections from the
// sensing model, producing the noisy RFID stream the system consumes.
class ReadingGenerator {
 public:
  struct Stats {
    int64_t opportunities = 0;  // (object, reader, second) in-range triples.
    int64_t detections = 0;
    int64_t false_negatives = 0;

    double MissRate() const {
      return opportunities == 0
                 ? 0.0
                 : static_cast<double>(false_negatives) / opportunities;
    }
  };

  ReadingGenerator(const Deployment* deployment, const SensingModel& sensing,
                   Rng* rng);

  // Readings for second `time` given the true object states.
  std::vector<RawReading> Generate(const std::vector<TrueObjectState>& states,
                                   int64_t time);

  const Stats& stats() const { return stats_; }

 private:
  const Deployment* deployment_;
  SensingModel sensing_;
  Rng* rng_;
  Stats stats_;
};

}  // namespace ipqs

#endif  // IPQS_SIM_READING_GENERATOR_H_
