#include "sim/ground_truth.h"

#include <algorithm>

#include "common/check.h"

namespace ipqs {

GroundTruth::GroundTruth(const WalkingGraph* graph) : graph_(graph) {
  IPQS_CHECK(graph != nullptr);
}

std::vector<ObjectId> GroundTruth::RangeResult(
    const std::vector<TrueObjectState>& states, const Rect& window) {
  std::vector<ObjectId> out;
  for (const TrueObjectState& s : states) {
    if (window.Contains(s.pos)) {
      out.push_back(s.id);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<ObjectId> GroundTruth::KnnResult(
    const std::vector<TrueObjectState>& states, const GraphLocation& query,
    int k) const {
  IPQS_CHECK_GT(k, 0);
  const OneToAllDistances from_query(*graph_, query);

  std::vector<std::pair<double, ObjectId>> by_dist;
  by_dist.reserve(states.size());
  for (const TrueObjectState& s : states) {
    by_dist.emplace_back(from_query.ToLocation(s.loc), s.id);
  }
  std::sort(by_dist.begin(), by_dist.end());
  const int n = std::min<int>(k, static_cast<int>(by_dist.size()));
  std::vector<ObjectId> out;
  out.reserve(n);
  for (int i = 0; i < n; ++i) {
    out.push_back(by_dist[i].second);
  }
  return out;
}

}  // namespace ipqs
