#include "sim/simulation.h"

#include <cmath>
#include <utility>

#include "common/check.h"
#include "sim/experiment.h"

namespace ipqs {

Simulation::Simulation(const SimulationConfig& config)
    : config_(config), world_rng_(config.seed), query_rng_(config.seed + 1) {}

StatusOr<std::unique_ptr<Simulation>> Simulation::Create(
    const SimulationConfig& config) {
  std::unique_ptr<Simulation> sim(new Simulation(config));
  IPQS_RETURN_IF_ERROR(sim->Init());
  return sim;
}

Status Simulation::Init() {
  if (config_.custom_plan.has_value()) {
    plan_ = *config_.custom_plan;
    IPQS_RETURN_IF_ERROR(plan_.Validate());
  } else {
    IPQS_ASSIGN_OR_RETURN(plan_, GenerateOffice(config_.office));
  }
  IPQS_ASSIGN_OR_RETURN(graph_, BuildWalkingGraph(plan_));

  anchors_ = std::make_unique<AnchorPointIndex>(
      AnchorPointIndex::Build(graph_, plan_, config_.anchor_spacing));
  anchor_graph_ =
      std::make_unique<AnchorGraph>(AnchorGraph::Build(graph_, *anchors_));

  if (!config_.custom_readers.empty()) {
    for (const ReaderSpec& spec : config_.custom_readers) {
      deployment_.AddReader(graph_, spec.pos, spec.range);
    }
  } else {
    IPQS_ASSIGN_OR_RETURN(
        deployment_,
        Deployment::UniformOnHallways(plan_, graph_, config_.num_readers,
                                      config_.activation_range));
  }
  deployment_graph_ = std::make_unique<DeploymentGraph>(
      DeploymentGraph::Build(*anchors_, *anchor_graph_, deployment_));

  if (config_.num_subscriptions > 0 &&
      config_.collector.change_log_capacity == 0) {
    // The subscription manager's dirty tracking drains the collector's
    // change log; size it to comfortably hold several poll intervals of
    // readings (overflow is safe — the manager falls back to evaluating
    // everything — just slow).
    config_.collector.change_log_capacity = 65536;
  }
  collector_.SetConfig(config_.collector);
  if (config_.faults.Enabled()) {
    injector_ = std::make_unique<FaultInjector>(config_.faults,
                                                deployment_.num_readers());
  }
  if (config_.health.enabled) {
    health_ = std::make_unique<ReaderHealthMonitor>(
        config_.health, &collector_, deployment_.num_readers());
  }

  if (config_.metrics != nullptr) {
    obs::MetricsRegistry& reg = *config_.metrics;
    CollectorMetrics cm;
    cm.readings = reg.GetCounter("collector.readings");
    cm.entries = reg.GetCounter("collector.entries");
    cm.handoffs = reg.GetCounter("collector.handoffs");
    cm.events = reg.GetCounter("collector.events");
    cm.objects = reg.GetGauge("collector.objects");
    cm.reordered = reg.GetCounter("collector.reordered");
    cm.duplicates_dropped = reg.GetCounter("collector.duplicates_dropped");
    cm.late_dropped = reg.GetCounter("collector.late_dropped");
    collector_.SetMetrics(cm);
    if (injector_ != nullptr) {
      FaultMetrics fm;
      fm.injected = reg.GetCounter("faults.injected");
      fm.dropped = reg.GetCounter("faults.dropped");
      fm.duplicated = reg.GetCounter("faults.duplicated");
      fm.delayed = reg.GetCounter("faults.delayed");
      fm.ghosts = reg.GetCounter("faults.ghosts");
      fm.skewed = reg.GetCounter("faults.skewed");
      injector_->SetMetrics(fm);
    }
    if (health_ != nullptr) {
      ReaderHealthMetrics hm;
      hm.transitions = reg.GetCounter("health.transitions");
      hm.suspect_transitions = reg.GetCounter("health.suspect_transitions");
      hm.dead_transitions = reg.GetCounter("health.dead_transitions");
      hm.recovered_transitions =
          reg.GetCounter("health.recovered_transitions");
      hm.probation_reads = reg.GetCounter("health.probation_reads");
      hm.reader_down_seconds = reg.GetCounter("health.reader_down_seconds");
      hm.reader_seconds = reg.GetCounter("health.reader_seconds");
      hm.degraded_readers = reg.GetGauge("health.degraded_readers");
      health_->SetMetrics(hm);
    }
  }

  trace_ = std::make_unique<TraceGenerator>(&graph_, &plan_, config_.trace,
                                            &world_rng_);
  readings_ = std::make_unique<ReadingGenerator>(
      &deployment_, SensingModel(config_.sensing), &world_rng_);
  ground_truth_ = std::make_unique<GroundTruth>(&graph_);

  EngineConfig pf_config;
  pf_config.method = InferenceMethod::kParticleFilter;
  pf_config.filter = config_.filter;
  pf_config.symbolic = config_.symbolic;
  pf_config.max_speed = config_.max_speed;
  pf_config.use_pruning = config_.use_pruning;
  pf_config.use_cache = config_.use_cache;
  pf_config.use_distance_index = config_.use_distance_index;
  pf_config.use_distance_oracle = config_.use_distance_oracle;
  pf_config.num_threads = config_.num_threads;
  pf_config.deadline_ms = config_.deadline_ms;
  pf_config.degrade = config_.degrade;
  pf_config.seed = config_.seed + 2;
  pf_config.metrics = config_.metrics;
  pf_config.metrics_prefix = "pf";
  pf_config.trace = config_.trace_recorder;
  // Both engines (and the subscription engine, whose config copies this
  // one) read the same monitor, so every serving path agrees on health.
  pf_config.health = health_.get();
  pf_engine_ = std::make_unique<QueryEngine>(
      &graph_, &plan_, anchors_.get(), anchor_graph_.get(), &deployment_,
      deployment_graph_.get(), &collector_, pf_config);

  EngineConfig sm_config = pf_config;
  sm_config.method = config_.baseline_method;
  sm_config.seed = config_.seed + 3;
  sm_config.metrics_prefix = "sm";
  sm_engine_ = std::make_unique<QueryEngine>(
      &graph_, &plan_, anchors_.get(), anchor_graph_.get(), &deployment_,
      deployment_graph_.get(), &collector_, sm_config);

  if (config_.num_subscriptions > 0) {
    IPQS_CHECK_GT(config_.sub_poll_interval_seconds, 0);
    // Dedicated engine: the subscription path must never touch the pf/sm
    // caches or registries, so standing queries cannot perturb ad-hoc
    // answers. Deadline 0: a standing query never degrades.
    EngineConfig sub_config = pf_config;
    sub_config.deadline_ms = 0;
    sub_config.metrics = nullptr;  // Private registry (see EngineConfig).
    sub_config.metrics_prefix = "subq";
    sub_config.trace = nullptr;
    sub_engine_ = std::make_unique<QueryEngine>(
        &graph_, &plan_, anchors_.get(), anchor_graph_.get(), &deployment_,
        deployment_graph_.get(), &collector_, sub_config);
    SubscriptionManagerConfig sm_cfg;
    sm_cfg.incremental = config_.sub_incremental;
    sm_cfg.metrics = config_.metrics;
    subscriptions_ = std::make_unique<SubscriptionManager>(sub_engine_.get(),
                                                           sm_cfg);
    // A dedicated stream, so adding subscriptions moves no world/query
    // draw and the registered set is a pure function of the seed.
    Rng sub_rng = Rng::ForStream(config_.seed, /*stream=*/0x53554253, 0);
    const int num_range = static_cast<int>(
        std::ceil(config_.sub_range_fraction *
                  static_cast<double>(config_.num_subscriptions)));
    for (int i = 0; i < config_.num_subscriptions; ++i) {
      if (i < num_range) {
        subscriptions_->AddRange(Experiment::RandomWindow(
            plan_, config_.sub_window_area_fraction, sub_rng));
      } else {
        subscriptions_->AddKnn(
            Experiment::RandomIndoorPoint(*anchors_, sub_rng), config_.sub_k);
      }
    }
  }

  if (!config_.persist.dir.empty()) {
    persist_metrics_ = persist::PersistMetrics::FromRegistry(config_.metrics);
    if (config_.persist_recover) {
      IPQS_RETURN_IF_ERROR(RecoverServingState());
    } else {
      IPQS_RETURN_IF_ERROR(checkpoint_.OpenFresh(config_.persist,
                                                 persist_metrics_, now_));
    }
  } else if (config_.persist_recover) {
    return Status::InvalidArgument(
        "persist_recover requires persist.dir to be set");
  }

  return Status::Ok();
}

persist::SnapshotData Simulation::BuildSnapshot() const {
  persist::SnapshotData data;
  data.now = now_;
  data.collector = collector_.ExportState();
  data.history = history_.ExportState();
  data.pf_cache = pf_engine_->ExportCacheEntries();
  return data;
}

Status Simulation::RecoverServingState() {
  IPQS_ASSIGN_OR_RETURN(
      persist::Recovered recovered,
      persist::CheckpointManager::Recover(config_.persist, persist_metrics_));
  const int64_t replay_start = obs::MonotonicNanos();
  if (recovered.have_snapshot) {
    collector_.RestoreState(std::move(recovered.snapshot.collector));
    history_.RestoreState(std::move(recovered.snapshot.history));
    pf_engine_->RestoreCacheEntries(std::move(recovered.snapshot.pf_cache));
    now_ = recovered.snapshot.now;
  }
  // The WAL tail goes back through the exact ingestion path live readings
  // took — Observe per reading, Flush per second — so hand-off handling,
  // duplicate suppression, and watermark advancement all replay as they
  // originally ran.
  for (const persist::WalRecord& record : recovered.wal_tail) {
    for (const RawReading& r : record.readings) {
      collector_.Observe(r);
      history_.Observe(r);
    }
    collector_.Flush(record.time);
    now_ = record.time;
  }
  recovery_report_.recovered = true;
  recovery_report_.from_snapshot = recovered.have_snapshot;
  recovery_report_.snapshot_time = recovered.snapshot_time;
  recovery_report_.wal_records_replayed = recovered.wal_tail.size();
  recovery_report_.corrupt_snapshots_skipped =
      recovered.corrupt_snapshots_skipped;
  recovery_report_.wal_tails_truncated = recovered.wal_tails_truncated;
  recovery_report_.replay_ns = obs::MonotonicNanos() - replay_start;
  if (persist_metrics_.recovery_replay_ns != nullptr) {
    persist_metrics_.recovery_replay_ns->Observe(recovery_report_.replay_ns);
  }
  return checkpoint_.OpenAfterRecover(config_.persist, persist_metrics_,
                                      recovered);
}

Status Simulation::CheckpointNow() {
  if (!checkpoint_.is_open()) {
    return Status::FailedPrecondition("persistence not enabled");
  }
  return checkpoint_.WriteSnapshot(BuildSnapshot());
}

void Simulation::Step() {
  ++now_;
  trace_->Tick();
  std::vector<RawReading> batch = readings_->Generate(trace_->states(), now_);
  if (injector_ != nullptr) {
    batch = injector_->Deliver(std::move(batch), now_);
  }
  // Reader status heartbeats: every reader that is up reports once per
  // second, tags in range or not; a reader in a down epoch reports
  // nothing. Missed heartbeats give the health monitor an unambiguous
  // failure signal that tag-read silence (objects simply elsewhere) is not.
  for (int r = 0; r < deployment_.num_readers(); ++r) {
    if (injector_ == nullptr || !injector_->ReaderDown(r, now_)) {
      collector_.NoteReaderHeartbeat(r, now_);
    }
  }
  for (const RawReading& r : batch) {
    collector_.Observe(r);
    history_.Observe(r);
  }
  collector_.Flush(now_);
  // Health verdicts update after the second's ingest settles and before
  // anything queries: subscriptions and ad-hoc queries this second already
  // see the transition.
  if (health_ != nullptr) {
    health_->Tick(now_);
  }

  if (checkpoint_.is_open() && persist_status_.ok()) {
    // Log exactly what the collector consumed (post fault injection), one
    // record per second even when empty, so replay re-drives the same
    // Flush schedule and the recovered clock lands on this second.
    persist::WalRecord record;
    record.time = now_;
    record.readings = std::move(batch);
    persist_status_ = checkpoint_.AppendWal(record);
    if (persist_status_.ok() && config_.persist.snapshot_interval_seconds > 0 &&
        now_ % config_.persist.snapshot_interval_seconds == 0) {
      persist_status_ = checkpoint_.WriteSnapshot(BuildSnapshot());
    }
  }

  if (subscriptions_ != nullptr &&
      now_ % config_.sub_poll_interval_seconds == 0) {
    subscriptions_->Tick(now_);
  }

  // Time-series sampling last, so the sample sees everything this second
  // did (ingest counters, query work issued between Steps is attributed to
  // the following second's sample).
  if (config_.sampler != nullptr) {
    config_.sampler->Sample(now_);
  }
}

void Simulation::Run(int seconds) {
  IPQS_CHECK_GE(seconds, 0);
  for (int i = 0; i < seconds; ++i) {
    Step();
  }
}

}  // namespace ipqs
