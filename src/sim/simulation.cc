#include "sim/simulation.h"

#include <utility>

#include "common/check.h"

namespace ipqs {

Simulation::Simulation(const SimulationConfig& config)
    : config_(config), world_rng_(config.seed), query_rng_(config.seed + 1) {}

StatusOr<std::unique_ptr<Simulation>> Simulation::Create(
    const SimulationConfig& config) {
  std::unique_ptr<Simulation> sim(new Simulation(config));
  IPQS_RETURN_IF_ERROR(sim->Init());
  return sim;
}

Status Simulation::Init() {
  if (config_.custom_plan.has_value()) {
    plan_ = *config_.custom_plan;
    IPQS_RETURN_IF_ERROR(plan_.Validate());
  } else {
    IPQS_ASSIGN_OR_RETURN(plan_, GenerateOffice(config_.office));
  }
  IPQS_ASSIGN_OR_RETURN(graph_, BuildWalkingGraph(plan_));

  anchors_ = std::make_unique<AnchorPointIndex>(
      AnchorPointIndex::Build(graph_, plan_, config_.anchor_spacing));
  anchor_graph_ =
      std::make_unique<AnchorGraph>(AnchorGraph::Build(graph_, *anchors_));

  if (!config_.custom_readers.empty()) {
    for (const ReaderSpec& spec : config_.custom_readers) {
      deployment_.AddReader(graph_, spec.pos, spec.range);
    }
  } else {
    IPQS_ASSIGN_OR_RETURN(
        deployment_,
        Deployment::UniformOnHallways(plan_, graph_, config_.num_readers,
                                      config_.activation_range));
  }
  deployment_graph_ = std::make_unique<DeploymentGraph>(
      DeploymentGraph::Build(*anchors_, *anchor_graph_, deployment_));

  collector_.SetConfig(config_.collector);
  if (config_.faults.Enabled()) {
    injector_ = std::make_unique<FaultInjector>(config_.faults,
                                                deployment_.num_readers());
  }

  if (config_.metrics != nullptr) {
    obs::MetricsRegistry& reg = *config_.metrics;
    CollectorMetrics cm;
    cm.readings = reg.GetCounter("collector.readings");
    cm.entries = reg.GetCounter("collector.entries");
    cm.handoffs = reg.GetCounter("collector.handoffs");
    cm.events = reg.GetCounter("collector.events");
    cm.objects = reg.GetGauge("collector.objects");
    cm.reordered = reg.GetCounter("collector.reordered");
    cm.duplicates_dropped = reg.GetCounter("collector.duplicates_dropped");
    cm.late_dropped = reg.GetCounter("collector.late_dropped");
    collector_.SetMetrics(cm);
    if (injector_ != nullptr) {
      FaultMetrics fm;
      fm.injected = reg.GetCounter("faults.injected");
      fm.dropped = reg.GetCounter("faults.dropped");
      fm.duplicated = reg.GetCounter("faults.duplicated");
      fm.delayed = reg.GetCounter("faults.delayed");
      fm.ghosts = reg.GetCounter("faults.ghosts");
      fm.skewed = reg.GetCounter("faults.skewed");
      injector_->SetMetrics(fm);
    }
  }

  trace_ = std::make_unique<TraceGenerator>(&graph_, &plan_, config_.trace,
                                            &world_rng_);
  readings_ = std::make_unique<ReadingGenerator>(
      &deployment_, SensingModel(config_.sensing), &world_rng_);
  ground_truth_ = std::make_unique<GroundTruth>(&graph_);

  EngineConfig pf_config;
  pf_config.method = InferenceMethod::kParticleFilter;
  pf_config.filter = config_.filter;
  pf_config.symbolic = config_.symbolic;
  pf_config.max_speed = config_.max_speed;
  pf_config.use_pruning = config_.use_pruning;
  pf_config.use_cache = config_.use_cache;
  pf_config.num_threads = config_.num_threads;
  pf_config.seed = config_.seed + 2;
  pf_config.metrics = config_.metrics;
  pf_config.metrics_prefix = "pf";
  pf_config.trace = config_.trace_recorder;
  pf_engine_ = std::make_unique<QueryEngine>(
      &graph_, &plan_, anchors_.get(), anchor_graph_.get(), &deployment_,
      deployment_graph_.get(), &collector_, pf_config);

  EngineConfig sm_config = pf_config;
  sm_config.method = config_.baseline_method;
  sm_config.seed = config_.seed + 3;
  sm_config.metrics_prefix = "sm";
  sm_engine_ = std::make_unique<QueryEngine>(
      &graph_, &plan_, anchors_.get(), anchor_graph_.get(), &deployment_,
      deployment_graph_.get(), &collector_, sm_config);

  return Status::Ok();
}

void Simulation::Step() {
  ++now_;
  trace_->Tick();
  std::vector<RawReading> batch = readings_->Generate(trace_->states(), now_);
  if (injector_ != nullptr) {
    batch = injector_->Deliver(std::move(batch), now_);
  }
  for (const RawReading& r : batch) {
    collector_.Observe(r);
    history_.Observe(r);
  }
  collector_.Flush(now_);
}

void Simulation::Run(int seconds) {
  IPQS_CHECK_GE(seconds, 0);
  for (int i = 0; i < seconds; ++i) {
    Step();
  }
}

}  // namespace ipqs
