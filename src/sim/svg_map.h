#ifndef IPQS_SIM_SVG_MAP_H_
#define IPQS_SIM_SVG_MAP_H_

#include <string>

#include "common/status.h"
#include "filter/anchor_distribution.h"
#include "floorplan/floor_plan.h"
#include "graph/anchor_points.h"
#include "graph/walking_graph.h"
#include "rfid/deployment.h"
#include "sim/trace_generator.h"

namespace ipqs {

// Renders floor plans and tracking state as standalone SVG — the
// vector-graphics sibling of AsciiMap, for figures and debugging.
// Construction draws the floor plan (hallways light gray, rooms outlined,
// doors as gaps left implicit); overlays stack in call order.
class SvgMap {
 public:
  explicit SvgMap(const FloorPlan& plan, double pixels_per_meter = 12.0);

  // Walking-graph edges as thin lines (hallway solid, stubs dashed).
  void DrawWalkingGraph(const WalkingGraph& graph);

  // Readers as labelled dots; optionally their activation discs.
  void DrawReaders(const Deployment& deployment, bool show_ranges = true);

  // True object positions as filled dots.
  void DrawObjects(const std::vector<TrueObjectState>& states);

  // A query window as a translucent rectangle.
  void DrawWindow(const Rect& window);

  // A location distribution as opacity-scaled dots on its anchor points.
  void DrawDistribution(const AnchorPointIndex& anchors,
                        const AnchorDistribution& dist,
                        const std::string& color = "#c2410c");

  // A single marked point.
  void DrawPoint(const Point& p, const std::string& color, double radius_m);

  // The complete SVG document.
  std::string Render() const;

  Status WriteFile(const std::string& path) const;

 private:
  double X(double x) const { return (x - bounds_.min_x + margin_) * scale_; }
  double Y(double y) const { return (bounds_.max_y - y + margin_) * scale_; }
  void Circle(const Point& center, double radius_m, const std::string& fill,
              double opacity);

  Rect bounds_;
  double scale_;
  double margin_ = 2.0;  // Meters of whitespace around the plan.
  std::string body_;
};

}  // namespace ipqs

#endif  // IPQS_SIM_SVG_MAP_H_
