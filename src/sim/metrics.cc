#include "sim/metrics.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/check.h"

namespace ipqs {

std::optional<double> RangeKlDivergence(const std::vector<ObjectId>& truth,
                                        const QueryResult& predicted,
                                        double epsilon) {
  if (truth.empty()) {
    return std::nullopt;
  }
  IPQS_CHECK_GT(epsilon, 0.0);

  std::set<ObjectId> support(truth.begin(), truth.end());
  for (const auto& [id, _] : predicted.objects) {
    support.insert(id);
  }

  // Smoothed Q over the union support. The normalizer is floored at |T| so
  // that an under-filled prediction (e.g. an empty result) reads as "the
  // truth objects got almost no mass" rather than renormalizing whatever
  // little mass there is back up to a full distribution — without the
  // floor, an empty prediction would smooth to exactly P and score a
  // perfect 0. Q stays sub-normalized (sums to <= 1), which keeps the
  // divergence non-negative.
  double q_total = 0.0;
  for (ObjectId id : support) {
    q_total += predicted.ProbabilityOf(id) + epsilon;
  }
  q_total = std::max(q_total, static_cast<double>(truth.size()));

  const double p = 1.0 / static_cast<double>(truth.size());
  double kl = 0.0;
  for (ObjectId id : truth) {
    const double q = (predicted.ProbabilityOf(id) + epsilon) / q_total;
    kl += p * std::log(p / q);
  }
  return kl;
}

double KnnHitRate(const QueryResult& predicted,
                  const std::vector<ObjectId>& truth, int k,
                  bool top_k_only) {
  if (truth.empty()) {
    return 0.0;
  }
  const std::vector<ObjectId> answer =
      predicted.TopObjects(top_k_only ? k : -1);
  int hits = 0;
  for (ObjectId id : truth) {
    if (std::find(answer.begin(), answer.end(), id) != answer.end()) {
      ++hits;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(truth.size());
}

bool TopKSuccess(const AnchorPointIndex& anchors,
                 const AnchorDistribution& dist, const Point& true_pos, int k,
                 double tolerance) {
  for (AnchorId a : dist.TopK(k)) {
    if (Distance(anchors.anchor(a).pos, true_pos) <= tolerance) {
      return true;
    }
  }
  return false;
}

}  // namespace ipqs
