#include "sim/svg_map.h"

#include <cstdio>
#include <fstream>

#include "common/check.h"

namespace ipqs {
namespace {

std::string Format(const char* fmt, double a, double b, double c, double d) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), fmt, a, b, c, d);
  return buf;
}

}  // namespace

SvgMap::SvgMap(const FloorPlan& plan, double pixels_per_meter)
    : bounds_(plan.BoundingBox()), scale_(pixels_per_meter) {
  IPQS_CHECK_GT(pixels_per_meter, 0.0);

  // Hallway footprints.
  for (const Hallway& h : plan.hallways()) {
    const Rect b = h.Bounds();
    body_ += Format(
        R"(<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" )", X(b.min_x),
        Y(b.max_y), b.Width() * scale_, b.Height() * scale_);
    body_ += "fill=\"#e5e7eb\" stroke=\"none\"/>\n";
  }
  // Rooms: outlined boxes with their names.
  for (const Room& r : plan.rooms()) {
    const Rect& b = r.bounds;
    body_ += Format(
        R"(<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" )", X(b.min_x),
        Y(b.max_y), b.Width() * scale_, b.Height() * scale_);
    body_ += "fill=\"#f8fafc\" stroke=\"#334155\" stroke-width=\"1.5\"/>\n";
    char text[160];
    std::snprintf(text, sizeof(text),
                  R"(<text x="%.1f" y="%.1f" font-size="%.1f" )",
                  X(b.Center().x), Y(b.Center().y), scale_ * 0.9);
    body_ += text;
    body_ += "fill=\"#94a3b8\" text-anchor=\"middle\">" + r.name +
             "</text>\n";
  }
  // Doors: small gaps rendered as accent squares on the wall.
  for (const Door& d : plan.doors()) {
    Circle(d.position, 0.4, "#0f766e", 1.0);
  }
}

void SvgMap::Circle(const Point& center, double radius_m,
                    const std::string& fill, double opacity) {
  body_ += Format(R"(<circle cx="%.1f" cy="%.1f" r="%.1f" opacity="%.3f" )",
                  X(center.x), Y(center.y), radius_m * scale_, opacity);
  body_ += "fill=\"" + fill + "\"/>\n";
}

void SvgMap::DrawWalkingGraph(const WalkingGraph& graph) {
  for (const Edge& e : graph.edges()) {
    const Point& a = e.geometry.a;
    const Point& b = e.geometry.b;
    body_ += Format(R"(<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" )",
                    X(a.x), Y(a.y), X(b.x), Y(b.y));
    body_ += e.kind == EdgeKind::kHallway
                 ? "stroke=\"#64748b\" stroke-width=\"1\"/>\n"
                 : "stroke=\"#64748b\" stroke-width=\"1\" "
                   "stroke-dasharray=\"4 3\"/>\n";
  }
}

void SvgMap::DrawReaders(const Deployment& deployment, bool show_ranges) {
  for (const Reader& r : deployment.readers()) {
    if (show_ranges) {
      Circle(r.pos, r.range, "#3b82f6", 0.15);
    }
    Circle(r.pos, 0.35, "#1d4ed8", 1.0);
  }
}

void SvgMap::DrawObjects(const std::vector<TrueObjectState>& states) {
  for (const TrueObjectState& s : states) {
    Circle(s.pos, 0.3, "#16a34a", 0.9);
  }
}

void SvgMap::DrawWindow(const Rect& window) {
  body_ += Format(
      R"(<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" )",
      X(window.min_x), Y(window.max_y), window.Width() * scale_,
      window.Height() * scale_);
  body_ += "fill=\"#eab308\" fill-opacity=\"0.18\" stroke=\"#a16207\" "
           "stroke-width=\"1.5\" stroke-dasharray=\"6 3\"/>\n";
}

void SvgMap::DrawDistribution(const AnchorPointIndex& anchors,
                              const AnchorDistribution& dist,
                              const std::string& color) {
  double peak = 0.0;
  for (const auto& [_, p] : dist.entries()) {
    peak = std::max(peak, p);
  }
  if (peak <= 0.0) {
    return;
  }
  for (const auto& [anchor, p] : dist.entries()) {
    Circle(anchors.anchor(anchor).pos, 0.45, color,
           0.15 + 0.85 * (p / peak));
  }
}

void SvgMap::DrawPoint(const Point& p, const std::string& color,
                       double radius_m) {
  Circle(p, radius_m, color, 1.0);
}

std::string SvgMap::Render() const {
  const double w = (bounds_.Width() + 2 * margin_) * scale_;
  const double h = (bounds_.Height() + 2 * margin_) * scale_;
  std::string out = Format(
      R"(<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">)",
      w, h, w, h);
  out += "\n<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  out += body_;
  out += "</svg>\n";
  return out;
}

Status SvgMap::WriteFile(const std::string& path) const {
  std::ofstream file(path);
  if (!file) {
    return Status::Internal("cannot open for writing: " + path);
  }
  file << Render();
  return file.good() ? Status::Ok()
                     : Status::Internal("short write to " + path);
}

}  // namespace ipqs
