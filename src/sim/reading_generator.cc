#include "sim/reading_generator.h"

#include "common/check.h"

namespace ipqs {

ReadingGenerator::ReadingGenerator(const Deployment* deployment,
                                   const SensingModel& sensing, Rng* rng)
    : deployment_(deployment), sensing_(sensing), rng_(rng) {
  IPQS_CHECK(deployment != nullptr);
  IPQS_CHECK(rng != nullptr);
}

std::vector<RawReading> ReadingGenerator::Generate(
    const std::vector<TrueObjectState>& states, int64_t time) {
  std::vector<RawReading> readings;
  for (const TrueObjectState& s : states) {
    for (ReaderId r : deployment_->Covering(s.pos)) {
      ++stats_.opportunities;
      if (sensing_.DetectsThisSecond(*rng_)) {
        ++stats_.detections;
        readings.push_back(RawReading{s.id, r, time});
      } else {
        ++stats_.false_negatives;
      }
    }
  }
  return readings;
}

}  // namespace ipqs
