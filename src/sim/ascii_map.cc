#include "sim/ascii_map.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/check.h"

namespace ipqs {

AsciiMap::AsciiMap(const FloorPlan& plan, double meters_per_cell)
    : plan_(plan), scale_(meters_per_cell), bounds_(plan.BoundingBox()) {
  IPQS_CHECK_GT(meters_per_cell, 0.0);
  width_ = std::max(1, static_cast<int>(std::ceil(bounds_.Width() / scale_))) +
           2;  // +2 for the outer wall.
  height_ =
      std::max(1, static_cast<int>(std::ceil(bounds_.Height() / scale_))) + 2;
  grid_.assign(height_, std::string(width_, '#'));

  // Carve out walkable space: hallways first, then room interiors; room
  // cells hugging their room's boundary render as walls so adjacent rooms
  // stay visually separate.
  for (int cy = 0; cy < height_; ++cy) {
    for (int cx = 0; cx < width_; ++cx) {
      const Point center{bounds_.min_x + (cx - 1 + 0.5) * scale_,
                         bounds_.max_y - (cy - 1 + 0.5) * scale_};
      if (plan_.LocateHallway(center).has_value()) {
        grid_[cy][cx] = ' ';
      } else if (const auto room = plan_.LocateRoom(center)) {
        const Rect& b = plan_.room(*room).bounds;
        const double to_wall =
            std::min({center.x - b.min_x, b.max_x - center.x,
                      center.y - b.min_y, b.max_y - center.y});
        grid_[cy][cx] = to_wall < scale_ * 0.6 ? '#' : '.';
      }
    }
  }
  // Punch the doors through: the wall point nearest the door position.
  for (const Door& d : plan_.doors()) {
    const Rect& b = plan_.room(d.room).bounds;
    const Point wall{std::clamp(d.position.x, b.min_x + scale_ / 2,
                                b.max_x - scale_ / 2),
                     std::clamp(d.position.y, b.min_y + scale_ / 2,
                                b.max_y - scale_ / 2)};
    Set(wall, '+');
  }
}

int AsciiMap::CellX(double x) const {
  return static_cast<int>(std::floor((x - bounds_.min_x) / scale_)) + 1;
}

int AsciiMap::CellY(double y) const {
  return static_cast<int>(std::floor((bounds_.max_y - y) / scale_)) + 1;
}

void AsciiMap::Set(const Point& p, char c) {
  const int cx = CellX(p.x);
  const int cy = CellY(p.y);
  if (InGrid(cx, cy)) {
    grid_[cy][cx] = c;
  }
}

void AsciiMap::MarkReaders(const Deployment& deployment) {
  for (const Reader& r : deployment.readers()) {
    Set(r.pos, 'R');
  }
}

void AsciiMap::MarkObjects(const std::vector<TrueObjectState>& states) {
  for (const TrueObjectState& s : states) {
    Set(s.pos, 'o');
  }
}

void AsciiMap::MarkWindow(const Rect& window) {
  const int x0 = CellX(window.min_x);
  const int x1 = CellX(window.max_x);
  const int y0 = CellY(window.max_y);  // Top row.
  const int y1 = CellY(window.min_y);  // Bottom row.
  for (int cx = x0; cx <= x1; ++cx) {
    if (InGrid(cx, y0)) grid_[y0][cx] = 'q';
    if (InGrid(cx, y1)) grid_[y1][cx] = 'q';
  }
  for (int cy = y0; cy <= y1; ++cy) {
    if (InGrid(x0, cy)) grid_[cy][x0] = 'q';
    if (InGrid(x1, cy)) grid_[cy][x1] = 'q';
  }
}

void AsciiMap::MarkPoint(const Point& p, char c) { Set(p, c); }

void AsciiMap::MarkDistribution(const AnchorPointIndex& anchors,
                                const AnchorDistribution& dist) {
  // Accumulate probability per grid cell, then draw deciles 1..9.
  std::map<std::pair<int, int>, double> mass;
  for (const auto& [anchor, p] : dist.entries()) {
    const Point pos = anchors.anchor(anchor).pos;
    mass[{CellX(pos.x), CellY(pos.y)}] += p;
  }
  double peak = 0.0;
  for (const auto& [_, m] : mass) {
    peak = std::max(peak, m);
  }
  if (peak <= 0.0) {
    return;
  }
  for (const auto& [cell, m] : mass) {
    const int decile = std::clamp(
        static_cast<int>(std::ceil(9.0 * m / peak)), 1, 9);
    if (InGrid(cell.first, cell.second)) {
      grid_[cell.second][cell.first] = static_cast<char>('0' + decile);
    }
  }
}

std::string AsciiMap::Render() const {
  std::string out;
  out.reserve(static_cast<size_t>(height_) * (width_ + 1));
  for (const std::string& row : grid_) {
    out += row;
    out += '\n';
  }
  return out;
}

}  // namespace ipqs
