#ifndef IPQS_SIM_EXPERIMENT_H_
#define IPQS_SIM_EXPERIMENT_H_

#include <cstdint>

#include "common/statusor.h"
#include "sim/metrics.h"
#include "sim/simulation.h"

namespace ipqs {

// The evaluation protocol of Section 5: warm the world up, then at each of
// `num_timestamps` sampled timestamps issue randomized range windows and a
// fixed panel of kNN query points against both engines, scoring them
// against ground truth.
struct ExperimentConfig {
  SimulationConfig sim;
  int warmup_seconds = 240;
  int num_timestamps = 50;
  int seconds_between_timestamps = 10;
  // Range protocol: "100 query windows are randomly generated as rectangles
  // at each time stamp".
  int range_queries_per_timestamp = 100;
  double window_area_fraction = 0.02;  // Table 2 default: 2%.
  // kNN protocol: "30 random indoor locations ... at 50 time stamps".
  int knn_query_points = 30;
  int k = 3;  // Table 2 default.
  // Top-k success: an object's location counts as matched when a top-k
  // anchor lies within this Euclidean distance of its true position.
  double topk_tolerance = 2.0;

  bool eval_range = true;
  bool eval_knn = true;
  bool eval_topk = true;

  // Serve each timestamp's queries as ONE batch per engine through the
  // QueryScheduler (shared pruning tables, one inference pass over the
  // union of candidates) instead of one engine call per query. Query
  // windows/points are drawn in the identical rng order, and batched
  // answers are byte-identical to serial ones, so scores never move —
  // only the work counters do.
  bool batch_queries = false;

  // Collect QueryExplain provenance records for the LAST timestamp's PF
  // queries (serial path: one record per engine call; batched path: one
  // per batch slot, via the scheduler's batch explain) into
  // ExperimentResult::explains. Strictly observational — answers and
  // scores are byte-identical with this on or off.
  bool collect_explain = false;
};

// Averaged metrics of one experiment run (one sweep point of a figure).
struct ExperimentResult {
  // Range accuracy (Figures 9, 11a, 12a, 13a).
  double kl_pf = 0.0;
  double kl_sm = 0.0;
  int64_t range_windows_scored = 0;

  // kNN accuracy (Figures 10, 11b, 12b, 13b).
  double hit_pf = 0.0;
  double hit_sm = 0.0;

  // Location accuracy (Figures 11c, 12c, 13c).
  double top1 = 0.0;
  double top2 = 0.0;

  // Work counters for the performance/ablation benches.
  EngineStats pf_stats;
  EngineStats sm_stats;
  ParticleCache::Stats cache_stats;
  // Deadline-degradation tallies (all at kFull when no deadline is set).
  DegradeStats pf_degrade;

  // Fault-injection tallies (all zero when the FaultPlan is off).
  FaultInjector::Stats fault_stats;
  DataCollector::IngestStats ingest_stats;

  // Standing-query subscription tallies (all zero when
  // SimulationConfig::num_subscriptions == 0).
  SubscriptionStats sub_stats;

  // Reader-health transition tallies (all zero when
  // SimulationConfig::health.enabled is false).
  ReaderHealthStats health_stats;

  // PF-engine provenance for the last timestamp's queries (empty unless
  // ExperimentConfig::collect_explain).
  std::vector<obs::QueryExplain> explains;
};

class Experiment {
 public:
  explicit Experiment(const ExperimentConfig& config) : config_(config) {}

  StatusOr<ExperimentResult> Run();

  // A random rectangular query window covering `area_fraction` of the
  // plan's total area, with aspect ratio in [0.5, 2], placed uniformly in
  // the bounding box.
  static Rect RandomWindow(const FloorPlan& plan, double area_fraction,
                           Rng& rng);

  // A random indoor location (a uniformly chosen anchor point's position).
  static Point RandomIndoorPoint(const AnchorPointIndex& anchors, Rng& rng);

 private:
  ExperimentConfig config_;
};

}  // namespace ipqs

#endif  // IPQS_SIM_EXPERIMENT_H_
