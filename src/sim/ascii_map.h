#ifndef IPQS_SIM_ASCII_MAP_H_
#define IPQS_SIM_ASCII_MAP_H_

#include <string>
#include <vector>

#include "filter/anchor_distribution.h"
#include "floorplan/floor_plan.h"
#include "graph/anchor_points.h"
#include "rfid/deployment.h"
#include "sim/trace_generator.h"

namespace ipqs {

// Renders a floor plan and overlays (readers, objects, query windows,
// location distributions) as plain text — the library's built-in way to
// *see* what the tracker believes. One character covers
// `meters_per_cell` x `meters_per_cell` of floor.
//
// Legend: '#' wall, '.' room interior, ' ' hallway, '+' door,
// 'R' reader, 'o' object, '*' query point, digits 1..9 probability mass
// (deciles of the cell's accumulated probability).
class AsciiMap {
 public:
  explicit AsciiMap(const FloorPlan& plan, double meters_per_cell = 1.0);

  // Overlays; later marks overwrite earlier ones.
  void MarkReaders(const Deployment& deployment);
  void MarkObjects(const std::vector<TrueObjectState>& states);
  void MarkWindow(const Rect& window);  // Corners and edges as 'q'.
  void MarkPoint(const Point& p, char c);
  // Accumulates a distribution's probability per cell and draws deciles.
  void MarkDistribution(const AnchorPointIndex& anchors,
                        const AnchorDistribution& dist);

  std::string Render() const;

 private:
  bool InGrid(int cx, int cy) const {
    return cx >= 0 && cx < width_ && cy >= 0 && cy < height_;
  }
  int CellX(double x) const;
  int CellY(double y) const;
  void Set(const Point& p, char c);

  const FloorPlan& plan_;
  double scale_;
  Rect bounds_;
  int width_ = 0;
  int height_ = 0;
  std::vector<std::string> grid_;  // grid_[row][col]; row 0 = top (max y).
};

}  // namespace ipqs

#endif  // IPQS_SIM_ASCII_MAP_H_
