#include "sim/experiment.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <vector>

#include "common/check.h"
#include "query/query_scheduler.h"

namespace ipqs {

Rect Experiment::RandomWindow(const FloorPlan& plan, double area_fraction,
                              Rng& rng) {
  IPQS_CHECK_GT(area_fraction, 0.0);
  const double area = plan.TotalArea() * area_fraction;
  const double aspect = rng.Uniform(0.5, 2.0);
  const double w = std::sqrt(area * aspect);
  const double h = area / w;
  const Rect box = plan.BoundingBox();
  const double cx = rng.Uniform(box.min_x, box.max_x);
  const double cy = rng.Uniform(box.min_y, box.max_y);
  return Rect::FromCenter({cx, cy}, w, h);
}

Point Experiment::RandomIndoorPoint(const AnchorPointIndex& anchors,
                                    Rng& rng) {
  IPQS_CHECK_GT(anchors.num_anchors(), 0);
  const AnchorId a =
      static_cast<AnchorId>(rng.UniformIndex(anchors.num_anchors()));
  return anchors.anchor(a).pos;
}

StatusOr<ExperimentResult> Experiment::Run() {
  std::unique_ptr<Simulation> sim;
  IPQS_ASSIGN_OR_RETURN(sim, Simulation::Create(config_.sim));

  sim->Run(config_.warmup_seconds);

  // Fixed panel of kNN query points, reused at every timestamp.
  std::vector<Point> knn_points;
  for (int i = 0; i < config_.knn_query_points; ++i) {
    knn_points.push_back(RandomIndoorPoint(sim->anchors(), sim->query_rng()));
  }

  MeanAccumulator kl_pf;
  MeanAccumulator kl_sm;
  MeanAccumulator hit_pf;
  MeanAccumulator hit_sm;
  MeanAccumulator top1;
  MeanAccumulator top2;

  std::optional<QueryScheduler> pf_scheduler;
  std::optional<QueryScheduler> sm_scheduler;
  if (config_.batch_queries) {
    pf_scheduler.emplace(&sim->pf_engine());
    sm_scheduler.emplace(&sim->sm_engine());
  }

  std::vector<obs::QueryExplain> explains;
  const int64_t pf_deadline_ms = sim->pf_engine().config().deadline_ms;

  for (int ts = 0; ts < config_.num_timestamps; ++ts) {
    // Provenance is collected for the final timestamp only: one
    // steady-state portrait of the serving path, not num_timestamps of
    // them.
    const bool explain_ts =
        config_.collect_explain && ts == config_.num_timestamps - 1;
    sim->Run(config_.seconds_between_timestamps);
    const int64_t now = sim->now();
    const std::vector<TrueObjectState>& states = sim->true_states();

    if (config_.batch_queries) {
      // Batched serving: identical query draws, identical answers (the
      // scheduler is pinned byte-identical to serial evaluation), but one
      // scheduler pass per engine instead of one engine call per query.
      std::vector<BatchQuery> batch;
      std::vector<std::vector<ObjectId>> truths;
      if (config_.eval_range) {
        for (int i = 0; i < config_.range_queries_per_timestamp; ++i) {
          const Rect window = RandomWindow(sim->plan(),
                                           config_.window_area_fraction,
                                           sim->query_rng());
          std::vector<ObjectId> truth =
              GroundTruth::RangeResult(states, window);
          if (truth.empty()) {
            continue;  // KL undefined; the paper averages populated windows.
          }
          batch.push_back(BatchQuery::Range(window));
          truths.push_back(std::move(truth));
        }
      }
      const size_t num_range = batch.size();
      if (config_.eval_knn) {
        for (const Point& q : knn_points) {
          const GraphLocation q_loc =
              sim->graph().NearestLocation(q, /*prefer_hallways=*/true);
          std::vector<ObjectId> truth =
              sim->ground_truth().KnnResult(states, q_loc, config_.k);
          if (truth.empty()) {
            continue;
          }
          batch.push_back(BatchQuery::Knn(q, config_.k));
          truths.push_back(std::move(truth));
        }
      }
      const std::vector<BatchAnswer> pf =
          explain_ts ? pf_scheduler->EvaluateBatch(batch, now, pf_deadline_ms,
                                                   &explains)
                     : pf_scheduler->EvaluateBatch(batch, now);
      const std::vector<BatchAnswer> sm = sm_scheduler->EvaluateBatch(batch, now);
      for (size_t i = 0; i < batch.size(); ++i) {
        if (i < num_range) {
          kl_pf.AddOptional(RangeKlDivergence(truths[i], pf[i].range));
          kl_sm.AddOptional(RangeKlDivergence(truths[i], sm[i].range));
        } else {
          hit_pf.Add(KnnHitRate(pf[i].knn.result, truths[i], config_.k,
                                /*top_k_only=*/false));
          hit_sm.Add(KnnHitRate(sm[i].knn.result, truths[i], config_.k,
                                /*top_k_only=*/true));
        }
      }
    }

    if (!config_.batch_queries && config_.eval_range) {
      for (int i = 0; i < config_.range_queries_per_timestamp; ++i) {
        const Rect window = RandomWindow(sim->plan(),
                                         config_.window_area_fraction,
                                         sim->query_rng());
        const std::vector<ObjectId> truth =
            GroundTruth::RangeResult(states, window);
        if (truth.empty()) {
          continue;  // KL undefined; the paper averages populated windows.
        }
        QueryResult pf;
        if (explain_ts) {
          obs::QueryExplain record;
          pf = sim->pf_engine().EvaluateRange(window, now, pf_deadline_ms,
                                              &record);
          explains.push_back(std::move(record));
        } else {
          pf = sim->pf_engine().EvaluateRange(window, now);
        }
        const QueryResult sm = sim->sm_engine().EvaluateRange(window, now);
        kl_pf.AddOptional(RangeKlDivergence(truth, pf));
        kl_sm.AddOptional(RangeKlDivergence(truth, sm));
      }
    }

    if (!config_.batch_queries && config_.eval_knn) {
      for (const Point& q : knn_points) {
        const GraphLocation q_loc =
            sim->graph().NearestLocation(q, /*prefer_hallways=*/true);
        const std::vector<ObjectId> truth =
            sim->ground_truth().KnnResult(states, q_loc, config_.k);
        if (truth.empty()) {
          continue;
        }
        KnnResult pf;
        if (explain_ts) {
          obs::QueryExplain record;
          pf = sim->pf_engine().EvaluateKnn(q, config_.k, now, pf_deadline_ms,
                                            &record);
          explains.push_back(std::move(record));
        } else {
          pf = sim->pf_engine().EvaluateKnn(q, config_.k, now);
        }
        const KnnResult sm = sim->sm_engine().EvaluateKnn(q, config_.k, now);
        // PF: score the full Algorithm 4 result set. SM: only its maximum
        // probability result set (top-k), per the paper's methodology.
        hit_pf.Add(KnnHitRate(pf.result, truth, config_.k,
                              /*top_k_only=*/false));
        hit_sm.Add(KnnHitRate(sm.result, truth, config_.k,
                              /*top_k_only=*/true));
      }
    }

    if (config_.eval_topk) {
      for (const TrueObjectState& s : states) {
        const AnchorDistribution* dist =
            sim->pf_engine().InferObject(s.id, now);
        if (dist == nullptr || dist->empty()) {
          continue;  // Never detected yet.
        }
        top1.Add(TopKSuccess(sim->anchors(), *dist, s.pos, 1,
                             config_.topk_tolerance)
                     ? 1.0
                     : 0.0);
        top2.Add(TopKSuccess(sim->anchors(), *dist, s.pos, 2,
                             config_.topk_tolerance)
                     ? 1.0
                     : 0.0);
      }
    }
  }

  ExperimentResult result;
  result.kl_pf = kl_pf.Mean();
  result.kl_sm = kl_sm.Mean();
  result.range_windows_scored = kl_pf.count();
  result.hit_pf = hit_pf.Mean();
  result.hit_sm = hit_sm.Mean();
  result.top1 = top1.Mean();
  result.top2 = top2.Mean();
  result.pf_stats = sim->pf_engine().stats();
  result.sm_stats = sim->sm_engine().stats();
  result.cache_stats = sim->pf_engine().cache_stats();
  result.pf_degrade = sim->pf_engine().degrade_stats();
  result.fault_stats = sim->fault_stats();
  result.ingest_stats = sim->collector().ingest_stats();
  if (sim->subscriptions() != nullptr) {
    result.sub_stats = sim->subscriptions()->stats();
  }
  result.health_stats = sim->health_stats();
  result.explains = std::move(explains);
  return result;
}

}  // namespace ipqs
