#include "sim/trace_generator.h"

#include <algorithm>

#include "common/check.h"

namespace ipqs {

TraceGenerator::TraceGenerator(const WalkingGraph* graph,
                               const FloorPlan* plan,
                               const TraceConfig& config, Rng* rng)
    : graph_(graph), plan_(plan), config_(config), rng_(rng) {
  IPQS_CHECK(graph != nullptr);
  IPQS_CHECK(plan != nullptr);
  IPQS_CHECK(rng != nullptr);
  IPQS_CHECK_GT(config.num_objects, 0);
  IPQS_CHECK(!plan->rooms().empty()) << "trace generator needs rooms";

  room_center_node_.assign(plan->rooms().size(), kInvalidId);
  for (const Node& n : graph->nodes()) {
    if (n.kind == NodeKind::kRoomCenter) {
      IPQS_CHECK(n.room >= 0 &&
                 n.room < static_cast<RoomId>(room_center_node_.size()));
      room_center_node_[n.room] = n.id;
    }
  }
  for (NodeId id : room_center_node_) {
    IPQS_CHECK_NE(id, kInvalidId) << "room without a graph node";
  }
  Reset();
}

GraphLocation TraceGenerator::RoomCenterLocation(RoomId room) const {
  return graph_->LocationAtNode(room_center_node_[room]);
}

void TraceGenerator::Reset() {
  states_.assign(config_.num_objects, TrueObjectState{});
  motions_.assign(config_.num_objects, Motion{});

  // Cumulative edge lengths for uniform sampling along the graph.
  std::vector<double> lengths;
  lengths.reserve(graph_->num_edges());
  for (const Edge& e : graph_->edges()) {
    lengths.push_back(e.length);
  }

  for (int i = 0; i < config_.num_objects; ++i) {
    TrueObjectState& s = states_[i];
    s.id = static_cast<ObjectId>(i);
    const EdgeId edge = static_cast<EdgeId>(rng_->Categorical(lengths));
    s.loc = GraphLocation{edge, rng_->Uniform(0.0, graph_->edge(edge).length)};
    s.dwelling = false;
    s.in_room = false;
    s.room = kInvalidId;
    motions_[i].lateral = rng_->Uniform01();
    PickDestination(i);
    UpdateDerivedPosition(i);
  }
}

void TraceGenerator::PickDestination(int i) {
  TrueObjectState& s = states_[i];
  Motion& m = motions_[i];

  GraphLocation dest_loc;
  if (rng_->Bernoulli(config_.hallway_stop_probability)) {
    // Hallway stop: a uniform spot on the hallway skeleton.
    std::vector<double> lengths(graph_->num_edges(), 0.0);
    for (const Edge& e : graph_->edges()) {
      if (e.kind == EdgeKind::kHallway) {
        lengths[e.id] = e.length;
      }
    }
    const EdgeId edge = static_cast<EdgeId>(rng_->Categorical(lengths));
    dest_loc =
        GraphLocation{edge, rng_->Uniform(0.0, graph_->edge(edge).length)};
    m.destination = kInvalidId;
  } else {
    RoomId dest =
        static_cast<RoomId>(rng_->UniformIndex(plan_->rooms().size()));
    if (dest == s.room && plan_->rooms().size() > 1) {
      dest = (dest + 1) % static_cast<RoomId>(plan_->rooms().size());
    }
    m.destination = dest;
    dest_loc = RoomCenterLocation(dest);
  }

  auto path = FindShortestPath(*graph_, s.loc, dest_loc);
  IPQS_CHECK(path.ok()) << path.status().ToString();
  m.path = std::move(path).value();
  m.path_pos = 0.0;
  m.lateral = rng_->Uniform01();
  s.speed = std::max(rng_->Gaussian(config_.speed_mean, config_.speed_stddev),
                     config_.min_speed);
}

void TraceGenerator::UpdateDerivedPosition(int i) {
  TrueObjectState& s = states_[i];
  const Motion& m = motions_[i];

  if (s.in_room) {
    s.pos = m.room_pos;
    return;
  }
  const Point on_line = graph_->PositionOf(s.loc);
  const Edge& e = graph_->edge(s.loc.edge);
  if (e.kind == EdgeKind::kHallway) {
    const Hallway& h = plan_->hallway(e.hallway);
    const double off = (m.lateral - 0.5) * h.width;
    // Perpendicular to the (axis-aligned) centerline.
    s.pos = h.IsHorizontal() ? Point{on_line.x, on_line.y + off}
                             : Point{on_line.x + off, on_line.y};
  } else {
    s.pos = on_line;  // Room stubs carry no lateral freedom.
  }
}

void TraceGenerator::Tick() {
  for (int i = 0; i < config_.num_objects; ++i) {
    TrueObjectState& s = states_[i];
    Motion& m = motions_[i];

    if (s.dwelling) {
      if (rng_->Bernoulli(config_.room_stay_probability)) {
        continue;  // Keeps dwelling; position unchanged.
      }
      // Leaves: pick a fresh destination from where it stands.
      if (s.in_room) {
        s.loc = RoomCenterLocation(s.room);
        s.in_room = false;
        s.room = kInvalidId;
      }
      s.dwelling = false;
      PickDestination(i);
    }

    if (m.path.empty()) {
      // Degenerate path (already at the destination): arrive immediately.
      m.path_pos = 0.0;
    } else {
      m.path_pos += s.speed;
      s.loc = m.path.Locate(m.path_pos);
    }

    if (m.path.empty() || m.path_pos >= m.path.Length()) {
      // Arrived: dwell (inside the destination room, or right here at the
      // hallway stop).
      s.dwelling = true;
      if (m.destination != kInvalidId) {
        s.in_room = true;
        s.room = m.destination;
        const Rect& b = plan_->room(s.room).bounds;
        m.room_pos = Point{rng_->Uniform(b.min_x, b.max_x),
                           rng_->Uniform(b.min_y, b.max_y)};
      }
    }
    UpdateDerivedPosition(i);
  }
}

}  // namespace ipqs
