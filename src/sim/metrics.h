#ifndef IPQS_SIM_METRICS_H_
#define IPQS_SIM_METRICS_H_

#include <optional>
#include <vector>

#include "filter/anchor_distribution.h"
#include "graph/anchor_points.h"
#include "query/range_query.h"
#include "rfid/reader.h"

namespace ipqs {

// Kullback-Leibler divergence D(P || Q) between the ground-truth range
// membership and a predicted probabilistic range result (Equation 7).
//
// P is uniform over the true result set T; Q is the predicted result
// normalized over the union support T ∪ R and smoothed with `epsilon`
// (otherwise a single missed object makes the divergence infinite).
// Returns nullopt when T is empty (the divergence is undefined; the
// experiment harness skips such windows, mirroring the paper's averaging
// over populated queries).
std::optional<double> RangeKlDivergence(const std::vector<ObjectId>& truth,
                                        const QueryResult& predicted,
                                        double epsilon = 1e-3);

// kNN hit rate: |answer ∩ truth| / |truth|. With `top_k_only`, the answer
// is first trimmed to its k most probable objects — the paper does this for
// the symbolic baseline ("we only consider the maximum probability result
// set"), while the particle filter's Algorithm 4 result is used as-is.
double KnnHitRate(const QueryResult& predicted,
                  const std::vector<ObjectId>& truth, int k,
                  bool top_k_only);

// Top-k success (PF-only metric): true when one of the k most probable
// anchor points of `dist` lies within `tolerance` meters (Euclidean) of
// the object's true position.
bool TopKSuccess(const AnchorPointIndex& anchors,
                 const AnchorDistribution& dist, const Point& true_pos, int k,
                 double tolerance);

// Streaming mean helper used by the experiment harness.
class MeanAccumulator {
 public:
  void Add(double value) {
    sum_ += value;
    ++count_;
  }
  void AddOptional(const std::optional<double>& value) {
    if (value.has_value()) {
      Add(*value);
    }
  }
  double Mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }
  int64_t count() const { return count_; }

 private:
  double sum_ = 0.0;
  int64_t count_ = 0;
};

}  // namespace ipqs

#endif  // IPQS_SIM_METRICS_H_
