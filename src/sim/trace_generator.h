#ifndef IPQS_SIM_TRACE_GENERATOR_H_
#define IPQS_SIM_TRACE_GENERATOR_H_

#include <vector>

#include "common/rng.h"
#include "floorplan/floor_plan.h"
#include "graph/shortest_path.h"
#include "graph/walking_graph.h"
#include "rfid/reader.h"

namespace ipqs {

// Parameters of the true trace generator (Section 5.1): every object
// repeatedly picks a random destination room, walks there along the
// shortest walking-graph path at a Gaussian speed, dwells, and repeats.
struct TraceConfig {
  int num_objects = 200;
  double speed_mean = 1.0;
  double speed_stddev = 0.1;
  double min_speed = 0.3;
  // Per-second probability of staying inside the current room (matches the
  // filter's dwell model: leave with probability 0.1).
  double room_stay_probability = 0.9;
  // Probability that a freshly chosen destination is a random spot on a
  // hallway instead of a room (people waiting on a subway platform,
  // chatting in a corridor, ...). 0 reproduces the paper's trace model
  // where every trip ends in a room.
  double hallway_stop_probability = 0.0;
};

// Ground-truth state of one simulated object at the current second.
struct TrueObjectState {
  ObjectId id = kInvalidId;
  GraphLocation loc;         // Position on the walking graph.
  Point pos;                 // True 2-D position (lateral offset included).
  bool dwelling = false;     // Paused (in a room or at a hallway stop).
  bool in_room = false;      // Dwelling inside a room.
  RoomId room = kInvalidId;  // Valid when in_room.
  double speed = 1.0;
};

// Moves `num_objects` simulated people through the building, one second per
// Tick(). Objects walk on hallway centerline edges but their true 2-D
// position carries a random lateral offset across the hallway width (and a
// random interior point while dwelling in a room), consistent with the
// paper's assumption that the cross-hallway coordinate is unobservable.
class TraceGenerator {
 public:
  TraceGenerator(const WalkingGraph* graph, const FloorPlan* plan,
                 const TraceConfig& config, Rng* rng);

  // Draws fresh initial states: objects start at uniformly random positions
  // on the graph, already en route to a random room.
  void Reset();

  // Advances every object by one second.
  void Tick();

  const std::vector<TrueObjectState>& states() const { return states_; }
  const TraceConfig& config() const { return config_; }

 private:
  struct Motion {
    Path path;
    double path_pos = 0.0;
    RoomId destination = kInvalidId;  // kInvalidId for a hallway stop.
    double lateral = 0.5;  // Fraction across the hallway width.
    Point room_pos;        // Dwell position inside the current room.
  };

  void PickDestination(int i);
  void UpdateDerivedPosition(int i);
  GraphLocation RoomCenterLocation(RoomId room) const;

  const WalkingGraph* graph_;
  const FloorPlan* plan_;
  TraceConfig config_;
  Rng* rng_;
  std::vector<TrueObjectState> states_;
  std::vector<Motion> motions_;
  std::vector<NodeId> room_center_node_;  // Per room.
};

}  // namespace ipqs

#endif  // IPQS_SIM_TRACE_GENERATOR_H_
