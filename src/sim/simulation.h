#ifndef IPQS_SIM_SIMULATION_H_
#define IPQS_SIM_SIMULATION_H_

#include <cstdint>
#include <memory>

#include "common/statusor.h"
#include "faults/fault_injector.h"
#include "obs/timeseries.h"
#include "floorplan/io.h"
#include "persist/checkpoint.h"
#include "floorplan/office_generator.h"
#include "graph/anchor_graph.h"
#include "graph/anchor_points.h"
#include "graph/graph_builder.h"
#include "query/query_engine.h"
#include "query/subscription.h"
#include "rfid/history_store.h"
#include "sim/ground_truth.h"
#include "sim/reading_generator.h"
#include "sim/trace_generator.h"
#include "symbolic/deployment_graph.h"

namespace ipqs {

// Everything needed to stand up the full simulated system of Figure 8:
// the building, the deployment, the moving objects, the RFID stream, the
// two competing query engines, and the ground truth.
struct SimulationConfig {
  OfficeConfig office;            // 30 rooms / 4 hallways by default.
  // When set, use this plan instead of generating the office, and (when
  // non-empty) these reader placements instead of the uniform deployment.
  // Lets experiments run against buildings loaded from text files
  // (floorplan/io.h).
  std::optional<FloorPlan> custom_plan;
  std::vector<ReaderSpec> custom_readers;
  int num_readers = 19;           // Paper's deployment.
  double activation_range = 2.0;  // Meters (Table 2 default).
  double anchor_spacing = 1.0;    // Meters between anchor points.
  SensingConfig sensing;
  TraceConfig trace;              // 200 objects by default.
  FilterConfig filter;            // 64 particles by default.
  SymbolicConfig symbolic;
  double max_speed = 1.5;         // u_max for pruning & symbolic model.
  bool use_pruning = true;
  bool use_cache = true;
  // Shared distance tables for kNN pruning in both engines (see
  // EngineConfig::use_distance_index); off = exact per-query Dijkstra.
  bool use_distance_index = true;
  // Preprocessed distance oracle for kNN pruning in both engines (see
  // EngineConfig::use_distance_oracle); answers stay byte-identical in
  // every mode, only the pruning work changes.
  bool use_distance_oracle = false;
  // Fan-out width for per-object inference in both engines (see
  // EngineConfig::num_threads); answers are independent of this knob.
  int num_threads = 1;
  // Method the comparison engine (`sm_engine()`) runs; the paper compares
  // against kSymbolicModel, kLastReading is the naive sanity floor.
  InferenceMethod baseline_method = InferenceMethod::kSymbolicModel;
  uint64_t seed = 42;
  // Fault injection (src/faults/): when any channel is enabled the raw
  // reading stream is degraded between ReadingGenerator and the ingestion
  // path. The default plan is a no-op and costs nothing.
  FaultPlan faults;
  // Ingestion hardening (reorder buffer window etc.); the default is the
  // original trusting pass-through collector.
  CollectorConfig collector;
  // Reader health monitoring (src/health/): with health.enabled, a monitor
  // ticks once per simulated second after the ingest flush, feeds both
  // engines' silence-trust and coverage_degraded annotations, and registers
  // health.* metrics. Off by default: answers are byte-identical to a
  // build without the monitor (pinned by tests/determinism_test.cc).
  ReaderHealthConfig health;
  // Observability (all optional; see EngineConfig). With `metrics` set,
  // the PF engine registers under "pf", the baseline under "sm", and the
  // data collector under "collector". With `sampler` set, every Step()
  // snapshots the registry into the time-series ring (sampler and metrics
  // should share the registry, or the samples are empty). None of these
  // perturb simulation state or query answers.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceRecorder* trace_recorder = nullptr;
  obs::TimeSeriesSampler* sampler = nullptr;
  // Per-query deadline forwarded to both engines (see
  // EngineConfig::deadline_ms); 0 = never degrade.
  int64_t deadline_ms = 0;
  DegradePolicy degrade;
  // Standing-query subscriptions (src/query/subscription.h). With
  // num_subscriptions > 0, Init registers a random mix of range/kNN
  // subscriptions against a DEDICATED subscription engine (PF method, own
  // cache, private metrics registry) and Step ticks the manager every
  // sub_poll_interval_seconds. The subscription path shares only the
  // const collector with the serving engines, so ad-hoc pf/sm answers are
  // byte-identical with subscriptions on or off (pinned by
  // tests/determinism_test.cc). Subscription windows/points are drawn
  // from a dedicated RNG stream — never from world or query streams.
  int num_subscriptions = 0;
  int sub_poll_interval_seconds = 1;
  // Mix: the first ceil(fraction * n) subscriptions are range windows
  // (covering sub_window_area_fraction of the plan), the rest kNN points
  // with k = sub_k.
  double sub_range_fraction = 0.5;
  int sub_k = 3;
  double sub_window_area_fraction = 0.02;
  // Off = the manager re-evaluates every subscription each tick (the
  // poll-everything baseline); answers and deltas are byte-identical.
  bool sub_incremental = true;
  // Durability (src/persist/): with persist.dir set, every Step appends
  // the second's delivered batch to the WAL and a snapshot of the serving
  // state is cut every persist.snapshot_interval_seconds.
  persist::PersistConfig persist;
  // Recover from persist.dir instead of starting fresh: load the newest
  // valid snapshot, replay the WAL tail through the normal ingestion path,
  // and resume the clock at the last durable second. Restores the SERVING
  // state (collector, history store, PF cache, clock) — the world-side
  // generators (object traces, reading generation) restart from the
  // configured seed, so recovery is for serving queries over ingested
  // data, not for resuming trace generation mid-walk.
  bool persist_recover = false;
};

// What recovery found and replayed (valid when persist_recover was set).
struct RecoveryReport {
  bool recovered = false;
  bool from_snapshot = false;
  int64_t snapshot_time = -1;        // -1 when cold-started from the WAL.
  size_t wal_records_replayed = 0;
  int corrupt_snapshots_skipped = 0;
  int wal_tails_truncated = 0;
  int64_t replay_ns = 0;
};

// Owns the complete simulated world and keeps the particle-filter engine
// and the symbolic-model engine fed from the same raw reading stream so
// their answers are directly comparable.
class Simulation {
 public:
  static StatusOr<std::unique_ptr<Simulation>> Create(
      const SimulationConfig& config);

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  // Advances the world by one second: objects move, readers read, the data
  // collector ingests.
  void Step();
  void Run(int seconds);

  int64_t now() const { return now_; }

  const SimulationConfig& config() const { return config_; }
  const FloorPlan& plan() const { return plan_; }
  const WalkingGraph& graph() const { return graph_; }
  const AnchorPointIndex& anchors() const { return *anchors_; }
  const AnchorGraph& anchor_graph() const { return *anchor_graph_; }
  const Deployment& deployment() const { return deployment_; }
  const DeploymentGraph& deployment_graph() const { return *deployment_graph_; }
  const DataCollector& collector() const { return collector_; }
  // Full reading log (for historical queries via HistoricalEngine).
  const HistoryStore& history() const { return history_; }
  const GroundTruth& ground_truth() const { return *ground_truth_; }
  const std::vector<TrueObjectState>& true_states() const {
    return trace_->states();
  }
  const ReadingGenerator::Stats& reading_stats() const {
    return readings_->stats();
  }
  // Nullptr when the configured FaultPlan has every channel off.
  const FaultInjector* fault_injector() const { return injector_.get(); }
  FaultInjector::Stats fault_stats() const {
    return injector_ == nullptr ? FaultInjector::Stats{} : injector_->stats();
  }
  // Nullptr when config.health.enabled is false.
  const ReaderHealthMonitor* health_monitor() const { return health_.get(); }
  ReaderHealthStats health_stats() const {
    return health_ == nullptr ? ReaderHealthStats{} : health_->stats();
  }

  QueryEngine& pf_engine() { return *pf_engine_; }
  QueryEngine& sm_engine() { return *sm_engine_; }
  // Nullptr when config.num_subscriptions == 0.
  SubscriptionManager* subscriptions() { return subscriptions_.get(); }
  // The dedicated engine the subscriptions evaluate through (valid only
  // when subscriptions are configured).
  QueryEngine& sub_engine() { return *sub_engine_; }

  // Forces a snapshot of the current serving state (normally one is cut
  // every persist.snapshot_interval_seconds during Step). No-op error if
  // persistence is not enabled.
  Status CheckpointNow();

  // First persistence failure (WAL append or snapshot write), if any;
  // after a failure the simulation keeps running but stops persisting.
  const Status& persist_status() const { return persist_status_; }

  // Populated when the simulation was created with persist_recover.
  const RecoveryReport& recovery_report() const { return recovery_report_; }

  // A dedicated random stream for experiment-level draws (query windows,
  // query points), independent of the world's evolution.
  Rng& query_rng() { return query_rng_; }

 private:
  explicit Simulation(const SimulationConfig& config);
  Status Init();

  // Serving state as of now_, ready to write out.
  persist::SnapshotData BuildSnapshot() const;
  // Restores snapshot state (if any) and replays the WAL tail through the
  // normal ingestion path (Observe + Flush, second by second).
  Status RecoverServingState();

  SimulationConfig config_;
  FloorPlan plan_;
  WalkingGraph graph_;
  std::unique_ptr<AnchorPointIndex> anchors_;
  std::unique_ptr<AnchorGraph> anchor_graph_;
  Deployment deployment_;
  std::unique_ptr<DeploymentGraph> deployment_graph_;
  DataCollector collector_;
  HistoryStore history_;

  Rng world_rng_;
  Rng query_rng_;
  std::unique_ptr<TraceGenerator> trace_;
  std::unique_ptr<ReadingGenerator> readings_;
  std::unique_ptr<FaultInjector> injector_;
  std::unique_ptr<ReaderHealthMonitor> health_;
  std::unique_ptr<GroundTruth> ground_truth_;
  std::unique_ptr<QueryEngine> pf_engine_;
  std::unique_ptr<QueryEngine> sm_engine_;
  std::unique_ptr<QueryEngine> sub_engine_;
  std::unique_ptr<SubscriptionManager> subscriptions_;

  persist::CheckpointManager checkpoint_;
  persist::PersistMetrics persist_metrics_;
  Status persist_status_;
  RecoveryReport recovery_report_;

  int64_t now_ = 0;
};

}  // namespace ipqs

#endif  // IPQS_SIM_SIMULATION_H_
