#ifndef IPQS_SIM_GROUND_TRUTH_H_
#define IPQS_SIM_GROUND_TRUTH_H_

#include <vector>

#include "geom/rect.h"
#include "graph/shortest_path.h"
#include "graph/walking_graph.h"
#include "sim/trace_generator.h"

namespace ipqs {

// Ground truth query evaluation module (Section 5.1): answers range and kNN
// queries against the exact simulated object states, providing the baseline
// both probabilistic engines are scored against.
class GroundTruth {
 public:
  explicit GroundTruth(const WalkingGraph* graph);

  // Objects whose true 2-D position lies inside `window`, ascending by id.
  static std::vector<ObjectId> RangeResult(
      const std::vector<TrueObjectState>& states, const Rect& window);

  // The k objects closest to `query` by shortest network distance on the
  // walking graph (the paper's minimum indoor walking distance metric),
  // ties broken by ascending id.
  std::vector<ObjectId> KnnResult(const std::vector<TrueObjectState>& states,
                                  const GraphLocation& query, int k) const;

 private:
  const WalkingGraph* graph_;
};

}  // namespace ipqs

#endif  // IPQS_SIM_GROUND_TRUTH_H_
