#ifndef IPQS_HEALTH_READER_HEALTH_H_
#define IPQS_HEALTH_READER_HEALTH_H_

#include <cstdint>
#include <deque>
#include <string_view>
#include <vector>

#include "filter/particle_filter.h"
#include "obs/metrics.h"
#include "rfid/data_collector.h"
#include "rfid/reader.h"

namespace ipqs {

// Per-reader health verdict. The hysteresis cycle is
//   healthy -> suspect -> dead -> probation -> healthy
// with suspect -> probation (early recovery) and probation -> suspect
// (relapse) shortcuts. Suspect and dead silence is treated as
// uninformative by the measurement model; probation readings are accepted
// but flagged (health.probation_reads).
enum class ReaderHealth : uint8_t {
  kHealthy = 0,
  kSuspect = 1,
  kDead = 2,
  kProbation = 3,
};

std::string_view ToString(ReaderHealth health);

// Detection/recovery windows for the monitor. The zero-value `enabled`
// keeps the whole subsystem off: no state machine, every reader reported
// healthy, answers byte-identical to a build without the monitor.
struct ReaderHealthConfig {
  bool enabled = false;

  // Baseline learning window: the first `warmup_seconds` ticks only
  // accumulate per-reader reads/sec statistics (mean rate and the longest
  // naturally-occurring silent gap); no transitions fire during warmup.
  int warmup_seconds = 30;

  // A reader whose silent run exceeds its suspect window goes suspect; at
  // `dead_after_seconds` of silence it is declared dead. The per-reader
  // window is max(suspect_after_seconds, warmup_gap_slack * longest warmup
  // gap + 1) so readers with naturally bursty coverage are not
  // false-positived by a gap they exhibited while provably healthy.
  int suspect_after_seconds = 5;
  int dead_after_seconds = 20;
  double warmup_gap_slack = 2.0;

  // Recovery: any reading moves a suspect/dead reader to probation;
  // `probation_seconds` consecutive active seconds promote it to healthy.
  int probation_seconds = 5;

  // Readers whose warmup baseline rate is below this never trip the
  // silence detector — a reader that was near-silent while healthy gives
  // the monitor no signal to distinguish death from quiet coverage.
  // Heartbeat-capable readers (below) bypass this gate: their liveness
  // signal does not depend on tag traffic.
  double min_baseline_rate = 0.2;

  // A reader whose warmup heartbeat rate reaches this is heartbeat-capable:
  // it reports a status frame every second whether or not tags are in
  // range, so "active" means readings OR a heartbeat, silence means
  // neither, and the silence window stays at suspect_after_seconds (a
  // regular keepalive has no natural gaps to widen past). Deployments
  // without a heartbeat channel never reach the threshold and fall back to
  // tag-read statistics alone.
  double min_heartbeat_rate = 0.5;

  // Ghost-burst anomaly: a per-second rate above
  // ghost_factor * max(peak warmup rate, min_baseline_rate) sustained for
  // `anomaly_suspect_count` consecutive seconds marks the reader suspect
  // (its readings are flooding, not informative). The threshold anchors on
  // the busiest second the reader exhibited while provably healthy — not
  // its mean — so naturally bursty coverage (a junction reader seeing a
  // crowd pass) stays inside it.
  double ghost_factor = 8.0;
  int anomaly_suspect_count = 3;
};

// One state-machine transition, sequence-numbered so consumers (the
// subscription manager, run_experiment's summary) can drain incrementally.
struct ReaderHealthTransition {
  uint64_t seq = 0;
  int64_t time = 0;
  ReaderId reader = kInvalidId;
  ReaderHealth from = ReaderHealth::kHealthy;
  ReaderHealth to = ReaderHealth::kHealthy;
};

// Optional observability hooks; any member may be null. Tick() runs on the
// single-threaded simulation step, so these are plain bumps.
struct ReaderHealthMetrics {
  obs::Counter* transitions = nullptr;          // All transitions.
  obs::Counter* suspect_transitions = nullptr;  // -> suspect.
  obs::Counter* dead_transitions = nullptr;     // -> dead.
  obs::Counter* recovered_transitions = nullptr;  // probation -> healthy.
  obs::Counter* probation_reads = nullptr;  // Readings accepted on probation.
  obs::Counter* reader_down_seconds = nullptr;  // SLO bad events.
  obs::Counter* reader_seconds = nullptr;       // SLO total events.
  obs::Gauge* degraded_readers = nullptr;  // Readers not healthy (gauge).
};

// Immutable per-reader health snapshot threaded through the inference
// path. Copyable and cheap; query threads read it between monitor ticks.
class ReaderHealthView {
 public:
  ReaderHealthView() = default;
  explicit ReaderHealthView(std::vector<ReaderHealth> state)
      : state_(std::move(state)) {
    for (const ReaderHealth h : state_) {
      degraded_ += h == ReaderHealth::kHealthy ? 0 : 1;
    }
  }

  size_t num_readers() const { return state_.size(); }
  // Readers the view has no record of (monitor off, or id out of range)
  // report healthy.
  ReaderHealth Of(ReaderId reader) const {
    return reader >= 0 && static_cast<size_t>(reader) < state_.size()
               ? state_[reader]
               : ReaderHealth::kHealthy;
  }
  // Anything but healthy: suspect and dead silence is untrusted, and
  // probation coverage is still flagged on answers until fully recovered.
  bool Degraded(ReaderId reader) const {
    return Of(reader) != ReaderHealth::kHealthy;
  }
  // Whether silence from this reader should still discount particles:
  // healthy and probation readers are reporting, suspect/dead are not.
  bool SilenceTrusted(ReaderId reader) const {
    const ReaderHealth h = Of(reader);
    return h == ReaderHealth::kHealthy || h == ReaderHealth::kProbation;
  }
  bool AnyDegraded() const { return degraded_ > 0; }
  int degraded_count() const { return degraded_; }

 private:
  std::vector<ReaderHealth> state_;
  int degraded_ = 0;
};

// Cumulative transition tallies (for run_experiment's summary line).
struct ReaderHealthStats {
  int64_t suspect = 0;    // -> suspect transitions.
  int64_t dead = 0;       // -> dead transitions.
  int64_t probation = 0;  // -> probation transitions.
  int64_t recovered = 0;  // probation -> healthy transitions.
  int64_t Total() const { return suspect + dead + probation + recovered; }
};

// Deterministic online reader-health monitor. Tick(now) once per simulated
// second (after the second's arrivals) diffs each reader's cumulative
// observed-reading and heartbeat counts from the DataCollector, so every
// transition is a pure function of (seed, readings, now) — byte-identical
// at any thread count, because ticks happen on the single-threaded ingest
// step and queries only read the resulting view. Where a heartbeat channel
// exists, silence (no heartbeat, no readings) is unambiguous; without one,
// silence is only trusted against readers whose warmup traffic made it
// informative.
class ReaderHealthMonitor {
 public:
  ReaderHealthMonitor(const ReaderHealthConfig& config,
                      const DataCollector* collector, int num_readers);

  const ReaderHealthConfig& config() const { return config_; }
  bool enabled() const { return config_.enabled; }

  // Installs observability hooks; call before the first Tick.
  void SetMetrics(const ReaderHealthMetrics& metrics) { metrics_ = metrics; }

  // Evaluates every reader once for simulated second `now`. Call exactly
  // once per second, in order; with the monitor disabled this is a no-op.
  void Tick(int64_t now);

  ReaderHealth StateOf(ReaderId reader) const { return view_.Of(reader); }
  const ReaderHealthView& view() const { return view_; }
  const ReaderHealthStats& stats() const { return stats_; }

  // Warmed-up baseline reads/sec for `reader` (0 before warmup completes).
  double BaselineRate(ReaderId reader) const;

  // Per-reader effective silence window in seconds — suspect_after widened
  // past the longest warmup gap (0 before warmup completes). Detection
  // latency is measured against this, not the configured minimum.
  int SuspectWindow(ReaderId reader) const;

  // --- Transition log (cursor-based, bounded ring) ---
  // Sequence number one past the newest transition; a fresh consumer
  // starts its cursor here.
  uint64_t transition_end() const { return transition_end_; }
  // Appends every retained transition with seq >= cursor to `out` and
  // returns the new cursor. If the ring overwrote unseen transitions,
  // `*lost_sync` is set and consumers must treat every reader as changed.
  uint64_t ReadTransitions(uint64_t cursor,
                           std::vector<ReaderHealthTransition>* out,
                           bool* lost_sync) const;

 private:
  struct ReaderState {
    ReaderHealth health = ReaderHealth::kHealthy;
    int64_t last_count = 0;      // Collector count at the previous tick.
    int64_t last_heartbeats = 0; // Heartbeat count at the previous tick.
    double baseline_sum = 0.0;   // Readings accumulated during warmup.
    double heartbeat_sum = 0.0;  // Heartbeats accumulated during warmup.
    int max_warmup_gap = 0;    // Longest silent run observed in warmup.
    int warmup_gap = 0;        // Current silent run during warmup.
    double baseline_rate = 0.0;  // Fixed once warmup completes.
    double peak_rate = 0.0;      // Busiest warmup second (anomaly anchor).
    bool heartbeat_capable = false;  // Warmup heartbeat rate reached the
                                     // configured threshold.
    int suspect_window = 0;      // Per-reader effective silence window.
    int silent_run = 0;          // Consecutive inactive seconds.
    int anomaly_run = 0;         // Consecutive ghost-anomalous seconds.
    int active_run = 0;          // Consecutive active seconds (probation).
  };

  void Transition(ReaderState* state, ReaderId reader, int64_t now,
                  ReaderHealth to);

  ReaderHealthConfig config_;
  const DataCollector* collector_;
  ReaderHealthMetrics metrics_;
  std::vector<ReaderState> readers_;
  ReaderHealthView view_;
  ReaderHealthStats stats_;
  int ticks_ = 0;  // Ticks consumed so far (warmup bookkeeping).

  static constexpr size_t kTransitionLogCapacity = 1024;
  std::deque<ReaderHealthTransition> transition_log_;
  uint64_t transition_begin_ = 0;
  uint64_t transition_end_ = 0;
};

// Bridges the health monitor and the collector's per-second liveness gate
// into the filter's negative-information branch: silence from a
// suspect/dead reader, or from any reader during a second where it
// produced zero readings system-wide, is uninformative. Either source may
// be null; with both null every reader is trusted (legacy weighting).
class HealthSilenceTrust final : public SilenceTrustProvider {
 public:
  HealthSilenceTrust(const DataCollector* collector,
                     const ReaderHealthMonitor* monitor)
      : collector_(collector), monitor_(monitor) {}

  bool FillSilenceTrust(int64_t second, size_t num_readers,
                        uint8_t* mask) const override;

 private:
  const DataCollector* collector_;
  const ReaderHealthMonitor* monitor_;
};

}  // namespace ipqs

#endif  // IPQS_HEALTH_READER_HEALTH_H_
