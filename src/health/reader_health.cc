#include "health/reader_health.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace ipqs {

std::string_view ToString(ReaderHealth health) {
  switch (health) {
    case ReaderHealth::kHealthy:
      return "healthy";
    case ReaderHealth::kSuspect:
      return "suspect";
    case ReaderHealth::kDead:
      return "dead";
    case ReaderHealth::kProbation:
      return "probation";
  }
  return "unknown";
}

ReaderHealthMonitor::ReaderHealthMonitor(const ReaderHealthConfig& config,
                                         const DataCollector* collector,
                                         int num_readers)
    : config_(config), collector_(collector) {
  IPQS_CHECK(collector != nullptr);
  IPQS_CHECK_GE(num_readers, 0);
  IPQS_CHECK_GE(config.warmup_seconds, 1);
  IPQS_CHECK_GE(config.suspect_after_seconds, 1);
  IPQS_CHECK_GT(config.dead_after_seconds, config.suspect_after_seconds);
  IPQS_CHECK_GE(config.probation_seconds, 1);
  readers_.resize(static_cast<size_t>(num_readers));
  view_ = ReaderHealthView(
      std::vector<ReaderHealth>(readers_.size(), ReaderHealth::kHealthy));
}

double ReaderHealthMonitor::BaselineRate(ReaderId reader) const {
  return reader >= 0 && static_cast<size_t>(reader) < readers_.size()
             ? readers_[reader].baseline_rate
             : 0.0;
}

int ReaderHealthMonitor::SuspectWindow(ReaderId reader) const {
  return reader >= 0 && static_cast<size_t>(reader) < readers_.size()
             ? readers_[reader].suspect_window
             : 0;
}

void ReaderHealthMonitor::Transition(ReaderState* state, ReaderId reader,
                                     int64_t now, ReaderHealth to) {
  const ReaderHealth from = state->health;
  if (from == to) {
    return;
  }
  state->health = to;
  transition_log_.push_back({transition_end_, now, reader, from, to});
  ++transition_end_;
  while (transition_log_.size() > kTransitionLogCapacity) {
    transition_log_.pop_front();
    ++transition_begin_;
  }
  if (metrics_.transitions != nullptr) {
    metrics_.transitions->Increment();
  }
  switch (to) {
    case ReaderHealth::kSuspect:
      ++stats_.suspect;
      if (metrics_.suspect_transitions != nullptr) {
        metrics_.suspect_transitions->Increment();
      }
      break;
    case ReaderHealth::kDead:
      ++stats_.dead;
      if (metrics_.dead_transitions != nullptr) {
        metrics_.dead_transitions->Increment();
      }
      break;
    case ReaderHealth::kProbation:
      ++stats_.probation;
      state->active_run = 0;
      break;
    case ReaderHealth::kHealthy:
      ++stats_.recovered;
      if (metrics_.recovered_transitions != nullptr) {
        metrics_.recovered_transitions->Increment();
      }
      break;
  }
}

void ReaderHealthMonitor::Tick(int64_t now) {
  if (!config_.enabled || readers_.empty()) {
    return;
  }
  ++ticks_;
  const bool warming = ticks_ <= config_.warmup_seconds;

  std::vector<ReaderHealth> state(readers_.size());
  int down = 0;
  int degraded = 0;
  for (size_t i = 0; i < readers_.size(); ++i) {
    ReaderState& s = readers_[i];
    const ReaderId reader = static_cast<ReaderId>(i);
    const int64_t count = collector_->ReaderObserved(reader);
    const int64_t delta = count - s.last_count;
    s.last_count = count;
    const int64_t heartbeats = collector_->ReaderHeartbeats(reader);
    const int64_t hb_delta = heartbeats - s.last_heartbeats;
    s.last_heartbeats = heartbeats;
    // A reader is active when it reported anything at all this second —
    // tag readings or a status heartbeat. For heartbeat-capable readers
    // this makes silence unambiguous: an up reader with no tags in range
    // still heartbeats, so a fully silent second means the reader is gone,
    // not that objects wandered off.
    const bool active = delta > 0 || hb_delta > 0;

    if (warming) {
      // Learn the baseline; no verdicts until it is warmed up.
      s.baseline_sum += static_cast<double>(delta);
      s.heartbeat_sum += static_cast<double>(hb_delta);
      s.peak_rate = std::max(s.peak_rate, static_cast<double>(delta));
      if (active) {
        s.warmup_gap = 0;
      } else {
        ++s.warmup_gap;
        s.max_warmup_gap = std::max(s.max_warmup_gap, s.warmup_gap);
      }
      if (ticks_ == config_.warmup_seconds) {
        s.baseline_rate =
            s.baseline_sum / static_cast<double>(config_.warmup_seconds);
        s.heartbeat_capable =
            s.heartbeat_sum / static_cast<double>(config_.warmup_seconds) >=
            config_.min_heartbeat_rate;
        // A gap the reader exhibited while provably healthy is not
        // evidence of death later: widen its window past it. (For a
        // heartbeat-capable reader the warmup gap is the longest keepalive
        // outage it survived — normally zero, leaving the configured
        // minimum.)
        s.suspect_window = std::max(
            config_.suspect_after_seconds,
            static_cast<int>(std::ceil(config_.warmup_gap_slack *
                                       s.max_warmup_gap)) +
                1);
      }
      state[i] = s.health;
      continue;
    }

    s.silent_run = active ? 0 : s.silent_run + 1;
    const double anomaly_threshold =
        config_.ghost_factor *
        std::max(s.peak_rate, config_.min_baseline_rate);
    s.anomaly_run =
        static_cast<double>(delta) > anomaly_threshold ? s.anomaly_run + 1 : 0;

    switch (s.health) {
      case ReaderHealth::kHealthy:
        if (s.anomaly_run >= config_.anomaly_suspect_count) {
          Transition(&s, reader, now, ReaderHealth::kSuspect);
        } else if ((s.heartbeat_capable ||
                    s.baseline_rate >= config_.min_baseline_rate) &&
                   s.silent_run >= s.suspect_window) {
          Transition(&s, reader, now, ReaderHealth::kSuspect);
        }
        break;
      case ReaderHealth::kSuspect:
        if (active && s.anomaly_run == 0) {
          Transition(&s, reader, now, ReaderHealth::kProbation);
        } else if (s.silent_run >= config_.dead_after_seconds) {
          Transition(&s, reader, now, ReaderHealth::kDead);
        }
        break;
      case ReaderHealth::kDead:
        if (active && s.anomaly_run == 0) {
          Transition(&s, reader, now, ReaderHealth::kProbation);
        }
        break;
      case ReaderHealth::kProbation:
        if (s.anomaly_run >= config_.anomaly_suspect_count) {
          Transition(&s, reader, now, ReaderHealth::kSuspect);
        } else if (active) {
          if (++s.active_run >= config_.probation_seconds) {
            Transition(&s, reader, now, ReaderHealth::kHealthy);
          }
        } else {
          s.active_run = 0;
          if (s.silent_run >= s.suspect_window) {
            Transition(&s, reader, now, ReaderHealth::kSuspect);
          }
        }
        break;
    }

    if (s.health == ReaderHealth::kProbation && active &&
        metrics_.probation_reads != nullptr) {
      metrics_.probation_reads->Increment(delta);
    }
    state[i] = s.health;
    down += s.health == ReaderHealth::kSuspect ||
                    s.health == ReaderHealth::kDead
                ? 1
                : 0;
    degraded += s.health == ReaderHealth::kHealthy ? 0 : 1;
  }

  view_ = ReaderHealthView(std::move(state));
  if (metrics_.reader_seconds != nullptr) {
    metrics_.reader_seconds->Increment(
        static_cast<int64_t>(readers_.size()));
  }
  if (metrics_.reader_down_seconds != nullptr && down > 0) {
    metrics_.reader_down_seconds->Increment(down);
  }
  if (metrics_.degraded_readers != nullptr) {
    metrics_.degraded_readers->Set(degraded);
  }
}

uint64_t ReaderHealthMonitor::ReadTransitions(
    uint64_t cursor, std::vector<ReaderHealthTransition>* out,
    bool* lost_sync) const {
  *lost_sync = cursor < transition_begin_;
  for (uint64_t seq = std::max(cursor, transition_begin_);
       seq < transition_end_; ++seq) {
    out->push_back(transition_log_[seq - transition_begin_]);
  }
  return transition_end_;
}

bool HealthSilenceTrust::FillSilenceTrust(int64_t second, size_t num_readers,
                                          uint8_t* mask) const {
  const ReaderHealthView* view =
      monitor_ != nullptr && monitor_->enabled() ? &monitor_->view() : nullptr;
  bool any_untrusted = false;
  for (size_t i = 0; i < num_readers; ++i) {
    const ReaderId reader = static_cast<ReaderId>(i);
    bool trusted = view == nullptr || view->SilenceTrusted(reader);
    if (trusted && collector_ != nullptr &&
        !collector_->ReaderLiveAt(reader, second)) {
      trusted = false;
    }
    mask[i] = trusted ? 1 : 0;
    any_untrusted |= !trusted;
  }
  return any_untrusted;
}

}  // namespace ipqs
