#ifndef IPQS_FAULTS_FAULT_INJECTOR_H_
#define IPQS_FAULTS_FAULT_INJECTOR_H_

#include <cstdint>
#include <map>
#include <unordered_set>
#include <vector>

#include "faults/fault_plan.h"
#include "obs/metrics.h"
#include "rfid/reader.h"

namespace ipqs {

// Optional observability hooks for a FaultInjector; any member may be
// null. Deliver() runs on the (single-threaded) ingest path, so these are
// plain counter bumps.
struct FaultMetrics {
  obs::Counter* injected = nullptr;    // Total fault events, all channels.
  obs::Counter* dropped = nullptr;     // Readings lost to dropout windows.
  obs::Counter* duplicated = nullptr;  // Extra copies delivered.
  obs::Counter* delayed = nullptr;     // Deliveries held (reorder + batch).
  obs::Counter* ghosts = nullptr;      // Spurious noise-burst readings.
  obs::Counter* skewed = nullptr;      // Timestamps shifted by clock skew.
};

// Applies a FaultPlan to the per-second batches of the clean reading
// stream. Stateless with respect to the world: the only state is the
// delivery queue of held readings and the set of tag ids ever seen (ghost
// reads must name real tags). Given the same plan and the same sequence of
// clean batches, the delivered sequence is byte-identical — all draws come
// from counter-based streams keyed on (plan.seed, channel, reader/second),
// never from shared mutable generators.
class FaultInjector {
 public:
  struct Stats {
    int64_t injected = 0;
    int64_t dropped = 0;
    int64_t duplicated = 0;
    int64_t delayed = 0;
    int64_t ghosts = 0;
    int64_t skewed = 0;
  };

  FaultInjector(const FaultPlan& plan, int num_readers);

  // Installs observability hooks; call before the ingest loop starts.
  void SetMetrics(const FaultMetrics& metrics) { metrics_ = metrics; }

  const FaultPlan& plan() const { return plan_; }

  // Transforms the clean batch of simulation second `time` into the batch
  // the ingestion path receives at that second: the clean readings minus
  // dropout losses and held deliveries, plus everything previously held
  // that comes due now, duplicates, and ghost reads — timestamps already
  // skewed. Output is sorted by (time, reader, object) so downstream
  // consumption order is canonical.
  std::vector<RawReading> Deliver(std::vector<RawReading> batch,
                                  int64_t time);

  // Everything still in flight (delivery due after the last Deliver call),
  // in delivery order. Draining does not clear the queue.
  std::vector<RawReading> Pending() const;
  size_t pending_size() const;

  const Stats& stats() const { return stats_; }

  // Exposed for tests: channel decisions as pure functions of the plan.
  bool ReaderDown(ReaderId reader, int64_t time) const;
  int64_t SkewFor(ReaderId reader) const;

 private:
  void Count(obs::Counter* hook, int64_t* stat, int64_t delta = 1);

  FaultPlan plan_;
  int num_readers_ = 0;
  std::vector<int64_t> skew_;  // Per-reader constant clock offset.

  // Held deliveries keyed by due second (ordered so release order is
  // deterministic), and the tags ever seen (insertion-ordered for
  // deterministic ghost draws).
  std::map<int64_t, std::vector<RawReading>> held_;
  std::vector<ObjectId> seen_objects_;
  std::unordered_set<ObjectId> seen_set_;

  Stats stats_;
  FaultMetrics metrics_;
};

}  // namespace ipqs

#endif  // IPQS_FAULTS_FAULT_INJECTOR_H_
