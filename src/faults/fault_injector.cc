#include "faults/fault_injector.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"

namespace ipqs {
namespace {

// Channel tags mixed into the plan seed so no two channels ever share a
// random stream even when keyed on the same (reader, second). The dropout
// (0x1) and noise-burst (0x4) epoch draws live in fault_plan.cc as the
// ground-truth accessors FaultPlan::ReaderDownAt / GhostBurstAt; the
// injector delegates to them.
constexpr uint64_t kReadingStream = 0x2;  // Per-reading dup/reorder draws.
constexpr uint64_t kBatchStream = 0x3;
constexpr uint64_t kGhostStream = 0x5;
constexpr uint64_t kSkewStream = 0x6;

bool CanonicalLess(const RawReading& a, const RawReading& b) {
  if (a.time != b.time) return a.time < b.time;
  if (a.reader != b.reader) return a.reader < b.reader;
  return a.object < b.object;
}

}  // namespace

FaultInjector::FaultInjector(const FaultPlan& plan, int num_readers)
    : plan_(plan), num_readers_(num_readers) {
  IPQS_CHECK_GE(num_readers, 0);
  IPQS_CHECK_GE(plan.dropout_epoch_seconds, 1);
  IPQS_CHECK_GE(plan.max_clock_skew_seconds, 0);
  skew_.resize(num_readers_, 0);
  if (plan_.max_clock_skew_seconds > 0) {
    for (ReaderId r = 0; r < num_readers_; ++r) {
      Rng rng = Rng::ForStream(plan_.seed + kSkewStream,
                               static_cast<uint64_t>(r), 0);
      skew_[r] = rng.UniformInt(-plan_.max_clock_skew_seconds,
                                plan_.max_clock_skew_seconds);
    }
  }
}

void FaultInjector::Count(obs::Counter* hook, int64_t* stat, int64_t delta) {
  *stat += delta;
  if (hook != nullptr) {
    hook->Increment(delta);
  }
}

bool FaultInjector::ReaderDown(ReaderId reader, int64_t time) const {
  return plan_.ReaderDownAt(reader, time);
}

int64_t FaultInjector::SkewFor(ReaderId reader) const {
  IPQS_CHECK_GE(reader, 0);
  IPQS_CHECK_LT(static_cast<size_t>(reader), skew_.size());
  return skew_[reader];
}

std::vector<RawReading> FaultInjector::Deliver(std::vector<RawReading> batch,
                                               int64_t time) {
  std::vector<RawReading> out;
  out.reserve(batch.size() + 4);

  // Release everything that came due. Due seconds strictly before `time`
  // can only appear if the caller skipped seconds; deliver them too rather
  // than hold them forever.
  for (auto it = held_.begin(); it != held_.end() && it->first <= time;) {
    out.insert(out.end(), it->second.begin(), it->second.end());
    it = held_.erase(it);
  }

  // Per-reading draws (duplicate, reorder) all come from one stream keyed
  // on the second, consumed in batch order — the clean batch is itself a
  // deterministic function of the simulation seed, so so are these.
  Rng reading_rng = Rng::ForStream(plan_.seed + kReadingStream,
                                   static_cast<uint64_t>(time), 0);
  // Batch-delay decisions are per (reader, second); memoized so every
  // reading of the batch agrees.
  std::map<ReaderId, bool> batch_held;

  for (const RawReading& clean : batch) {
    if (seen_set_.insert(clean.object).second) {
      seen_objects_.push_back(clean.object);
    }
    if (ReaderDown(clean.reader, time)) {
      Count(metrics_.dropped, &stats_.dropped);
      Count(metrics_.injected, &stats_.injected);
      continue;
    }

    RawReading r = clean;
    const int64_t skew = SkewFor(r.reader);
    if (skew != 0) {
      r.time += skew;
      Count(metrics_.skewed, &stats_.skewed);
      Count(metrics_.injected, &stats_.injected);
    }

    const bool duplicated =
        plan_.duplicate_rate > 0.0 &&
        reading_rng.Bernoulli(plan_.duplicate_rate);
    const int duplicate_delay =
        duplicated && plan_.duplicate_max_delay_seconds > 0
            ? reading_rng.UniformInt(0, plan_.duplicate_max_delay_seconds)
            : 0;
    const bool reordered =
        plan_.reorder_rate > 0.0 && reading_rng.Bernoulli(plan_.reorder_rate);
    const int reorder_delay =
        reordered
            ? reading_rng.UniformInt(
                  1, std::max(1, plan_.reorder_max_delay_seconds))
            : 0;

    bool batch_delayed = false;
    if (plan_.batch_delay_rate > 0.0) {
      auto [it, inserted] = batch_held.try_emplace(r.reader, false);
      if (inserted) {
        Rng rng = Rng::ForStream(plan_.seed + kBatchStream,
                                 static_cast<uint64_t>(r.reader),
                                 static_cast<uint64_t>(time));
        it->second = rng.Bernoulli(plan_.batch_delay_rate);
      }
      batch_delayed = it->second;
    }

    const int delay = batch_delayed ? std::max(1, plan_.batch_delay_seconds)
                                    : reorder_delay;
    if (delay > 0) {
      held_[time + delay].push_back(r);
      Count(metrics_.delayed, &stats_.delayed);
      Count(metrics_.injected, &stats_.injected);
    } else {
      out.push_back(r);
    }

    if (duplicated) {
      Count(metrics_.duplicated, &stats_.duplicated);
      Count(metrics_.injected, &stats_.injected);
      if (duplicate_delay > 0) {
        held_[time + duplicate_delay].push_back(r);
      } else {
        out.push_back(r);
      }
    }
  }

  // Ghost reads: bursty readers report a tag they cannot actually see. A
  // reader that is down emits nothing, ghosts included.
  if (plan_.noise_burst_rate > 0.0 && !seen_objects_.empty()) {
    for (ReaderId r = 0; r < num_readers_; ++r) {
      if (ReaderDown(r, time)) {
        continue;
      }
      if (!plan_.GhostBurstAt(r, time)) {
        continue;
      }
      Rng ghost_rng = Rng::ForStream(plan_.seed + kGhostStream,
                                     static_cast<uint64_t>(r),
                                     static_cast<uint64_t>(time));
      const ObjectId object =
          seen_objects_[ghost_rng.UniformIndex(seen_objects_.size())];
      out.push_back(RawReading{object, r, time + SkewFor(r)});
      Count(metrics_.ghosts, &stats_.ghosts);
      Count(metrics_.injected, &stats_.injected);
    }
  }

  // Canonical delivery order: downstream consumers see one deterministic
  // sequence no matter which channels fired.
  std::stable_sort(out.begin(), out.end(), CanonicalLess);
  return out;
}

std::vector<RawReading> FaultInjector::Pending() const {
  std::vector<RawReading> out;
  for (const auto& [_, readings] : held_) {
    out.insert(out.end(), readings.begin(), readings.end());
  }
  return out;
}

size_t FaultInjector::pending_size() const {
  size_t total = 0;
  for (const auto& [_, readings] : held_) {
    total += readings.size();
  }
  return total;
}

}  // namespace ipqs
