#include "faults/fault_plan.h"

#include <cstdio>

namespace ipqs {

bool FaultPlan::Enabled() const {
  return dropout_rate > 0.0 || duplicate_rate > 0.0 || reorder_rate > 0.0 ||
         batch_delay_rate > 0.0 || noise_burst_rate > 0.0 ||
         max_clock_skew_seconds > 0;
}

std::string FaultPlan::ToString() const {
  if (!Enabled()) {
    return "faults{off}";
  }
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "faults{seed=%llu drop=%.2f dup=%.2f reorder=%.2f "
                "batch=%.2f noise=%.2f skew=%d}",
                static_cast<unsigned long long>(seed), dropout_rate,
                duplicate_rate, reorder_rate, batch_delay_rate,
                noise_burst_rate, max_clock_skew_seconds);
  return buf;
}

}  // namespace ipqs
