#include "faults/fault_plan.h"

#include <cstdio>

#include "common/rng.h"

namespace ipqs {
namespace {

// Channel tags mixed into the plan seed; shared with the injector's
// remaining channels (fault_injector.cc) — the full tag list lives there.
constexpr uint64_t kDropoutStream = 0x1;
constexpr uint64_t kNoiseStream = 0x4;

}  // namespace

bool FaultPlan::Enabled() const {
  return dropout_rate > 0.0 || duplicate_rate > 0.0 || reorder_rate > 0.0 ||
         batch_delay_rate > 0.0 || noise_burst_rate > 0.0 ||
         max_clock_skew_seconds > 0;
}

bool FaultPlan::ReaderDownAt(ReaderId reader, int64_t time) const {
  if (dropout_rate <= 0.0) {
    return false;
  }
  const int64_t epoch = time / dropout_epoch_seconds;
  Rng rng = Rng::ForStream(seed + kDropoutStream,
                           static_cast<uint64_t>(reader),
                           static_cast<uint64_t>(epoch));
  return rng.Bernoulli(dropout_rate);
}

bool FaultPlan::GhostBurstAt(ReaderId reader, int64_t time) const {
  if (noise_burst_rate <= 0.0) {
    return false;
  }
  const int64_t epoch = time / dropout_epoch_seconds;
  Rng rng = Rng::ForStream(seed + kNoiseStream, static_cast<uint64_t>(reader),
                           static_cast<uint64_t>(epoch));
  return rng.Bernoulli(noise_burst_rate);
}

std::string FaultPlan::ToString() const {
  if (!Enabled()) {
    return "faults{off}";
  }
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "faults{seed=%llu drop=%.2f dup=%.2f reorder=%.2f "
                "batch=%.2f noise=%.2f skew=%d}",
                static_cast<unsigned long long>(seed), dropout_rate,
                duplicate_rate, reorder_rate, batch_delay_rate,
                noise_burst_rate, max_clock_skew_seconds);
  return buf;
}

}  // namespace ipqs
