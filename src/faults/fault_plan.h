#ifndef IPQS_FAULTS_FAULT_PLAN_H_
#define IPQS_FAULTS_FAULT_PLAN_H_

#include <cstdint>
#include <string>

#include "rfid/reader.h"

namespace ipqs {

// Declarative description of the failure modes injected into the raw RFID
// stream, applied as a pure transform between ReadingGenerator and
// DataCollector. Real deployments see all of these: readers power-cycle
// (dropout), middleware retries deliver the same tag read twice
// (duplicates), network queues re-order and batch deliveries (out-of-order
// and delayed batches), RF multipath produces ghost reads (noise bursts),
// and reader clocks drift (skew).
//
// Every channel is off by default; any combination composes. Every random
// draw the injector makes comes from a counter-based stream keyed on
// (seed, channel, reader/second), so the same (seed, FaultPlan) over the
// same clean stream always produces the same faulted stream — fault runs
// are exactly as reproducible as clean ones, at any thread count.
struct FaultPlan {
  // Stream seed for every channel. Independent of the simulation seed so
  // the same world can be replayed under different fault realizations.
  uint64_t seed = 0;

  // --- Reader dropout windows -------------------------------------------
  // Time is divided into epochs of `dropout_epoch_seconds`; each (reader,
  // epoch) is down with probability `dropout_rate` and drops every reading
  // it would have produced for the whole epoch. The expected fraction of
  // lost readings equals dropout_rate, but losses arrive in contiguous
  // windows — the hard case for a filter that must coast across the gap.
  double dropout_rate = 0.0;
  int dropout_epoch_seconds = 10;

  // --- Duplicated readings ----------------------------------------------
  // Each surviving reading is re-delivered once with probability
  // `duplicate_rate`. The copy keeps its original timestamp and arrives
  // 0..`duplicate_max_delay_seconds` seconds later — a delay of 0 is an
  // adjacent duplicate, anything later exercises idempotent suppression in
  // the ingestion path.
  double duplicate_rate = 0.0;
  int duplicate_max_delay_seconds = 2;

  // --- Bounded out-of-order delivery ------------------------------------
  // Each reading's *delivery* (not its timestamp) is delayed by
  // 1..`reorder_max_delay_seconds` seconds with probability
  // `reorder_rate`, so readings cross each other in flight but never by
  // more than the bound — the contract a reorder buffer can be sized to.
  double reorder_rate = 0.0;
  int reorder_max_delay_seconds = 2;

  // --- Delayed batches ---------------------------------------------------
  // A whole (reader, second) batch is held and delivered
  // `batch_delay_seconds` later with probability `batch_delay_rate`
  // (middleware flushing its queue after a stall).
  double batch_delay_rate = 0.0;
  int batch_delay_seconds = 2;

  // --- Tag-detection noise bursts ----------------------------------------
  // Each (reader, epoch) — same epoch grid as dropout — is "bursty" with
  // probability `noise_burst_rate`; during a bursty epoch the reader emits
  // one ghost read per second of a previously-seen tag it cannot actually
  // see (RF multipath, tag cross-talk).
  double noise_burst_rate = 0.0;

  // --- Per-reader clock skew ---------------------------------------------
  // Each reader timestamps with a constant offset drawn uniformly from
  // [-max_clock_skew_seconds, +max_clock_skew_seconds], fixed for the run.
  // Skew shifts timestamps (not deliveries), so readings from differently
  // skewed readers arrive mutually out of order forever.
  int max_clock_skew_seconds = 0;

  // True when any channel can alter the stream.
  bool Enabled() const;

  // Ground-truth schedule accessors: pure re-derivations of the epoch
  // draws the injector makes, so detection tests (and operators) can ask
  // "was this reader *injected* down at time t?" without re-implementing
  // the epoch math. Must stay byte-for-byte in sync with
  // FaultInjector::ReaderDown / the ghost-burst block in Deliver — the
  // injector delegates to these so they cannot drift.
  bool ReaderDownAt(ReaderId reader, int64_t time) const;

  // True when (reader, epoch-of-time) drew a noise burst. Caveat: this is
  // only the pure epoch decision — the injector additionally requires the
  // reader to be up (`!ReaderDownAt`) and at least one tag to have been
  // seen before any ghost is actually emitted.
  bool GhostBurstAt(ReaderId reader, int64_t time) const;

  // One-line summary of the enabled channels (for logs and bench tables).
  std::string ToString() const;
};

}  // namespace ipqs

#endif  // IPQS_FAULTS_FAULT_PLAN_H_
