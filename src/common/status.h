#ifndef IPQS_COMMON_STATUS_H_
#define IPQS_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace ipqs {

// Error taxonomy for fallible library operations. Kept deliberately small;
// callers that need finer detail should inspect Status::message().
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kAlreadyExists,
  kInternal,
};

// Returns a stable human-readable name, e.g. "INVALID_ARGUMENT".
std::string_view StatusCodeToString(StatusCode code);

// Value-semantic error carrier, in the style of absl::Status / rocksdb::Status.
// The library does not throw exceptions across public API boundaries;
// operations that can fail return Status or StatusOr<T>.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CODE>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

// Propagates a non-OK status to the caller.
#define IPQS_RETURN_IF_ERROR(expr)              \
  do {                                          \
    ::ipqs::Status ipqs_status_tmp_ = (expr);   \
    if (!ipqs_status_tmp_.ok()) {               \
      return ipqs_status_tmp_;                  \
    }                                           \
  } while (false)

}  // namespace ipqs

#endif  // IPQS_COMMON_STATUS_H_
