#ifndef IPQS_COMMON_FLAGS_H_
#define IPQS_COMMON_FLAGS_H_

#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"

namespace ipqs {

// Minimal --key=value command-line parsing for the repo's tools. Bare
// "--key" parses as boolean true. Anything not starting with "--" is a
// positional argument.
class FlagParser {
 public:
  FlagParser(int argc, const char* const* argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        positional_.push_back(arg);
        continue;
      }
      const size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        flags_[arg.substr(2)] = "true";
      } else {
        flags_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    }
  }

  bool Has(const std::string& key) const { return flags_.count(key) > 0; }

  std::string GetString(const std::string& key,
                        const std::string& default_value) {
    used_.insert(key);
    const auto it = flags_.find(key);
    return it == flags_.end() ? default_value : it->second;
  }

  int GetInt(const std::string& key, int default_value) {
    used_.insert(key);
    const auto it = flags_.find(key);
    return it == flags_.end() ? default_value : std::atoi(it->second.c_str());
  }

  double GetDouble(const std::string& key, double default_value) {
    used_.insert(key);
    const auto it = flags_.find(key);
    return it == flags_.end() ? default_value : std::atof(it->second.c_str());
  }

  bool GetBool(const std::string& key, bool default_value) {
    used_.insert(key);
    const auto it = flags_.find(key);
    if (it == flags_.end()) {
      return default_value;
    }
    return it->second != "false" && it->second != "0";
  }

  // Call after reading every supported flag: errors on typos.
  Status CheckUnused() const {
    std::string unknown;
    for (const auto& [key, _] : flags_) {
      if (!used_.count(key)) {
        unknown += (unknown.empty() ? "" : ", ") + key;
      }
    }
    if (!unknown.empty()) {
      return Status::InvalidArgument("unknown flag(s): " + unknown);
    }
    return Status::Ok();
  }

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> flags_;
  std::set<std::string> used_;
  std::vector<std::string> positional_;
};

}  // namespace ipqs

#endif  // IPQS_COMMON_FLAGS_H_
