#include "common/rng.h"

#include <algorithm>

#include "common/check.h"

namespace ipqs {

double Rng::Uniform(double lo, double hi) {
  IPQS_CHECK_LE(lo, hi);
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

double Rng::Uniform01() { return Uniform(0.0, 1.0); }

int Rng::UniformInt(int lo, int hi) {
  IPQS_CHECK_LE(lo, hi);
  std::uniform_int_distribution<int> dist(lo, hi);
  return dist(engine_);
}

size_t Rng::UniformIndex(size_t n) {
  IPQS_CHECK_GT(n, 0u);
  std::uniform_int_distribution<size_t> dist(0, n - 1);
  return dist(engine_);
}

double Rng::Gaussian(double mu, double sigma) {
  std::normal_distribution<double> dist(mu, sigma);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  const double clamped = std::clamp(p, 0.0, 1.0);
  std::bernoulli_distribution dist(clamped);
  return dist(engine_);
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  IPQS_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    IPQS_CHECK_GE(w, 0.0);
    total += w;
  }
  IPQS_CHECK_GT(total, 0.0);
  double u = Uniform(0.0, total);
  for (size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u <= 0.0) {
      return i;
    }
  }
  // Floating point slack: fall back to the last positive-weight entry.
  for (size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) {
      return i;
    }
  }
  return weights.size() - 1;
}

Rng Rng::Fork() {
  // Derive the child seed from this stream, advancing it once.
  return Rng(engine_());
}

}  // namespace ipqs
