#include "common/rng.h"

#include <algorithm>

#include "common/check.h"

namespace ipqs {

double Rng::Uniform(double lo, double hi) {
  IPQS_CHECK_LE(lo, hi);
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

double Rng::Uniform01() { return Uniform(0.0, 1.0); }

int Rng::UniformInt(int lo, int hi) {
  IPQS_CHECK_LE(lo, hi);
  std::uniform_int_distribution<int> dist(lo, hi);
  return dist(engine_);
}

size_t Rng::UniformIndex(size_t n) {
  IPQS_CHECK_GT(n, 0u);
  std::uniform_int_distribution<size_t> dist(0, n - 1);
  return dist(engine_);
}

double Rng::Gaussian(double mu, double sigma) {
  std::normal_distribution<double> dist(mu, sigma);
  return dist(engine_);
}

void Rng::GaussianBatch(double mu, double sigma, size_t n, double* out) {
  // A fresh distribution per draw, exactly like Gaussian(): libstdc++'s
  // normal_distribution caches the second Box-Muller variate across calls
  // on the same object, so reusing one object here would produce a
  // different (if equally valid) sequence and break draw-order pinning.
  for (size_t i = 0; i < n; ++i) {
    std::normal_distribution<double> dist(mu, sigma);
    out[i] = dist(engine_);
  }
}

void Rng::Uniform01Batch(size_t n, double* out) {
  for (size_t i = 0; i < n; ++i) {
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    out[i] = dist(engine_);
  }
}

bool Rng::Bernoulli(double p) {
  const double clamped = std::clamp(p, 0.0, 1.0);
  std::bernoulli_distribution dist(clamped);
  return dist(engine_);
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  IPQS_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    IPQS_CHECK_GE(w, 0.0);
    total += w;
  }
  IPQS_CHECK_GT(total, 0.0);
  double u = Uniform(0.0, total);
  for (size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u <= 0.0) {
      return i;
    }
  }
  // Floating point slack: fall back to the last positive-weight entry.
  for (size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) {
      return i;
    }
  }
  return weights.size() - 1;
}

Rng Rng::Fork() {
  // Derive the child seed from this stream, advancing it once.
  return Rng(engine_());
}

namespace {

// SplitMix64 finalizer (Vigna): a bijective avalanche mix, the standard
// way to turn structured counters into well-distributed seeds.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

Rng Rng::ForStream(uint64_t seed, uint64_t stream, uint64_t substream) {
  // Chain the mixes so that (seed, stream, substream) triples that differ
  // in any coordinate land on unrelated seeds; a plain XOR of the three
  // would alias (a^b, b^a) style swaps onto the same generator.
  uint64_t h = SplitMix64(seed);
  h = SplitMix64(h ^ SplitMix64(stream));
  h = SplitMix64(h ^ SplitMix64(substream));
  return Rng(h);
}

}  // namespace ipqs
