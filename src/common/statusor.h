#ifndef IPQS_COMMON_STATUSOR_H_
#define IPQS_COMMON_STATUSOR_H_

#include <optional>
#include <utility>

#include "common/check.h"
#include "common/status.h"

namespace ipqs {

// Holds either a value of type T or a non-OK Status explaining why the value
// is absent. Mirrors absl::StatusOr<T> closely enough to be unsurprising.
template <typename T>
class StatusOr {
 public:
  // Implicit conversions from both sides keep call sites terse:
  //   StatusOr<Foo> f() { if (bad) return Status::NotFound(...); return foo; }
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    IPQS_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) = default;
  StatusOr& operator=(StatusOr&&) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  // Precondition: ok().
  const T& value() const& {
    IPQS_CHECK(ok()) << "StatusOr::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    IPQS_CHECK(ok()) << "StatusOr::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    IPQS_CHECK(ok()) << "StatusOr::value() on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

// Evaluates `rexpr` (a StatusOr<T>), propagating errors; otherwise assigns
// the contained value to `lhs`, which must be a declaration or lvalue.
#define IPQS_ASSIGN_OR_RETURN(lhs, rexpr)                          \
  IPQS_ASSIGN_OR_RETURN_IMPL_(                                     \
      IPQS_STATUS_MACRO_CONCAT_(statusor_, __LINE__), lhs, rexpr)

#define IPQS_ASSIGN_OR_RETURN_IMPL_(var, lhs, rexpr) \
  auto var = (rexpr);                                \
  if (!var.ok()) {                                   \
    return var.status();                             \
  }                                                  \
  lhs = std::move(var).value()

#define IPQS_STATUS_MACRO_CONCAT_INNER_(x, y) x##y
#define IPQS_STATUS_MACRO_CONCAT_(x, y) IPQS_STATUS_MACRO_CONCAT_INNER_(x, y)

}  // namespace ipqs

#endif  // IPQS_COMMON_STATUSOR_H_
