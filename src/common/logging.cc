#include "common/logging.h"

namespace ipqs {
namespace {

LogLevel g_log_level = LogLevel::kInfo;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_log_level = level; }
LogLevel GetLogLevel() { return g_log_level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() { std::cerr << stream_.str() << "\n"; }

}  // namespace internal
}  // namespace ipqs
