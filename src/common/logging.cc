#include "common/logging.h"

#include <algorithm>
#include <atomic>
#include <cctype>

namespace ipqs {
namespace {

std::atomic<LogLevel> g_log_level{LogLevel::kInfo};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(level, std::memory_order_relaxed);
}
LogLevel GetLogLevel() {
  return g_log_level.load(std::memory_order_relaxed);
}

std::optional<LogLevel> ParseLogLevel(const std::string& name) {
  std::string lower = name;
  std::transform(lower.begin(), lower.end(), lower.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warning" || lower == "warn") return LogLevel::kWarning;
  if (lower == "error") return LogLevel::kError;
  return std::nullopt;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() { std::cerr << stream_.str() << "\n"; }

}  // namespace internal
}  // namespace ipqs
