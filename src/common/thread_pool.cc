#include "common/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/check.h"

namespace ipqs {

int ThreadPool::DefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int num_threads) {
  const int n = num_threads <= 0 ? DefaultThreads() : num_threads;
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(n);
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(static_cast<size_t>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_.store(true, std::memory_order_relaxed);
  }
  wake_cv_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  IPQS_CHECK(task != nullptr);
  if (metrics_.tasks != nullptr) {
    metrics_.tasks->Increment();
  }
  if (metrics_.queue_depth != nullptr) {
    metrics_.queue_depth->Add(1);
  }
  if (metrics_.wait_ns != nullptr) {
    // Wrap the task so its dequeue records the time it sat in the queue.
    const int64_t enqueue_ns = obs::MonotonicNanos();
    obs::Histogram* wait_ns = metrics_.wait_ns;
    task = [wait_ns, enqueue_ns, inner = std::move(task)] {
      wait_ns->Observe(obs::MonotonicNanos() - enqueue_ns);
      inner();
    };
  }
  const size_t q = next_queue_.fetch_add(1, std::memory_order_relaxed) %
                   workers_.size();
  {
    std::lock_guard<std::mutex> lock(workers_[q]->mu);
    workers_[q]->tasks.push_back(std::move(task));
  }
  wake_cv_.notify_one();
}

bool ThreadPool::RunOneTask(size_t self) {
  std::function<void()> task;
  const size_t n = workers_.size();
  // Own deque first (LIFO: the freshest task is the cache-warmest) ...
  {
    Worker& own = *workers_[self % n];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.tasks.empty()) {
      task = std::move(own.tasks.back());
      own.tasks.pop_back();
    }
  }
  // ... then steal a sibling's oldest task.
  bool stolen = false;
  for (size_t i = 1; task == nullptr && i <= n; ++i) {
    Worker& victim = *workers_[(self + i) % n];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.tasks.empty()) {
      task = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      stolen = true;
    }
  }
  if (task == nullptr) {
    return false;
  }
  if (metrics_.queue_depth != nullptr) {
    metrics_.queue_depth->Add(-1);
  }
  if (stolen && metrics_.steals != nullptr) {
    metrics_.steals->Increment();
  }
  task();
  return true;
}

void ThreadPool::WorkerLoop(size_t self) {
  while (true) {
    if (RunOneTask(self)) {
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mu_);
    // Re-check the deques under the wake lock: a Submit between our last
    // scan and this wait would otherwise be missed. Checking the deques
    // before the stop flag also makes shutdown drain every queued task.
    bool any = false;
    for (const auto& w : workers_) {
      std::lock_guard<std::mutex> qlock(w->mu);
      if (!w->tasks.empty()) {
        any = true;
        break;
      }
    }
    if (any) {
      continue;
    }
    if (stop_.load(std::memory_order_relaxed)) {
      return;
    }
    wake_cv_.wait(lock);
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) {
    return;
  }
  if (n == 1 || workers_.empty()) {
    for (size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }

  // Shard [0, n) into more chunks than workers so stealing can rebalance
  // uneven per-index costs.
  const size_t shards = std::min(n, workers_.size() * size_t{4});
  struct State {
    std::atomic<size_t> done{0};
    std::mutex mu;
    std::condition_variable cv;
  };
  auto state = std::make_shared<State>();
  for (size_t s = 0; s < shards; ++s) {
    const size_t lo = n * s / shards;
    const size_t hi = n * (s + 1) / shards;
    Submit([&fn, lo, hi, shards, state] {
      for (size_t i = lo; i < hi; ++i) {
        fn(i);
      }
      if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 == shards) {
        std::lock_guard<std::mutex> lock(state->mu);
        state->cv.notify_all();
      }
    });
  }
  // Help out instead of idling; tasks from unrelated Submits may also run
  // on this thread, which is fine — they are queued work either way.
  while (state->done.load(std::memory_order_acquire) < shards) {
    if (!RunOneTask(next_queue_.load(std::memory_order_relaxed))) {
      std::unique_lock<std::mutex> lock(state->mu);
      state->cv.wait_for(lock, std::chrono::milliseconds(1), [&] {
        return state->done.load(std::memory_order_acquire) >= shards;
      });
    }
  }
}

}  // namespace ipqs
