#ifndef IPQS_COMMON_LOGGING_H_
#define IPQS_COMMON_LOGGING_H_

#include <iostream>
#include <optional>
#include <sstream>
#include <string>

namespace ipqs {

enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

// Process-wide minimum level; messages below it are discarded.
// Defaults to kInfo. Both are atomic (relaxed), so the level can be read
// from log statements on worker threads and changed at any time.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Parses a level name ("debug", "info", "warning"/"warn", "error",
// case-insensitive); nullopt for anything else.
std::optional<LogLevel> ParseLogLevel(const std::string& name);

namespace internal {

// One log statement; flushes to stderr with a level prefix on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

struct LogVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace ipqs

#define IPQS_LOG(level)                                                  \
  (::ipqs::LogLevel::level < ::ipqs::GetLogLevel())                      \
      ? static_cast<void>(0)                                             \
      : ::ipqs::internal::LogVoidify() &                                 \
            ::ipqs::internal::LogMessage(::ipqs::LogLevel::level,        \
                                         __FILE__, __LINE__)             \
                .stream()

#endif  // IPQS_COMMON_LOGGING_H_
