#ifndef IPQS_COMMON_THREAD_POOL_H_
#define IPQS_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace ipqs {

// Optional observability hooks for a ThreadPool; any member may be null.
// `wait_ns` measures submit-to-start latency, which costs one clock read
// per Submit and per task start — only paid when it is wired.
struct PoolMetrics {
  obs::Counter* tasks = nullptr;        // Tasks submitted.
  obs::Counter* steals = nullptr;       // Tasks taken from a sibling deque.
  obs::Gauge* queue_depth = nullptr;    // Tasks currently queued.
  obs::Histogram* wait_ns = nullptr;    // Submit-to-start latency.
};

// A small work-stealing thread pool for fanning independent per-object
// work (filter runs) across cores.
//
// Tasks are distributed round-robin over per-worker deques; a worker pops
// its own deque LIFO and, when empty, steals FIFO from a sibling, so an
// uneven batch (one object with a long history next to many cheap cache
// resumes) still keeps every core busy.
//
// The pool makes no determinism promises itself — callers get determinism
// by making each task a pure function of its index (see Rng::ForStream)
// and by merging results in index order.
class ThreadPool {
 public:
  // Spawns `num_threads` workers. num_threads <= 0 means
  // hardware_concurrency (at least 1). With num_threads == 1 the pool
  // still spawns one worker; use RunInline-style serial code paths when
  // the fan-out is not wanted at all.
  explicit ThreadPool(int num_threads);

  // Drains every queued task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(threads_.size()); }

  // Installs observability hooks. Not thread-safe: call before the first
  // Submit (the hooks are read without synchronization afterwards).
  void SetMetrics(const PoolMetrics& metrics) { metrics_ = metrics; }

  // Enqueues one task. Tasks must not themselves block on the pool.
  void Submit(std::function<void()> task);

  // Runs fn(0) ... fn(n-1) across the workers and blocks until all calls
  // returned. The caller's thread helps by stealing while it waits, so
  // ParallelFor from a non-worker thread uses num_threads()+1 cores.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  // What ThreadPool(0) resolves to: hardware_concurrency, at least 1.
  static int DefaultThreads();

 private:
  struct Worker {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(size_t self);
  // Pops one task (own deque back first, then steals a sibling's front)
  // and runs it. Returns false when every deque was empty.
  bool RunOneTask(size_t self);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  PoolMetrics metrics_;

  // Sleep/wake machinery: workers block on wake_cv_ when all deques are
  // empty; Submit notifies.
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::atomic<size_t> next_queue_{0};
  std::atomic<bool> stop_{false};
};

}  // namespace ipqs

#endif  // IPQS_COMMON_THREAD_POOL_H_
