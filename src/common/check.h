#ifndef IPQS_COMMON_CHECK_H_
#define IPQS_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace ipqs {
namespace internal {

// Accumulates a failure message and aborts the process when destroyed.
// CHECK failures are programming errors (broken invariants), not runtime
// errors; runtime errors use Status.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* expr) {
    stream_ << file << ":" << line << " IPQS_CHECK failed: " << expr << " ";
  }
  [[noreturn]] ~CheckFailure() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

// Lets the ternary in IPQS_CHECK have type void on both branches; `&` binds
// looser than `<<`, so all streamed context is collected first.
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace ipqs

// Aborts with a diagnostic when `cond` is false. Additional context may be
// streamed: IPQS_CHECK(x > 0) << "x=" << x;
#define IPQS_CHECK(cond)                 \
  (cond) ? static_cast<void>(0)          \
         : ::ipqs::internal::Voidify() & \
               ::ipqs::internal::CheckFailure(__FILE__, __LINE__, #cond).stream()

#define IPQS_CHECK_EQ(a, b) IPQS_CHECK((a) == (b))
#define IPQS_CHECK_NE(a, b) IPQS_CHECK((a) != (b))
#define IPQS_CHECK_LT(a, b) IPQS_CHECK((a) < (b))
#define IPQS_CHECK_LE(a, b) IPQS_CHECK((a) <= (b))
#define IPQS_CHECK_GT(a, b) IPQS_CHECK((a) > (b))
#define IPQS_CHECK_GE(a, b) IPQS_CHECK((a) >= (b))

#ifdef NDEBUG
#define IPQS_DCHECK(cond) \
  while (false) IPQS_CHECK(cond)
#else
#define IPQS_DCHECK(cond) IPQS_CHECK(cond)
#endif

#endif  // IPQS_COMMON_CHECK_H_
