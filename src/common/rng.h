#ifndef IPQS_COMMON_RNG_H_
#define IPQS_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace ipqs {

// Deterministic random number generator shared by every stochastic component
// in the library (particle motion, sensing noise, trace generation, ...).
//
// All randomness flows through explicitly passed Rng& so that simulations
// and experiments are exactly reproducible from a single seed. Components
// never construct their own generators from wall-clock entropy.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  Rng(const Rng&) = delete;
  Rng& operator=(const Rng&) = delete;
  Rng(Rng&&) = default;
  Rng& operator=(Rng&&) = default;

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform double in [0, 1).
  double Uniform01();

  // Uniform integer in [lo, hi] (inclusive).
  int UniformInt(int lo, int hi);

  // Uniform index in [0, n). Precondition: n > 0.
  size_t UniformIndex(size_t n);

  // Normal with mean `mu` and standard deviation `sigma`.
  double Gaussian(double mu, double sigma);

  // Batched draws for the data-oriented filter kernels: fills out[0..n)
  // with exactly the values n successive Gaussian()/Uniform01() calls
  // would produce — byte-identical sequence, same engine state afterwards.
  // Batching hoists the per-call distribution setup out of consumer loops
  // and keeps those loops branch-light; it never changes draw order.
  void GaussianBatch(double mu, double sigma, size_t n, double* out);
  void Uniform01Batch(size_t n, double* out);

  // True with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p);

  // Samples an index in [0, weights.size()) proportionally to weights.
  // Precondition: weights non-empty with non-negative entries and a
  // positive sum.
  size_t Categorical(const std::vector<double>& weights);

  // Forks an independent deterministic child stream. Used to give each
  // experiment trial its own stream without coupling consumption order.
  Rng Fork();

  // Counter-based stream split: an independent generator that is a pure
  // function of (seed, stream, substream) — no shared state, no dependence
  // on how much any other stream has consumed. Used to give every
  // (object, timestamp) inference its own stream so per-object filtering
  // is order- and thread-count-invariant.
  static Rng ForStream(uint64_t seed, uint64_t stream, uint64_t substream);

  // UniformRandomBitGenerator interface so <random> distributions and
  // std::shuffle can consume this directly.
  using result_type = std::mt19937_64::result_type;
  static constexpr result_type min() { return std::mt19937_64::min(); }
  static constexpr result_type max() { return std::mt19937_64::max(); }
  result_type operator()() { return engine_(); }

 private:
  std::mt19937_64 engine_;
};

}  // namespace ipqs

#endif  // IPQS_COMMON_RNG_H_
