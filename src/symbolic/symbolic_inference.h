#ifndef IPQS_SYMBOLIC_SYMBOLIC_INFERENCE_H_
#define IPQS_SYMBOLIC_SYMBOLIC_INFERENCE_H_

#include <cstdint>

#include "filter/anchor_distribution.h"
#include "graph/anchor_graph.h"
#include "graph/anchor_points.h"
#include "rfid/data_collector.h"
#include "rfid/deployment.h"
#include "symbolic/deployment_graph.h"

namespace ipqs {

// Parameters of the symbolic-model baseline (Yang et al. [29, 30], as
// summarized in Section 3.3 of the paper).
struct SymbolicConfig {
  // u_max: the maximum walking speed bounding the reachable region.
  double max_speed = 1.5;
};

// Symbolic model-based location inference: an object is uniformly
// distributed over all reachable locations constrained by its maximum
// speed and the deployment graph. Concretely, for an object last seen by
// device d at time t_last:
//
//  * currently observed (now == t_last): uniform over the anchor points in
//    d's activation range (Case 1);
//  * otherwise: uniform over all anchor points reachable from d within
//    network distance d.range + u_max * (now - t_last) without crossing
//    any reader's activation zone — i.e. within the cells adjacent to d
//    (Cases 2-4), clipped by the speed constraint.
//
// The output is an AnchorDistribution, so the identical query evaluation
// code runs on both inference methods.
class SymbolicInference {
 public:
  SymbolicInference(const AnchorPointIndex* index,
                    const AnchorGraph* anchor_graph,
                    const Deployment* deployment,
                    const DeploymentGraph* deployment_graph,
                    const SymbolicConfig& config);

  const SymbolicConfig& config() const { return config_; }

  // Location distribution of an object with the given reading history, at
  // time `now`.
  AnchorDistribution Infer(const DataCollector::ObjectHistory& history,
                           int64_t now) const;

 private:
  // Uniform over the anchors covered by `reader`.
  AnchorDistribution CoveredByReader(ReaderId reader) const;

  const AnchorPointIndex* index_;
  const AnchorGraph* anchor_graph_;
  const Deployment* deployment_;
  const DeploymentGraph* deployment_graph_;
  SymbolicConfig config_;
};

}  // namespace ipqs

#endif  // IPQS_SYMBOLIC_SYMBOLIC_INFERENCE_H_
