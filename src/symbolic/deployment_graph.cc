#include "symbolic/deployment_graph.h"

#include <algorithm>

#include "common/check.h"

namespace ipqs {

DeploymentGraph DeploymentGraph::Build(const AnchorPointIndex& index,
                                       const AnchorGraph& anchor_graph,
                                       const Deployment& deployment) {
  DeploymentGraph dg;
  const int n = index.num_anchors();
  dg.covering_.assign(n, kInvalidId);
  dg.cell_of_.assign(n, kInvalidId);
  dg.reader_cells_.resize(deployment.num_readers());

  for (AnchorId a = 0; a < n; ++a) {
    const auto covering = deployment.FirstCovering(index.anchor(a).pos);
    if (covering.has_value()) {
      dg.covering_[a] = *covering;
    }
  }

  // Flood-fill cells over uncovered anchors.
  for (AnchorId start = 0; start < n; ++start) {
    if (dg.covering_[start] != kInvalidId || dg.cell_of_[start] != kInvalidId) {
      continue;
    }
    const CellId cell = static_cast<CellId>(dg.cell_anchors_.size());
    dg.cell_anchors_.emplace_back();
    std::vector<AnchorId> stack = {start};
    dg.cell_of_[start] = cell;
    while (!stack.empty()) {
      const AnchorId cur = stack.back();
      stack.pop_back();
      dg.cell_anchors_[cell].push_back(cur);
      for (const AnchorGraph::Neighbor& nb : anchor_graph.NeighborsOf(cur)) {
        if (dg.covering_[nb.anchor] != kInvalidId) {
          // Cell borders this reader's zone.
          std::vector<CellId>& cells = dg.reader_cells_[dg.covering_[nb.anchor]];
          if (std::find(cells.begin(), cells.end(), cell) == cells.end()) {
            cells.push_back(cell);
          }
          continue;
        }
        if (dg.cell_of_[nb.anchor] == kInvalidId) {
          dg.cell_of_[nb.anchor] = cell;
          stack.push_back(nb.anchor);
        }
      }
    }
    std::sort(dg.cell_anchors_[cell].begin(), dg.cell_anchors_[cell].end());
  }
  return dg;
}

ReaderId DeploymentGraph::CoveringReader(AnchorId anchor) const {
  IPQS_CHECK(anchor >= 0 && anchor < static_cast<AnchorId>(covering_.size()));
  return covering_[anchor];
}

CellId DeploymentGraph::CellOf(AnchorId anchor) const {
  IPQS_CHECK(anchor >= 0 && anchor < static_cast<AnchorId>(cell_of_.size()));
  return cell_of_[anchor];
}

const std::vector<AnchorId>& DeploymentGraph::CellAnchors(CellId cell) const {
  IPQS_CHECK(cell >= 0 && cell < num_cells());
  return cell_anchors_[cell];
}

const std::vector<CellId>& DeploymentGraph::CellsAdjacentToReader(
    ReaderId reader) const {
  IPQS_CHECK(reader >= 0 &&
             reader < static_cast<ReaderId>(reader_cells_.size()));
  return reader_cells_[reader];
}

}  // namespace ipqs
