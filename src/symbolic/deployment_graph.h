#ifndef IPQS_SYMBOLIC_DEPLOYMENT_GRAPH_H_
#define IPQS_SYMBOLIC_DEPLOYMENT_GRAPH_H_

#include <cstdint>
#include <vector>

#include "graph/anchor_graph.h"
#include "graph/anchor_points.h"
#include "rfid/deployment.h"

namespace ipqs {

using CellId = int32_t;

// The RFID reader deployment graph of the symbolic model (Section 3.3,
// after Jensen et al. / Yang et al.): positioning devices partition the
// indoor space into cells — maximal regions an object can roam without
// being detected. We materialize cells at anchor-point granularity: an
// anchor point covered by some reader belongs to that reader's zone;
// uncovered anchor points are grouped into cells by connectivity over the
// anchor graph.
//
// In the paper's deployment every reader spans the full hallway width, so
// all readers act as undirected partitioning devices; a reader whose zone
// touches only one cell degenerates to a presence device.
class DeploymentGraph {
 public:
  static DeploymentGraph Build(const AnchorPointIndex& index,
                               const AnchorGraph& anchor_graph,
                               const Deployment& deployment);

  // The reader whose activation range covers this anchor, or kInvalidId.
  ReaderId CoveringReader(AnchorId anchor) const;

  // The cell containing this anchor, or kInvalidId when the anchor sits in
  // a reader zone.
  CellId CellOf(AnchorId anchor) const;

  int num_cells() const { return static_cast<int>(cell_anchors_.size()); }

  // All anchor points of one cell.
  const std::vector<AnchorId>& CellAnchors(CellId cell) const;

  // Cells whose boundary touches the given reader's zone (the candidate
  // cells an object may occupy after leaving that reader).
  const std::vector<CellId>& CellsAdjacentToReader(ReaderId reader) const;

 private:
  DeploymentGraph() = default;

  std::vector<ReaderId> covering_;           // Per anchor.
  std::vector<CellId> cell_of_;              // Per anchor.
  std::vector<std::vector<AnchorId>> cell_anchors_;
  std::vector<std::vector<CellId>> reader_cells_;  // Per reader.
};

}  // namespace ipqs

#endif  // IPQS_SYMBOLIC_DEPLOYMENT_GRAPH_H_
