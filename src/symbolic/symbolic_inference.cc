#include "symbolic/symbolic_inference.h"

#include <vector>

#include "common/check.h"

namespace ipqs {

SymbolicInference::SymbolicInference(const AnchorPointIndex* index,
                                     const AnchorGraph* anchor_graph,
                                     const Deployment* deployment,
                                     const DeploymentGraph* deployment_graph,
                                     const SymbolicConfig& config)
    : index_(index),
      anchor_graph_(anchor_graph),
      deployment_(deployment),
      deployment_graph_(deployment_graph),
      config_(config) {
  IPQS_CHECK(index != nullptr);
  IPQS_CHECK(anchor_graph != nullptr);
  IPQS_CHECK(deployment != nullptr);
  IPQS_CHECK(deployment_graph != nullptr);
  IPQS_CHECK_GT(config.max_speed, 0.0);
}

AnchorDistribution SymbolicInference::CoveredByReader(ReaderId reader) const {
  std::vector<AnchorId> covered;
  for (AnchorId a = 0; a < index_->num_anchors(); ++a) {
    if (deployment_graph_->CoveringReader(a) == reader) {
      covered.push_back(a);
    }
  }
  return AnchorDistribution::Uniform(std::move(covered));
}

AnchorDistribution SymbolicInference::Infer(
    const DataCollector::ObjectHistory& history, int64_t now) const {
  IPQS_CHECK(!history.entries.empty());
  const AggregatedEntry& last = history.entries.back();
  const int64_t elapsed = now - last.time;
  IPQS_CHECK_GE(elapsed, 0);

  // Case 1: currently observed -> anywhere in the detecting range.
  if (elapsed == 0) {
    return CoveredByReader(last.reader);
  }

  // Cases 2-4: uniform over every location reachable without being seen.
  // The deployment's readers cover the hallway width, so their zones are
  // impassable; the object's own last device is the expansion source.
  const Reader& d = deployment_->reader(last.reader);
  const double budget =
      d.range + config_.max_speed * static_cast<double>(elapsed);
  const DeploymentGraph* dg = deployment_graph_;
  const ReaderId own = last.reader;
  const auto passable = [dg, own](AnchorId a) {
    const ReaderId covering = dg->CoveringReader(a);
    // The object departed through its own zone; every other zone would
    // have produced a reading.
    return covering == kInvalidId || covering == own;
  };

  const auto reached =
      anchor_graph_->WithinDistance(*index_, d.loc, budget, passable);

  std::vector<AnchorId> possible;
  possible.reserve(reached.size());
  for (const auto& [anchor, _] : reached) {
    if (dg->CoveringReader(anchor) == kInvalidId) {
      possible.push_back(anchor);
    }
  }
  if (possible.empty()) {
    // Speed budget too small to exit the zone: the symbolic model keeps
    // the object inside the device range (Case 1 degenerate).
    return CoveredByReader(last.reader);
  }
  return AnchorDistribution::Uniform(std::move(possible));
}

}  // namespace ipqs
