#ifndef IPQS_QUERY_CONTINUOUS_H_
#define IPQS_QUERY_CONTINUOUS_H_

#include <cstdint>
#include <map>
#include <vector>

#include "query/query_engine.h"

namespace ipqs {

class SubscriptionManager;

// Continuous indoor spatial queries — the extensions the paper lists as
// future work (Section 6: "continuous range, continuous kNN,
// closest-pairs"). A monitor wraps a standing query against a QueryEngine
// and reports result *deltas* between polls, which is what a monitoring
// application actually consumes. Monitors can alternatively be backed by a
// SubscriptionManager (query/subscription.h), which evaluates many
// standing queries incrementally and shares work across them.

// Delta of a continuous range query between two polls. Membership is
// thresholded: an object is "inside" while its probability of being in the
// window is at least `membership_threshold`.
struct RangeUpdate {
  int64_t time = 0;
  std::vector<std::pair<ObjectId, double>> entered;  // Crossed above.
  std::vector<ObjectId> left;                        // Dropped below.

  bool Empty() const { return entered.empty() && left.empty(); }
};

// The shared delta algebra both the monitors and the SubscriptionManager
// speak: diffs `result` (thresholded at `threshold`) against `*members`,
// returns the delta, and advances `*members` to the new membership.
// Ordering contract: `entered` and `left` are ascending by ObjectId —
// explicitly, never via container iteration order — so deltas are stable
// under any upstream reordering of equal-probability results.
RangeUpdate DiffRangeResult(const QueryResult& result, double threshold,
                            int64_t now, std::map<ObjectId, double>* members);

class ContinuousRangeMonitor {
 public:
  ContinuousRangeMonitor(QueryEngine* engine, Rect window,
                         double membership_threshold = 0.5);
  // Subscription-backed monitor: the standing query is registered with
  // `manager` and every Poll serves from its (incrementally maintained)
  // cached answer instead of re-running the query.
  ContinuousRangeMonitor(SubscriptionManager* manager, Rect window,
                         double membership_threshold = 0.5);

  // Re-evaluates the standing query at `now` and returns what changed
  // since the previous poll.
  RangeUpdate Poll(int64_t now);

  const Rect& window() const { return window_; }
  // Objects currently above the membership threshold, with probabilities.
  const std::map<ObjectId, double>& members() const { return members_; }

 private:
  QueryEngine* engine_ = nullptr;
  SubscriptionManager* manager_ = nullptr;
  int64_t sub_id_ = -1;
  Rect window_;
  double threshold_;
  std::map<ObjectId, double> members_;
};

// Delta of a continuous kNN query between two polls, tracking the k most
// probable objects of the Algorithm 4 result.
struct KnnUpdate {
  int64_t time = 0;
  std::vector<ObjectId> entered;
  std::vector<ObjectId> left;
  std::vector<ObjectId> current;  // The full current top-k, most probable first.

  bool Empty() const { return entered.empty() && left.empty(); }
};

// kNN counterpart of DiffRangeResult: diffs the top-k of `result` against
// `*current` and advances it. `current` in the update (and `*current`)
// keeps the most-probable-first top-k order; `entered`/`left` are
// ascending by ObjectId, independent of probability ties.
KnnUpdate DiffKnnResult(const KnnResult& result, int k, int64_t now,
                        std::vector<ObjectId>* current);

class ContinuousKnnMonitor {
 public:
  ContinuousKnnMonitor(QueryEngine* engine, Point query, int k);
  // Subscription-backed monitor (see ContinuousRangeMonitor).
  ContinuousKnnMonitor(SubscriptionManager* manager, Point query, int k);

  KnnUpdate Poll(int64_t now);

  const Point& query() const { return query_; }
  int k() const { return k_; }

 private:
  QueryEngine* engine_ = nullptr;
  SubscriptionManager* manager_ = nullptr;
  int64_t sub_id_ = -1;
  Point query_;
  int k_;
  std::vector<ObjectId> current_;
};

// Probabilistic Threshold kNN (PTkNN of Yang et al. [30]): the objects of
// an Algorithm 4 result whose accumulated probability of belonging to the
// kNN set reaches `threshold`, most probable first.
std::vector<std::pair<ObjectId, double>> ThresholdKnn(const KnnResult& result,
                                                      double threshold);

// Closest-pair query: the two objects with the smallest expected network
// distance, approximated by the distance between their most probable
// (MAP) anchor points. One Dijkstra over the anchor graph per object.
struct ClosestPairResult {
  ObjectId first = kInvalidId;
  ObjectId second = kInvalidId;
  double distance = 0.0;
};

class ClosestPairEvaluator {
 public:
  ClosestPairEvaluator(const AnchorPointIndex* anchors,
                       const AnchorGraph* anchor_graph);

  // Fails with NotFound when fewer than two objects are known.
  StatusOr<ClosestPairResult> Evaluate(const AnchorObjectTable& table) const;

 private:
  const AnchorPointIndex* anchors_;
  const AnchorGraph* anchor_graph_;
};

}  // namespace ipqs

#endif  // IPQS_QUERY_CONTINUOUS_H_
