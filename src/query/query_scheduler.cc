#include "query/query_scheduler.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/check.h"
#include "query/uncertain_region.h"

namespace {

// Byte-identical queries (bit-equal coordinates) collapse to one
// evaluation; nearly-equal ones do not — dedup must never change answers.
bool SameQuery(const ipqs::BatchQuery& a, const ipqs::BatchQuery& b) {
  if (a.kind != b.kind) {
    return false;
  }
  if (a.kind == ipqs::BatchQuery::Kind::kRange) {
    return a.window.min_x == b.window.min_x &&
           a.window.min_y == b.window.min_y &&
           a.window.max_x == b.window.max_x && a.window.max_y == b.window.max_y;
  }
  return a.point.x == b.point.x && a.point.y == b.point.y && a.k == b.k;
}

}  // namespace

namespace ipqs {

QueryScheduler::QueryScheduler(QueryEngine* engine) : engine_(engine) {
  IPQS_CHECK(engine != nullptr);
  obs::MetricsRegistry* m = engine_->metrics_;
  const std::string& p = engine_->config_.metrics_prefix;
  batches_ = m->GetCounter(p + ".qps.batches");
  queries_ = m->GetCounter(p + ".qps.queries");
  duplicate_queries_ = m->GetCounter(p + ".qps.duplicate_queries");
  candidate_slots_ = m->GetCounter(p + ".qps.candidate_slots");
  unique_candidates_ = m->GetCounter(p + ".qps.unique_candidates");
  batch_size_ = m->GetHistogram(p + ".qps.batch_size");
}

std::vector<BatchAnswer> QueryScheduler::EvaluateBatch(
    const std::vector<BatchQuery>& batch, int64_t now) {
  return EvaluateBatch(batch, now, engine_->config_.deadline_ms);
}

std::vector<BatchAnswer> QueryScheduler::EvaluateBatch(
    const std::vector<BatchQuery>& batch, int64_t now, int64_t deadline_ms) {
  return EvaluateBatch(batch, now, deadline_ms, nullptr);
}

std::vector<BatchAnswer> QueryScheduler::EvaluateBatch(
    const std::vector<BatchQuery>& batch, int64_t now, int64_t deadline_ms,
    std::vector<obs::QueryExplain>* explains) {
  return EvaluateBatch(batch, now, deadline_ms, explains, nullptr);
}

std::vector<BatchAnswer> QueryScheduler::EvaluateBatch(
    const std::vector<BatchQuery>& batch, int64_t now, int64_t deadline_ms,
    std::vector<obs::QueryExplain>* explains,
    std::vector<BatchSlotDetail>* details) {
  std::vector<BatchAnswer> answers(batch.size());
  if (details != nullptr) {
    details->assign(batch.size(), BatchSlotDetail{});
  }
  const bool explained = explains != nullptr;
  if (explained) {
    explains->assign(batch.size(), obs::QueryExplain{});
  }
  if (batch.empty()) {
    return answers;
  }
  const int64_t t_start = explained ? obs::MonotonicNanos() : 0;
  const QueryEngine::ExplainBaseline baseline =
      explained ? engine_->CaptureBaseline() : QueryEngine::ExplainBaseline{};
  batches_->Increment();
  queries_->Increment(static_cast<int64_t>(batch.size()));
  batch_size_->Observe(static_cast<int64_t>(batch.size()));
  engine_->counters_.queries->Increment(static_cast<int64_t>(batch.size()));
  engine_->SyncTableTo(now);

  // Stage 1: dedup. slot_of maps every batch index to its distinct slot.
  struct Distinct {
    size_t first_index = 0;
    GraphLocation q;                  // kKnn: snapped query location.
    SourceDistances qd;               // kKnn: pruning distance bounds.
    std::vector<ObjectId> restrict;   // Canonical candidate set.
    BatchAnswer answer;
    obs::QueryExplain explain;        // Filled only when requested.
  };
  std::vector<Distinct> distinct;
  std::vector<size_t> slot_of(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    size_t slot = distinct.size();
    for (size_t s = 0; s < distinct.size(); ++s) {
      if (SameQuery(batch[distinct[s].first_index], batch[i])) {
        slot = s;
        break;
      }
    }
    slot_of[i] = slot;
    if (slot < distinct.size()) {
      duplicate_queries_->Increment();
      continue;
    }
    Distinct d;
    d.first_index = i;
    distinct.push_back(std::move(d));
  }

  // Stage 2: per-distinct-query pruning, exactly the serial path's.
  const EngineConfig& cfg = engine_->config_;
  const int64_t known =
      static_cast<int64_t>(engine_->collector_->KnownObjects().size());
  for (Distinct& d : distinct) {
    const BatchQuery& q = batch[d.first_index];
    engine_->counters_.objects_considered->Increment(known);
    std::vector<ObjectId> candidates;
    if (q.kind == BatchQuery::Kind::kRange) {
      if (cfg.use_pruning) {
        candidates =
            FilterRangeCandidates(*engine_->collector_, *engine_->deployment_,
                                  {q.window}, now, cfg.max_speed);
      } else {
        candidates = engine_->collector_->KnownObjects();
      }
    } else {
      d.q = engine_->graph_->NearestLocation(q.point,
                                             /*prefer_hallways=*/true);
      if (cfg.use_pruning) {
        d.qd = engine_->DistancesFor(d.q);
        candidates =
            FilterKnnCandidates(*engine_->collector_, *engine_->deployment_,
                                d.qd, q.k, now, cfg.max_speed);
      } else {
        candidates = engine_->collector_->KnownObjects();
      }
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    d.restrict = std::move(candidates);
    candidate_slots_->Increment(static_cast<int64_t>(d.restrict.size()));
    if (explained) {
      obs::QueryExplain& e = d.explain;
      e.kind = q.kind == BatchQuery::Kind::kRange ? "range" : "knn";
      e.now = now;
      e.deadline_ms = deadline_ms;
      e.k = q.kind == BatchQuery::Kind::kKnn ? q.k : 0;
      e.pruning_enabled = cfg.use_pruning;
      e.objects_known = known;
      e.candidates = static_cast<int64_t>(d.restrict.size());
      if (!d.qd.empty()) {
        e.dindex_slack = d.qd.slack;
      }
      e.batched = true;
      e.batch_size = static_cast<int64_t>(batch.size());
      engine_->ProbeCacheOutcomes(d.restrict, now, &e);
      engine_->FillIngestContext(&e);
    }
  }
  const int64_t t_pruned = explained ? obs::MonotonicNanos() : 0;

  // Stage 3: one admission decision for the union, so the deadline budget
  // is charged once per unique object no matter how many queries want it.
  std::vector<ObjectId> all;
  for (const Distinct& d : distinct) {
    all.insert(all.end(), d.restrict.begin(), d.restrict.end());
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  unique_candidates_->Increment(static_cast<int64_t>(all.size()));
  QueryEngine::PlanDecision decision;
  const QueryEngine::InferPlan plan = engine_->PlanInference(
      all, now, deadline_ms, explained ? &decision : nullptr);
  // Every batch query is served at the chosen level; count them all, as
  // the serial path would.
  for (size_t i = 0; i < batch.size(); ++i) {
    engine_->CountPlan(plan);
  }

  // Stages 4+5: infer once, then answer each distinct query against the
  // shared table restricted to its own candidates.
  int64_t t_inferred = t_pruned;
  if (plan.level == QualityLevel::kPruneOnly) {
    for (Distinct& d : distinct) {
      const BatchQuery& q = batch[d.first_index];
      if (q.kind == BatchQuery::Kind::kRange) {
        d.answer.range = engine_->PruneOnlyRange(d.restrict, q.window, now);
      } else {
        if (d.qd.empty()) {
          d.qd = engine_->DistancesFor(d.q);  // Pruning was off.
        }
        d.answer.knn = engine_->PruneOnlyKnn(d.restrict, d.qd, q.k, now);
      }
    }
  } else if (plan.level != QualityLevel::kFull) {
    AnchorObjectTable scratch;
    engine_->ExecuteDegradedPlan(plan, now, &scratch);
    t_inferred = explained ? obs::MonotonicNanos() : t_pruned;
    for (Distinct& d : distinct) {
      const BatchQuery& q = batch[d.first_index];
      if (q.kind == BatchQuery::Kind::kRange) {
        d.answer.range =
            engine_->range_eval_.Evaluate(scratch, q.window, &d.restrict);
        d.answer.range.quality = plan.level;
      } else {
        d.answer.knn =
            engine_->knn_eval_.Evaluate(scratch, d.q, q.k, &d.restrict);
        d.answer.knn.result.quality = plan.level;
      }
    }
  } else {
    engine_->InferBatch(all, now);
    t_inferred = explained ? obs::MonotonicNanos() : t_pruned;
    for (Distinct& d : distinct) {
      const BatchQuery& q = batch[d.first_index];
      if (q.kind == BatchQuery::Kind::kRange) {
        d.answer.range = engine_->range_eval_.Evaluate(engine_->table_,
                                                       q.window, &d.restrict);
      } else {
        d.answer.knn = engine_->knn_eval_.Evaluate(engine_->table_, d.q, q.k,
                                                   &d.restrict);
      }
    }
  }

  // Coverage annotation runs the serial path's read of the health view, so
  // each distinct answer carries exactly what the unbatched query would.
  for (Distinct& d : distinct) {
    const BatchQuery& q = batch[d.first_index];
    if (q.kind == BatchQuery::Kind::kRange) {
      d.answer.range.coverage_degraded =
          engine_->CoverageDegraded(d.restrict, &q.window);
    } else {
      d.answer.knn.result.coverage_degraded =
          engine_->CoverageDegraded(d.restrict, nullptr);
    }
  }

  if (explained) {
    const int64_t t_end = obs::MonotonicNanos();
    for (Distinct& d : distinct) {
      obs::QueryExplain& e = d.explain;
      const BatchQuery& q = batch[d.first_index];
      const QualityLevel served = q.kind == BatchQuery::Kind::kRange
                                      ? d.answer.range.quality
                                      : d.answer.knn.result.quality;
      e.quality = std::string(ToString(served));
      e.coverage_degraded = q.kind == BatchQuery::Kind::kRange
                                ? d.answer.range.coverage_degraded
                                : d.answer.knn.result.coverage_degraded;
      e.budget_reason = decision.reason;
      e.budget_filter_seconds = decision.budget;
      e.est_full_cost = decision.est_full;
      e.est_stale_cost = decision.est_stale;
      e.est_reduced_cost = decision.est_reduced;
      // Batch stages run once for everyone; each record reports the
      // batch's stage walls and the batch's work deltas (the per-query
      // marginal cost is exactly what batching dissolves).
      e.prune_ns = t_pruned - t_start;
      e.infer_ns = t_inferred - t_pruned;
      e.evaluate_ns = t_end - t_inferred;
      e.total_ns = t_end - t_start;
      engine_->ChargeDeltas(baseline, &e);
      if (q.kind == BatchQuery::Kind::kRange) {
        e.result_objects = static_cast<int64_t>(d.answer.range.objects.size());
        e.result_total_probability = d.answer.range.TotalProbability();
      } else {
        e.result_objects =
            static_cast<int64_t>(d.answer.knn.result.objects.size());
        e.result_total_probability = d.answer.knn.total_probability;
      }
    }
  }

  // Fan each distinct answer back to every duplicate slot.
  for (size_t i = 0; i < batch.size(); ++i) {
    const Distinct& d = distinct[slot_of[i]];
    answers[i] = d.answer;
    answers[i].kind = batch[i].kind;
    if (explained) {
      (*explains)[i] = d.explain;
      (*explains)[i].deduped = d.first_index != i;
    }
    if (details != nullptr) {
      BatchSlotDetail& slot = (*details)[i];
      slot.candidates = d.restrict;
      slot.snapped = d.q;
      slot.dists = d.qd;
    }
  }
  return answers;
}

}  // namespace ipqs
