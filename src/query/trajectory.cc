#include "query/trajectory.h"

#include <limits>

#include "common/check.h"

namespace ipqs {

std::vector<TrajectoryPoint> ReconstructTrajectory(HistoricalEngine& engine,
                                                   ObjectId object,
                                                   int64_t from, int64_t to,
                                                   int64_t step) {
  IPQS_CHECK_GT(step, 0);
  IPQS_CHECK_LE(from, to);
  std::vector<TrajectoryPoint> out;
  for (int64_t t = from; t <= to; t += step) {
    const AnchorDistribution* dist = engine.InferObjectAt(object, t);
    if (dist == nullptr || dist->empty()) {
      continue;  // Not yet (or never) detected by time t.
    }
    const AnchorId map_anchor = dist->TopK(1).front();
    out.push_back({t, map_anchor, dist->ProbabilityAt(map_anchor)});
  }
  return out;
}

double TrajectoryLength(const AnchorPointIndex& anchors,
                        const AnchorGraph& anchor_graph,
                        const std::vector<TrajectoryPoint>& trajectory) {
  double total = 0.0;
  for (size_t i = 0; i + 1 < trajectory.size(); ++i) {
    if (trajectory[i].anchor == trajectory[i + 1].anchor) {
      continue;
    }
    const AnchorPoint& from = anchors.anchor(trajectory[i].anchor);
    // Bounded expansion from the current anchor until the next one is
    // settled; trajectories move a few meters per step, so budgets stay
    // small. Fall back to the Euclidean lower bound if unreachable within
    // a generous budget (disconnected should not happen).
    const double budget = 200.0;
    double leg = -1.0;
    for (const auto& [anchor, dist] : anchor_graph.WithinDistance(
             anchors, GraphLocation{from.edge, from.offset}, budget)) {
      if (anchor == trajectory[i + 1].anchor) {
        leg = dist;
        break;
      }
    }
    if (leg < 0.0) {
      leg = Distance(from.pos, anchors.anchor(trajectory[i + 1].anchor).pos);
    }
    total += leg;
  }
  return total;
}

}  // namespace ipqs
