#include "query/events.h"

#include <algorithm>

#include "common/check.h"

namespace ipqs {

double ProbabilityInRoom(const AnchorPointIndex& anchors,
                         const AnchorObjectTable& table, ObjectId object,
                         RoomId room) {
  const AnchorDistribution* dist = table.Distribution(object);
  if (dist == nullptr) {
    return 0.0;
  }
  double p = 0.0;
  for (const auto& [anchor, mass] : dist->entries()) {
    if (anchors.anchor(anchor).room == room) {
      p += mass;
    }
  }
  return p;
}

double ProbabilityTogether(const AnchorPointIndex& anchors,
                           const AnchorGraph& anchor_graph,
                           const AnchorObjectTable& table, ObjectId a,
                           ObjectId b, double within_meters) {
  IPQS_CHECK_GE(within_meters, 0.0);
  const AnchorDistribution* da = table.Distribution(a);
  const AnchorDistribution* db = table.Distribution(b);
  if (da == nullptr || db == nullptr) {
    return 0.0;
  }
  // For every anchor in a's support, collect b's mass within the distance
  // budget (bounded Dijkstra per support anchor; supports are small).
  double total = 0.0;
  for (const auto& [anchor_a, mass_a] : da->entries()) {
    const AnchorPoint& ap = anchors.anchor(anchor_a);
    const auto reachable = anchor_graph.WithinDistance(
        anchors, GraphLocation{ap.edge, ap.offset}, within_meters);
    double mass_b_nearby = 0.0;
    for (const auto& [anchor_b, _] : reachable) {
      mass_b_nearby += db->ProbabilityAt(anchor_b);
    }
    // The source anchor itself is at distance 0 but SeedsFrom may skip it
    // only if budgets are tiny; ProbabilityAt covers the overlap already
    // when anchor_a is in `reachable`. Guard for the degenerate budget:
    if (reachable.empty()) {
      mass_b_nearby = db->ProbabilityAt(anchor_a);
    }
    total += mass_a * mass_b_nearby;
  }
  return std::min(total, 1.0);
}

MeetingDetector::MeetingDetector(QueryEngine* engine,
                                 const AnchorPointIndex* anchors, ObjectId a,
                                 ObjectId b, RoomId room,
                                 double probability_threshold,
                                 int64_t min_duration_seconds)
    : engine_(engine),
      anchors_(anchors),
      a_(a),
      b_(b),
      room_(room),
      threshold_(probability_threshold),
      min_duration_(min_duration_seconds) {
  IPQS_CHECK(engine != nullptr);
  IPQS_CHECK(anchors != nullptr);
  IPQS_CHECK(probability_threshold > 0.0 && probability_threshold <= 1.0);
  IPQS_CHECK_GE(min_duration_seconds, 0);
}

std::optional<MeetingEvent> MeetingDetector::CloseStreak() {
  in_streak_ = false;
  if (streak_last_ - streak_start_ + 1 < min_duration_) {
    return std::nullopt;  // Too short to count as a meeting.
  }
  MeetingEvent event;
  event.start = streak_start_;
  event.end = streak_last_;
  event.mean_probability =
      streak_samples_ == 0 ? 0.0 : streak_prob_sum_ / streak_samples_;
  return event;
}

std::optional<MeetingEvent> MeetingDetector::Poll(int64_t now) {
  engine_->InferObject(a_, now);
  engine_->InferObject(b_, now);
  const double pa =
      ProbabilityInRoom(*anchors_, engine_->table(), a_, room_);
  const double pb =
      ProbabilityInRoom(*anchors_, engine_->table(), b_, room_);
  last_probability_ = pa * pb;

  if (last_probability_ >= threshold_) {
    if (!in_streak_) {
      in_streak_ = true;
      streak_start_ = now;
      streak_prob_sum_ = 0.0;
      streak_samples_ = 0;
    }
    streak_last_ = now;
    streak_prob_sum_ += last_probability_;
    ++streak_samples_;
    return std::nullopt;
  }
  if (in_streak_) {
    return CloseStreak();
  }
  return std::nullopt;
}

std::optional<MeetingEvent> MeetingDetector::Flush() {
  if (!in_streak_) {
    return std::nullopt;
  }
  return CloseStreak();
}

}  // namespace ipqs
