#ifndef IPQS_QUERY_RANGE_QUERY_H_
#define IPQS_QUERY_RANGE_QUERY_H_

#include <utility>
#include <vector>

#include "filter/anchor_distribution.h"
#include "floorplan/floor_plan.h"
#include "graph/anchor_points.h"
#include "query/quality.h"
#include "rfid/reader.h"

namespace ipqs {

// Probabilistic result of a spatial query: each candidate object with its
// probability of satisfying the query.
struct QueryResult {
  std::vector<std::pair<ObjectId, double>> objects;
  // Fidelity the answer was computed at (see quality.h); anything other
  // than kFull means the engine degraded to meet a deadline.
  QualityLevel quality = QualityLevel::kFull;
  // True when reader health monitoring (src/health/) flagged a degraded
  // reader whose zone or detections touch this answer: coverage over part
  // of the queried space was impaired, so probabilities may be stale.
  bool coverage_degraded = false;

  double TotalProbability() const;
  double ProbabilityOf(ObjectId object) const;
  // Adds `p` to `object`'s probability (Algorithm 3's resultSet addition).
  void Add(ObjectId object, double p);
  // Objects sorted by descending probability (ties: ascending id), trimmed
  // to at most `k` entries; k < 0 keeps everything.
  std::vector<ObjectId> TopObjects(int k = -1) const;
};

// Indoor range query evaluation (Algorithm 3). Anchor points are the 1-D
// projection of 2-D space, so the lost dimension is compensated per
// container:
//  * hallway: anchors within the window's along-hallway extent count with
//    ratio (overlapped hallway width) / (full hallway width);
//  * room: all anchors of the room count with ratio
//    area(window ∩ room) / area(room).
class RangeQueryEvaluator {
 public:
  RangeQueryEvaluator(const FloorPlan* plan, const AnchorPointIndex* anchors);

  // Probability each object lies inside `window`, given the location
  // distributions in `table`. With `restrict_to` non-null (a SORTED object
  // id list), only those objects contribute: the table may hold
  // distributions memoized for other queries at the same timestamp, and a
  // query's answer must be a function of its own candidate set alone.
  QueryResult Evaluate(const AnchorObjectTable& table,
                       const Rect& window) const;
  QueryResult Evaluate(const AnchorObjectTable& table, const Rect& window,
                       const std::vector<ObjectId>* restrict_to) const;

 private:
  const FloorPlan* plan_;
  const AnchorPointIndex* anchors_;
};

}  // namespace ipqs

#endif  // IPQS_QUERY_RANGE_QUERY_H_
