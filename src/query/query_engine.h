#ifndef IPQS_QUERY_QUERY_ENGINE_H_
#define IPQS_QUERY_QUERY_ENGINE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "filter/particle_cache.h"
#include "filter/particle_filter.h"
#include "graph/distance_index.h"
#include "graph/distance_oracle.h"
#include "health/reader_health.h"
#include "obs/explain.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/knn_query.h"
#include "query/range_query.h"
#include "query/uncertain_region.h"
#include "symbolic/symbolic_inference.h"

namespace ipqs {

// Which location inference backend feeds query evaluation.
enum class InferenceMethod {
  kParticleFilter,  // The paper's contribution (PF).
  kSymbolicModel,   // The paper's baseline (SM).
  // Naive floor: the object is wherever its last detecting reader is
  // (uniform over that reader's activation zone, regardless of how stale
  // the reading is). Not in the paper; a sanity comparator that shows
  // what the probabilistic models buy.
  kLastReading,
};

// Admission/downgrade policy for deadline-bound queries. The budget is
// deliberately a WORK bound, not a wall-clock one: a deadline of D ms buys
// D * filter_seconds_per_ms filter-seconds of inference, and the engine
// picks the highest quality level whose estimated work fits. Estimates
// derive only from object histories and cache state, so the chosen level —
// and therefore the answer — is a pure function of (seed, load), never of
// machine speed or scheduling. kFull is used whenever the work fits.
struct DegradePolicy {
  // Calibration: filter-seconds of inference work one millisecond of
  // deadline is assumed to buy. Raise on faster machines for more
  // aggressive admission; answers change only through the level choice.
  double filter_seconds_per_ms = 50.0;
  // kCachedStale serves a cached state as-is only when its age
  // (now - state.time) is within this bound.
  int64_t max_stale_age_seconds = 30;
  // Particle count for kReducedParticles runs (must be < filter Ns to
  // actually shed work).
  int reduced_particles = 16;
};

struct EngineConfig {
  InferenceMethod method = InferenceMethod::kParticleFilter;
  FilterConfig filter;
  SymbolicConfig symbolic;
  // Default per-query deadline in milliseconds; 0 disables degradation.
  // Per-call overloads of EvaluateRange/EvaluateKnn override it.
  int64_t deadline_ms = 0;
  DegradePolicy degrade;
  // u_max used by the query-aware optimization module's uncertain regions.
  double max_speed = 1.5;
  bool use_pruning = true;  // Query aware optimization module on/off.
  bool use_cache = true;    // Cache management module on/off (PF only).
  // Distance index (query serving layer): kNN pruning reads a shared,
  // LRU-cached one-to-all table sourced at the anchor point the query
  // location canonicalizes to (reader positions are pinned eagerly),
  // instead of running a fresh Dijkstra per query. Pruning intervals are
  // widened by the query-to-anchor slack, so candidate sets are a sound
  // superset of the exact ones (usually identical: panel query points sit
  // on anchors, making the slack 0). Off = the exact per-query Dijkstra.
  bool use_distance_index = true;
  size_t distance_index_capacity = 256;  // Unpinned LRU entries.
  // Distance oracle (preprocessing mode, src/graph/distance_oracle.h):
  // ALT landmark tables plus a dense anchor-to-reader matrix built at
  // construction, so kNN pruning bounds become pure array lookups with no
  // per-query Dijkstra and no LRU to thrash. Takes precedence over the
  // distance index when both are enabled. Matrix rows are computed through
  // the same canonicalized one-to-all evaluation the index caches, so
  // answers are byte-identical across all three modes (exact / index /
  // oracle). Worth the preprocessing cost on large graphs; see
  // bench/micro_oracle for the crossover.
  bool use_distance_oracle = false;
  int oracle_landmarks = 16;
  uint64_t seed = 7;
  // Fan-out width for batch inference (EvaluateRange / EvaluateKnn /
  // InferBatch): per-object filter runs are spread over this many worker
  // threads. 1 = serial. Answers are identical at any setting — every
  // object's inference draws from its own (seed, object, timestamp)
  // stream (Rng::ForStream) and results merge in ascending object order.
  int num_threads = 1;
  // Observability. With `metrics` set, the engine registers per-stage
  // latency histograms, cache/pool counters, and the EngineStats counters
  // under `metrics_prefix` in that registry (engines sharing a registry
  // need distinct prefixes, or they share counters). With `metrics` null
  // the engine keeps a private registry for its EngineStats counters and
  // skips every timer — no clock is ever read, so the untouched cost is
  // zero. Neither knob perturbs query answers (metrics never feed RNG).
  obs::MetricsRegistry* metrics = nullptr;
  std::string metrics_prefix = "engine";
  // When set, every query emits Chrome-tracing spans (whole query, prune /
  // infer / merge / evaluate stages, and one span per inferred object)
  // into this recorder; load the JSON in chrome://tracing or Perfetto.
  obs::TraceRecorder* trace = nullptr;
  // Optional reader-health monitor (src/health/). When set and enabled,
  //  * silence from suspect/dead readers no longer discounts particles in
  //    the negative-information branch (their silence is uninformative);
  //  * answers whose window or candidates touch a degraded reader carry
  //    coverage_degraded so consumers know coverage was impaired.
  // Null (or a disabled monitor) reports every reader healthy; the
  // collector-side liveness gate (a reader with zero readings system-wide
  // for a replayed second never discounts) applies regardless.
  const ReaderHealthMonitor* health = nullptr;
};

struct EngineStats {
  int64_t queries = 0;
  int64_t objects_considered = 0;   // Known objects summed over queries.
  int64_t candidates_inferred = 0;  // Objects surviving pruning.
  int64_t filter_runs = 0;          // Full Algorithm 2 executions.
  int64_t filter_resumes = 0;       // Cache-hit resumptions.
  int64_t filter_seconds = 0;       // Total filtered seconds (work proxy).
};

// How often deadline pressure pushed answers down the quality ladder.
struct DegradeStats {
  int64_t full = 0;               // Queries answered at kFull.
  int64_t cached_stale = 0;       // ... at kCachedStale.
  int64_t reduced_particles = 0;  // ... at kReducedParticles.
  int64_t prune_only = 0;         // ... at kPruneOnly.
  int64_t stale_served_objects = 0;  // Objects served a cached state as-is.
};

// The end-to-end indoor spatial query evaluation system (Figure 3): data
// collector -> query aware optimization -> inference (particle filter with
// cache, or symbolic baseline) -> APtoObjHT -> query evaluation.
//
// The engine owns no simulation state; it reads the shared DataCollector
// and lazily infers location distributions for candidate objects at query
// time, memoizing them in the APtoObjHT for the duration of one timestamp.
//
// Determinism guarantee: the distribution inferred for an object at a
// timestamp is a pure function of (engine seed, that object's history,
// timestamp) — independent of candidate order, of which other objects were
// inferred before it, of pruning, and of num_threads. With the cache
// enabled the filter resumes from the cached state instead of replaying
// the whole history, so the (identical-across-threads) answer additionally
// depends on which timestamps were previously queried.
class QueryEngine {
 public:
  QueryEngine(const WalkingGraph* graph, const FloorPlan* plan,
              const AnchorPointIndex* anchors, const AnchorGraph* anchor_graph,
              const Deployment* deployment,
              const DeploymentGraph* deployment_graph,
              const DataCollector* collector, const EngineConfig& config);

  // Probability each object lies in `window` at time `now`. Uses
  // config.deadline_ms (0 = never degrade); the overload takes an explicit
  // per-query deadline. The answer's `quality` field reports the level the
  // admission policy chose.
  QueryResult EvaluateRange(const Rect& window, int64_t now);
  QueryResult EvaluateRange(const Rect& window, int64_t now,
                            int64_t deadline_ms);
  // With a non-null `explain`, additionally fills a provenance record for
  // the query (see obs/explain.h). Collection is strictly observational:
  // the answer is byte-identical with explain on or off (pinned by
  // tests/determinism_test.cc) — nothing read for the record feeds the
  // RNG, the cache, or the admission decision.
  QueryResult EvaluateRange(const Rect& window, int64_t now,
                            int64_t deadline_ms, obs::QueryExplain* explain);

  // Probabilistic kNN at time `now` (Algorithm 4 result semantics), with
  // the same deadline handling as EvaluateRange.
  KnnResult EvaluateKnn(const Point& query, int k, int64_t now);
  KnnResult EvaluateKnn(const Point& query, int k, int64_t now,
                        int64_t deadline_ms);
  KnnResult EvaluateKnn(const Point& query, int k, int64_t now,
                        int64_t deadline_ms, obs::QueryExplain* explain);

  // Location distribution of one object at `now`, inferring it if needed;
  // nullptr when the object has never been detected.
  const AnchorDistribution* InferObject(ObjectId object, int64_t now);

  // Infers every not-yet-memoized candidate at `now`, fanning per-object
  // filter runs across the thread pool (config.num_threads workers) and
  // merging the resulting distributions into the APtoObjHT in ascending
  // object order on the calling thread. Duplicate, unknown, and already
  // memoized candidates are skipped.
  void InferBatch(const std::vector<ObjectId>& candidates, int64_t now);

  const EngineConfig& config() const { return config_; }
  EngineStats stats() const;
  DegradeStats degrade_stats() const;
  ParticleCache::Stats cache_stats() const { return cache_.stats(); }
  // Zero stats when the distance index is disabled.
  DistanceIndex::Stats distance_index_stats() const {
    return dindex_ == nullptr ? DistanceIndex::Stats{} : dindex_->stats();
  }
  // Zero stats when the distance oracle is disabled.
  DistanceOracle::Stats distance_oracle_stats() const {
    return oracle_ == nullptr ? DistanceOracle::Stats{} : oracle_->stats();
  }
  void ResetStats();

  // Particle-cache contents, for the persistence layer (src/persist/).
  // Restoring the cache of a crashed engine makes the recovered engine's
  // cache-dependent answers byte-identical to the uninterrupted run's.
  std::vector<ParticleCache::PersistedEntry> ExportCacheEntries() const {
    return cache_.ExportEntries();
  }
  void RestoreCacheEntries(std::vector<ParticleCache::PersistedEntry> entries) {
    cache_.RestoreEntries(std::move(entries));
  }

  // The current APtoObjHT (valid for the last queried timestamp).
  const AnchorObjectTable& table() const { return table_; }

 private:
  // The batching scheduler (query/query_scheduler.h) reuses the engine's
  // internal stages (pruning, planning, batch inference, restricted
  // evaluation) to serve many queries per (now) with shared work.
  friend class QueryScheduler;
  // The subscription manager (query/subscription.h) probes the particle
  // cache and reads the collector/config to decide which standing queries
  // can provably serve their cached answer unchanged.
  friend class SubscriptionManager;

  // The registry counters backing the EngineStats snapshot (always
  // non-null: they live in config.metrics or in own_registry_).
  struct StatCounters {
    obs::Counter* queries = nullptr;
    obs::Counter* objects_considered = nullptr;
    obs::Counter* candidates_inferred = nullptr;
    obs::Counter* filter_runs = nullptr;
    obs::Counter* filter_resumes = nullptr;
    obs::Counter* filter_seconds = nullptr;
  };
  // Per-stage latency histograms; all null when config.metrics is null
  // (ScopedTimer on a null histogram never reads the clock).
  struct StageTimers {
    obs::Histogram* range_latency_ns = nullptr;
    obs::Histogram* knn_latency_ns = nullptr;
    obs::Histogram* prune_ns = nullptr;
    obs::Histogram* infer_ns = nullptr;
    obs::Histogram* merge_ns = nullptr;
    obs::Histogram* evaluate_ns = nullptr;
    obs::Histogram* snap_ns = nullptr;
  };

  struct DegradeCounters {
    obs::Counter* full = nullptr;
    obs::Counter* cached_stale = nullptr;
    obs::Counter* reduced_particles = nullptr;
    obs::Counter* prune_only = nullptr;
    obs::Counter* stale_served_objects = nullptr;
  };

  // The admission decision for one deadline-bound query: which rung of the
  // quality ladder to serve from, and which candidates go down which path.
  struct InferPlan {
    QualityLevel level = QualityLevel::kFull;
    std::vector<ObjectId> stale;  // Serve cached state as-is (L1/L2).
    std::vector<ObjectId> infer;  // Freshly infer (full or reduced Ns).
  };

  // Registers every metric under config.metrics_prefix and wires the
  // filter, cache, and (lazily) the thread pool.
  void InitObservability();

  // Drops memoized distributions when the query timestamp moves.
  void SyncTableTo(int64_t now);

  // The pure per-object inference: draws only from the (seed, object, now)
  // stream and touches no engine state besides the (sharded, locked)
  // particle cache and the atomic stats. Safe to call concurrently for
  // distinct objects. Returns nullopt for an empty history.
  std::optional<AnchorDistribution> ComputeInference(ObjectId object,
                                                     int64_t now);

  // ComputeInference with an explicit filter and cache policy; the
  // degraded path uses it to run reduced-particle inference that neither
  // reads nor pollutes the full-quality cache.
  std::optional<AnchorDistribution> ComputeInferenceWith(
      ObjectId object, int64_t now, const ParticleFilter& filter,
      bool cache_read, bool cache_write);

  // Why PlanInference chose the level it chose, for explain records. The
  // reason vocabulary is part of the stable explain output: no_deadline |
  // full_fits | stale_fits | reduced_fits | budget_exhausted.
  struct PlanDecision {
    const char* reason = "no_deadline";
    double budget = -1.0;       // Filter-seconds the deadline bought.
    double est_full = -1.0;     // Cost of the kFull plan (-1 = not costed).
    double est_stale = -1.0;    // ... of the kCachedStale plan.
    double est_reduced = -1.0;  // ... of the kReducedParticles plan.
  };

  // Picks the highest quality level whose estimated filter-seconds fit
  // deadline_ms * degrade.filter_seconds_per_ms. Pure function of the
  // candidates' histories and the cache state (work estimates, not clocks).
  // A non-null `decision` receives the budget arithmetic for provenance;
  // passing it never changes the plan.
  InferPlan PlanInference(const std::vector<ObjectId>& candidates,
                          int64_t now, int64_t deadline_ms,
                          PlanDecision* decision = nullptr);

  // Runs a degraded (L1/L2) plan into `out` — a scratch table, so degraded
  // distributions are never memoized for later full-quality queries.
  void ExecuteDegradedPlan(const InferPlan& plan, int64_t now,
                           AnchorObjectTable* out);
  void CountPlan(const InferPlan& plan);

  // Explain-record helpers, all strictly observational (non-mutating cache
  // probes, counter reads): classifies each candidate's cache outcome and
  // captures the collector's reorder-buffer state at query time.
  void ProbeCacheOutcomes(const std::vector<ObjectId>& candidates, int64_t now,
                          obs::QueryExplain* explain) const;
  void FillIngestContext(obs::QueryExplain* explain) const;
  // Counter values before the query ran, for charging deltas to explain.
  struct ExplainBaseline {
    int64_t filter_runs = 0;
    int64_t filter_resumes = 0;
    int64_t filter_seconds = 0;
    int64_t stale_served = 0;
    int64_t dindex_hits = 0;
    int64_t dindex_misses = 0;
  };
  ExplainBaseline CaptureBaseline() const;
  void ChargeDeltas(const ExplainBaseline& before,
                    obs::QueryExplain* explain) const;

  // Whether this answer's coverage is impaired by degraded readers: any
  // non-healthy reader's activation zone intersects `window` (when given),
  // or any candidate's current detecting device is degraded. Pure read of
  // the monitor's view — never perturbs the answer probabilities.
  bool CoverageDegraded(const std::vector<ObjectId>& candidates,
                        const Rect* window) const;

  QueryResult PruneOnlyRange(const std::vector<ObjectId>& candidates,
                             const Rect& window, int64_t now) const;
  KnnResult PruneOnlyKnn(const std::vector<ObjectId>& candidates,
                         const SourceDistances& dists, int k,
                         int64_t now) const;

  // The per-reader distance bounds a kNN query's pruning reads (see
  // SourceDistances in query/uncertain_region.h), with the slack bounding
  // the network distance between the bounds' source and the query point.
  // Oracle on: one pinned-matrix row (exact, no Dijkstra at all). Index
  // on: the shared table sourced at the anchor the query's edge
  // canonicalizes to (slack = along-edge offset gap). Neither (or no
  // same-edge anchor): an exact private Dijkstra at the query, slack 0.
  // All three fill identical doubles for covered queries, which is what
  // keeps answers byte-identical across modes.
  SourceDistances DistancesFor(const GraphLocation& query);

  const WalkingGraph* graph_;
  const AnchorPointIndex* anchors_;
  const Deployment* deployment_;
  const DataCollector* collector_;
  EngineConfig config_;

  // Bridges the collector's liveness gate and (when configured) the health
  // monitor into the filters' negative-information branch.
  HealthSilenceTrust silence_trust_;
  ParticleFilter filter_;
  // Reduced-Ns twin of filter_ for kReducedParticles runs; null when the
  // policy's reduced_particles is not usable (< 1).
  std::unique_ptr<ParticleFilter> degraded_filter_;
  SymbolicInference symbolic_;
  ParticleCache cache_;
  RangeQueryEvaluator range_eval_;
  KnnQueryEvaluator knn_eval_;
  // Shared distance tables for kNN pruning (null when
  // config.use_distance_index is false). Reader locations are pinned at
  // construction; anchor entries populate on demand.
  std::unique_ptr<DistanceIndex> dindex_;
  // Preprocessed distance oracle (null when config.use_distance_oracle is
  // false): landmark tables plus the anchor-to-reader matrix, both built
  // once at construction. When present it takes precedence over dindex_
  // in DistancesFor.
  std::unique_ptr<DistanceOracle> oracle_;

  AnchorObjectTable table_;
  int64_t table_time_ = -1;

  // Observability (see EngineConfig::metrics). own_registry_ backs the
  // EngineStats counters when no external registry was configured.
  std::unique_ptr<obs::MetricsRegistry> own_registry_;
  obs::MetricsRegistry* metrics_ = nullptr;
  StatCounters counters_;
  DegradeCounters degrade_counters_;
  StageTimers timers_;
  obs::TraceRecorder* trace_ = nullptr;

  // Lazily created on first batch when num_threads > 1.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace ipqs

#endif  // IPQS_QUERY_QUERY_ENGINE_H_
