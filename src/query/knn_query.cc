#include "query/knn_query.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <vector>

#include "common/check.h"

namespace ipqs {

KnnQueryEvaluator::KnnQueryEvaluator(const WalkingGraph* graph,
                                     const AnchorPointIndex* anchors,
                                     const AnchorGraph* anchor_graph)
    : graph_(graph), anchors_(anchors), anchor_graph_(anchor_graph) {
  IPQS_CHECK(graph != nullptr);
  IPQS_CHECK(anchors != nullptr);
  IPQS_CHECK(anchor_graph != nullptr);
}

KnnResult KnnQueryEvaluator::Evaluate(const AnchorObjectTable& table,
                                      const Point& query, int k) const {
  return Evaluate(table, graph_->NearestLocation(query, /*prefer_hallways=*/true),
                  k);
}

KnnResult KnnQueryEvaluator::Evaluate(const AnchorObjectTable& table,
                                      const GraphLocation& query,
                                      int k) const {
  return Evaluate(table, query, k, nullptr);
}

KnnResult KnnQueryEvaluator::Evaluate(
    const AnchorObjectTable& table, const GraphLocation& query, int k,
    const std::vector<ObjectId>* restrict_to) const {
  IPQS_CHECK_GT(k, 0);
  KnnResult out;
  const auto allowed = [restrict_to](ObjectId object) {
    return restrict_to == nullptr ||
           std::binary_search(restrict_to->begin(), restrict_to->end(),
                              object);
  };

  struct Entry {
    double dist;
    AnchorId anchor;
    bool operator>(const Entry& o) const { return dist > o.dist; }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue;
  std::vector<double> dist(anchor_graph_->num_anchors(),
                           std::numeric_limits<double>::infinity());

  for (const auto& [anchor, d] : anchor_graph_->SeedsFrom(*anchors_, query)) {
    if (d < dist[anchor]) {
      dist[anchor] = d;
      queue.push({d, anchor});
    }
  }

  while (!queue.empty()) {
    const Entry top = queue.top();
    queue.pop();
    if (top.dist > dist[top.anchor]) {
      continue;
    }
    ++out.anchors_searched;
    for (const auto& [object, p] : table.AtAnchor(top.anchor)) {
      if (allowed(object)) {
        out.result.Add(object, p);
        out.total_probability += p;
      }
    }
    if (out.total_probability >= static_cast<double>(k)) {
      break;  // Algorithm 4's stopping criterion.
    }
    for (const AnchorGraph::Neighbor& nb :
         anchor_graph_->NeighborsOf(top.anchor)) {
      const double cand = top.dist + nb.dist;
      if (cand < dist[nb.anchor]) {
        dist[nb.anchor] = cand;
        queue.push({cand, nb.anchor});
      }
    }
  }
  return out;
}

}  // namespace ipqs
