#ifndef IPQS_QUERY_EVENTS_H_
#define IPQS_QUERY_EVENTS_H_

#include <cstdint>
#include <optional>

#include "graph/anchor_graph.h"
#include "query/query_engine.h"

namespace ipqs {

// Probabilistic event predicates over inferred location distributions —
// the "complex event" query class of the RFID systems the paper surveys
// in related work ("Is Joe meeting with Mary in Room 203?"), evaluated
// directly on the anchor-point distributions our engines produce.
//
// Object location distributions are treated as independent (the filter
// tracks objects independently), so joint probabilities multiply.

// P(object is inside `room`), given the distributions in `table`.
// 0 when the object is unknown.
double ProbabilityInRoom(const AnchorPointIndex& anchors,
                         const AnchorObjectTable& table, ObjectId object,
                         RoomId room);

// P(network distance between `a` and `b` is at most `within_meters`),
// summing the joint mass over anchor pairs (independence assumption).
double ProbabilityTogether(const AnchorPointIndex& anchors,
                           const AnchorGraph& anchor_graph,
                           const AnchorObjectTable& table, ObjectId a,
                           ObjectId b, double within_meters);

// A detected meeting: both objects were (probably) in the room for at
// least the configured duration.
struct MeetingEvent {
  int64_t start = 0;
  int64_t end = 0;
  double mean_probability = 0.0;
};

// Stream-style meeting detector: poll once per second (or coarser); when
// P(a in room) * P(b in room) stays above `probability_threshold` for at
// least `min_duration_seconds`, a MeetingEvent is emitted (on the first
// poll after the streak ends, or via Flush()).
class MeetingDetector {
 public:
  MeetingDetector(QueryEngine* engine, const AnchorPointIndex* anchors,
                  ObjectId a, ObjectId b, RoomId room,
                  double probability_threshold = 0.5,
                  int64_t min_duration_seconds = 10);

  // Evaluates the predicate at `now`; returns a completed meeting if one
  // just ended.
  std::optional<MeetingEvent> Poll(int64_t now);

  // Closes any open streak (end of stream).
  std::optional<MeetingEvent> Flush();

  // P(a in room) * P(b in room) at the last poll.
  double last_probability() const { return last_probability_; }

 private:
  std::optional<MeetingEvent> CloseStreak();

  QueryEngine* engine_;
  const AnchorPointIndex* anchors_;
  ObjectId a_;
  ObjectId b_;
  RoomId room_;
  double threshold_;
  int64_t min_duration_;

  bool in_streak_ = false;
  int64_t streak_start_ = 0;
  int64_t streak_last_ = 0;
  double streak_prob_sum_ = 0.0;
  int64_t streak_samples_ = 0;
  double last_probability_ = 0.0;
};

}  // namespace ipqs

#endif  // IPQS_QUERY_EVENTS_H_
