#ifndef IPQS_QUERY_HISTORICAL_H_
#define IPQS_QUERY_HISTORICAL_H_

#include <cstdint>

#include "query/knn_query.h"
#include "query/query_engine.h"
#include "query/range_query.h"
#include "rfid/history_store.h"

namespace ipqs {

// Historical snapshot queries ("who was inside this zone at 10:15?") over
// a HistoryStore. For any past instant t the engine reconstructs, per
// object, the two-device reading window that the live system held at t,
// replays Algorithm 2 (or the symbolic inference) against it, and
// evaluates the query on the resulting APtoObjHT — so historical answers
// have exactly the semantics live answers had at t.
//
// The particle cache does not apply (each query time is its own replay);
// uncertain-region pruning does, computed from the readings as of t.
class HistoricalEngine {
 public:
  HistoricalEngine(const WalkingGraph* graph, const FloorPlan* plan,
                   const AnchorPointIndex* anchors,
                   const AnchorGraph* anchor_graph,
                   const Deployment* deployment,
                   const DeploymentGraph* deployment_graph,
                   const HistoryStore* store, const EngineConfig& config);

  QueryResult EvaluateRangeAt(const Rect& window, int64_t time);
  KnnResult EvaluateKnnAt(const Point& query, int k, int64_t time);

  // Location distribution of `object` as of `time`; nullptr when the
  // object had not been detected by then.
  const AnchorDistribution* InferObjectAt(ObjectId object, int64_t time);

  const EngineStats& stats() const { return stats_; }

  // The APtoObjHT for the last queried time (for event predicates).
  const AnchorObjectTable& table() const { return table_; }

 private:
  void SyncTableTo(int64_t time);

  const WalkingGraph* graph_;
  const AnchorPointIndex* anchors_;
  const Deployment* deployment_;
  const HistoryStore* store_;
  EngineConfig config_;

  ParticleFilter filter_;
  SymbolicInference symbolic_;
  RangeQueryEvaluator range_eval_;
  KnnQueryEvaluator knn_eval_;

  AnchorObjectTable table_;
  int64_t table_time_ = -1;
  EngineStats stats_;
  Rng rng_;
};

}  // namespace ipqs

#endif  // IPQS_QUERY_HISTORICAL_H_
