#ifndef IPQS_QUERY_QUALITY_H_
#define IPQS_QUERY_QUALITY_H_

#include <string_view>

namespace ipqs {

// How much fidelity a query answer was computed with. Under deadline
// pressure the engine walks DOWN this ladder one rung at a time until the
// estimated inference work fits the budget; every answer is tagged with
// the rung it was served from so callers can tell a degraded answer from a
// full-fidelity one.
enum class QualityLevel {
  // Normal path: every candidate freshly inferred (resume or full run).
  kFull = 0,
  // Candidates with a device-matching cached state within the staleness
  // bound are served that state as-is (no filter advance); the rest are
  // inferred at full fidelity.
  kCachedStale = 1,
  // Like kCachedStale, but the remaining inferences run with the policy's
  // reduced particle count; such states never enter the cache.
  kReducedParticles = 2,
  // No inference at all: answers come from the max-speed uncertain-region
  // geometry alone (the same bound the pruning stage trusts).
  kPruneOnly = 3,
};

constexpr std::string_view ToString(QualityLevel level) {
  switch (level) {
    case QualityLevel::kFull:
      return "full";
    case QualityLevel::kCachedStale:
      return "cached_stale";
    case QualityLevel::kReducedParticles:
      return "reduced_particles";
    case QualityLevel::kPruneOnly:
      return "prune_only";
  }
  return "unknown";
}

}  // namespace ipqs

#endif  // IPQS_QUERY_QUALITY_H_
