#include "query/subscription.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "query/uncertain_region.h"

namespace ipqs {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

SubscriptionManager::SubscriptionManager(
    QueryEngine* engine, const SubscriptionManagerConfig& config)
    : engine_(engine), config_(config), scheduler_(engine) {
  IPQS_CHECK(engine != nullptr);
  IPQS_CHECK_GE(config_.margin_seconds, 0.0);
  obs::MetricsRegistry* m = config_.metrics;
  if (m == nullptr) {
    own_registry_ = std::make_unique<obs::MetricsRegistry>();
    m = own_registry_.get();
  }
  const std::string& p = config_.metrics_prefix;
  registered_ = m->GetGauge(p + ".registered");
  ticks_ = m->GetCounter(p + ".ticks");
  dirty_ = m->GetCounter(p + ".dirty");
  evals_skipped_ = m->GetCounter(p + ".evals_skipped");
  changes_seen_ = m->GetCounter(p + ".changes_seen");
  delta_entries_ = m->GetHistogram(p + ".delta_entries");
  // Future collector changes are drained tick by tick; everything already
  // ingested is covered by the first evaluation (every new subscription
  // starts dirty).
  if (engine_->collector_->change_log_enabled()) {
    change_cursor_ = engine_->collector_->change_log_end();
    cursor_primed_ = true;
  }
  // Same contract for health transitions: only future transitions matter
  // (the first evaluation of every subscription sees the current view).
  if (engine_->config_.health != nullptr) {
    health_cursor_ = engine_->config_.health->transition_end();
    health_primed_ = true;
  }
}

SubscriptionId SubscriptionManager::Add(BatchQuery query, double threshold) {
  const SubscriptionId id = next_id_++;
  Sub sub;
  sub.id = id;
  sub.query = std::move(query);
  sub.threshold = threshold;
  subs_.emplace(id, std::move(sub));
  registered_->Set(static_cast<int64_t>(subs_.size()));
  needs_tick_ = true;
  return id;
}

SubscriptionId SubscriptionManager::AddRange(const Rect& window) {
  return AddRange(window, config_.default_membership_threshold);
}

SubscriptionId SubscriptionManager::AddRange(const Rect& window,
                                             double membership_threshold) {
  IPQS_CHECK(membership_threshold > 0.0 && membership_threshold <= 1.0);
  return Add(BatchQuery::Range(window), membership_threshold);
}

SubscriptionId SubscriptionManager::AddKnn(const Point& point, int k) {
  IPQS_CHECK_GT(k, 0);
  return Add(BatchQuery::Knn(point, k), 0.0);
}

void SubscriptionManager::Remove(SubscriptionId id) {
  IPQS_CHECK_EQ(subs_.erase(id), 1u);
  registered_->Set(static_cast<int64_t>(subs_.size()));
}

bool SubscriptionManager::PinsHold(const Sub& sub, int64_t now) const {
  for (const CandidatePin& pin : sub.pins) {
    const DataCollector::ObjectHistory* h =
        engine_->collector_->History(pin.object);
    if (h == nullptr || h->entries.empty() ||
        h->current_device != pin.device || h->LastTime() != pin.last_reading) {
      return false;
    }
    if (pin.probe) {
      const auto probe = engine_->cache_.Probe(pin.object, *h, now);
      if (!probe.has_value() || !probe->resumable ||
          probe->state_time != pin.state_time) {
        return false;
      }
    }
  }
  return true;
}

bool SubscriptionManager::HealthClean(
    const Sub& sub, const std::vector<ReaderId>& transitioned) const {
  if (transitioned.empty()) {
    return true;
  }
  if (sub.query.kind == BatchQuery::Kind::kKnn) {
    return false;  // No window to scope the transition against.
  }
  const Deployment& deployment = *engine_->deployment_;
  for (ReaderId r : transitioned) {
    const Reader& reader = deployment.reader(r);
    const Rect zone =
        Rect::FromCenter(reader.pos, 2 * reader.range, 2 * reader.range);
    if (zone.Intersects(sub.query.window)) {
      return false;  // Coverage over the window changed.
    }
  }
  for (ObjectId o : sub.candidates) {
    const DataCollector::ObjectHistory* h = engine_->collector_->History(o);
    if (h != nullptr &&
        std::binary_search(transitioned.begin(), transitioned.end(),
                           h->current_device)) {
      return false;  // A candidate's detecting device changed health.
    }
  }
  return true;
}

bool SubscriptionManager::ChangesClean(Sub& sub,
                                       const std::vector<ObjectId>& changed,
                                       int64_t now) {
  const EngineConfig& cfg = engine_->config_;
  const Deployment& deployment = *engine_->deployment_;
  const double u = cfg.max_speed;
  for (ObjectId j : changed) {
    if (std::binary_search(sub.candidates.begin(), sub.candidates.end(), j)) {
      return false;  // A candidate's history moved: the answer can change.
    }
    if (!cfg.use_pruning) {
      // Every known object is a candidate, so a changed non-candidate is a
      // brand-new object the cached answer has never seen.
      return false;
    }
    const DataCollector::ObjectHistory* h = engine_->collector_->History(j);
    if (h == nullptr || h->entries.empty()) {
      return false;
    }
    const AggregatedEntry last = h->entries.back();
    if (sub.query.kind == BatchQuery::Kind::kRange) {
      const UncertainRegion ur =
          ComputeUncertainRegion(deployment, j, last, now, u);
      if (ur.Overlaps(sub.query.window)) {
        return false;  // Joined the candidate set.
      }
      // Still outside: predict when its (growing) region could reach the
      // window and make sure a future tick re-evaluates by then.
      if (u > 0.0) {
        const Reader& r = deployment.reader(last.reader);
        const double t_touch =
            static_cast<double>(last.time) +
            (sub.query.window.DistanceTo(r.pos) - r.range) / u;
        sub.next_expand =
            std::min(sub.next_expand, t_touch - config_.margin_seconds);
      }
    } else {
      if (!std::isfinite(sub.f) || sub.dists.empty()) {
        // Pruning was degenerate at the last evaluation (entries <= k, or
        // no distance bounds): there is no f-bound to test against.
        return false;
      }
      const Reader& r = deployment.reader(last.reader);
      // Lower bound keeps s_now conservative (an interval backend may
      // under-estimate the true distance, never over-estimate s). An
      // unreachable reader reads {inf, inf}: s_now stays inf, which never
      // dips under a finite f_now — correct, the object can never arrive.
      const SourceDistances::Bound& b = sub.dists.to_reader[last.reader];
      const double radius =
          u * static_cast<double>(now - last.time) + r.range;
      const double s_now =
          std::max(0.0, b.lower - (radius + sub.dists.slack));
      // While the subscription is clean, the exact pruning bound at `now`
      // is f + u * (now - last_eval): the k supporting objects are
      // unchanged candidates whose l-bounds all grew by exactly u per
      // second, and no other object undercut them (or it would have been
      // caught by this very test).
      const double f_now =
          sub.f + u * static_cast<double>(now - sub.last_eval);
      if (s_now <= f_now) {
        return false;  // Dipped under the bound: joined the candidates.
      }
      if (u > 0.0) {
        // s_j(t) falls at rate u while f(t) grows at rate u; they cross at
        // t_cross — re-evaluate before then.
        const double t_cross =
            (b.lower - r.range - sub.dists.slack - sub.f +
             u * static_cast<double>(last.time + sub.last_eval)) /
            (2.0 * u);
        sub.next_expand =
            std::min(sub.next_expand, t_cross - config_.margin_seconds);
      }
    }
  }
  return true;
}

void SubscriptionManager::RefreshState(Sub& sub, const BatchAnswer& answer,
                                       const BatchSlotDetail& detail,
                                       int64_t now) {
  const EngineConfig& cfg = engine_->config_;
  const DataCollector& collector = *engine_->collector_;
  const Deployment& deployment = *engine_->deployment_;
  sub.answer = answer;
  sub.last_eval = now;
  sub.candidates = detail.candidates;
  sub.snapped = detail.snapped;
  sub.dists = detail.dists;
  sub.f = kInf;
  sub.pins.clear();

  // Condition 1: every candidate's distribution must be settled (see the
  // class comment) for the cached answer to be time-invariant.
  sub.stable = true;
  for (ObjectId o : sub.candidates) {
    const DataCollector::ObjectHistory* h = collector.History(o);
    if (h == nullptr || h->entries.empty()) {
      sub.stable = false;
      break;
    }
    CandidatePin pin;
    pin.object = o;
    pin.device = h->current_device;
    pin.last_reading = h->LastTime();
    switch (cfg.method) {
      case InferenceMethod::kLastReading:
        // Inference ignores `now` entirely; the history pin suffices.
        break;
      case InferenceMethod::kSymbolicModel:
        // The symbolic posterior decays with `now`: never settled.
        sub.stable = false;
        break;
      case InferenceMethod::kParticleFilter: {
        // Settled once the filter has coasted its full max_coast window
        // past the last reading AND the cache holds that exact endpoint:
        // a resume at any later `now` is then a zero-advance no-op.
        const int64_t settle = h->LastTime() + cfg.filter.max_coast_seconds;
        if (!cfg.use_cache || settle > now) {
          sub.stable = false;
          break;
        }
        const auto probe = engine_->cache_.Probe(o, *h, now);
        if (!probe.has_value() || !probe->resumable ||
            probe->state_time != settle) {
          sub.stable = false;
          break;
        }
        pin.state_time = settle;
        pin.probe = true;
        break;
      }
    }
    if (!sub.stable) {
      break;
    }
    sub.pins.push_back(std::move(pin));
  }
  if (!sub.stable) {
    sub.pins.clear();
    sub.next_expand = -kInf;
    sub.dists = SourceDistances{};
    return;
  }

  // Condition 3: the earliest time any non-candidate's uncertain region
  // could reach the query (candidates themselves never drop out while
  // clean: their regions only grow, and the kNN bound grows in lockstep).
  double next = kInf;
  const double u = cfg.max_speed;
  if (cfg.use_pruning && u > 0.0) {
    if (sub.query.kind == BatchQuery::Kind::kRange) {
      // Readers are pinned: memoize the window distance per reader.
      std::unordered_map<ReaderId, double> window_dist;
      for (ObjectId o : collector.KnownObjects()) {
        if (std::binary_search(sub.candidates.begin(), sub.candidates.end(),
                               o)) {
          continue;
        }
        const DataCollector::ObjectHistory* h = collector.History(o);
        if (h == nullptr || h->entries.empty()) {
          continue;
        }
        const AggregatedEntry last = h->entries.back();
        auto [it, inserted] = window_dist.try_emplace(last.reader, 0.0);
        if (inserted) {
          it->second =
              sub.query.window.DistanceTo(deployment.reader(last.reader).pos);
        }
        const double t_touch =
            static_cast<double>(last.time) +
            (it->second - deployment.reader(last.reader).range) / u;
        next = std::min(next, t_touch);
      }
    } else if (!sub.dists.empty()) {
      // Recompute the pruning bound f exactly as FilterKnnCandidates did
      // for this evaluation (k-th smallest l over every known object).
      // Interval soundness: l is built from the upper bound (f can only
      // over-shoot the exact bound, dirtying early), s and t_cross from
      // the lower bound (crossings predicted early, never late).
      struct Bounds {
        ObjectId object;
        double lower;  // Query→reader network-distance lower bound.
        double l;
        int64_t t_last;
      };
      std::vector<Bounds> bounds;
      for (ObjectId o : collector.KnownObjects()) {
        const DataCollector::ObjectHistory* h = collector.History(o);
        if (h == nullptr || h->entries.empty()) {
          continue;
        }
        const AggregatedEntry last = h->entries.back();
        const Reader& r = deployment.reader(last.reader);
        const SourceDistances::Bound& b = sub.dists.to_reader[last.reader];
        const double radius =
            u * static_cast<double>(now - last.time) + r.range;
        const double pad = radius + sub.dists.slack;
        bounds.push_back({o, b.lower, b.upper + pad, last.time});
      }
      if (static_cast<int>(bounds.size()) > sub.query.k) {
        std::vector<double> max_dists;
        max_dists.reserve(bounds.size());
        for (const Bounds& b : bounds) {
          max_dists.push_back(b.l);
        }
        std::nth_element(max_dists.begin(),
                         max_dists.begin() + (sub.query.k - 1),
                         max_dists.end());
        sub.f = max_dists[sub.query.k - 1];
      }
      if (std::isfinite(sub.f)) {
        for (const Bounds& b : bounds) {
          if (std::binary_search(sub.candidates.begin(), sub.candidates.end(),
                                 b.object)) {
            continue;
          }
          if (!std::isfinite(b.lower)) {
            continue;  // Unreachable reader: s_j stays inf forever.
          }
          const Reader& r = deployment.reader(
              collector.History(b.object)->entries.back().reader);
          const double t_cross =
              (b.lower - r.range - sub.dists.slack - sub.f +
               u * static_cast<double>(b.t_last + now)) /
              (2.0 * u);
          next = std::min(next, t_cross);
        }
      }
      // bounds.size() <= k keeps f at +inf: every known object was a
      // candidate, and any new object arrives as a change (which dirties).
      // f == +inf (fewer than k finite l's) likewise admits everything as
      // a candidate, and the inf guard keeps inf - inf out of t_cross.
    }
  }
  sub.next_expand =
      std::isfinite(next) ? next - config_.margin_seconds : next;
}

SubscriptionTickResult SubscriptionManager::Tick(int64_t now) {
  return Tick(now, nullptr);
}

SubscriptionTickResult SubscriptionManager::Tick(
    int64_t now, std::vector<obs::QueryExplain>* explains) {
  IPQS_CHECK_GE(now, last_tick_time_);
  SubscriptionTickResult result;
  result.time = now;
  ticks_->Increment();

  // Drain the collector's change log into a sorted-unique changed set.
  const DataCollector& collector = *engine_->collector_;
  bool lost_sync = !cursor_primed_ || !collector.change_log_enabled();
  std::vector<ObjectId> changed;
  if (cursor_primed_ && collector.change_log_enabled()) {
    std::vector<AppliedChange> drained;
    change_cursor_ = collector.ReadChanges(change_cursor_, &drained,
                                           &lost_sync);
    changes_seen_->Increment(static_cast<int64_t>(drained.size()));
    changed.reserve(drained.size());
    for (const AppliedChange& c : drained) {
      changed.push_back(c.object);
    }
    std::sort(changed.begin(), changed.end());
    changed.erase(std::unique(changed.begin(), changed.end()), changed.end());
  }

  // Drain the health monitor's transition log the same way; a lost ring
  // sync degrades to dirty-everything, exactly like the change log's.
  std::vector<ReaderId> transitioned;
  if (health_primed_) {
    std::vector<ReaderHealthTransition> drained;
    bool health_lost = false;
    health_cursor_ = engine_->config_.health->ReadTransitions(
        health_cursor_, &drained, &health_lost);
    if (health_lost) {
      lost_sync = true;
    }
    transitioned.reserve(drained.size());
    for (const ReaderHealthTransition& t : drained) {
      transitioned.push_back(t.reader);
    }
    std::sort(transitioned.begin(), transitioned.end());
    transitioned.erase(
        std::unique(transitioned.begin(), transitioned.end()),
        transitioned.end());
  }

  // Classify every subscription (map order: deterministic).
  std::vector<SubscriptionId> dirty_ids;
  std::vector<BatchQuery> batch;
  for (auto& [id, sub] : subs_) {
    bool dirty = !config_.incremental || lost_sync || sub.last_eval < 0;
    if (!dirty) {
      const bool time_ok =
          sub.last_eval == now ||
          (sub.stable && static_cast<double>(now) < sub.next_expand);
      dirty = !time_ok || !HealthClean(sub, transitioned) ||
              !ChangesClean(sub, changed, now) || !PinsHold(sub, now);
    }
    if (dirty) {
      dirty_ids.push_back(id);
      batch.push_back(sub.query);
    }
  }

  // One batch evaluation for every dirty subscription. Deadline 0: a
  // standing query never degrades (a load-dependent quality level would
  // break the answers' time-invariance the clean checks rely on).
  std::vector<BatchAnswer> answers;
  std::vector<BatchSlotDetail> details;
  if (!batch.empty()) {
    answers = scheduler_.EvaluateBatch(batch, now, /*deadline_ms=*/0,
                                       explains, &details);
  } else if (explains != nullptr) {
    explains->clear();
  }

  // Refresh dirty subscriptions and emit every delta in id order.
  size_t next_dirty = 0;
  for (auto& [id, sub] : subs_) {
    SubscriptionUpdate update;
    update.id = id;
    update.kind = sub.query.kind;
    const bool dirty =
        next_dirty < dirty_ids.size() && dirty_ids[next_dirty] == id;
    if (dirty) {
      RefreshState(sub, answers[next_dirty], details[next_dirty], now);
      ++next_dirty;
      update.evaluated = true;
      int64_t delta_size = 0;
      if (sub.query.kind == BatchQuery::Kind::kRange) {
        update.range = DiffRangeResult(sub.answer.range, sub.threshold, now,
                                       &sub.members);
        delta_size = static_cast<int64_t>(update.range.entered.size() +
                                          update.range.left.size());
      } else {
        update.knn =
            DiffKnnResult(sub.answer.knn, sub.query.k, now, &sub.current);
        delta_size = static_cast<int64_t>(update.knn.entered.size() +
                                          update.knn.left.size());
      }
      delta_entries_->Observe(delta_size);
      ++result.evaluated;
    } else {
      // Clean: the cached answer is provably unchanged, so the delta is
      // empty by construction.
      update.evaluated = false;
      update.range.time = now;
      update.knn.time = now;
      update.knn.current = sub.current;
      ++result.skipped;
    }
    result.updates.push_back(std::move(update));
  }
  dirty_->Increment(result.evaluated);
  evals_skipped_->Increment(result.skipped);
  last_tick_time_ = now;
  needs_tick_ = false;
  return result;
}

void SubscriptionManager::EnsureTick(int64_t now) {
  if (now > last_tick_time_ || (needs_tick_ && now >= last_tick_time_)) {
    Tick(now);
  }
}

const BatchAnswer& SubscriptionManager::Answer(SubscriptionId id) const {
  const auto it = subs_.find(id);
  IPQS_CHECK(it != subs_.end());
  IPQS_CHECK_GE(it->second.last_eval, 0);
  return it->second.answer;
}

const std::map<ObjectId, double>& SubscriptionManager::RangeMembers(
    SubscriptionId id) const {
  const auto it = subs_.find(id);
  IPQS_CHECK(it != subs_.end());
  IPQS_CHECK(it->second.query.kind == BatchQuery::Kind::kRange);
  return it->second.members;
}

const std::vector<ObjectId>& SubscriptionManager::KnnCurrent(
    SubscriptionId id) const {
  const auto it = subs_.find(id);
  IPQS_CHECK(it != subs_.end());
  IPQS_CHECK(it->second.query.kind == BatchQuery::Kind::kKnn);
  return it->second.current;
}

SubscriptionStats SubscriptionManager::stats() const {
  SubscriptionStats s;
  s.ticks = ticks_->Value();
  s.evaluated = dirty_->Value();
  s.skipped = evals_skipped_->Value();
  s.changes_seen = changes_seen_->Value();
  return s;
}

}  // namespace ipqs
