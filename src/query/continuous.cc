#include "query/continuous.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <queue>

#include "common/check.h"
#include "query/subscription.h"

namespace ipqs {

RangeUpdate DiffRangeResult(const QueryResult& result, double threshold,
                            int64_t now, std::map<ObjectId, double>* members) {
  RangeUpdate update;
  update.time = now;
  std::map<ObjectId, double> next;
  for (const auto& [id, p] : result.objects) {
    if (p >= threshold) {
      next[id] = p;
      if (members->find(id) == members->end()) {
        update.entered.emplace_back(id, p);
      }
    }
  }
  for (const auto& [id, _] : *members) {
    if (next.find(id) == next.end()) {
      update.left.push_back(id);
    }
  }
  // Ordering contract: deltas ascend by ObjectId regardless of the order
  // the evaluator listed the result in.
  std::sort(update.entered.begin(), update.entered.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::sort(update.left.begin(), update.left.end());
  *members = std::move(next);
  return update;
}

KnnUpdate DiffKnnResult(const KnnResult& result, int k, int64_t now,
                        std::vector<ObjectId>* current) {
  KnnUpdate update;
  update.time = now;
  update.current = result.result.TopObjects(k);
  for (ObjectId id : update.current) {
    if (std::find(current->begin(), current->end(), id) == current->end()) {
      update.entered.push_back(id);
    }
  }
  for (ObjectId id : *current) {
    if (std::find(update.current.begin(), update.current.end(), id) ==
        update.current.end()) {
      update.left.push_back(id);
    }
  }
  // Ordering contract: `current` keeps the top-k (most probable first)
  // order, but the deltas ascend by ObjectId — previously `entered`
  // inherited probability order and `left` the prior membership
  // container's iteration order, which made tie-broken results reorder
  // deltas between runs.
  std::sort(update.entered.begin(), update.entered.end());
  std::sort(update.left.begin(), update.left.end());
  *current = update.current;
  return update;
}

ContinuousRangeMonitor::ContinuousRangeMonitor(QueryEngine* engine,
                                               Rect window,
                                               double membership_threshold)
    : engine_(engine), window_(window), threshold_(membership_threshold) {
  IPQS_CHECK(engine != nullptr);
  IPQS_CHECK(membership_threshold > 0.0 && membership_threshold <= 1.0);
}

ContinuousRangeMonitor::ContinuousRangeMonitor(SubscriptionManager* manager,
                                               Rect window,
                                               double membership_threshold)
    : manager_(manager), window_(window), threshold_(membership_threshold) {
  IPQS_CHECK(manager != nullptr);
  IPQS_CHECK(membership_threshold > 0.0 && membership_threshold <= 1.0);
  sub_id_ = manager_->AddRange(window, membership_threshold);
}

RangeUpdate ContinuousRangeMonitor::Poll(int64_t now) {
  if (manager_ != nullptr) {
    manager_->EnsureTick(now);
    return DiffRangeResult(manager_->Answer(sub_id_).range, threshold_, now,
                           &members_);
  }
  const QueryResult result = engine_->EvaluateRange(window_, now);
  return DiffRangeResult(result, threshold_, now, &members_);
}

ContinuousKnnMonitor::ContinuousKnnMonitor(QueryEngine* engine, Point query,
                                           int k)
    : engine_(engine), query_(query), k_(k) {
  IPQS_CHECK(engine != nullptr);
  IPQS_CHECK_GT(k, 0);
}

ContinuousKnnMonitor::ContinuousKnnMonitor(SubscriptionManager* manager,
                                           Point query, int k)
    : manager_(manager), query_(query), k_(k) {
  IPQS_CHECK(manager != nullptr);
  IPQS_CHECK_GT(k, 0);
  sub_id_ = manager_->AddKnn(query, k);
}

KnnUpdate ContinuousKnnMonitor::Poll(int64_t now) {
  if (manager_ != nullptr) {
    manager_->EnsureTick(now);
    return DiffKnnResult(manager_->Answer(sub_id_).knn, k_, now, &current_);
  }
  const KnnResult result = engine_->EvaluateKnn(query_, k_, now);
  return DiffKnnResult(result, k_, now, &current_);
}

std::vector<std::pair<ObjectId, double>> ThresholdKnn(const KnnResult& result,
                                                      double threshold) {
  std::vector<std::pair<ObjectId, double>> out = result.result.objects;
  std::erase_if(out, [threshold](const auto& e) {
    return e.second < threshold;
  });
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

ClosestPairEvaluator::ClosestPairEvaluator(const AnchorPointIndex* anchors,
                                           const AnchorGraph* anchor_graph)
    : anchors_(anchors), anchor_graph_(anchor_graph) {
  IPQS_CHECK(anchors != nullptr);
  IPQS_CHECK(anchor_graph != nullptr);
}

StatusOr<ClosestPairResult> ClosestPairEvaluator::Evaluate(
    const AnchorObjectTable& table) const {
  const std::vector<ObjectId> objects = table.Objects();
  if (objects.size() < 2) {
    return Status::NotFound("closest pair needs at least two objects");
  }

  // MAP anchor per object.
  std::vector<AnchorId> map_anchor(objects.size(), kInvalidId);
  for (size_t i = 0; i < objects.size(); ++i) {
    const AnchorDistribution* dist = table.Distribution(objects[i]);
    IPQS_CHECK(dist != nullptr);
    const auto top = dist->TopK(1);
    if (!top.empty()) {
      map_anchor[i] = top[0];
    }
  }

  // Objects parked on each anchor, for O(1) hit checks during expansion.
  std::unordered_map<AnchorId, std::vector<size_t>> objects_at;
  for (size_t i = 0; i < objects.size(); ++i) {
    if (map_anchor[i] != kInvalidId) {
      objects_at[map_anchor[i]].push_back(i);
    }
  }

  ClosestPairResult best;
  best.distance = std::numeric_limits<double>::infinity();

  // One bounded Dijkstra per object over the anchor graph: expansion stops
  // once it exceeds the best pair distance found so far, so later sources
  // explore progressively smaller neighborhoods.
  for (size_t i = 0; i < objects.size(); ++i) {
    if (map_anchor[i] == kInvalidId) {
      continue;
    }
    struct Entry {
      double dist;
      AnchorId anchor;
      bool operator>(const Entry& o) const { return dist > o.dist; }
    };
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue;
    std::vector<double> dist(anchor_graph_->num_anchors(),
                             std::numeric_limits<double>::infinity());
    dist[map_anchor[i]] = 0.0;
    queue.push({0.0, map_anchor[i]});
    while (!queue.empty()) {
      const Entry top = queue.top();
      queue.pop();
      if (top.dist >= best.distance) {
        break;  // Everything farther cannot improve the best pair.
      }
      if (top.dist > dist[top.anchor]) {
        continue;
      }
      const auto hit = objects_at.find(top.anchor);
      if (hit != objects_at.end()) {
        for (size_t j : hit->second) {
          if (j != i) {
            best.distance = top.dist;
            best.first = std::min(objects[i], objects[j]);
            best.second = std::max(objects[i], objects[j]);
          }
        }
        if (top.dist >= best.distance && top.dist > 0.0) {
          break;
        }
      }
      for (const AnchorGraph::Neighbor& nb :
           anchor_graph_->NeighborsOf(top.anchor)) {
        const double cand = top.dist + nb.dist;
        if (cand < dist[nb.anchor] && cand < best.distance) {
          dist[nb.anchor] = cand;
          queue.push({cand, nb.anchor});
        }
      }
    }
  }

  if (best.first == kInvalidId) {
    return Status::NotFound("no pair of located objects");
  }
  return best;
}

}  // namespace ipqs
