#include "query/uncertain_region.h"

#include <algorithm>

#include "common/check.h"

namespace ipqs {

UncertainRegion ComputeUncertainRegion(const Deployment& deployment,
                                       ObjectId object,
                                       const AggregatedEntry& last_reading,
                                       int64_t now, double max_speed) {
  IPQS_CHECK_GE(now, last_reading.time);
  const Reader& d = deployment.reader(last_reading.reader);
  UncertainRegion ur;
  ur.object = object;
  ur.reader = last_reading.reader;
  ur.center = d.pos;
  ur.radius =
      max_speed * static_cast<double>(now - last_reading.time) + d.range;
  return ur;
}

DistanceInterval NetworkDistanceInterval(const OneToAllDistances& from_query,
                                         const Deployment& deployment,
                                         const UncertainRegion& region) {
  const double to_reader =
      from_query.ToLocation(deployment.reader(region.reader).loc);
  return DistanceInterval{std::max(0.0, to_reader - region.radius),
                          to_reader + region.radius};
}

DistanceInterval NetworkDistanceInterval(const OneToAllDistances& from_source,
                                         double source_slack,
                                         const Deployment& deployment,
                                         const UncertainRegion& region) {
  const double to_reader =
      from_source.ToLocation(deployment.reader(region.reader).loc);
  // True distance from the query is within source_slack of `to_reader`
  // (triangle inequality through the table source), so widening by it
  // keeps the interval a superset of the exact [s_i, l_i].
  const double pad = region.radius + source_slack;
  return DistanceInterval{std::max(0.0, to_reader - pad), to_reader + pad};
}

SourceDistances SourceDistances::FromTable(const OneToAllDistances& table,
                                           double source_slack,
                                           const Deployment& deployment) {
  SourceDistances out;
  out.slack = source_slack;
  out.to_reader.reserve(deployment.num_readers());
  for (ReaderId r = 0; r < deployment.num_readers(); ++r) {
    const double d = table.ToLocation(deployment.reader(r).loc);
    out.to_reader.push_back(Bound{d, d});
  }
  return out;
}

DistanceInterval NetworkDistanceInterval(const SourceDistances& dists,
                                         const UncertainRegion& region) {
  const SourceDistances::Bound& b = dists.to_reader[region.reader];
  const double pad = region.radius + dists.slack;
  // An unreachable reader (b = {inf, inf}) yields {inf, inf}: the object
  // can never be proven near, and inf - pad stays inf (never NaN, since
  // pad is finite).
  return DistanceInterval{std::max(0.0, b.lower - pad), b.upper + pad};
}

std::vector<ObjectId> FilterRangeCandidates(
    const DataCollector& collector, const Deployment& deployment,
    const std::vector<Rect>& windows, int64_t now, double max_speed) {
  std::vector<ObjectId> candidates;
  for (ObjectId object : collector.KnownObjects()) {
    const auto last = collector.LastReading(object);
    if (!last.has_value()) {
      continue;
    }
    const UncertainRegion ur =
        ComputeUncertainRegion(deployment, object, *last, now, max_speed);
    for (const Rect& w : windows) {
      if (ur.Overlaps(w)) {
        candidates.push_back(object);
        break;
      }
    }
  }
  return candidates;
}

std::vector<ObjectId> FilterKnnCandidates(const WalkingGraph& graph,
                                          const DataCollector& collector,
                                          const Deployment& deployment,
                                          const GraphLocation& query, int k,
                                          int64_t now, double max_speed) {
  const OneToAllDistances from_query(graph, query);
  return FilterKnnCandidates(collector, deployment, from_query,
                             /*source_slack=*/0.0, k, now, max_speed);
}

std::vector<ObjectId> FilterKnnCandidates(const DataCollector& collector,
                                          const Deployment& deployment,
                                          const OneToAllDistances& from_source,
                                          double source_slack, int k,
                                          int64_t now, double max_speed) {
  return FilterKnnCandidates(
      collector, deployment,
      SourceDistances::FromTable(from_source, source_slack, deployment), k,
      now, max_speed);
}

std::vector<ObjectId> FilterKnnCandidates(const DataCollector& collector,
                                          const Deployment& deployment,
                                          const SourceDistances& dists, int k,
                                          int64_t now, double max_speed) {
  IPQS_CHECK_GT(k, 0);

  struct Entry {
    ObjectId object;
    DistanceInterval interval;
  };
  std::vector<Entry> entries;
  for (ObjectId object : collector.KnownObjects()) {
    const auto last = collector.LastReading(object);
    if (!last.has_value()) {
      continue;
    }
    const UncertainRegion ur =
        ComputeUncertainRegion(deployment, object, *last, now, max_speed);
    entries.push_back({object, NetworkDistanceInterval(dists, ur)});
  }
  if (static_cast<int>(entries.size()) <= k) {
    std::vector<ObjectId> all;
    all.reserve(entries.size());
    for (const Entry& e : entries) {
      all.push_back(e.object);
    }
    return all;
  }

  // f = k-th smallest l_i.
  std::vector<double> max_dists;
  max_dists.reserve(entries.size());
  for (const Entry& e : entries) {
    max_dists.push_back(e.interval.max_dist);
  }
  std::nth_element(max_dists.begin(), max_dists.begin() + (k - 1),
                   max_dists.end());
  const double f = max_dists[k - 1];

  std::vector<ObjectId> candidates;
  for (const Entry& e : entries) {
    if (e.interval.min_dist <= f) {
      candidates.push_back(e.object);
    }
  }
  return candidates;
}

}  // namespace ipqs
