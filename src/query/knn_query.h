#ifndef IPQS_QUERY_KNN_QUERY_H_
#define IPQS_QUERY_KNN_QUERY_H_

#include "filter/anchor_distribution.h"
#include "graph/anchor_graph.h"
#include "graph/anchor_points.h"
#include "graph/walking_graph.h"
#include "query/range_query.h"

namespace ipqs {

// Result of a probabilistic indoor kNN query (Algorithm 4): the returned
// objects' probabilities sum to at least k (unless fewer objects exist),
// so every object carries its probability of belonging to the true kNN
// set.
struct KnnResult {
  QueryResult result;
  int anchors_searched = 0;
  double total_probability = 0.0;
};

// Indoor kNN query evaluation (Algorithm 4): anchor points are visited in
// ascending network distance from the query point (incremental expansion
// over the anchor graph); their indexed (object, probability) entries
// accumulate until the probability mass reaches k.
class KnnQueryEvaluator {
 public:
  KnnQueryEvaluator(const WalkingGraph* graph,
                    const AnchorPointIndex* anchors,
                    const AnchorGraph* anchor_graph);

  // `query` is an arbitrary indoor point; the paper approximates it "to the
  // nearest edge of the indoor walking graph". With `restrict_to` non-null
  // (a SORTED object id list), only those objects contribute probability
  // mass — see RangeQueryEvaluator::Evaluate.
  KnnResult Evaluate(const AnchorObjectTable& table, const Point& query,
                     int k) const;
  KnnResult Evaluate(const AnchorObjectTable& table,
                     const GraphLocation& query, int k) const;
  KnnResult Evaluate(const AnchorObjectTable& table,
                     const GraphLocation& query, int k,
                     const std::vector<ObjectId>* restrict_to) const;

 private:
  const WalkingGraph* graph_;
  const AnchorPointIndex* anchors_;
  const AnchorGraph* anchor_graph_;
};

}  // namespace ipqs

#endif  // IPQS_QUERY_KNN_QUERY_H_
