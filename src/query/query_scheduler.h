#ifndef IPQS_QUERY_QUERY_SCHEDULER_H_
#define IPQS_QUERY_QUERY_SCHEDULER_H_

#include <cstdint>
#include <vector>

#include "geom/point.h"
#include "geom/rect.h"
#include "query/query_engine.h"

namespace ipqs {

// One query in a batch submitted to the QueryScheduler.
struct BatchQuery {
  enum class Kind { kRange, kKnn };

  static BatchQuery Range(const Rect& window) {
    BatchQuery q;
    q.kind = Kind::kRange;
    q.window = window;
    return q;
  }
  static BatchQuery Knn(const Point& point, int k) {
    BatchQuery q;
    q.kind = Kind::kKnn;
    q.point = point;
    q.k = k;
    return q;
  }

  Kind kind = Kind::kRange;
  Rect window;  // kRange only.
  Point point;  // kKnn only.
  int k = 0;    // kKnn only.
};

// Answer slot for one BatchQuery; read the member matching its kind.
struct BatchAnswer {
  BatchQuery::Kind kind = BatchQuery::Kind::kRange;
  QueryResult range;
  KnnResult knn;
};

// Per-slot serving internals surfaced to callers that maintain incremental
// state on top of the batch (the SubscriptionManager): the canonical
// candidate set the slot's answer was restricted to, and — for kNN with
// pruning on — the snapped query location plus the per-reader distance
// bounds and slack its pruning read. `dists` is empty for range queries
// and whenever pruning was off.
struct BatchSlotDetail {
  std::vector<ObjectId> candidates;
  GraphLocation snapped;
  SourceDistances dists;
};

// Batched multi-query serving: takes a set of range/kNN queries that share
// one evaluation timestamp and answers all of them with the per-object
// inference work done ONCE per unique candidate object, instead of once
// per query that wants it.
//
// Pipeline per batch (reusing the owning engine's internal stages):
//   1. dedup  — byte-identical queries collapse to one evaluation whose
//               answer is fanned back to every duplicate slot;
//   2. prune  — each distinct query computes its own candidate set through
//               the engine's pruning (kNN pruning reads the shared
//               DistanceIndex tables);
//   3. plan   — ONE admission decision for the union of all candidate
//               sets, so a deadline's work budget is charged per unique
//               object, not per query;
//   4. infer  — one InferBatch over the union populates the shared
//               APtoObjHT (or one degraded scratch table);
//   5. answer — each distinct query evaluates against the shared table
//               restricted to its own candidates, exactly as the serial
//               path would.
//
// Determinism: every answer is byte-identical to evaluating the same query
// alone through QueryEngine::EvaluateRange / EvaluateKnn at the same `now`
// (given the same engine cache state), because per-object inference is a
// pure function of (seed, object history, now) and evaluation is
// restricted to the query's own candidate set. Batching changes how much
// work is done, never what any query answers. The only intended exception
// is the deadline path: the batch admits ONE quality level for the whole
// union, where serial evaluation plans per query.
//
// Not thread-safe: one scheduler (like one engine) serves one batch at a
// time; the parallelism lives inside InferBatch.
class QueryScheduler {
 public:
  explicit QueryScheduler(QueryEngine* engine);

  // Answers batch[i] in answer slot i. Uses the engine's configured
  // deadline; the overload takes an explicit per-batch deadline (the
  // budget buys the union's inference, see above).
  std::vector<BatchAnswer> EvaluateBatch(const std::vector<BatchQuery>& batch,
                                         int64_t now);
  std::vector<BatchAnswer> EvaluateBatch(const std::vector<BatchQuery>& batch,
                                         int64_t now, int64_t deadline_ms);
  // With non-null `explains`, fills one provenance record per batch slot
  // (explains->at(i) describes batch[i]; resized to batch.size()).
  // Duplicate slots carry their distinct representative's record with
  // `deduped` set. Batch records share the union's admission decision and
  // charge the BATCH's inference work (a batched query's marginal cost is
  // exactly what batching makes shared). Collection never perturbs
  // answers — pinned by tests/determinism_test.cc.
  std::vector<BatchAnswer> EvaluateBatch(
      const std::vector<BatchQuery>& batch, int64_t now, int64_t deadline_ms,
      std::vector<obs::QueryExplain>* explains);
  // With non-null `details`, additionally fills one BatchSlotDetail per
  // batch slot (duplicate slots copy their representative's). Strictly
  // observational — answers never depend on whether details are collected.
  std::vector<BatchAnswer> EvaluateBatch(
      const std::vector<BatchQuery>& batch, int64_t now, int64_t deadline_ms,
      std::vector<obs::QueryExplain>* explains,
      std::vector<BatchSlotDetail>* details);

 private:
  QueryEngine* engine_;

  // qps.* metrics under the engine's metrics prefix.
  obs::Counter* batches_ = nullptr;
  obs::Counter* queries_ = nullptr;
  obs::Counter* duplicate_queries_ = nullptr;  // Collapsed by dedup.
  obs::Counter* candidate_slots_ = nullptr;    // Sum of per-query set sizes.
  obs::Counter* unique_candidates_ = nullptr;  // Size of the union.
  obs::Histogram* batch_size_ = nullptr;
};

}  // namespace ipqs

#endif  // IPQS_QUERY_QUERY_SCHEDULER_H_
