#include "query/range_query.h"

#include <algorithm>

#include "common/check.h"

namespace ipqs {

double QueryResult::TotalProbability() const {
  double total = 0.0;
  for (const auto& [_, p] : objects) {
    total += p;
  }
  return total;
}

double QueryResult::ProbabilityOf(ObjectId object) const {
  for (const auto& [id, p] : objects) {
    if (id == object) {
      return p;
    }
  }
  return 0.0;
}

void QueryResult::Add(ObjectId object, double p) {
  for (auto& [id, prob] : objects) {
    if (id == object) {
      prob += p;
      return;
    }
  }
  objects.emplace_back(object, p);
}

std::vector<ObjectId> QueryResult::TopObjects(int k) const {
  std::vector<std::pair<ObjectId, double>> sorted = objects;
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (k >= 0 && static_cast<int>(sorted.size()) > k) {
    sorted.resize(k);
  }
  std::vector<ObjectId> out;
  out.reserve(sorted.size());
  for (const auto& [id, _] : sorted) {
    out.push_back(id);
  }
  return out;
}

RangeQueryEvaluator::RangeQueryEvaluator(const FloorPlan* plan,
                                         const AnchorPointIndex* anchors)
    : plan_(plan), anchors_(anchors) {
  IPQS_CHECK(plan != nullptr);
  IPQS_CHECK(anchors != nullptr);
}

QueryResult RangeQueryEvaluator::Evaluate(const AnchorObjectTable& table,
                                          const Rect& window) const {
  return Evaluate(table, window, nullptr);
}

QueryResult RangeQueryEvaluator::Evaluate(
    const AnchorObjectTable& table, const Rect& window,
    const std::vector<ObjectId>* restrict_to) const {
  QueryResult result;
  const auto allowed = [restrict_to](ObjectId object) {
    return restrict_to == nullptr ||
           std::binary_search(restrict_to->begin(), restrict_to->end(),
                              object);
  };

  // Hallway part: anchors inside the window's along-hallway extent,
  // compensated by the covered fraction of the hallway width.
  for (const Hallway& h : plan_->hallways()) {
    const Rect bounds = h.Bounds();
    if (!bounds.Intersects(window)) {
      continue;
    }
    const Rect clip = bounds.Intersection(window);
    const double ratio = h.IsHorizontal() ? clip.Height() / h.width
                                          : clip.Width() / h.width;
    if (ratio <= 0.0) {
      continue;
    }
    // Select hallway anchors within the along-axis extent of the clip,
    // across the full width (anchors sit on the centerline).
    const Rect along = h.IsHorizontal()
                           ? Rect(clip.min_x, bounds.min_y, clip.max_x,
                                  bounds.max_y)
                           : Rect(bounds.min_x, clip.min_y, bounds.max_x,
                                  clip.max_y);
    for (AnchorId a : anchors_->InRect(along)) {
      const AnchorPoint& ap = anchors_->anchor(a);
      if (ap.hallway != h.id) {
        continue;
      }
      for (const auto& [object, p] : table.AtAnchor(a)) {
        if (allowed(object)) {
          result.Add(object, p * ratio);
        }
      }
    }
  }

  // Room part: all anchors of the room, compensated by the covered
  // fraction of the room's area.
  for (const Room& r : plan_->rooms()) {
    if (!r.bounds.Intersects(window)) {
      continue;
    }
    const double overlap = r.bounds.Intersection(window).Area();
    const double ratio = overlap / r.Area();
    if (ratio <= 0.0) {
      continue;
    }
    for (AnchorId a : anchors_->InRoom(r.id)) {
      for (const auto& [object, p] : table.AtAnchor(a)) {
        if (allowed(object)) {
          result.Add(object, p * ratio);
        }
      }
    }
  }
  return result;
}

}  // namespace ipqs
