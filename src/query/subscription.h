#ifndef IPQS_QUERY_SUBSCRIPTION_H_
#define IPQS_QUERY_SUBSCRIPTION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "query/continuous.h"
#include "query/query_scheduler.h"

namespace ipqs {

using SubscriptionId = int64_t;

struct SubscriptionManagerConfig {
  // Off = every registered subscription is re-evaluated on every tick (the
  // poll-everything baseline the differential tests compare against).
  // Answers are byte-identical either way; only the work changes.
  bool incremental = true;
  // Safety margin subtracted from every predicted candidate-set expansion
  // time, absorbing floating-point slop in the crossing-time arithmetic. A
  // tick landing inside the margin re-evaluates one tick early — never
  // late.
  double margin_seconds = 1.0;
  // Membership threshold used by AddRange(window) without an explicit one.
  double default_membership_threshold = 0.5;
  // With `metrics` set, the manager registers sub.* counters/histograms
  // under `metrics_prefix`; otherwise it keeps a private registry (the
  // SubscriptionStats snapshot works either way).
  obs::MetricsRegistry* metrics = nullptr;
  std::string metrics_prefix = "sub";
};

// Delta emitted for one subscription by one tick. `evaluated` marks
// whether the subscription was actually re-evaluated (dirty) or served its
// cached answer (clean — the delta is then empty by construction).
struct SubscriptionUpdate {
  SubscriptionId id = -1;
  BatchQuery::Kind kind = BatchQuery::Kind::kRange;
  bool evaluated = false;
  RangeUpdate range;  // kind == kRange.
  KnnUpdate knn;      // kind == kKnn.
};

struct SubscriptionTickResult {
  int64_t time = 0;
  int64_t evaluated = 0;  // Subscriptions re-evaluated this tick.
  int64_t skipped = 0;    // Served their cached answer untouched.
  std::vector<SubscriptionUpdate> updates;  // Ascending by subscription id.
};

struct SubscriptionStats {
  int64_t ticks = 0;
  int64_t evaluated = 0;
  int64_t skipped = 0;
  int64_t changes_seen = 0;  // Applied collector changes drained.

  friend bool operator==(const SubscriptionStats&,
                         const SubscriptionStats&) = default;
};

// Standing-query subscriptions with incremental evaluation — the
// continuous-query future work of Section 6, engineered for serving:
// register range/kNN queries once, call Tick(now) after each ingest
// second, and only the subscriptions whose answers COULD have changed are
// re-evaluated (batched through the QueryScheduler so shared candidates
// are inferred once). The rest serve their cached answer with an empty
// delta.
//
// A subscription is provably unchanged at `now` when ALL of:
//  1. its last answer is time-invariant: every candidate's inferred
//     distribution is "settled" — the PF resume is a zero-advance no-op
//     (history older than max_coast_seconds, cached state pinned at
//     last_reading + max_coast) or the method ignores `now` outright
//     (kLastReading). Settledness is re-verified each tick against the
//     live history and ParticleCache (device, last-reading time, probed
//     state time), so hand-offs, evictions and restores dirty the
//     subscription even if the change log missed them;
//  2. no applied reading touched a candidate, and no changed non-candidate
//     entered the subscription's reach: for range, its grown uncertain
//     region now overlaps the window; for kNN, its distance interval's
//     lower bound dipped under the (uniformly growing) pruning bound f;
//  3. `now` is before the subscription's predicted expansion time — the
//     earliest instant ANY non-candidate's uncertain region could reach
//     the window / the f-bound, maintained from the crossing-time
//     arithmetic at evaluation and tightened as changed objects are
//     tested (margin_seconds early, never late).
//
// Determinism: identical registered subscriptions ticked at identical
// times over an identical collector answer byte-identically whether
// incremental is on or off, at any thread count — pinned by
// tests/subscription_test.cc.
//
// The manager never perturbs ad-hoc queries: it only reads the collector
// and probes (never mutates) the engine's cache outside of the batched
// evaluations it issues, and those go through the same QueryScheduler path
// any frontend uses.
class SubscriptionManager {
 public:
  explicit SubscriptionManager(QueryEngine* engine,
                               const SubscriptionManagerConfig& config = {});

  SubscriptionId AddRange(const Rect& window);
  SubscriptionId AddRange(const Rect& window, double membership_threshold);
  SubscriptionId AddKnn(const Point& point, int k);
  void Remove(SubscriptionId id);
  size_t size() const { return subs_.size(); }

  // Re-evaluates every dirty subscription at `now` (one scheduler batch)
  // and emits per-subscription deltas. `now` must not decrease across
  // calls. With non-null `explains`, fills one provenance record per
  // EVALUATED subscription (in the updates' evaluated order).
  SubscriptionTickResult Tick(int64_t now);
  SubscriptionTickResult Tick(int64_t now,
                              std::vector<obs::QueryExplain>* explains);
  // Ticks only if `now` is newer than the last tick (idempotent per
  // second); serves monitors that poll mid-second.
  void EnsureTick(int64_t now);

  // Cached full answer of a subscription (valid after its first tick).
  const BatchAnswer& Answer(SubscriptionId id) const;
  // Thresholded membership of a range subscription, maintained tick over
  // tick from the emitted deltas' algebra.
  const std::map<ObjectId, double>& RangeMembers(SubscriptionId id) const;
  // Current top-k of a kNN subscription, most probable first.
  const std::vector<ObjectId>& KnnCurrent(SubscriptionId id) const;

  SubscriptionStats stats() const;
  int64_t last_tick_time() const { return last_tick_time_; }
  const SubscriptionManagerConfig& config() const { return config_; }

 private:
  // Settledness pin for one candidate, verified each tick (see class
  // comment, condition 1). `probe` marks PF candidates whose cached state
  // must still probe resumable at exactly `state_time`; pins with `probe`
  // false (kLastReading) only require the history unchanged.
  struct CandidatePin {
    ObjectId object = kInvalidId;
    ReaderId device = kInvalidId;
    int64_t last_reading = 0;
    int64_t state_time = 0;
    bool probe = false;
  };

  struct Sub {
    SubscriptionId id = -1;
    BatchQuery query;
    double threshold = 0.5;  // kRange only.
    // State of the last evaluation (-1 = never evaluated).
    int64_t last_eval = -1;
    BatchAnswer answer;
    std::vector<ObjectId> candidates;  // Sorted.
    std::vector<CandidatePin> pins;
    // All candidates settled at last_eval — the answer is time-invariant
    // while the pins hold and the candidate set cannot have grown.
    bool stable = false;
    // Earliest time a non-candidate could join the candidate set (margin
    // already subtracted); -inf when not stable, +inf when provably never.
    double next_expand = 0.0;
    // kKnn pruning state at last_eval: the f bound and the per-reader
    // distance bounds + slack it was computed through (dists empty when
    // pruning was off or the entries<=k / prune-degenerate cases made f
    // meaningless — any changed non-candidate then dirties the
    // subscription). With an interval-valued backend (the oracle's
    // landmark fallback) the clean checks stay sound by reading lower
    // bounds for s and upper bounds for l.
    double f = 0.0;
    SourceDistances dists;
    GraphLocation snapped;
    // Delta-algebra state (continuous.h helpers).
    std::map<ObjectId, double> members;  // kRange.
    std::vector<ObjectId> current;       // kKnn.
  };

  SubscriptionId Add(BatchQuery query, double threshold);

  // Condition checks for one subscription (see class comment). Both may
  // tighten sub.next_expand as a side effect of testing changed objects.
  bool PinsHold(const Sub& sub, int64_t now) const;
  bool ChangesClean(Sub& sub, const std::vector<ObjectId>& changed,
                    int64_t now);
  // Reader-health condition: a drained health transition dirties every
  // subscription it could touch — a range subscription when the reader's
  // zone intersects its window or a candidate was last seen by the reader,
  // and every kNN subscription (no window to test against). Transitions
  // dirty exactly the ticks they fire on; a reader that STAYS dead never
  // re-dirties by itself.
  bool HealthClean(const Sub& sub,
                   const std::vector<ReaderId>& transitioned) const;

  // Rebuilds a subscription's incremental state from its fresh evaluation.
  void RefreshState(Sub& sub, const BatchAnswer& answer,
                    const BatchSlotDetail& detail, int64_t now);

  QueryEngine* engine_;
  SubscriptionManagerConfig config_;
  QueryScheduler scheduler_;
  std::map<SubscriptionId, Sub> subs_;  // Ordered: ticks are deterministic.
  SubscriptionId next_id_ = 0;

  // Collector change-log cursor (valid when the log is enabled).
  uint64_t change_cursor_ = 0;
  bool cursor_primed_ = false;
  // Health-monitor transition-log cursor (valid when the engine has one).
  uint64_t health_cursor_ = 0;
  bool health_primed_ = false;
  int64_t last_tick_time_ = -1;
  // A subscription was added since the last tick (EnsureTick must tick
  // even within the same second, so its first answer exists).
  bool needs_tick_ = false;

  // sub.* metrics (own_registry_ backs them when config.metrics is null).
  std::unique_ptr<obs::MetricsRegistry> own_registry_;
  obs::Gauge* registered_ = nullptr;
  obs::Counter* ticks_ = nullptr;
  obs::Counter* dirty_ = nullptr;
  obs::Counter* evals_skipped_ = nullptr;
  obs::Counter* changes_seen_ = nullptr;
  obs::Histogram* delta_entries_ = nullptr;
};

}  // namespace ipqs

#endif  // IPQS_QUERY_SUBSCRIPTION_H_
