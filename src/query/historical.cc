#include "query/historical.h"

#include <utility>
#include <vector>

#include "common/check.h"
#include "query/uncertain_region.h"

namespace ipqs {

HistoricalEngine::HistoricalEngine(const WalkingGraph* graph,
                                   const FloorPlan* plan,
                                   const AnchorPointIndex* anchors,
                                   const AnchorGraph* anchor_graph,
                                   const Deployment* deployment,
                                   const DeploymentGraph* deployment_graph,
                                   const HistoryStore* store,
                                   const EngineConfig& config)
    : graph_(graph),
      anchors_(anchors),
      deployment_(deployment),
      store_(store),
      config_(config),
      filter_(graph, deployment, config.filter),
      symbolic_(anchors, anchor_graph, deployment, deployment_graph,
                config.symbolic),
      range_eval_(plan, anchors),
      knn_eval_(graph, anchors, anchor_graph),
      rng_(config.seed) {
  IPQS_CHECK(store != nullptr);
}

void HistoricalEngine::SyncTableTo(int64_t time) {
  if (table_time_ != time) {
    table_.Clear();
    table_time_ = time;
  }
}

const AnchorDistribution* HistoricalEngine::InferObjectAt(ObjectId object,
                                                          int64_t time) {
  SyncTableTo(time);
  if (const AnchorDistribution* memo = table_.Distribution(object)) {
    return memo;
  }
  const auto history = store_->SnapshotAt(object, time);
  if (!history.has_value() || history->entries.empty()) {
    return nullptr;
  }
  ++stats_.candidates_inferred;

  AnchorDistribution dist;
  if (config_.method == InferenceMethod::kSymbolicModel) {
    dist = symbolic_.Infer(*history, time);
  } else {
    const FilterResult state = filter_.Run(*history, time, rng_);
    ++stats_.filter_runs;
    stats_.filter_seconds += state.seconds_processed;
    dist = AnchorDistribution::FromParticles(*anchors_, state.particles);
  }
  table_.Set(object, std::move(dist));
  return table_.Distribution(object);
}

QueryResult HistoricalEngine::EvaluateRangeAt(const Rect& window,
                                              int64_t time) {
  SyncTableTo(time);
  ++stats_.queries;
  for (ObjectId object : store_->KnownObjects()) {
    const auto snapshot = store_->SnapshotAt(object, time);
    if (!snapshot.has_value() || snapshot->entries.empty()) {
      continue;
    }
    ++stats_.objects_considered;
    if (config_.use_pruning) {
      const UncertainRegion ur =
          ComputeUncertainRegion(*deployment_, object,
                                 snapshot->entries.back(), time,
                                 config_.max_speed);
      if (!ur.Overlaps(window)) {
        continue;
      }
    }
    InferObjectAt(object, time);
  }
  return range_eval_.Evaluate(table_, window);
}

KnnResult HistoricalEngine::EvaluateKnnAt(const Point& query, int k,
                                          int64_t time) {
  SyncTableTo(time);
  ++stats_.queries;
  // kNN pruning needs all objects' distance intervals; for simplicity the
  // historical path infers everyone seen by `time` (historical workloads
  // are offline).
  for (ObjectId object : store_->KnownObjects()) {
    InferObjectAt(object, time);
  }
  const GraphLocation q =
      graph_->NearestLocation(query, /*prefer_hallways=*/true);
  return knn_eval_.Evaluate(table_, q, k);
}

}  // namespace ipqs
