#ifndef IPQS_QUERY_TRAJECTORY_H_
#define IPQS_QUERY_TRAJECTORY_H_

#include <cstdint>
#include <vector>

#include "query/historical.h"

namespace ipqs {

// Trajectory reconstruction over recorded RFID history — classic
// "track and trace": where (most probably) was this object at each
// sampled instant?
struct TrajectoryPoint {
  int64_t time = 0;
  AnchorId anchor = kInvalidId;  // MAP anchor at `time`.
  double probability = 0.0;      // Its mass in the inferred distribution.
};

// Samples the object's maximum a-posteriori location every `step` seconds
// in [from, to]. Instants before the object's first detection are skipped,
// so the result may start later than `from` (or be empty).
std::vector<TrajectoryPoint> ReconstructTrajectory(HistoricalEngine& engine,
                                                   ObjectId object,
                                                   int64_t from, int64_t to,
                                                   int64_t step);

// Total network length of the reconstructed trajectory (sum of anchor-
// graph distances between consecutive MAP anchors) — a rough mobility
// measure.
double TrajectoryLength(const AnchorPointIndex& anchors,
                        const AnchorGraph& anchor_graph,
                        const std::vector<TrajectoryPoint>& trajectory);

}  // namespace ipqs

#endif  // IPQS_QUERY_TRAJECTORY_H_
