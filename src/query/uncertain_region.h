#ifndef IPQS_QUERY_UNCERTAIN_REGION_H_
#define IPQS_QUERY_UNCERTAIN_REGION_H_

#include <cstdint>
#include <vector>

#include "geom/point.h"
#include "geom/rect.h"
#include "graph/shortest_path.h"
#include "rfid/data_collector.h"
#include "rfid/deployment.h"

namespace ipqs {

// Uncertain region of an object (Section 4.3): a disc centered at its last
// detecting reader with radius
//   r = u_max * (t_now - t_last) + d.range,
// guaranteed to contain the object's true position (under the max-speed
// assumption). The query-aware optimization module prunes objects whose
// uncertain region cannot intersect any registered query.
struct UncertainRegion {
  ObjectId object = kInvalidId;
  ReaderId reader = kInvalidId;
  Point center;
  double radius = 0.0;

  // Euclidean window test for range-query pruning.
  bool Overlaps(const Rect& window) const {
    return window.DistanceTo(center) <= radius;
  }
};

UncertainRegion ComputeUncertainRegion(const Deployment& deployment,
                                       ObjectId object,
                                       const AggregatedEntry& last_reading,
                                       int64_t now, double max_speed);

// Min/max shortest-network-distance interval [s_i, l_i] from a query point
// to an uncertain region (Equation 6), computed through one cached
// Dijkstra from the query point:
//   s_i = max(0, d_net(q, reader) - radius),  l_i = d_net(q, reader) + radius.
struct DistanceInterval {
  double min_dist = 0.0;  // s_i
  double max_dist = 0.0;  // l_i
};

DistanceInterval NetworkDistanceInterval(const OneToAllDistances& from_query,
                                         const Deployment& deployment,
                                         const UncertainRegion& region);

// Interval computed through a distance table sourced NEAR the query point
// rather than at it (e.g. a shared per-anchor table from a DistanceIndex).
// `source_slack` must bound the network distance between the query point
// and the table's source; the interval is widened by it on both sides, so
// it still contains the true [s_i, l_i] and pruning stays sound. With
// slack 0 this is exactly the plain interval.
DistanceInterval NetworkDistanceInterval(const OneToAllDistances& from_source,
                                         double source_slack,
                                         const Deployment& deployment,
                                         const UncertainRegion& region);

// Range-query candidate filter: objects whose uncertain region overlaps at
// least one window. Objects without any reading are never candidates (they
// have never been inside the instrumented space).
std::vector<ObjectId> FilterRangeCandidates(
    const DataCollector& collector, const Deployment& deployment,
    const std::vector<Rect>& windows, int64_t now, double max_speed);

// kNN candidate filter (distance-based pruning of [30]): drops every object
// whose s_i exceeds f = the k-th smallest l_i.
std::vector<ObjectId> FilterKnnCandidates(const WalkingGraph& graph,
                                          const DataCollector& collector,
                                          const Deployment& deployment,
                                          const GraphLocation& query, int k,
                                          int64_t now, double max_speed);

// Same filter evaluated through a precomputed distance table (typically a
// shared DistanceIndex entry sourced at the anchor point the query
// canonicalizes to). `source_slack` bounds the network distance between
// the query point and the table source; intervals are widened by it, so
// the candidate set is a superset of the exact one — never unsound.
std::vector<ObjectId> FilterKnnCandidates(const DataCollector& collector,
                                          const Deployment& deployment,
                                          const OneToAllDistances& from_source,
                                          double source_slack, int k,
                                          int64_t now, double max_speed);

}  // namespace ipqs

#endif  // IPQS_QUERY_UNCERTAIN_REGION_H_
