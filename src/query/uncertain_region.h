#ifndef IPQS_QUERY_UNCERTAIN_REGION_H_
#define IPQS_QUERY_UNCERTAIN_REGION_H_

#include <cstdint>
#include <vector>

#include "geom/point.h"
#include "geom/rect.h"
#include "graph/shortest_path.h"
#include "rfid/data_collector.h"
#include "rfid/deployment.h"

namespace ipqs {

// Uncertain region of an object (Section 4.3): a disc centered at its last
// detecting reader with radius
//   r = u_max * (t_now - t_last) + d.range,
// guaranteed to contain the object's true position (under the max-speed
// assumption). The query-aware optimization module prunes objects whose
// uncertain region cannot intersect any registered query.
struct UncertainRegion {
  ObjectId object = kInvalidId;
  ReaderId reader = kInvalidId;
  Point center;
  double radius = 0.0;

  // Euclidean window test for range-query pruning.
  bool Overlaps(const Rect& window) const {
    return window.DistanceTo(center) <= radius;
  }
};

UncertainRegion ComputeUncertainRegion(const Deployment& deployment,
                                       ObjectId object,
                                       const AggregatedEntry& last_reading,
                                       int64_t now, double max_speed);

// Min/max shortest-network-distance interval [s_i, l_i] from a query point
// to an uncertain region (Equation 6), computed through one cached
// Dijkstra from the query point:
//   s_i = max(0, d_net(q, reader) - radius),  l_i = d_net(q, reader) + radius.
struct DistanceInterval {
  double min_dist = 0.0;  // s_i
  double max_dist = 0.0;  // l_i
};

DistanceInterval NetworkDistanceInterval(const OneToAllDistances& from_query,
                                         const Deployment& deployment,
                                         const UncertainRegion& region);

// Per-reader network-distance bounds from one query source point. This is
// the only shape of distance information kNN pruning actually consumes —
// every uncertain region is centered on a reader — so the engine hands this
// around instead of a whole one-to-all table. Exact backends (a private
// Dijkstra, a DistanceIndex table, the oracle's pinned reader matrix) fill
// lower == upper; the landmark-bound fallback fills a genuine interval.
// Entries may be +inf when a reader is unreachable from the source; all
// consumers must treat +inf as "cannot bound from below / prove reachable",
// never as an orderable distance.
struct SourceDistances {
  struct Bound {
    double lower = 0.0;
    double upper = 0.0;
  };
  // Indexed by ReaderId; empty means "no distances computed".
  std::vector<Bound> to_reader;
  // Bound on the network distance between the true query point and the
  // source the bounds were computed from (0 when sourced exactly).
  double slack = 0.0;

  bool empty() const { return to_reader.empty(); }

  // Evaluates `table.ToLocation` once per reader. Byte-identical to what
  // consumers previously computed from the shared table, at one lookup per
  // reader instead of one per (object, evaluation).
  static SourceDistances FromTable(const OneToAllDistances& table,
                                   double source_slack,
                                   const Deployment& deployment);
};

// Interval through per-reader bounds: widened by the region radius plus the
// source slack on both sides, using the lower bound on the min side and the
// upper bound on the max side, so it always contains the true [s_i, l_i].
DistanceInterval NetworkDistanceInterval(const SourceDistances& dists,
                                         const UncertainRegion& region);

// Interval computed through a distance table sourced NEAR the query point
// rather than at it (e.g. a shared per-anchor table from a DistanceIndex).
// `source_slack` must bound the network distance between the query point
// and the table's source; the interval is widened by it on both sides, so
// it still contains the true [s_i, l_i] and pruning stays sound. With
// slack 0 this is exactly the plain interval.
DistanceInterval NetworkDistanceInterval(const OneToAllDistances& from_source,
                                         double source_slack,
                                         const Deployment& deployment,
                                         const UncertainRegion& region);

// Range-query candidate filter: objects whose uncertain region overlaps at
// least one window. Objects without any reading are never candidates (they
// have never been inside the instrumented space).
std::vector<ObjectId> FilterRangeCandidates(
    const DataCollector& collector, const Deployment& deployment,
    const std::vector<Rect>& windows, int64_t now, double max_speed);

// kNN candidate filter (distance-based pruning of [30]): drops every object
// whose s_i exceeds f = the k-th smallest l_i.
std::vector<ObjectId> FilterKnnCandidates(const WalkingGraph& graph,
                                          const DataCollector& collector,
                                          const Deployment& deployment,
                                          const GraphLocation& query, int k,
                                          int64_t now, double max_speed);

// Same filter evaluated through a precomputed distance table (typically a
// shared DistanceIndex entry sourced at the anchor point the query
// canonicalizes to). `source_slack` bounds the network distance between
// the query point and the table source; intervals are widened by it, so
// the candidate set is a superset of the exact one — never unsound.
std::vector<ObjectId> FilterKnnCandidates(const DataCollector& collector,
                                          const Deployment& deployment,
                                          const OneToAllDistances& from_source,
                                          double source_slack, int k,
                                          int64_t now, double max_speed);

// Same filter over per-reader bounds. With unreachable readers in play the
// cutoff f (k-th smallest l_i) can be +inf, in which case nothing is pruned
// — a sound superset; the evaluation stage, which expands over the actual
// graph, is what rules unreachable objects out.
std::vector<ObjectId> FilterKnnCandidates(const DataCollector& collector,
                                          const Deployment& deployment,
                                          const SourceDistances& dists, int k,
                                          int64_t now, double max_speed);

}  // namespace ipqs

#endif  // IPQS_QUERY_UNCERTAIN_REGION_H_
