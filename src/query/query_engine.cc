#include "query/query_engine.h"

#include <utility>

#include "common/check.h"

namespace ipqs {

QueryEngine::QueryEngine(const WalkingGraph* graph, const FloorPlan* plan,
                         const AnchorPointIndex* anchors,
                         const AnchorGraph* anchor_graph,
                         const Deployment* deployment,
                         const DeploymentGraph* deployment_graph,
                         const DataCollector* collector,
                         const EngineConfig& config)
    : graph_(graph),
      anchors_(anchors),
      deployment_(deployment),
      collector_(collector),
      config_(config),
      filter_(graph, deployment, config.filter),
      symbolic_(anchors, anchor_graph, deployment, deployment_graph,
                config.symbolic),
      range_eval_(plan, anchors),
      knn_eval_(graph, anchors, anchor_graph),
      rng_(config.seed) {
  IPQS_CHECK(collector != nullptr);
}

void QueryEngine::SyncTableTo(int64_t now) {
  if (table_time_ != now) {
    table_.Clear();
    table_time_ = now;
  }
}

const AnchorDistribution* QueryEngine::InferObject(ObjectId object,
                                                   int64_t now) {
  SyncTableTo(now);
  if (const AnchorDistribution* memo = table_.Distribution(object)) {
    return memo;  // Already inferred for this timestamp.
  }
  const DataCollector::ObjectHistory* history = collector_->History(object);
  if (history == nullptr || history->entries.empty()) {
    return nullptr;
  }
  ++stats_.candidates_inferred;

  AnchorDistribution dist;
  if (config_.method == InferenceMethod::kSymbolicModel) {
    dist = symbolic_.Infer(*history, now);
  } else if (config_.method == InferenceMethod::kLastReading) {
    // Uniform over the anchors covered by the last detecting reader.
    const Reader& last = deployment_->reader(history->current_device);
    std::vector<AnchorId> covered;
    for (AnchorId a :
         anchors_->InRect(Rect::FromCenter(last.pos, 2 * last.range,
                                           2 * last.range))) {
      if (last.InRange(anchors_->anchor(a).pos)) {
        covered.push_back(a);
      }
    }
    if (covered.empty()) {
      covered.push_back(anchors_->NearestToPoint(last.pos));
    }
    dist = AnchorDistribution::Uniform(std::move(covered));
  } else {
    const ReaderId current_device = history->current_device;
    FilterResult state;
    bool resumed = false;
    int seconds_before = 0;
    if (config_.use_cache) {
      if (auto cached = cache_.Lookup(object, current_device)) {
        seconds_before = cached->seconds_processed;
        state = filter_.Resume(std::move(*cached), *history, now, rng_);
        resumed = true;
      }
    }
    if (!resumed) {
      state = filter_.Run(*history, now, rng_);
      ++stats_.filter_runs;
    } else {
      ++stats_.filter_resumes;
    }
    // Only the seconds filtered by THIS call count as work (a resumed
    // state carries its lifetime total in seconds_processed).
    stats_.filter_seconds += state.seconds_processed - seconds_before;
    dist = AnchorDistribution::FromParticles(*anchors_, state.particles);
    if (config_.use_cache) {
      cache_.Insert(object, current_device, std::move(state));
    }
  }
  table_.Set(object, std::move(dist));
  return table_.Distribution(object);
}

QueryResult QueryEngine::EvaluateRange(const Rect& window, int64_t now) {
  SyncTableTo(now);
  ++stats_.queries;

  std::vector<ObjectId> candidates;
  if (config_.use_pruning) {
    candidates = FilterRangeCandidates(*collector_, *deployment_, {window},
                                       now, config_.max_speed);
  } else {
    candidates = collector_->KnownObjects();
  }
  stats_.objects_considered +=
      static_cast<int64_t>(collector_->KnownObjects().size());

  for (ObjectId object : candidates) {
    InferObject(object, now);
  }
  return range_eval_.Evaluate(table_, window);
}

KnnResult QueryEngine::EvaluateKnn(const Point& query, int k, int64_t now) {
  SyncTableTo(now);
  ++stats_.queries;

  const GraphLocation q =
      graph_->NearestLocation(query, /*prefer_hallways=*/true);
  std::vector<ObjectId> candidates;
  if (config_.use_pruning) {
    candidates = FilterKnnCandidates(*graph_, *collector_, *deployment_, q, k,
                                     now, config_.max_speed);
  } else {
    candidates = collector_->KnownObjects();
  }
  stats_.objects_considered +=
      static_cast<int64_t>(collector_->KnownObjects().size());

  for (ObjectId object : candidates) {
    InferObject(object, now);
  }
  return knn_eval_.Evaluate(table_, q, k);
}

void QueryEngine::ResetStats() { stats_ = EngineStats{}; }

}  // namespace ipqs
