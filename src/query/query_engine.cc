#include "query/query_engine.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace ipqs {

QueryEngine::QueryEngine(const WalkingGraph* graph, const FloorPlan* plan,
                         const AnchorPointIndex* anchors,
                         const AnchorGraph* anchor_graph,
                         const Deployment* deployment,
                         const DeploymentGraph* deployment_graph,
                         const DataCollector* collector,
                         const EngineConfig& config)
    : graph_(graph),
      anchors_(anchors),
      deployment_(deployment),
      collector_(collector),
      config_(config),
      filter_(graph, deployment, config.filter),
      symbolic_(anchors, anchor_graph, deployment, deployment_graph,
                config.symbolic),
      range_eval_(plan, anchors),
      knn_eval_(graph, anchors, anchor_graph) {
  IPQS_CHECK(collector != nullptr);
  IPQS_CHECK_GE(config.num_threads, 0);
  InitObservability();
}

void QueryEngine::InitObservability() {
  if (config_.metrics == nullptr) {
    own_registry_ = std::make_unique<obs::MetricsRegistry>();
  }
  metrics_ = config_.metrics != nullptr ? config_.metrics : own_registry_.get();
  trace_ = config_.trace;

  const std::string& p = config_.metrics_prefix;
  counters_.queries = metrics_->GetCounter(p + ".engine.queries");
  counters_.objects_considered =
      metrics_->GetCounter(p + ".engine.objects_considered");
  counters_.candidates_inferred =
      metrics_->GetCounter(p + ".engine.candidates_inferred");
  counters_.filter_runs = metrics_->GetCounter(p + ".engine.filter_runs");
  counters_.filter_resumes = metrics_->GetCounter(p + ".engine.filter_resumes");
  counters_.filter_seconds = metrics_->GetCounter(p + ".engine.filter_seconds");

  if (config_.metrics == nullptr) {
    return;  // No external registry: counters only, no timers anywhere.
  }
  timers_.range_latency_ns =
      metrics_->GetHistogram(p + ".query.range_latency_ns");
  timers_.knn_latency_ns = metrics_->GetHistogram(p + ".query.knn_latency_ns");
  timers_.prune_ns = metrics_->GetHistogram(p + ".stage.prune_ns");
  timers_.infer_ns = metrics_->GetHistogram(p + ".stage.infer_ns");
  timers_.merge_ns = metrics_->GetHistogram(p + ".stage.merge_ns");
  timers_.evaluate_ns = metrics_->GetHistogram(p + ".stage.evaluate_ns");
  timers_.snap_ns = metrics_->GetHistogram(p + ".filter.snap_ns");

  FilterMetrics filter_metrics;
  filter_metrics.run_ns = metrics_->GetHistogram(p + ".filter.run_ns");
  filter_metrics.resume_ns = metrics_->GetHistogram(p + ".filter.resume_ns");
  filter_metrics.predict_ns = metrics_->GetHistogram(p + ".filter.predict_ns");
  filter_metrics.weight_ns = metrics_->GetHistogram(p + ".filter.weight_ns");
  filter_metrics.resample_ns =
      metrics_->GetHistogram(p + ".filter.resample_ns");
  filter_metrics.particles = metrics_->GetGauge(p + ".filter.particles");
  filter_.SetMetrics(filter_metrics);

  CacheMetrics cache_metrics;
  cache_metrics.hits = metrics_->GetCounter(p + ".cache.hits");
  cache_metrics.misses = metrics_->GetCounter(p + ".cache.misses");
  cache_metrics.invalidations =
      metrics_->GetCounter(p + ".cache.invalidations");
  cache_metrics.stale_invalidations =
      metrics_->GetCounter(p + ".cache.stale_invalidations");
  cache_metrics.evictions = metrics_->GetCounter(p + ".cache.evictions");
  cache_.SetMetrics(cache_metrics);
}

void QueryEngine::SyncTableTo(int64_t now) {
  if (table_time_ != now) {
    table_.Clear();
    table_time_ = now;
  }
}

std::optional<AnchorDistribution> QueryEngine::ComputeInference(
    ObjectId object, int64_t now) {
  const DataCollector::ObjectHistory* history = collector_->History(object);
  if (history == nullptr || history->entries.empty()) {
    return std::nullopt;
  }
  const obs::TraceSpan span(trace_, "infer", "object",
                            static_cast<int64_t>(object));
  counters_.candidates_inferred->Increment();

  if (config_.method == InferenceMethod::kSymbolicModel) {
    return symbolic_.Infer(*history, now);
  }
  if (config_.method == InferenceMethod::kLastReading) {
    // Uniform over the anchors covered by the last detecting reader.
    const Reader& last = deployment_->reader(history->current_device);
    std::vector<AnchorId> covered;
    for (AnchorId a :
         anchors_->InRect(Rect::FromCenter(last.pos, 2 * last.range,
                                           2 * last.range))) {
      if (last.InRange(anchors_->anchor(a).pos)) {
        covered.push_back(a);
      }
    }
    if (covered.empty()) {
      covered.push_back(anchors_->NearestToPoint(last.pos));
    }
    return AnchorDistribution::Uniform(std::move(covered));
  }

  // Particle filter: all randomness comes from this object's own
  // (seed, object, now) stream, so the result cannot depend on which
  // other objects were inferred before it or on what thread runs it.
  Rng rng = Rng::ForStream(config_.seed, static_cast<uint64_t>(object),
                           static_cast<uint64_t>(now));
  FilterResult state;
  bool resumed = false;
  int seconds_before = 0;
  if (config_.use_cache) {
    if (auto cached = cache_.Lookup(object, *history)) {
      seconds_before = cached->seconds_processed;
      state = filter_.Resume(std::move(*cached), *history, now, rng);
      resumed = true;
    }
  }
  if (!resumed) {
    state = filter_.Run(*history, now, rng);
    counters_.filter_runs->Increment();
  } else {
    counters_.filter_resumes->Increment();
  }
  // Only the seconds filtered by THIS call count as work (a resumed
  // state carries its lifetime total in seconds_processed).
  counters_.filter_seconds->Increment(state.seconds_processed -
                                      seconds_before);
  std::optional<AnchorDistribution> snapped;
  {
    const obs::ScopedTimer snap_timer(timers_.snap_ns);
    snapped = AnchorDistribution::FromParticles(*anchors_, state.particles);
  }
  AnchorDistribution dist = std::move(*snapped);
  if (config_.use_cache) {
    cache_.Insert(object, *history, std::move(state));
  }
  return dist;
}

const AnchorDistribution* QueryEngine::InferObject(ObjectId object,
                                                   int64_t now) {
  SyncTableTo(now);
  if (const AnchorDistribution* memo = table_.Distribution(object)) {
    return memo;  // Already inferred for this timestamp.
  }
  std::optional<AnchorDistribution> dist = ComputeInference(object, now);
  if (!dist.has_value()) {
    return nullptr;
  }
  table_.Set(object, std::move(*dist));
  return table_.Distribution(object);
}

void QueryEngine::InferBatch(const std::vector<ObjectId>& candidates,
                             int64_t now) {
  SyncTableTo(now);
  const obs::TraceSpan span(trace_, "infer_batch");

  // Canonicalize the batch: ascending, unique, not yet memoized, known.
  // Sorting fixes the table merge order (and thereby every downstream
  // floating-point accumulation), so shuffled candidate lists and any
  // thread interleaving produce byte-identical query answers.
  std::vector<ObjectId> todo;
  todo.reserve(candidates.size());
  for (ObjectId object : candidates) {
    const DataCollector::ObjectHistory* history = collector_->History(object);
    if (history == nullptr || history->entries.empty()) {
      continue;
    }
    if (table_.Distribution(object) != nullptr) {
      continue;
    }
    todo.push_back(object);
  }
  std::sort(todo.begin(), todo.end());
  todo.erase(std::unique(todo.begin(), todo.end()), todo.end());
  if (todo.empty()) {
    return;
  }

  std::vector<std::optional<AnchorDistribution>> results(todo.size());
  auto infer_one = [&](size_t i) {
    results[i] = ComputeInference(todo[i], now);
  };

  {
    const obs::ScopedTimer infer_timer(timers_.infer_ns);
    if (config_.num_threads > 1 && todo.size() > 1) {
      if (pool_ == nullptr) {
        // The calling thread steals while it waits, so it counts toward
        // the configured width.
        pool_ = std::make_unique<ThreadPool>(config_.num_threads - 1);
        if (config_.metrics != nullptr) {
          const std::string& p = config_.metrics_prefix;
          PoolMetrics pool_metrics;
          pool_metrics.tasks = metrics_->GetCounter(p + ".pool.tasks");
          pool_metrics.steals = metrics_->GetCounter(p + ".pool.steals");
          pool_metrics.queue_depth =
              metrics_->GetGauge(p + ".pool.queue_depth");
          pool_metrics.wait_ns = metrics_->GetHistogram(p + ".pool.wait_ns");
          pool_->SetMetrics(pool_metrics);
        }
      }
      pool_->ParallelFor(todo.size(), infer_one);
    } else {
      for (size_t i = 0; i < todo.size(); ++i) {
        infer_one(i);
      }
    }
  }

  // Single-threaded merge into the APtoObjHT, in ascending object order.
  const obs::TraceSpan merge_span(trace_, "merge");
  const obs::ScopedTimer merge_timer(timers_.merge_ns);
  for (size_t i = 0; i < todo.size(); ++i) {
    if (results[i].has_value()) {
      table_.Set(todo[i], std::move(*results[i]));
    }
  }
}

QueryResult QueryEngine::EvaluateRange(const Rect& window, int64_t now) {
  SyncTableTo(now);
  const obs::TraceSpan span(trace_, "range_query");
  const obs::ScopedTimer latency(timers_.range_latency_ns);
  counters_.queries->Increment();

  std::vector<ObjectId> candidates;
  {
    const obs::TraceSpan prune_span(trace_, "prune");
    const obs::ScopedTimer prune_timer(timers_.prune_ns);
    if (config_.use_pruning) {
      candidates = FilterRangeCandidates(*collector_, *deployment_, {window},
                                         now, config_.max_speed);
    } else {
      candidates = collector_->KnownObjects();
    }
  }
  counters_.objects_considered->Increment(
      static_cast<int64_t>(collector_->KnownObjects().size()));

  InferBatch(candidates, now);
  const obs::TraceSpan eval_span(trace_, "evaluate");
  const obs::ScopedTimer eval_timer(timers_.evaluate_ns);
  return range_eval_.Evaluate(table_, window);
}

KnnResult QueryEngine::EvaluateKnn(const Point& query, int k, int64_t now) {
  SyncTableTo(now);
  const obs::TraceSpan span(trace_, "knn_query");
  const obs::ScopedTimer latency(timers_.knn_latency_ns);
  counters_.queries->Increment();

  const GraphLocation q =
      graph_->NearestLocation(query, /*prefer_hallways=*/true);
  std::vector<ObjectId> candidates;
  {
    const obs::TraceSpan prune_span(trace_, "prune");
    const obs::ScopedTimer prune_timer(timers_.prune_ns);
    if (config_.use_pruning) {
      candidates = FilterKnnCandidates(*graph_, *collector_, *deployment_, q,
                                       k, now, config_.max_speed);
    } else {
      candidates = collector_->KnownObjects();
    }
  }
  counters_.objects_considered->Increment(
      static_cast<int64_t>(collector_->KnownObjects().size()));

  InferBatch(candidates, now);
  const obs::TraceSpan eval_span(trace_, "evaluate");
  const obs::ScopedTimer eval_timer(timers_.evaluate_ns);
  return knn_eval_.Evaluate(table_, q, k);
}

EngineStats QueryEngine::stats() const {
  EngineStats out;
  out.queries = counters_.queries->Value();
  out.objects_considered = counters_.objects_considered->Value();
  out.candidates_inferred = counters_.candidates_inferred->Value();
  out.filter_runs = counters_.filter_runs->Value();
  out.filter_resumes = counters_.filter_resumes->Value();
  out.filter_seconds = counters_.filter_seconds->Value();
  return out;
}

void QueryEngine::ResetStats() {
  counters_.queries->Reset();
  counters_.objects_considered->Reset();
  counters_.candidates_inferred->Reset();
  counters_.filter_runs->Reset();
  counters_.filter_resumes->Reset();
  counters_.filter_seconds->Reset();
}

}  // namespace ipqs
