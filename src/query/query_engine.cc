#include "query/query_engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/check.h"
#include "graph/shortest_path.h"

namespace {

// Canonical candidate order for the degraded paths: ascending and unique,
// so plan lists and prune-only accumulation never depend on the order the
// pruning stage emitted candidates in.
std::vector<ipqs::ObjectId> Canonicalize(
    const std::vector<ipqs::ObjectId>& candidates) {
  std::vector<ipqs::ObjectId> sorted = candidates;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  return sorted;
}

}  // namespace

namespace ipqs {

QueryEngine::QueryEngine(const WalkingGraph* graph, const FloorPlan* plan,
                         const AnchorPointIndex* anchors,
                         const AnchorGraph* anchor_graph,
                         const Deployment* deployment,
                         const DeploymentGraph* deployment_graph,
                         const DataCollector* collector,
                         const EngineConfig& config)
    : graph_(graph),
      anchors_(anchors),
      deployment_(deployment),
      collector_(collector),
      config_(config),
      silence_trust_(collector, config.health),
      filter_(graph, deployment, config.filter),
      symbolic_(anchors, anchor_graph, deployment, deployment_graph,
                config.symbolic),
      range_eval_(plan, anchors),
      knn_eval_(graph, anchors, anchor_graph) {
  IPQS_CHECK(collector != nullptr);
  IPQS_CHECK_GE(config.num_threads, 0);
  if (config.degrade.reduced_particles >= 1) {
    FilterConfig reduced = config.filter;
    reduced.num_particles = config.degrade.reduced_particles;
    degraded_filter_ =
        std::make_unique<ParticleFilter>(graph, deployment, reduced);
  }
  // Both filters consult the same trust provider, so degraded runs weight
  // silence exactly like full-quality ones.
  filter_.SetSilenceTrust(&silence_trust_);
  if (degraded_filter_ != nullptr) {
    degraded_filter_->SetSilenceTrust(&silence_trust_);
  }
  if (config.use_distance_index) {
    dindex_ = std::make_unique<DistanceIndex>(graph,
                                              config.distance_index_capacity);
  }
  if (config.use_distance_oracle) {
    DistanceOracleConfig oracle_config;
    oracle_config.num_landmarks = std::max(config.oracle_landmarks, 1);
    oracle_ = std::make_unique<DistanceOracle>(graph, oracle_config);
  }
  InitObservability();
  if (dindex_ != nullptr) {
    // Every uncertain-region interval measures to a reader position, so
    // those tables are the hottest by far: precompute and pin them now.
    for (ReaderId r = 0; r < deployment->num_readers(); ++r) {
      dindex_->Pin(deployment->reader(r).loc);
    }
  }
  if (oracle_ != nullptr) {
    // Readers are pinned and static for the life of a deployment, so the
    // anchor-to-reader matrix is computed once here and never invalidated.
    std::vector<GraphLocation> reader_locs;
    reader_locs.reserve(deployment->num_readers());
    for (ReaderId r = 0; r < deployment->num_readers(); ++r) {
      reader_locs.push_back(deployment->reader(r).loc);
    }
    oracle_->BuildPinnedMatrix(*anchors_, reader_locs);
  }
}

void QueryEngine::InitObservability() {
  if (config_.metrics == nullptr) {
    own_registry_ = std::make_unique<obs::MetricsRegistry>();
  }
  metrics_ = config_.metrics != nullptr ? config_.metrics : own_registry_.get();
  trace_ = config_.trace;

  const std::string& p = config_.metrics_prefix;
  counters_.queries = metrics_->GetCounter(p + ".engine.queries");
  counters_.objects_considered =
      metrics_->GetCounter(p + ".engine.objects_considered");
  counters_.candidates_inferred =
      metrics_->GetCounter(p + ".engine.candidates_inferred");
  counters_.filter_runs = metrics_->GetCounter(p + ".engine.filter_runs");
  counters_.filter_resumes = metrics_->GetCounter(p + ".engine.filter_resumes");
  counters_.filter_seconds = metrics_->GetCounter(p + ".engine.filter_seconds");
  degrade_counters_.full = metrics_->GetCounter(p + ".degrade.full");
  degrade_counters_.cached_stale =
      metrics_->GetCounter(p + ".degrade.cached_stale");
  degrade_counters_.reduced_particles =
      metrics_->GetCounter(p + ".degrade.reduced_particles");
  degrade_counters_.prune_only = metrics_->GetCounter(p + ".degrade.prune_only");
  degrade_counters_.stale_served_objects =
      metrics_->GetCounter(p + ".degrade.stale_served_objects");

  if (config_.metrics == nullptr) {
    return;  // No external registry: counters only, no timers anywhere.
  }
  timers_.range_latency_ns =
      metrics_->GetHistogram(p + ".query.range_latency_ns");
  timers_.knn_latency_ns = metrics_->GetHistogram(p + ".query.knn_latency_ns");
  timers_.prune_ns = metrics_->GetHistogram(p + ".stage.prune_ns");
  timers_.infer_ns = metrics_->GetHistogram(p + ".stage.infer_ns");
  timers_.merge_ns = metrics_->GetHistogram(p + ".stage.merge_ns");
  timers_.evaluate_ns = metrics_->GetHistogram(p + ".stage.evaluate_ns");
  timers_.snap_ns = metrics_->GetHistogram(p + ".filter.snap_ns");

  FilterMetrics filter_metrics;
  filter_metrics.run_ns = metrics_->GetHistogram(p + ".filter.run_ns");
  filter_metrics.resume_ns = metrics_->GetHistogram(p + ".filter.resume_ns");
  filter_metrics.predict_ns = metrics_->GetHistogram(p + ".filter.predict_ns");
  filter_metrics.weight_ns = metrics_->GetHistogram(p + ".filter.weight_ns");
  filter_metrics.resample_ns =
      metrics_->GetHistogram(p + ".filter.resample_ns");
  filter_metrics.particles = metrics_->GetGauge(p + ".filter.particles");
  filter_metrics.reseeds = metrics_->GetCounter(p + ".filter.reseed_total");
  filter_.SetMetrics(filter_metrics);

  if (dindex_ != nullptr) {
    DistanceIndexMetrics dindex_metrics;
    dindex_metrics.hits = metrics_->GetCounter(p + ".dindex.hits");
    dindex_metrics.misses = metrics_->GetCounter(p + ".dindex.misses");
    dindex_metrics.evictions = metrics_->GetCounter(p + ".dindex.evictions");
    dindex_metrics.race_drops = metrics_->GetCounter(p + ".dindex.race_drops");
    dindex_->SetMetrics(dindex_metrics);
  }

  if (oracle_ != nullptr) {
    DistanceOracleMetrics oracle_metrics;
    oracle_metrics.matrix_lookups =
        metrics_->GetCounter(p + ".oracle.matrix_lookups");
    oracle_metrics.matrix_fallbacks =
        metrics_->GetCounter(p + ".oracle.matrix_fallbacks");
    oracle_metrics.p2p_queries =
        metrics_->GetCounter(p + ".oracle.p2p_queries");
    oracle_metrics.bound_queries =
        metrics_->GetCounter(p + ".oracle.bound_queries");
    oracle_->SetMetrics(oracle_metrics);
  }

  CacheMetrics cache_metrics;
  cache_metrics.hits = metrics_->GetCounter(p + ".cache.hits");
  cache_metrics.misses = metrics_->GetCounter(p + ".cache.misses");
  cache_metrics.invalidations =
      metrics_->GetCounter(p + ".cache.invalidations");
  cache_metrics.stale_invalidations =
      metrics_->GetCounter(p + ".cache.stale_invalidations");
  cache_metrics.evictions = metrics_->GetCounter(p + ".cache.evictions");
  cache_metrics.served_stale = metrics_->GetCounter(p + ".cache.served_stale");
  cache_.SetMetrics(cache_metrics);
}

void QueryEngine::SyncTableTo(int64_t now) {
  if (table_time_ != now) {
    table_.Clear();
    table_time_ = now;
  }
}

std::optional<AnchorDistribution> QueryEngine::ComputeInference(
    ObjectId object, int64_t now) {
  return ComputeInferenceWith(object, now, filter_, config_.use_cache,
                              config_.use_cache);
}

std::optional<AnchorDistribution> QueryEngine::ComputeInferenceWith(
    ObjectId object, int64_t now, const ParticleFilter& filter,
    bool cache_read, bool cache_write) {
  const DataCollector::ObjectHistory* history = collector_->History(object);
  if (history == nullptr || history->entries.empty()) {
    return std::nullopt;
  }
  const obs::TraceSpan span(trace_, "infer", "object",
                            static_cast<int64_t>(object));
  counters_.candidates_inferred->Increment();

  if (config_.method == InferenceMethod::kSymbolicModel) {
    return symbolic_.Infer(*history, now);
  }
  if (config_.method == InferenceMethod::kLastReading) {
    // Uniform over the anchors covered by the last detecting reader.
    const Reader& last = deployment_->reader(history->current_device);
    std::vector<AnchorId> covered;
    for (AnchorId a :
         anchors_->InRect(Rect::FromCenter(last.pos, 2 * last.range,
                                           2 * last.range))) {
      if (last.InRange(anchors_->anchor(a).pos)) {
        covered.push_back(a);
      }
    }
    if (covered.empty()) {
      covered.push_back(anchors_->NearestToPoint(last.pos));
    }
    return AnchorDistribution::Uniform(std::move(covered));
  }

  // Particle filter: all randomness comes from this object's own
  // (seed, object, now) stream, so the result cannot depend on which
  // other objects were inferred before it or on what thread runs it.
  Rng rng = Rng::ForStream(config_.seed, static_cast<uint64_t>(object),
                           static_cast<uint64_t>(now));
  FilterResult state;
  bool resumed = false;
  int seconds_before = 0;
  if (cache_read) {
    if (auto cached = cache_.Lookup(object, *history)) {
      seconds_before = cached->seconds_processed;
      state = filter.Resume(std::move(*cached), *history, now, rng);
      resumed = true;
    }
  }
  if (!resumed) {
    state = filter.Run(*history, now, rng);
    counters_.filter_runs->Increment();
  } else {
    counters_.filter_resumes->Increment();
  }
  // Only the seconds filtered by THIS call count as work (a resumed
  // state carries its lifetime total in seconds_processed).
  counters_.filter_seconds->Increment(state.seconds_processed -
                                      seconds_before);
  std::optional<AnchorDistribution> snapped;
  {
    const obs::ScopedTimer snap_timer(timers_.snap_ns);
    snapped = AnchorDistribution::FromParticles(*anchors_, state.particles);
  }
  AnchorDistribution dist = std::move(*snapped);
  if (cache_write) {
    cache_.Insert(object, *history, std::move(state));
  }
  return dist;
}

const AnchorDistribution* QueryEngine::InferObject(ObjectId object,
                                                   int64_t now) {
  SyncTableTo(now);
  if (const AnchorDistribution* memo = table_.Distribution(object)) {
    return memo;  // Already inferred for this timestamp.
  }
  std::optional<AnchorDistribution> dist = ComputeInference(object, now);
  if (!dist.has_value()) {
    return nullptr;
  }
  table_.Set(object, std::move(*dist));
  return table_.Distribution(object);
}

void QueryEngine::InferBatch(const std::vector<ObjectId>& candidates,
                             int64_t now) {
  SyncTableTo(now);
  const obs::TraceSpan span(trace_, "infer_batch");

  // Canonicalize the batch: ascending, unique, not yet memoized, known.
  // Sorting fixes the table merge order (and thereby every downstream
  // floating-point accumulation), so shuffled candidate lists and any
  // thread interleaving produce byte-identical query answers.
  std::vector<ObjectId> todo;
  todo.reserve(candidates.size());
  for (ObjectId object : candidates) {
    const DataCollector::ObjectHistory* history = collector_->History(object);
    if (history == nullptr || history->entries.empty()) {
      continue;
    }
    if (table_.Distribution(object) != nullptr) {
      continue;
    }
    todo.push_back(object);
  }
  std::sort(todo.begin(), todo.end());
  todo.erase(std::unique(todo.begin(), todo.end()), todo.end());
  if (todo.empty()) {
    return;
  }

  std::vector<std::optional<AnchorDistribution>> results(todo.size());
  auto infer_one = [&](size_t i) {
    results[i] = ComputeInference(todo[i], now);
  };

  {
    const obs::ScopedTimer infer_timer(timers_.infer_ns);
    if (config_.num_threads > 1 && todo.size() > 1) {
      if (pool_ == nullptr) {
        // The calling thread steals while it waits, so it counts toward
        // the configured width.
        pool_ = std::make_unique<ThreadPool>(config_.num_threads - 1);
        if (config_.metrics != nullptr) {
          const std::string& p = config_.metrics_prefix;
          PoolMetrics pool_metrics;
          pool_metrics.tasks = metrics_->GetCounter(p + ".pool.tasks");
          pool_metrics.steals = metrics_->GetCounter(p + ".pool.steals");
          pool_metrics.queue_depth =
              metrics_->GetGauge(p + ".pool.queue_depth");
          pool_metrics.wait_ns = metrics_->GetHistogram(p + ".pool.wait_ns");
          pool_->SetMetrics(pool_metrics);
        }
      }
      pool_->ParallelFor(todo.size(), infer_one);
    } else {
      for (size_t i = 0; i < todo.size(); ++i) {
        infer_one(i);
      }
    }
  }

  // Single-threaded merge into the APtoObjHT, in ascending object order.
  const obs::TraceSpan merge_span(trace_, "merge");
  const obs::ScopedTimer merge_timer(timers_.merge_ns);
  for (size_t i = 0; i < todo.size(); ++i) {
    if (results[i].has_value()) {
      table_.Set(todo[i], std::move(*results[i]));
    }
  }
}

QueryResult QueryEngine::EvaluateRange(const Rect& window, int64_t now) {
  return EvaluateRange(window, now, config_.deadline_ms);
}

QueryResult QueryEngine::EvaluateRange(const Rect& window, int64_t now,
                                       int64_t deadline_ms) {
  return EvaluateRange(window, now, deadline_ms, nullptr);
}

QueryResult QueryEngine::EvaluateRange(const Rect& window, int64_t now,
                                       int64_t deadline_ms,
                                       obs::QueryExplain* explain) {
  SyncTableTo(now);
  const obs::TraceSpan span(trace_, "range_query");
  const obs::ScopedTimer latency(timers_.range_latency_ns);
  counters_.queries->Increment();
  // Everything gathered for `explain` is observational — counter reads,
  // non-mutating cache probes, clock reads. None of it reaches the RNG or
  // the admission decision, so the answer cannot depend on it.
  const bool explained = explain != nullptr;
  const int64_t t_start = explained ? obs::MonotonicNanos() : 0;
  const ExplainBaseline baseline =
      explained ? CaptureBaseline() : ExplainBaseline{};

  std::vector<ObjectId> candidates;
  {
    const obs::TraceSpan prune_span(trace_, "prune");
    const obs::ScopedTimer prune_timer(timers_.prune_ns);
    if (config_.use_pruning) {
      candidates = FilterRangeCandidates(*collector_, *deployment_, {window},
                                         now, config_.max_speed);
    } else {
      candidates = collector_->KnownObjects();
    }
  }
  const int64_t known =
      static_cast<int64_t>(collector_->KnownObjects().size());
  counters_.objects_considered->Increment(known);

  // See EvaluateKnn: restricting evaluation to this query's candidates
  // makes the answer independent of what other queries memoized at `now`.
  const std::vector<ObjectId> restrict = Canonicalize(candidates);

  const int64_t t_pruned = explained ? obs::MonotonicNanos() : 0;
  if (explained) {
    explain->kind = "range";
    explain->now = now;
    explain->deadline_ms = deadline_ms;
    explain->pruning_enabled = config_.use_pruning;
    explain->objects_known = known;
    explain->candidates = static_cast<int64_t>(restrict.size());
    explain->prune_ns = t_pruned - t_start;
    ProbeCacheOutcomes(restrict, now, explain);
    FillIngestContext(explain);
  }

  PlanDecision decision;
  const InferPlan plan = PlanInference(restrict, now, deadline_ms,
                                       explained ? &decision : nullptr);
  CountPlan(plan);

  QueryResult result;
  int64_t t_inferred = t_pruned;
  if (plan.level == QualityLevel::kPruneOnly) {
    result = PruneOnlyRange(restrict, window, now);
  } else if (plan.level != QualityLevel::kFull) {
    AnchorObjectTable scratch;
    ExecuteDegradedPlan(plan, now, &scratch);
    t_inferred = explained ? obs::MonotonicNanos() : 0;
    const obs::TraceSpan eval_span(trace_, "evaluate");
    const obs::ScopedTimer eval_timer(timers_.evaluate_ns);
    result = range_eval_.Evaluate(scratch, window, &restrict);
    result.quality = plan.level;
  } else {
    InferBatch(restrict, now);
    t_inferred = explained ? obs::MonotonicNanos() : 0;
    const obs::TraceSpan eval_span(trace_, "evaluate");
    const obs::ScopedTimer eval_timer(timers_.evaluate_ns);
    result = range_eval_.Evaluate(table_, window, &restrict);
  }

  result.coverage_degraded = CoverageDegraded(restrict, &window);

  if (explained) {
    const int64_t t_end = obs::MonotonicNanos();
    explain->infer_ns = t_inferred - t_pruned;
    explain->evaluate_ns = t_end - t_inferred;
    explain->total_ns = t_end - t_start;
    explain->quality = std::string(ToString(result.quality));
    explain->coverage_degraded = result.coverage_degraded;
    explain->budget_reason = decision.reason;
    explain->budget_filter_seconds = decision.budget;
    explain->est_full_cost = decision.est_full;
    explain->est_stale_cost = decision.est_stale;
    explain->est_reduced_cost = decision.est_reduced;
    ChargeDeltas(baseline, explain);
    explain->result_objects = static_cast<int64_t>(result.objects.size());
    explain->result_total_probability = result.TotalProbability();
  }
  return result;
}

KnnResult QueryEngine::EvaluateKnn(const Point& query, int k, int64_t now) {
  return EvaluateKnn(query, k, now, config_.deadline_ms);
}

KnnResult QueryEngine::EvaluateKnn(const Point& query, int k, int64_t now,
                                   int64_t deadline_ms) {
  return EvaluateKnn(query, k, now, deadline_ms, nullptr);
}

KnnResult QueryEngine::EvaluateKnn(const Point& query, int k, int64_t now,
                                   int64_t deadline_ms,
                                   obs::QueryExplain* explain) {
  SyncTableTo(now);
  const obs::TraceSpan span(trace_, "knn_query");
  const obs::ScopedTimer latency(timers_.knn_latency_ns);
  counters_.queries->Increment();
  const bool explained = explain != nullptr;
  const int64_t t_start = explained ? obs::MonotonicNanos() : 0;
  const ExplainBaseline baseline =
      explained ? CaptureBaseline() : ExplainBaseline{};

  const GraphLocation q =
      graph_->NearestLocation(query, /*prefer_hallways=*/true);
  // Distance tables are only needed by pruning and the prune-only
  // fallback; acquire lazily so the pruning-off fast path never pays a
  // Dijkstra.
  std::optional<SourceDistances> qd;
  const auto distances = [&]() -> const SourceDistances& {
    if (!qd.has_value()) {
      qd = DistancesFor(q);
    }
    return *qd;
  };
  std::vector<ObjectId> candidates;
  {
    const obs::TraceSpan prune_span(trace_, "prune");
    const obs::ScopedTimer prune_timer(timers_.prune_ns);
    if (config_.use_pruning) {
      const SourceDistances& d = distances();
      candidates = FilterKnnCandidates(*collector_, *deployment_, d, k, now,
                                       config_.max_speed);
    } else {
      candidates = collector_->KnownObjects();
    }
  }
  const int64_t known =
      static_cast<int64_t>(collector_->KnownObjects().size());
  counters_.objects_considered->Increment(known);

  // Evaluation is restricted to this query's own candidate set, so the
  // answer is a pure function of (query, now) — distributions memoized in
  // the APtoObjHT by OTHER queries at the same timestamp can no longer
  // leak probability mass into this one.
  const std::vector<ObjectId> restrict = Canonicalize(candidates);

  const int64_t t_pruned = explained ? obs::MonotonicNanos() : 0;
  if (explained) {
    explain->kind = "knn";
    explain->now = now;
    explain->deadline_ms = deadline_ms;
    explain->k = k;
    explain->pruning_enabled = config_.use_pruning;
    explain->objects_known = known;
    explain->candidates = static_cast<int64_t>(restrict.size());
    explain->prune_ns = t_pruned - t_start;
    if (qd.has_value()) {
      explain->dindex_slack = qd->slack;
    }
    ProbeCacheOutcomes(restrict, now, explain);
    FillIngestContext(explain);
  }

  PlanDecision decision;
  const InferPlan plan = PlanInference(restrict, now, deadline_ms,
                                       explained ? &decision : nullptr);
  CountPlan(plan);

  KnnResult result;
  int64_t t_inferred = t_pruned;
  if (plan.level == QualityLevel::kPruneOnly) {
    result = PruneOnlyKnn(restrict, distances(), k, now);
  } else if (plan.level != QualityLevel::kFull) {
    AnchorObjectTable scratch;
    ExecuteDegradedPlan(plan, now, &scratch);
    t_inferred = explained ? obs::MonotonicNanos() : 0;
    const obs::TraceSpan eval_span(trace_, "evaluate");
    const obs::ScopedTimer eval_timer(timers_.evaluate_ns);
    result = knn_eval_.Evaluate(scratch, q, k, &restrict);
    result.result.quality = plan.level;
  } else {
    InferBatch(restrict, now);
    t_inferred = explained ? obs::MonotonicNanos() : 0;
    const obs::TraceSpan eval_span(trace_, "evaluate");
    const obs::ScopedTimer eval_timer(timers_.evaluate_ns);
    result = knn_eval_.Evaluate(table_, q, k, &restrict);
  }

  result.result.coverage_degraded = CoverageDegraded(restrict, nullptr);

  if (explained) {
    const int64_t t_end = obs::MonotonicNanos();
    explain->infer_ns = t_inferred - t_pruned;
    explain->evaluate_ns = t_end - t_inferred;
    explain->total_ns = t_end - t_start;
    // The prune-only fallback may have consulted the distance table even
    // when pruning was off; report the slack it actually used.
    if (qd.has_value()) {
      explain->dindex_slack = qd->slack;
    }
    explain->quality = std::string(ToString(result.result.quality));
    explain->coverage_degraded = result.result.coverage_degraded;
    explain->budget_reason = decision.reason;
    explain->budget_filter_seconds = decision.budget;
    explain->est_full_cost = decision.est_full;
    explain->est_stale_cost = decision.est_stale;
    explain->est_reduced_cost = decision.est_reduced;
    ChargeDeltas(baseline, explain);
    explain->result_objects =
        static_cast<int64_t>(result.result.objects.size());
    explain->result_total_probability = result.total_probability;
  }
  return result;
}

SourceDistances QueryEngine::DistancesFor(const GraphLocation& query) {
  if (oracle_ != nullptr) {
    const AnchorId aid = anchors_->NearestOnEdge(query);
    const AnchorPoint& a = anchors_->anchor(aid);
    SourceDistances out;
    // The along-edge offset gap is a network path between query and source,
    // so it upper-bounds their network distance — the slack pruning needs.
    out.slack = std::fabs(query.offset - a.offset);
    const int num_readers = deployment_->num_readers();
    out.to_reader.reserve(num_readers);
    if (const double* row = oracle_->PinnedRow(aid)) {
      // Matrix rows hold the same doubles a DistanceIndex table lookup
      // would produce, so lower == upper keeps pruning byte-identical to
      // the index path.
      for (int r = 0; r < num_readers; ++r) {
        out.to_reader.push_back(SourceDistances::Bound{row[r], row[r]});
      }
      return out;
    }
    // No matrix (e.g. a deployment with zero readers built no rows):
    // landmark bounds still make pruning sound, just looser.
    const GraphLocation source{a.edge, a.offset};
    for (ReaderId r = 0; r < num_readers; ++r) {
      const DistanceOracle::Bound b =
          oracle_->Bounds(source, deployment_->reader(r).loc);
      out.to_reader.push_back(SourceDistances::Bound{b.lower, b.upper});
    }
    return out;
  }
  if (dindex_ != nullptr) {
    const AnchorPoint& a = anchors_->anchor(anchors_->NearestOnEdge(query));
    GraphLocation source;
    source.edge = a.edge;
    source.offset = a.offset;
    return SourceDistances::FromTable(*dindex_->Lookup(source),
                                      std::fabs(query.offset - a.offset),
                                      *deployment_);
  }
  return SourceDistances::FromTable(OneToAllDistances(*graph_, query),
                                    /*source_slack=*/0.0, *deployment_);
}

QueryEngine::InferPlan QueryEngine::PlanInference(
    const std::vector<ObjectId>& candidates, int64_t now, int64_t deadline_ms,
    PlanDecision* decision) {
  InferPlan plan;
  // Degradation only exists for the particle-filter backend: the other
  // methods do no per-second filtering work, so a deadline never binds.
  if (deadline_ms <= 0 || config_.degrade.filter_seconds_per_ms <= 0 ||
      config_.method != InferenceMethod::kParticleFilter) {
    return plan;  // decision keeps its "no_deadline" default.
  }
  const double budget =
      static_cast<double>(deadline_ms) * config_.degrade.filter_seconds_per_ms;
  if (decision != nullptr) {
    decision->budget = budget;
  }

  // Work estimates in filter-seconds, derived purely from histories and
  // cache state — never from a clock — so the level choice is reproducible.
  struct Estimate {
    ObjectId object;
    double fresh_cost;  // What inferring it now would cost (resume or run).
    double full_cost;   // A from-scratch run (the reduced path rescales it).
    bool stale_ok;      // A cached state within the staleness bound exists.
  };
  std::vector<Estimate> estimates;
  double full_level_cost = 0.0;
  for (ObjectId object : Canonicalize(candidates)) {
    const DataCollector::ObjectHistory* history = collector_->History(object);
    if (history == nullptr || history->entries.empty()) {
      continue;
    }
    const int64_t first = history->entries.front().time;
    const int64_t last = history->entries.back().time;
    const int64_t horizon =
        std::min(last + config_.filter.max_coast_seconds, now);
    Estimate e;
    e.object = object;
    e.full_cost = static_cast<double>(std::max<int64_t>(horizon - first, 0)) + 1;
    e.fresh_cost = e.full_cost;
    e.stale_ok = false;
    if (config_.use_cache) {
      if (auto probe = cache_.Probe(object, *history, now)) {
        if (probe->resumable) {
          e.fresh_cost = static_cast<double>(
                             std::max<int64_t>(horizon - probe->state_time, 0)) +
                         1;
        }
        e.stale_ok =
            probe->age_seconds <= config_.degrade.max_stale_age_seconds;
      }
    }
    full_level_cost += e.fresh_cost;
    estimates.push_back(e);
  }
  if (decision != nullptr) {
    decision->est_full = full_level_cost;
  }
  if (full_level_cost <= budget) {
    if (decision != nullptr) {
      decision->reason = "full_fits";
    }
    return plan;  // kFull fits; serve the normal path.
  }

  // One rung down: serve bounded-staleness cache entries as-is (zero
  // filter work) and infer only the rest.
  double infer_cost = 0.0;
  for (const Estimate& e : estimates) {
    if (!e.stale_ok) {
      infer_cost += e.fresh_cost;
    }
  }
  for (const Estimate& e : estimates) {
    (e.stale_ok ? plan.stale : plan.infer).push_back(e.object);
  }
  if (decision != nullptr) {
    decision->est_stale = infer_cost;
  }
  if (infer_cost <= budget) {
    if (decision != nullptr) {
      decision->reason = "stale_fits";
    }
    plan.level = QualityLevel::kCachedStale;
    return plan;
  }

  // Two rungs down: the remaining inferences run from scratch with the
  // reduced particle count, shrinking per-second cost proportionally.
  if (degraded_filter_ != nullptr) {
    const double scale =
        static_cast<double>(config_.degrade.reduced_particles) /
        static_cast<double>(std::max(config_.filter.num_particles, 1));
    double reduced_cost = 0.0;
    for (const Estimate& e : estimates) {
      if (!e.stale_ok) {
        reduced_cost += e.full_cost * scale;
      }
    }
    if (decision != nullptr) {
      decision->est_reduced = reduced_cost;
    }
    if (reduced_cost <= budget) {
      if (decision != nullptr) {
        decision->reason = "reduced_fits";
      }
      plan.level = QualityLevel::kReducedParticles;
      return plan;
    }
  }

  if (decision != nullptr) {
    decision->reason = "budget_exhausted";
  }
  plan.level = QualityLevel::kPruneOnly;
  plan.stale.clear();
  plan.infer.clear();
  return plan;
}

void QueryEngine::ProbeCacheOutcomes(const std::vector<ObjectId>& candidates,
                                     int64_t now,
                                     obs::QueryExplain* explain) const {
  for (ObjectId object : candidates) {
    const DataCollector::ObjectHistory* history = collector_->History(object);
    if (history == nullptr || history->entries.empty()) {
      continue;
    }
    if (!config_.use_cache ||
        config_.method != InferenceMethod::kParticleFilter) {
      ++explain->cache_misses;
      continue;
    }
    const auto probe = cache_.Probe(object, *history, now);
    if (!probe.has_value()) {
      ++explain->cache_misses;
    } else if (probe->resumable) {
      ++explain->cache_hits;
    } else if (probe->age_seconds <= config_.degrade.max_stale_age_seconds) {
      ++explain->cache_stale;  // Only the stale-serve rung could use it.
    } else {
      ++explain->cache_misses;
    }
  }
}

void QueryEngine::FillIngestContext(obs::QueryExplain* explain) const {
  explain->ingest_watermark = collector_->watermark();
  explain->ingest_staged = static_cast<int64_t>(collector_->staged_size());
  explain->ingest_late_dropped = collector_->ingest_stats().late_dropped;
}

QueryEngine::ExplainBaseline QueryEngine::CaptureBaseline() const {
  ExplainBaseline b;
  b.filter_runs = counters_.filter_runs->Value();
  b.filter_resumes = counters_.filter_resumes->Value();
  b.filter_seconds = counters_.filter_seconds->Value();
  b.stale_served = degrade_counters_.stale_served_objects->Value();
  const DistanceIndex::Stats dstats = distance_index_stats();
  b.dindex_hits = dstats.hits;
  b.dindex_misses = dstats.misses;
  return b;
}

void QueryEngine::ChargeDeltas(const ExplainBaseline& before,
                               obs::QueryExplain* explain) const {
  explain->filter_runs = counters_.filter_runs->Value() - before.filter_runs;
  explain->filter_resumes =
      counters_.filter_resumes->Value() - before.filter_resumes;
  explain->filter_seconds =
      counters_.filter_seconds->Value() - before.filter_seconds;
  explain->stale_served_objects =
      degrade_counters_.stale_served_objects->Value() - before.stale_served;
  const DistanceIndex::Stats dstats = distance_index_stats();
  explain->dindex_hits = dstats.hits - before.dindex_hits;
  explain->dindex_misses = dstats.misses - before.dindex_misses;
}

void QueryEngine::ExecuteDegradedPlan(const InferPlan& plan, int64_t now,
                                      AnchorObjectTable* out) {
  const obs::TraceSpan span(trace_, "infer_degraded");
  const obs::ScopedTimer infer_timer(timers_.infer_ns);
  for (ObjectId object : plan.stale) {
    const DataCollector::ObjectHistory* history = collector_->History(object);
    if (history == nullptr || history->entries.empty()) {
      continue;
    }
    if (auto state = cache_.LookupStale(object, *history, now,
                                        config_.degrade.max_stale_age_seconds)) {
      degrade_counters_.stale_served_objects->Increment();
      out->Set(object,
               AnchorDistribution::FromParticles(*anchors_, state->particles));
      continue;
    }
    // The plan probed the same admission rules, so this is unreachable in
    // practice; degrade gracefully to a fresh inference if it ever isn't.
    if (auto dist = ComputeInference(object, now)) {
      out->Set(object, std::move(*dist));
    }
  }
  const bool reduced = plan.level == QualityLevel::kReducedParticles &&
                       degraded_filter_ != nullptr;
  for (ObjectId object : plan.infer) {
    // Reduced-quality states are neither read from nor written to the
    // cache: a 16-particle state must never seed a later full-quality
    // resume.
    std::optional<AnchorDistribution> dist =
        reduced ? ComputeInferenceWith(object, now, *degraded_filter_,
                                       /*cache_read=*/false,
                                       /*cache_write=*/false)
                : ComputeInference(object, now);
    if (dist.has_value()) {
      out->Set(object, std::move(*dist));
    }
  }
}

void QueryEngine::CountPlan(const InferPlan& plan) {
  switch (plan.level) {
    case QualityLevel::kFull:
      degrade_counters_.full->Increment();
      break;
    case QualityLevel::kCachedStale:
      degrade_counters_.cached_stale->Increment();
      break;
    case QualityLevel::kReducedParticles:
      degrade_counters_.reduced_particles->Increment();
      break;
    case QualityLevel::kPruneOnly:
      degrade_counters_.prune_only->Increment();
      break;
  }
}

bool QueryEngine::CoverageDegraded(const std::vector<ObjectId>& candidates,
                                   const Rect* window) const {
  if (config_.health == nullptr || !config_.health->enabled()) {
    return false;
  }
  const ReaderHealthView& view = config_.health->view();
  if (!view.AnyDegraded()) {
    return false;
  }
  if (window != nullptr) {
    // A degraded reader whose activation zone touches the window means
    // objects inside it could be moving unseen right now.
    for (ReaderId r = 0; r < deployment_->num_readers(); ++r) {
      if (!view.Degraded(r)) {
        continue;
      }
      const Reader& reader = deployment_->reader(r);
      const Rect zone =
          Rect::FromCenter(reader.pos, 2 * reader.range, 2 * reader.range);
      if (zone.Intersects(*window)) {
        return true;
      }
    }
  }
  // A candidate whose current detecting device is degraded was last seen by
  // a reader we no longer trust: its inferred distribution may be stale.
  for (ObjectId object : candidates) {
    const DataCollector::ObjectHistory* history = collector_->History(object);
    if (history != nullptr && history->current_device != kInvalidId &&
        view.Degraded(history->current_device)) {
      return true;
    }
  }
  return false;
}

QueryResult QueryEngine::PruneOnlyRange(const std::vector<ObjectId>& candidates,
                                        const Rect& window,
                                        int64_t now) const {
  QueryResult result;
  result.quality = QualityLevel::kPruneOnly;
  for (ObjectId object : Canonicalize(candidates)) {
    const DataCollector::ObjectHistory* history = collector_->History(object);
    if (history == nullptr || history->entries.empty()) {
      continue;
    }
    const UncertainRegion region = ComputeUncertainRegion(
        *deployment_, object, history->entries.back(), now, config_.max_speed);
    if (!region.Overlaps(window)) {
      continue;
    }
    // The uncertain region provably contains the object, so a region fully
    // inside the window is a certain answer; a partial overlap gets the
    // uninformative 0.5 (present, probability unknown).
    const bool fully_inside = region.center.x - region.radius >= window.min_x &&
                              region.center.x + region.radius <= window.max_x &&
                              region.center.y - region.radius >= window.min_y &&
                              region.center.y + region.radius <= window.max_y;
    result.Add(object, fully_inside ? 1.0 : 0.5);
  }
  return result;
}

KnnResult QueryEngine::PruneOnlyKnn(const std::vector<ObjectId>& candidates,
                                    const SourceDistances& dists, int k,
                                    int64_t now) const {
  KnnResult out;
  out.result.quality = QualityLevel::kPruneOnly;
  if (k <= 0) {
    return out;
  }
  // Rank candidates by the optimistic end of their network-distance
  // interval (Eq. 6) and claim the k nearest.
  struct Ranked {
    double min_dist;
    double max_dist;
    ObjectId object;
  };
  std::vector<Ranked> order;
  for (ObjectId object : Canonicalize(candidates)) {
    const DataCollector::ObjectHistory* history = collector_->History(object);
    if (history == nullptr || history->entries.empty()) {
      continue;
    }
    const UncertainRegion region = ComputeUncertainRegion(
        *deployment_, object, history->entries.back(), now, config_.max_speed);
    const DistanceInterval interval = NetworkDistanceInterval(dists, region);
    if (!std::isfinite(interval.min_dist)) {
      // The object's reader is unreachable from the query point: it can
      // never be one of the k network-nearest neighbors, and letting +inf
      // into the ranking would claim it with 0.5 once finite candidates
      // run out.
      continue;
    }
    order.push_back({interval.min_dist, interval.max_dist, object});
  }
  std::sort(order.begin(), order.end(), [](const Ranked& x, const Ranked& y) {
    return x.min_dist != y.min_dist ? x.min_dist < y.min_dist
                                    : x.object < y.object;
  });
  const size_t take = std::min(order.size(), static_cast<size_t>(k));
  // A claimed neighbor is certain only when even its pessimistic distance
  // beats the optimistic distance of the best candidate left out; any
  // overlap means the ranking may be wrong, and the honest claim is the
  // uninformative 0.5.
  const double cutoff = order.size() > take
                            ? order[take].min_dist
                            : std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < take; ++i) {
    const double p = order[i].max_dist < cutoff ? 1.0 : 0.5;
    out.result.Add(order[i].object, p);
    out.total_probability += p;
  }
  return out;
}

EngineStats QueryEngine::stats() const {
  EngineStats out;
  out.queries = counters_.queries->Value();
  out.objects_considered = counters_.objects_considered->Value();
  out.candidates_inferred = counters_.candidates_inferred->Value();
  out.filter_runs = counters_.filter_runs->Value();
  out.filter_resumes = counters_.filter_resumes->Value();
  out.filter_seconds = counters_.filter_seconds->Value();
  return out;
}

DegradeStats QueryEngine::degrade_stats() const {
  DegradeStats out;
  out.full = degrade_counters_.full->Value();
  out.cached_stale = degrade_counters_.cached_stale->Value();
  out.reduced_particles = degrade_counters_.reduced_particles->Value();
  out.prune_only = degrade_counters_.prune_only->Value();
  out.stale_served_objects = degrade_counters_.stale_served_objects->Value();
  return out;
}

void QueryEngine::ResetStats() {
  counters_.queries->Reset();
  counters_.objects_considered->Reset();
  counters_.candidates_inferred->Reset();
  counters_.filter_runs->Reset();
  counters_.filter_resumes->Reset();
  counters_.filter_seconds->Reset();
  degrade_counters_.full->Reset();
  degrade_counters_.cached_stale->Reset();
  degrade_counters_.reduced_particles->Reset();
  degrade_counters_.prune_only->Reset();
  degrade_counters_.stale_served_objects->Reset();
}

}  // namespace ipqs
