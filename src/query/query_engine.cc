#include "query/query_engine.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace ipqs {

QueryEngine::QueryEngine(const WalkingGraph* graph, const FloorPlan* plan,
                         const AnchorPointIndex* anchors,
                         const AnchorGraph* anchor_graph,
                         const Deployment* deployment,
                         const DeploymentGraph* deployment_graph,
                         const DataCollector* collector,
                         const EngineConfig& config)
    : graph_(graph),
      anchors_(anchors),
      deployment_(deployment),
      collector_(collector),
      config_(config),
      filter_(graph, deployment, config.filter),
      symbolic_(anchors, anchor_graph, deployment, deployment_graph,
                config.symbolic),
      range_eval_(plan, anchors),
      knn_eval_(graph, anchors, anchor_graph) {
  IPQS_CHECK(collector != nullptr);
  IPQS_CHECK_GE(config.num_threads, 0);
}

void QueryEngine::SyncTableTo(int64_t now) {
  if (table_time_ != now) {
    table_.Clear();
    table_time_ = now;
  }
}

std::optional<AnchorDistribution> QueryEngine::ComputeInference(
    ObjectId object, int64_t now) {
  const DataCollector::ObjectHistory* history = collector_->History(object);
  if (history == nullptr || history->entries.empty()) {
    return std::nullopt;
  }
  stats_.candidates_inferred.fetch_add(1, std::memory_order_relaxed);

  if (config_.method == InferenceMethod::kSymbolicModel) {
    return symbolic_.Infer(*history, now);
  }
  if (config_.method == InferenceMethod::kLastReading) {
    // Uniform over the anchors covered by the last detecting reader.
    const Reader& last = deployment_->reader(history->current_device);
    std::vector<AnchorId> covered;
    for (AnchorId a :
         anchors_->InRect(Rect::FromCenter(last.pos, 2 * last.range,
                                           2 * last.range))) {
      if (last.InRange(anchors_->anchor(a).pos)) {
        covered.push_back(a);
      }
    }
    if (covered.empty()) {
      covered.push_back(anchors_->NearestToPoint(last.pos));
    }
    return AnchorDistribution::Uniform(std::move(covered));
  }

  // Particle filter: all randomness comes from this object's own
  // (seed, object, now) stream, so the result cannot depend on which
  // other objects were inferred before it or on what thread runs it.
  Rng rng = Rng::ForStream(config_.seed, static_cast<uint64_t>(object),
                           static_cast<uint64_t>(now));
  FilterResult state;
  bool resumed = false;
  int seconds_before = 0;
  if (config_.use_cache) {
    if (auto cached = cache_.Lookup(object, *history)) {
      seconds_before = cached->seconds_processed;
      state = filter_.Resume(std::move(*cached), *history, now, rng);
      resumed = true;
    }
  }
  if (!resumed) {
    state = filter_.Run(*history, now, rng);
    stats_.filter_runs.fetch_add(1, std::memory_order_relaxed);
  } else {
    stats_.filter_resumes.fetch_add(1, std::memory_order_relaxed);
  }
  // Only the seconds filtered by THIS call count as work (a resumed
  // state carries its lifetime total in seconds_processed).
  stats_.filter_seconds.fetch_add(state.seconds_processed - seconds_before,
                                  std::memory_order_relaxed);
  AnchorDistribution dist =
      AnchorDistribution::FromParticles(*anchors_, state.particles);
  if (config_.use_cache) {
    cache_.Insert(object, *history, std::move(state));
  }
  return dist;
}

const AnchorDistribution* QueryEngine::InferObject(ObjectId object,
                                                   int64_t now) {
  SyncTableTo(now);
  if (const AnchorDistribution* memo = table_.Distribution(object)) {
    return memo;  // Already inferred for this timestamp.
  }
  std::optional<AnchorDistribution> dist = ComputeInference(object, now);
  if (!dist.has_value()) {
    return nullptr;
  }
  table_.Set(object, std::move(*dist));
  return table_.Distribution(object);
}

void QueryEngine::InferBatch(const std::vector<ObjectId>& candidates,
                             int64_t now) {
  SyncTableTo(now);

  // Canonicalize the batch: ascending, unique, not yet memoized, known.
  // Sorting fixes the table merge order (and thereby every downstream
  // floating-point accumulation), so shuffled candidate lists and any
  // thread interleaving produce byte-identical query answers.
  std::vector<ObjectId> todo;
  todo.reserve(candidates.size());
  for (ObjectId object : candidates) {
    const DataCollector::ObjectHistory* history = collector_->History(object);
    if (history == nullptr || history->entries.empty()) {
      continue;
    }
    if (table_.Distribution(object) != nullptr) {
      continue;
    }
    todo.push_back(object);
  }
  std::sort(todo.begin(), todo.end());
  todo.erase(std::unique(todo.begin(), todo.end()), todo.end());
  if (todo.empty()) {
    return;
  }

  std::vector<std::optional<AnchorDistribution>> results(todo.size());
  auto infer_one = [&](size_t i) {
    results[i] = ComputeInference(todo[i], now);
  };

  if (config_.num_threads > 1 && todo.size() > 1) {
    if (pool_ == nullptr) {
      // The calling thread steals while it waits, so it counts toward the
      // configured width.
      pool_ = std::make_unique<ThreadPool>(config_.num_threads - 1);
    }
    pool_->ParallelFor(todo.size(), infer_one);
  } else {
    for (size_t i = 0; i < todo.size(); ++i) {
      infer_one(i);
    }
  }

  // Single-threaded merge into the APtoObjHT, in ascending object order.
  for (size_t i = 0; i < todo.size(); ++i) {
    if (results[i].has_value()) {
      table_.Set(todo[i], std::move(*results[i]));
    }
  }
}

QueryResult QueryEngine::EvaluateRange(const Rect& window, int64_t now) {
  SyncTableTo(now);
  stats_.queries.fetch_add(1, std::memory_order_relaxed);

  std::vector<ObjectId> candidates;
  if (config_.use_pruning) {
    candidates = FilterRangeCandidates(*collector_, *deployment_, {window},
                                       now, config_.max_speed);
  } else {
    candidates = collector_->KnownObjects();
  }
  stats_.objects_considered.fetch_add(
      static_cast<int64_t>(collector_->KnownObjects().size()),
      std::memory_order_relaxed);

  InferBatch(candidates, now);
  return range_eval_.Evaluate(table_, window);
}

KnnResult QueryEngine::EvaluateKnn(const Point& query, int k, int64_t now) {
  SyncTableTo(now);
  stats_.queries.fetch_add(1, std::memory_order_relaxed);

  const GraphLocation q =
      graph_->NearestLocation(query, /*prefer_hallways=*/true);
  std::vector<ObjectId> candidates;
  if (config_.use_pruning) {
    candidates = FilterKnnCandidates(*graph_, *collector_, *deployment_, q, k,
                                     now, config_.max_speed);
  } else {
    candidates = collector_->KnownObjects();
  }
  stats_.objects_considered.fetch_add(
      static_cast<int64_t>(collector_->KnownObjects().size()),
      std::memory_order_relaxed);

  InferBatch(candidates, now);
  return knn_eval_.Evaluate(table_, q, k);
}

EngineStats QueryEngine::stats() const {
  EngineStats out;
  out.queries = stats_.queries.load(std::memory_order_relaxed);
  out.objects_considered =
      stats_.objects_considered.load(std::memory_order_relaxed);
  out.candidates_inferred =
      stats_.candidates_inferred.load(std::memory_order_relaxed);
  out.filter_runs = stats_.filter_runs.load(std::memory_order_relaxed);
  out.filter_resumes = stats_.filter_resumes.load(std::memory_order_relaxed);
  out.filter_seconds = stats_.filter_seconds.load(std::memory_order_relaxed);
  return out;
}

void QueryEngine::ResetStats() {
  stats_.queries.store(0, std::memory_order_relaxed);
  stats_.objects_considered.store(0, std::memory_order_relaxed);
  stats_.candidates_inferred.store(0, std::memory_order_relaxed);
  stats_.filter_runs.store(0, std::memory_order_relaxed);
  stats_.filter_resumes.store(0, std::memory_order_relaxed);
  stats_.filter_seconds.store(0, std::memory_order_relaxed);
}

}  // namespace ipqs
