// Command-line experiment driver: runs the full evaluation protocol on a
// configurable world and prints every metric. The knobs cover everything
// the paper sweeps plus this repo's extensions, so custom studies don't
// require writing C++.
//
//   run_experiment [--objects=200] [--particles=64] [--readers=19]
//                  [--range=2.0] [--window_pct=2] [--k=3]
//                  [--timestamps=50] [--windows=100] [--knn_points=30]
//                  [--warmup=240] [--seed=42] [--threads=1]
//                  [--pruning=true] [--cache=true] [--neg_info=false]
//                  [--batch_queries=false] [--distance_index=true]
//                  [--distance_oracle=false]
//                  [--subscriptions=0] [--sub_poll_interval=1]
//                  [--sub_incremental=true]
//                  [--hallway_stops=0.0] [--building=<file>]
//                  [--fault_seed=0] [--dropout_rate=0.0] [--dup_rate=0.0]
//                  [--reorder_rate=0.0] [--reorder_window=0]
//                  [--batch_delay_rate=0.0] [--noise_rate=0.0]
//                  [--clock_skew=0]
//                  [--reader_health=false] [--health_suspect_after=5]
//                  [--health_dead_after=20] [--health_probation=5]
//                  [--checkpoint_dir=<dir>] [--checkpoint_interval=60]
//                  [--recover=false] [--deadline_ms=0]
//                  [--metrics_json=<file>] [--trace_out=<file>]
//                  [--explain=false] [--explain_json=<file>]
//                  [--timeseries_json=<file>] [--prometheus_out=<file>]
//                  [--slo_json=<file>] [--log_level=info]
//
// --threads=N fans per-object filter runs across N worker threads.
// Query answers are byte-identical at any thread count (each object's
// inference draws from its own (seed, object, timestamp) random stream);
// only the wall-clock time changes.
//
// With --building, the floor plan (and any `reader` lines) come from a
// text file in the floorplan/io.h format instead of the generated office.
//
// Query serving: --batch_queries=true serves each timestamp's queries as
// one QueryScheduler batch per engine (shared pruning tables, one
// inference pass over the union of candidates) — answers are
// byte-identical to serial serving, only throughput changes.
// --distance_index=false disables the shared kNN distance tables and
// falls back to one exact Dijkstra per query. --distance_oracle=true
// arms the preprocessed ALT distance oracle (landmark bounds plus a
// pinned reader↔anchor matrix built at engine construction) for kNN
// pruning instead — answers stay byte-identical in every mode.
//
// Standing queries (src/query/subscription.h): --subscriptions=N registers
// N random range/kNN subscriptions against a dedicated engine and ticks
// them every --sub_poll_interval simulated seconds; the summary reports
// how many evaluations the incremental path skipped.
// --sub_incremental=false re-evaluates every subscription each tick (the
// poll-everything baseline) — deltas are byte-identical either way.
//
// Fault injection (src/faults/): the --dropout_rate / --dup_rate /
// --reorder_rate / --batch_delay_rate / --noise_rate / --clock_skew knobs
// degrade the reading stream deterministically under --fault_seed, and
// --reorder_window=N arms the collector's reorder buffer to repair
// deliveries late by at most N seconds. See EXPERIMENTS.md, "Fault
// ablation".
//
// Reader health (src/health/): --reader_health=true arms the per-reader
// health monitor — silence from suspect/dead readers stops discounting
// particles in the negative-information branch, answers touching degraded
// readers carry coverage_degraded, and the summary reports transition
// counts. --health_suspect_after / --health_dead_after /
// --health_probation tune the hysteresis windows (seconds).
//
// Durability (src/persist/): --checkpoint_dir=DIR appends every second's
// readings to a write-ahead log there and snapshots the serving state
// every --checkpoint_interval simulated seconds. --recover=true skips the
// experiment protocol, restores the serving state from DIR (newest valid
// snapshot + WAL tail), prints a recovery report, and answers a small
// deterministic query panel so recovered state can be compared across
// runs. --deadline_ms=D arms deadline-aware degradation: queries whose
// estimated inference work exceeds the budget are served from the quality
// ladder (see src/query/quality.h) and counted per level.
//
// Observability: --metrics_json=FILE dumps every counter, gauge, and
// per-stage latency histogram (p50/p90/p99) as stable JSON after the run;
// --trace_out=FILE records Chrome-tracing spans loadable in
// chrome://tracing or https://ui.perfetto.dev. --explain=true prints a
// per-query provenance summary (EXPLAIN) for the final timestamp's PF
// queries, and --explain_json=FILE writes the full records.
// --timeseries_json=FILE samples every metric once per simulated second
// into a ring and exports the series; --prometheus_out=FILE additionally
// writes the newest sample in Prometheus text exposition format.
// --slo_json=FILE evaluates the default serving SLOs (deadline misses,
// stale serving, ingest drops, p99 latency) with multi-window burn-rate
// alerting over those samples. None of these flags change any reported
// accuracy number — observability never feeds the random streams, and
// answers are byte-identical with them on or off.
//
// All JSON artifacts are written atomically (tmp + rename) and flushed on
// SIGINT/SIGTERM, so an interrupted sweep still leaves loadable files.

#include <csignal>
#include <cstdio>
#include <sstream>

#include "common/flags.h"
#include "common/logging.h"
#include "floorplan/io.h"
#include "obs/explain.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "persist/io_util.h"
#include "sim/experiment.h"

namespace {

// Everything the signal handler needs to flush, reachable from file scope.
// Plain pointers set once in main before the run starts; the handler is a
// best-effort dump (ostringstream is not async-signal-safe, but losing the
// artifacts for certain beats maybe-crashing while saving them).
struct ArtifactSink {
  std::string metrics_json;
  std::string trace_out;
  std::string timeseries_json;
  std::string prometheus_out;
  std::string slo_json;
  const ipqs::obs::MetricsRegistry* registry = nullptr;
  const ipqs::obs::TraceRecorder* recorder = nullptr;
  const ipqs::obs::TimeSeriesSampler* sampler = nullptr;
  const ipqs::obs::SloMonitor* slo = nullptr;
};
ArtifactSink g_sink;

// Writes one artifact atomically; false (with a stderr note) on failure.
template <typename WriteFn>
bool FlushOne(const std::string& path, WriteFn&& write) {
  if (path.empty()) {
    return true;
  }
  std::ostringstream out;
  write(out);
  const ipqs::Status s = ipqs::persist::AtomicWriteFile(path, out.str());
  if (!s.ok()) {
    std::fprintf(stderr, "cannot write %s: %s\n", path.c_str(),
                 s.ToString().c_str());
    return false;
  }
  return true;
}

// Flushes every configured artifact; returns false if any write failed.
bool FlushArtifacts() {
  bool ok = true;
  if (g_sink.registry != nullptr) {
    ok &= FlushOne(g_sink.metrics_json,
                   [](std::ostream& os) { g_sink.registry->WriteJson(os); });
  }
  if (g_sink.recorder != nullptr) {
    ok &= FlushOne(g_sink.trace_out,
                   [](std::ostream& os) { g_sink.recorder->WriteJson(os); });
  }
  if (g_sink.sampler != nullptr) {
    ok &= FlushOne(g_sink.timeseries_json,
                   [](std::ostream& os) { g_sink.sampler->WriteJson(os); });
    ok &= FlushOne(g_sink.prometheus_out, [](std::ostream& os) {
      g_sink.sampler->WritePrometheus(os);
    });
  }
  if (g_sink.slo != nullptr) {
    ok &= FlushOne(g_sink.slo_json,
                   [](std::ostream& os) { g_sink.slo->WriteJson(os); });
  }
  return ok;
}

void FlushAndExit(int sig) {
  FlushArtifacts();
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ipqs;

  FlagParser flags(argc, argv);
  ExperimentConfig config;
  config.sim.trace.num_objects = flags.GetInt("objects", 200);
  config.sim.filter.num_particles = flags.GetInt("particles", 64);
  config.sim.num_readers = flags.GetInt("readers", 19);
  config.sim.activation_range = flags.GetDouble("range", 2.0);
  config.window_area_fraction = flags.GetDouble("window_pct", 2.0) / 100.0;
  config.k = flags.GetInt("k", 3);
  config.num_timestamps = flags.GetInt("timestamps", 50);
  config.range_queries_per_timestamp = flags.GetInt("windows", 100);
  config.knn_query_points = flags.GetInt("knn_points", 30);
  config.warmup_seconds = flags.GetInt("warmup", 240);
  config.sim.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  config.sim.num_threads = flags.GetInt("threads", 1);
  if (config.sim.num_threads < 0) {
    std::fprintf(stderr, "--threads must be >= 0 (got %d)\n",
                 config.sim.num_threads);
    return 1;
  }
  config.sim.use_pruning = flags.GetBool("pruning", true);
  config.sim.use_cache = flags.GetBool("cache", true);
  config.sim.use_distance_index = flags.GetBool("distance_index", true);
  config.sim.use_distance_oracle = flags.GetBool("distance_oracle", false);
  config.batch_queries = flags.GetBool("batch_queries", false);
  config.sim.num_subscriptions = flags.GetInt("subscriptions", 0);
  config.sim.sub_poll_interval_seconds = flags.GetInt("sub_poll_interval", 1);
  config.sim.sub_incremental = flags.GetBool("sub_incremental", true);
  config.sim.filter.measurement.use_negative_information =
      flags.GetBool("neg_info", false);
  config.sim.trace.hallway_stop_probability =
      flags.GetDouble("hallway_stops", 0.0);

  config.sim.faults.seed =
      static_cast<uint64_t>(flags.GetInt("fault_seed", 0));
  config.sim.faults.dropout_rate = flags.GetDouble("dropout_rate", 0.0);
  config.sim.faults.duplicate_rate = flags.GetDouble("dup_rate", 0.0);
  config.sim.faults.reorder_rate = flags.GetDouble("reorder_rate", 0.0);
  config.sim.faults.batch_delay_rate =
      flags.GetDouble("batch_delay_rate", 0.0);
  config.sim.faults.noise_burst_rate = flags.GetDouble("noise_rate", 0.0);
  config.sim.faults.max_clock_skew_seconds = flags.GetInt("clock_skew", 0);
  config.sim.collector.reorder_window_seconds =
      flags.GetInt("reorder_window", 0);

  config.sim.health.enabled = flags.GetBool("reader_health", false);
  config.sim.health.suspect_after_seconds =
      flags.GetInt("health_suspect_after", 5);
  config.sim.health.dead_after_seconds = flags.GetInt("health_dead_after", 20);
  config.sim.health.probation_seconds = flags.GetInt("health_probation", 5);

  config.sim.persist.dir = flags.GetString("checkpoint_dir", "");
  config.sim.persist.snapshot_interval_seconds =
      flags.GetInt("checkpoint_interval", 60);
  const bool recover = flags.GetBool("recover", false);
  config.sim.persist_recover = recover;
  config.sim.deadline_ms =
      static_cast<int64_t>(flags.GetInt("deadline_ms", 0));
  if (recover && config.sim.persist.dir.empty()) {
    std::fprintf(stderr, "--recover requires --checkpoint_dir\n");
    return 1;
  }

  const std::string log_level = flags.GetString("log_level", "");
  if (!log_level.empty()) {
    const std::optional<LogLevel> level = ParseLogLevel(log_level);
    if (!level.has_value()) {
      std::fprintf(stderr,
                   "--log_level must be debug, info, warning, or error "
                   "(got %s)\n",
                   log_level.c_str());
      return 1;
    }
    SetLogLevel(*level);
  }

  const std::string metrics_json = flags.GetString("metrics_json", "");
  const std::string trace_out = flags.GetString("trace_out", "");
  const bool explain = flags.GetBool("explain", false);
  const std::string explain_json = flags.GetString("explain_json", "");
  const std::string timeseries_json = flags.GetString("timeseries_json", "");
  const std::string prometheus_out = flags.GetString("prometheus_out", "");
  const std::string slo_json = flags.GetString("slo_json", "");
  const bool want_series =
      !timeseries_json.empty() || !prometheus_out.empty() || !slo_json.empty();
  obs::MetricsRegistry registry;
  obs::TraceRecorder recorder;
  obs::TimeSeriesSampler sampler(&registry);
  obs::SloMonitor slo(&sampler, obs::DefaultServingSlos("pf"));
  if (!metrics_json.empty() || want_series) {
    config.sim.metrics = &registry;
  }
  if (!trace_out.empty()) {
    config.sim.trace_recorder = &recorder;
  }
  if (want_series) {
    config.sim.sampler = &sampler;
  }
  config.collect_explain = explain || !explain_json.empty();

  g_sink.metrics_json = metrics_json;
  g_sink.trace_out = trace_out;
  g_sink.timeseries_json = timeseries_json;
  g_sink.prometheus_out = prometheus_out;
  g_sink.slo_json = slo_json;
  g_sink.registry = &registry;
  g_sink.recorder = &recorder;
  if (want_series) {
    g_sink.sampler = &sampler;
    g_sink.slo = &slo;
  }
  std::signal(SIGINT, FlushAndExit);
  std::signal(SIGTERM, FlushAndExit);

  const std::string building = flags.GetString("building", "");
  if (!building.empty()) {
    auto spec = LoadBuildingFile(building);
    if (!spec.ok()) {
      std::fprintf(stderr, "cannot load building: %s\n",
                   spec.status().ToString().c_str());
      return 1;
    }
    config.sim.custom_plan = std::move(spec->plan);
    config.sim.custom_readers = std::move(spec->readers);
  }

  if (const Status unused = flags.CheckUnused(); !unused.ok()) {
    std::fprintf(stderr, "%s\n", unused.ToString().c_str());
    return 1;
  }

  if (recover) {
    // Recovery mode: restore the serving state and answer a deterministic
    // query panel instead of running the experiment protocol.
    auto sim = Simulation::Create(config.sim);
    if (!sim.ok()) {
      std::fprintf(stderr, "recovery failed: %s\n",
                   sim.status().ToString().c_str());
      return 1;
    }
    Simulation& s = **sim;
    const RecoveryReport& report = s.recovery_report();
    std::printf("recovered:            now=%lld (%s, snapshot_time=%lld)\n",
                static_cast<long long>(s.now()),
                report.from_snapshot ? "snapshot + WAL tail" : "WAL only",
                static_cast<long long>(report.snapshot_time));
    std::printf(
        "replayed:             %zu WAL records in %.3f ms "
        "(%d corrupt snapshots skipped, %d torn WAL tails)\n",
        report.wal_records_replayed, report.replay_ns / 1e6,
        report.corrupt_snapshots_skipped, report.wal_tails_truncated);
    std::printf("known objects:        %zu\n",
                s.collector().KnownObjects().size());

    Rng& rng = s.query_rng();
    const int64_t now = s.now();
    for (int i = 0; i < 5; ++i) {
      const Rect window =
          Experiment::RandomWindow(s.plan(), config.window_area_fraction, rng);
      const QueryResult r = s.pf_engine().EvaluateRange(window, now);
      std::printf("range[%d]:             %zu objects, total p=%.6f (%s)\n", i,
                  r.objects.size(), r.TotalProbability(),
                  std::string(ToString(r.quality)).c_str());
    }
    const Point q = Experiment::RandomIndoorPoint(s.anchors(), rng);
    const KnnResult knn = s.pf_engine().EvaluateKnn(q, config.k, now);
    std::printf("knn:                  %zu objects, total p=%.6f (%s)\n",
                knn.result.objects.size(), knn.total_probability,
                std::string(ToString(knn.result.quality)).c_str());
    return FlushArtifacts() ? 0 : 1;
  }

  const auto result = Experiment(config).Run();
  if (!result.ok()) {
    std::fprintf(stderr, "experiment failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("range KL divergence:  PF=%.4f  SM=%.4f  (%lld windows)\n",
              result->kl_pf, result->kl_sm,
              static_cast<long long>(result->range_windows_scored));
  std::printf("kNN hit rate:         PF=%.4f  SM=%.4f\n", result->hit_pf,
              result->hit_sm);
  std::printf("top-k success:        top1=%.4f  top2=%.4f\n", result->top1,
              result->top2);
  std::printf("PF work:              %lld runs, %lld resumes, %lld filtered "
              "seconds\n",
              static_cast<long long>(result->pf_stats.filter_runs),
              static_cast<long long>(result->pf_stats.filter_resumes),
              static_cast<long long>(result->pf_stats.filter_seconds));
  std::printf("cache hit rate:       %.3f\n", result->cache_stats.HitRate());
  if (config.sim.num_subscriptions > 0) {
    const SubscriptionStats& ss = result->sub_stats;
    const int64_t total = ss.evaluated + ss.skipped;
    std::printf(
        "subscriptions:        %d registered, %lld ticks, %lld/%lld "
        "evaluations skipped (%.1f%%), %lld changes drained\n",
        config.sim.num_subscriptions, static_cast<long long>(ss.ticks),
        static_cast<long long>(ss.skipped), static_cast<long long>(total),
        total == 0 ? 0.0
                   : 100.0 * static_cast<double>(ss.skipped) /
                         static_cast<double>(total),
        static_cast<long long>(ss.changes_seen));
  }
  if (config.sim.deadline_ms > 0) {
    const DegradeStats& d = result->pf_degrade;
    const int64_t degraded =
        d.cached_stale + d.reduced_particles + d.prune_only;
    const int64_t total = d.full + degraded;
    std::printf(
        "degraded answers:     %lld/%lld (%lld stale, %lld reduced, "
        "%lld prune-only; %lld objects served stale)\n",
        static_cast<long long>(degraded), static_cast<long long>(total),
        static_cast<long long>(d.cached_stale),
        static_cast<long long>(d.reduced_particles),
        static_cast<long long>(d.prune_only),
        static_cast<long long>(d.stale_served_objects));
  }
  if (config.sim.faults.Enabled()) {
    std::printf("faults:               %s\n",
                config.sim.faults.ToString().c_str());
    std::printf(
        "fault injections:     %lld total (%lld dropped, %lld dup, "
        "%lld delayed, %lld ghosts, %lld skewed)\n",
        static_cast<long long>(result->fault_stats.injected),
        static_cast<long long>(result->fault_stats.dropped),
        static_cast<long long>(result->fault_stats.duplicated),
        static_cast<long long>(result->fault_stats.delayed),
        static_cast<long long>(result->fault_stats.ghosts),
        static_cast<long long>(result->fault_stats.skewed));
    std::printf(
        "collector repairs:    %lld reordered, %lld duplicates dropped, "
        "%lld late dropped\n",
        static_cast<long long>(result->ingest_stats.reordered),
        static_cast<long long>(result->ingest_stats.duplicates_dropped),
        static_cast<long long>(result->ingest_stats.late_dropped));
  }

  if (config.sim.health.enabled) {
    const ReaderHealthStats& hs = result->health_stats;
    std::printf(
        "reader health:        %lld transitions (%lld suspect, %lld dead, "
        "%lld probation, %lld recovered)\n",
        static_cast<long long>(hs.Total()),
        static_cast<long long>(hs.suspect), static_cast<long long>(hs.dead),
        static_cast<long long>(hs.probation),
        static_cast<long long>(hs.recovered));
  }

  if (explain) {
    // Human-readable EXPLAIN for the final timestamp's PF queries: one
    // line per record, then the full JSON of the first record as a sample
    // of everything --explain_json captures.
    std::printf("explain:              %zu records (final timestamp)\n",
                result->explains.size());
    for (size_t i = 0; i < result->explains.size(); ++i) {
      const obs::QueryExplain& e = result->explains[i];
      std::printf(
          "  [%3zu] %-5s %-17s cand=%lld/%lld cache=%lld/%lld/%lld "
          "reason=%s total=%.3fms%s%s\n",
          i, e.kind.c_str(), e.quality.c_str(),
          static_cast<long long>(e.candidates),
          static_cast<long long>(e.objects_known),
          static_cast<long long>(e.cache_hits),
          static_cast<long long>(e.cache_stale),
          static_cast<long long>(e.cache_misses), e.budget_reason.c_str(),
          e.total_ns / 1e6, e.batched ? " batched" : "",
          e.deduped ? " deduped" : "");
    }
  }
  if (!explain_json.empty()) {
    const bool wrote =
        FlushOne(explain_json, [&result](std::ostream& os) {
          obs::WriteExplainsJson(os, result->explains);
        });
    if (!wrote) {
      return 1;
    }
    std::printf("explain written:      %s (%zu records)\n",
                explain_json.c_str(), result->explains.size());
  }
  if (!slo_json.empty()) {
    int firing = 0;
    for (const obs::SloState& state : slo.Evaluate()) {
      if (state.firing) {
        ++firing;
        std::printf("SLO FIRING:           %s (objective %.4f)\n",
                    state.name.c_str(), state.objective);
      }
    }
    if (firing == 0) {
      std::printf("SLOs:                 all quiet (%zu watched)\n",
                  slo.specs().size());
    }
  }

  if (!FlushArtifacts()) {
    return 1;
  }
  if (!metrics_json.empty()) {
    std::printf("metrics written:      %s\n", metrics_json.c_str());
  }
  if (!trace_out.empty()) {
    std::printf("trace written:        %s (%zu spans)\n", trace_out.c_str(),
                recorder.size());
  }
  if (!timeseries_json.empty()) {
    std::printf("time series written:  %s (%zu samples)\n",
                timeseries_json.c_str(), sampler.size());
  }
  if (!prometheus_out.empty()) {
    std::printf("prometheus written:   %s\n", prometheus_out.c_str());
  }
  if (!slo_json.empty()) {
    std::printf("slo report written:   %s\n", slo_json.c_str());
  }
  return 0;
}
