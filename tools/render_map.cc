// Renders a building (generated office or a --building file) with live
// tracking state to an SVG file — handy for documentation figures and for
// eyeballing what the tracker believes.
//
//   render_map [--out=map.svg] [--building=<file>] [--objects=30]
//              [--seconds=240] [--seed=7] [--belief=<object id>]
//              [--graph] [--no_ranges]

#include <cstdio>

#include "common/flags.h"
#include "floorplan/io.h"
#include "sim/simulation.h"
#include "sim/svg_map.h"

int main(int argc, char** argv) {
  using namespace ipqs;

  FlagParser flags(argc, argv);
  SimulationConfig config;
  config.trace.num_objects = flags.GetInt("objects", 30);
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  const int seconds = flags.GetInt("seconds", 240);
  const std::string out = flags.GetString("out", "map.svg");
  const std::string building = flags.GetString("building", "");
  const int belief_object = flags.GetInt("belief", -1);
  const bool draw_graph = flags.GetBool("graph", false);
  const bool no_ranges = flags.GetBool("no_ranges", false);

  if (!building.empty()) {
    auto spec = LoadBuildingFile(building);
    if (!spec.ok()) {
      std::fprintf(stderr, "cannot load building: %s\n",
                   spec.status().ToString().c_str());
      return 1;
    }
    config.custom_plan = std::move(spec->plan);
    config.custom_readers = std::move(spec->readers);
  }
  if (const Status unused = flags.CheckUnused(); !unused.ok()) {
    std::fprintf(stderr, "%s\n", unused.ToString().c_str());
    return 1;
  }

  auto sim_or = Simulation::Create(config);
  if (!sim_or.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 sim_or.status().ToString().c_str());
    return 1;
  }
  Simulation& sim = **sim_or;
  sim.Run(seconds);

  SvgMap map(sim.plan());
  if (draw_graph) {
    map.DrawWalkingGraph(sim.graph());
  }
  map.DrawReaders(sim.deployment(), !no_ranges);
  map.DrawObjects(sim.true_states());
  if (belief_object >= 0) {
    if (const AnchorDistribution* dist =
            sim.pf_engine().InferObject(belief_object, sim.now())) {
      map.DrawDistribution(sim.anchors(), *dist);
      map.DrawPoint(sim.true_states()[belief_object].pos, "#dc2626", 0.5);
    } else {
      std::fprintf(stderr, "object %d has never been detected\n",
                   belief_object);
    }
  }

  if (const Status status = map.WriteFile(out); !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (t=%lds, %zu objects, %d readers)\n", out.c_str(),
              static_cast<long>(sim.now()), sim.true_states().size(),
              sim.deployment().num_readers());
  return 0;
}
