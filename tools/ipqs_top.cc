// Terminal dashboard over the observability artifacts the other tools
// export. Point it at any subset of the JSON files and it renders what it
// finds; in follow mode it re-reads them every refresh interval, so a
// long sweep can be watched live from another terminal while
// run_experiment writes artifacts (the writes are atomic, so a frame
// never sees a torn file).
//
//   ipqs_top [--timeseries=series.json] [--metrics=metrics.json]
//            [--slo=slo.json] [--explain=explain.json]
//            [--once=false] [--refresh=2] [--window=60]
//
// --once renders a single frame and exits (nonzero when a named file is
// missing or unparseable — the CI smoke mode). --window=N sets how many
// trailing samples feed each sparkline.

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/flags.h"
#include "obs/json.h"
#include "persist/io_util.h"

namespace {

using ipqs::obs::JsonValue;

// Eight-level ASCII sparkline; one glyph per point, scaled to the max.
std::string Sparkline(const std::vector<double>& points) {
  static const char kLevels[] = " .:-=+*#";
  double max = 0.0;
  for (const double p : points) {
    max = std::max(max, p);
  }
  std::string out;
  for (const double p : points) {
    const int level =
        max <= 0.0 ? 0
                   : std::min(7, static_cast<int>(p / max * 7.999));
    out.push_back(kLevels[level]);
  }
  return out;
}

// Loads and parses one JSON artifact. Missing/invalid -> nullopt (and a
// note, so --once failures are diagnosable from CI logs).
std::optional<JsonValue> LoadJson(const std::string& path) {
  if (path.empty()) {
    return std::nullopt;
  }
  std::string bytes;
  const ipqs::Status s = ipqs::persist::ReadFileToString(path, &bytes);
  if (!s.ok()) {
    std::fprintf(stderr, "ipqs_top: cannot read %s: %s\n", path.c_str(),
                 s.ToString().c_str());
    return std::nullopt;
  }
  std::optional<JsonValue> doc = JsonValue::Parse(bytes);
  if (!doc.has_value()) {
    std::fprintf(stderr, "ipqs_top: %s is not valid JSON\n", path.c_str());
  }
  return doc;
}

void RenderTimeSeries(const JsonValue& doc, int window) {
  const JsonValue* series = doc.Find("series");
  if (series == nullptr || !series->is_object()) {
    return;
  }
  std::printf("— time series (last %d samples) —\n", window);
  for (const auto& [key, value] : series->fields()) {
    const JsonValue* points = value.Find("points");
    if (points == nullptr || points->items().empty()) {
      continue;
    }
    const bool is_counter = key.rfind("counter:", 0) == 0;
    const bool is_hist = key.rfind("histogram:", 0) == 0;
    const size_t n = points->items().size();
    const size_t start = n > static_cast<size_t>(window)
                             ? n - static_cast<size_t>(window)
                             : 0;
    std::vector<double> trail;
    double last = 0.0;
    for (size_t i = start; i < n; ++i) {
      const JsonValue& p = points->items()[i];
      // Counters plot their per-second rate, gauges their value,
      // histograms their cumulative p99.
      double v = 0.0;
      if (is_counter) {
        const JsonValue* rate = p.Find("rate");
        v = rate != nullptr ? rate->AsDouble() : 0.0;
        last = p.Find("v") != nullptr ? p.Find("v")->AsDouble() : 0.0;
      } else if (is_hist) {
        const JsonValue* p99 = p.Find("p99");
        v = p99 != nullptr ? p99->AsDouble() : 0.0;
        last = v;
      } else {
        v = p.Find("v") != nullptr ? p.Find("v")->AsDouble() : 0.0;
        last = v;
      }
      trail.push_back(v);
    }
    std::printf("  %-44s %14.6g |%s|\n", key.c_str(), last,
                Sparkline(trail).c_str());
  }
}

void RenderSlos(const JsonValue& doc) {
  const JsonValue* slos = doc.Find("slos");
  if (slos == nullptr || !slos->is_array()) {
    return;
  }
  std::printf("— SLOs —\n");
  for (const JsonValue& slo : slos->items()) {
    const JsonValue* name = slo.Find("name");
    const JsonValue* firing = slo.Find("firing");
    std::printf("  %-28s %s", name != nullptr ? name->AsString().c_str() : "?",
                firing != nullptr && firing->AsBool() ? "FIRING " : "ok     ");
    const JsonValue* windows = slo.Find("windows");
    if (windows != nullptr) {
      for (const JsonValue& w : windows->items()) {
        const JsonValue* secs = w.Find("seconds");
        const JsonValue* burn = w.Find("burn_rate");
        const JsonValue* breached = w.Find("breached");
        std::printf(" [%llds burn=%.2f%s]",
                    static_cast<long long>(
                        secs != nullptr ? secs->AsInt() : 0),
                    burn != nullptr ? burn->AsDouble() : 0.0,
                    breached != nullptr && breached->AsBool() ? "!" : "");
      }
    }
    std::printf("\n");
  }
}

void RenderMetrics(const JsonValue& doc) {
  const JsonValue* counters = doc.Find("counters");
  if (counters == nullptr || !counters->is_object()) {
    return;
  }
  std::printf("— counters —\n");
  for (const auto& [name, value] : counters->fields()) {
    std::printf("  %-44s %14lld\n", name.c_str(),
                static_cast<long long>(value.AsInt()));
  }
  const JsonValue* hists = doc.Find("histograms");
  if (hists != nullptr && hists->is_object() && !hists->fields().empty()) {
    std::printf("— histograms (p50 / p99) —\n");
    for (const auto& [name, value] : hists->fields()) {
      const JsonValue* p50 = value.Find("p50");
      const JsonValue* p99 = value.Find("p99");
      const JsonValue* count = value.Find("count");
      std::printf("  %-44s %12.6g / %-12.6g (n=%lld)\n", name.c_str(),
                  p50 != nullptr ? p50->AsDouble() : 0.0,
                  p99 != nullptr ? p99->AsDouble() : 0.0,
                  static_cast<long long>(
                      count != nullptr ? count->AsInt() : 0));
    }
  }
}

void RenderExplains(const JsonValue& doc) {
  if (!doc.is_array()) {
    return;
  }
  // Quality distribution over the records — the one-line answer to "what
  // did the degradation ladder actually serve".
  std::vector<std::pair<std::string, int>> by_quality;
  for (const JsonValue& e : doc.items()) {
    const JsonValue* q = e.Find("quality");
    const std::string quality =
        q != nullptr ? q->AsString() : std::string("unknown");
    bool found = false;
    for (auto& [name, count] : by_quality) {
      if (name == quality) {
        ++count;
        found = true;
        break;
      }
    }
    if (!found) {
      by_quality.emplace_back(quality, 1);
    }
  }
  std::printf("— explain (%zu records) —\n", doc.items().size());
  for (const auto& [name, count] : by_quality) {
    std::printf("  %-28s %6d\n", name.c_str(), count);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ipqs;

  FlagParser flags(argc, argv);
  const std::string timeseries_path = flags.GetString("timeseries", "");
  const std::string metrics_path = flags.GetString("metrics", "");
  const std::string slo_path = flags.GetString("slo", "");
  const std::string explain_path = flags.GetString("explain", "");
  const bool once = flags.GetBool("once", false);
  const int refresh = flags.GetInt("refresh", 2);
  const int window = flags.GetInt("window", 60);
  if (const Status unused = flags.CheckUnused(); !unused.ok()) {
    std::fprintf(stderr, "%s\n", unused.ToString().c_str());
    return 1;
  }
  if (timeseries_path.empty() && metrics_path.empty() && slo_path.empty() &&
      explain_path.empty()) {
    std::fprintf(stderr,
                 "ipqs_top: nothing to watch; pass --timeseries/--metrics/"
                 "--slo/--explain\n");
    return 1;
  }

  for (;;) {
    if (!once) {
      std::printf("\x1b[2J\x1b[H");  // Clear screen, home cursor.
    }
    std::printf("ipqs_top — indoor query serving\n\n");
    bool all_loaded = true;
    if (auto doc = LoadJson(timeseries_path); doc.has_value()) {
      RenderTimeSeries(*doc, window);
    } else if (!timeseries_path.empty()) {
      all_loaded = false;
    }
    if (auto doc = LoadJson(slo_path); doc.has_value()) {
      RenderSlos(*doc);
    } else if (!slo_path.empty()) {
      all_loaded = false;
    }
    if (auto doc = LoadJson(metrics_path); doc.has_value()) {
      RenderMetrics(*doc);
    } else if (!metrics_path.empty()) {
      all_loaded = false;
    }
    if (auto doc = LoadJson(explain_path); doc.has_value()) {
      RenderExplains(*doc);
    } else if (!explain_path.empty()) {
      all_loaded = false;
    }
    std::fflush(stdout);
    if (once) {
      return all_loaded ? 0 : 1;
    }
    sleep(static_cast<unsigned>(refresh < 1 ? 1 : refresh));
  }
}
