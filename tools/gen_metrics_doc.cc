// Generates docs/METRICS.md from the live metric registry.
//
// The tool stands up a small fully-featured world (threads, faults,
// deadline, batching, persistence metrics) so every metric the system can
// register actually registers, then walks the registry and pairs each name
// with its description from the table below. Drift fails loudly in both
// directions: a registered metric with no description exits nonzero (new
// code must document its metrics here), and a described metric that never
// registered exits nonzero too (the table can't go stale).
//
//   gen_metrics_doc --out=docs/METRICS.md          # (re)generate
//   gen_metrics_doc --out=docs/METRICS.md --check  # CI: diff, don't write
//
// The default serving SLOs (obs/slo.h) are documented in the same file so
// the alert catalogue lives next to the series it reads.

#include <cstdio>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/flags.h"
#include "obs/slo.h"
#include "persist/checkpoint.h"
#include "persist/io_util.h"
#include "query/query_scheduler.h"
#include "sim/simulation.h"

namespace {

using ipqs::obs::RegistrySnapshot;

// Engine metrics register once per engine prefix ("pf" and "sm"); they are
// documented once under "<engine>". Everything else is documented under
// its literal name.
std::string DocKey(const std::string& name) {
  if (name.rfind("pf.", 0) == 0 || name.rfind("sm.", 0) == 0) {
    return "<engine>" + name.substr(2);
  }
  return name;
}

// name -> description, keyed by DocKey. Ordering here is the document
// ordering, so related metrics stay adjacent.
const std::vector<std::pair<std::string, std::string>>& Descriptions() {
  static const std::vector<std::pair<std::string, std::string>> kDocs = {
      // Engine serving path.
      {"<engine>.engine.queries", "Queries answered (range + kNN)."},
      {"<engine>.engine.objects_considered",
       "Known objects examined per query, before pruning."},
      {"<engine>.engine.candidates_inferred",
       "Objects that survived pruning and were (or would be) inferred."},
      {"<engine>.engine.filter_runs",
       "Cold particle-filter runs (no resumable cached state)."},
      {"<engine>.engine.filter_resumes",
       "Particle-filter runs resumed from a cached state."},
      {"<engine>.engine.filter_seconds",
       "Simulated seconds of reading history pushed through filters — the "
       "unit the deadline budget is charged in."},
      {"<engine>.query.range_latency_ns",
       "End-to-end range query wall time."},
      {"<engine>.query.knn_latency_ns", "End-to-end kNN query wall time."},
      {"<engine>.stage.prune_ns", "Candidate pruning stage wall time."},
      {"<engine>.stage.infer_ns", "Inference stage wall time."},
      {"<engine>.stage.merge_ns",
       "Merging per-object distributions into the anchor table."},
      {"<engine>.stage.evaluate_ns",
       "Evaluating the query against the anchor table."},
      // Degradation ladder.
      {"<engine>.degrade.full", "Queries served at full quality."},
      {"<engine>.degrade.cached_stale",
       "Queries served from stale cached states (rung 2)."},
      {"<engine>.degrade.reduced_particles",
       "Queries served with a reduced particle count (rung 3)."},
      {"<engine>.degrade.prune_only",
       "Queries served from pruning alone, no inference (rung 4)."},
      {"<engine>.degrade.stale_served_objects",
       "Objects whose answer came from a stale cached state."},
      // Particle filter internals.
      {"<engine>.filter.run_ns", "Cold filter run wall time."},
      {"<engine>.filter.resume_ns", "Resumed filter run wall time."},
      {"<engine>.filter.predict_ns", "Motion-model predict step wall time."},
      {"<engine>.filter.weight_ns",
       "Measurement weighting step wall time."},
      {"<engine>.filter.resample_ns", "Resampling step wall time."},
      {"<engine>.filter.snap_ns",
       "Snapping particle positions to anchor points."},
      {"<engine>.filter.particles",
       "Particle count per object (gauge; drops under reduced-particle "
       "degradation)."},
      {"<engine>.filter.reseed_total",
       "Filter reseeds after particle-set collapse."},
      // Particle cache.
      {"<engine>.cache.hits", "Cache probes that found a resumable state."},
      {"<engine>.cache.misses", "Cache probes that found nothing usable."},
      {"<engine>.cache.invalidations",
       "Entries invalidated by newer readings."},
      {"<engine>.cache.stale_invalidations",
       "Entries invalidated after exceeding the stale-age bound."},
      {"<engine>.cache.evictions", "Entries evicted by capacity pressure."},
      {"<engine>.cache.served_stale",
       "Probes answered with a stale (non-resumable but recent) state."},
      // Shared kNN distance index.
      {"<engine>.dindex.hits",
       "kNN distance-table lookups served from the shared index."},
      {"<engine>.dindex.misses",
       "Lookups that had to run a fresh Dijkstra."},
      {"<engine>.dindex.evictions", "Distance tables evicted by capacity."},
      {"<engine>.dindex.race_drops",
       "Lookups that missed, computed a table, and found another thread's "
       "insert already resident (the work was redundant, not wasted cache "
       "space)."},
      // Preprocessed distance oracle (registered when use_distance_oracle
      // is on).
      {"<engine>.oracle.matrix_lookups",
       "kNN prunings served from the pinned reader↔anchor matrix."},
      {"<engine>.oracle.matrix_fallbacks",
       "kNN prunings that fell back to landmark bounds (anchor outside "
       "the pinned matrix)."},
      {"<engine>.oracle.p2p_queries",
       "Goal-directed ALT point-to-point distance queries answered."},
      {"<engine>.oracle.bound_queries",
       "Landmark lower/upper bound evaluations."},
      // Worker pool (registered when num_threads > 0).
      {"<engine>.pool.tasks", "Per-object inference tasks executed."},
      {"<engine>.pool.steals", "Tasks stolen across worker queues."},
      {"<engine>.pool.queue_depth", "Tasks queued and not yet run (gauge)."},
      {"<engine>.pool.wait_ns", "Task queue wait time."},
      // Query scheduler (registered when batching is used).
      {"<engine>.qps.batches", "Query batches served."},
      {"<engine>.qps.queries", "Queries submitted through batches."},
      {"<engine>.qps.duplicate_queries",
       "Batch slots deduplicated against an identical earlier query."},
      {"<engine>.qps.candidate_slots",
       "Candidate-set sizes summed over distinct batch queries."},
      {"<engine>.qps.unique_candidates",
       "Unique objects per batch after merging candidate sets."},
      {"<engine>.qps.batch_size", "Batch size distribution."},
      // Standing-query subscriptions (registered when subscriptions are
      // configured; the dedicated subscription engine keeps its own
      // private registry, so only manager-level series appear here).
      {"sub.registered", "Standing subscriptions registered (gauge)."},
      {"sub.ticks", "Subscription evaluation ticks."},
      {"sub.dirty",
       "Subscription evaluations actually run (dirty at tick time)."},
      {"sub.evals_skipped",
       "Subscription evaluations skipped because the cached answer was "
       "provably current."},
      {"sub.changes_seen",
       "Tracking-table changes drained from the collector's change log."},
      {"sub.delta_entries",
       "Delta size (entered + left) per dirty subscription evaluation."},
      // Ingestion.
      {"collector.readings", "Raw readings ingested."},
      {"collector.entries", "Tracking-table entries created."},
      {"collector.handoffs", "Reader-to-reader hand-offs detected."},
      {"collector.events", "Enter/leave events emitted."},
      {"collector.objects", "Objects currently tracked (gauge)."},
      {"collector.reordered",
       "Readings repaired by the reorder buffer (arrived late, within the "
       "window)."},
      {"collector.duplicates_dropped", "Duplicate readings suppressed."},
      {"collector.late_dropped",
       "Readings dropped for arriving beyond the reorder window."},
      // Reader health (registered when the health monitor is on).
      {"health.transitions", "Reader health-state transitions, all kinds."},
      {"health.suspect_transitions", "Transitions into the suspect state."},
      {"health.dead_transitions", "Transitions into the dead state."},
      {"health.recovered_transitions",
       "Probation readers promoted back to healthy."},
      {"health.probation_reads",
       "Readings accepted from probation readers (flagged, not dropped)."},
      {"health.reader_down_seconds",
       "Reader-seconds spent suspect or dead (availability SLO numerator)."},
      {"health.reader_seconds",
       "Monitored reader-seconds (availability SLO denominator)."},
      {"health.degraded_readers",
       "Readers currently suspect or dead (gauge)."},
      // Fault injection (registered when any fault channel is on).
      {"faults.injected", "Faults injected into the reading stream."},
      {"faults.dropped", "Readings deleted by the dropout channel."},
      {"faults.duplicated", "Readings duplicated."},
      {"faults.delayed", "Readings delayed by the batch-delay channel."},
      {"faults.ghosts", "Ghost readings fabricated by the noise channel."},
      {"faults.skewed", "Readings with skewed timestamps."},
      // Durability (registered when persistence is enabled).
      {"persist.snapshots_written", "Serving-state snapshots written."},
      {"persist.wal_records_appended", "Write-ahead-log records appended."},
      {"persist.corrupt_snapshots_skipped",
       "Snapshots that failed validation during recovery."},
      {"persist.wal_tails_truncated",
       "Torn WAL tails truncated during recovery."},
      {"persist.snapshot_write_ns", "Snapshot serialization + fsync time."},
      {"persist.wal_fsync_ns", "WAL append fsync time."},
      {"persist.recovery_replay_ns", "WAL tail replay time at recovery."},
  };
  return kDocs;
}

// Registers every metric the system can register by running a tiny world
// with every subsystem enabled.
bool RegisterEverything(ipqs::obs::MetricsRegistry* registry) {
  using namespace ipqs;
  SimulationConfig config;
  config.trace.num_objects = 8;
  config.num_readers = 5;
  config.num_threads = 2;       // Pool metrics.
  config.deadline_ms = 50;      // Degradation path armed.
  config.faults.dropout_rate = 0.1;  // Fault metrics.
  config.collector.reorder_window_seconds = 2;
  config.num_subscriptions = 2;  // sub.* metrics (Step ticks the manager).
  config.use_distance_oracle = true;  // oracle.* metrics.
  config.health.enabled = true;  // health.* metrics.
  config.health.warmup_seconds = 5;
  config.health.suspect_after_seconds = 3;
  config.health.dead_after_seconds = 8;
  config.metrics = registry;
  auto sim = Simulation::Create(config);
  if (!sim.ok()) {
    std::fprintf(stderr, "cannot create simulation: %s\n",
                 sim.status().ToString().c_str());
    return false;
  }
  Simulation& s = **sim;
  s.Run(20);
  const Rect window = s.plan().BoundingBox();
  (void)s.pf_engine().EvaluateRange(window, s.now());
  (void)s.pf_engine().EvaluateKnn({1.0, 1.0}, 3, s.now());
  QueryScheduler scheduler(&s.pf_engine());
  (void)scheduler.EvaluateBatch({BatchQuery::Range(window)}, s.now());
  (void)persist::PersistMetrics::FromRegistry(registry);
  return true;
}

std::string TypeName(int type) {
  switch (type) {
    case 0:
      return "counter";
    case 1:
      return "gauge";
    default:
      return "histogram";
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ipqs;

  FlagParser flags(argc, argv);
  const std::string out_path = flags.GetString("out", "docs/METRICS.md");
  const bool check = flags.GetBool("check", false);
  if (const Status unused = flags.CheckUnused(); !unused.ok()) {
    std::fprintf(stderr, "%s\n", unused.ToString().c_str());
    return 1;
  }

  obs::MetricsRegistry registry;
  if (!RegisterEverything(&registry)) {
    return 1;
  }
  const RegistrySnapshot snap = registry.SnapshotAll();

  // DocKey -> (type, example names). Engine metrics collapse pf./sm. into
  // one row and record that both prefixes exist.
  std::map<std::string, std::pair<int, std::vector<std::string>>> registered;
  for (const auto& [name, value] : snap.counters) {
    registered[DocKey(name)].first = 0;
    registered[DocKey(name)].second.push_back(name);
  }
  for (const auto& [name, value] : snap.gauges) {
    registered[DocKey(name)].first = 1;
    registered[DocKey(name)].second.push_back(name);
  }
  for (const auto& [name, value] : snap.histograms) {
    registered[DocKey(name)].first = 2;
    registered[DocKey(name)].second.push_back(name);
  }

  // Both-direction sync check between the registry and Descriptions().
  bool drift = false;
  std::map<std::string, std::string> described;
  for (const auto& [key, desc] : Descriptions()) {
    described[key] = desc;
    if (registered.find(key) == registered.end()) {
      std::fprintf(stderr,
                   "gen_metrics_doc: described metric never registered: %s\n",
                   key.c_str());
      drift = true;
    }
  }
  for (const auto& [key, info] : registered) {
    if (described.find(key) == described.end()) {
      std::fprintf(stderr,
                   "gen_metrics_doc: registered metric has no description: "
                   "%s\n",
                   key.c_str());
      drift = true;
    }
  }
  if (drift) {
    return 1;
  }

  std::ostringstream md;
  md << "# Metrics reference\n\n";
  md << "<!-- Generated by tools/gen_metrics_doc.cc — do not edit by hand."
     << "\n     Regenerate: build/tools/gen_metrics_doc --out=docs/METRICS.md"
     << " -->\n\n";
  md << "Every counter, gauge, and histogram the system registers, in the\n"

        "order the code groups them. `<engine>` expands to `pf` (the\n"
        "particle-filter engine) and `sm` (the baseline engine): both\n"
        "register the same serving metrics under their own prefix.\n"
        "Histograms export count/sum/min/max and p50/p90/p99; all `_ns`\n"
        "series are wall-clock nanoseconds.\n\n";
  md << "| Metric | Type | Meaning |\n|---|---|---|\n";
  for (const auto& [key, desc] : Descriptions()) {
    const auto& info = registered.at(key);
    md << "| `" << key << "` | " << TypeName(info.first) << " | " << desc
       << " |\n";
  }

  md << "\n## Default serving SLOs\n\n";
  md << "Evaluated by `obs::SloMonitor` over the per-second time series\n"
        "(`run_experiment --slo_json=...`). An alert fires only when every\n"
        "window burns faster than its limit; burn rate 1.0 consumes the\n"
        "error budget exactly at the objective horizon.\n\n";
  md << "| SLO | Objective | Bad events | Total events | Windows |\n"
     << "|---|---|---|---|---|\n";
  for (const obs::SloSpec& spec : obs::DefaultServingSlos("<engine>")) {
    md << "| `" << spec.name << "` | " << spec.objective << " | ";
    if (spec.kind == obs::SloSpec::Kind::kLatency) {
      md << "samples with `" << spec.histogram << "` p99 > " << spec.threshold
         << "ns | samples seen | ";
    } else {
      for (size_t i = 0; i < spec.bad_counters.size(); ++i) {
        md << (i > 0 ? " + " : "") << "`" << spec.bad_counters[i] << "`";
      }
      md << " | ";
      for (size_t i = 0; i < spec.total_counters.size(); ++i) {
        md << (i > 0 ? " + " : "") << "`" << spec.total_counters[i] << "`";
      }
      md << " | ";
    }
    for (size_t i = 0; i < spec.windows.size(); ++i) {
      md << (i > 0 ? ", " : "") << spec.windows[i].seconds << "s burn<"
         << spec.windows[i].max_burn_rate;
    }
    md << " |\n";
  }

  const std::string generated = md.str();
  if (check) {
    std::string existing;
    const Status s = persist::ReadFileToString(out_path, &existing);
    if (!s.ok() || existing != generated) {
      std::fprintf(stderr,
                   "gen_metrics_doc: %s is out of date; regenerate with "
                   "gen_metrics_doc --out=%s\n",
                   out_path.c_str(), out_path.c_str());
      return 2;
    }
    std::printf("%s is in sync\n", out_path.c_str());
    return 0;
  }
  const Status s = persist::AtomicWriteFile(out_path, generated);
  if (!s.ok()) {
    std::fprintf(stderr, "cannot write %s: %s\n", out_path.c_str(),
                 s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (%zu metrics)\n", out_path.c_str(),
              Descriptions().size());
  return 0;
}
