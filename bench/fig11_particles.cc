// Figure 11 of the paper: impact of the number of particles (2 .. 512) on
// (a) range KL divergence, (b) kNN hit rate, (c) top-1/top-2 success rate.
// The SM columns are constant in this sweep (the baseline has no particles)
// but are re-measured per point, as in the paper's plots.

#include "bench_util.h"

int main() {
  using namespace ipqs;
  using namespace ipqs::bench;

  PrintHeader("Figure 11", "Impact of the number of particles",
              "particles",
              {"KL(PF)", "KL(SM)", "hit(PF)", "hit(SM)", "top1", "top2"});
  for (int particles : {2, 4, 8, 16, 32, 64, 128, 256, 512}) {
    ExperimentConfig config = PaperProtocol();
    config.sim.filter.num_particles = particles;
    config.sim.seed = 200 + static_cast<uint64_t>(particles);
    const ExperimentResult r = MustRun(config);
    PrintRow(particles,
             {r.kl_pf, r.kl_sm, r.hit_pf, r.hit_sm, r.top1, r.top2});
  }
  PrintShapeNote(
      "PF crosses SM at ~8 particles and saturates beyond ~64 "
      "(the paper concludes ~60 particles suffice)");
  return 0;
}
