// Reader-health detection quality vs. dropout intensity: for each dropout
// rate, a monitored run reports the latency between an injected outage's
// onset (FaultPlan::ReaderDownAt ground truth) and the monitor's suspect
// verdict — p50/p99 in seconds — plus the false-positive rate (suspect
// verdicts outside any injected outage) and the dead/recovered tallies.
//
//   micro_health                # full sweep (400 simulated seconds/point)
//   IPQS_FAST=1 micro_health    # shorter runs for quick iteration
//
// Feeds the "Reader health detection" table in EXPERIMENTS.md.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "health/reader_health.h"
#include "sim/simulation.h"

namespace {

using namespace ipqs;

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) {
    return 0.0;
  }
  std::sort(values.begin(), values.end());
  const size_t index = static_cast<size_t>(p * (values.size() - 1) + 0.5);
  return values[std::min(index, values.size() - 1)];
}

}  // namespace

int main() {
  const int seconds = bench::FastMode() ? 200 : 400;
  bench::PrintHeader(
      "health", "Reader-health detection latency vs dropout rate",
      "dropout_rate",
      {"detect_p50_s", "detect_p99_s", "fp_rate", "dead", "recovered"});

  for (const double dropout : {0.05, 0.1, 0.2, 0.3}) {
    SimulationConfig config;
    config.trace.num_objects = 60;
    config.seed = 11;
    config.health.enabled = true;
    config.faults.seed = 23;
    config.faults.dropout_rate = dropout;
    auto sim = Simulation::Create(config);
    if (!sim.ok()) {
      std::fprintf(stderr, "cannot create simulation: %s\n",
                   sim.status().ToString().c_str());
      return 1;
    }
    (*sim)->Run(seconds);

    const ReaderHealthMonitor& monitor = *(*sim)->health_monitor();
    std::vector<ReaderHealthTransition> log;
    bool lost = false;
    monitor.ReadTransitions(0, &log, &lost);

    const FaultPlan& plan = (*sim)->config().faults;
    std::vector<double> latencies;
    int64_t detections = 0;
    int64_t false_positives = 0;
    for (const ReaderHealthTransition& tr : log) {
      if (tr.to != ReaderHealth::kSuspect ||
          tr.from != ReaderHealth::kHealthy) {
        continue;
      }
      ++detections;
      if (!plan.ReaderDownAt(tr.reader, tr.time)) {
        ++false_positives;
        continue;
      }
      int64_t onset = tr.time;
      while (onset > 0 && plan.ReaderDownAt(tr.reader, onset - 1)) {
        --onset;
      }
      latencies.push_back(static_cast<double>(tr.time - onset));
    }
    const ReaderHealthStats stats = monitor.stats();
    bench::PrintRow(dropout,
                    {Percentile(latencies, 0.5), Percentile(latencies, 0.99),
                     detections == 0
                         ? 0.0
                         : static_cast<double>(false_positives) /
                               static_cast<double>(detections),
                     static_cast<double>(stats.dead),
                     static_cast<double>(stats.recovered)});
  }
  bench::PrintShapeNote(
      "detection latency tracks the per-reader suspect window (the "
      "configured minimum for heartbeat-capable readers), flat in dropout "
      "rate; false positives stay near zero because a missed heartbeat — "
      "unlike tag-read silence — only happens when the reader is down "
      "(the residue at extreme dropout is readers whose warmup itself was "
      "hit, which fall back to the wider tag-silence windows)");
  return 0;
}
