// Ablation A1 (Section 4.3, query aware optimization module): how much
// inference work does uncertain-region candidate pruning save, and does it
// cost accuracy? Pruning is sound (uncertain regions contain the object),
// so accuracy should be statistically unchanged while the number of
// filtered objects drops.

#include "bench_util.h"

int main() {
  using namespace ipqs;
  using namespace ipqs::bench;

  PrintHeader("Ablation A1", "Query-aware pruning on/off", "pruning",
              {"KL(PF)", "hit(PF)", "considered", "inferred", "flt_secs"});
  for (int pruning : {1, 0}) {
    ExperimentConfig config = PaperProtocol();
    config.eval_topk = false;  // Top-k scoring infers everyone anyway.
    // Pruning pays off when each timestamp carries a handful of queries;
    // with the paper's 100 windows per timestamp the candidate union is
    // everyone and memoization hides the savings.
    config.range_queries_per_timestamp = 3;
    config.knn_query_points = 2;
    config.sim.use_pruning = pruning == 1;
    config.sim.seed = 500;
    const ExperimentResult r = MustRun(config);
    PrintRow(pruning,
             {r.kl_pf, r.hit_pf,
              static_cast<double>(r.pf_stats.objects_considered),
              static_cast<double>(r.pf_stats.candidates_inferred),
              static_cast<double>(r.pf_stats.filter_seconds)});
  }
  PrintShapeNote(
      "same accuracy, fewer candidates inferred with pruning on "
      "(2% windows cover a small floor fraction)");
  return 0;
}
