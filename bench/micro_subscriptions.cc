// Standing-query serving throughput vs. dirty fraction: N subscriptions
// ticked by an incremental SubscriptionManager (change-log dirty tracking,
// settledness pins, cached clean answers) versus the poll-everything
// baseline that re-evaluates every subscription on every tick.
//
// The world is synthetic and adversarially legible: objects are parked in
// clusters around readers and read once during warm-up, so every cluster's
// answers settle (the particle filter coasts out within max_coast and the
// cache pins the endpoint). Each timed tick then re-reads one object in
// the first ceil(dirty_fraction * N) clusters — exactly that fraction of
// subscriptions has a reason to change, the rest are provably clean. The
// pruning speed bound is small because the objects really are parked;
// uncertain regions stay local and cluster candidate sets stay disjoint.
//
// Answers are verified byte-identical between the two managers after every
// tick; the incremental path changes how much work is done, never what any
// subscription answers. IPQS_FAST=1 shrinks the protocol.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/check.h"
#include "query/subscription.h"
#include "rfid/data_collector.h"
#include "sim/simulation.h"

namespace ipqs {
namespace {

constexpr uint64_t kSeed = 7;
constexpr int kMaxCoast = 15;       // Seconds until a parked answer settles.
constexpr double kMaxSpeed = 0.05;  // Pruning u: the objects are parked.

bool SameAnswer(const BatchAnswer& a, const BatchAnswer& b) {
  if (a.kind != b.kind) {
    return false;
  }
  if (a.kind == BatchQuery::Kind::kRange) {
    return a.range.objects == b.range.objects;
  }
  return a.knn.result.objects == b.knn.result.objects &&
         a.knn.total_probability == b.knn.total_probability &&
         a.knn.anchors_searched == b.knn.anchors_searched;
}

bool SameDeltas(const SubscriptionTickResult& a,
                const SubscriptionTickResult& b) {
  if (a.updates.size() != b.updates.size()) {
    return false;
  }
  for (size_t i = 0; i < a.updates.size(); ++i) {
    const SubscriptionUpdate& ua = a.updates[i];
    const SubscriptionUpdate& ub = b.updates[i];
    if (ua.id != ub.id || ua.kind != ub.kind) {
      return false;
    }
    if (ua.kind == BatchQuery::Kind::kRange) {
      if (ua.range.entered != ub.range.entered ||
          ua.range.left != ub.range.left) {
        return false;
      }
    } else if (ua.knn.entered != ub.knn.entered ||
               ua.knn.left != ub.knn.left ||
               ua.knn.current != ub.knn.current) {
      return false;
    }
  }
  return true;
}

int RunSubscriptions() {
  const bool fast = bench::FastMode();
  const int objects_per_cluster = fast ? 6 : 10;
  const int timed_ticks = fast ? 12 : 30;
  const int knn_subs = 4;

  // The simulation only provides the static world (plan, graph, anchors,
  // deployment); the reading stream below is hand-made and ingested into
  // our own collector so the dirty fraction is exact, not emergent.
  SimulationConfig world_cfg;
  world_cfg.seed = kSeed;
  auto sim_or = Simulation::Create(world_cfg);
  IPQS_CHECK(sim_or.ok());
  std::unique_ptr<Simulation> sim = std::move(*sim_or);
  const Deployment& deployment = sim->deployment();

  // One subscription (and one object cluster) per selected reader. A
  // greedy pass keeps only readers pairwise >= 10 m apart (a fresh
  // reading's uncertain region is ~2 m, so a hot cluster can never be a
  // candidate of a neighboring window), and the survivors are ordered by
  // position so the "hot" prefix of the sweep is spatially clustered.
  std::vector<ReaderId> order;
  for (ReaderId r = 0; r < static_cast<ReaderId>(deployment.num_readers());
       ++r) {
    const Point pr = deployment.reader(r).pos;
    const bool spaced = std::all_of(
        order.begin(), order.end(), [&](ReaderId kept) {
          const Point pk = deployment.reader(kept).pos;
          return std::hypot(pr.x - pk.x, pr.y - pk.y) >= 10.0;
        });
    if (spaced) {
      order.push_back(r);
    }
  }
  IPQS_CHECK_GT(order.size(), 6u);
  std::sort(order.begin(), order.end(), [&](ReaderId a, ReaderId b) {
    const Point pa = deployment.reader(a).pos;
    const Point pb = deployment.reader(b).pos;
    if (pa.x != pb.x) return pa.x < pb.x;
    return pa.y < pb.y;
  });
  const int num_subs = static_cast<int>(order.size());

  DataCollector collector;
  CollectorConfig collector_cfg;
  collector_cfg.change_log_capacity = 1 << 16;
  collector.SetConfig(collector_cfg);

  const auto object_of = [&](int cluster, int j) {
    return static_cast<ObjectId>(cluster * objects_per_cluster + j + 1);
  };

  // Warm-up: every object is read for a few seconds at its cluster's
  // reader, then the stream goes silent and every answer settles.
  int64_t t = 0;
  for (int warm = 0; warm < 3; ++warm) {
    ++t;
    for (int s = 0; s < num_subs; ++s) {
      for (int j = 0; j < objects_per_cluster; ++j) {
        collector.Observe({object_of(s, j), order[s], t});
      }
    }
    collector.Flush(t);
  }

  bench::PrintHeader(
      "micro_subscriptions",
      "standing-query serving: incremental vs. poll-everything",
      "dirty_fraction",
      {"inc_ms", "full_ms", "multiplier", "skipped_frac", "eff_qps"});

  double low_dirty_multiplier = 1e18;  // Worst multiplier at dirty <= 0.2.

  for (const double dirty_fraction : {0.0, 0.1, 0.2, 0.5, 1.0}) {
    // Fresh engines and managers per sweep point (cold caches, clean
    // incremental state). The collector's timeline carries over, so
    // re-read every object once — resetting its uncertain region to the
    // activation range — and let everything settle again; within one row
    // the regions then grow ~2 m at most, far short of the 10 m cluster
    // spacing, so clean clusters stay provably clean for the whole row.
    ++t;
    for (int s = 0; s < num_subs; ++s) {
      for (int j = 0; j < objects_per_cluster; ++j) {
        collector.Observe({object_of(s, j), order[s], t});
      }
    }
    collector.Flush(t);
    t += kMaxCoast + 2;
    collector.Flush(t);

    EngineConfig engine_cfg;
    engine_cfg.method = InferenceMethod::kParticleFilter;
    engine_cfg.filter.max_coast_seconds = kMaxCoast;
    engine_cfg.max_speed = kMaxSpeed;
    engine_cfg.seed = kSeed;
    QueryEngine engine_a(&sim->graph(), &sim->plan(), &sim->anchors(),
                         &sim->anchor_graph(), &deployment,
                         &sim->deployment_graph(), &collector, engine_cfg);
    QueryEngine engine_b(&sim->graph(), &sim->plan(), &sim->anchors(),
                         &sim->anchor_graph(), &deployment,
                         &sim->deployment_graph(), &collector, engine_cfg);
    SubscriptionManagerConfig full_cfg;
    full_cfg.incremental = false;
    SubscriptionManager inc(&engine_a, {});
    SubscriptionManager full(&engine_b, full_cfg);

    std::vector<SubscriptionId> ids_inc;
    std::vector<SubscriptionId> ids_full;
    for (int s = 0; s < num_subs; ++s) {
      const Point pos = deployment.reader(order[s]).pos;
      if (s < num_subs - knn_subs) {
        ids_inc.push_back(inc.AddRange(Rect::FromCenter(pos, 6, 6)));
        ids_full.push_back(full.AddRange(Rect::FromCenter(pos, 6, 6)));
      } else {
        ids_inc.push_back(inc.AddKnn(pos, 3));
        ids_full.push_back(full.AddKnn(pos, 3));
      }
    }

    // First tick outside the timing: everything is dirty once, the caches
    // pin every cluster's settled state.
    inc.Tick(t);
    full.Tick(t);

    const int hot =
        static_cast<int>(std::ceil(dirty_fraction * num_subs) + 0.5);
    double inc_ms = 0.0;
    double full_ms = 0.0;
    for (int tick = 0; tick < timed_ticks; ++tick) {
      ++t;
      for (int s = 0; s < hot; ++s) {
        collector.Observe({object_of(s, 0), order[s], t});
      }
      collector.Flush(t);

      const auto t0 = std::chrono::steady_clock::now();
      const SubscriptionTickResult ra = inc.Tick(t);
      const auto t1 = std::chrono::steady_clock::now();
      const SubscriptionTickResult rb = full.Tick(t);
      const auto t2 = std::chrono::steady_clock::now();
      inc_ms += std::chrono::duration<double, std::milli>(t1 - t0).count();
      full_ms += std::chrono::duration<double, std::milli>(t2 - t1).count();

      if (!SameDeltas(ra, rb)) {
        std::fprintf(stderr,
                     "FATAL: dirty=%.1f tick=%d deltas diverged from the "
                     "poll-everything baseline\n",
                     dirty_fraction, tick);
        return 1;
      }
      for (int s = 0; s < num_subs; ++s) {
        if (!SameAnswer(inc.Answer(ids_inc[s]), full.Answer(ids_full[s]))) {
          std::fprintf(stderr,
                       "FATAL: dirty=%.1f tick=%d sub=%d answers diverged\n",
                       dirty_fraction, tick, s);
          return 1;
        }
      }
    }

    const SubscriptionStats stats = inc.stats();
    const double served = static_cast<double>(num_subs) * timed_ticks;
    // First tick excluded from the timers but not the counters: skip
    // fraction over the timed region only.
    const double skipped_frac =
        static_cast<double>(stats.skipped) / (served + num_subs);
    const double multiplier = inc_ms == 0.0 ? 1.0 : full_ms / inc_ms;
    if (dirty_fraction <= 0.2) {
      low_dirty_multiplier = std::min(low_dirty_multiplier, multiplier);
    }
    bench::PrintRow(dirty_fraction,
                    {inc_ms, full_ms, multiplier, skipped_frac,
                     served / (inc_ms / 1000.0)});
  }

  std::printf("low-dirty multiplier (worst at dirty <= 0.2): %.2fx\n",
              low_dirty_multiplier);
  bench::PrintShapeNote(
      "Effective QPS falls out of skipped work: at dirty fraction <= 0.2 "
      "the incremental manager re-evaluates only the touched clusters and "
      "serves the rest from provably-current cached answers (expect >= 3x "
      "vs. poll-everything, sub.evals_skipped confirming the skips); at "
      "dirty 1.0 the two paths converge since nothing is clean. Answers "
      "are byte-identical at every point.");
  return 0;
}

}  // namespace
}  // namespace ipqs

int main() { return ipqs::RunSubscriptions(); }
