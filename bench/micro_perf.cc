// Microbenchmarks (google-benchmark) for the system's hot paths: filter
// runs, query evaluation, shortest paths, resampling, and world
// construction. These back the paper's efficiency claims (Section 5 runs
// everything on a single server) with concrete per-operation costs.
//
// Custom main (google-benchmark rejects flags it doesn't know):
//   --metrics_json=FILE  wire the shared world into a MetricsRegistry and
//                        dump every counter/gauge/latency histogram as JSON
//                        after the benchmarks finish.
// IPQS_FAST=1 shrinks the shared world for quick runs and CI.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "bench_util.h"
#include "filter/resampler.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "sim/experiment.h"
#include "sim/simulation.h"

namespace ipqs {
namespace {

// Shared registry for the world's engines; only populated when
// --metrics_json was passed (set before any benchmark builds the world).
obs::MetricsRegistry& Registry() {
  static obs::MetricsRegistry registry;
  return registry;
}
obs::TimeSeriesSampler& Sampler() {
  // BM_SimulationStep advances the world by tens of thousands of sim
  // seconds; keep the exported artifact small by retaining only the tail.
  static obs::TimeSeriesSampler sampler(&Registry(),
                                        obs::TimeSeriesConfig{.capacity = 512});
  return sampler;
}
bool g_metrics_enabled = false;
bool g_series_enabled = false;

// One shared world, built once: benchmarks measure steady-state costs.
Simulation& World() {
  static Simulation* world = [] {
    SimulationConfig config;
    config.trace.num_objects = bench::FastMode() ? 80 : 200;
    config.seed = 7;
    if (g_metrics_enabled || g_series_enabled) {
      config.metrics = &Registry();
    }
    if (g_series_enabled) {
      config.sampler = &Sampler();
    }
    auto sim = Simulation::Create(config);
    IPQS_CHECK(sim.ok());
    Simulation* raw = sim->release();
    raw->Run(bench::FastMode() ? 180 : 300);
    return raw;
  }();
  return *world;
}

void BM_GraphBuild(benchmark::State& state) {
  const auto plan = GenerateOffice(OfficeConfig{}).value();
  for (auto _ : state) {
    auto graph = BuildWalkingGraph(plan);
    benchmark::DoNotOptimize(graph);
  }
}
BENCHMARK(BM_GraphBuild);

void BM_AnchorIndexBuild(benchmark::State& state) {
  const auto plan = GenerateOffice(OfficeConfig{}).value();
  const auto graph = BuildWalkingGraph(plan).value();
  for (auto _ : state) {
    auto index = AnchorPointIndex::Build(graph, plan, 1.0);
    benchmark::DoNotOptimize(index);
  }
}
BENCHMARK(BM_AnchorIndexBuild);

void BM_ShortestPath(benchmark::State& state) {
  Simulation& sim = World();
  const GraphLocation from{0, 0.5};
  const GraphLocation to{sim.graph().num_edges() - 1, 0.5};
  for (auto _ : state) {
    benchmark::DoNotOptimize(NetworkDistance(sim.graph(), from, to));
  }
}
BENCHMARK(BM_ShortestPath);

// ---------------------------------------------------------------------------
// Filter stage benchmarks: the three inner stages of Algorithm 2 (predict,
// weight, resample) measured in isolation at filter-realistic particle
// counts. `items_per_second` is particle-stage-steps per second; these
// rows back the SoA-kernel speedup claims and feed the perf-regression
// guard (scripts/check_perf.py) via the IPQS_BENCH_JSON output.

constexpr int kStageSteps = 16;  // Simulated seconds per timed iteration.

void BM_PredictStage(benchmark::State& state) {
  Simulation& sim = World();
  FilterConfig config;
  config.num_particles = static_cast<int>(state.range(0));
  const ParticleFilter filter(&sim.graph(), &sim.deployment(), config);
  Rng init_rng(11);
  const std::vector<Particle> base = filter.InitializeAtReader(2, init_rng);
  const MotionModel& motion = filter.motion_model();
  const EdgeSoA edges = EdgeSoA::FromGraph(sim.graph());
  ParticleSoA soa;
  FilterArena arena;
  for (auto _ : state) {
    soa.AssignFrom(base);
    Rng rng(12);
    for (int s = 0; s < kStageSteps; ++s) {
      motion.StepAll(sim.graph(), edges, &soa, &arena, 1.0, rng);
    }
    benchmark::DoNotOptimize(soa.offset.data());
  }
  state.SetItemsProcessed(state.iterations() * kStageSteps *
                          static_cast<int64_t>(base.size()));
}
BENCHMARK(BM_PredictStage)->Arg(64)->Arg(1024);

void BM_WeightStage(benchmark::State& state) {
  Simulation& sim = World();
  FilterConfig config;
  config.num_particles = static_cast<int>(state.range(0));
  const ParticleFilter filter(&sim.graph(), &sim.deployment(), config);
  Rng init_rng(13);
  const std::vector<Particle> base = filter.InitializeAtReader(2, init_rng);
  const MeasurementModel& meas = filter.measurement_model();
  constexpr ReaderId kDetector = 2;
  const EdgeSoA edges = EdgeSoA::FromGraph(sim.graph());
  ParticleSoA soa;
  FilterArena arena;
  for (auto _ : state) {
    soa.AssignFrom(base);
    const size_t n = soa.size();
    arena.x.resize(n);
    arena.y.resize(n);
    for (int s = 0; s < kStageSteps; ++s) {
      // The full per-observation update: positions, fused consistency
      // scan + reweight, normalize (exactly Advance's detection-second
      // weighting work).
      ComputePositions(edges, soa, arena.x.data(), arena.y.data());
      const size_t consistent =
          meas.WeightOnDetection(sim.deployment(), kDetector, n,
                                 arena.x.data(), arena.y.data(),
                                 soa.weight.data());
      benchmark::DoNotOptimize(consistent);
      NormalizeWeights(&soa);
    }
    benchmark::DoNotOptimize(soa.weight.data());
  }
  state.SetItemsProcessed(state.iterations() * kStageSteps *
                          static_cast<int64_t>(base.size()));
}
BENCHMARK(BM_WeightStage)->Arg(64)->Arg(1024);

void BM_ResampleStage(benchmark::State& state) {
  Simulation& sim = World();
  FilterConfig config;
  config.num_particles = static_cast<int>(state.range(0));
  const ParticleFilter filter(&sim.graph(), &sim.deployment(), config);
  Rng init_rng(17);
  std::vector<Particle> base = filter.InitializeAtReader(2, init_rng);
  {
    // Non-uniform weights so resampling actually reshuffles the set.
    Rng wrng(19);
    for (Particle& p : base) p.weight = wrng.Uniform(0.01, 1.0);
    NormalizeWeights(&base);
  }
  Rng rng(23);
  ParticleSoA soa;
  FilterArena arena;
  std::vector<double> base_weights;
  for (const Particle& p : base) base_weights.push_back(p.weight);
  for (auto _ : state) {
    soa.AssignFrom(base);
    for (int s = 0; s < kStageSteps; ++s) {
      SystematicResample(&soa, &arena, rng);
      // Restore the skewed (pre-normalized) weights so every round does
      // real selection work.
      soa.weight = base_weights;
    }
    benchmark::DoNotOptimize(soa.weight.data());
  }
  state.SetItemsProcessed(state.iterations() * kStageSteps *
                          static_cast<int64_t>(base.size()));
}
BENCHMARK(BM_ResampleStage)->Arg(64)->Arg(1024);

void BM_Resample(benchmark::State& state) {
  Rng rng(1);
  std::vector<Particle> base(state.range(0));
  for (size_t i = 0; i < base.size(); ++i) {
    base[i].loc = GraphLocation{0, 0.1};
    base[i].weight = rng.Uniform(0.01, 1.0);
  }
  for (auto _ : state) {
    std::vector<Particle> particles = base;
    SystematicResample(&particles, rng);
    benchmark::DoNotOptimize(particles);
  }
}
BENCHMARK(BM_Resample)->Arg(64)->Arg(512)->Arg(4096);

void BM_FilterRun(benchmark::State& state) {
  Simulation& sim = World();
  // A representative history: two devices, ~30 seconds.
  DataCollector::ObjectHistory history;
  for (int t = 0; t < 4; ++t) history.entries.push_back({100 + t, 4});
  for (int t = 0; t < 4; ++t) history.entries.push_back({112 + t, 5});
  history.current_device = 5;
  history.previous_device = 4;

  FilterConfig config;
  config.num_particles = static_cast<int>(state.range(0));
  const ParticleFilter filter(&sim.graph(), &sim.deployment(), config);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.Run(history, 140, rng));
  }
}
BENCHMARK(BM_FilterRun)->Arg(16)->Arg(64)->Arg(256);

void BM_SymbolicInfer(benchmark::State& state) {
  Simulation& sim = World();
  const SymbolicInference inference(&sim.anchors(), &sim.anchor_graph(),
                                    &sim.deployment(), &sim.deployment_graph(),
                                    SymbolicConfig{});
  DataCollector::ObjectHistory history;
  history.entries = {{100, 4}};
  history.current_device = 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        inference.Infer(history, 100 + state.range(0)));
  }
}
BENCHMARK(BM_SymbolicInfer)->Arg(5)->Arg(30)->Arg(120);

void BM_RangeQueryEvaluate(benchmark::State& state) {
  Simulation& sim = World();
  // Prime the table with every object's distribution at `now`.
  const int64_t now = sim.now();
  for (ObjectId id : sim.collector().KnownObjects()) {
    sim.pf_engine().InferObject(id, now);
  }
  const RangeQueryEvaluator eval(&sim.plan(), &sim.anchors());
  Rng rng(5);
  for (auto _ : state) {
    const Rect window = Experiment::RandomWindow(
        sim.plan(), state.range(0) / 100.0, rng);
    benchmark::DoNotOptimize(eval.Evaluate(sim.pf_engine().table(), window));
  }
}
BENCHMARK(BM_RangeQueryEvaluate)->Arg(1)->Arg(2)->Arg(5);

void BM_KnnQueryEvaluate(benchmark::State& state) {
  Simulation& sim = World();
  const int64_t now = sim.now();
  for (ObjectId id : sim.collector().KnownObjects()) {
    sim.pf_engine().InferObject(id, now);
  }
  const KnnQueryEvaluator eval(&sim.graph(), &sim.anchors(),
                               &sim.anchor_graph());
  Rng rng(6);
  for (auto _ : state) {
    const Point q = Experiment::RandomIndoorPoint(sim.anchors(), rng);
    benchmark::DoNotOptimize(eval.Evaluate(sim.pf_engine().table(), q,
                                           static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_KnnQueryEvaluate)->Arg(1)->Arg(3)->Arg(9);

void BM_EndToEndRangeQuery(benchmark::State& state) {
  // Full pipeline cost: pruning + inference (cache warm after the first
  // iterations) + evaluation, at a fresh timestamp each iteration.
  Simulation& sim = World();
  Rng rng(8);
  for (auto _ : state) {
    state.PauseTiming();
    sim.Run(1);
    const Rect window = Experiment::RandomWindow(sim.plan(), 0.02, rng);
    state.ResumeTiming();
    benchmark::DoNotOptimize(sim.pf_engine().EvaluateRange(window, sim.now()));
  }
}
BENCHMARK(BM_EndToEndRangeQuery)->Unit(benchmark::kMicrosecond);

void BM_SimulationStep(benchmark::State& state) {
  Simulation& sim = World();
  for (auto _ : state) {
    sim.Step();
  }
}
BENCHMARK(BM_SimulationStep)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace ipqs

int main(int argc, char** argv) {
  // Peel off our own flags before google-benchmark sees (and rejects)
  // them; everything else passes through untouched.
  std::string metrics_json;
  std::vector<char*> passthrough;
  passthrough.reserve(static_cast<size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    constexpr std::string_view kMetricsFlag = "--metrics_json=";
    if (arg.substr(0, kMetricsFlag.size()) == kMetricsFlag) {
      metrics_json = arg.substr(kMetricsFlag.size());
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  ipqs::g_metrics_enabled = !metrics_json.empty();

  // IPQS_BENCH_JSON=<dir>: machine-readable twin of the console table
  // (google-benchmark's JSON format), same convention as bench_util's
  // BENCH_<figure>.json files, plus a per-sim-second time series of the
  // shared world's metrics (SERIES_micro_perf.json).
  // scripts/check_perf.py consumes the BENCH file.
  std::string bench_out;
  std::string bench_out_format;
  bool has_explicit_out = false;
  for (const char* arg : passthrough) {
    if (std::string_view(arg).substr(0, 16) == "--benchmark_out=") {
      has_explicit_out = true;
    }
  }
  std::string series_dir;
  if (const char* dir = std::getenv("IPQS_BENCH_JSON");
      dir != nullptr && *dir != '\0') {
    series_dir = dir;
    ipqs::g_series_enabled = true;
    if (!has_explicit_out) {
      bench_out =
          "--benchmark_out=" + std::string(dir) + "/BENCH_micro_perf.json";
      bench_out_format = "--benchmark_out_format=json";
      passthrough.push_back(bench_out.data());
      passthrough.push_back(bench_out_format.data());
    }
  }

  int bench_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&bench_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                             passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  if (!metrics_json.empty()) {
    if (!ipqs::Registry().WriteJsonFile(metrics_json)) {
      std::fprintf(stderr, "cannot write metrics to %s\n",
                   metrics_json.c_str());
      return 1;
    }
    std::printf("metrics written: %s\n", metrics_json.c_str());
  }
  if (ipqs::g_series_enabled && ipqs::Sampler().size() > 0) {
    const std::string path = series_dir + "/SERIES_micro_perf.json";
    std::ofstream os(path, std::ios::trunc);
    ipqs::Sampler().WriteJson(os);
    if (os.good()) {
      std::printf("time series written: %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "cannot write time series to %s\n", path.c_str());
    }
  }
  return 0;
}
