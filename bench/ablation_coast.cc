// Ablation A5: the coast cutoff (line 6 of Algorithm 2). The filter stops
// `max_coast_seconds` after the last reading; run much longer and the
// particles diffuse into noise, stop too early and fresh silence is
// under-propagated. The paper fixes 60 s; this sweep shows the trade-off.

#include "bench_util.h"

int main() {
  using namespace ipqs;
  using namespace ipqs::bench;

  PrintHeader("Ablation A5", "Coast cutoff after last reading", "coast_s",
              {"KL(PF)", "hit(PF)", "top1", "top2", "flt_secs"});
  for (int coast : {5, 15, 30, 60, 120, 300}) {
    ExperimentConfig config = PaperProtocol();
    config.sim.filter.max_coast_seconds = coast;
    config.sim.seed = 900;
    const ExperimentResult r = MustRun(config);
    PrintRow(coast, {r.kl_pf, r.hit_pf, r.top1, r.top2,
                     static_cast<double>(r.pf_stats.filter_seconds)});
  }
  PrintShapeNote(
      "accuracy peaks at a moderate cutoff (the paper picks 60 s); very "
      "long coasting costs more filtering work for equal or worse accuracy");
  return 0;
}
