// Figure 9 of the paper: effect of the query window size (1% .. 5% of the
// floor area) on range query accuracy, measured as KL divergence against
// ground truth, for the particle filter (PF) and the symbolic model (SM).

#include "bench_util.h"

int main() {
  using namespace ipqs;
  using namespace ipqs::bench;

  PrintHeader("Figure 9", "Effects of query window size", "window_size_%",
              {"KL(PF)", "KL(SM)"});
  for (double pct : {1.0, 2.0, 3.0, 4.0, 5.0}) {
    ExperimentConfig config = PaperProtocol();
    config.eval_knn = false;
    config.eval_topk = false;
    config.window_area_fraction = pct / 100.0;
    config.sim.seed = 42 + static_cast<uint64_t>(pct);
    const ExperimentResult r = MustRun(config);
    PrintRow(pct, {r.kl_pf, r.kl_sm});
  }
  PrintShapeNote(
      "both curves flat in window size; PF significantly below SM");
  return 0;
}
