// Figure 12 of the paper: impact of the number of moving objects
// (200 .. 1000) on (a) range KL divergence, (b) kNN hit rate,
// (c) top-1/top-2 success rate — the scalability experiment.

#include "bench_util.h"

int main() {
  using namespace ipqs;
  using namespace ipqs::bench;

  PrintHeader("Figure 12", "Impact of the number of moving objects",
              "objects",
              {"KL(PF)", "KL(SM)", "hit(PF)", "hit(SM)", "top1", "top2"});
  for (int objects : {200, 400, 600, 800, 1000}) {
    ExperimentConfig config = PaperProtocol();
    config.sim.trace.num_objects =
        FastMode() ? objects / 4 : objects;
    config.sim.seed = 300 + static_cast<uint64_t>(objects);
    const ExperimentResult r = MustRun(config);
    PrintRow(objects,
             {r.kl_pf, r.kl_sm, r.hit_pf, r.hit_sm, r.top1, r.top2});
  }
  PrintShapeNote(
      "KL and top-k roughly flat in object count; kNN hit rate decays for "
      "both methods as the space gets denser");
  return 0;
}
