// Ablation A2 (Section 4.5, cache management module): resuming particle
// filtering from cached per-object states should cut the total filtered
// seconds without changing accuracy (caching is a work optimization).

#include "bench_util.h"

int main() {
  using namespace ipqs;
  using namespace ipqs::bench;

  PrintHeader("Ablation A2", "Particle cache on/off", "cache",
              {"KL(PF)", "hit(PF)", "flt_secs", "runs", "resumes",
               "hit_rate"});
  for (int cache : {1, 0}) {
    ExperimentConfig config = PaperProtocol();
    config.sim.use_cache = cache == 1;
    config.sim.seed = 600;
    const ExperimentResult r = MustRun(config);
    PrintRow(cache,
             {r.kl_pf, r.hit_pf,
              static_cast<double>(r.pf_stats.filter_seconds),
              static_cast<double>(r.pf_stats.filter_runs),
              static_cast<double>(r.pf_stats.filter_resumes),
              r.cache_stats.HitRate()});
  }
  PrintShapeNote(
      "same accuracy, fewer filtered seconds with the cache on; hit rate "
      "bounded by how often objects change detecting devices");
  return 0;
}
