// Query-serving throughput vs. concurrent-query count: the same stream of
// range/kNN queries served one engine call at a time (the original serving
// path: no distance index, a fresh pruning Dijkstra per kNN query) versus
// batched through the QueryScheduler at growing batch sizes (shared
// DistanceIndex tables, duplicate-query dedup, one inference pass over the
// union of candidates per batch).
//
// The workload models a serving frontend: at every timestamp a wave of
// concurrent queries arrives, drawn from a hot panel of query points and
// windows (dashboards and pinned views repeat the same queries), so a
// batch contains duplicates and near-misses — exactly what the scheduler's
// dedup and the shared distance tables exploit. Answers are verified
// byte-identical across every batch size (and against the serial
// baseline); batching changes throughput, never answers.
//
// Single-core note: the speedup here comes from doing LESS work (dedup,
// cached Dijkstras, shared evaluation tables), not from parallelism, so it
// holds on any machine. IPQS_FAST=1 shrinks the protocol.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/check.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "query/query_scheduler.h"
#include "sim/experiment.h"
#include "sim/simulation.h"

namespace ipqs {
namespace {

constexpr uint64_t kSeed = 7;
constexpr int kK = 3;

struct Answers {
  std::vector<QueryResult> range;
  std::vector<KnnResult> knn;
};

bool SameAnswers(const Answers& a, const Answers& b) {
  if (a.range.size() != b.range.size() || a.knn.size() != b.knn.size()) {
    return false;
  }
  for (size_t i = 0; i < a.range.size(); ++i) {
    if (a.range[i].objects != b.range[i].objects) {
      return false;
    }
  }
  for (size_t i = 0; i < a.knn.size(); ++i) {
    if (a.knn[i].result.objects != b.knn[i].result.objects ||
        a.knn[i].total_probability != b.knn[i].total_probability) {
      return false;
    }
  }
  return true;
}

// A hot panel of kNN query points whose graph snap lands exactly on an
// anchor point (slack 0), so index-backed pruning is bit-identical to the
// exact per-query Dijkstra and the whole table verifies byte-for-byte.
std::vector<Point> SlackFreePanel(Simulation& sim, int want) {
  std::vector<Point> panel;
  for (int attempts = 0; static_cast<int>(panel.size()) < want; ++attempts) {
    IPQS_CHECK_LT(attempts, 10000);
    const Point p =
        Experiment::RandomIndoorPoint(sim.anchors(), sim.query_rng());
    const GraphLocation loc =
        sim.graph().NearestLocation(p, /*prefer_hallways=*/true);
    const AnchorPoint& a = sim.anchors().anchor(sim.anchors().NearestOnEdge(loc));
    if (a.edge == loc.edge && a.offset == loc.offset) {
      panel.push_back(p);
    }
  }
  return panel;
}

int RunQps() {
  const bool fast = bench::FastMode();
  const int num_timestamps = fast ? 3 : 8;
  const int queries_per_timestamp = 64;
  const int panel_knn = 6;
  const int panel_range = 2;
  const int warmup_seconds = fast ? 120 : 300;
  const int seconds_between = 10;
  const int num_objects = fast ? 60 : 200;

  bench::PrintHeader(
      "micro_qps", "query-serving throughput vs. concurrent-query batch size",
      "batch", {"serve_ms", "qps", "speedup", "dedup", "dindex_hit"});

  double baseline_ms = 0.0;
  Answers baseline;

  for (const int batch_size : {1, 4, 16, 64}) {
    // Fresh world per sweep point: same seed, so every row sees the same
    // reading stream and draws the same query workload.
    obs::MetricsRegistry registry;
    obs::TimeSeriesSampler sampler(&registry);
    SimulationConfig config;
    config.trace.num_objects = num_objects;
    config.seed = kSeed;
    config.metrics = &registry;
    // With IPQS_BENCH_JSON set, every Step() snapshots the registry into
    // the time-series ring; the largest-batch row's series is exported
    // below as SERIES_micro_qps.json.
    const char* series_dir = std::getenv("IPQS_BENCH_JSON");
    if (series_dir != nullptr && *series_dir != '\0') {
      config.sampler = &sampler;
    }
    // batch 1 is the original serving path: one engine call per query and
    // an exact pruning Dijkstra per kNN query.
    config.use_distance_index = batch_size > 1;
    auto sim_or = Simulation::Create(config);
    IPQS_CHECK(sim_or.ok());
    std::unique_ptr<Simulation> sim = std::move(*sim_or);
    sim->Run(warmup_seconds);

    const std::vector<Point> knn_panel = SlackFreePanel(*sim, panel_knn);
    std::vector<Rect> range_panel;
    for (int i = 0; i < panel_range; ++i) {
      range_panel.push_back(
          Experiment::RandomWindow(sim->plan(), 0.02, sim->query_rng()));
    }
    // The full query stream, pre-drawn so serving is the only timed work.
    std::vector<std::vector<BatchQuery>> stream(num_timestamps);
    for (int ts = 0; ts < num_timestamps; ++ts) {
      for (int q = 0; q < queries_per_timestamp; ++q) {
        const size_t pick = sim->query_rng().UniformIndex(
            static_cast<size_t>(panel_knn + panel_range));
        if (pick < static_cast<size_t>(panel_knn)) {
          stream[ts].push_back(BatchQuery::Knn(knn_panel[pick], kK));
        } else {
          stream[ts].push_back(
              BatchQuery::Range(range_panel[pick - panel_knn]));
        }
      }
    }

    QueryScheduler scheduler(&sim->pf_engine());
    Answers answers;
    double serve_ms = 0.0;
    int64_t served = 0;
    for (int ts = 0; ts < num_timestamps; ++ts) {
      sim->Run(seconds_between);
      const int64_t now = sim->now();
      // Bring the filter current before timing: a tracking system updates
      // continuously as readings stream in, and that catch-up cost is paid
      // identically by every serving strategy. The timed region below is
      // pure query serving: pruning, evaluation, and (serial only) the
      // per-kNN-query distance Dijkstra that the index amortizes away.
      sim->pf_engine().EvaluateRange(sim->plan().BoundingBox(), now);
      const std::vector<BatchQuery>& wave = stream[ts];
      const auto start = std::chrono::steady_clock::now();
      std::vector<BatchAnswer> out;
      if (batch_size == 1) {
        for (const BatchQuery& q : wave) {
          BatchAnswer a;
          a.kind = q.kind;
          if (q.kind == BatchQuery::Kind::kRange) {
            a.range = sim->pf_engine().EvaluateRange(q.window, now);
          } else {
            a.knn = sim->pf_engine().EvaluateKnn(q.point, q.k, now);
          }
          out.push_back(std::move(a));
        }
      } else {
        for (size_t i = 0; i < wave.size(); i += batch_size) {
          const std::vector<BatchQuery> chunk(
              wave.begin() + i,
              wave.begin() + std::min(i + batch_size, wave.size()));
          std::vector<BatchAnswer> part = scheduler.EvaluateBatch(chunk, now);
          for (BatchAnswer& a : part) {
            out.push_back(std::move(a));
          }
        }
      }
      const auto end = std::chrono::steady_clock::now();
      serve_ms +=
          std::chrono::duration<double, std::milli>(end - start).count();
      served += static_cast<int64_t>(out.size());
      for (const BatchAnswer& a : out) {
        if (a.kind == BatchQuery::Kind::kRange) {
          answers.range.push_back(a.range);
        } else {
          answers.knn.push_back(a.knn);
        }
      }
    }

    bool identical = true;
    if (batch_size == 1) {
      baseline_ms = serve_ms;
      baseline = answers;
    } else {
      identical = SameAnswers(answers, baseline);
    }
    const double qps = static_cast<double>(served) / (serve_ms / 1000.0);
    const DistanceIndex::Stats dstats =
        sim->pf_engine().distance_index_stats();
    // Fraction of the wave collapsed by dedup (0 on the serial row, where
    // the scheduler never ran).
    const int64_t sched_queries =
        registry.GetCounter("pf.qps.queries")->Value();
    const double dedup =
        sched_queries == 0
            ? 0.0
            : static_cast<double>(
                  registry.GetCounter("pf.qps.duplicate_queries")->Value()) /
                  static_cast<double>(sched_queries);
    bench::PrintRow(batch_size,
                    {serve_ms, qps,
                     baseline_ms == 0.0 ? 1.0 : baseline_ms / serve_ms,
                     dedup, dstats.HitRate()});
    if (!identical) {
      std::fprintf(stderr,
                   "FATAL: batch=%d answers diverged from the serial "
                   "baseline\n",
                   batch_size);
      return 1;
    }
    if (config.sampler != nullptr && batch_size == 64) {
      const std::string path =
          std::string(series_dir) + "/SERIES_micro_qps.json";
      std::ofstream os(path, std::ios::trunc);
      sampler.WriteJson(os);
      if (os.good()) {
        std::printf("time series written: %s\n", path.c_str());
      } else {
        std::fprintf(stderr, "cannot write time series to %s\n",
                     path.c_str());
      }
    }
  }

  bench::PrintShapeNote(
      "QPS grows with batch size: duplicate queries collapse to one "
      "evaluation, kNN pruning reads cached distance tables, and each "
      "batch runs one inference pass. Expect >= 2x at batch 16 vs. the "
      "serial baseline; answers stay byte-identical throughout.");
  return 0;
}

}  // namespace
}  // namespace ipqs

int main() { return ipqs::RunQps(); }
