// Ablation A3: negative information in the measurement model. The paper's
// Algorithm 2 skips seconds without readings; our extension additionally
// discounts particles that sit inside some reader's activation range
// during a silent second (the object would very likely have been seen
// there). This bench measures what that buys.

#include "bench_util.h"

int main() {
  using namespace ipqs;
  using namespace ipqs::bench;

  PrintHeader("Ablation A3", "Negative information on/off", "neg_info",
              {"KL(PF)", "hit(PF)", "top1", "top2"});
  for (int neg : {0, 1}) {
    ExperimentConfig config = PaperProtocol();
    config.sim.filter.measurement.use_negative_information = neg == 1;
    config.sim.seed = 700;
    const ExperimentResult r = MustRun(config);
    PrintRow(neg, {r.kl_pf, r.hit_pf, r.top1, r.top2});
  }
  PrintShapeNote(
      "extension beyond the paper: silent seconds carry information; "
      "expect a small accuracy gain at no extra asymptotic cost");
  return 0;
}
