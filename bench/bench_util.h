#ifndef IPQS_BENCH_BENCH_UTIL_H_
#define IPQS_BENCH_BENCH_UTIL_H_

#include <string>
#include <vector>

#include "sim/experiment.h"

namespace ipqs {
namespace bench {

// The paper's evaluation protocol with the Table 2 defaults: 64 particles,
// 2% windows, 200 objects, k=3, 2 m activation range; 100 random windows
// per timestamp, 30 kNN query points, 50 timestamps.
//
// Setting the environment variable IPQS_FAST=1 shrinks the protocol
// (fewer objects/timestamps/queries) for quick iteration; the shapes stay
// the same, only the error bars grow.
ExperimentConfig PaperProtocol();

// True when IPQS_FAST=1 is set.
bool FastMode();

// One sweep point: the x value and its averaged metrics.
struct SweepRow {
  double x = 0.0;
  ExperimentResult result;
};

// Pretty-prints a figure reproduction: the header (figure id + title), one
// row per sweep point with the chosen metric columns, and the qualitative
// shape the paper reports for comparison.
//
// When the environment variable IPQS_BENCH_JSON names a directory, the
// trio additionally records the section into BENCH_<figure>.json there
// (one file per PrintHeader..PrintShapeNote section, rows with their
// printed values plus the wall-clock milliseconds the MustRun calls since
// the previous row took). Machine-readable twin of the stdout tables for
// CI artifacts and regression tracking.
void PrintHeader(const std::string& figure, const std::string& title,
                 const std::string& xlabel,
                 const std::vector<std::string>& columns);
void PrintRow(double x, const std::vector<double>& values);
void PrintShapeNote(const std::string& note);

// Runs one experiment, aborting the process with a message on failure
// (benches have no error recovery story).
ExperimentResult MustRun(const ExperimentConfig& config);

}  // namespace bench
}  // namespace ipqs

#endif  // IPQS_BENCH_BENCH_UTIL_H_
