// Ablation A4: resampling scheme and adaptive (ESS-triggered) resampling.
// The paper's Algorithm 1 is systematic resampling at every observation;
// this bench compares the classic alternatives and an ESS-0.5 adaptive
// trigger on the full accuracy protocol.

#include "bench_util.h"

int main() {
  using namespace ipqs;
  using namespace ipqs::bench;

  PrintHeader("Ablation A4", "Resampling scheme", "scheme",
              {"KL(PF)", "hit(PF)", "top1", "top2"});
  const ResamplingScheme schemes[] = {
      ResamplingScheme::kSystematic, ResamplingScheme::kStratified,
      ResamplingScheme::kMultinomial, ResamplingScheme::kResidual};
  int idx = 0;
  for (ResamplingScheme scheme : schemes) {
    ExperimentConfig config = PaperProtocol();
    config.sim.filter.resampling = scheme;
    config.sim.seed = 800;
    const ExperimentResult r = MustRun(config);
    std::printf("%-16s", ToString(scheme).c_str());
    std::printf("%12.4f%12.4f%12.4f%12.4f\n", r.kl_pf, r.hit_pf, r.top1,
                r.top2);
    ++idx;
  }
  {
    ExperimentConfig config = PaperProtocol();
    config.sim.filter.resample_ess_fraction = 0.5;
    config.sim.seed = 800;
    const ExperimentResult r = MustRun(config);
    std::printf("%-16s", "adaptive(0.5)");
    std::printf("%12.4f%12.4f%12.4f%12.4f\n", r.kl_pf, r.hit_pf, r.top1,
                r.top2);
  }
  PrintShapeNote(
      "low-variance schemes (systematic/stratified/residual) should tie; "
      "multinomial may lag slightly; adaptive resampling should match "
      "systematic (observations are informative here)");
  return 0;
}
