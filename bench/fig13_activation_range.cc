// Figure 13 of the paper: impact of the readers' activation range
// (0.5 m .. 2.5 m) on (a) range KL divergence, (b) kNN hit rate,
// (c) top-1/top-2 success rate.

#include "bench_util.h"

int main() {
  using namespace ipqs;
  using namespace ipqs::bench;

  PrintHeader("Figure 13", "Impact of the activation range",
              "range_m",
              {"KL(PF)", "KL(SM)", "hit(PF)", "hit(SM)", "top1", "top2"});
  for (double range : {0.5, 1.0, 1.5, 2.0, 2.5}) {
    ExperimentConfig config = PaperProtocol();
    config.sim.activation_range = range;
    config.sim.seed = 400 + static_cast<uint64_t>(range * 10);
    const ExperimentResult r = MustRun(config);
    PrintRow(range,
             {r.kl_pf, r.kl_sm, r.hit_pf, r.hit_sm, r.top1, r.top2});
  }
  PrintShapeNote(
      "both methods improve as ranges grow (uncovered regions shrink); PF "
      "reaches good accuracy already at ~1 m");
  return 0;
}
