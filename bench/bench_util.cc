#include "bench_util.h"

#include <cstdio>
#include <cstdlib>

namespace ipqs {
namespace bench {

bool FastMode() {
  const char* fast = std::getenv("IPQS_FAST");
  return fast != nullptr && fast[0] == '1';
}

ExperimentConfig PaperProtocol() {
  ExperimentConfig config;  // Table 2 defaults are the struct defaults.
  if (FastMode()) {
    config.sim.trace.num_objects = 80;
    config.warmup_seconds = 180;
    config.num_timestamps = 10;
    config.range_queries_per_timestamp = 30;
    config.knn_query_points = 10;
  }
  return config;
}

void PrintHeader(const std::string& figure, const std::string& title,
                 const std::string& xlabel,
                 const std::vector<std::string>& columns) {
  std::printf("=== %s: %s ===\n", figure.c_str(), title.c_str());
  if (FastMode()) {
    std::printf("(IPQS_FAST=1: reduced protocol)\n");
  }
  std::printf("%-16s", xlabel.c_str());
  for (const std::string& c : columns) {
    std::printf("%12s", c.c_str());
  }
  std::printf("\n");
}

void PrintRow(double x, const std::vector<double>& values) {
  std::printf("%-16g", x);
  for (double v : values) {
    std::printf("%12.4f", v);
  }
  std::printf("\n");
}

void PrintShapeNote(const std::string& note) {
  std::printf("paper shape: %s\n\n", note.c_str());
}

ExperimentResult MustRun(const ExperimentConfig& config) {
  const auto result = Experiment(config).Run();
  if (!result.ok()) {
    std::fprintf(stderr, "experiment failed: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return *result;
}

}  // namespace bench
}  // namespace ipqs
