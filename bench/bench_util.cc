#include "bench_util.h"

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>

namespace ipqs {
namespace bench {
namespace {

// State for the BENCH_*.json twin of the printed tables (see bench_util.h).
// Benches are single-threaded mains, so plain globals suffice.
struct BenchRow {
  double x = 0.0;
  std::vector<double> values;
  double wall_ms = 0.0;
};

struct BenchSection {
  std::string figure;
  std::string title;
  std::string xlabel;
  std::vector<std::string> columns;
  std::vector<BenchRow> rows;
  // Wall time of MustRun calls since the last PrintRow; attached to the
  // next row.
  double pending_wall_ms = 0.0;
};

BenchSection g_section;

const char* BenchJsonDir() { return std::getenv("IPQS_BENCH_JSON"); }

std::string FileSafe(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    out.push_back(std::isalnum(static_cast<unsigned char>(c)) != 0 ? c : '_');
  }
  return out;
}

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
    }
    out->push_back(c);
  }
  out->push_back('"');
}

void AppendJsonDouble(std::string* out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out->append(buf);
}

// Writes the finished section (if any) to BENCH_<figure>.json and resets
// it. No-op unless IPQS_BENCH_JSON is set and the section has rows.
void FlushSection() {
  const char* dir = BenchJsonDir();
  if (dir == nullptr || g_section.rows.empty()) {
    g_section = BenchSection{};
    return;
  }
  std::string json = "{\n  \"figure\": ";
  AppendJsonString(&json, g_section.figure);
  json += ",\n  \"title\": ";
  AppendJsonString(&json, g_section.title);
  json += ",\n  \"xlabel\": ";
  AppendJsonString(&json, g_section.xlabel);
  json += ",\n  \"fast_mode\": ";
  json += FastMode() ? "true" : "false";
  json += ",\n  \"columns\": [";
  for (size_t i = 0; i < g_section.columns.size(); ++i) {
    if (i > 0) json += ", ";
    AppendJsonString(&json, g_section.columns[i]);
  }
  json += "],\n  \"rows\": [\n";
  for (size_t i = 0; i < g_section.rows.size(); ++i) {
    const BenchRow& row = g_section.rows[i];
    json += "    {\"x\": ";
    AppendJsonDouble(&json, row.x);
    json += ", \"values\": [";
    for (size_t j = 0; j < row.values.size(); ++j) {
      if (j > 0) json += ", ";
      AppendJsonDouble(&json, row.values[j]);
    }
    json += "], \"wall_ms\": ";
    AppendJsonDouble(&json, row.wall_ms);
    json += i + 1 < g_section.rows.size() ? "},\n" : "}\n";
  }
  json += "  ]\n}\n";

  const std::string path =
      std::string(dir) + "/BENCH_" + FileSafe(g_section.figure) + ".json";
  std::ofstream out(path);
  if (out) {
    out << json;
    std::printf("bench json: %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "cannot write bench json: %s\n", path.c_str());
  }
  g_section = BenchSection{};
}

}  // namespace

bool FastMode() {
  const char* fast = std::getenv("IPQS_FAST");
  return fast != nullptr && fast[0] == '1';
}

ExperimentConfig PaperProtocol() {
  ExperimentConfig config;  // Table 2 defaults are the struct defaults.
  if (FastMode()) {
    config.sim.trace.num_objects = 80;
    config.warmup_seconds = 180;
    config.num_timestamps = 10;
    config.range_queries_per_timestamp = 30;
    config.knn_query_points = 10;
  }
  return config;
}

void PrintHeader(const std::string& figure, const std::string& title,
                 const std::string& xlabel,
                 const std::vector<std::string>& columns) {
  FlushSection();  // A bench binary may print several sections.
  g_section.figure = figure;
  g_section.title = title;
  g_section.xlabel = xlabel;
  g_section.columns = columns;

  std::printf("=== %s: %s ===\n", figure.c_str(), title.c_str());
  if (FastMode()) {
    std::printf("(IPQS_FAST=1: reduced protocol)\n");
  }
  std::printf("%-16s", xlabel.c_str());
  for (const std::string& c : columns) {
    std::printf("%12s", c.c_str());
  }
  std::printf("\n");
}

void PrintRow(double x, const std::vector<double>& values) {
  g_section.rows.push_back({x, values, g_section.pending_wall_ms});
  g_section.pending_wall_ms = 0.0;

  std::printf("%-16g", x);
  for (double v : values) {
    std::printf("%12.4f", v);
  }
  std::printf("\n");
}

void PrintShapeNote(const std::string& note) {
  std::printf("paper shape: %s\n\n", note.c_str());
  FlushSection();
}

ExperimentResult MustRun(const ExperimentConfig& config) {
  const auto start = std::chrono::steady_clock::now();
  const auto result = Experiment(config).Run();
  if (!result.ok()) {
    std::fprintf(stderr, "experiment failed: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  g_section.pending_wall_ms +=
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  return *result;
}

}  // namespace bench
}  // namespace ipqs
