// Fault ablation (src/faults/): accuracy as a function of fault intensity.
// Sweeps per-reader dropout from 0% to 40% (the other channels riding at a
// fixed low rate), with the collector's reorder buffer armed, and charts
// how gracefully both engines degrade. See EXPERIMENTS.md, "Fault
// ablation".

#include "bench_util.h"

int main() {
  using namespace ipqs;
  using namespace ipqs::bench;

  PrintHeader("Fault ablation", "Accuracy vs reading-stream degradation",
              "drop%",
              {"KL(PF)", "KL(SM)", "hit(PF)", "hit(SM)", "injected",
               "dropped", "repaired"});
  for (int drop_pct : {0, 5, 10, 20, 30, 40}) {
    ExperimentConfig config = PaperProtocol();
    config.sim.seed = 700;
    config.sim.faults.seed = 701;
    config.sim.faults.dropout_rate = drop_pct / 100.0;
    if (drop_pct > 0) {
      // A realistic degraded deployment: a little duplication, reordering,
      // and clock skew alongside the swept dropout.
      config.sim.faults.duplicate_rate = 0.05;
      config.sim.faults.reorder_rate = 0.05;
      config.sim.faults.max_clock_skew_seconds = 1;
      config.sim.collector.reorder_window_seconds = 3;
    }
    const ExperimentResult r = MustRun(config);
    PrintRow(drop_pct,
             {r.kl_pf, r.kl_sm, r.hit_pf, r.hit_sm,
              static_cast<double>(r.fault_stats.injected),
              static_cast<double>(r.fault_stats.dropped),
              static_cast<double>(r.ingest_stats.reordered)});
  }
  PrintShapeNote(
      "accuracy decays smoothly with dropout — no cliff; PF stays ahead of "
      "SM at every intensity, and the reorder buffer keeps late-drop "
      "losses at zero");
  return 0;
}
