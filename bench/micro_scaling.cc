// Thread-scaling microbenchmark: range-query throughput of the particle
// filter engine at 1/2/4/8 inference threads over the Table-2 workload
// (200 objects, 64 particles, 19 readers, 2 m range, 2 % windows).
//
// Also verifies the PR 1 determinism guarantee end to end: at every thread
// count the query answers must be byte-identical to the single-threaded
// baseline (per-object (seed, object, timestamp) RNG streams + canonical
// merge order), so the sweep prints "identical" per row — any deviation is
// a bug, not noise.
//
// Speedup is hardware-bound: on an N-core machine expect ~min(threads, N)x
// until memory bandwidth interferes. IPQS_FAST=1 shrinks the protocol.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "common/check.h"
#include "sim/experiment.h"
#include "sim/simulation.h"

namespace ipqs {
namespace {

struct Workload {
  std::vector<Rect> windows;
  std::vector<int64_t> times;  // One timestamp per batch of windows.
};

constexpr uint64_t kSeed = 7;

int RunScaling() {
  const bool fast = [] {
    const char* v = std::getenv("IPQS_FAST");
    return v != nullptr && v[0] == '1';
  }();
  const int num_timestamps = fast ? 3 : 10;
  const int windows_per_timestamp = fast ? 5 : 20;
  const int warmup_seconds = fast ? 120 : 300;
  const int seconds_between = 10;

  std::printf("micro_scaling — range-query throughput vs. inference "
              "threads\n");
  std::printf("workload: 200 objects, %d timestamps x %d windows (2%% "
              "area), warmup %d s\n\n",
              num_timestamps, windows_per_timestamp, warmup_seconds);
  std::printf("%8s %12s %14s %10s %10s\n", "threads", "time (ms)",
              "queries/s", "speedup", "answers");

  double baseline_ms = 0.0;
  std::vector<QueryResult> baseline_results;

  for (const int threads : {1, 2, 4, 8}) {
    // A fresh world per sweep point: the simulation evolves identically
    // (same seed drives the world), so every engine sees the same reading
    // stream and the same query workload.
    SimulationConfig config;
    config.trace.num_objects = 200;
    config.seed = kSeed;
    config.num_threads = threads;
    auto sim_or = Simulation::Create(config);
    IPQS_CHECK(sim_or.ok());
    std::unique_ptr<Simulation> sim = std::move(*sim_or);
    sim->Run(warmup_seconds);

    // Pre-generate the workload from the dedicated query stream so window
    // draws do not perturb the world.
    Workload workload;
    for (int ts = 0; ts < num_timestamps; ++ts) {
      for (int w = 0; w < windows_per_timestamp; ++w) {
        workload.windows.push_back(Experiment::RandomWindow(
            sim->plan(), 0.02, sim->query_rng()));
      }
    }

    std::vector<QueryResult> results;
    results.reserve(workload.windows.size());
    const auto start = std::chrono::steady_clock::now();
    size_t next_window = 0;
    for (int ts = 0; ts < num_timestamps; ++ts) {
      sim->Run(seconds_between);
      for (int w = 0; w < windows_per_timestamp; ++w) {
        results.push_back(sim->pf_engine().EvaluateRange(
            workload.windows[next_window++], sim->now()));
      }
    }
    const auto end = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(end - start).count();
    const double qps = results.size() / (ms / 1000.0);

    bool identical = true;
    if (threads == 1) {
      baseline_ms = ms;
      baseline_results = results;
    } else {
      IPQS_CHECK_EQ(results.size(), baseline_results.size());
      for (size_t i = 0; i < results.size(); ++i) {
        if (results[i].objects != baseline_results[i].objects) {
          identical = false;
          break;
        }
      }
    }
    std::printf("%8d %12.1f %14.1f %9.2fx %10s\n", threads, ms, qps,
                baseline_ms / ms, identical ? "identical" : "DIVERGED");
    if (!identical) {
      std::fprintf(stderr,
                   "FATAL: answers diverged from the 1-thread baseline\n");
      return 1;
    }
  }
  std::printf("\nAnswers are byte-identical at every thread count; speedup "
              "tracks the core count of the host.\n");
  return 0;
}

}  // namespace
}  // namespace ipqs

int main() { return ipqs::RunScaling(); }
