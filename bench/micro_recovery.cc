// Recovery-time microbenchmark: how fast a killed serving process gets
// back to answering queries, as a function of the snapshot interval.
//
// For each interval the bench runs a persisted simulation for a fixed
// horizon, kills it (no shutdown courtesy), recovers from the checkpoint
// directory, and reports: snapshot count and bytes on disk, WAL bytes, how
// many WAL records the recovery replayed, the replay time, and the total
// time from "process starts" to "first query answered". A longer interval
// cheapens steady state (fewer snapshot writes) but lengthens the WAL tail
// replayed on recovery — this sweep measures that trade-off.
//
// The bench also re-verifies the recovery contract end to end: after every
// recovery the answers to a fixed probe panel must be byte-identical to a
// never-crashed control run's. IPQS_FAST=1 shrinks the protocol.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <vector>

#include "common/check.h"
#include "sim/experiment.h"
#include "sim/simulation.h"

namespace ipqs {
namespace {

namespace fs = std::filesystem;

constexpr uint64_t kSeed = 7;

struct DirUsage {
  int snapshots = 0;
  uintmax_t snapshot_bytes = 0;
  int wal_segments = 0;
  uintmax_t wal_bytes = 0;
};

DirUsage MeasureDir(const std::string& dir) {
  DirUsage usage;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("snap-", 0) == 0) {
      ++usage.snapshots;
      usage.snapshot_bytes += entry.file_size();
    } else if (name.rfind("wal-", 0) == 0) {
      ++usage.wal_segments;
      usage.wal_bytes += entry.file_size();
    }
  }
  return usage;
}

SimulationConfig BaseConfig(int num_objects) {
  SimulationConfig config;
  config.trace.num_objects = num_objects;
  config.seed = kSeed;
  return config;
}

std::vector<QueryResult> ProbePanel(Simulation& sim) {
  Rng rng(4242);  // Fresh stream per run: identical windows everywhere.
  std::vector<QueryResult> results;
  for (int i = 0; i < 5; ++i) {
    const Rect window = Experiment::RandomWindow(sim.plan(), 0.05, rng);
    results.push_back(sim.pf_engine().EvaluateRange(window, sim.now()));
  }
  return results;
}

int RunRecoveryBench() {
  const bool fast = [] {
    const char* v = std::getenv("IPQS_FAST");
    return v != nullptr && v[0] == '1';
  }();
  const int num_objects = fast ? 50 : 200;
  // Deliberately not a multiple of any interval, so the kill always lands
  // mid-segment and recovery has a genuine WAL tail to replay.
  const int horizon_seconds = fast ? 131 : 589;
  const std::vector<int> intervals =
      fast ? std::vector<int>{15, 45} : std::vector<int>{15, 30, 60, 120, 300};

  std::printf("micro_recovery — recovery time vs. snapshot interval\n");
  std::printf("workload: %d objects, killed at t=%d s, fsync'd WAL\n\n",
              num_objects, horizon_seconds);

  // The never-crashed control and its probe answers, the bar every
  // recovered run must match byte for byte.
  std::unique_ptr<Simulation> control;
  {
    auto sim_or = Simulation::Create(BaseConfig(num_objects));
    IPQS_CHECK(sim_or.ok());
    control = std::move(*sim_or);
    control->Run(horizon_seconds);
  }
  const std::vector<QueryResult> expected = ProbePanel(*control);

  std::printf("%10s %6s %10s %10s %9s %11s %12s %9s\n", "interval", "snaps",
              "snap KiB", "wal KiB", "replayed", "replay ms",
              "recover ms", "answers");

  for (const int interval : intervals) {
    const std::string dir =
        (fs::temp_directory_path() /
         ("micro_recovery_" + std::to_string(interval)))
            .string();
    fs::remove_all(dir);

    // The victim: runs persisted, then is destroyed mid-flight.
    {
      SimulationConfig config = BaseConfig(num_objects);
      config.persist.dir = dir;
      config.persist.snapshot_interval_seconds = interval;
      auto sim_or = Simulation::Create(config);
      IPQS_CHECK(sim_or.ok());
      std::unique_ptr<Simulation> sim = std::move(*sim_or);
      sim->Run(horizon_seconds);
      IPQS_CHECK(sim->persist_status().ok());
    }
    const DirUsage usage = MeasureDir(dir);

    // Recovery, timed from construction to the first answered query.
    SimulationConfig config = BaseConfig(num_objects);
    config.persist.dir = dir;
    config.persist.snapshot_interval_seconds = interval;
    config.persist_recover = true;
    const auto start = std::chrono::steady_clock::now();
    auto sim_or = Simulation::Create(config);
    IPQS_CHECK(sim_or.ok());
    std::unique_ptr<Simulation> recovered = std::move(*sim_or);
    IPQS_CHECK_EQ(recovered->now(), horizon_seconds);
    const std::vector<QueryResult> actual = ProbePanel(*recovered);
    const auto end = std::chrono::steady_clock::now();

    const RecoveryReport& report = recovered->recovery_report();
    bool identical = actual.size() == expected.size();
    for (size_t i = 0; identical && i < actual.size(); ++i) {
      identical = actual[i].objects == expected[i].objects;
    }
    std::printf("%8d s %6d %10.1f %10.1f %9zu %11.2f %12.1f %9s\n", interval,
                usage.snapshots, usage.snapshot_bytes / 1024.0,
                usage.wal_bytes / 1024.0, report.wal_records_replayed,
                report.replay_ns / 1e6,
                std::chrono::duration<double, std::milli>(end - start).count(),
                identical ? "identical" : "DIVERGED");
    fs::remove_all(dir);
    if (!identical) {
      std::fprintf(stderr,
                   "FATAL: recovered answers diverged from the control\n");
      return 1;
    }
  }
  std::printf(
      "\nLonger intervals shrink steady-state snapshot work but lengthen\n"
      "the replayed WAL tail; every recovered run answered the probe panel\n"
      "byte-identically to the never-crashed control.\n");
  return 0;
}

}  // namespace
}  // namespace ipqs

int main() { return ipqs::RunRecoveryBench(); }
