// Figure 10 of the paper: effect of k (2 .. 9) on kNN query accuracy,
// measured as average hit rate against the ground-truth kNN set.

#include "bench_util.h"

int main() {
  using namespace ipqs;
  using namespace ipqs::bench;

  PrintHeader("Figure 10", "Effects of k", "k",
              {"hit(PF)", "hit(SM)"});
  for (int k = 2; k <= 9; ++k) {
    ExperimentConfig config = PaperProtocol();
    config.eval_range = false;
    config.eval_topk = false;
    config.k = k;
    config.sim.seed = 100 + static_cast<uint64_t>(k);
    const ExperimentResult r = MustRun(config);
    PrintRow(k, {r.hit_pf, r.hit_sm});
  }
  PrintShapeNote(
      "PF stable in k and always above SM; SM grows slowly with k");
  return 0;
}
