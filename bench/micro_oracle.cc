// Microbenchmarks for the preprocessed distance oracle vs. on-demand
// Dijkstra, swept over generated graph size (1k -> 100k edges). The
// point-to-point rows back the EXPERIMENTS.md crossover table: ALT's
// landmark-directed search wins on random pairs at every swept size, so
// the crossover is in amortization — BM_OracleBuild gives the one-time
// preprocessing cost that the per-query savings repay after a few dozen
// queries. `items_per_second` is distance queries per second; the
// BM_Oracle* rows feed the perf-regression guard (scripts/check_perf.py)
// via the IPQS_BENCH_JSON output.
//
// Custom main (same convention as micro_perf): with IPQS_BENCH_JSON=<dir>
// set, results are also written to <dir>/BENCH_micro_oracle.json in
// google-benchmark's JSON format. The registered benchmark set is
// identical in fast and full modes, so a fast-mode CI run is comparable
// against the committed full-mode baseline.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "graph/distance_oracle.h"
#include "graph/graph_gen.h"
#include "graph/shortest_path.h"

namespace ipqs {
namespace {

// One cached world per size: the generated graph, its oracle, and a fixed
// pair set shared by every benchmark so the Dijkstra and ALT rows time
// exactly the same queries.
struct OracleWorld {
  WalkingGraph graph;
  std::unique_ptr<DistanceOracle> oracle;
  std::vector<std::pair<GraphLocation, GraphLocation>> pairs;
};

OracleWorld& WorldFor(int target_edges) {
  static std::map<int, std::unique_ptr<OracleWorld>>* worlds =
      new std::map<int, std::unique_ptr<OracleWorld>>();
  std::unique_ptr<OracleWorld>& slot = (*worlds)[target_edges];
  if (slot == nullptr) {
    // edges ~= 1.5 * nodes at the default 0.5 chord fraction.
    GeneratedGraphConfig config;
    config.nodes_per_component = (target_edges * 2) / 3;
    config.seed = 1234 + static_cast<uint64_t>(target_edges);
    slot = std::make_unique<OracleWorld>();
    slot->graph = GenerateGraph(config);
    slot->oracle =
        std::make_unique<DistanceOracle>(&slot->graph, DistanceOracleConfig{});
    Rng rng(99);
    slot->pairs.reserve(64);
    for (int i = 0; i < 64; ++i) {
      slot->pairs.emplace_back(RandomLocation(slot->graph, rng),
                               RandomLocation(slot->graph, rng));
    }
  }
  return *slot;
}

void BM_OnDemandDijkstra(benchmark::State& state) {
  OracleWorld& world = WorldFor(static_cast<int>(state.range(0)));
  size_t i = 0;
  for (auto _ : state) {
    const auto& [from, to] = world.pairs[i++ % world.pairs.size()];
    benchmark::DoNotOptimize(NetworkDistance(world.graph, from, to));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_OracleP2P(benchmark::State& state) {
  OracleWorld& world = WorldFor(static_cast<int>(state.range(0)));
  size_t i = 0;
  for (auto _ : state) {
    const auto& [from, to] = world.pairs[i++ % world.pairs.size()];
    benchmark::DoNotOptimize(world.oracle->Distance(from, to));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_OracleBounds(benchmark::State& state) {
  OracleWorld& world = WorldFor(static_cast<int>(state.range(0)));
  size_t i = 0;
  for (auto _ : state) {
    const auto& [from, to] = world.pairs[i++ % world.pairs.size()];
    benchmark::DoNotOptimize(world.oracle->Bounds(from, to));
  }
  state.SetItemsProcessed(state.iterations());
}

void EdgeSweep(benchmark::internal::Benchmark* b) {
  for (const int edges : {1000, 5000, 20000, 50000, 100000}) {
    b->Arg(edges);
  }
  b->Unit(benchmark::kMicrosecond);
}

BENCHMARK(BM_OnDemandDijkstra)->Apply(EdgeSweep);
BENCHMARK(BM_OracleP2P)->Apply(EdgeSweep);
BENCHMARK(BM_OracleBounds)->Apply(EdgeSweep);

// Preprocessing cost (one-time per deployment): the landmark one-to-all
// tables. Amortization context for the crossover table.
void BM_OracleBuild(benchmark::State& state) {
  OracleWorld& world = WorldFor(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    DistanceOracle oracle(&world.graph, DistanceOracleConfig{});
    benchmark::DoNotOptimize(oracle.num_landmarks());
  }
}
BENCHMARK(BM_OracleBuild)->Arg(1000)->Arg(20000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ipqs

int main(int argc, char** argv) {
  std::vector<char*> passthrough(argv, argv + argc);
  bool has_explicit_out = false;
  for (const char* arg : passthrough) {
    if (std::string_view(arg).substr(0, 16) == "--benchmark_out=") {
      has_explicit_out = true;
    }
  }
  std::string bench_out;
  std::string bench_out_format;
  if (const char* dir = std::getenv("IPQS_BENCH_JSON");
      dir != nullptr && *dir != '\0' && !has_explicit_out) {
    bench_out =
        "--benchmark_out=" + std::string(dir) + "/BENCH_micro_oracle.json";
    bench_out_format = "--benchmark_out_format=json";
    passthrough.push_back(bench_out.data());
    passthrough.push_back(bench_out_format.data());
  }
  int bench_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&bench_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                             passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
