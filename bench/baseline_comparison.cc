// Baseline comparison (extension): the particle filter (PF) vs the
// symbolic model (SM) vs the naive "last reading" floor (LR) that parks
// each object at its last detecting reader. Shows how much of the
// probabilistic machinery each step buys on the default protocol.

#include "bench_util.h"

int main() {
  using namespace ipqs;
  using namespace ipqs::bench;

  PrintHeader("Baselines", "PF vs SM vs naive last-reading", "baseline",
              {"KL(base)", "hit(base)", "KL(PF)", "hit(PF)"});
  const struct {
    const char* name;
    InferenceMethod method;
  } baselines[] = {
      {"symbolic", InferenceMethod::kSymbolicModel},
      {"last_read", InferenceMethod::kLastReading},
  };
  for (const auto& baseline : baselines) {
    ExperimentConfig config = PaperProtocol();
    config.eval_topk = false;
    config.sim.baseline_method = baseline.method;
    config.sim.seed = 1000;
    const ExperimentResult r = MustRun(config);
    std::printf("%-16s%12.4f%12.4f%12.4f%12.4f\n", baseline.name, r.kl_sm,
                r.hit_sm, r.kl_pf, r.hit_pf);
  }
  PrintShapeNote(
      "expected ordering: PF best, SM in between, the naive floor worst "
      "(it ignores motion entirely, so stale objects are badly misplaced)");
  return 0;
}
