#include <algorithm>

#include <gtest/gtest.h>

#include "query/historical.h"
#include "sim/experiment.h"
#include "sim/simulation.h"

namespace ipqs {
namespace {

TEST(HistoryStoreTest, AggregatesLikeCollector) {
  HistoryStore store;
  for (int i = 0; i < 5; ++i) {
    store.Observe({1, 0, 100});  // Same second, same reader.
  }
  store.Observe({1, 0, 101});
  ASSERT_NE(store.FullHistory(1), nullptr);
  EXPECT_EQ(store.FullHistory(1)->size(), 2u);
  EXPECT_EQ(store.TotalEntries(), 2u);
}

TEST(HistoryStoreTest, KeepsFullHistoryAcrossManyDevices) {
  HistoryStore store;
  for (int d = 0; d < 6; ++d) {
    store.Observe({1, d, 100 + 10 * d});
  }
  EXPECT_EQ(store.FullHistory(1)->size(), 6u);  // Nothing dropped.
  EXPECT_EQ(store.KnownObjects(), (std::vector<ObjectId>{1}));
}

TEST(HistoryStoreTest, SnapshotBeforeFirstReadingIsEmpty) {
  HistoryStore store;
  store.Observe({1, 0, 100});
  EXPECT_FALSE(store.SnapshotAt(1, 99).has_value());
  EXPECT_FALSE(store.SnapshotAt(2, 1000).has_value());
  EXPECT_TRUE(store.SnapshotAt(1, 100).has_value());
}

TEST(HistoryStoreTest, SnapshotKeepsTwoMostRecentEpisodes) {
  HistoryStore store;
  store.Observe({1, 0, 100});
  store.Observe({1, 0, 101});
  store.Observe({1, 1, 110});
  store.Observe({1, 2, 120});
  store.Observe({1, 2, 121});

  // As of 105: only device 0.
  auto at105 = store.SnapshotAt(1, 105);
  ASSERT_TRUE(at105.has_value());
  EXPECT_EQ(at105->current_device, 0);
  EXPECT_EQ(at105->previous_device, kInvalidId);
  EXPECT_EQ(at105->entries.size(), 2u);

  // As of 115: devices 0 and 1.
  auto at115 = store.SnapshotAt(1, 115);
  ASSERT_TRUE(at115.has_value());
  EXPECT_EQ(at115->current_device, 1);
  EXPECT_EQ(at115->previous_device, 0);
  EXPECT_EQ(at115->entries.size(), 3u);

  // As of 125: devices 1 and 2; device 0's entries dropped.
  auto at125 = store.SnapshotAt(1, 125);
  ASSERT_TRUE(at125.has_value());
  EXPECT_EQ(at125->current_device, 2);
  EXPECT_EQ(at125->previous_device, 1);
  EXPECT_EQ(at125->entries.size(), 3u);
  EXPECT_EQ(at125->FirstTime(), 110);
}

TEST(HistoryStoreTest, SnapshotMatchesLiveCollector) {
  // Feeding the same stream to both, the snapshot at the end must equal
  // the collector's live window.
  SimulationConfig config;
  config.trace.num_objects = 20;
  config.seed = 55;
  auto sim = Simulation::Create(config).value();
  sim->Run(300);

  for (ObjectId id : sim->collector().KnownObjects()) {
    const auto* live = sim->collector().History(id);
    const auto snap = sim->history().SnapshotAt(id, sim->now());
    ASSERT_TRUE(snap.has_value()) << "object " << id;
    EXPECT_EQ(snap->current_device, live->current_device);
    EXPECT_EQ(snap->previous_device, live->previous_device);
    ASSERT_EQ(snap->entries.size(), live->entries.size()) << "object " << id;
    for (size_t i = 0; i < live->entries.size(); ++i) {
      EXPECT_EQ(snap->entries[i].time, live->entries[i].time);
      EXPECT_EQ(snap->entries[i].reader, live->entries[i].reader);
    }
  }
}

class HistoricalFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    SimulationConfig config;
    config.trace.num_objects = 25;
    config.seed = 66;
    sim_ = Simulation::Create(config).value();

    // Record ground truth at a past instant, then keep simulating.
    sim_->Run(250);
    past_time_ = sim_->now();
    past_states_ = sim_->true_states();
    sim_->Run(100);

    EngineConfig engine_config;
    engine_config.seed = 5;
    engine_ = std::make_unique<HistoricalEngine>(
        &sim_->graph(), &sim_->plan(), &sim_->anchors(), &sim_->anchor_graph(),
        &sim_->deployment(), &sim_->deployment_graph(), &sim_->history(),
        engine_config);
  }

  std::unique_ptr<Simulation> sim_;
  std::unique_ptr<HistoricalEngine> engine_;
  int64_t past_time_ = 0;
  std::vector<TrueObjectState> past_states_;
};

TEST_F(HistoricalFixture, RangeQueryAtPastTimeFindsPastOccupants) {
  // Query windows around where objects actually WERE at past_time_: the
  // historical engine should assign them substantial probability.
  int scored = 0;
  double prob_sum = 0.0;
  for (const TrueObjectState& s : past_states_) {
    const auto snap = sim_->history().SnapshotAt(s.id, past_time_);
    if (!snap.has_value()) continue;
    if (past_time_ - snap->LastTime() > 20) continue;  // Stale: skip.
    const Rect window = Rect::FromCenter(s.pos, 12, 12);
    const QueryResult res = engine_->EvaluateRangeAt(window, past_time_);
    prob_sum += res.ProbabilityOf(s.id);
    ++scored;
  }
  ASSERT_GT(scored, 3);
  EXPECT_GT(prob_sum / scored, 0.5);
}

TEST_F(HistoricalFixture, HistoricalDistributionsNormalized) {
  for (ObjectId id : sim_->history().KnownObjects()) {
    const AnchorDistribution* dist = engine_->InferObjectAt(id, past_time_);
    if (dist == nullptr) continue;
    EXPECT_NEAR(dist->TotalProbability(), 1.0, 1e-9);
  }
}

TEST_F(HistoricalFixture, KnnAtPastTimeUsesPastPositions) {
  // Pick an object fresh at past_time_ and ask for its own 1NN around its
  // past position: it should be in the answer.
  for (const TrueObjectState& s : past_states_) {
    const auto snap = sim_->history().SnapshotAt(s.id, past_time_);
    if (!snap.has_value() || past_time_ - snap->LastTime() > 5) continue;
    const KnnResult res = engine_->EvaluateKnnAt(s.pos, 1, past_time_);
    const auto top = res.result.TopObjects(3);
    EXPECT_TRUE(std::find(top.begin(), top.end(), s.id) != top.end())
        << "object " << s.id << " missing from its own historical 1NN";
    return;  // One fresh object suffices.
  }
  GTEST_SKIP() << "no fresh object at the recorded timestamp";
}

TEST_F(HistoricalFixture, DifferentTimesGiveDifferentAnswers) {
  const Rect window =
      Rect::FromCenter(sim_->deployment().reader(9).pos, 14, 14);
  const QueryResult then = engine_->EvaluateRangeAt(window, past_time_);
  const QueryResult now = engine_->EvaluateRangeAt(window, sim_->now());
  // The building's occupancy moved in 100 s; results should differ.
  bool differs = then.objects.size() != now.objects.size();
  for (const auto& [id, p] : then.objects) {
    differs |= std::fabs(now.ProbabilityOf(id) - p) > 1e-6;
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace ipqs
