#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "floorplan/office_generator.h"
#include "graph/anchor_graph.h"
#include "graph/graph_builder.h"
#include "symbolic/deployment_graph.h"
#include "symbolic/symbolic_inference.h"

namespace ipqs {
namespace {

class SymbolicFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    plan_ = GenerateOffice(OfficeConfig{}).value();
    graph_ = BuildWalkingGraph(plan_).value();
    anchors_ = std::make_unique<AnchorPointIndex>(
        AnchorPointIndex::Build(graph_, plan_, 1.0));
    anchor_graph_ =
        std::make_unique<AnchorGraph>(AnchorGraph::Build(graph_, *anchors_));
    deployment_ = Deployment::UniformOnHallways(plan_, graph_, 19, 2.0).value();
    dg_ = std::make_unique<DeploymentGraph>(
        DeploymentGraph::Build(*anchors_, *anchor_graph_, deployment_));
    inference_ = std::make_unique<SymbolicInference>(
        anchors_.get(), anchor_graph_.get(), &deployment_, dg_.get(),
        SymbolicConfig{});
  }

  DataCollector::ObjectHistory HistoryAt(ReaderId reader, int64_t time) {
    DataCollector::ObjectHistory h;
    h.entries = {{time, reader}};
    h.current_device = reader;
    return h;
  }

  FloorPlan plan_;
  WalkingGraph graph_;
  std::unique_ptr<AnchorPointIndex> anchors_;
  std::unique_ptr<AnchorGraph> anchor_graph_;
  Deployment deployment_;
  std::unique_ptr<DeploymentGraph> dg_;
  std::unique_ptr<SymbolicInference> inference_;
};

TEST_F(SymbolicFixture, EveryAnchorIsZonedOrCelled) {
  for (AnchorId a = 0; a < anchors_->num_anchors(); ++a) {
    const bool covered = dg_->CoveringReader(a) != kInvalidId;
    const bool in_cell = dg_->CellOf(a) != kInvalidId;
    EXPECT_NE(covered, in_cell) << "anchor " << a;
  }
}

TEST_F(SymbolicFixture, CoveredAnchorsMatchDeployment) {
  for (AnchorId a = 0; a < anchors_->num_anchors(); ++a) {
    const auto covering = deployment_.FirstCovering(anchors_->anchor(a).pos);
    EXPECT_EQ(dg_->CoveringReader(a),
              covering.has_value() ? *covering : kInvalidId);
  }
}

TEST_F(SymbolicFixture, CellsPartitionFreeAnchors) {
  std::set<AnchorId> seen;
  for (CellId c = 0; c < dg_->num_cells(); ++c) {
    for (AnchorId a : dg_->CellAnchors(c)) {
      EXPECT_EQ(dg_->CellOf(a), c);
      EXPECT_TRUE(seen.insert(a).second) << "anchor in two cells";
    }
  }
  int free_anchors = 0;
  for (AnchorId a = 0; a < anchors_->num_anchors(); ++a) {
    free_anchors += dg_->CoveringReader(a) == kInvalidId;
  }
  EXPECT_EQ(static_cast<int>(seen.size()), free_anchors);
}

TEST_F(SymbolicFixture, ReadersPartitionHallways) {
  // 19 readers on the hallway skeleton produce many separate cells: with
  // full-width coverage each reader splits its hallway locally.
  EXPECT_GT(dg_->num_cells(), 10);
  // Every reader borders at least one cell.
  for (ReaderId r = 0; r < deployment_.num_readers(); ++r) {
    EXPECT_FALSE(dg_->CellsAdjacentToReader(r).empty()) << "reader " << r;
  }
}

TEST_F(SymbolicFixture, CurrentlyObservedUniformOverReaderZone) {
  const AnchorDistribution dist = inference_->Infer(HistoryAt(4, 100), 100);
  EXPECT_FALSE(dist.empty());
  EXPECT_NEAR(dist.TotalProbability(), 1.0, 1e-9);
  double uniform = -1.0;
  for (const auto& [anchor, p] : dist.entries()) {
    EXPECT_EQ(dg_->CoveringReader(anchor), 4);
    if (uniform < 0.0) uniform = p;
    EXPECT_DOUBLE_EQ(p, uniform);
  }
}

TEST_F(SymbolicFixture, AfterLeavingExcludesReaderZones) {
  const AnchorDistribution dist = inference_->Infer(HistoryAt(4, 100), 110);
  EXPECT_FALSE(dist.empty());
  for (const auto& [anchor, p] : dist.entries()) {
    EXPECT_EQ(dg_->CoveringReader(anchor), kInvalidId);
    EXPECT_GT(p, 0.0);
  }
}

TEST_F(SymbolicFixture, ReachableRegionGrowsWithTime) {
  const AnchorDistribution early = inference_->Infer(HistoryAt(4, 100), 103);
  const AnchorDistribution late = inference_->Infer(HistoryAt(4, 100), 130);
  EXPECT_GT(late.support_size(), early.support_size());
}

TEST_F(SymbolicFixture, ReachableRegionRespectsSpeedBudget) {
  const int64_t elapsed = 8;
  const AnchorDistribution dist =
      inference_->Infer(HistoryAt(4, 100), 100 + elapsed);
  const Reader& d = deployment_.reader(4);
  const double budget =
      d.range + SymbolicConfig{}.max_speed * static_cast<double>(elapsed);
  for (const auto& [anchor, _] : dist.entries()) {
    // Euclidean distance lower-bounds network distance.
    EXPECT_LE(Distance(anchors_->anchor(anchor).pos, d.pos), budget + 1e-6);
  }
}

TEST_F(SymbolicFixture, RegionDoesNotLeakPastNeighborReaders) {
  // After a long absence the reachable set must still exclude everything
  // beyond the adjacent readers' zones along the same hallway, except what
  // is reachable around them through open space. With full-width zones,
  // anchors strictly behind a neighboring reader (網络-wise) are excluded
  // unless another route exists. Reached anchors must all belong to cells
  // adjacent to the last detecting reader.
  const AnchorDistribution dist = inference_->Infer(HistoryAt(4, 100), 400);
  const auto& adjacent = dg_->CellsAdjacentToReader(4);
  for (const auto& [anchor, _] : dist.entries()) {
    const CellId cell = dg_->CellOf(anchor);
    EXPECT_TRUE(std::find(adjacent.begin(), adjacent.end(), cell) !=
                adjacent.end())
        << "anchor " << anchor << " escaped to non-adjacent cell " << cell;
  }
}

TEST_F(SymbolicFixture, UniformOverReachableSet) {
  const AnchorDistribution dist = inference_->Infer(HistoryAt(0, 100), 120);
  ASSERT_FALSE(dist.empty());
  const double expect = 1.0 / static_cast<double>(dist.support_size());
  for (const auto& [_, p] : dist.entries()) {
    EXPECT_DOUBLE_EQ(p, expect);
  }
}

TEST_F(SymbolicFixture, TinyBudgetFallsBackToReaderZone) {
  // One second after the last reading the object may not yet have cleared
  // the zone; the distribution must never be empty.
  const AnchorDistribution dist = inference_->Infer(HistoryAt(4, 100), 101);
  EXPECT_FALSE(dist.empty());
  EXPECT_NEAR(dist.TotalProbability(), 1.0, 1e-9);
}

}  // namespace
}  // namespace ipqs
