// DistanceIndex: the shared LRU store of one-to-all distance tables behind
// kNN pruning. Correctness = every table it hands out is bit-identical to
// a freshly computed one; the rest is cache mechanics (hits, eviction,
// pinning, canonical keys) and thread safety (the TSan CI job runs this
// suite).

#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "floorplan/office_generator.h"
#include "graph/distance_index.h"
#include "graph/graph_builder.h"

namespace ipqs {
namespace {

class DistanceIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto plan = GenerateOffice(OfficeConfig{});
    ASSERT_TRUE(plan.ok());
    auto graph = BuildWalkingGraph(*plan);
    ASSERT_TRUE(graph.ok());
    graph_ = std::make_unique<WalkingGraph>(std::move(*graph));
  }

  GraphLocation LocOn(EdgeId e, double frac) const {
    return GraphLocation{e, graph_->edge(e).length * frac};
  }

  std::unique_ptr<WalkingGraph> graph_;
};

TEST_F(DistanceIndexTest, LookupComputesOnceThenHits) {
  DistanceIndex index(graph_.get());
  const GraphLocation src = LocOn(3, 0.25);
  const auto first = index.Lookup(src);
  const auto second = index.Lookup(src);
  EXPECT_EQ(first.get(), second.get());  // One resident table, shared.
  const DistanceIndex::Stats stats = index.stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_DOUBLE_EQ(stats.HitRate(), 0.5);
}

TEST_F(DistanceIndexTest, TablesMatchDirectComputation) {
  DistanceIndex index(graph_.get());
  const GraphLocation src = LocOn(5, 0.5);
  const auto cached = index.Lookup(src);
  const OneToAllDistances direct(*graph_, src);
  for (EdgeId e = 0; e < graph_->num_edges(); e += 3) {
    const GraphLocation to = LocOn(e, 0.5);
    EXPECT_EQ(cached->ToLocation(to), direct.ToLocation(to)) << "edge " << e;
  }
}

TEST_F(DistanceIndexTest, CanonicalizeClampsOffsets) {
  DistanceIndex index(graph_.get());
  const double len = graph_->edge(4).length;
  // Interior locations are already canonical.
  EXPECT_EQ(index.Canonicalize({4, len / 2}), (GraphLocation{4, len / 2}));
  // Out-of-range offsets clamp onto the edge (and then follow the same
  // endpoint rewriting as an exact endpoint).
  EXPECT_EQ(index.Canonicalize({4, len + 5.0}), index.Canonicalize({4, len}));
  EXPECT_EQ(index.Canonicalize({4, -3.0}), index.Canonicalize({4, 0.0}));
}

TEST_F(DistanceIndexTest, NodeLocationsShareOneEntryAcrossIncidentEdges) {
  DistanceIndex index(graph_.get());
  // Edge 0's endpoint b is also an endpoint of some other edge; spell the
  // same physical node through both edges and expect one cache entry.
  const Edge& e0 = graph_->edge(0);
  const NodeId shared = e0.b;
  ASSERT_GE(graph_->node(shared).edges.size(), 2u);
  EdgeId other = kInvalidId;
  for (EdgeId eid : graph_->node(shared).edges) {
    if (eid != 0) {
      other = eid;
    }
  }
  ASSERT_NE(other, kInvalidId);
  const GraphLocation via_e0{0, e0.length};
  const GraphLocation via_other{other, graph_->OffsetOfNode(other, shared)};
  EXPECT_EQ(index.Canonicalize(via_e0), index.Canonicalize(via_other));
  const auto t0 = index.Lookup(via_e0);
  const auto t1 = index.Lookup(via_other);
  EXPECT_EQ(t0.get(), t1.get());
  EXPECT_EQ(index.stats().entries, 1u);
}

TEST_F(DistanceIndexTest, LruEvictsButStaysCorrect) {
  // Tiny capacity: one unpinned entry per shard. Sweeping many sources
  // must evict, and evicted sources recompute to the same values.
  DistanceIndex index(graph_.get(), /*capacity=*/16);
  const int sweep = std::min<int>(graph_->num_edges(), 64);
  for (EdgeId e = 0; e < sweep; ++e) {
    index.Lookup(LocOn(e, 0.25));
  }
  const DistanceIndex::Stats stats = index.stats();
  EXPECT_GT(stats.evictions, 0);
  EXPECT_LE(stats.entries, 16u);
  const GraphLocation src = LocOn(0, 0.25);
  const OneToAllDistances direct(*graph_, src);
  EXPECT_EQ(index.Lookup(src)->ToLocation(LocOn(7, 0.5)),
            direct.ToLocation(LocOn(7, 0.5)));
}

TEST_F(DistanceIndexTest, CapacityBoundsUnpinnedEntriesGlobally) {
  // Regression: capacity is a GLOBAL budget over all shards, not a
  // per-shard one. With capacity == key count, nothing may evict no
  // matter how the hash skews keys across shards (the old per-shard
  // accounting gave each shard capacity/16 and evicted under skew).
  const int sweep = std::min<int>(graph_->num_edges(), 64);
  ASSERT_GT(sweep, 16);  // Enough keys that per-shard skew would show.
  DistanceIndex index(graph_.get(), /*capacity=*/static_cast<size_t>(sweep));
  for (EdgeId e = 0; e < sweep; ++e) {
    index.Lookup(LocOn(e, 0.25));
  }
  const DistanceIndex::Stats stats = index.stats();
  EXPECT_EQ(stats.evictions, 0);
  EXPECT_EQ(stats.entries, static_cast<size_t>(sweep));
}

TEST_F(DistanceIndexTest, TinyCapacityStaysNearBudgetUnderSkew) {
  // capacity below the shard count: the cross-shard sweep drains down to
  // at most one resident unpinned entry per shard.
  DistanceIndex index(graph_.get(), /*capacity=*/4);
  for (EdgeId e = 0; e < std::min<int>(graph_->num_edges(), 64); ++e) {
    index.Lookup(LocOn(e, 0.6));
  }
  const DistanceIndex::Stats stats = index.stats();
  EXPECT_GT(stats.evictions, 0);
  EXPECT_LE(stats.entries, 16u);  // One per shard at worst.
  // Evicted keys still recompute to correct tables.
  const GraphLocation src = LocOn(3, 0.6);
  const OneToAllDistances direct(*graph_, src);
  EXPECT_EQ(index.Lookup(src)->ToLocation(LocOn(11, 0.5)),
            direct.ToLocation(LocOn(11, 0.5)));
}

TEST_F(DistanceIndexTest, RacingMissesCountAsRaceDrops) {
  // Many threads race one cold key: every racer misses and computes, one
  // insert lands, the rest are race drops — redundant work, not lost
  // cache space — and the corrected hit rate credits them.
  DistanceIndex index(graph_.get());
  const GraphLocation src = LocOn(8, 0.5);
  const int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] { index.Lookup(src); });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  const DistanceIndex::Stats stats = index.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GE(stats.misses, 1);
  // Invariant regardless of interleaving: every miss after the first
  // resident insert is a race drop.
  EXPECT_EQ(stats.race_drops, stats.misses - 1);
  EXPECT_EQ(stats.hits + stats.misses, kThreads);
  EXPECT_DOUBLE_EQ(stats.HitRate(),
                   static_cast<double>(kThreads - 1) / kThreads);
}

TEST_F(DistanceIndexTest, PinnedEntriesSurviveEvictionPressure) {
  DistanceIndex index(graph_.get(), /*capacity=*/16);
  const GraphLocation pinned_src = LocOn(2, 0.75);
  index.Pin(pinned_src);
  EXPECT_GE(index.stats().pinned, 1u);
  const auto before = index.Lookup(pinned_src);

  for (EdgeId e = 0; e < std::min<int>(graph_->num_edges(), 64); ++e) {
    index.Lookup(LocOn(e, 0.3));
  }
  EXPECT_GT(index.stats().evictions, 0);

  // Still resident: the same table object, served as a hit.
  const int64_t hits_before = index.stats().hits;
  const auto after = index.Lookup(pinned_src);
  EXPECT_EQ(before.get(), after.get());
  EXPECT_EQ(index.stats().hits, hits_before + 1);
}

TEST_F(DistanceIndexTest, PinPromotesExistingEntryInPlace) {
  DistanceIndex index(graph_.get());
  const GraphLocation src = LocOn(6, 0.5);
  const auto unpinned = index.Lookup(src);
  EXPECT_EQ(index.stats().pinned, 0u);
  index.Pin(src);
  const DistanceIndex::Stats stats = index.stats();
  EXPECT_EQ(stats.pinned, 1u);
  EXPECT_EQ(stats.entries, 1u);  // Promoted, not duplicated.
  EXPECT_EQ(index.Lookup(src).get(), unpinned.get());
}

TEST_F(DistanceIndexTest, ConcurrentLookupsShareTables) {
  // Hammered from several threads (the TSan job's main target): every
  // thread must read consistent tables, and once resident a key serves
  // one shared table to everyone.
  DistanceIndex index(graph_.get(), /*capacity=*/256);
  const int kThreads = 4;
  const int kEdges = std::min<int>(graph_->num_edges(), 24);
  std::vector<std::vector<std::shared_ptr<const OneToAllDistances>>> seen(
      kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 3; ++round) {
        for (EdgeId e = 0; e < kEdges; ++e) {
          seen[t].push_back(index.Lookup(LocOn(e, 0.5)));
        }
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  // The LAST round is past every race: all threads hold the resident
  // table for each key.
  for (int e = 0; e < kEdges; ++e) {
    const auto& resident = seen[0][2 * kEdges + e];
    for (int t = 1; t < kThreads; ++t) {
      EXPECT_EQ(seen[t][2 * kEdges + e].get(), resident.get())
          << "edge " << e << " thread " << t;
    }
  }
  const OneToAllDistances direct(*graph_, LocOn(1, 0.5));
  EXPECT_EQ(index.Lookup(LocOn(1, 0.5))->ToLocation(LocOn(9, 0.5)),
            direct.ToLocation(LocOn(9, 0.5)));
}

}  // namespace
}  // namespace ipqs
