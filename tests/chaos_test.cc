// Chaos suite (fault-injection framework): the FaultInjector must be a
// pure, deterministic transform of the clean reading stream, the hardened
// ingestion path must survive every fault channel without crashing or
// corrupting state, and accuracy under a degraded stream must stay inside
// a pinned envelope. Labeled `chaos` (and `statistical`) in ctest; CI runs
// it under ASan/UBSan.

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "faults/fault_injector.h"
#include "health/reader_health.h"
#include "query/query_engine.h"
#include "query/subscription.h"
#include "sim/experiment.h"
#include "sim/simulation.h"

namespace ipqs {
namespace {

// ---------------------------------------------------------------------------
// FaultInjector as a pure function of (plan, clean stream).

// A synthetic clean stream: `readers` readers each see one of `objects`
// tags per second (round-robin), for `seconds` seconds.
std::vector<std::vector<RawReading>> SyntheticStream(int seconds, int readers,
                                                     int objects) {
  std::vector<std::vector<RawReading>> batches;
  for (int t = 1; t <= seconds; ++t) {
    std::vector<RawReading> batch;
    for (int r = 0; r < readers; ++r) {
      RawReading reading;
      reading.object = static_cast<ObjectId>((t + r) % objects);
      reading.reader = static_cast<ReaderId>(r);
      reading.time = t;
      batch.push_back(reading);
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

FaultPlan NoisyPlan(uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.dropout_rate = 0.15;
  plan.duplicate_rate = 0.1;
  plan.reorder_rate = 0.1;
  plan.batch_delay_rate = 0.05;
  plan.noise_burst_rate = 0.05;
  plan.max_clock_skew_seconds = 1;
  return plan;
}

bool SameReading(const RawReading& a, const RawReading& b) {
  return a.object == b.object && a.reader == b.reader && a.time == b.time;
}

TEST(FaultInjectorPurity, IdenticalPlanGivesByteIdenticalDelivery) {
  const auto batches = SyntheticStream(50, 4, 6);
  FaultInjector a(NoisyPlan(7), 4);
  FaultInjector b(NoisyPlan(7), 4);
  for (size_t i = 0; i < batches.size(); ++i) {
    const int64_t t = batches[i].front().time;
    const auto da = a.Deliver(batches[i], t);
    const auto db = b.Deliver(batches[i], t);
    ASSERT_EQ(da.size(), db.size()) << "second " << t;
    for (size_t j = 0; j < da.size(); ++j) {
      EXPECT_TRUE(SameReading(da[j], db[j])) << "second " << t;
    }
  }
  EXPECT_EQ(a.stats().injected, b.stats().injected);
  EXPECT_EQ(a.pending_size(), b.pending_size());
}

TEST(FaultInjectorPurity, DifferentSeedsProduceDifferentFaults) {
  const auto batches = SyntheticStream(50, 4, 6);
  FaultInjector a(NoisyPlan(7), 4);
  FaultInjector b(NoisyPlan(8), 4);
  bool diverged = false;
  for (const auto& batch : batches) {
    const int64_t t = batch.front().time;
    const auto da = a.Deliver(batch, t);
    const auto db = b.Deliver(batch, t);
    if (da.size() != db.size()) {
      diverged = true;
      continue;
    }
    for (size_t j = 0; j < da.size(); ++j) {
      if (!SameReading(da[j], db[j])) {
        diverged = true;
      }
    }
  }
  EXPECT_TRUE(diverged);
}

TEST(FaultInjectorChannels, DropoutOnlyConservesOrDropsEveryReading) {
  FaultPlan plan;
  plan.seed = 3;
  plan.dropout_rate = 0.3;
  FaultInjector injector(plan, 4);
  const auto batches = SyntheticStream(100, 4, 6);
  int64_t in = 0;
  int64_t out = 0;
  for (const auto& batch : batches) {
    in += static_cast<int64_t>(batch.size());
    out += static_cast<int64_t>(injector.Deliver(batch, batch[0].time).size());
  }
  EXPECT_EQ(injector.pending_size(), 0u);  // Dropout never delays.
  EXPECT_EQ(out + injector.stats().dropped, in);
  // Rate 0.3 over 400 readings: some but not all epochs down.
  EXPECT_GT(injector.stats().dropped, 0);
  EXPECT_LT(injector.stats().dropped, in);
  // The per-(reader, epoch) dropout decision is a pure function of the
  // plan: a fresh injector agrees with the one that processed the stream.
  FaultInjector probe(plan, 4);
  for (int64_t t = 1; t <= 100; t += 7) {
    for (ReaderId r = 0; r < 4; ++r) {
      EXPECT_EQ(probe.ReaderDown(r, t), injector.ReaderDown(r, t));
    }
  }
}

TEST(FaultInjectorChannels, DuplicatesAddExactlyTheCountedCopies) {
  FaultPlan plan;
  plan.seed = 5;
  plan.duplicate_rate = 0.25;
  plan.duplicate_max_delay_seconds = 2;
  FaultInjector injector(plan, 4);
  const auto batches = SyntheticStream(100, 4, 6);
  int64_t in = 0;
  int64_t out = 0;
  for (const auto& batch : batches) {
    in += static_cast<int64_t>(batch.size());
    out += static_cast<int64_t>(injector.Deliver(batch, batch[0].time).size());
  }
  out += static_cast<int64_t>(injector.Pending().size());
  EXPECT_EQ(out, in + injector.stats().duplicated);
  EXPECT_GT(injector.stats().duplicated, 0);
}

TEST(FaultInjectorChannels, ReorderDelaysButNeverLosesReadings) {
  FaultPlan plan;
  plan.seed = 11;
  plan.reorder_rate = 0.3;
  plan.reorder_max_delay_seconds = 3;
  FaultInjector injector(plan, 4);
  const auto batches = SyntheticStream(100, 4, 6);
  int64_t in = 0;
  int64_t out = 0;
  for (const auto& batch : batches) {
    in += static_cast<int64_t>(batch.size());
    out += static_cast<int64_t>(injector.Deliver(batch, batch[0].time).size());
  }
  out += static_cast<int64_t>(injector.Pending().size());
  EXPECT_EQ(out, in);
  EXPECT_GT(injector.stats().delayed, 0);
}

TEST(FaultInjectorChannels, GhostsNameOnlyTagsTheStreamHasSeen) {
  FaultPlan plan;
  plan.seed = 13;
  plan.noise_burst_rate = 0.5;
  FaultInjector injector(plan, 4);
  const auto batches = SyntheticStream(60, 4, 6);
  for (const auto& batch : batches) {
    for (const RawReading& r : injector.Deliver(batch, batch[0].time)) {
      EXPECT_GE(r.object, 0);
      EXPECT_LT(r.object, 6);
    }
  }
  EXPECT_GT(injector.stats().ghosts, 0);
}

// The ground-truth accessors on the plan are pure re-derivations of the
// injector's epoch draws: they must agree with a live injector everywhere,
// and across plan copies (detection tests measure latency against them).
TEST(FaultInjectorChannels, GroundTruthAccessorsMatchInjectorDraws) {
  FaultPlan plan;
  plan.seed = 29;
  plan.dropout_rate = 0.25;
  plan.noise_burst_rate = 0.2;
  FaultInjector injector(plan, 6);
  const FaultPlan copy = plan;
  bool any_down = false;
  bool any_up = false;
  bool any_burst = false;
  for (ReaderId r = 0; r < 6; ++r) {
    for (int64_t t = 0; t <= 400; t += 3) {
      const bool down = plan.ReaderDownAt(r, t);
      EXPECT_EQ(down, injector.ReaderDown(r, t)) << r << "@" << t;
      EXPECT_EQ(down, copy.ReaderDownAt(r, t)) << r << "@" << t;
      EXPECT_EQ(plan.GhostBurstAt(r, t), copy.GhostBurstAt(r, t))
          << r << "@" << t;
      any_down = any_down || down;
      any_up = any_up || !down;
      any_burst = any_burst || plan.GhostBurstAt(r, t);
    }
  }
  EXPECT_TRUE(any_down);
  EXPECT_TRUE(any_up);
  EXPECT_TRUE(any_burst);
  // The epoch grid: the decision is constant within one epoch.
  const int epoch = plan.dropout_epoch_seconds;
  EXPECT_EQ(plan.ReaderDownAt(2, 5 * epoch),
            plan.ReaderDownAt(2, 5 * epoch + epoch - 1));
}

TEST(FaultInjectorChannels, ClockSkewIsConstantPerReaderAndBounded) {
  FaultPlan plan;
  plan.seed = 17;
  plan.max_clock_skew_seconds = 3;
  FaultInjector injector(plan, 8);
  bool any_nonzero = false;
  for (ReaderId r = 0; r < 8; ++r) {
    const int64_t skew = injector.SkewFor(r);
    EXPECT_GE(skew, -3);
    EXPECT_LE(skew, 3);
    EXPECT_EQ(skew, injector.SkewFor(r));  // Constant, not re-drawn.
    any_nonzero = any_nonzero || skew != 0;
  }
  EXPECT_TRUE(any_nonzero);
}

TEST(FaultInjectorChannels, DeliveryIsCanonicallySorted) {
  FaultInjector injector(NoisyPlan(19), 4);
  const auto batches = SyntheticStream(60, 4, 6);
  for (const auto& batch : batches) {
    const auto delivered = injector.Deliver(batch, batch[0].time);
    for (size_t i = 1; i < delivered.size(); ++i) {
      const RawReading& a = delivered[i - 1];
      const RawReading& b = delivered[i];
      const bool ordered =
          a.time < b.time ||
          (a.time == b.time &&
           (a.reader < b.reader ||
            (a.reader == b.reader && a.object <= b.object)));
      EXPECT_TRUE(ordered) << "unsorted delivery at second "
                           << batch[0].time;
    }
  }
}

// ---------------------------------------------------------------------------
// Full-system chaos: one faulted world shared by the determinism tests.

FaultPlan WorldPlan() {
  FaultPlan plan;
  plan.seed = 77;
  plan.dropout_rate = 0.1;
  plan.duplicate_rate = 0.1;
  plan.reorder_rate = 0.1;
  plan.noise_burst_rate = 0.02;
  plan.max_clock_skew_seconds = 1;
  return plan;
}

class ChaosWorld : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SimulationConfig config;
    config.trace.num_objects = 60;
    config.seed = 11;
    config.faults = WorldPlan();
    config.collector.reorder_window_seconds = 3;
    sim_ = Simulation::Create(config).value().release();
    sim_->Run(300);
  }
  static void TearDownTestSuite() {
    delete sim_;
    sim_ = nullptr;
  }

  static QueryEngine MakeEngine(int num_threads) {
    EngineConfig config;
    config.num_threads = num_threads;
    config.use_cache = true;
    config.use_pruning = true;
    config.seed = 99;
    return QueryEngine(&sim_->graph(), &sim_->plan(), &sim_->anchors(),
                       &sim_->anchor_graph(), &sim_->deployment(),
                       &sim_->deployment_graph(), &sim_->collector(), config);
  }

  static Simulation* sim_;
};

Simulation* ChaosWorld::sim_ = nullptr;

TEST_F(ChaosWorld, FaultsActuallyFired) {
  const FaultInjector::Stats stats = sim_->fault_stats();
  EXPECT_GT(stats.injected, 0);
  EXPECT_GT(stats.dropped, 0);
  EXPECT_GT(stats.duplicated, 0);
  EXPECT_GT(stats.delayed, 0);
  EXPECT_GT(stats.skewed, 0);
  // And the collector noticed: the reorder buffer did real work.
  EXPECT_GT(sim_->collector().ingest_stats().reordered, 0);
  EXPECT_GT(sim_->collector().ingest_stats().duplicates_dropped, 0);
}

// The acceptance criterion of the framework: the same (seed, FaultPlan)
// produces byte-identical query answers at 1, 4, and 8 threads.
TEST_F(ChaosWorld, AnswersByteIdenticalAcrossThreadCountsUnderFaults) {
  const int64_t now = sim_->now();
  const Rect window = Rect::FromCenter(sim_->deployment().reader(9).pos,
                                       14, 14);
  const Point q = sim_->deployment().reader(5).pos;

  QueryEngine baseline = MakeEngine(1);
  const QueryResult expected_range = baseline.EvaluateRange(window, now);
  const KnnResult expected_knn = baseline.EvaluateKnn(q, 3, now);
  EXPECT_FALSE(expected_range.objects.empty());

  for (const int threads : {4, 8}) {
    QueryEngine engine = MakeEngine(threads);
    const QueryResult range = engine.EvaluateRange(window, now);
    ASSERT_EQ(expected_range.objects.size(), range.objects.size());
    for (size_t i = 0; i < range.objects.size(); ++i) {
      EXPECT_EQ(expected_range.objects[i].first, range.objects[i].first);
      EXPECT_EQ(expected_range.objects[i].second, range.objects[i].second);
    }
    const KnnResult knn = engine.EvaluateKnn(q, 3, now);
    ASSERT_EQ(expected_knn.result.objects.size(), knn.result.objects.size());
    for (size_t i = 0; i < knn.result.objects.size(); ++i) {
      EXPECT_EQ(expected_knn.result.objects[i].first,
                knn.result.objects[i].first);
      EXPECT_EQ(expected_knn.result.objects[i].second,
                knn.result.objects[i].second);
    }
  }
}

TEST_F(ChaosWorld, IdenticalPlanRebuildsIdenticalCollectorState) {
  SimulationConfig config;
  config.trace.num_objects = 60;
  config.seed = 11;
  config.faults = WorldPlan();
  config.collector.reorder_window_seconds = 3;
  auto replay = Simulation::Create(config).value();
  replay->Run(300);

  const FaultInjector::Stats a = sim_->fault_stats();
  const FaultInjector::Stats b = replay->fault_stats();
  EXPECT_EQ(a.injected, b.injected);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.duplicated, b.duplicated);
  EXPECT_EQ(a.delayed, b.delayed);
  EXPECT_EQ(a.ghosts, b.ghosts);
  EXPECT_EQ(a.skewed, b.skewed);

  std::vector<ObjectId> objects = sim_->collector().KnownObjects();
  std::vector<ObjectId> replay_objects = replay->collector().KnownObjects();
  std::sort(objects.begin(), objects.end());
  std::sort(replay_objects.begin(), replay_objects.end());
  ASSERT_EQ(objects, replay_objects);
  for (ObjectId id : objects) {
    const DataCollector::ObjectHistory* ha = sim_->collector().History(id);
    const DataCollector::ObjectHistory* hb = replay->collector().History(id);
    ASSERT_NE(ha, nullptr);
    ASSERT_NE(hb, nullptr);
    EXPECT_EQ(ha->current_device, hb->current_device) << "object " << id;
    ASSERT_EQ(ha->entries.size(), hb->entries.size()) << "object " << id;
    for (size_t i = 0; i < ha->entries.size(); ++i) {
      EXPECT_EQ(ha->entries[i].time, hb->entries[i].time) << "object " << id;
      EXPECT_EQ(ha->entries[i].reader, hb->entries[i].reader)
          << "object " << id;
    }
  }
}

TEST_F(ChaosWorld, AllDistributionsNormalizedUnderFaults) {
  for (ObjectId id : sim_->collector().KnownObjects()) {
    const AnchorDistribution* pf =
        sim_->pf_engine().InferObject(id, sim_->now());
    ASSERT_NE(pf, nullptr);
    EXPECT_NEAR(pf->TotalProbability(), 1.0, 1e-9) << "object " << id;
    const AnchorDistribution* sm =
        sim_->sm_engine().InferObject(id, sim_->now());
    ASSERT_NE(sm, nullptr);
    EXPECT_NEAR(sm->TotalProbability(), 1.0, 1e-9) << "object " << id;
  }
}

// Histories must stay monotone no matter what the fault layer delivered —
// the filter's replay loop indexes readings by second and assumes it.
// Non-decreasing, not strict: two readers may legitimately see the same
// object in the same second (a handoff), with or without faults.
TEST_F(ChaosWorld, AggregatedHistoriesMonotoneUnderFaults) {
  for (ObjectId id : sim_->collector().KnownObjects()) {
    const DataCollector::ObjectHistory* h = sim_->collector().History(id);
    ASSERT_NE(h, nullptr);
    for (size_t i = 1; i < h->entries.size(); ++i) {
      EXPECT_LE(h->entries[i - 1].time, h->entries[i].time)
          << "object " << id;
    }
  }
}

// ---------------------------------------------------------------------------
// Per-channel survival: each channel alone, at high intensity, must leave
// the system queryable with normalized distributions.

struct ChannelCase {
  const char* name;
  FaultPlan plan;
};

std::vector<ChannelCase> Channels() {
  std::vector<ChannelCase> cases;
  FaultPlan p;
  p.seed = 101;
  p.dropout_rate = 0.5;
  cases.push_back({"dropout", p});
  p = FaultPlan{};
  p.seed = 102;
  p.duplicate_rate = 0.5;
  cases.push_back({"duplicates", p});
  p = FaultPlan{};
  p.seed = 103;
  p.reorder_rate = 0.5;
  p.reorder_max_delay_seconds = 3;
  cases.push_back({"reorder", p});
  p = FaultPlan{};
  p.seed = 104;
  p.batch_delay_rate = 0.3;
  p.batch_delay_seconds = 3;
  cases.push_back({"batch_delay", p});
  p = FaultPlan{};
  p.seed = 105;
  p.noise_burst_rate = 0.3;
  cases.push_back({"noise", p});
  p = FaultPlan{};
  p.seed = 106;
  p.max_clock_skew_seconds = 2;
  cases.push_back({"skew", p});
  return cases;
}

class ChannelSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(ChannelSweep, SystemSurvivesChannelAtHighIntensity) {
  const ChannelCase c = Channels()[GetParam()];
  SimulationConfig config;
  config.trace.num_objects = 20;
  config.seed = 55;
  config.faults = c.plan;
  config.collector.reorder_window_seconds = 4;
  auto sim = Simulation::Create(config).value();
  sim->Run(240);
  EXPECT_GT(sim->fault_stats().injected, 0) << c.name;
  ASSERT_GT(sim->collector().KnownObjects().size(), 0u) << c.name;
  for (ObjectId id : sim->collector().KnownObjects()) {
    const AnchorDistribution* dist =
        sim->pf_engine().InferObject(id, sim->now());
    ASSERT_NE(dist, nullptr) << c.name;
    EXPECT_NEAR(dist->TotalProbability(), 1.0, 1e-9)
        << c.name << " object " << id;
  }
}

INSTANTIATE_TEST_SUITE_P(AllChannels, ChannelSweep,
                         ::testing::Range<size_t>(0, 6));

// With every delay bounded by the collector's reorder window, the buffer
// repairs the stream completely: nothing arrives behind the watermark.
TEST(ReorderRepair, WindowCoveringAllDelaysDropsNothing) {
  SimulationConfig config;
  config.trace.num_objects = 20;
  config.seed = 57;
  config.faults.seed = 9;
  config.faults.reorder_rate = 0.3;
  config.faults.reorder_max_delay_seconds = 2;
  config.faults.batch_delay_rate = 0.2;
  config.faults.batch_delay_seconds = 2;
  config.collector.reorder_window_seconds = 3;
  auto sim = Simulation::Create(config).value();
  sim->Run(240);
  EXPECT_GT(sim->collector().ingest_stats().reordered, 0);
  EXPECT_EQ(sim->collector().ingest_stats().late_dropped, 0);
}

// ---------------------------------------------------------------------------
// Graceful degradation: the stale cutoff and the accuracy envelope.

// Line 6 of Algorithm 2 survives faults: however long the dropout, the
// filter never advances (and never reports) past last reading +
// max_coast_seconds — no stale distribution beyond the cutoff.
TEST(StaleCutoff, FilterNeverCoastsPastMaxCoastSeconds) {
  SimulationConfig config;
  config.trace.num_objects = 20;
  config.seed = 61;
  auto sim = Simulation::Create(config).value();
  sim->Run(200);

  ObjectId victim = kInvalidId;
  for (ObjectId id : sim->collector().KnownObjects()) {
    if (!sim->collector().History(id)->entries.empty()) {
      victim = id;
      break;
    }
  }
  ASSERT_NE(victim, kInvalidId);
  const DataCollector::ObjectHistory& history =
      *sim->collector().History(victim);
  const int64_t last = history.LastTime();

  ParticleFilter filter(&sim->graph(), &sim->deployment(),
                        sim->config().filter);
  Rng rng(5);
  // An hour of silence: the filter must stop at last + 60, not at `now`.
  const FilterResult result = filter.Run(history, last + 3600, rng);
  EXPECT_EQ(result.time, last + sim->config().filter.max_coast_seconds);
  EXPECT_LE(result.seconds_processed,
            static_cast<int>(last - history.FirstTime()) +
                sim->config().filter.max_coast_seconds);
}

// Gap widening (FilterConfig::gap_position_jitter): WidenPosition diffuses
// hallway particles along their edge (clamped), leaves parked particles
// alone, and stays off by default.
TEST(GapWidening, WidenPositionDiffusesHallwayParticlesOnly) {
  SimulationConfig config;
  config.trace.num_objects = 5;
  config.seed = 63;
  auto sim = Simulation::Create(config).value();
  ASSERT_EQ(sim->config().filter.gap_position_jitter, 0.0);  // Off default.

  // A hallway edge long enough that the clamp rarely binds.
  EdgeId hallway = kInvalidId;
  for (EdgeId e = 0; e < static_cast<EdgeId>(sim->graph().num_edges()); ++e) {
    if (sim->graph().edge(e).kind != EdgeKind::kRoomStub &&
        sim->graph().edge(e).length > 4.0) {
      hallway = e;
      break;
    }
  }
  ASSERT_NE(hallway, kInvalidId);
  const double length = sim->graph().edge(hallway).length;

  const MotionModel motion(sim->config().filter.motion);
  Rng rng(5);
  std::vector<Particle> cloud(64);
  for (Particle& p : cloud) {
    p.loc = GraphLocation{hallway, length / 2};
    motion.WidenPosition(sim->graph(), &p, 0.8, rng);
    EXPECT_GE(p.loc.offset, 0.0);
    EXPECT_LE(p.loc.offset, length);
  }
  double var = 0.0;
  for (const Particle& p : cloud) {
    const double d = p.loc.offset - length / 2;
    var += d * d;
  }
  EXPECT_GT(var / cloud.size(), 0.0);  // The cloud actually spread.

  // Parked particles and sigma=0 are no-ops.
  Particle parked;
  parked.loc = GraphLocation{hallway, 1.0};
  parked.in_room = true;
  motion.WidenPosition(sim->graph(), &parked, 0.8, rng);
  EXPECT_EQ(parked.loc.offset, 1.0);
  Particle frozen;
  frozen.loc = GraphLocation{hallway, 1.0};
  motion.WidenPosition(sim->graph(), &frozen, 0.0, rng);
  EXPECT_EQ(frozen.loc.offset, 1.0);
}

// With the jitter armed, a long-gap filter run still completes and yields
// a normalized distribution (the end-to-end smoke for the widening path).
TEST(GapWidening, WidenedFilterRunStaysNormalizedAcrossAGap) {
  SimulationConfig config;
  config.trace.num_objects = 20;
  config.seed = 63;
  auto sim = Simulation::Create(config).value();
  sim->Run(200);

  ObjectId victim = kInvalidId;
  for (ObjectId id : sim->collector().KnownObjects()) {
    if (sim->collector().History(id)->entries.size() >= 2) {
      victim = id;
      break;
    }
  }
  ASSERT_NE(victim, kInvalidId);
  const DataCollector::ObjectHistory& history =
      *sim->collector().History(victim);

  FilterConfig widened = sim->config().filter;
  widened.gap_position_jitter = 0.8;
  ParticleFilter filter(&sim->graph(), &sim->deployment(), widened);
  Rng rng(5);
  const AnchorDistribution dist = filter.Infer(
      sim->anchors(), history, history.LastTime() + 60, rng);
  ASSERT_FALSE(dist.empty());
  EXPECT_NEAR(dist.TotalProbability(), 1.0, 1e-9);
}

// The degradation envelope of the acceptance criterion: under 20% reader
// dropout the PF's kNN hit rate stays within a pinned distance of the
// clean run, and the whole protocol completes without incident.
TEST(DegradationEnvelope, TwentyPercentDropoutStaysInsideEnvelope) {
  ExperimentConfig clean;
  clean.sim.trace.num_objects = 50;
  clean.sim.seed = 19;
  clean.warmup_seconds = 240;
  clean.num_timestamps = 6;
  clean.seconds_between_timestamps = 15;
  clean.range_queries_per_timestamp = 30;
  clean.knn_query_points = 12;

  ExperimentConfig faulted = clean;
  faulted.sim.faults.seed = 23;
  faulted.sim.faults.dropout_rate = 0.2;

  const auto clean_result = Experiment(clean).Run();
  const auto faulted_result = Experiment(faulted).Run();
  ASSERT_TRUE(clean_result.ok());
  ASSERT_TRUE(faulted_result.ok());
  EXPECT_GT(faulted_result->fault_stats.dropped, 0);

  // Pinned envelope: a fifth of all readings lost may cost some kNN hit
  // rate but must not collapse it, and the range KL may not blow up.
  EXPECT_GE(faulted_result->hit_pf, clean_result->hit_pf - 0.15);
  EXPECT_GE(faulted_result->hit_pf, 0.60);
  EXPECT_LE(faulted_result->kl_pf, clean_result->kl_pf + 1.0);
}

// ---------------------------------------------------------------------------
// Reader health under chaos: permanent death, subscription dirtying, and
// the health-gated negative-information envelope.

// A reader that dies permanently mid-run: ingestion never aborts, the
// monitor converges to dead through suspect, and the verdict then stays
// put — a reader that STAYS dead produces no further transitions.
TEST(PermanentReaderDeath, MonitorConvergesToDeadAndStaysThere) {
  ReaderHealthConfig config;
  config.enabled = true;
  config.warmup_seconds = 30;
  DataCollector collector;
  ReaderHealthMonitor monitor(config, &collector, 4);

  const auto batches = SyntheticStream(400, 4, 6);
  int64_t dead_at = -1;
  for (const auto& batch : batches) {
    const int64_t t = batch.front().time;
    for (const RawReading& reading : batch) {
      if (reading.reader == 2 && t > 120) {
        continue;  // Reader 2's power supply gives out at t=120.
      }
      collector.Observe(reading);
    }
    monitor.Tick(t);
    if (dead_at < 0 && monitor.StateOf(2) == ReaderHealth::kDead) {
      dead_at = t;
    }
  }

  EXPECT_EQ(monitor.StateOf(2), ReaderHealth::kDead);
  ASSERT_GT(dead_at, 120);
  EXPECT_LE(dead_at, 120 + 2 * monitor.SuspectWindow(2) +
                         config.dead_after_seconds);
  // Exactly one suspect -> dead descent for reader 2, nothing for the
  // survivors, and no flapping afterwards.
  EXPECT_EQ(monitor.stats().suspect, 1);
  EXPECT_EQ(monitor.stats().dead, 1);
  EXPECT_EQ(monitor.stats().probation, 0);
  std::vector<ReaderHealthTransition> log;
  bool lost = false;
  monitor.ReadTransitions(0, &log, &lost);
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].reader, 2);
  EXPECT_EQ(log[1].reader, 2);
  EXPECT_EQ(log.back().time, dead_at);
}

// Subscriptions over a dying reader's zone go dirty exactly on the ticks
// health transitions fire — steady death never re-dirties them. The world
// is frozen after warmup so health transitions are the ONLY dirt source,
// then the monitor watches the (now silent) collector die.
TEST(PermanentReaderDeath, SubscriptionsDirtyExactlyOnTransitionTicks) {
  SimulationConfig sim_config;
  sim_config.trace.num_objects = 60;
  sim_config.seed = 11;
  sim_config.collector.change_log_capacity = 1 << 14;
  auto sim = Simulation::Create(sim_config).value();

  ReaderHealthConfig health;
  health.enabled = true;
  health.warmup_seconds = 30;
  ReaderHealthMonitor monitor(health, &sim->collector(),
                              sim->deployment().num_readers());
  for (int s = 0; s < 300; ++s) {
    sim->Run(1);
    monitor.Tick(sim->now());
  }
  ASSERT_EQ(monitor.stats().Total(), 0);  // Healthy while the world ran.

  EngineConfig engine_config;
  engine_config.num_threads = 1;
  engine_config.use_cache = true;
  engine_config.use_pruning = true;
  engine_config.seed = 99;
  engine_config.health = &monitor;
  QueryEngine engine(&sim->graph(), &sim->plan(), &sim->anchors(),
                     &sim->anchor_graph(), &sim->deployment(),
                     &sim->deployment_graph(), &sim->collector(),
                     engine_config);
  SubscriptionManager subs(&engine);
  const Rect over_zone =
      Rect::FromCenter(sim->deployment().reader(9).pos, 10, 10);
  const SubscriptionId range_id = subs.AddRange(over_zone);
  const SubscriptionId knn_id =
      subs.AddKnn(sim->deployment().reader(5).pos, 3);

  // Freeze the world and let everything settle: histories age past
  // max_coast, uncertain regions stop growing, ticks become all-skip.
  int64_t now = sim->now();
  for (int s = 0; s < 100; ++s) {
    subs.Tick(++now);
  }
  ASSERT_EQ(subs.Tick(++now).evaluated, 0);

  // Now the monitor notices the silence. Each tick, dirty iff transitions
  // fired: the kNN subscription on any transition, the range subscription
  // when a transitioned reader's zone touches its window.
  uint64_t cursor = monitor.transition_end();
  const double zone = 2.0 * sim->config().activation_range;
  int range_dirty_ticks = 0;
  int transition_ticks = 0;
  for (int s = 0; s < 60; ++s) {
    monitor.Tick(++now);
    std::vector<ReaderHealthTransition> fired;
    bool lost = false;
    cursor = monitor.ReadTransitions(cursor, &fired, &lost);
    ASSERT_FALSE(lost);
    const SubscriptionTickResult tick = subs.Tick(now);
    bool range_dirty = false;
    bool knn_dirty = false;
    for (const SubscriptionUpdate& update : tick.updates) {
      if (update.id == range_id) {
        range_dirty = update.evaluated;
      }
      if (update.id == knn_id) {
        knn_dirty = update.evaluated;
      }
    }
    if (fired.empty()) {
      // Steady state (including steadily dead): nothing re-evaluates.
      EXPECT_FALSE(range_dirty) << "tick " << now;
      EXPECT_FALSE(knn_dirty) << "tick " << now;
      continue;
    }
    ++transition_ticks;
    EXPECT_TRUE(knn_dirty) << "tick " << now;
    bool zone_hit = false;
    for (const ReaderHealthTransition& tr : fired) {
      const Rect r = Rect::FromCenter(sim->deployment().reader(tr.reader).pos,
                                      zone, zone);
      zone_hit = zone_hit || r.Intersects(over_zone);
    }
    if (zone_hit) {
      EXPECT_TRUE(range_dirty) << "tick " << now;
    }
    range_dirty_ticks += range_dirty ? 1 : 0;
  }
  // The descent actually happened (suspect, then dead), and the range
  // subscription was dirtied at most once per transition tick.
  EXPECT_GT(monitor.stats().suspect, 0);
  EXPECT_GT(monitor.stats().dead, 0);
  EXPECT_GE(transition_ticks, 2);
  EXPECT_LE(range_dirty_ticks, transition_ticks);
  EXPECT_GE(range_dirty_ticks, 1);
}

// Health-gated negative information must not cost accuracy under dropout:
// silence from readers the monitor distrusts (or that produced nothing in
// a second) stops being treated as evidence, so the gated run's kNN hit
// rate and range KL stay no worse than the ungated run's.
TEST(DegradationEnvelope, HealthGatedNegativeInfoNoWorseThanUngated) {
  ExperimentConfig ungated;
  ungated.sim.trace.num_objects = 50;
  ungated.sim.seed = 19;
  ungated.sim.filter.measurement.use_negative_information = true;
  ungated.sim.faults.seed = 23;
  ungated.sim.faults.dropout_rate = 0.2;
  ungated.warmup_seconds = 240;
  ungated.num_timestamps = 6;
  ungated.seconds_between_timestamps = 15;
  ungated.range_queries_per_timestamp = 30;
  ungated.knn_query_points = 12;

  ExperimentConfig gated = ungated;
  gated.sim.health.enabled = true;

  const auto ungated_result = Experiment(ungated).Run();
  const auto gated_result = Experiment(gated).Run();
  ASSERT_TRUE(ungated_result.ok());
  ASSERT_TRUE(gated_result.ok());
  EXPECT_GT(gated_result->health_stats.Total(), 0);

  // The monitor's verdict is a query-time snapshot, so a currently-suspect
  // reader also loses its silence discount on replayed seconds where it
  // was actually up — a small information loss that buys the hard
  // guarantee that a dead reader's silence never penalizes particles. The
  // envelope allows that noise-level cost but nothing structural.
  EXPECT_GE(gated_result->hit_pf, ungated_result->hit_pf - 0.02);
  EXPECT_LE(gated_result->kl_pf, ungated_result->kl_pf * 1.05);
}

}  // namespace
}  // namespace ipqs
