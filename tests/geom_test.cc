#include <cmath>

#include <gtest/gtest.h>

#include "geom/point.h"
#include "geom/rect.h"
#include "geom/segment.h"

namespace ipqs {
namespace {

TEST(PointTest, Arithmetic) {
  const Point a{1.0, 2.0};
  const Point b{3.0, -1.0};
  EXPECT_EQ(a + b, Point(4.0, 1.0));
  EXPECT_EQ(a - b, Point(-2.0, 3.0));
  EXPECT_EQ(a * 2.0, Point(2.0, 4.0));
  EXPECT_EQ(b / 2.0, Point(1.5, -0.5));
}

TEST(PointTest, DotAndCross) {
  const Point a{1.0, 0.0};
  const Point b{0.0, 1.0};
  EXPECT_DOUBLE_EQ(a.Dot(b), 0.0);
  EXPECT_DOUBLE_EQ(a.Cross(b), 1.0);
  EXPECT_DOUBLE_EQ(b.Cross(a), -1.0);
}

TEST(PointTest, NormAndDistance) {
  EXPECT_DOUBLE_EQ(Point(3.0, 4.0).Norm(), 5.0);
  EXPECT_DOUBLE_EQ(Point(3.0, 4.0).SquaredNorm(), 25.0);
  EXPECT_DOUBLE_EQ(Distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(SquaredDistance({1, 1}, {4, 5}), 25.0);
}

TEST(PointTest, AlmostEqual) {
  EXPECT_TRUE(AlmostEqual({1.0, 1.0}, {1.0 + 1e-12, 1.0 - 1e-12}));
  EXPECT_FALSE(AlmostEqual({1.0, 1.0}, {1.1, 1.0}));
  EXPECT_TRUE(AlmostEqual({1.0, 1.0}, {1.05, 0.95}, 0.1));
}

TEST(PointTest, Lerp) {
  const Point a{0.0, 0.0};
  const Point b{10.0, 20.0};
  EXPECT_EQ(Lerp(a, b, 0.0), a);
  EXPECT_EQ(Lerp(a, b, 1.0), b);
  EXPECT_EQ(Lerp(a, b, 0.5), Point(5.0, 10.0));
}

TEST(SegmentTest, LengthAndAt) {
  const Segment s({0, 0}, {6, 8});
  EXPECT_DOUBLE_EQ(s.Length(), 10.0);
  EXPECT_EQ(s.At(0.5), Point(3.0, 4.0));
  EXPECT_EQ(s.AtOffset(5.0), Point(3.0, 4.0));
  // Offsets clamp to the segment.
  EXPECT_EQ(s.AtOffset(-5.0), Point(0.0, 0.0));
  EXPECT_EQ(s.AtOffset(50.0), Point(6.0, 8.0));
}

TEST(SegmentTest, DegenerateSegment) {
  const Segment s({2, 2}, {2, 2});
  EXPECT_DOUBLE_EQ(s.Length(), 0.0);
  EXPECT_EQ(s.AtOffset(1.0), Point(2.0, 2.0));
  EXPECT_DOUBLE_EQ(s.ClosestParameter({5, 5}), 0.0);
}

TEST(SegmentTest, ClosestPointInterior) {
  const Segment s({0, 0}, {10, 0});
  EXPECT_EQ(s.ClosestPoint({4.0, 3.0}), Point(4.0, 0.0));
  EXPECT_DOUBLE_EQ(s.DistanceTo({4.0, 3.0}), 3.0);
}

TEST(SegmentTest, ClosestPointClampsToEnds) {
  const Segment s({0, 0}, {10, 0});
  EXPECT_EQ(s.ClosestPoint({-5.0, 0.0}), Point(0.0, 0.0));
  EXPECT_EQ(s.ClosestPoint({15.0, 2.0}), Point(10.0, 0.0));
}

TEST(SegmentTest, IntersectProperCrossing) {
  EXPECT_TRUE(SegmentsIntersect(Segment({0, 0}, {10, 10}),
                                Segment({0, 10}, {10, 0})));
}

TEST(SegmentTest, IntersectSharedEndpoint) {
  EXPECT_TRUE(
      SegmentsIntersect(Segment({0, 0}, {5, 5}), Segment({5, 5}, {9, 1})));
}

TEST(SegmentTest, DisjointSegments) {
  EXPECT_FALSE(
      SegmentsIntersect(Segment({0, 0}, {1, 1}), Segment({2, 2}, {3, 3})));
  EXPECT_FALSE(
      SegmentsIntersect(Segment({0, 0}, {1, 0}), Segment({0, 1}, {1, 1})));
}

TEST(SegmentTest, CollinearOverlap) {
  EXPECT_TRUE(
      SegmentsIntersect(Segment({0, 0}, {5, 0}), Segment({3, 0}, {8, 0})));
  EXPECT_FALSE(
      SegmentsIntersect(Segment({0, 0}, {2, 0}), Segment({3, 0}, {8, 0})));
}

TEST(RectTest, FromCornersNormalizes) {
  const Rect r = Rect::FromCorners({5, 7}, {1, 2});
  EXPECT_DOUBLE_EQ(r.min_x, 1.0);
  EXPECT_DOUBLE_EQ(r.min_y, 2.0);
  EXPECT_DOUBLE_EQ(r.max_x, 5.0);
  EXPECT_DOUBLE_EQ(r.max_y, 7.0);
}

TEST(RectTest, FromCenter) {
  const Rect r = Rect::FromCenter({5, 5}, 4.0, 2.0);
  EXPECT_EQ(r, Rect(3.0, 4.0, 7.0, 6.0));
  EXPECT_EQ(r.Center(), Point(5.0, 5.0));
}

TEST(RectTest, AreaWidthHeight) {
  const Rect r(0, 0, 4, 3);
  EXPECT_DOUBLE_EQ(r.Width(), 4.0);
  EXPECT_DOUBLE_EQ(r.Height(), 3.0);
  EXPECT_DOUBLE_EQ(r.Area(), 12.0);
}

TEST(RectTest, ContainsIsInclusive) {
  const Rect r(0, 0, 4, 3);
  EXPECT_TRUE(r.Contains({0, 0}));
  EXPECT_TRUE(r.Contains({4, 3}));
  EXPECT_TRUE(r.Contains({2, 1}));
  EXPECT_FALSE(r.Contains({4.01, 1}));
  EXPECT_FALSE(r.Contains({2, -0.01}));
}

TEST(RectTest, IntersectsAndIntersection) {
  const Rect a(0, 0, 4, 4);
  const Rect b(2, 2, 6, 6);
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_EQ(a.Intersection(b), Rect(2, 2, 4, 4));

  const Rect c(5, 5, 7, 7);
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_DOUBLE_EQ(a.Intersection(c).Area(), 0.0);
}

TEST(RectTest, TouchingRectsIntersectWithZeroArea) {
  const Rect a(0, 0, 2, 2);
  const Rect b(2, 0, 4, 2);
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_DOUBLE_EQ(a.Intersection(b).Area(), 0.0);
}

TEST(RectTest, DistanceToPoint) {
  const Rect r(0, 0, 4, 4);
  EXPECT_DOUBLE_EQ(r.DistanceTo({2, 2}), 0.0);   // Inside.
  EXPECT_DOUBLE_EQ(r.DistanceTo({6, 2}), 2.0);   // Right of.
  EXPECT_DOUBLE_EQ(r.DistanceTo({7, 8}), 5.0);   // Corner: 3-4-5.
}

TEST(RectTest, ClipSegmentThrough) {
  const Rect r(0, 0, 10, 10);
  double t0;
  double t1;
  ASSERT_TRUE(r.ClipSegment(Segment({-5, 5}, {15, 5}), &t0, &t1));
  EXPECT_DOUBLE_EQ(t0, 0.25);
  EXPECT_DOUBLE_EQ(t1, 0.75);
}

TEST(RectTest, ClipSegmentInside) {
  const Rect r(0, 0, 10, 10);
  double t0;
  double t1;
  ASSERT_TRUE(r.ClipSegment(Segment({2, 2}, {8, 8}), &t0, &t1));
  EXPECT_DOUBLE_EQ(t0, 0.0);
  EXPECT_DOUBLE_EQ(t1, 1.0);
}

TEST(RectTest, ClipSegmentMiss) {
  const Rect r(0, 0, 10, 10);
  double t0;
  double t1;
  EXPECT_FALSE(r.ClipSegment(Segment({-5, 20}, {15, 20}), &t0, &t1));
  EXPECT_FALSE(r.IntersectsSegment(Segment({12, 0}, {12, 10})));
  EXPECT_TRUE(r.IntersectsSegment(Segment({5, -1}, {5, 11})));
}

}  // namespace
}  // namespace ipqs
