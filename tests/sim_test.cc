#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "sim/ascii_map.h"
#include "sim/experiment.h"
#include "sim/ground_truth.h"
#include "sim/metrics.h"
#include "sim/reading_generator.h"
#include "sim/simulation.h"
#include "sim/trace_generator.h"

namespace ipqs {
namespace {

class SimFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    SimulationConfig config;
    config.trace.num_objects = 20;
    config.seed = 123;
    sim_ = Simulation::Create(config).value();
  }

  std::unique_ptr<Simulation> sim_;
};

TEST_F(SimFixture, CreateBuildsPaperWorld) {
  EXPECT_EQ(sim_->plan().rooms().size(), 30u);
  EXPECT_EQ(sim_->plan().hallways().size(), 4u);
  EXPECT_EQ(sim_->deployment().num_readers(), 19);
  EXPECT_TRUE(sim_->deployment().RangesDisjoint());
  EXPECT_TRUE(sim_->graph().Validate().ok());
  EXPECT_EQ(sim_->true_states().size(), 20u);
}

TEST_F(SimFixture, ObjectsStayOnWalkableSpace) {
  sim_->Run(120);
  for (const TrueObjectState& s : sim_->true_states()) {
    if (s.in_room) {
      EXPECT_TRUE(sim_->plan().room(s.room).bounds.Contains(s.pos));
    } else {
      // On a hallway (within width) or on a stub (crossing into a room).
      const Edge& e = sim_->graph().edge(s.loc.edge);
      const Point on_line = sim_->graph().PositionOf(s.loc);
      if (e.kind == EdgeKind::kHallway) {
        const Hallway& h = sim_->plan().hallway(e.hallway);
        EXPECT_LE(h.centerline.DistanceTo(s.pos), h.width / 2 + 1e-9);
      } else {
        EXPECT_LT(Distance(on_line, s.pos), 1e-9);
      }
    }
  }
}

TEST_F(SimFixture, ObjectsRespectSpeedLimit) {
  std::vector<Point> before;
  std::vector<bool> was_in_room;
  for (const TrueObjectState& s : sim_->true_states()) {
    before.push_back(s.pos);
    was_in_room.push_back(s.in_room);
  }
  sim_->Step();
  // While walking, one second covers at most ~max speed of graph distance
  // plus lateral jitter when switching edges (generous bound). Room
  // entry/exit teleports within the room and is excluded.
  for (size_t i = 0; i < before.size(); ++i) {
    const TrueObjectState& s = sim_->true_states()[i];
    if (!s.in_room && !was_in_room[i]) {
      EXPECT_LE(Distance(before[i], s.pos), 6.0);
    }
  }
}

TEST_F(SimFixture, ReadingsFlowIntoCollector) {
  sim_->Run(180);
  EXPECT_GT(sim_->collector().KnownObjects().size(), 5u);
  EXPECT_GT(sim_->reading_stats().detections, 0);
  // The sensing model's miss rate should be near its analytic value.
  const double expected_miss =
      1.0 - SensingModel(sim_->config().sensing).PerSecondDetectionProbability();
  EXPECT_NEAR(sim_->reading_stats().MissRate(), expected_miss, 0.02);
}

TEST_F(SimFixture, DeterministicForSameSeed) {
  SimulationConfig config;
  config.trace.num_objects = 20;
  config.seed = 123;
  auto other = Simulation::Create(config).value();
  other->Run(100);

  auto fresh = Simulation::Create(config).value();
  fresh->Run(100);

  for (size_t i = 0; i < other->true_states().size(); ++i) {
    EXPECT_EQ(other->true_states()[i].pos, fresh->true_states()[i].pos);
  }
  EXPECT_EQ(other->collector().TotalEntriesRetained(),
            fresh->collector().TotalEntriesRetained());
}

TEST_F(SimFixture, DifferentSeedsDiverge) {
  SimulationConfig config;
  config.trace.num_objects = 20;
  config.seed = 999;
  auto other = Simulation::Create(config).value();
  sim_->Run(60);
  other->Run(60);
  int same = 0;
  for (size_t i = 0; i < other->true_states().size(); ++i) {
    same += other->true_states()[i].pos == sim_->true_states()[i].pos;
  }
  EXPECT_LT(same, 3);
}

TEST(TraceGeneratorTest, AllObjectsEventuallyVisitRooms) {
  SimulationConfig config;
  config.trace.num_objects = 10;
  config.seed = 5;
  auto sim = Simulation::Create(config).value();
  std::set<ObjectId> roomed;
  for (int t = 0; t < 600; ++t) {
    sim->Step();
    for (const TrueObjectState& s : sim->true_states()) {
      if (s.in_room) roomed.insert(s.id);
    }
  }
  EXPECT_EQ(roomed.size(), 10u);
}

TEST(TraceGeneratorTest, HallwayStopsKeepObjectsOnHallways) {
  SimulationConfig config;
  config.trace.num_objects = 12;
  config.trace.hallway_stop_probability = 1.0;  // Never enter rooms.
  config.seed = 77;
  auto sim = Simulation::Create(config).value();
  int dwelling_on_hallway = 0;
  for (int t = 0; t < 300; ++t) {
    sim->Step();
    for (const TrueObjectState& s : sim->true_states()) {
      EXPECT_FALSE(s.in_room);
      EXPECT_EQ(s.room, kInvalidId);
      if (s.dwelling) {
        ++dwelling_on_hallway;
        EXPECT_EQ(sim->graph().edge(s.loc.edge).kind, EdgeKind::kHallway);
      }
    }
  }
  EXPECT_GT(dwelling_on_hallway, 0);
}

TEST(TraceGeneratorTest, InRoomImpliesDwelling) {
  SimulationConfig config;
  config.trace.num_objects = 12;
  config.trace.hallway_stop_probability = 0.5;
  config.seed = 78;
  auto sim = Simulation::Create(config).value();
  for (int t = 0; t < 200; ++t) {
    sim->Step();
    for (const TrueObjectState& s : sim->true_states()) {
      if (s.in_room) {
        EXPECT_TRUE(s.dwelling);
        EXPECT_NE(s.room, kInvalidId);
      }
    }
  }
}

TEST(GroundTruthTest, RangeResultExactContainment) {
  std::vector<TrueObjectState> states(3);
  states[0].id = 0;
  states[0].pos = {5, 5};
  states[1].id = 1;
  states[1].pos = {15, 5};
  states[2].id = 2;
  states[2].pos = {10, 10};
  const Rect window(0, 0, 12, 8);
  EXPECT_EQ(GroundTruth::RangeResult(states, window),
            (std::vector<ObjectId>{0}));
}

TEST_F(SimFixture, GroundTruthKnnOrdersByNetworkDistance) {
  sim_->Run(30);
  const GraphLocation q{0, 0.5};
  const auto knn3 =
      sim_->ground_truth().KnnResult(sim_->true_states(), q, 3);
  ASSERT_EQ(knn3.size(), 3u);
  // Distances of the returned objects ascend and lower-bound the rest.
  const OneToAllDistances from_q(sim_->graph(), q);
  std::vector<double> dists;
  for (ObjectId id : knn3) {
    dists.push_back(from_q.ToLocation(sim_->true_states()[id].loc));
  }
  EXPECT_TRUE(std::is_sorted(dists.begin(), dists.end()));
  for (const TrueObjectState& s : sim_->true_states()) {
    if (std::find(knn3.begin(), knn3.end(), s.id) == knn3.end()) {
      EXPECT_GE(from_q.ToLocation(s.loc), dists.back() - 1e-9);
    }
  }
}

TEST(MetricsTest, KlZeroForPerfectPrediction) {
  QueryResult perfect;
  perfect.Add(1, 1.0);
  perfect.Add(2, 1.0);
  const auto kl = RangeKlDivergence({1, 2}, perfect);
  ASSERT_TRUE(kl.has_value());
  EXPECT_NEAR(*kl, 0.0, 1e-6);
}

TEST(MetricsTest, KlUndefinedForEmptyTruth) {
  QueryResult anything;
  anything.Add(1, 0.5);
  EXPECT_EQ(RangeKlDivergence({}, anything), std::nullopt);
}

TEST(MetricsTest, KlPenalizesMissingObjects) {
  QueryResult missing;  // Predicts nothing.
  QueryResult partial;
  partial.Add(1, 1.0);
  const double kl_missing = *RangeKlDivergence({1, 2}, missing);
  const double kl_partial = *RangeKlDivergence({1, 2}, partial);
  EXPECT_GT(kl_missing, kl_partial);
  EXPECT_GT(kl_partial, 0.0);
}

TEST(MetricsTest, KlPenalizesSpuriousMass) {
  QueryResult exact;
  exact.Add(1, 1.0);
  QueryResult diluted;
  diluted.Add(1, 1.0);
  diluted.Add(9, 5.0);  // Lots of mass on a wrong object.
  EXPECT_GT(*RangeKlDivergence({1}, diluted), *RangeKlDivergence({1}, exact));
}

TEST(MetricsTest, KlIsNonNegative) {
  QueryResult q;
  q.Add(1, 0.3);
  q.Add(2, 0.9);
  q.Add(3, 0.2);
  EXPECT_GE(*RangeKlDivergence({1, 2}, q), 0.0);
}

TEST(MetricsTest, HitRateFullAndTopK) {
  QueryResult r;
  r.Add(1, 0.9);
  r.Add(2, 0.8);
  r.Add(3, 0.7);
  r.Add(4, 0.6);
  // Truth {2, 4, 9}: full set hits 2 of 3.
  EXPECT_NEAR(KnnHitRate(r, {2, 4, 9}, 3, false), 2.0 / 3.0, 1e-12);
  // Top-3 = {1,2,3}: hits only object 2.
  EXPECT_NEAR(KnnHitRate(r, {2, 4, 9}, 3, true), 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(KnnHitRate(r, {}, 3, false), 0.0);
}

TEST(MetricsTest, MeanAccumulator) {
  MeanAccumulator acc;
  EXPECT_DOUBLE_EQ(acc.Mean(), 0.0);
  acc.Add(1.0);
  acc.Add(3.0);
  acc.AddOptional(std::nullopt);
  acc.AddOptional(5.0);
  EXPECT_DOUBLE_EQ(acc.Mean(), 3.0);
  EXPECT_EQ(acc.count(), 3);
}

TEST_F(SimFixture, TopKSuccessMetric) {
  // A distribution with all mass at a known anchor: success iff the true
  // position is within tolerance of it.
  const AnchorPoint& ap = sim_->anchors().anchor(0);
  const AnchorDistribution dist =
      AnchorDistribution::FromWeights({{ap.id, 1.0}});
  EXPECT_TRUE(TopKSuccess(sim_->anchors(), dist, ap.pos, 1, 2.0));
  EXPECT_FALSE(TopKSuccess(sim_->anchors(), dist,
                           ap.pos + Point{50.0, 50.0}, 1, 2.0));
}

TEST_F(SimFixture, AsciiMapRendersAllLayers) {
  sim_->Run(60);
  AsciiMap map(sim_->plan(), 1.0);
  map.MarkReaders(sim_->deployment());
  map.MarkObjects(sim_->true_states());
  const Rect window =
      Rect::FromCenter(sim_->deployment().reader(9).pos, 8, 8);
  map.MarkWindow(window);
  const ObjectId obj = sim_->collector().KnownObjects().front();
  const AnchorDistribution* dist = sim_->pf_engine().InferObject(obj, sim_->now());
  ASSERT_NE(dist, nullptr);
  map.MarkDistribution(sim_->anchors(), *dist);

  const std::string rendered = map.Render();
  EXPECT_NE(rendered.find('#'), std::string::npos);   // Walls.
  EXPECT_NE(rendered.find('.'), std::string::npos);   // Room interiors.
  EXPECT_NE(rendered.find('+'), std::string::npos);   // Doors.
  EXPECT_NE(rendered.find('R'), std::string::npos);   // Readers.
  EXPECT_NE(rendered.find('o'), std::string::npos);   // Objects.
  EXPECT_NE(rendered.find('q'), std::string::npos);   // Query window.
  EXPECT_NE(rendered.find('9'), std::string::npos);   // Peak belief decile.

  // Every line has the same width; the map covers the bounding box.
  size_t line_len = rendered.find('\n');
  size_t lines = 0;
  size_t start = 0;
  while (start < rendered.size()) {
    const size_t end = rendered.find('\n', start);
    EXPECT_EQ(end - start, line_len);
    start = end + 1;
    ++lines;
  }
  const Rect box = sim_->plan().BoundingBox();
  EXPECT_GE(static_cast<double>(line_len), box.Width());
  EXPECT_GE(static_cast<double>(lines), box.Height());
}

TEST_F(SimFixture, AsciiMapScaleShrinksOutput) {
  AsciiMap fine(sim_->plan(), 1.0);
  AsciiMap coarse(sim_->plan(), 2.0);
  EXPECT_GT(fine.Render().size(), coarse.Render().size());
}

TEST(ExperimentTest, RandomWindowHasRequestedArea) {
  auto plan = GenerateOffice(OfficeConfig{}).value();
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const Rect w = Experiment::RandomWindow(plan, 0.02, rng);
    EXPECT_NEAR(w.Area(), 0.02 * plan.TotalArea(), 1e-6);
    const double aspect = w.Width() / w.Height();
    EXPECT_GE(aspect, 0.5 - 1e-9);
    EXPECT_LE(aspect, 2.0 + 1e-9);
  }
}

TEST(ExperimentTest, SmallExperimentRunsEndToEnd) {
  ExperimentConfig config;
  config.sim.trace.num_objects = 20;
  config.sim.seed = 17;
  config.warmup_seconds = 120;
  config.num_timestamps = 3;
  config.seconds_between_timestamps = 10;
  config.range_queries_per_timestamp = 10;
  config.knn_query_points = 5;

  Experiment experiment(config);
  const auto result = experiment.Run();
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->range_windows_scored, 0);
  EXPECT_GE(result->kl_pf, 0.0);
  EXPECT_GE(result->kl_sm, 0.0);
  EXPECT_GE(result->hit_pf, 0.0);
  EXPECT_LE(result->hit_pf, 1.0);
  EXPECT_GE(result->top1, 0.0);
  EXPECT_LE(result->top2, 1.0);
  EXPECT_GE(result->top2, result->top1);  // Top-2 can only help.
  EXPECT_GT(result->pf_stats.filter_runs + result->pf_stats.filter_resumes, 0);
}

}  // namespace
}  // namespace ipqs
