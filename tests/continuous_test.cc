#include <algorithm>

#include <gtest/gtest.h>

#include "query/continuous.h"
#include "sim/experiment.h"
#include "sim/simulation.h"

namespace ipqs {
namespace {

class ContinuousFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    SimulationConfig config;
    config.trace.num_objects = 30;
    config.seed = 777;
    sim_ = Simulation::Create(config).value();
    sim_->Run(200);
  }

  std::unique_ptr<Simulation> sim_;
};

TEST_F(ContinuousFixture, RangeMonitorReportsDeltasNotSnapshots) {
  const Rect zone = Rect::FromCenter(sim_->deployment().reader(5).pos, 12, 12);
  ContinuousRangeMonitor monitor(&sim_->pf_engine(), zone, 0.5);

  const RangeUpdate first = monitor.Poll(sim_->now());
  // The very first poll reports every current member as "entered".
  EXPECT_EQ(first.entered.size(), monitor.members().size());
  EXPECT_TRUE(first.left.empty());

  // Polling again without advancing time changes nothing.
  const RangeUpdate again = monitor.Poll(sim_->now());
  EXPECT_TRUE(again.Empty());
}

TEST_F(ContinuousFixture, RangeMonitorMembershipConsistent) {
  const Rect zone = Rect::FromCenter(sim_->deployment().reader(9).pos, 14, 14);
  ContinuousRangeMonitor monitor(&sim_->pf_engine(), zone, 0.4);
  for (int i = 0; i < 5; ++i) {
    sim_->Run(10);
    const RangeUpdate update = monitor.Poll(sim_->now());
    // Every reported entry is a current member above the threshold.
    for (const auto& [id, p] : update.entered) {
      EXPECT_GE(p, 0.4);
      EXPECT_TRUE(monitor.members().count(id));
    }
    // Nobody is simultaneously entered and left.
    for (ObjectId id : update.left) {
      EXPECT_FALSE(monitor.members().count(id));
      const bool also_entered =
          std::any_of(update.entered.begin(), update.entered.end(),
                      [id](const auto& e) { return e.first == id; });
      EXPECT_FALSE(also_entered);
    }
  }
}

TEST_F(ContinuousFixture, KnnMonitorTracksTopK) {
  const Point q = sim_->deployment().reader(9).pos;
  ContinuousKnnMonitor monitor(&sim_->pf_engine(), q, 3);

  const KnnUpdate first = monitor.Poll(sim_->now());
  EXPECT_LE(first.current.size(), 3u);
  EXPECT_EQ(first.entered.size(), first.current.size());

  sim_->Run(20);
  const KnnUpdate second = monitor.Poll(sim_->now());
  EXPECT_LE(second.current.size(), 3u);
  // entered/left are consistent with the reported current set.
  for (ObjectId id : second.entered) {
    EXPECT_TRUE(std::find(second.current.begin(), second.current.end(), id) !=
                second.current.end());
  }
  for (ObjectId id : second.left) {
    EXPECT_TRUE(std::find(second.current.begin(), second.current.end(), id) ==
                second.current.end());
  }
}

TEST(ThresholdKnnTest, FiltersAndSorts) {
  KnnResult result;
  result.result.Add(1, 0.9);
  result.result.Add(2, 0.3);
  result.result.Add(3, 0.6);
  const auto out = ThresholdKnn(result, 0.5);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].first, 1);
  EXPECT_EQ(out[1].first, 3);
  EXPECT_TRUE(ThresholdKnn(result, 0.95).empty());
}

TEST_F(ContinuousFixture, ClosestPairMatchesBruteForce) {
  // Infer everyone, then compare the evaluator against a brute-force MAP
  // pairwise scan.
  const int64_t now = sim_->now();
  for (ObjectId id : sim_->collector().KnownObjects()) {
    sim_->pf_engine().InferObject(id, now);
  }
  const AnchorObjectTable& table = sim_->pf_engine().table();
  ASSERT_GE(table.num_objects(), 2u);

  const ClosestPairEvaluator eval(&sim_->anchors(), &sim_->anchor_graph());
  const auto result = eval.Evaluate(table);
  ASSERT_TRUE(result.ok()) << result.status();

  // Brute force over MAP anchors with exact network distances.
  const auto objects = table.Objects();
  double best = 1e18;
  for (size_t i = 0; i < objects.size(); ++i) {
    const auto ti = table.Distribution(objects[i])->TopK(1);
    if (ti.empty()) continue;
    const AnchorPoint& ai = sim_->anchors().anchor(ti[0]);
    const OneToAllDistances from_i(sim_->graph(),
                                   GraphLocation{ai.edge, ai.offset});
    for (size_t j = i + 1; j < objects.size(); ++j) {
      const auto tj = table.Distribution(objects[j])->TopK(1);
      if (tj.empty()) continue;
      const AnchorPoint& aj = sim_->anchors().anchor(tj[0]);
      best = std::min(best, from_i.ToLocation({aj.edge, aj.offset}));
    }
  }
  // Anchor-graph distances route anchor-to-anchor, matching the brute
  // force within the anchor-spacing slack.
  EXPECT_NEAR(result->distance, best, 2.0 * sim_->anchors().spacing());
  EXPECT_NE(result->first, result->second);
}

TEST_F(ContinuousFixture, ClosestPairNeedsTwoObjects) {
  AnchorObjectTable table;
  const ClosestPairEvaluator eval(&sim_->anchors(), &sim_->anchor_graph());
  EXPECT_FALSE(eval.Evaluate(table).ok());
  table.Set(1, AnchorDistribution::FromWeights({{0, 1.0}}));
  EXPECT_FALSE(eval.Evaluate(table).ok());
  table.Set(2, AnchorDistribution::FromWeights({{5, 1.0}}));
  EXPECT_TRUE(eval.Evaluate(table).ok());
}

}  // namespace
}  // namespace ipqs
