#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "query/continuous.h"
#include "query/subscription.h"
#include "sim/experiment.h"
#include "sim/simulation.h"

namespace ipqs {
namespace {

class ContinuousFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    SimulationConfig config;
    config.trace.num_objects = 30;
    config.seed = 777;
    sim_ = Simulation::Create(config).value();
    sim_->Run(200);
  }

  std::unique_ptr<Simulation> sim_;
};

TEST_F(ContinuousFixture, RangeMonitorReportsDeltasNotSnapshots) {
  const Rect zone = Rect::FromCenter(sim_->deployment().reader(5).pos, 12, 12);
  ContinuousRangeMonitor monitor(&sim_->pf_engine(), zone, 0.5);

  const RangeUpdate first = monitor.Poll(sim_->now());
  // The very first poll reports every current member as "entered".
  EXPECT_EQ(first.entered.size(), monitor.members().size());
  EXPECT_TRUE(first.left.empty());

  // Polling again without advancing time changes nothing.
  const RangeUpdate again = monitor.Poll(sim_->now());
  EXPECT_TRUE(again.Empty());
}

TEST_F(ContinuousFixture, RangeMonitorMembershipConsistent) {
  const Rect zone = Rect::FromCenter(sim_->deployment().reader(9).pos, 14, 14);
  ContinuousRangeMonitor monitor(&sim_->pf_engine(), zone, 0.4);
  for (int i = 0; i < 5; ++i) {
    sim_->Run(10);
    const RangeUpdate update = monitor.Poll(sim_->now());
    // Every reported entry is a current member above the threshold.
    for (const auto& [id, p] : update.entered) {
      EXPECT_GE(p, 0.4);
      EXPECT_TRUE(monitor.members().count(id));
    }
    // Nobody is simultaneously entered and left.
    for (ObjectId id : update.left) {
      EXPECT_FALSE(monitor.members().count(id));
      const bool also_entered =
          std::any_of(update.entered.begin(), update.entered.end(),
                      [id](const auto& e) { return e.first == id; });
      EXPECT_FALSE(also_entered);
    }
  }
}

TEST_F(ContinuousFixture, KnnMonitorTracksTopK) {
  const Point q = sim_->deployment().reader(9).pos;
  ContinuousKnnMonitor monitor(&sim_->pf_engine(), q, 3);

  const KnnUpdate first = monitor.Poll(sim_->now());
  EXPECT_LE(first.current.size(), 3u);
  EXPECT_EQ(first.entered.size(), first.current.size());

  sim_->Run(20);
  const KnnUpdate second = monitor.Poll(sim_->now());
  EXPECT_LE(second.current.size(), 3u);
  // entered/left are consistent with the reported current set.
  for (ObjectId id : second.entered) {
    EXPECT_TRUE(std::find(second.current.begin(), second.current.end(), id) !=
                second.current.end());
  }
  for (ObjectId id : second.left) {
    EXPECT_TRUE(std::find(second.current.begin(), second.current.end(), id) ==
                second.current.end());
  }
}

TEST_F(ContinuousFixture, RangeDeltaReplayReconstructsMembership) {
  // The delta stream is complete: replaying every entered/left from an
  // empty set must reconstruct members()' key set after every poll. (The
  // probabilities of CONTINUING members refresh in place without an event
  // — membership is what the delta stream promises, so the replay tracks
  // the set and the entered probabilities are checked at entry time.)
  const Rect zone = Rect::FromCenter(sim_->deployment().reader(7).pos, 14, 14);
  ContinuousRangeMonitor monitor(&sim_->pf_engine(), zone, 0.4);
  std::set<ObjectId> replay;
  for (int i = 0; i < 6; ++i) {
    const RangeUpdate update = monitor.Poll(sim_->now());
    for (const auto& [id, p] : update.entered) {
      EXPECT_TRUE(replay.insert(id).second) << "entered twice, poll " << i;
      // The reported entry probability is the member's current one.
      EXPECT_EQ(monitor.members().at(id), p) << "poll " << i;
    }
    for (ObjectId id : update.left) {
      EXPECT_EQ(replay.erase(id), 1u) << "left an object never entered";
    }
    std::set<ObjectId> member_keys;
    for (const auto& [id, p] : monitor.members()) {
      member_keys.insert(id);
    }
    EXPECT_TRUE(replay == member_keys) << "poll " << i;
    sim_->Run(10);
  }
}

TEST_F(ContinuousFixture, KnnDeltaReplayAndNoEnterLeaveSamePoll) {
  const Point q = sim_->deployment().reader(3).pos;
  ContinuousKnnMonitor monitor(&sim_->pf_engine(), q, 3);
  std::set<ObjectId> replay;
  for (int i = 0; i < 6; ++i) {
    const KnnUpdate update = monitor.Poll(sim_->now());
    for (ObjectId id : update.entered) {
      // Nobody enters and leaves within one poll.
      EXPECT_TRUE(std::find(update.left.begin(), update.left.end(), id) ==
                  update.left.end())
          << "poll " << i;
      EXPECT_TRUE(replay.insert(id).second) << "entered twice, poll " << i;
    }
    for (ObjectId id : update.left) {
      EXPECT_EQ(replay.erase(id), 1u) << "left without entering, poll " << i;
    }
    // Replaying the deltas reconstructs the current top-k as a set.
    const std::set<ObjectId> current(update.current.begin(),
                                     update.current.end());
    EXPECT_TRUE(replay == current) << "poll " << i;
    sim_->Run(10);
  }
}

TEST_F(ContinuousFixture, SubscriptionBackedMonitorsMatchEngineBacked) {
  // A monitor served from a SubscriptionManager's cached answers must
  // emit the same deltas as one re-running the query itself, given the
  // same engine configuration underneath.
  SubscriptionManager manager(&sim_->pf_engine());
  const Rect zone = Rect::FromCenter(sim_->deployment().reader(5).pos, 12, 12);
  const Point q = sim_->deployment().reader(9).pos;
  ContinuousRangeMonitor sub_range(&manager, zone, 0.5);
  ContinuousKnnMonitor sub_knn(&manager, q, 3);

  for (int i = 0; i < 4; ++i) {
    const int64_t now = sim_->now();
    const RangeUpdate ru = sub_range.Poll(now);
    const KnnUpdate ku = sub_knn.Poll(now);
    // The manager evaluated at `now`; its cached answer diffed through the
    // monitor equals diffing a direct evaluation.
    const BatchAnswer& range_answer = manager.Answer(0);
    const BatchAnswer& knn_answer = manager.Answer(1);
    EXPECT_EQ(range_answer.kind, BatchQuery::Kind::kRange);
    for (const auto& [id, p] : ru.entered) {
      EXPECT_EQ(range_answer.range.ProbabilityOf(id), p);
      EXPECT_TRUE(sub_range.members().count(id));
    }
    EXPECT_EQ(ku.current, knn_answer.knn.result.TopObjects(3));
    // Polling again within the same second is delta-free.
    EXPECT_TRUE(sub_range.Poll(now).Empty());
    EXPECT_TRUE(sub_knn.Poll(now).Empty());
    sim_->Run(10);
  }
  EXPECT_GT(manager.stats().ticks, 0);
}

TEST(DiffRangeResultTest, DeltasSortedByObjectIdRegardlessOfInsertion) {
  // Regression: entered/left order must come from an explicit ObjectId
  // sort, not from the result's (probability-tied) iteration order.
  QueryResult forward;
  forward.Add(2, 0.8);
  forward.Add(5, 0.8);
  forward.Add(9, 0.8);
  QueryResult backward;
  backward.Add(9, 0.8);
  backward.Add(5, 0.8);
  backward.Add(2, 0.8);

  std::map<ObjectId, double> members_a;
  std::map<ObjectId, double> members_b;
  const RangeUpdate a = DiffRangeResult(forward, 0.5, 100, &members_a);
  const RangeUpdate b = DiffRangeResult(backward, 0.5, 100, &members_b);
  ASSERT_EQ(a.entered.size(), 3u);
  EXPECT_EQ(a.entered[0].first, 2);
  EXPECT_EQ(a.entered[1].first, 5);
  EXPECT_EQ(a.entered[2].first, 9);
  for (size_t i = 0; i < a.entered.size(); ++i) {
    EXPECT_EQ(a.entered[i].first, b.entered[i].first);
  }

  // Everyone drops below threshold: `left` is ascending too.
  QueryResult empty;
  const RangeUpdate gone = DiffRangeResult(empty, 0.5, 101, &members_a);
  EXPECT_EQ(gone.left, (std::vector<ObjectId>{2, 5, 9}));
  EXPECT_TRUE(members_a.empty());
}

TEST(DiffKnnResultTest, DeltasSortedByObjectIdOnProbabilityTies) {
  // Regression for the kNN monitor tie-break: with every probability
  // equal, the emitted entered/left sets must still be ascending by
  // ObjectId whatever order the result ranked the tie.
  KnnResult forward;
  forward.result.Add(4, 0.5);
  forward.result.Add(1, 0.5);
  forward.result.Add(8, 0.5);
  KnnResult backward;
  backward.result.Add(8, 0.5);
  backward.result.Add(4, 0.5);
  backward.result.Add(1, 0.5);

  std::vector<ObjectId> current_a;
  std::vector<ObjectId> current_b;
  const KnnUpdate a = DiffKnnResult(forward, 3, 100, &current_a);
  const KnnUpdate b = DiffKnnResult(backward, 3, 100, &current_b);
  EXPECT_EQ(a.entered, (std::vector<ObjectId>{1, 4, 8}));
  EXPECT_EQ(a.entered, b.entered);

  // The tie flips who is in the top-2: left/entered stay id-sorted.
  KnnResult next;
  next.result.Add(9, 0.7);
  next.result.Add(3, 0.7);
  std::vector<ObjectId> current = current_a;
  const KnnUpdate update = DiffKnnResult(next, 2, 101, &current);
  EXPECT_EQ(update.entered, (std::vector<ObjectId>{3, 9}));
  EXPECT_EQ(update.left, (std::vector<ObjectId>{1, 4, 8}));
}

TEST(ThresholdKnnTest, FiltersAndSorts) {
  KnnResult result;
  result.result.Add(1, 0.9);
  result.result.Add(2, 0.3);
  result.result.Add(3, 0.6);
  const auto out = ThresholdKnn(result, 0.5);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].first, 1);
  EXPECT_EQ(out[1].first, 3);
  EXPECT_TRUE(ThresholdKnn(result, 0.95).empty());
}

TEST_F(ContinuousFixture, ClosestPairMatchesBruteForce) {
  // Infer everyone, then compare the evaluator against a brute-force MAP
  // pairwise scan.
  const int64_t now = sim_->now();
  for (ObjectId id : sim_->collector().KnownObjects()) {
    sim_->pf_engine().InferObject(id, now);
  }
  const AnchorObjectTable& table = sim_->pf_engine().table();
  ASSERT_GE(table.num_objects(), 2u);

  const ClosestPairEvaluator eval(&sim_->anchors(), &sim_->anchor_graph());
  const auto result = eval.Evaluate(table);
  ASSERT_TRUE(result.ok()) << result.status();

  // Brute force over MAP anchors with exact network distances.
  const auto objects = table.Objects();
  double best = 1e18;
  for (size_t i = 0; i < objects.size(); ++i) {
    const auto ti = table.Distribution(objects[i])->TopK(1);
    if (ti.empty()) continue;
    const AnchorPoint& ai = sim_->anchors().anchor(ti[0]);
    const OneToAllDistances from_i(sim_->graph(),
                                   GraphLocation{ai.edge, ai.offset});
    for (size_t j = i + 1; j < objects.size(); ++j) {
      const auto tj = table.Distribution(objects[j])->TopK(1);
      if (tj.empty()) continue;
      const AnchorPoint& aj = sim_->anchors().anchor(tj[0]);
      best = std::min(best, from_i.ToLocation({aj.edge, aj.offset}));
    }
  }
  // Anchor-graph distances route anchor-to-anchor, matching the brute
  // force within the anchor-spacing slack.
  EXPECT_NEAR(result->distance, best, 2.0 * sim_->anchors().spacing());
  EXPECT_NE(result->first, result->second);
}

TEST_F(ContinuousFixture, ClosestPairNeedsTwoObjects) {
  AnchorObjectTable table;
  const ClosestPairEvaluator eval(&sim_->anchors(), &sim_->anchor_graph());
  EXPECT_FALSE(eval.Evaluate(table).ok());
  table.Set(1, AnchorDistribution::FromWeights({{0, 1.0}}));
  EXPECT_FALSE(eval.Evaluate(table).ok());
  table.Set(2, AnchorDistribution::FromWeights({{5, 1.0}}));
  EXPECT_TRUE(eval.Evaluate(table).ok());
}

}  // namespace
}  // namespace ipqs
