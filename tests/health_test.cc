// Reader-health suite (src/health/): the monitor's hysteresis state
// machine as a pure function of the per-reader ingest counts, the
// transition log's cursor contract, the silence-trust bridge into the
// measurement model, coverage_degraded annotations on answers, and the
// acceptance criteria — detection latency against the injected ground
// truth and zero false transitions on a clean run. Labeled `health` in
// ctest; CI runs it under ASan/UBSan and TSan.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "faults/fault_plan.h"
#include "filter/particle_filter.h"
#include "health/reader_health.h"
#include "query/query_engine.h"
#include "query/query_scheduler.h"
#include "rfid/data_collector.h"
#include "sim/simulation.h"

namespace ipqs {
namespace {

// ---------------------------------------------------------------------------
// Monitor state machine against a hand-fed collector.

ReaderHealthConfig TightConfig() {
  ReaderHealthConfig config;
  config.enabled = true;
  config.warmup_seconds = 4;
  config.suspect_after_seconds = 2;
  config.dead_after_seconds = 5;
  config.probation_seconds = 2;
  config.anomaly_suspect_count = 2;
  return config;
}

// Drives a collector + monitor pair one simulated second at a time:
// Feed() stages readings for the CURRENT second, Tick() ingests them and
// evaluates the monitor, exactly like Simulation::Step does.
class MonitorHarness {
 public:
  MonitorHarness(const ReaderHealthConfig& config, int num_readers)
      : monitor_(config, &collector_, num_readers) {}

  void Feed(ReaderId reader, int count = 1) {
    for (int i = 0; i < count; ++i) {
      RawReading reading;
      reading.object = static_cast<ObjectId>(i);
      reading.reader = reader;
      reading.time = now_ + 1;
      collector_.Observe(reading);
    }
  }

  int64_t Tick() {
    ++now_;
    collector_.Flush(now_);
    monitor_.Tick(now_);
    return now_;
  }

  int64_t now() const { return now_; }
  const DataCollector& collector() const { return collector_; }
  const ReaderHealthMonitor& monitor() const { return monitor_; }
  ReaderHealthMonitor* mutable_monitor() { return &monitor_; }

 private:
  DataCollector collector_;
  ReaderHealthMonitor monitor_;
  int64_t now_ = 0;
};

TEST(HealthMonitor, WarmupNeverTransitions) {
  MonitorHarness h(TightConfig(), 2);
  // Reader 1 silent through the whole warmup: no verdicts yet.
  for (int t = 0; t < 4; ++t) {
    h.Feed(0);
    h.Tick();
  }
  EXPECT_EQ(h.monitor().stats().Total(), 0);
  EXPECT_EQ(h.monitor().StateOf(1), ReaderHealth::kHealthy);
  EXPECT_EQ(h.monitor().transition_end(), 0u);
}

TEST(HealthMonitor, SilentReaderGoesSuspectThenDead) {
  MonitorHarness h(TightConfig(), 2);
  for (int t = 0; t < 4; ++t) {  // Warmup: both readers at 1 read/sec.
    h.Feed(0);
    h.Feed(1);
    h.Tick();
  }
  EXPECT_DOUBLE_EQ(h.monitor().BaselineRate(0), 1.0);
  EXPECT_EQ(h.monitor().SuspectWindow(0), 2);  // No warmup gaps.

  // Reader 0 dies; reader 1 keeps reporting.
  int64_t suspect_at = -1;
  int64_t dead_at = -1;
  for (int t = 0; t < 10; ++t) {
    h.Feed(1);
    const int64_t now = h.Tick();
    if (suspect_at < 0 && h.monitor().StateOf(0) == ReaderHealth::kSuspect) {
      suspect_at = now;
    }
    if (dead_at < 0 && h.monitor().StateOf(0) == ReaderHealth::kDead) {
      dead_at = now;
    }
  }
  // Silent run hits the 2s window two ticks after death, the 5s dead
  // threshold five ticks after.
  EXPECT_EQ(suspect_at, 6);
  EXPECT_EQ(dead_at, 9);
  EXPECT_EQ(h.monitor().stats().suspect, 1);
  EXPECT_EQ(h.monitor().stats().dead, 1);
  EXPECT_EQ(h.monitor().StateOf(1), ReaderHealth::kHealthy);

  // The transition log recorded both, in order, with the right endpoints.
  std::vector<ReaderHealthTransition> log;
  bool lost = false;
  const uint64_t cursor = h.monitor().ReadTransitions(0, &log, &lost);
  EXPECT_FALSE(lost);
  EXPECT_EQ(cursor, 2u);
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].reader, 0);
  EXPECT_EQ(log[0].from, ReaderHealth::kHealthy);
  EXPECT_EQ(log[0].to, ReaderHealth::kSuspect);
  EXPECT_EQ(log[0].time, suspect_at);
  EXPECT_EQ(log[1].to, ReaderHealth::kDead);
  EXPECT_EQ(log[1].time, dead_at);
}

TEST(HealthMonitor, DeadReaderRecoversThroughProbation) {
  MonitorHarness h(TightConfig(), 1);
  for (int t = 0; t < 4; ++t) {
    h.Feed(0);
    h.Tick();
  }
  for (int t = 0; t < 5; ++t) {
    h.Tick();  // Silence through suspect into dead.
  }
  ASSERT_EQ(h.monitor().StateOf(0), ReaderHealth::kDead);

  // First reading moves it to probation; readings are accepted (flagged),
  // and probation_seconds consecutive active seconds promote it.
  h.Feed(0);
  h.Tick();
  EXPECT_EQ(h.monitor().StateOf(0), ReaderHealth::kProbation);
  EXPECT_TRUE(h.monitor().view().SilenceTrusted(0));
  EXPECT_TRUE(h.monitor().view().Degraded(0));  // Still flagged on answers.
  h.Feed(0);
  h.Tick();
  EXPECT_EQ(h.monitor().StateOf(0), ReaderHealth::kProbation);
  h.Feed(0);
  h.Tick();
  EXPECT_EQ(h.monitor().StateOf(0), ReaderHealth::kHealthy);
  EXPECT_EQ(h.monitor().stats().recovered, 1);
  EXPECT_FALSE(h.monitor().view().AnyDegraded());
}

TEST(HealthMonitor, ProbationRelapsesOnRenewedSilence) {
  MonitorHarness h(TightConfig(), 1);
  for (int t = 0; t < 4; ++t) {
    h.Feed(0);
    h.Tick();
  }
  for (int t = 0; t < 2; ++t) {
    h.Tick();
  }
  ASSERT_EQ(h.monitor().StateOf(0), ReaderHealth::kSuspect);
  h.Feed(0);
  h.Tick();
  ASSERT_EQ(h.monitor().StateOf(0), ReaderHealth::kProbation);
  // One active second is not enough; renewed silence relapses to suspect
  // once the window fills again.
  h.Tick();
  h.Tick();
  EXPECT_EQ(h.monitor().StateOf(0), ReaderHealth::kSuspect);
  EXPECT_EQ(h.monitor().stats().suspect, 2);
}

TEST(HealthMonitor, QuietBaselineReaderNeverTripsTheSilenceDetector) {
  MonitorHarness h(TightConfig(), 2);
  // Reader 1 never reports at all: its baseline is 0 < min_baseline_rate,
  // so its silence is indistinguishable from quiet coverage and the
  // monitor must not false-positive it — ever.
  for (int t = 0; t < 40; ++t) {
    h.Feed(0);
    h.Tick();
  }
  EXPECT_EQ(h.monitor().StateOf(1), ReaderHealth::kHealthy);
  EXPECT_EQ(h.monitor().stats().Total(), 0);
}

TEST(HealthMonitor, BurstyWarmupWidensTheSuspectWindow) {
  ReaderHealthConfig config = TightConfig();
  config.warmup_seconds = 6;
  MonitorHarness h(config, 1);
  // Reads at t=1 and t=4 only: longest warmup gap is 2 silent seconds, so
  // the effective window is max(2, ceil(2.0 * 2) + 1) = 5 — a gap the
  // reader exhibited while provably healthy must not kill it later.
  for (int t = 1; t <= 6; ++t) {
    if (t == 1 || t == 4) {
      h.Feed(0);
    }
    h.Tick();
  }
  EXPECT_EQ(h.monitor().SuspectWindow(0), 5);
  ASSERT_GE(h.monitor().BaselineRate(0), config.min_baseline_rate);

  int64_t suspect_at = -1;
  for (int t = 0; t < 8; ++t) {
    const int64_t now = h.Tick();
    if (suspect_at < 0 && h.monitor().StateOf(0) == ReaderHealth::kSuspect) {
      suspect_at = now;
    }
  }
  EXPECT_EQ(suspect_at, 11);  // Five silent seconds past warmup, not two.
}

TEST(HealthMonitor, GhostBurstMarksAnActiveReaderSuspect) {
  MonitorHarness h(TightConfig(), 1);
  for (int t = 0; t < 4; ++t) {
    h.Feed(0);
    h.Tick();
  }
  // Anomaly threshold is ghost_factor * baseline = 8 reads/sec. Flooding
  // above it for anomaly_suspect_count consecutive seconds trips the
  // detector even though the reader is active.
  h.Feed(0, 20);
  h.Tick();
  EXPECT_EQ(h.monitor().StateOf(0), ReaderHealth::kHealthy);
  h.Feed(0, 20);
  h.Tick();
  EXPECT_EQ(h.monitor().StateOf(0), ReaderHealth::kSuspect);
  // Silence from a flooding reader is NOT trusted by the inference path.
  EXPECT_FALSE(h.monitor().view().SilenceTrusted(0));
  // A normal-rate second recovers it to probation.
  h.Feed(0);
  h.Tick();
  EXPECT_EQ(h.monitor().StateOf(0), ReaderHealth::kProbation);
}

TEST(HealthMonitor, DisabledMonitorIsANoOp) {
  ReaderHealthConfig config;  // enabled = false.
  MonitorHarness h(config, 3);
  for (int t = 0; t < 20; ++t) {
    h.Tick();  // Total silence, but the monitor is off.
  }
  EXPECT_FALSE(h.monitor().enabled());
  EXPECT_EQ(h.monitor().stats().Total(), 0);
  EXPECT_EQ(h.monitor().transition_end(), 0u);
  EXPECT_FALSE(h.monitor().view().AnyDegraded());
}

TEST(HealthMonitor, TransitionLogDrainsIncrementallyAndSignalsLostSync) {
  ReaderHealthConfig config;
  config.enabled = true;
  config.warmup_seconds = 1;
  config.suspect_after_seconds = 1;
  config.dead_after_seconds = 2;
  config.probation_seconds = 1;
  MonitorHarness h(config, 1);
  h.Feed(0);
  h.Tick();  // Warmup: baseline 1 read/sec, window 1.

  // One flap cycle = 3 ticks, 3 transitions: silent -> suspect, active ->
  // probation, active -> healthy.
  auto flap = [&h] {
    h.Tick();
    h.Feed(0);
    h.Tick();
    h.Feed(0);
    h.Tick();
  };

  flap();
  std::vector<ReaderHealthTransition> log;
  bool lost = false;
  uint64_t cursor = h.monitor().ReadTransitions(0, &log, &lost);
  EXPECT_FALSE(lost);
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(cursor, 3u);
  EXPECT_EQ(log[0].to, ReaderHealth::kSuspect);
  EXPECT_EQ(log[1].to, ReaderHealth::kProbation);
  EXPECT_EQ(log[2].to, ReaderHealth::kHealthy);

  // Incremental drain: the next cycle yields exactly the new entries.
  flap();
  log.clear();
  cursor = h.monitor().ReadTransitions(cursor, &log, &lost);
  EXPECT_FALSE(lost);
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(cursor, 6u);

  // Overflow the 1024-entry ring; a stale cursor must report lost sync
  // but still return every retained transition.
  for (int i = 0; i < 400; ++i) {
    flap();
  }
  log.clear();
  const uint64_t end = h.monitor().ReadTransitions(0, &log, &lost);
  EXPECT_TRUE(lost);
  EXPECT_EQ(log.size(), 1024u);
  EXPECT_EQ(end, h.monitor().transition_end());
  EXPECT_EQ(log.back().seq + 1, end);
  // A current cursor stays in sync.
  log.clear();
  h.monitor().ReadTransitions(end, &log, &lost);
  EXPECT_FALSE(lost);
  EXPECT_TRUE(log.empty());
}

TEST(HealthView, OutOfRangeReadersReportHealthy) {
  ReaderHealthView view({ReaderHealth::kHealthy, ReaderHealth::kSuspect,
                         ReaderHealth::kDead, ReaderHealth::kProbation});
  EXPECT_EQ(view.Of(-1), ReaderHealth::kHealthy);
  EXPECT_EQ(view.Of(99), ReaderHealth::kHealthy);
  EXPECT_FALSE(view.Degraded(0));
  EXPECT_TRUE(view.Degraded(1));
  EXPECT_TRUE(view.Degraded(3));  // Probation still flags answers.
  EXPECT_TRUE(view.SilenceTrusted(0));
  EXPECT_FALSE(view.SilenceTrusted(1));
  EXPECT_FALSE(view.SilenceTrusted(2));
  EXPECT_TRUE(view.SilenceTrusted(3));  // Probation is reporting again.
  EXPECT_EQ(view.degraded_count(), 3);
}

// ---------------------------------------------------------------------------
// The silence-trust bridge: per-second collector liveness AND monitor
// verdict (satellite: the negative-information footgun fix).

TEST(SilenceTrust, CollectorLivenessGateUntrustsZeroReadingSeconds) {
  DataCollector collector;
  RawReading reading;
  reading.object = 1;
  reading.reader = 0;
  reading.time = 100;
  collector.Observe(reading);

  const HealthSilenceTrust trust(&collector, nullptr);
  uint8_t mask[2] = {9, 9};
  // Second 100: reader 0 reported, reader 1 did not.
  EXPECT_TRUE(trust.FillSilenceTrust(100, 2, mask));
  EXPECT_EQ(mask[0], 1);
  EXPECT_EQ(mask[1], 0);
  // Second 99 is inside the retention window and nobody reported: no
  // reader's silence is informative.
  EXPECT_TRUE(trust.FillSilenceTrust(99, 2, mask));
  EXPECT_EQ(mask[0], 0);
  EXPECT_EQ(mask[1], 0);
  // Seconds older than the retention window are assumed live (legacy
  // weighting for deep replays): everyone trusted, caller keeps the
  // unmasked kernel.
  const int64_t ancient = 100 - DataCollector::kLivenessWindowSeconds - 10;
  EXPECT_FALSE(trust.FillSilenceTrust(ancient, 2, mask));
  EXPECT_EQ(mask[0], 1);
  EXPECT_EQ(mask[1], 1);
}

TEST(SilenceTrust, MonitorVerdictMasksSuspectReaders) {
  MonitorHarness h(TightConfig(), 2);
  for (int t = 0; t < 4; ++t) {
    h.Feed(0);
    h.Feed(1);
    h.Tick();
  }
  for (int t = 0; t < 2; ++t) {
    h.Feed(1);
    h.Tick();
  }
  ASSERT_EQ(h.monitor().StateOf(0), ReaderHealth::kSuspect);

  // Monitor only (no per-second gate): the suspect reader is untrusted at
  // EVERY second, the healthy one trusted.
  const HealthSilenceTrust trust(nullptr, &h.monitor());
  uint8_t mask[2] = {9, 9};
  EXPECT_TRUE(trust.FillSilenceTrust(3, 2, mask));
  EXPECT_EQ(mask[0], 0);
  EXPECT_EQ(mask[1], 1);

  // Combined with the collector, the per-second gate further untrusts the
  // healthy reader at seconds it produced nothing.
  const HealthSilenceTrust both(&h.collector(), &h.monitor());
  EXPECT_TRUE(both.FillSilenceTrust(h.now() + 50, 2, mask));
  EXPECT_EQ(mask[0], 0);
  EXPECT_EQ(mask[1], 0);
}

TEST(SilenceTrust, NullSourcesTrustEveryReader) {
  const HealthSilenceTrust trust(nullptr, nullptr);
  uint8_t mask[3] = {0, 0, 0};
  EXPECT_FALSE(trust.FillSilenceTrust(5, 3, mask));
  EXPECT_EQ(mask[0], 1);
  EXPECT_EQ(mask[1], 1);
  EXPECT_EQ(mask[2], 1);
}

// ---------------------------------------------------------------------------
// Shared warmed-up world for the inference-path tests.

class HealthWorld : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SimulationConfig config;
    config.trace.num_objects = 60;
    config.seed = 11;
    sim_ = Simulation::Create(config).value().release();
    sim_->Run(300);
  }
  static void TearDownTestSuite() {
    delete sim_;
    sim_ = nullptr;
  }

  static QueryEngine MakeEngine(const ReaderHealthMonitor* health) {
    EngineConfig config;
    config.num_threads = 1;
    config.use_cache = true;
    config.use_pruning = true;
    config.seed = 99;
    config.health = health;
    return QueryEngine(&sim_->graph(), &sim_->plan(), &sim_->anchors(),
                       &sim_->anchor_graph(), &sim_->deployment(),
                       &sim_->deployment_graph(), &sim_->collector(), config);
  }

  // A monitor (over its own collector) that holds exactly `starved`
  // degraded: every reader reports during warmup, then `starved` goes
  // silent until it turns suspect.
  static std::unique_ptr<MonitorHarness> StarvedMonitor(ReaderId starved) {
    const int n = sim_->deployment().num_readers();
    auto h = std::make_unique<MonitorHarness>(TightConfig(), n);
    for (int t = 0; t < 4; ++t) {
      for (ReaderId r = 0; r < n; ++r) {
        h->Feed(r);
      }
      h->Tick();
    }
    while (h->monitor().StateOf(starved) != ReaderHealth::kSuspect) {
      for (ReaderId r = 0; r < n; ++r) {
        if (r != starved) {
          h->Feed(r);
        }
      }
      h->Tick();
    }
    return h;
  }

  static Simulation* sim_;
};

Simulation* HealthWorld::sim_ = nullptr;

// Satellite regression, old vs. new weighting: under the legacy model a
// particle inside a silent reader's zone is discounted; with the reader's
// silence untrusted the discount must vanish — and an all-ones mask must
// stay bit-identical to the unmasked kernel.
TEST_F(HealthWorld, UntrustedReaderZoneGivesNoSilenceDiscount) {
  MeasurementConfig config;
  config.use_negative_information = true;
  config.silent_zone_weight = 0.25;
  const MeasurementModel model(config);
  const Deployment& deployment = sim_->deployment();
  const Point inside = deployment.reader(0).pos;  // Inside its own zone.

  const size_t n = static_cast<size_t>(deployment.num_readers());
  std::vector<uint8_t> all_trusted(n, 1);
  std::vector<uint8_t> zone_untrusted(n, 1);
  zone_untrusted[0] = 0;

  // Old behavior: the discount applies.
  EXPECT_DOUBLE_EQ(model.WeightOnSilence(deployment, inside), 0.25);
  // Masked with everyone trusted: bit-identical to the legacy path.
  EXPECT_EQ(model.WeightOnSilence(deployment, inside),
            model.WeightOnSilence(deployment, inside, all_trusted.data()));
  EXPECT_EQ(model.WeightOnSilence(deployment, inside),
            model.WeightOnSilence(deployment, inside, nullptr));
  // New behavior: the covering reader's silence is uninformative.
  EXPECT_DOUBLE_EQ(
      model.WeightOnSilence(deployment, inside, zone_untrusted.data()), 1.0);
}

TEST_F(HealthWorld, BatchSilenceKernelHonorsTheTrustMask) {
  MeasurementConfig config;
  config.use_negative_information = true;
  config.silent_zone_weight = 0.25;
  const MeasurementModel model(config);
  const Deployment& deployment = sim_->deployment();
  const size_t readers = static_cast<size_t>(deployment.num_readers());

  // A cloud straddling reader 0's zone: its center plus points far outside
  // every zone (the bounding box corner, nudged outward).
  const Point inside = deployment.reader(0).pos;
  const Rect box = sim_->plan().BoundingBox();
  std::vector<double> x = {inside.x, box.max_x + 50.0, inside.x,
                           box.max_x + 60.0};
  std::vector<double> y = {inside.y, box.max_y + 50.0, inside.y,
                           box.max_y + 60.0};
  const size_t n = x.size();

  std::vector<double> legacy(n, 1.0);
  const size_t touched =
      model.WeightOnSilence(deployment, n, x.data(), y.data(), legacy.data());
  EXPECT_EQ(touched, 2u);  // Exactly the two in-zone particles.
  EXPECT_DOUBLE_EQ(legacy[0], 0.25);
  EXPECT_DOUBLE_EQ(legacy[1], 1.0);

  // All-ones mask: bit-identical weights and count.
  std::vector<uint8_t> all_trusted(readers, 1);
  std::vector<double> masked(n, 1.0);
  EXPECT_EQ(model.WeightOnSilence(deployment, n, x.data(), y.data(),
                                  masked.data(), all_trusted.data()),
            touched);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(legacy[i], masked[i]) << i;
  }

  // Reader 0 untrusted: its zone contributes no discount anywhere.
  std::vector<uint8_t> zone_untrusted(readers, 1);
  zone_untrusted[0] = 0;
  std::vector<double> gated(n, 1.0);
  const size_t gated_touched = model.WeightOnSilence(
      deployment, n, x.data(), y.data(), gated.data(), zone_untrusted.data());
  EXPECT_EQ(gated_touched, 0u);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(gated[i], 1.0) << i;
  }
}

// A provider that trusts everyone must leave filter inference bit-identical
// to running with no provider at all (the masked kernel's identity path).
TEST_F(HealthWorld, AllTrustedProviderIsBitIdenticalToLegacyInference) {
  class AllTrusted final : public SilenceTrustProvider {
   public:
    bool FillSilenceTrust(int64_t second, size_t num_readers,
                          uint8_t* mask) const override {
      std::fill(mask, mask + num_readers, uint8_t{1});
      return false;
    }
  };

  ObjectId victim = kInvalidId;
  for (ObjectId id : sim_->collector().KnownObjects()) {
    if (sim_->collector().History(id)->entries.size() >= 3) {
      victim = id;
      break;
    }
  }
  ASSERT_NE(victim, kInvalidId);
  const DataCollector::ObjectHistory& history =
      *sim_->collector().History(victim);

  FilterConfig config = sim_->config().filter;
  config.measurement.use_negative_information = true;
  ParticleFilter legacy(&sim_->graph(), &sim_->deployment(), config);
  ParticleFilter provided(&sim_->graph(), &sim_->deployment(), config);
  const AllTrusted trust;
  provided.SetSilenceTrust(&trust);

  Rng rng_a(5);
  Rng rng_b(5);
  const int64_t now = history.LastTime() + 10;
  const AnchorDistribution a =
      legacy.Infer(sim_->anchors(), history, now, rng_a);
  const AnchorDistribution b =
      provided.Infer(sim_->anchors(), history, now, rng_b);
  ASSERT_EQ(a.support_size(), b.support_size());
  for (const auto& [anchor, p] : a.entries()) {
    EXPECT_EQ(p, b.ProbabilityAt(anchor)) << "anchor " << anchor;
  }
}

// ---------------------------------------------------------------------------
// coverage_degraded annotations on answers.

TEST_F(HealthWorld, RangeOverDegradedReaderZoneIsFlagged) {
  auto h = StarvedMonitor(9);
  QueryEngine engine = MakeEngine(&h->monitor());
  const int64_t now = sim_->now();

  // A window over the starved reader's zone: degraded coverage.
  const Rect over = Rect::FromCenter(sim_->deployment().reader(9).pos, 10, 10);
  const QueryResult flagged = engine.EvaluateRange(over, now);
  EXPECT_TRUE(flagged.coverage_degraded);

  // With a monitor that holds nothing degraded, the same window is clean.
  MonitorHarness clean(TightConfig(), sim_->deployment().num_readers());
  QueryEngine clean_engine = MakeEngine(&clean.monitor());
  EXPECT_FALSE(clean_engine.EvaluateRange(over, now).coverage_degraded);

  // And with no monitor wired at all, the field stays false.
  QueryEngine off = MakeEngine(nullptr);
  EXPECT_FALSE(off.EvaluateRange(over, now).coverage_degraded);
}

TEST_F(HealthWorld, KnnNearDegradedReaderIsFlaggedThroughItsCandidates) {
  // Starve the current device of a known object, then ask for neighbors at
  // that reader's position: the object is a candidate, so the answer's
  // coverage depends on a degraded reader.
  ReaderId device = kInvalidId;
  for (ObjectId id : sim_->collector().KnownObjects()) {
    const ReaderId d = sim_->collector().History(id)->current_device;
    if (d != kInvalidId) {
      device = d;
      break;
    }
  }
  ASSERT_NE(device, kInvalidId);

  auto h = StarvedMonitor(device);
  QueryEngine engine = MakeEngine(&h->monitor());
  const KnnResult knn =
      engine.EvaluateKnn(sim_->deployment().reader(device).pos, 5, sim_->now());
  EXPECT_TRUE(knn.result.coverage_degraded);
}

TEST_F(HealthWorld, SchedulerAnnotatesBatchSlotsLikeTheSerialPath) {
  auto h = StarvedMonitor(9);
  QueryEngine engine = MakeEngine(&h->monitor());
  const int64_t now = sim_->now();
  const Rect over = Rect::FromCenter(sim_->deployment().reader(9).pos, 10, 10);
  const Point q = sim_->deployment().reader(5).pos;

  const QueryResult serial_range = engine.EvaluateRange(over, now);
  const KnnResult serial_knn = engine.EvaluateKnn(q, 3, now);

  QueryScheduler scheduler(&engine);
  const std::vector<BatchAnswer> batch = scheduler.EvaluateBatch(
      {BatchQuery::Range(over), BatchQuery::Knn(q, 3)}, now);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].range.coverage_degraded, serial_range.coverage_degraded);
  EXPECT_EQ(batch[1].knn.result.coverage_degraded,
            serial_knn.result.coverage_degraded);
  EXPECT_TRUE(batch[0].range.coverage_degraded);
}

// ---------------------------------------------------------------------------
// Acceptance criteria against full simulated runs.

// A clean run must produce zero false suspect/dead transitions: natural
// coverage gaps are absorbed by the warmup-widened windows and the
// min-baseline gate.
TEST(HealthAcceptance, CleanRunHasZeroFalseTransitions) {
  SimulationConfig config;
  config.trace.num_objects = 60;
  config.seed = 11;
  config.health.enabled = true;
  auto sim = Simulation::Create(config).value();
  sim->Run(400);
  ASSERT_NE(sim->health_monitor(), nullptr);
  EXPECT_EQ(sim->health_stats().Total(), 0);
  EXPECT_FALSE(sim->health_monitor()->view().AnyDegraded());
}

// Under 20% reader dropout, every silence detection of an injected outage
// lands within twice the reader's effective suspect window of the epoch's
// onset (FaultPlan::ReaderDownAt is the ground truth).
TEST(HealthAcceptance, DetectionLatencyWithinTwiceTheSuspectWindow) {
  SimulationConfig config;
  config.trace.num_objects = 60;
  config.seed = 11;
  config.faults.seed = 23;
  config.faults.dropout_rate = 0.2;
  config.health.enabled = true;
  auto sim = Simulation::Create(config).value();
  sim->Run(400);
  const ReaderHealthMonitor* monitor = sim->health_monitor();
  ASSERT_NE(monitor, nullptr);

  std::vector<ReaderHealthTransition> log;
  bool lost = false;
  monitor->ReadTransitions(0, &log, &lost);
  ASSERT_FALSE(lost);

  const FaultPlan& plan = sim->config().faults;
  int detections = 0;
  for (const ReaderHealthTransition& tr : log) {
    if (tr.to != ReaderHealth::kSuspect ||
        tr.from != ReaderHealth::kHealthy ||
        !plan.ReaderDownAt(tr.reader, tr.time)) {
      continue;  // Recoveries, relapses, or detections of natural silence.
    }
    ++detections;
    int64_t onset = tr.time;
    while (onset > 0 && plan.ReaderDownAt(tr.reader, onset - 1)) {
      --onset;
    }
    const int window = monitor->SuspectWindow(tr.reader);
    ASSERT_GT(window, 0) << "reader " << tr.reader;
    EXPECT_LE(tr.time - onset, 2 * window)
        << "reader " << tr.reader << " detected at " << tr.time
        << " for an outage starting at " << onset;
  }
  // 19 readers x 40 epochs x 20% dropout: plenty of real outages to catch.
  EXPECT_GT(detections, 5);
  EXPECT_GT(sim->health_stats().dead + sim->health_stats().suspect, 0);
}

}  // namespace
}  // namespace ipqs
