#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "floorplan/office_generator.h"
#include "graph/anchor_graph.h"
#include "graph/anchor_points.h"
#include "graph/graph_builder.h"
#include "graph/grid_index.h"
#include "graph/shortest_path.h"

namespace ipqs {
namespace {

class AnchorFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    plan_ = GenerateOffice(OfficeConfig{}).value();
    graph_ = BuildWalkingGraph(plan_).value();
    anchors_ = std::make_unique<AnchorPointIndex>(
        AnchorPointIndex::Build(graph_, plan_, 1.0));
    anchor_graph_ =
        std::make_unique<AnchorGraph>(AnchorGraph::Build(graph_, *anchors_));
  }

  FloorPlan plan_;
  WalkingGraph graph_;
  std::unique_ptr<AnchorPointIndex> anchors_;
  std::unique_ptr<AnchorGraph> anchor_graph_;
};

TEST(GridIndexTest, InsertAndQueryRect) {
  GridIndex grid(Rect(0, 0, 100, 100), 10.0);
  grid.Insert(1, {5, 5});
  grid.Insert(2, {50, 50});
  grid.Insert(3, {95, 95});
  EXPECT_EQ(grid.size(), 3u);

  auto hits = grid.QueryRect(Rect(0, 0, 60, 60));
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, (std::vector<int32_t>{1, 2}));
  EXPECT_TRUE(grid.QueryRect(Rect(60, 0, 80, 40)).empty());
}

TEST(GridIndexTest, QueryRectIsInclusive) {
  GridIndex grid(Rect(0, 0, 10, 10), 2.0);
  grid.Insert(7, {4, 4});
  EXPECT_EQ(grid.QueryRect(Rect(4, 4, 5, 5)).size(), 1u);
  EXPECT_EQ(grid.QueryRect(Rect(3, 3, 4, 4)).size(), 1u);
}

TEST(GridIndexTest, NearestFindsAcrossCells) {
  GridIndex grid(Rect(0, 0, 100, 100), 5.0);
  grid.Insert(1, {10, 10});
  grid.Insert(2, {90, 90});
  EXPECT_EQ(grid.Nearest({20, 20}), 1);
  EXPECT_EQ(grid.Nearest({80, 85}), 2);
  EXPECT_EQ(grid.Nearest({0, 0}), 1);
}

TEST(GridIndexTest, NearestOnEmptyIndex) {
  GridIndex grid(Rect(0, 0, 10, 10), 1.0);
  EXPECT_EQ(grid.Nearest({5, 5}), kInvalidId);
}

TEST(GridIndexTest, PointsOutsideBoundsAreClamped) {
  GridIndex grid(Rect(0, 0, 10, 10), 1.0);
  grid.Insert(1, {-5, -5});
  EXPECT_EQ(grid.Nearest({0, 0}), 1);
  // QueryRect covering the border cell finds it.
  EXPECT_EQ(grid.QueryRect(Rect(-10, -10, 0.5, 0.5)).size(), 1u);
}

TEST_F(AnchorFixture, EveryEdgeHasAnchors) {
  for (const Edge& e : graph_.edges()) {
    EXPECT_FALSE(anchors_->OnEdge(e.id).empty()) << "edge " << e.id;
  }
}

TEST_F(AnchorFixture, SpacingIsRespected) {
  for (const Edge& e : graph_.edges()) {
    const auto& on_edge = anchors_->OnEdge(e.id);
    for (size_t i = 0; i + 1 < on_edge.size(); ++i) {
      const double gap = anchors_->anchor(on_edge[i + 1]).offset -
                         anchors_->anchor(on_edge[i]).offset;
      EXPECT_GT(gap, 0.0);
      // Gap stays within 50% of the requested spacing.
      EXPECT_LE(gap, 1.5);
      EXPECT_GE(gap, 0.5);
    }
  }
}

TEST_F(AnchorFixture, OffsetsAscendPerEdge) {
  for (const Edge& e : graph_.edges()) {
    const auto& on_edge = anchors_->OnEdge(e.id);
    EXPECT_TRUE(std::is_sorted(on_edge.begin(), on_edge.end(),
                               [&](AnchorId a, AnchorId b) {
                                 return anchors_->anchor(a).offset <
                                        anchors_->anchor(b).offset;
                               }));
  }
}

TEST_F(AnchorFixture, ContainerAttribution) {
  int room_anchors = 0;
  for (const AnchorPoint& ap : anchors_->anchors()) {
    const Edge& e = graph_.edge(ap.edge);
    if (e.kind == EdgeKind::kRoomStub) {
      EXPECT_EQ(ap.room, e.room);
      EXPECT_EQ(ap.hallway, kInvalidId);
      ++room_anchors;
    } else {
      EXPECT_EQ(ap.hallway, e.hallway);
      EXPECT_EQ(ap.room, kInvalidId);
    }
  }
  EXPECT_GT(room_anchors, 0);
}

TEST_F(AnchorFixture, InRoomReturnsItsStubAnchors) {
  for (const Room& r : plan_.rooms()) {
    const auto& in_room = anchors_->InRoom(r.id);
    EXPECT_FALSE(in_room.empty());
    for (AnchorId a : in_room) {
      EXPECT_EQ(anchors_->anchor(a).room, r.id);
    }
  }
}

TEST_F(AnchorFixture, NearestOnEdgeSnapsToClosest) {
  for (const Edge& e : graph_.edges()) {
    // Probe several offsets; the result must be the true arg-min.
    for (double frac : {0.0, 0.21, 0.5, 0.77, 1.0}) {
      const GraphLocation loc{e.id, frac * e.length};
      const AnchorId got = anchors_->NearestOnEdge(loc);
      double best = 1e18;
      for (AnchorId a : anchors_->OnEdge(e.id)) {
        best = std::min(best,
                        std::fabs(anchors_->anchor(a).offset - loc.offset));
      }
      // Ties (probe exactly between two anchors) may resolve either way.
      EXPECT_NEAR(std::fabs(anchors_->anchor(got).offset - loc.offset), best,
                  1e-9);
    }
  }
}

TEST_F(AnchorFixture, InRectMatchesLinearScan) {
  const Rect window(5, -3, 25, 5);
  auto got = anchors_->InRect(window);
  std::sort(got.begin(), got.end());
  std::vector<AnchorId> want;
  for (const AnchorPoint& ap : anchors_->anchors()) {
    if (window.Contains(ap.pos)) {
      want.push_back(ap.id);
    }
  }
  EXPECT_EQ(got, want);
}

TEST_F(AnchorFixture, NearestToPointAgreesWithScan) {
  for (const Point probe : {Point{3.3, 0.4}, Point{25.0, 18.0},
                            Point{-1.0, 20.0}, Point{48.0, 36.0}}) {
    const AnchorId got = anchors_->NearestToPoint(probe);
    double best = 1e18;
    for (const AnchorPoint& ap : anchors_->anchors()) {
      best = std::min(best, Distance(ap.pos, probe));
    }
    EXPECT_NEAR(Distance(anchors_->anchor(got).pos, probe), best, 1e-9);
  }
}

TEST_F(AnchorFixture, AnchorGraphIsSymmetric) {
  for (AnchorId a = 0; a < anchor_graph_->num_anchors(); ++a) {
    for (const AnchorGraph::Neighbor& nb : anchor_graph_->NeighborsOf(a)) {
      const auto& back = anchor_graph_->NeighborsOf(nb.anchor);
      const bool found =
          std::any_of(back.begin(), back.end(),
                      [a, &nb](const AnchorGraph::Neighbor& b) {
                        return b.anchor == a && b.dist == nb.dist;
                      });
      EXPECT_TRUE(found) << "link " << a << "<->" << nb.anchor;
    }
  }
}

TEST_F(AnchorFixture, AnchorGraphIsConnected) {
  std::vector<bool> seen(anchor_graph_->num_anchors(), false);
  std::vector<AnchorId> stack = {0};
  seen[0] = true;
  size_t count = 1;
  while (!stack.empty()) {
    const AnchorId cur = stack.back();
    stack.pop_back();
    for (const auto& nb : anchor_graph_->NeighborsOf(cur)) {
      if (!seen[nb.anchor]) {
        seen[nb.anchor] = true;
        ++count;
        stack.push_back(nb.anchor);
      }
    }
  }
  EXPECT_EQ(count, static_cast<size_t>(anchor_graph_->num_anchors()));
}

TEST_F(AnchorFixture, WithinDistanceAscendingAndBudgeted) {
  const GraphLocation src{0, 0.5};
  const double budget = 15.0;
  const auto reached = anchor_graph_->WithinDistance(*anchors_, src, budget);
  ASSERT_FALSE(reached.empty());
  double prev = 0.0;
  for (const auto& [anchor, d] : reached) {
    EXPECT_GE(d, prev);
    EXPECT_LE(d, budget);
    prev = d;
  }
}

TEST_F(AnchorFixture, WithinDistanceAgreesWithNetworkDistance) {
  const GraphLocation src{3, 1.0};
  const auto reached = anchor_graph_->WithinDistance(*anchors_, src, 25.0);
  for (size_t i = 0; i < reached.size(); i += 5) {
    const AnchorPoint& ap = anchors_->anchor(reached[i].first);
    const double exact =
        NetworkDistance(graph_, src, GraphLocation{ap.edge, ap.offset});
    // Anchor-graph distances route through anchor points, so they can
    // exceed the exact network distance by at most one spacing of slack on
    // each end.
    EXPECT_NEAR(reached[i].second, exact, 2.0 * anchors_->spacing());
  }
}

TEST_F(AnchorFixture, WithinDistanceBlockedByWall) {
  // Block every anchor except those on the source edge: expansion must not
  // escape the edge (plus the immediate boundary anchors of neighbors).
  const GraphLocation src{0, 0.5};
  const EdgeId src_edge = 0;
  const auto passable = [&](AnchorId a) {
    return anchors_->anchor(a).edge == src_edge;
  };
  const auto reached =
      anchor_graph_->WithinDistance(*anchors_, src, 1000.0, passable);
  // Reached anchors outside the edge must all be direct neighbors of the
  // edge's anchors (reached but not expanded).
  for (const auto& [anchor, _] : reached) {
    if (anchors_->anchor(anchor).edge == src_edge) {
      continue;
    }
    bool adjacent_to_edge = false;
    for (const auto& nb : anchor_graph_->NeighborsOf(anchor)) {
      adjacent_to_edge |= anchors_->anchor(nb.anchor).edge == src_edge;
    }
    EXPECT_TRUE(adjacent_to_edge);
  }
}

}  // namespace
}  // namespace ipqs
